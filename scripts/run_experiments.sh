#!/bin/sh
set -e
cd "$(dirname "$0")/.."
echo "== tests =="
go test ./... 2>&1 | tee test_output.txt
echo "== benchmarks =="
go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
echo "== code generation statistics (C6) =="
go run ./cmd/wafegen -spec specs/wafe.spec -stats
