#!/bin/sh
# bench.sh — run the benchmark suite and record per-benchmark ns/op,
# B/op and allocs/op (averaged over the -count runs) into
# BENCH_eval.json at the repository root.
#
# Usage: scripts/bench.sh [go-test-bench-regexp]
# Environment: COUNT (default 3), BENCHTIME (default 1s),
# BENCHTIME_F5 (default 140000x).
#
# F5 types into an ever-growing text buffer, so its per-keystroke cost
# depends on the iteration count N — ns/op figures are only comparable
# at equal N. It therefore runs at a fixed iteration count instead of a
# fixed wall time (140000x matches the N a 1s run reached when the
# baseline was recorded).
set -e
cd "$(dirname "$0")/.."

pattern="${1:-.}"
count="${COUNT:-3}"
benchtime="${BENCHTIME:-1s}"
benchtime_f5="${BENCHTIME_F5:-140000x}"

out=$(go test -bench "$pattern" -benchmem -benchtime "$benchtime" -count "$count" -run '^$' .)
printf '%s\n' "$out"

case "$pattern" in
.|*F5*)
    f5=$(go test -bench 'BenchmarkF5_PrimeFactorKeystrokes' -benchmem -benchtime "$benchtime_f5" -count "$count" -run '^$' .)
    printf '%s\n' "$f5"
    out=$(printf '%s\n' "$out" | grep -v '^BenchmarkF5_PrimeFactorKeystrokes'; printf '%s\n' "$f5")
    ;;
esac

printf '%s\n' "$out" | awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] += $3; n[name]++
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "B/op")      b[name] += $i
        if ($(i+1) == "allocs/op") a[name] += $i
    }
    if (!(name in order)) { order[name] = ++cnt; names[cnt] = name }
}
END {
    printf "{\n"
    for (i = 1; i <= cnt; i++) {
        k = names[i]
        printf "  \"%s\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f}%s\n", \
            k, ns[k]/n[k], b[k]/n[k], a[k]/n[k], (i < cnt ? "," : "")
    }
    printf "}\n"
}' > BENCH_eval.json

echo "wrote BENCH_eval.json"
