#!/bin/sh
# bench.sh — run the benchmark suite and record per-benchmark ns/op,
# B/op and allocs/op (averaged over the -count runs) into
# BENCH_eval.json at the repository root.
#
# Usage: scripts/bench.sh [go-test-bench-regexp]
#        scripts/bench.sh obs [go-test-bench-regexp]
#        scripts/bench.sh supervise
#        scripts/bench.sh trace
#        scripts/bench.sh xrm
# Environment: COUNT (default 3), BENCHTIME (default 1s),
# BENCHTIME_F5 (default 140000x), NOISE_PCT (default 15, supervise
# mode only), TRACE_NOISE_PCT (default 15) and TRACE_MAX_US (default
# 1, trace mode only).
#
# The `obs` mode measures the overhead of the observability layer in
# its disabled state (instrumentation compiled in, metrics pointers
# nil — the default configuration, and what the benchmarks exercise
# via core.NewTest): it re-runs the suite and joins the result against
# the recorded BENCH_eval.json seed baseline into BENCH_obs.json with
# a per-benchmark delta_pct. The acceptance bound is a mean delta of
# at most 2 %.
#
# F5 types into an ever-growing text buffer, so its per-keystroke cost
# depends on the iteration count N — ns/op figures are only comparable
# at equal N. It therefore runs at a fixed iteration count instead of a
# fixed wall time (140000x matches the N a 1s run reached when the
# baseline was recorded).
set -e
cd "$(dirname "$0")/.."

obs_mode=
if [ "${1:-}" = "obs" ]; then
    obs_mode=1
    shift
fi

# The `supervise` mode guards the backend-lifecycle work: supervision
# hooks sit outside the per-line fast path (one nil check when the
# command pipe ends, nothing per delivered line). The gate is a paired
# same-run comparison — F4 with a live supervised backend attached
# against plain F4 — so it is immune to machine-to-machine drift in
# absolute ns/op. The BENCH_obs.json disabled-path baseline is printed
# alongside for reference only.
if [ "${1:-}" = "supervise" ]; then
    count="${COUNT:-3}"
    benchtime="${BENCHTIME:-1s}"
    noise="${NOISE_PCT:-15}"
    out=$(go test -bench 'BenchmarkF4_FrontendRoundTrip$|BenchmarkF4_FrontendRoundTripSupervised$' \
        -benchmem -benchtime "$benchtime" -count "$count" -run '^$' .)
    printf '%s\n' "$out"
    printf '%s\n' "$out" | awk -v noise="$noise" '
    FNR == NR {
        if (match($0, /^  "BenchmarkF4_FrontendRoundTrip"/) &&
            match($0, /"disabled_ns_per_op": [0-9.]+/))
            obsbase = substr($0, RSTART + 21, RLENGTH - 21) + 0
        next
    }
    /^Benchmark/ {
        nm = $1
        sub(/-[0-9]+$/, "", nm)
        ns[nm] += $3; n[nm]++
    }
    END {
        plain = "BenchmarkF4_FrontendRoundTrip"
        sup = "BenchmarkF4_FrontendRoundTripSupervised"
        if (!(plain in ns) || !(sup in ns)) {
            print "supervise: benchmarks missing (skipped platform?)"
            exit 0
        }
        p = ns[plain] / n[plain]
        s = ns[sup] / n[sup]
        delta = (s - p) / p * 100
        printf "supervise: plain %.1f ns/op, supervised %.1f ns/op, delta %+.2f%%\n", p, s, delta
        if (obsbase > 0)
            printf "supervise: BENCH_obs.json disabled-path baseline: %.1f ns/op (reference only)\n", obsbase
        if (delta > noise) {
            printf "supervise: supervision adds more than %s%% to line latency\n", noise
            exit 1
        }
        printf "supervise: within the %s%% noise bound\n", noise
    }' BENCH_obs.json -
    exit $?
fi

# The `trace` mode guards the request-tracing work on two fronts.
# Disabled path: span hooks are compiled into every hot site (frontend
# line handling, Tcl eval, Xt dispatch, Xlib requests) but cost one
# guarded atomic check when no tracer is enabled — F4 and T1 are each
# compared against the BENCH_eval.json seed with a TRACE_NOISE_PCT
# (default 15 %) tolerance for machine-to-machine drift; the design
# target is <= 2 % on a quiet machine. Enabled path: the paired
# same-run delta between F4 with span recording on and plain F4 is the
# per-line cost of live tracing, gated hard at TRACE_MAX_US (default
# 1 µs) — the paired comparison makes this gate immune to drift.
if [ "${1:-}" = "trace" ]; then
    count="${COUNT:-3}"
    benchtime="${BENCHTIME:-1s}"
    noise="${TRACE_NOISE_PCT:-15}"
    maxus="${TRACE_MAX_US:-1}"
    status=0
    out=$(go test -bench 'BenchmarkF4_FrontendRoundTrip$|BenchmarkF4_FrontendRoundTripTraced$|BenchmarkT1_PredefinedCallbacks$' \
        -benchmem -benchtime "$benchtime" -count "$count" -run '^$' .)
    printf '%s\n' "$out"
    printf '%s\n' "$out" | awk -v noise="$noise" -v maxus="$maxus" '
    function disabled_json(name, cur,   d) {
        if (!(name in seed) || seed[name] <= 0) {
            printf "trace: no seed for %s (disabled-path delta skipped)\n", name > "/dev/stderr"
            return sprintf("{\"ns_per_op\": %.1f, \"seed_ns_per_op\": null, \"delta_pct\": null}", cur)
        }
        d = (cur - seed[name]) / seed[name] * 100
        if (d > noise) {
            printf "trace: FAIL %s disabled-path delta %+.2f%% exceeds the %s%% noise bound\n", name, d, noise > "/dev/stderr"
            fail = 1
        } else
            printf "trace: %s disabled-path delta %+.2f%% (noise bound %s%%)\n", name, d, noise > "/dev/stderr"
        return sprintf("{\"ns_per_op\": %.1f, \"seed_ns_per_op\": %.1f, \"delta_pct\": %.2f}", cur, seed[name], d)
    }
    FNR == NR {
        if (match($0, /^  "[^"]+"/)) {
            name = substr($0, 4, RLENGTH - 4)
            if (match($0, /"ns_per_op": [0-9.]+/))
                seed[name] = substr($0, RSTART + 13, RLENGTH - 13) + 0
        }
        next
    }
    /^Benchmark/ {
        nm = $1
        sub(/-[0-9]+$/, "", nm)
        ns[nm] += $3; n[nm]++
    }
    END {
        plain = "BenchmarkF4_FrontendRoundTrip"
        traced = "BenchmarkF4_FrontendRoundTripTraced"
        t1 = "BenchmarkT1_PredefinedCallbacks"
        if (!(plain in ns) || !(traced in ns) || !(t1 in ns)) {
            print "trace: benchmarks missing from the run" > "/dev/stderr"
            exit 1
        }
        fail = 0
        p = ns[plain] / n[plain]
        tr = ns[traced] / n[traced]
        over_us = (tr - p) / 1000
        printf "{\n"
        printf "  \"%s\": %s,\n", plain, disabled_json(plain, p)
        printf "  \"%s\": %s,\n", t1, disabled_json(t1, ns[t1] / n[t1])
        printf "  \"%s\": {\"ns_per_op\": %.1f, \"enabled_overhead_us_per_line\": %.3f},\n", traced, tr, over_us
        if (over_us > maxus) {
            printf "trace: FAIL enabled spans add %.3f us per line (bound %s us)\n", over_us, maxus > "/dev/stderr"
            fail = 1
        } else
            printf "trace: enabled spans add %.3f us per line (bound %s us)\n", over_us, maxus > "/dev/stderr"
        printf "  \"_gate\": \"%s\"\n}\n", (fail ? "FAIL" : "OK")
        exit fail
    }' BENCH_eval.json - > BENCH_trace.json || status=$?
    cat BENCH_trace.json
    echo "wrote BENCH_trace.json"
    exit $status
fi

# The `check` mode measures static-analysis throughput: it builds
# wafecheck, times repeated full passes over the shipped demos and
# example programs, then builds wafevet and times one full pass (with
# per-analyzer wall time) over every internal and cmd package, and
# writes both into BENCH_check.json. Gates: the shipped scripts and
# the Go tree must be clean (exit 0), a wafecheck pass must finish
# under CHECK_MAX_MS (default 10000 ms), and the full wafevet pass
# under VET_MAX_MS (default 10000 ms) — the analyzers must stay fast
# enough to sit in CI and pre-commit hooks.
if [ "${1:-}" = "check" ]; then
    passes="${COUNT:-3}"
    maxms="${CHECK_MAX_MS:-10000}"
    vetmaxms="${VET_MAX_MS:-10000}"
    bin=$(mktemp /tmp/wafecheck.XXXXXX)
    go build -o "$bin" ./cmd/wafecheck
    nfiles=$(ls demos/*.wafe examples/*/main.go | wc -l | tr -d ' ')
    start=$(date +%s%N)
    i=0
    while [ "$i" -lt "$passes" ]; do
        "$bin" demos/ examples/ || { echo "check: shipped scripts are not clean"; rm -f "$bin"; exit 1; }
        i=$((i + 1))
    done
    end=$(date +%s%N)
    rm -f "$bin"

    vetbin=$(mktemp /tmp/wafevet.XXXXXX)
    go build -o "$vetbin" ./cmd/wafevet
    vetstart=$(date +%s%N)
    vetout=$("$vetbin" -timing ./internal/... ./cmd/...) || {
        printf '%s\n' "$vetout"
        echo "check: wafevet is not clean over ./internal/... ./cmd/..."
        rm -f "$vetbin"
        exit 1
    }
    vetend=$(date +%s%N)
    rm -f "$vetbin"

    printf '%s\n' "$vetout" | awk \
        -v ns="$((end - start))" -v passes="$passes" -v nfiles="$nfiles" -v maxms="$maxms" \
        -v vetns="$((vetend - vetstart))" -v vetmaxms="$vetmaxms" '
    /^vet-timing / { rules[$2] = $3; order[n++] = $2 }
    END {
        ms_per_pass = ns / 1e6 / passes
        sps = (nfiles * passes) / (ns / 1e9)
        vet_ms = vetns / 1e6
        printf "{\n  \"wafecheck\": {\"files\": %d, \"passes\": %d, \"ms_per_pass\": %.1f, \"scripts_per_sec\": %.1f},\n", \
            nfiles, passes, ms_per_pass, sps > "BENCH_check.json"
        printf "  \"wafevet\": {\"total_ms\": %.1f, \"rules_ms\": {", vet_ms > "BENCH_check.json"
        for (i = 0; i < n; i++)
            printf "%s\"%s\": %s", (i ? ", " : ""), order[i], rules[order[i]] > "BENCH_check.json"
        printf "}}\n}\n" > "BENCH_check.json"
        printf "check: %d files, %.1f ms/pass, %.1f scripts/sec; wafevet %.1f ms\n", nfiles, ms_per_pass, sps, vet_ms
        fail = 0
        if (ms_per_pass > maxms) {
            printf "check: a full wafecheck pass exceeds %d ms\n", maxms
            fail = 1
        }
        if (vet_ms > vetmaxms) {
            printf "check: the wafevet pass exceeds %d ms\n", vetmaxms
            fail = 1
        }
        exit fail
    }'
    status=$?
    cat BENCH_check.json
    echo "wrote BENCH_check.json"
    exit $status
fi

# The `serve` mode guards the session-core refactor: it runs the
# serve-mode load harness (1024 concurrent sessions in one process by
# default, WAFE_SERVE_SESSIONS overrides) and records session count,
# dispatch-latency quantiles and per-session heap bytes into
# BENCH_serve.json. Gates: p99 dispatch latency must stay under
# SERVE_P99_MAX_MS (default 50 ms) and per-session heap under
# SERVE_MAX_SESSION_KB (default 1024 KB).
if [ "${1:-}" = "serve" ]; then
    p99max="${SERVE_P99_MAX_MS:-50}"
    kbmax="${SERVE_MAX_SESSION_KB:-1024}"
    out=$(go test -run 'TestServeLoad$' -v -count 1 ./internal/frontend/)
    printf '%s\n' "$out"
    printf '%s\n' "$out" | awk -v p99max="$p99max" -v kbmax="$kbmax" '
    /serveload:/ {
        for (i = 1; i <= NF; i++) {
            if (split($i, kv, "=") == 2) v[kv[1]] = kv[2] + 0
        }
        found = 1
    }
    END {
        if (!found) { print "serve: no serveload summary in test output" > "/dev/stderr"; exit 1 }
        p99ms = v["p99_ns"] / 1e6
        kb = v["bytes_per_session"] / 1024
        printf "{\n  \"serve_load\": {\"sessions\": %d, \"lines\": %d, \"p50_ns\": %d, \"p99_ns\": %d, \"max_ns\": %d, \"bytes_per_session\": %d},\n", \
            v["sessions"], v["lines"], v["p50_ns"], v["p99_ns"], v["max_ns"], v["bytes_per_session"]
        fail = 0
        if (p99ms > p99max) {
            printf "serve: FAIL p99 dispatch latency %.2f ms exceeds %d ms\n", p99ms, p99max > "/dev/stderr"; fail = 1
        } else
            printf "serve: p99 dispatch latency %.2f ms (bound %d ms)\n", p99ms, p99max > "/dev/stderr"
        if (kb > kbmax) {
            printf "serve: FAIL per-session heap %.0f KB exceeds %d KB\n", kb, kbmax > "/dev/stderr"; fail = 1
        } else
            printf "serve: per-session heap %.0f KB (bound %d KB)\n", kb, kbmax > "/dev/stderr"
        printf "  \"_gate\": \"%s\"\n}\n", (fail ? "FAIL" : "OK")
        exit fail
    }' > BENCH_serve.json
    status=$?
    cat BENCH_serve.json
    echo "wrote BENCH_serve.json"
    exit $status
fi

# The `tclvm` mode guards the execution-engine-v2 work. It runs the
# paired engine-comparison benchmarks (tree walker vs bytecode VM on
# identical workloads, in one process, so machine drift cancels) plus
# the F4/T1 end-to-end paths, and writes BENCH_tclvm.json. Gates:
# the bytecode engine must run prime-factors at least
# TCLVM_MIN_SPEEDUP (default 2.0) times faster than the tree walker,
# a bytecode proc call must allocate at most TCLVM_MAX_PROC_ALLOCS
# (default 4) objects, and F4/T1 must stay within TCLVM_NOISE_PCT
# (default 15 %) of the BENCH_eval.json seed.
if [ "${1:-}" = "tclvm" ]; then
    count="${COUNT:-3}"
    benchtime="${BENCHTIME:-1s}"
    minspeed="${TCLVM_MIN_SPEEDUP:-2.0}"
    maxallocs="${TCLVM_MAX_PROC_ALLOCS:-4}"
    noise="${TCLVM_NOISE_PCT:-15}"
    status=0
    out=$(go test -bench 'BenchmarkTcl_EngineCompare|BenchmarkTcl_Interpreter|BenchmarkF4_FrontendRoundTrip$|BenchmarkT1_PredefinedCallbacks$' \
        -benchmem -benchtime "$benchtime" -count "$count" -run '^$' .)
    printf '%s\n' "$out"
    printf '%s\n' "$out" | awk -v minspeed="$minspeed" -v maxallocs="$maxallocs" -v noise="$noise" '
    FNR == NR {
        if (match($0, /^  "[^"]+"/)) {
            name = substr($0, 4, RLENGTH - 4)
            if (match($0, /"ns_per_op": [0-9.]+/))
                seed[name] = substr($0, RSTART + 13, RLENGTH - 13) + 0
        }
        next
    }
    /^Benchmark/ {
        nm = $1
        sub(/-[0-9]+$/, "", nm)
        ns[nm] += $3; n[nm]++
        for (i = 4; i < NF; i++) {
            if ($(i+1) == "B/op")      b[nm] += $i
            if ($(i+1) == "allocs/op") a[nm] += $i
        }
        if (!(nm in order)) { order[nm] = ++cnt; names[cnt] = nm }
    }
    END {
        fail = 0
        printf "{\n"
        for (i = 1; i <= cnt; i++) {
            k = names[i]
            printf "  \"%s\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f},\n", \
                k, ns[k] / n[k], b[k] / n[k], a[k] / n[k]
        }
        tree = "BenchmarkTcl_EngineCompare/prime-factors-60/tree"
        vm = "BenchmarkTcl_EngineCompare/prime-factors-60/bytecode"
        if (!(tree in ns) || !(vm in ns)) {
            print "tclvm: engine-comparison benchmarks missing" > "/dev/stderr"
            fail = 1; speed = 0
        } else {
            speed = (ns[tree] / n[tree]) / (ns[vm] / n[vm])
            if (speed < minspeed) {
                printf "tclvm: FAIL bytecode speedup %.2fx under the %.1fx bound\n", speed, minspeed > "/dev/stderr"
                fail = 1
            } else
                printf "tclvm: bytecode runs prime-factors %.2fx faster than the tree walker (bound %.1fx)\n", speed, minspeed > "/dev/stderr"
        }
        pc = "BenchmarkTcl_EngineCompare/proc-call/bytecode"
        if (!(pc in a)) {
            print "tclvm: proc-call benchmark missing" > "/dev/stderr"; fail = 1
        } else if (a[pc] / n[pc] > maxallocs) {
            printf "tclvm: FAIL proc call allocates %.1f/op (bound %d)\n", a[pc] / n[pc], maxallocs > "/dev/stderr"
            fail = 1
        } else
            printf "tclvm: proc call allocates %.1f/op (bound %d)\n", a[pc] / n[pc], maxallocs > "/dev/stderr"
        nreg = split("BenchmarkF4_FrontendRoundTrip BenchmarkT1_PredefinedCallbacks", regs, " ")
        for (i = 1; i <= nreg; i++) {
            k = regs[i]
            if (!(k in ns) || !(k in seed) || seed[k] <= 0) {
                printf "tclvm: no seed for %s (regression check skipped)\n", k > "/dev/stderr"
                continue
            }
            d = (ns[k] / n[k] - seed[k]) / seed[k] * 100
            if (d > noise) {
                printf "tclvm: FAIL %s regressed %+.2f%% vs seed (bound %s%%)\n", k, d, noise > "/dev/stderr"
                fail = 1
            } else
                printf "tclvm: %s delta %+.2f%% vs seed (bound %s%%)\n", k, d, noise > "/dev/stderr"
        }
        printf "  \"_speedup_prime_factors\": %.2f,\n", speed
        printf "  \"_gate\": \"%s\"\n}\n", (fail ? "FAIL" : "OK")
        exit fail
    }' BENCH_eval.json - > BENCH_tclvm.json || status=$?
    cat BENCH_tclvm.json
    echo "wrote BENCH_tclvm.json"
    exit $status
fi

# The `xrm` mode guards the quark-tree resource database: it runs the
# resource-path benchmarks, joins them against the BENCH_eval.json seed
# (recorded with the flat-list matcher) into BENCH_xrm.json, and gates
# on the acceptance bounds — the cached Query path must allocate 0 B/op,
# XrmScale/entries=512 must sit within 3x of entries=4 per lookup, and
# BuildAndRealizeTree must allocate at most 75 % of the seed.
if [ "${1:-}" = "xrm" ]; then
    count="${COUNT:-3}"
    benchtime="${BENCHTIME:-1s}"
    status=0
    out=$(go test -bench 'BenchmarkAblation_XrmScale|BenchmarkXrm_|BenchmarkC1_GetResourceList|BenchmarkC12_ResourceQuery|BenchmarkF1_BuildAndRealizeTree|BenchmarkWidgetCreation_WafeVsDirect' \
        -benchmem -benchtime "$benchtime" -count "$count" -run '^$' .)
    printf '%s\n' "$out"
    printf '%s\n' "$out" | awk '
    FNR == NR {
        if (match($0, /^  "[^"]+"/)) {
            name = substr($0, 4, RLENGTH - 4)
            if (match($0, /"ns_per_op": [0-9.]+/))
                seedns[name] = substr($0, RSTART + 13, RLENGTH - 13) + 0
            if (match($0, /"allocs_per_op": [0-9.]+/))
                seedal[name] = substr($0, RSTART + 17, RLENGTH - 17) + 0
        }
        next
    }
    /^Benchmark/ {
        nm = $1
        sub(/-[0-9]+$/, "", nm)
        ns[nm] += $3; n[nm]++
        for (i = 4; i < NF; i++) {
            if ($(i+1) == "B/op")      b[nm] += $i
            if ($(i+1) == "allocs/op") a[nm] += $i
        }
        if (!(nm in order)) { order[nm] = ++cnt; names[cnt] = nm }
    }
    END {
        printf "{\n"
        for (i = 1; i <= cnt; i++) {
            k = names[i]
            cur = ns[k] / n[k]; cb = b[k] / n[k]; ca = a[k] / n[k]
            if (k in seedns && seedns[k] > 0)
                printf "  \"%s\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f, \"seed_ns_per_op\": %.1f, \"seed_allocs_per_op\": %.1f, \"ns_delta_pct\": %.2f},\n", \
                    k, cur, cb, ca, seedns[k], seedal[k], (cur - seedns[k]) / seedns[k] * 100
            else
                printf "  \"%s\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f, \"seed_ns_per_op\": null, \"seed_allocs_per_op\": null, \"ns_delta_pct\": null},\n", \
                    k, cur, cb, ca
        }
        fail = 0
        q = "BenchmarkXrm_CachedQuery"
        if (!(q in ns)) { print "xrm: missing " q > "/dev/stderr"; fail = 1 }
        else if (b[q] / n[q] != 0) {
            printf "xrm: FAIL %s allocates %.1f B/op on the cache-hit path (want 0)\n", q, b[q] / n[q] > "/dev/stderr"; fail = 1
        } else
            printf "xrm: cache-hit query path allocates 0 B/op\n" > "/dev/stderr"
        s4 = "BenchmarkAblation_XrmScale/entries=4"
        s512 = "BenchmarkAblation_XrmScale/entries=512"
        if (!(s4 in ns) || !(s512 in ns)) { print "xrm: missing XrmScale results" > "/dev/stderr"; fail = 1 }
        else {
            ratio = (ns[s512] / n[s512]) / (ns[s4] / n[s4])
            if (ratio > 3) {
                printf "xrm: FAIL entries=512 is %.1fx entries=4 per lookup (want <= 3x)\n", ratio > "/dev/stderr"; fail = 1
            } else
                printf "xrm: entries=512 runs at %.2fx of entries=4 per lookup (bound 3x)\n", ratio > "/dev/stderr"
        }
        f1 = "BenchmarkF1_BuildAndRealizeTree"
        if (!(f1 in a) || !(f1 in seedal)) { print "xrm: missing " f1 " result or seed" > "/dev/stderr"; fail = 1 }
        else {
            cur = a[f1] / n[f1]
            if (cur > 0.75 * seedal[f1]) {
                printf "xrm: FAIL %s allocs %.0f/op vs seed %.0f (want <= 75%%)\n", f1, cur, seedal[f1] > "/dev/stderr"; fail = 1
            } else
                printf "xrm: BuildAndRealizeTree allocs %.0f/op vs seed %.0f/op (%.0f%%)\n", cur, seedal[f1], cur / seedal[f1] * 100 > "/dev/stderr"
        }
        printf "  \"_gate\": \"%s\"\n}\n", (fail ? "FAIL" : "OK")
        exit fail
    }' BENCH_eval.json - > BENCH_xrm.json || status=$?
    cat BENCH_xrm.json
    echo "wrote BENCH_xrm.json"
    exit $status
fi

# The `render` mode guards the damage-region pipeline: it runs the
# render benchmarks plus the snapshot-scale ablation and writes
# BENCH_render.json. Gates — the steady-state single-widget update
# (one StripChart sample + pump) must allocate 0 B/op and finish
# within RENDER_UPDATE_MAX_NS (default 50000 ns); snapshotting a
# 200-widget tree must cost at most RENDER_SNAPSHOT_MAX_RATIO
# (default 8) times the 10-widget tree per call (the memoized
# snapshot makes repeated observation O(1) regardless of tree size).
if [ "${1:-}" = "render" ]; then
    count="${COUNT:-3}"
    benchtime="${BENCHTIME:-1s}"
    maxns="${RENDER_UPDATE_MAX_NS:-50000}"
    maxratio="${RENDER_SNAPSHOT_MAX_RATIO:-8}"
    status=0
    out=$(go test -bench 'BenchmarkRender_|BenchmarkAblation_SnapshotScale' \
        -benchmem -benchtime "$benchtime" -count "$count" -run '^$' .)
    printf '%s\n' "$out"
    printf '%s\n' "$out" | awk -v maxns="$maxns" -v maxratio="$maxratio" '
    /^Benchmark/ {
        nm = $1
        sub(/-[0-9]+$/, "", nm)
        ns[nm] += $3; n[nm]++
        for (i = 4; i < NF; i++) {
            if ($(i+1) == "B/op")      b[nm] += $i
            if ($(i+1) == "allocs/op") a[nm] += $i
        }
        if (!(nm in order)) { order[nm] = ++cnt; names[cnt] = nm }
    }
    END {
        printf "{\n"
        for (i = 1; i <= cnt; i++) {
            k = names[i]
            printf "  \"%s\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f},\n", \
                k, ns[k] / n[k], b[k] / n[k], a[k] / n[k]
        }
        fail = 0
        u = "BenchmarkRender_SingleWidgetUpdate"
        if (!(u in ns)) { print "render: missing " u > "/dev/stderr"; fail = 1 }
        else {
            if (b[u] / n[u] != 0) {
                printf "render: FAIL %s allocates %.1f B/op in steady state (want 0)\n", u, b[u] / n[u] > "/dev/stderr"; fail = 1
            } else
                printf "render: steady-state single-widget update allocates 0 B/op\n" > "/dev/stderr"
            if (ns[u] / n[u] > maxns) {
                printf "render: FAIL %s takes %.0f ns/op (bound %d ns)\n", u, ns[u] / n[u], maxns > "/dev/stderr"; fail = 1
            } else
                printf "render: single-widget update %.0f ns/op (bound %d ns)\n", ns[u] / n[u], maxns > "/dev/stderr"
        }
        s10 = "BenchmarkAblation_SnapshotScale/widgets=10"
        s200 = "BenchmarkAblation_SnapshotScale/widgets=200"
        if (!(s10 in ns) || !(s200 in ns)) { print "render: missing SnapshotScale results" > "/dev/stderr"; fail = 1 }
        else {
            ratio = (ns[s200] / n[s200]) / (ns[s10] / n[s10])
            if (ratio > maxratio) {
                printf "render: FAIL widgets=200 snapshot is %.1fx widgets=10 (want <= %sx)\n", ratio, maxratio > "/dev/stderr"; fail = 1
            } else
                printf "render: widgets=200 snapshot runs at %.2fx of widgets=10 (bound %sx)\n", ratio, maxratio > "/dev/stderr"
            printf "  \"_snapshot_scale_ratio\": %.2f,\n", ratio
        }
        printf "  \"_gate\": \"%s\"\n}\n", (fail ? "FAIL" : "OK")
        exit fail
    }' > BENCH_render.json || status=$?
    cat BENCH_render.json
    echo "wrote BENCH_render.json"
    exit $status
fi

pattern="${1:-.}"
count="${COUNT:-3}"
benchtime="${BENCHTIME:-1s}"
benchtime_f5="${BENCHTIME_F5:-140000x}"

out=$(go test -bench "$pattern" -benchmem -benchtime "$benchtime" -count "$count" -run '^$' .)
printf '%s\n' "$out"

case "$pattern" in
.|*F5*)
    f5=$(go test -bench 'BenchmarkF5_PrimeFactorKeystrokes' -benchmem -benchtime "$benchtime_f5" -count "$count" -run '^$' .)
    printf '%s\n' "$f5"
    out=$(printf '%s\n' "$out" | grep -v '^BenchmarkF5_PrimeFactorKeystrokes'; printf '%s\n' "$f5")
    ;;
esac

if [ -n "$obs_mode" ]; then
    # Join this run (instrumented, observability disabled) against the
    # seed baseline. Baseline values come from BENCH_eval.json, which
    # was recorded before the instrumentation existed.
    printf '%s\n' "$out" | awk '
    FNR == NR {
        # Parse a BENCH_eval.json line: "name": {"ns_per_op": X, ...
        if (match($0, /^  "[^"]+"/)) {
            name = substr($0, 4, RLENGTH - 4)
            if (match($0, /"ns_per_op": [0-9.]+/))
                seed[name] = substr($0, RSTART + 13, RLENGTH - 13) + 0
        }
        next
    }
    /^Benchmark/ {
        nm = $1
        sub(/-[0-9]+$/, "", nm)
        ns[nm] += $3; n[nm]++
        if (!(nm in order)) { order[nm] = ++cnt; names[cnt] = nm }
    }
    END {
        printf "{\n"
        sum = 0; matched = 0
        for (i = 1; i <= cnt; i++) {
            k = names[i]
            cur = ns[k] / n[k]
            if (k in seed && seed[k] > 0) {
                delta = (cur - seed[k]) / seed[k] * 100
                sum += delta; matched++
                printf "  \"%s\": {\"disabled_ns_per_op\": %.1f, \"seed_ns_per_op\": %.1f, \"delta_pct\": %.2f},\n", \
                    k, cur, seed[k], delta
            } else {
                printf "  \"%s\": {\"disabled_ns_per_op\": %.1f, \"seed_ns_per_op\": null, \"delta_pct\": null},\n", \
                    k, cur
            }
        }
        printf "  \"_mean_delta_pct\": %.2f\n}\n", (matched ? sum / matched : 0)
        if (matched)
            printf "obs overhead (disabled): mean delta %.2f%% over %d benchmarks\n", sum / matched, matched > "/dev/stderr"
    }' BENCH_eval.json - > BENCH_obs.json
    echo "wrote BENCH_obs.json"
    exit 0
fi

printf '%s\n' "$out" | awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] += $3; n[name]++
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "B/op")      b[name] += $i
        if ($(i+1) == "allocs/op") a[name] += $i
    }
    if (!(name in order)) { order[name] = ++cnt; names[cnt] = name }
}
END {
    printf "{\n"
    for (i = 1; i <= cnt; i++) {
        k = names[i]
        printf "  \"%s\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f}%s\n", \
            k, ns[k]/n[k], b[k]/n[k], a[k]/n[k], (i < cnt ? "," : "")
    }
    printf "}\n"
}' > BENCH_eval.json

echo "wrote BENCH_eval.json"
