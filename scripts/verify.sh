#!/bin/sh
# verify.sh — the tier-1 gate plus static analysis and the race
# detector over the packages where concurrency lives: the compiled-
# script pipeline, the event loop, the pipe protocol (whose metrics
# are written from the loop and snapshotted from anywhere), and the
# resource database (quark intern table, generation counter and
# search-list cache, written by mergeResources while widget creation
# reads).
set -e
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

# The repo's own analyzers: wafevet enforces runtime invariants
# (nil-guarded obs pointers, no mutex held across Interp.Eval,
# checked strconv/Sscan errors, consistent atomics, session-owned
# state touched only from its event loop, an acyclic lock-order
# graph) over every internal and cmd package; wafecheck lints the
# shipped demos and the example programs' embedded scripts against
# the live command table.
echo "== wafevet ./internal/... ./cmd/..."
go run ./cmd/wafevet ./internal/... ./cmd/...

echo "== wafecheck demos/ examples/"
go run ./cmd/wafecheck demos/ examples/

echo "== go test -race ./internal/tcl/ ./internal/core/ ./internal/xt/ ./internal/frontend/... ./internal/obs/"
go test -race ./internal/tcl/ ./internal/core/ ./internal/xt/ ./internal/frontend/... ./internal/obs/

# The fault-injection suite drives the supervisor and the pipe loop
# through crash, hang, overlong-line and broken-pipe scenarios;
# TestXrmConcurrent hammers the quark intern table and the database
# generation counter with mergeResources racing widget creation;
# TestSession/TestServe cover session isolation, serve-mode lifecycle
# (handshake, mid-command disconnect, crash respawn beside a live
# sibling, graceful shutdown) and per-session metrics;
# TestTrace/TestRing/TestSpan cover concurrent span/event recording
# against readers, and TestFlight the anomaly snapshots. Run by name
# so a renamed test cannot silently drop out of the gate.
echo "== go test -race fault injection + supervision + xrm concurrency + sessions + tracing"
go test -race -count 1 \
    -run 'TestSupervisor|TestShutdown|TestReadError|TestOverlong|TestPostFrom|TestPostFunnel|TestTimerRemoved|TestXrmConcurrent|TestSession|TestServe|TestTrace|TestRing|TestSpan|TestFlight' \
    ./internal/xt/ ./internal/frontend/ ./internal/obs/

# The serve-mode load harness at a reduced session count: full scale
# (1024 sessions) runs in the bench gate; here 256 sessions under the
# race detector prove isolation with the full machinery engaged.
echo "== go test -race serve-mode load harness (256 sessions)"
WAFE_SERVE_SESSIONS=256 go test -race -count 1 -run 'TestServeLoad$' ./internal/frontend/

# The tracing perf gate: disabled-path span hooks must stay within
# noise of the seed, enabled spans must cost under a microsecond per
# line (paired same-run comparison).
echo "== scripts/bench.sh trace"
COUNT=2 BENCHTIME=0.3s scripts/bench.sh trace

# The execution-engine-v2 gate: the oracle suite (tree walker vs
# bytecode VM over the corpus, the bug-sweep goldens and the
# randomized scripts) under the race detector, then the paired
# same-run perf comparison (bytecode speedup, proc-call allocs,
# F4/T1 no-regression).
echo "== go test -race engine differential oracle"
go test -race -count 1 -run 'TestOracle|TestDifferential|TestVarRef|TestSpecialize|TestDispatchCache|TestExprCmd|TestProcCallAllocs' ./internal/tcl/

echo "== scripts/bench.sh tclvm"
COUNT=2 BENCHTIME=0.3s scripts/bench.sh tclvm

# The damage-region render gate: the differential oracle proves
# clipped partial redraws are pixel-identical to full repaints (every
# demo plus randomized damage sequences, under the race detector),
# then the perf gate holds the steady-state single-widget update at
# 0 B/op and memoized snapshots at O(1) in tree size.
echo "== go test -race render differential oracle"
go test -race -count 1 -run 'TestRenderOracle' .

echo "== scripts/bench.sh render"
COUNT=2 BENCHTIME=0.3s scripts/bench.sh render

echo "verify: OK"
