#!/bin/sh
# verify.sh — the tier-1 gate plus static analysis and the race
# detector over the packages where concurrency lives: the compiled-
# script pipeline, the event loop and the pipe protocol (whose metrics
# are written from the loop and snapshotted from anywhere).
set -e
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/tcl/ ./internal/core/ ./internal/xt/ ./internal/frontend/... ./internal/obs/"
go test -race ./internal/tcl/ ./internal/core/ ./internal/xt/ ./internal/frontend/... ./internal/obs/

# The fault-injection suite drives the supervisor and the pipe loop
# through crash, hang, overlong-line and broken-pipe scenarios; run it
# by name so a renamed test cannot silently drop out of the gate.
echo "== go test -race fault injection + supervision"
go test -race -count 1 \
    -run 'TestSupervisor|TestShutdown|TestReadError|TestOverlong|TestPostFrom|TestTimerRemoved' \
    ./internal/xt/ ./internal/frontend/

echo "verify: OK"
