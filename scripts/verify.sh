#!/bin/sh
# verify.sh — the tier-1 gate plus static analysis and the race
# detector over the packages the compiled-script pipeline touches.
set -e
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/tcl/ ./internal/core/"
go test -race ./internal/tcl/ ./internal/core/

echo "verify: OK"
