package wafe

import (
	"testing"

	"wafe/internal/xaw"
	"wafe/internal/xt"
)

// Render benchmarks measure the damage-region pipeline: steady-state
// single-widget updates must not allocate (the display list, scratch
// buffers and damage regions are all reused), and expose storms must
// collapse through region coalescing instead of fanning out into
// per-rect repaints. scripts/bench.sh render gates on these numbers.

func renderApp(b *testing.B) (*xt.App, *xt.Widget) {
	b.Helper()
	app := xt.NewTestApp("wafe")
	top, err := app.CreateWidget("topLevel", xt.ApplicationShellClass, nil, nil, false)
	if err != nil {
		b.Fatal(err)
	}
	return app, top
}

// BenchmarkRender_SingleWidgetUpdate is the headline gate: one
// StripChart sample in steady state (chart full, jump-scrolling) plus
// an event-loop pump, required to run at 0 B/op.
func BenchmarkRender_SingleWidgetUpdate(b *testing.B) {
	app, top := renderApp(b)
	chart, err := app.CreateWidget("chart", xaw.StripChartClass, top, nil, true)
	if err != nil {
		b.Fatal(err)
	}
	top.Realize()
	app.Pump()
	// Warm past the fill phase and through several jump-scroll cycles so
	// the slice, display-list and damage-region capacities are all at
	// their steady-state sizes before the timed loop.
	for i := 0; i < 500; i++ {
		xaw.StripChartAddSample(chart, float64(i%7))
		app.Pump()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xaw.StripChartAddSample(chart, float64(i%7))
		app.Pump()
	}
}

// BenchmarkRender_ListHighlight moves a List highlight across 100 items;
// each move repaints two cells, not the whole list.
func BenchmarkRender_ListHighlight(b *testing.B) {
	app, top := renderApp(b)
	items := "i0"
	for i := 1; i < 100; i++ {
		items += "\ni" + string(rune('0'+i/10)) + string(rune('0'+i%10))
	}
	list, err := app.CreateWidget("list", xaw.ListClass, top, map[string]string{"list": items}, true)
	if err != nil {
		b.Fatal(err)
	}
	top.Realize()
	app.Pump()
	xaw.ListHighlight(list, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xaw.ListHighlight(list, i%100)
	}
}

// BenchmarkRender_ExposeStorm injects 16 overlapping damage rects per
// iteration; coalescing must deliver them as a handful of clipped
// redraws, not 16 full repaints.
func BenchmarkRender_ExposeStorm(b *testing.B) {
	app, top := renderApp(b)
	label, err := app.CreateWidget("l", xaw.LabelClass, top, map[string]string{"label": "storm target"}, true)
	if err != nil {
		b.Fatal(err)
	}
	top.Realize()
	app.Pump()
	d := label.Display()
	win := label.Window()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 16; j++ {
			d.InjectExposeRect(win, (j%4)*10, (j/4)*5, 12, 7)
		}
		app.Pump()
	}
}

// BenchmarkRender_ScrollbarThumb drags a scrollbar thumb; each move
// repaints the union of the old and new thumb rectangles.
func BenchmarkRender_ScrollbarThumb(b *testing.B) {
	app, top := renderApp(b)
	sb, err := app.CreateWidget("sb", xaw.ScrollbarClass, top, nil, true)
	if err != nil {
		b.Fatal(err)
	}
	top.Realize()
	app.Pump()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xaw.ScrollbarSetThumb(sb, float64(i%10)/10, 0.1)
	}
}
