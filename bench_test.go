// Package wafe holds the repository-level benchmark harness: one
// benchmark per table/figure/claim in the paper's evaluation, as
// indexed in DESIGN.md and recorded in EXPERIMENTS.md.
//
// Run with:
//
//	go test -bench=. -benchmem
package wafe

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"wafe/internal/core"
	"wafe/internal/frontend"
	"wafe/internal/spec"
	"wafe/internal/tcl"
	"wafe/internal/xproto"
	"wafe/internal/xt"
)

func newWafe(b *testing.B) *core.Wafe {
	b.Helper()
	w := core.NewTest()
	w.Interp.Stdout = func(string) {} // discard
	return w
}

func mustEval(b *testing.B, w *core.Wafe, script string) string {
	b.Helper()
	res, err := w.Eval(script)
	if err != nil {
		b.Fatalf("Eval(%q): %v", script, err)
	}
	return res
}

func click(w *core.Wafe, name string) {
	wid := w.App.WidgetByName(name)
	d := wid.Display()
	win, _ := d.Lookup(wid.Window())
	x, y := win.RootCoords(2, 2)
	d.WarpPointer(x, y)
	d.InjectButtonPress(1)
	d.InjectButtonRelease(1)
	w.App.Pump()
}

// BenchmarkT1_PredefinedCallbacks measures one popup/popdown cycle
// through the predefined callback table (none + popdown).
func BenchmarkT1_PredefinedCallbacks(b *testing.B) {
	w := newWafe(b)
	mustEval(b, w, "command up topLevel")
	mustEval(b, w, "transientShell pop topLevel x 500 y 500")
	mustEval(b, w, "label inpop pop")
	mustEval(b, w, "realize")
	mustEval(b, w, "callback up callback none pop")
	shell := w.App.WidgetByName("pop")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		click(w, "up")
		if !shell.IsPoppedUp() {
			b.Fatal("not popped up")
		}
		_ = shell.Popdown()
	}
}

// BenchmarkT2_PercentExpansion measures the exec-action percent-code
// substitution of the paper's event table.
func BenchmarkT2_PercentExpansion(b *testing.B) {
	w := newWafe(b)
	mustEval(b, w, "label l topLevel")
	mustEval(b, w, "realize")
	wid := w.App.WidgetByName("l")
	ev := &xproto.Event{Type: xproto.KeyPress, Keycode: 198, Keysym: "w", Rune: 'w', X: 3, Y: 4, XRoot: 30, YRoot: 40}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.ExpandActionPercent("echo %k %a %s %x %y %X %Y %w %t", wid, ev)
		if len(s) == 0 {
			b.Fatal("empty expansion")
		}
	}
}

// BenchmarkT3_ListCallback measures a full List selection callback with
// %i/%s substitution into a Tcl script.
func BenchmarkT3_ListCallback(b *testing.B) {
	w := newWafe(b)
	mustEval(b, w, "form f topLevel")
	mustEval(b, w, `label confirmLab f label { }`)
	mustEval(b, w, `list chooseLst f fromVert confirmLab verticalList true list "alpha
beta
gamma"`)
	mustEval(b, w, `sV chooseLst callback "sV confirmLab label %s"`)
	mustEval(b, w, "realize")
	lst := w.App.WidgetByName("chooseLst")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lst.CallCallbacks("callback", xt.CallData{"i": "1", "s": "beta"})
	}
}

// BenchmarkF1_BuildAndRealizeTree measures building the paper's demo
// widget tree through the full Tcl → Wafe → Xt → Xaw → server stack.
func BenchmarkF1_BuildAndRealizeTree(b *testing.B) {
	script := `
form top%d topLevel
asciiText input%d top%d editType edit width 200
label result%d top%d label {} width 200 fromVert input%d
command quit%d top%d fromVert result%d
label info%d top%d fromVert result%d fromHoriz quit%d label {} borderWidth 0 width 150
`
	w := newWafe(b)
	mustEval(b, w, "realize")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := strings.ReplaceAll(script, "%d", fmt.Sprint(i))
		mustEval(b, w, s)
		// Destroy to keep the tree bounded.
		mustEval(b, w, fmt.Sprintf("destroyWidget top%d", i))
	}
}

// BenchmarkF3_XmStringConverter measures compound-string conversion
// (Figure 3).
func BenchmarkF3_XmStringConverter(b *testing.B) {
	w, err := core.New(core.Config{TestDisplay: true, Set: core.SetMotif, AppName: "mofe"})
	if err != nil {
		b.Fatal(err)
	}
	w.Interp.Stdout = func(string) {}
	if _, err := w.Eval(`mLabel l topLevel fontList "*medium*14*=ft,*bold*14*=bft"`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Eval(`sV l labelString {I'm\bft bold\ft and\rl strange}`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF4_FrontendRoundTrip measures one protocol round trip:
// a %-command line from the backend through the interpreter and an
// echo reply back onto the backend's stdin (in-process pipes; no fork).
func BenchmarkF4_FrontendRoundTrip(b *testing.B) {
	w := core.NewTest()
	var sink strings.Builder
	f := frontend.New(w, nil, &sink)
	replies := 0
	w.Interp.Stdout = func(string) { replies++ }
	f.HandleAppLine("%label l topLevel")
	f.HandleAppLine("%realize")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.HandleAppLine("%echo [gV l label]")
	}
	if replies < b.N {
		b.Fatalf("replies = %d", replies)
	}
}

// BenchmarkF4_FrontendRoundTripTraced is F4 with observability enabled
// and span tracing on: every line records a line span plus an eval
// span into the bounded ring, and a cmd event into the event ring.
// bench.sh's trace mode gates on the paired delta between this
// benchmark and the plain F4 measured in the same run (the per-line
// cost of enabled tracing). The echo sink is detached: echoing every
// traced line to the terminal is the verbose debug channel, whose
// cost is the terminal write itself, not the recording machinery this
// gate governs.
func BenchmarkF4_FrontendRoundTripTraced(b *testing.B) {
	w := core.NewTest()
	var sink strings.Builder
	f := frontend.New(w, nil, &sink)
	m := w.EnableObservability()
	m.Trace.SetEnabled(true)
	m.Trace.SetSink(nil)
	replies := 0
	w.Interp.Stdout = func(string) { replies++ }
	f.HandleAppLine("%label l topLevel")
	f.HandleAppLine("%realize")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.HandleAppLine("%echo [gV l label]")
	}
	if replies < b.N {
		b.Fatalf("replies = %d", replies)
	}
	if len(m.Trace.Spans()) == 0 {
		b.Fatal("no spans recorded")
	}
}

// BenchmarkF4_FrontendRoundTripSupervised is F4 with a live supervised
// backend attached (cat, idle): the per-line path must not pay for
// supervision, whose hooks only run when the command pipe ends.
// bench.sh's supervise mode gates on the delta between this benchmark
// and the plain F4 measured in the same run.
func BenchmarkF4_FrontendRoundTripSupervised(b *testing.B) {
	w := core.NewTest()
	var sink strings.Builder
	f := frontend.New(w, nil, &sink)
	sup, err := f.Supervise("cat", nil, frontend.RestartPolicy{MaxRestarts: 3})
	if err != nil {
		b.Skipf("cannot spawn cat backend: %v", err)
	}
	defer func() { _ = sup.Shutdown() }()
	replies := 0
	w.Interp.Stdout = func(string) { replies++ }
	f.HandleAppLine("%label l topLevel")
	f.HandleAppLine("%realize")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.HandleAppLine("%echo [gV l label]")
	}
	if replies < b.N {
		b.Fatalf("replies = %d", replies)
	}
}

// BenchmarkF5_PrimeFactorKeystrokes measures the paper's demo loop:
// type a digit + Return, dispatch through translations, forward the
// input line.
func BenchmarkF5_PrimeFactorKeystrokes(b *testing.B) {
	w := newWafe(b)
	lines := 0
	w.Interp.Stdout = func(string) { lines++ }
	mustEval(b, w, "form top topLevel")
	mustEval(b, w, "asciiText input top editType edit width 200")
	mustEval(b, w, `action input override {<Key>Return: exec(echo [gV input string])}`)
	mustEval(b, w, "realize")
	wid := w.App.WidgetByName("input")
	d := wid.Display()
	d.SetInputFocus(wid.Window())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.TypeString("7\r")
		w.App.Pump()
	}
	if lines < b.N {
		b.Fatalf("read-loop lines = %d", lines)
	}
}

// BenchmarkC1_GetResourceList measures the paper's interactive example
// (42 resources of a Label).
func BenchmarkC1_GetResourceList(b *testing.B) {
	w := newWafe(b)
	mustEval(b, w, "label l topLevel")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := mustEval(b, w, "getResourceList l retVal"); got != "42" {
			b.Fatalf("count = %s", got)
		}
	}
}

// BenchmarkC2_NativeVsWafeCallback quantifies the claim "from its
// performance a user cannot distinguish whether a widget application
// was developed using C or Wafe": the same button activation through a
// native (compiled) callback versus a Tcl-script callback.
func BenchmarkC2_NativeVsWafeCallback(b *testing.B) {
	b.Run("native", func(b *testing.B) {
		w := newWafe(b)
		mustEval(b, w, "command btn topLevel")
		mustEval(b, w, "realize")
		wid := w.App.WidgetByName("btn")
		count := 0
		_ = wid.AddCallback("callback", xt.Callback{Proc: func(*xt.Widget, xt.CallData) { count++ }})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			click(w, "btn")
		}
		if count != b.N {
			b.Fatalf("count = %d", count)
		}
	})
	b.Run("wafe-tcl", func(b *testing.B) {
		w := newWafe(b)
		mustEval(b, w, "set count 0")
		mustEval(b, w, `command btn topLevel callback {incr count}`)
		mustEval(b, w, "realize")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			click(w, "btn")
		}
		if got := mustEval(b, w, "set count"); got != fmt.Sprint(b.N) {
			b.Fatalf("count = %s", got)
		}
	})
}

// BenchmarkC3_ClickAhead measures queuing clicks while the backend is
// busy: events buffer in the I/O channel and none are lost.
func BenchmarkC3_ClickAhead(b *testing.B) {
	w := core.NewTest()
	var sink strings.Builder
	f := frontend.New(w, nil, &sink)
	buffered := 0
	w.Interp.Stdout = func(string) { buffered++ } // backend not reading: lines pile up
	f.HandleAppLine("%command btn topLevel callback {echo click}")
	f.HandleAppLine("%realize")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		click(w, "btn")
	}
	if buffered != b.N {
		b.Fatalf("buffered = %d, want %d (click-ahead lost events)", buffered, b.N)
	}
}

// BenchmarkC5_MassTransfer measures the mass-transfer data channel at
// the paper's 100 000-byte example plus a sweep, reporting MB/s.
func BenchmarkC5_MassTransfer(b *testing.B) {
	for _, size := range []int{1 << 10, 100000, 1 << 20, 4 << 20} {
		b.Run(fmt.Sprintf("bytes=%d", size), func(b *testing.B) {
			w := core.NewTest()
			var sink strings.Builder
			f := frontend.New(w, nil, &sink)
			w.Interp.Stdout = func(string) {}
			f.HandleAppLine("%asciiText text topLevel editType edit")
			f.HandleAppLine("%realize")
			f.HandleAppLine(fmt.Sprintf("%%setCommunicationVariable C %d {sV text string $C}", size))
			payload := strings.Repeat("x", size)
			wid := w.App.WidgetByName("text")
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.FeedMass(payload)
				if len(wid.Str("string")) != size {
					b.Fatalf("transfer incomplete: %d", len(wid.Str("string")))
				}
			}
		})
	}
}

// BenchmarkC6_CodeGeneration measures the generator over the full
// specification (the paper: 60 % of 13 000 C lines were generated).
func BenchmarkC6_CodeGeneration(b *testing.B) {
	data, err := os.ReadFile("specs/wafe.spec")
	if err != nil {
		b.Fatal(err)
	}
	src := string(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries, err := spec.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		code, st := spec.GenerateGo("bindings", entries)
		if st.GeneratedLines < 100 || len(code) == 0 {
			b.Fatal("generation failed")
		}
	}
}

// BenchmarkC7_XevKeyDispatch measures the xev demo path: raw keycode →
// keysym lookup → translation match → exec percent expansion → Tcl.
func BenchmarkC7_XevKeyDispatch(b *testing.B) {
	w := newWafe(b)
	lines := 0
	w.Interp.Stdout = func(string) { lines++ }
	mustEval(b, w, "label xev topLevel")
	mustEval(b, w, `action xev override {<KeyPress>: exec(echo %k %a %s)}`)
	mustEval(b, w, "realize")
	wid := w.App.WidgetByName("xev")
	d := wid.Display()
	d.SetInputFocus(wid.Window())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.InjectKeycode(198, true) // 'w'
		d.InjectKeycode(198, false)
		w.App.Pump()
	}
	if lines < b.N {
		b.Fatalf("lines = %d", lines)
	}
}

// BenchmarkC12_ResourceQuery measures Xrm database matching under the
// paper's precedence rules.
func BenchmarkC12_ResourceQuery(b *testing.B) {
	db := xt.NewXrm()
	_ = db.EnterString(`
*foreground: blue
*Label.foreground: green
wafe*form.label1.foreground: red
*Font: fixed
*background: white
wafe.form.Command.background: gray
`)
	names := []string{"wafe", "form", "label1"}
	classes := []string{"Wafe", "Form", "Label"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, ok := db.Query(names, classes, "foreground", "Foreground")
		if !ok || v != "red" {
			b.Fatalf("query = %q/%v", v, ok)
		}
	}
}

// BenchmarkC10_MultiDisplayCreate measures shell creation on a second
// display.
func BenchmarkC10_MultiDisplayCreate(b *testing.B) {
	w := newWafe(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustEval(b, w, fmt.Sprintf("applicationShell s%d bench-dec4:0", i))
		mustEval(b, w, fmt.Sprintf("destroyWidget s%d", i))
	}
}

// BenchmarkTcl_Interpreter gives context numbers for the host language
// (the paper: Tcl is "not suitable ... when repetitious calculations
// have to be made").
func BenchmarkTcl_Interpreter(b *testing.B) {
	b.Run("expr", func(b *testing.B) {
		in := tcl.New()
		for i := 0; i < b.N; i++ {
			if _, err := in.Eval("expr {3*4 + 2**8 - 1}"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("proc-call", func(b *testing.B) {
		in := tcl.New()
		if _, err := in.Eval("proc f {a b} {expr {$a+$b}}"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := in.Eval("f 3 4"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prime-factors-60", func(b *testing.B) {
		in := tcl.New()
		_, err := in.Eval(`proc pf {n} {
			set result {}
			for {set d 2} {$d <= $n} {incr d} {
				while {[expr $n % $d] == 0} {lappend result $d; set n [expr $n / $d]}
			}
			return $result
		}`)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res, err := in.Eval("pf 60"); err != nil || res != "2 2 3 5" {
				b.Fatalf("%q %v", res, err)
			}
		}
	})
}

// BenchmarkTcl_EngineCompare runs identical workloads under the tree
// walker and the bytecode engine in one process. The tclvm bench gate
// computes the speedup from the two sub-benchmarks of a single run, so
// machine noise cancels instead of being baked into an absolute
// nanosecond threshold.
func BenchmarkTcl_EngineCompare(b *testing.B) {
	engines := []struct {
		name   string
		engine tcl.Engine
	}{
		{"tree", tcl.EngineTree},
		{"bytecode", tcl.EngineBytecode},
	}
	for _, eng := range engines {
		b.Run("prime-factors-60/"+eng.name, func(b *testing.B) {
			in := tcl.New()
			in.SetEngine(eng.engine)
			_, err := in.Eval(`proc pf {n} {
				set result {}
				for {set d 2} {$d <= $n} {incr d} {
					while {[expr $n % $d] == 0} {lappend result $d; set n [expr $n / $d]}
				}
				return $result
			}`)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res, err := in.Eval("pf 60"); err != nil || res != "2 2 3 5" {
					b.Fatalf("%q %v", res, err)
				}
			}
		})
		b.Run("proc-call/"+eng.name, func(b *testing.B) {
			in := tcl.New()
			in.SetEngine(eng.engine)
			if _, err := in.Eval("proc f {a b} {expr {$a+$b}}"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.Eval("f 3 4"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWidgetCreation_WafeVsDirect compares widget creation through
// the Tcl command layer against the direct Xt API — the overhead a C
// programmer would avoid.
func BenchmarkWidgetCreation_WafeVsDirect(b *testing.B) {
	b.Run("wafe-command", func(b *testing.B) {
		w := newWafe(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			name := fmt.Sprintf("l%d", i)
			mustEval(b, w, "label "+name+" topLevel label hello")
			mustEval(b, w, "destroyWidget "+name)
		}
	})
	b.Run("direct-xt", func(b *testing.B) {
		w := newWafe(b)
		cls, _ := coreClassLookup(w, "label")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			name := fmt.Sprintf("l%d", i)
			wid, err := w.App.CreateWidget(name, cls, w.TopLevel, map[string]string{"label": "hello"}, true)
			if err != nil {
				b.Fatal(err)
			}
			wid.Destroy()
		}
	})
}

func coreClassLookup(w *core.Wafe, cmd string) (*xt.Class, bool) {
	for _, c := range w.WidgetSetClasses() {
		if core.CreationCommandName(c.Name) == cmd {
			return c, true
		}
	}
	return nil, false
}
