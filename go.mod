module wafe

go 1.22
