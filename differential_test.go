package wafe

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wafe/internal/core"
	"wafe/internal/tcl"
)

// TestDemoScriptsDifferential runs every demo script in-process twice —
// once with the interpreter's compiled-script and expression caches
// enabled, once with them disabled so every evaluation compiles fresh —
// and asserts the two runs are indistinguishable: same result, same
// error, same puts/echo output, same exit state. This is the
// end-to-end proof that the compile-once pipeline changes performance
// only, not semantics.
func TestDemoScriptsDifferential(t *testing.T) {
	demos, err := filepath.Glob("demos/*.wafe")
	if err != nil || len(demos) == 0 {
		t.Fatalf("no demos found: %v", err)
	}
	type outcome struct {
		result, errStr, output string
		quit                   bool
		exitCode               int
	}
	run := func(src string, uncached bool) outcome {
		w := core.NewTest()
		if uncached {
			w.Interp.SetScriptCacheSize(0)
			w.Interp.SetExprCacheSize(0)
		}
		res, err := w.Eval(src)
		o := outcome{
			result:   res,
			output:   w.Interp.Output(),
			quit:     w.QuitRequested(),
			exitCode: w.ExitCode(),
		}
		if err != nil {
			o.errStr = err.Error()
		}
		return o
	}
	for _, demo := range demos {
		demo := demo
		t.Run(filepath.Base(demo), func(t *testing.T) {
			data, err := os.ReadFile(demo)
			if err != nil {
				t.Fatalf("reading %s: %v", demo, err)
			}
			src := string(data)
			// Strip the interpreter line the way file mode does.
			if strings.HasPrefix(src, "#!") {
				if nl := strings.IndexByte(src, '\n'); nl >= 0 {
					src = src[nl+1:]
				}
			}
			cached := run(src, false)
			uncached := run(src, true)
			if cached != uncached {
				t.Errorf("cached and uncached runs differ:\ncached:   %+v\nuncached: %+v", cached, uncached)
			}
			// The demos are real programs: both runs must have actually
			// produced output, otherwise the comparison proves nothing.
			if cached.output == "" && cached.errStr == "" {
				t.Errorf("demo produced no output and no error; differential run is vacuous")
			}
		})
	}
}

// TestDemoScriptsEngineDifferential runs every demo script once under
// the tree-walking engine and once under the bytecode VM and asserts
// the two executions are indistinguishable: same result, same error,
// same puts/echo output, same exit state. Together with the
// in-package oracle suite (corpus, bug-sweep goldens, randomized
// scripts) this is the acceptance proof that engine v2 changes
// performance only, not semantics, on the shipped program corpus.
func TestDemoScriptsEngineDifferential(t *testing.T) {
	demos, err := filepath.Glob("demos/*.wafe")
	if err != nil || len(demos) == 0 {
		t.Fatalf("no demos found: %v", err)
	}
	type outcome struct {
		result, errStr, output string
		quit                   bool
		exitCode               int
	}
	run := func(src string, engine tcl.Engine) outcome {
		w := core.NewTest()
		w.Interp.SetEngine(engine)
		res, err := w.Eval(src)
		o := outcome{
			result:   res,
			output:   w.Interp.Output(),
			quit:     w.QuitRequested(),
			exitCode: w.ExitCode(),
		}
		if err != nil {
			o.errStr = err.Error()
		}
		return o
	}
	for _, demo := range demos {
		demo := demo
		t.Run(filepath.Base(demo), func(t *testing.T) {
			data, err := os.ReadFile(demo)
			if err != nil {
				t.Fatalf("reading %s: %v", demo, err)
			}
			src := string(data)
			if strings.HasPrefix(src, "#!") {
				if nl := strings.IndexByte(src, '\n'); nl >= 0 {
					src = src[nl+1:]
				}
			}
			tree := run(src, tcl.EngineTree)
			bytecode := run(src, tcl.EngineBytecode)
			if tree != bytecode {
				t.Errorf("engines disagree:\ntree:     %+v\nbytecode: %+v", tree, bytecode)
			}
			if tree.output == "" && tree.errStr == "" {
				t.Errorf("demo produced no output and no error; differential run is vacuous")
			}
		})
	}
}
