package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunFileMode(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "s.wafe")
	if err := os.WriteFile(script, []byte("label l topLevel\nquit 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"wafe", "--f", script}); code != 5 {
		t.Errorf("exit = %d, want 5", code)
	}
}

func TestRunBadArgs(t *testing.T) {
	if code := run([]string{"wafe", "--bogus"}); code != 2 {
		t.Errorf("bad option exit = %d", code)
	}
	if code := run([]string{"wafe", "--f", "/no/such/script"}); code != 2 {
		t.Errorf("missing script exit = %d", code)
	}
}

// TestRunMetricsDump: --metrics-dump enables observability and writes
// the JSON document when the process exits.
func TestRunMetricsDump(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "s.wafe")
	dump := filepath.Join(dir, "metrics.json")
	content := "label l topLevel\nrealize\nset x 1\nset x 1\nset x 1\nquit 0\n"
	if err := os.WriteFile(script, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"wafe", "--f", script, "--metrics-dump", dump}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics map[string]int64 `json:"metrics"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("dump is not JSON: %v (%q)", err, data)
	}
	if doc.Metrics["tcl.evals"] == 0 {
		t.Errorf("tcl.evals = %d, want > 0", doc.Metrics["tcl.evals"])
	}
	if doc.Metrics["tcl.dispatch.set"] < 3 {
		t.Errorf("tcl.dispatch.set = %d, want >= 3", doc.Metrics["tcl.dispatch.set"])
	}
	for _, key := range []string{"frontend.eval_errors", "xt.events_dispatched", "xproto.requests.CreateWindow"} {
		if _, ok := doc.Metrics[key]; !ok {
			t.Errorf("dump misses %s", key)
		}
	}
}

func TestRunScriptError(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "bad.wafe")
	if err := os.WriteFile(script, []byte("label\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"wafe", "--f", script}); code != 1 {
		t.Errorf("script error exit = %d", code)
	}
}
