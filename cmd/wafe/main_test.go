package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunFileMode(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "s.wafe")
	if err := os.WriteFile(script, []byte("label l topLevel\nquit 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"wafe", "--f", script}); code != 5 {
		t.Errorf("exit = %d, want 5", code)
	}
}

func TestRunBadArgs(t *testing.T) {
	if code := run([]string{"wafe", "--bogus"}); code != 2 {
		t.Errorf("bad option exit = %d", code)
	}
	if code := run([]string{"wafe", "--f", "/no/such/script"}); code != 2 {
		t.Errorf("missing script exit = %d", code)
	}
}

func TestRunScriptError(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "bad.wafe")
	if err := os.WriteFile(script, []byte("label\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"wafe", "--f", script}); code != 1 {
		t.Errorf("script error exit = %d", code)
	}
}
