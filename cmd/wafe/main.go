// Command wafe is the Widget[Athena]FrontEnd: a Tcl interpreter
// extended with X Toolkit and Athena widget commands, talking to a
// headless in-memory X display.
//
// It supports the paper's three modes of operation plus serve mode:
//
//	wafe                          interactive mode (commands from stdin)
//	wafe --f script.wafe          file mode (the #! magic)
//	wafe --app backend args...    frontend mode (backend as child process)
//	xwafeApp → wafeApp            frontend mode via the symlink scheme
//	wafe --serve tcp:host:port    serve mode (one session per connection)
//
// Arguments starting with a double dash are handled by the frontend;
// -display and -xrm go to the X Toolkit; the rest is passed to the
// application program.
package main

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"wafe/internal/core"
	"wafe/internal/frontend"
	"wafe/internal/obs"
)

func main() {
	os.Exit(run(os.Args))
}

func run(args []string) int {
	opts, err := frontend.ParseArgs(args[0], args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if opts.ShowVersion {
		fmt.Println(frontend.Version)
		return 0
	}
	set := core.SetAthena
	if strings.Contains(args[0], "mofe") {
		set = core.SetMotif
	}

	// The resource description file is evaluated at startup, before
	// -xrm entries (which therefore take precedence on ties).
	resText, code := resolveResourceFile(opts.ResourceFile)
	if code != 0 {
		return code
	}

	if opts.Mode == frontend.ModeServe {
		return runServe(opts, set, resText)
	}

	// The classic single-process modes are one Session around the
	// process's stdin/stdout.
	sess, err := frontend.NewSession(frontend.SessionConfig{
		Set:         set,
		Opts:        opts,
		Terminal:    os.Stdout,
		DisplayName: opts.DisplayName,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wafe:", err)
		return 2
	}
	defer sess.Close()
	w, f := sess.W, sess.F
	if err := sess.LoadResources(resText, opts.XrmEntries); err != nil {
		fmt.Fprintln(os.Stderr, "wafe:", err)
		return 2
	}

	// Observability: the dump/debug/flight flags enable the metrics
	// layer; --debug-addr additionally serves expvar + pprof +
	// Prometheus text, --metrics-dump writes the JSON document when
	// the process exits, and --flight-dir arms the flight recorder.
	w.Flight = flightRecorder(opts)
	if opts.MetricsDump != "" || opts.DebugAddr != "" || w.Flight != nil {
		m := w.EnableObservability()
		if opts.DebugAddr != "" {
			ln, err := obs.ServeDebug(opts.DebugAddr, m)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wafe: --debug-addr:", err)
				return 2
			}
			defer ln.Close()
			fmt.Fprintln(os.Stderr, "wafe: debug endpoint on http://"+ln.Addr().String())
		}
		if opts.MetricsDump != "" {
			defer dumpMetrics(opts.MetricsDump, m)
		}
	}

	switch opts.Mode {
	case frontend.ModeInteractive:
		w.Interp.Stdout = func(line string) { fmt.Println(line) }
		err := f.RunInteractive(os.Stdin, func() { fmt.Fprint(os.Stderr, "wafe> ") })
		if err != nil {
			fmt.Fprintln(os.Stderr, "wafe:", err)
			return 1
		}
		return w.ExitCode()

	case frontend.ModeFile:
		data, err := os.ReadFile(opts.ScriptFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wafe:", err)
			return 2
		}
		w.Interp.Stdout = func(line string) { fmt.Println(line) }
		if err := f.RunScript(string(data)); err != nil {
			fmt.Fprintln(os.Stderr, "wafe:", err)
			return 1
		}
		if w.QuitRequested() {
			return w.ExitCode()
		}
		// The script realized a UI and did not quit: enter the event
		// loop (timeouts keep it alive; quit ends it).
		return w.App.MainLoop()

	case frontend.ModeFrontend:
		// Always run the backend under supervision: even with
		// --respawn 0 (the default, classic quit-on-exit behavior) the
		// supervisor provides exit classification for the `backend`
		// command and the graceful shutdown escalation.
		sup, err := sess.Supervise(opts.AppProgram, opts.AppArgs, frontend.RestartPolicy{
			MaxRestarts: opts.Respawn,
			Grace:       opts.BackendGrace,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		code, runErr := sess.Run()
		if runErr != nil {
			fmt.Fprintln(os.Stderr, "wafe:", runErr)
		}
		_ = sup.Shutdown()
		return code
	}
	return 0
}

// runServe is the serve-mode main loop: bind, accept until a
// termination signal, drain, and optionally dump the per-session
// metrics document.
func runServe(opts *frontend.Options, set core.WidgetSet, resText string) int {
	fr := flightRecorder(opts)
	var sm *obs.ServerMetrics
	if opts.MetricsDump != "" || opts.DebugAddr != "" || fr != nil {
		sm = obs.NewServer()
		if opts.DebugAddr != "" {
			ln, err := obs.ServeDebugSource(opts.DebugAddr, sm)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wafe: --debug-addr:", err)
				return 2
			}
			defer ln.Close()
			fmt.Fprintln(os.Stderr, "wafe: debug endpoint on http://"+ln.Addr().String())
		}
		if opts.MetricsDump != "" {
			defer dumpMetrics(opts.MetricsDump, sm)
		}
	}
	srv, err := frontend.Listen(opts.ServeAddr, frontend.ServeConfig{
		Opts:        opts,
		Set:         set,
		MaxSessions: opts.MaxSessions,
		Metrics:     sm,
		Flight:      fr,
		Resources:   resText,
		XrmEntries:  opts.XrmEntries,
		Grace:       opts.BackendGrace,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "wafe: serving on %s\n", srv.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "wafe: shutting down")
		srv.Shutdown()
	}()

	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "wafe:", err)
		return 1
	}
	return 0
}

// flightRecorder builds the flight recorder from the --flight-dir and
// --flight-latency flags, or returns nil when neither armed it.
func flightRecorder(opts *frontend.Options) *obs.FlightRecorder {
	if opts.FlightDir == "" && opts.FlightLatency <= 0 {
		return nil
	}
	return &obs.FlightRecorder{Dir: opts.FlightDir, Latency: opts.FlightLatency}
}

// resolveResourceFile reads the application-defaults file selected by
// --resources, $WAFE_RESOURCE_FILE, or a Wafe.ad in the current
// directory. A non-zero exit code signals a read failure.
func resolveResourceFile(flag string) (text string, code int) {
	resFile := flag
	if resFile == "" {
		resFile = os.Getenv("WAFE_RESOURCE_FILE")
	}
	if resFile == "" {
		if _, err := os.Stat("Wafe.ad"); err == nil {
			resFile = "Wafe.ad"
		}
	}
	if resFile == "" {
		return "", 0
	}
	data, err := os.ReadFile(resFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wafe: resource file:", err)
		return "", 2
	}
	return string(data), 0
}

// dumpMetrics writes the JSON metrics document at exit ("-" writes to
// standard error).
func dumpMetrics(dest string, src obs.Source) {
	out := io.Writer(os.Stderr)
	if dest != "-" {
		file, err := os.Create(dest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wafe: --metrics-dump:", err)
			return
		}
		defer file.Close()
		out = file
	}
	if err := src.WriteJSON(out); err != nil {
		fmt.Fprintln(os.Stderr, "wafe: --metrics-dump:", err)
	}
}
