// Command wafe is the Widget[Athena]FrontEnd: a Tcl interpreter
// extended with X Toolkit and Athena widget commands, talking to a
// headless in-memory X display.
//
// It supports the paper's three modes of operation:
//
//	wafe                          interactive mode (commands from stdin)
//	wafe --f script.wafe          file mode (the #! magic)
//	wafe --app backend args...    frontend mode (backend as child process)
//	xwafeApp → wafeApp            frontend mode via the symlink scheme
//
// Arguments starting with a double dash are handled by the frontend;
// -display and -xrm go to the X Toolkit; the rest is passed to the
// application program.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"wafe/internal/core"
	"wafe/internal/frontend"
	"wafe/internal/obs"
)

func main() {
	os.Exit(run(os.Args))
}

func run(args []string) int {
	opts, err := frontend.ParseArgs(args[0], args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if opts.ShowVersion {
		fmt.Println(frontend.Version)
		return 0
	}
	set := core.SetAthena
	if strings.Contains(args[0], "mofe") {
		set = core.SetMotif
	}
	w, err := core.New(core.Config{
		AppName:     opts.AppName,
		DisplayName: opts.DisplayName,
		Set:         set,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wafe:", err)
		return 2
	}
	// The resource description file is evaluated at startup, before
	// -xrm entries (which therefore take precedence on ties).
	resFile := opts.ResourceFile
	if resFile == "" {
		resFile = os.Getenv("WAFE_RESOURCE_FILE")
	}
	if resFile == "" {
		if _, err := os.Stat("Wafe.ad"); err == nil {
			resFile = "Wafe.ad"
		}
	}
	if resFile != "" {
		data, err := os.ReadFile(resFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wafe: resource file:", err)
			return 2
		}
		if err := w.App.DB.EnterString(string(data)); err != nil {
			fmt.Fprintln(os.Stderr, "wafe: resource file:", err)
			return 2
		}
	}
	for _, e := range opts.XrmEntries {
		if err := w.App.DB.EnterString(e); err != nil {
			fmt.Fprintln(os.Stderr, "wafe: -xrm:", err)
			return 2
		}
	}
	f := frontend.New(w, opts, os.Stdout)

	// Observability: both flags enable the metrics layer; --debug-addr
	// additionally serves expvar + pprof, and --metrics-dump writes
	// the JSON document when the process exits.
	if opts.MetricsDump != "" || opts.DebugAddr != "" {
		m := w.EnableObservability()
		if opts.DebugAddr != "" {
			ln, err := obs.ServeDebug(opts.DebugAddr, m)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wafe: --debug-addr:", err)
				return 2
			}
			defer ln.Close()
			fmt.Fprintln(os.Stderr, "wafe: debug endpoint on http://"+ln.Addr().String())
		}
		if opts.MetricsDump != "" {
			defer func() {
				out := io.Writer(os.Stderr)
				if opts.MetricsDump != "-" {
					file, err := os.Create(opts.MetricsDump)
					if err != nil {
						fmt.Fprintln(os.Stderr, "wafe: --metrics-dump:", err)
						return
					}
					defer file.Close()
					out = file
				}
				if err := m.WriteJSON(out); err != nil {
					fmt.Fprintln(os.Stderr, "wafe: --metrics-dump:", err)
				}
			}()
		}
	}

	switch opts.Mode {
	case frontend.ModeInteractive:
		w.Interp.Stdout = func(line string) { fmt.Println(line) }
		err := f.RunInteractive(os.Stdin, func() { fmt.Fprint(os.Stderr, "wafe> ") })
		if err != nil {
			fmt.Fprintln(os.Stderr, "wafe:", err)
			return 1
		}
		return w.ExitCode()

	case frontend.ModeFile:
		data, err := os.ReadFile(opts.ScriptFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wafe:", err)
			return 2
		}
		w.Interp.Stdout = func(line string) { fmt.Println(line) }
		if err := f.RunScript(string(data)); err != nil {
			fmt.Fprintln(os.Stderr, "wafe:", err)
			return 1
		}
		if w.QuitRequested() {
			return w.ExitCode()
		}
		// The script realized a UI and did not quit: enter the event
		// loop (timeouts keep it alive; quit ends it).
		return w.App.MainLoop()

	case frontend.ModeFrontend:
		// Always run the backend under supervision: even with
		// --respawn 0 (the default, classic quit-on-exit behavior) the
		// supervisor provides exit classification for the `backend`
		// command and the graceful shutdown escalation.
		sup, err := f.Supervise(opts.AppProgram, opts.AppArgs, frontend.RestartPolicy{
			MaxRestarts: opts.Respawn,
			Grace:       opts.BackendGrace,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		code := w.App.MainLoop()
		_ = sup.Shutdown()
		return code
	}
	return 0
}
