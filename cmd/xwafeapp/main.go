// Command xwafeapp demonstrates the symlink naming scheme of the
// paper: "Suppose an application program is named wafeApp. If a link
// like ln -s wafe xwafeApp is established and xwafeApp is executed, the
// program wafeApp is spawned as a subprocess of wafe and connects its
// stdio channels with the frontend."
//
// It resolves its own invocation name (or -as NAME) through the scheme
// and either prints the resolution (-n) or executes wafe --app with the
// resolved backend.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"wafe/internal/frontend"
)

func main() {
	as := flag.String("as", "", "pretend the binary was invoked under this name")
	dry := flag.Bool("n", false, "print the resolution instead of running wafe")
	wafeBin := flag.String("wafe", "wafe", "path to the wafe binary")
	flag.Parse()

	name := os.Args[0]
	if *as != "" {
		name = *as
	}
	app, ok := frontend.SymlinkApp(baseName(name))
	if !ok {
		fmt.Fprintf(os.Stderr, "xwafeapp: %q does not follow the xApp naming scheme\n", name)
		os.Exit(2)
	}
	if *dry {
		fmt.Printf("%s → wafe --app %s %v\n", baseName(name), app, flag.Args())
		return
	}
	args := append([]string{"--app", app}, flag.Args()...)
	cmd := exec.Command(*wafeBin, args...)
	cmd.Stdin = os.Stdin
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "xwafeapp:", err)
		os.Exit(1)
	}
}

func baseName(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}
