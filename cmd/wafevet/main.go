// Command wafevet analyzes the repository's Go packages for runtime
// invariants the standard vet cannot know about:
//
//	nilguard      — obs metric pointers must be nil-checked before use
//	lockedeval    — no mutex may be held across Interp.Eval/EvalScript
//	checkscan     — strconv/fmt.Sscan errors must not be discarded
//	atomics       — atomically-accessed fields must never be read plainly
//	redisplayclip — Redisplay procs must consult the damage clip
//	sessionowner  — session-owned state (Interp, App, Widget, Display,
//	                Frontend) must only be touched from the owning event
//	                loop; other goroutines route through App.Post
//	lockorder     — the package's mutex acquisition graph must be
//	                acyclic, and no lock may be held into code that
//	                reaches Interp.Eval*/App.Post
//
// It is built on go/parser + go/types + the stdlib source importer
// only: no network, no GOPATH, no external analysis framework.
//
// Usage:
//
//	wafevet [-root dir] [-timing] ./internal/... [dir ...]
//
// A trailing "/..." walks the tree for Go packages. Findings print as
// "file:line:col: [rule] message"; exit status is 1 when any are
// found, 2 on load errors. With -timing, cumulative per-rule wall
// time prints after the findings as "vet-timing <rule> <ms>" lines
// (the bench harness records them into BENCH_check.json).
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"wafe/internal/analysis"
)

func main() {
	root := flag.String("root", ".", "module root (directory containing go.mod)")
	timing := flag.Bool("timing", false, "print cumulative per-rule wall time after the findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wafevet [-root dir] [-timing] ./internal/... [dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var dirs []string
	for _, arg := range flag.Args() {
		if strings.HasSuffix(arg, "/...") {
			base := strings.TrimSuffix(arg, "/...")
			if base == "" {
				base = "."
			}
			err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if name == "testdata" || (strings.HasPrefix(name, ".") && path != base) {
					return fs.SkipDir
				}
				if hasGoFiles(path) {
					dirs = append(dirs, path)
				}
				return nil
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "wafevet:", err)
				os.Exit(2)
			}
			continue
		}
		dirs = append(dirs, arg)
	}

	v := analysis.NewVet(*root)
	found := false
	fail := false
	for _, dir := range dirs {
		ds, err := v.CheckDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wafevet: %s: %v\n", dir, err)
			fail = true
			continue
		}
		for _, d := range ds {
			fmt.Println(d.String())
			found = true
		}
	}
	if *timing {
		t := v.Timings()
		rules := make([]string, 0, len(t))
		for rule := range t {
			rules = append(rules, rule)
		}
		sort.Strings(rules)
		for _, rule := range rules {
			fmt.Printf("vet-timing %s %.1f\n", rule, float64(t[rule].Microseconds())/1000)
		}
	}
	if fail {
		os.Exit(2)
	}
	if found {
		os.Exit(1)
	}
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
