package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAllOutputs(t *testing.T) {
	dir := t.TempDir()
	goOut := filepath.Join(dir, "b.go")
	refOut := filepath.Join(dir, "ref.txt")
	texOut := filepath.Join(dir, "ref.tex")
	code := run([]string{"-spec", "../../specs/wafe.spec", "-go", goOut, "-pkg", "bindings", "-ref", refOut, "-tex", texOut})
	if code != 0 {
		t.Fatalf("run = %d", code)
	}
	goSrc, err := os.ReadFile(goOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(goSrc), "package bindings") {
		t.Error("generated Go missing package clause")
	}
	ref, _ := os.ReadFile(refOut)
	if !strings.Contains(string(ref), "WAFE SHORT REFERENCE") {
		t.Error("reference missing header")
	}
	tex, _ := os.ReadFile(texOut)
	if !strings.Contains(string(tex), "\\section*{Wafe Short Reference}") {
		t.Error("TeX missing preamble")
	}
}

func TestGenerateErrors(t *testing.T) {
	if code := run([]string{"-spec", "/no/such/spec"}); code != 2 {
		t.Errorf("missing spec → %d, want 2", code)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.spec")
	if err := os.WriteFile(bad, []byte("void\nBroken(\nin: Widget\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-spec", bad}); code != 1 {
		t.Errorf("bad spec → %d, want 1", code)
	}
}
