// Command wafegen is Wafe's code generator: it reads the high-level
// command specification and emits Go binding source, the short
// reference guide (text and TeX) and generation statistics — the role
// the Perl program plays in the original system, where about 60 % of
// the 13 000 lines of C were generated.
//
// Usage:
//
//	wafegen -spec specs/wafe.spec -go bindings.go -pkg bindings \
//	        -ref reference.txt -tex reference.tex -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"wafe/internal/spec"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("wafegen", flag.ContinueOnError)
	specPath := fs.String("spec", "specs/wafe.spec", "specification file")
	goOut := fs.String("go", "", "write generated Go bindings to this file")
	pkg := fs.String("pkg", "bindings", "package name for generated Go code")
	refOut := fs.String("ref", "", "write the short reference guide (text) to this file")
	texOut := fs.String("tex", "", "write the short reference guide (TeX) to this file")
	stats := fs.Bool("stats", false, "print generation statistics")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wafegen:", err)
		return 2
	}
	entries, err := spec.Parse(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "wafegen:", err)
		return 1
	}
	src, st := spec.GenerateGo(*pkg, entries)
	if *goOut != "" {
		if err := os.WriteFile(*goOut, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "wafegen:", err)
			return 1
		}
	}
	if *refOut != "" {
		if err := os.WriteFile(*refOut, []byte(spec.GenerateReference(entries)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "wafegen:", err)
			return 1
		}
	}
	if *texOut != "" {
		if err := os.WriteFile(*texOut, []byte(spec.GenerateTeX(entries)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "wafegen:", err)
			return 1
		}
	}
	if *stats {
		fmt.Printf("spec entries:      %d\n", st.Entries)
		fmt.Printf("  widget classes:  %d\n", st.WidgetClasses)
		fmt.Printf("  functions:       %d\n", st.Functions)
		fmt.Printf("generated Go lines: %d\n", st.GeneratedLines)
	}
	return 0
}
