// Command wafecheck is a static linter for Wafe scripts. It reuses
// the internal/tcl parser and the command-metadata registry the core
// populates, so every diagnostic reflects what the wafe binary itself
// would accept.
//
// Usage:
//
//	wafecheck [-set athena|motif|both] [path ...]
//	wafecheck -why [path ...]
//	some-generator | wafecheck -
//
// Paths may be .wafe scripts, Go files with embedded scripts, or
// directories (walked recursively for both). "-" reads a script from
// stdin, so application programs can pre-validate generated scripts
// before sending them over the pipe protocol. Exit status is 1 when
// any diagnostic is reported, 2 on usage or I/O errors.
//
// With -why, instead of linting, every statically-compilable command
// site is labeled `cmd@proc:line` with the VM's dispatch decision:
// "specialized (op...)" when the bytecode compiler emits a fast-path
// opcode, or "generic:" plus the rule that forces tree-walk dispatch
// (non-literal words, non-canonical number spelling, array targets,
// command substitution in an expression, ...). Exit status is always 0
// unless a path fails to read: deopts are explanations, not errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"wafe/internal/analysis"
)

func main() {
	set := flag.String("set", "both", "widget set to check against: athena, motif or both")
	why := flag.Bool("why", false, "explain per command site whether the VM specializes it or what forces generic dispatch")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wafecheck [-set athena|motif|both] [path ...]\n")
		fmt.Fprintf(os.Stderr, "       wafecheck -why [path ...]\n")
		fmt.Fprintf(os.Stderr, "       wafecheck -   (read script from stdin)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *why {
		os.Exit(runWhy(flag.Args()))
	}

	table, err := analysis.NewTable(*set)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wafecheck:", err)
		os.Exit(2)
	}
	checker := analysis.NewChecker(table)
	// The file frontend registers these for every script it runs.
	checker.Extra = []string{"getChannel", "setCommunicationVariable"}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	found := false
	fail := false
	emit := func(ds []analysis.Diagnostic) {
		for _, d := range ds {
			fmt.Println(d.String())
			found = true
		}
	}

	for _, arg := range args {
		if arg == "-" {
			src, err := io.ReadAll(os.Stdin)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wafecheck: stdin:", err)
				fail = true
				continue
			}
			emit(checker.CheckScript("<stdin>", string(src)))
			continue
		}
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wafecheck:", err)
			fail = true
			continue
		}
		if info.IsDir() {
			err := filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") && path != arg {
						return fs.SkipDir
					}
					return nil
				}
				switch filepath.Ext(path) {
				case ".wafe", ".go":
					return checkFile(checker, path, emit)
				}
				return nil
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "wafecheck:", err)
				fail = true
			}
			continue
		}
		if err := checkFile(checker, arg, emit); err != nil {
			fmt.Fprintln(os.Stderr, "wafecheck:", err)
			fail = true
		}
	}

	if fail {
		os.Exit(2)
	}
	if found {
		os.Exit(1)
	}
}

// runWhy labels every command site of the given .wafe paths (or
// stdin) with the VM's dispatch decision.
func runWhy(args []string) int {
	if len(args) == 0 {
		flag.Usage()
		return 2
	}
	status := 0
	explain := func(file, src string) {
		for _, r := range analysis.ExplainFile(file, src) {
			fmt.Println(r.String())
		}
	}
	for _, arg := range args {
		if arg == "-" {
			src, err := io.ReadAll(os.Stdin)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wafecheck: stdin:", err)
				status = 2
				continue
			}
			explain("<stdin>", string(src))
			continue
		}
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wafecheck:", err)
			status = 2
			continue
		}
		if info.IsDir() {
			err := filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") && path != arg {
						return fs.SkipDir
					}
					return nil
				}
				if filepath.Ext(path) == ".wafe" {
					src, err := os.ReadFile(path)
					if err != nil {
						return err
					}
					explain(path, string(src))
				}
				return nil
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "wafecheck:", err)
				status = 2
			}
			continue
		}
		src, err := os.ReadFile(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wafecheck:", err)
			status = 2
			continue
		}
		explain(arg, string(src))
	}
	return status
}

func checkFile(c *analysis.Checker, path string, emit func([]analysis.Diagnostic)) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if filepath.Ext(path) == ".go" {
		ds, err := c.CheckGoFile(path, src)
		if err != nil {
			return err
		}
		emit(ds)
		return nil
	}
	emit(c.CheckScript(path, string(src)))
	return nil
}
