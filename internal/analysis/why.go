package analysis

import (
	"fmt"
	"strings"

	"wafe/internal/tcl"
)

// This file implements `wafecheck -why`: per command site, report
// whether the bytecode VM specializes the command or which rule forces
// generic dispatch. Labels come from tcl.ExplainScript, which reads
// the actually-compiled Program; this file contributes the structural
// recursion (proc bodies, loop bodies, if/switch arms, [command]
// substitutions) and the byte-offset → file line/column mapping that
// check.go's walker established.

// SiteReport is the -why record for one command site.
type SiteReport struct {
	File      string
	Line, Col int
	// Cmd is the literal command name, "?" when dynamic.
	Cmd string
	// Proc is the enclosing proc name, "" at the top level.
	Proc string
	// Op is the dispatch opcode ("set", "incr", "expr", "exprTmpl",
	// "while", "for", "invoke").
	Op          string
	Specialized bool
	// Reason is the fallback explanation for generic sites.
	Reason string
	// Mismatch is the (test-gated) disagreement flag from tcl.
	Mismatch bool
}

// Site renders the ISSUE-format site label "cmd@proc:line".
func (s SiteReport) Site() string {
	proc := s.Proc
	if proc == "" {
		proc = "<toplevel>"
	}
	return fmt.Sprintf("%s@%s:%d", s.Cmd, proc, s.Line)
}

func (s SiteReport) String() string {
	label := fmt.Sprintf("specialized (%s)", s.Op)
	if !s.Specialized {
		label = "generic: " + s.Reason
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s", s.File, s.Line, s.Col, s.Site(), label)
}

// ExplainFile labels every statically-reachable command site of a
// .wafe source: the top level, proc bodies, loop and branch bodies,
// and [command] substitutions. Sites whose script text is dynamic
// (built at runtime) cannot be labeled statically and are skipped,
// exactly as the VM cannot compile them ahead of time either.
func ExplainFile(file, src string) []SiteReport {
	at := func(off int) (int, int) { return tcl.LineCol(src, off) }
	e := &explainer{file: file}
	exact := func(base int) posFn {
		return func(off int) (int, int) { return at(base + off) }
	}
	s, _ := tcl.Compile(src)
	e.walk(s, exact(0), exact, "", 0)
	return e.sites
}

type explainer struct {
	file  string
	sites []SiteReport
}

// walk explains one compiled script and recurses into every braced
// word that the interpreter will evaluate as its own script.
func (e *explainer) walk(s *tcl.Script, pos posFn, sub subFn, proc string, depth int) {
	if s == nil || depth > 20 {
		return
	}
	byPos := make(map[int]tcl.CmdExplanation)
	for _, ex := range tcl.ExplainScript(s) {
		byPos[ex.Pos] = ex
	}
	for _, cmd := range s.Commands() {
		if len(cmd.Words) == 0 {
			continue
		}
		ex, ok := byPos[cmd.Words[0].Pos]
		if !ok {
			continue
		}
		line, col := pos(cmd.Pos)
		name := ex.Name
		if name == "" {
			name = "?"
		}
		e.sites = append(e.sites, SiteReport{
			File: e.file, Line: line, Col: col,
			Cmd: name, Proc: proc,
			Op: ex.Op, Specialized: ex.Specialized,
			Reason: ex.Reason, Mismatch: ex.Mismatch,
		})
		// Command substitutions execute inline with this command.
		for _, w := range cmd.Words {
			e.walkParts(w.Parts, pos, sub, proc, depth)
		}
		e.recurse(ex.Name, cmd, pos, sub, proc, depth)
	}
}

func (e *explainer) walkParts(parts []tcl.Part, pos posFn, sub subFn, proc string, depth int) {
	for _, p := range parts {
		switch p.Kind {
		case tcl.PartCommand:
			nested, nestedSub := nest(pos, sub, p.Pos+1)
			e.walk(p.Script, nested, nestedSub, proc, depth+1)
		case tcl.PartVar:
			if p.HasIndex {
				e.walkParts(p.Index, pos, sub, proc, depth)
			}
		}
	}
}

// recurse descends into the braced script arguments the interpreter
// evaluates as separate Programs: proc bodies (with the proc label),
// loop bodies, if/switch arms and catch bodies.
func (e *explainer) recurse(name string, cmd tcl.CommandView, pos posFn, sub subFn, proc string, depth int) {
	words := cmd.Words
	braced := func(w tcl.WordView, inProc string) {
		if w.Form != '{' {
			return
		}
		lit, ok := w.Literal()
		if !ok {
			return
		}
		s, _ := tcl.Compile(lit)
		nested, nestedSub := nest(pos, sub, w.Pos+1)
		e.walk(s, nested, nestedSub, inProc, depth+1)
	}
	switch name {
	case "proc":
		if len(words) == 4 {
			pname, _ := words[1].Literal()
			braced(words[3], pname)
		}
	case "while":
		if len(words) == 3 {
			braced(words[2], proc)
		}
	case "for":
		if len(words) == 5 {
			braced(words[1], proc)
			braced(words[3], proc)
			braced(words[4], proc)
		}
	case "foreach":
		if len(words) >= 4 {
			braced(words[len(words)-1], proc)
		}
	case "catch":
		if len(words) >= 2 {
			braced(words[1], proc)
		}
	case "if":
		e.recurseIf(cmd, pos, sub, proc, depth)
	case "switch":
		e.recurseSwitch(cmd, pos, sub, proc, depth)
	}
}

// recurseIf mirrors checkIf's structure walk: skip conditions, descend
// into every then/elseif/else body.
func (e *explainer) recurseIf(cmd tcl.CommandView, pos posFn, sub subFn, proc string, depth int) {
	words := cmd.Words
	braced := func(w tcl.WordView) {
		if w.Form != '{' {
			return
		}
		if lit, ok := w.Literal(); ok {
			s, _ := tcl.Compile(lit)
			nested, nestedSub := nest(pos, sub, w.Pos+1)
			e.walk(s, nested, nestedSub, proc, depth+1)
		}
	}
	i := 1 // condition
	for {
		i++ // past the condition
		if i < len(words) {
			if lit, ok := words[i].Literal(); ok && lit == "then" {
				i++
			}
		}
		if i >= len(words) {
			return
		}
		braced(words[i])
		i++
		if i >= len(words) {
			return
		}
		kw, ok := words[i].Literal()
		if !ok {
			return
		}
		switch kw {
		case "elseif":
			i++ // now at the next condition
			continue
		case "else":
			i++
			if i < len(words) {
				braced(words[i])
			}
			return
		default:
			braced(words[i]) // implicit else body
			return
		}
	}
}

// recurseSwitch mirrors checkSwitch: descend into pattern/body pairs
// given as separate words.
func (e *explainer) recurseSwitch(cmd tcl.CommandView, pos posFn, sub subFn, proc string, depth int) {
	words := cmd.Words
	i := 1
	for i < len(words) {
		lit, ok := words[i].Literal()
		if !ok || !strings.HasPrefix(lit, "-") {
			break
		}
		i++
		if lit == "--" {
			break
		}
	}
	i++ // the subject string
	if len(words)-i < 2 {
		return
	}
	for ; i+1 < len(words); i += 2 {
		body := words[i+1]
		if lit, ok := body.Literal(); ok && lit == "-" {
			continue
		}
		if body.Form != '{' {
			continue
		}
		if lit, ok := body.Literal(); ok {
			s, _ := tcl.Compile(lit)
			nested, nestedSub := nest(pos, sub, body.Pos+1)
			e.walk(s, nested, nestedSub, proc, depth+1)
		}
	}
}
