// lockorder fixture: a two-mutex ordering cycle, a blocking call made
// under a lock that transitively reaches Eval, Post under a lock, and
// the clean idioms (consistent order, release-then-enqueue).
package vetfixture

import (
	"sync"

	"wafe/internal/tcl"
	"wafe/internal/xt"
)

type registry struct {
	mu    sync.Mutex
	index sync.Mutex
	app   *xt.App
	in    *tcl.Interp
	names []string
}

// badOrderAB and badOrderBA acquire the two mutexes in opposite
// orders: each lexical edge lies on the cycle and is reported.
func (r *registry) badOrderAB() {
	r.mu.Lock()
	r.index.Lock() // want lockorder
	r.index.Unlock()
	r.mu.Unlock()
}

func (r *registry) badOrderBA() {
	r.index.Lock()
	r.mu.Lock() // want lockorder
	r.mu.Unlock()
	r.index.Unlock()
}

// badHeldEval calls a helper while mu is held; the helper evaluates
// Tcl, which can call back into code needing mu.
func (r *registry) badHeldEval() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.notifyScript() // want lockorder
}

func (r *registry) notifyScript() {
	r.in.Eval("registryChanged")
}

// badPostUnderLock enqueues loop work while holding mu: a full queue
// blocks the sender, and the loop may need mu itself.
func (r *registry) badPostUnderLock() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.app.Post(func() {}) // want lockorder
}

// goodConsistentOrder takes both locks in one fixed order everywhere
// else too, so no cycle exists through it.
func (r *registry) goodConsistentOrder() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.names) == 0 {
		return ""
	}
	return r.names[0]
}

// goodReleaseThenPost copies what it needs under the lock and
// enqueues after unlocking.
func (r *registry) goodReleaseThenPost() {
	r.mu.Lock()
	n := len(r.names)
	r.mu.Unlock()
	if n > 0 {
		r.app.Post(func() {})
	}
}
