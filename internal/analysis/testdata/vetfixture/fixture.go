// Package vetfixture contains one deliberate violation of every
// wafevet rule, plus the accepted idioms each rule must NOT flag.
// The analysis tests type-check this package through the wafevet
// engine and assert exactly the "want" findings are reported. The
// directory lives under testdata/ so ./... builds skip it.
package vetfixture

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"wafe/internal/obs"
	"wafe/internal/tcl"
	"wafe/internal/xt"
)

type server struct {
	mu   sync.Mutex
	in   *tcl.Interp
	tm   *obs.TclMetrics
	hits int64
}

// badNilGuard dereferences the optional metrics pointer unguarded.
func (s *server) badNilGuard() {
	s.tm.Evals.Inc() // want nilguard
}

// goodNilGuard uses every accepted guard shape; none may be flagged.
func (s *server) goodNilGuard() {
	if s.tm != nil {
		s.tm.Evals.Inc()
	}
	if m := s.tm; m != nil {
		m.Evals.Inc()
	}
	if s.tm != nil && s.tm.Evals.Load() > 0 {
		s.tm.Evals.Inc()
	}
	if s.tm == nil || s.tm.Evals.Load() == 0 {
		return
	}
	s.tm.Evals.Inc()
	fresh := obs.New()
	fresh.Tcl.Evals.Inc()
}

// badLockedEval evaluates a script with the server mutex held: the
// script may fire a callback that re-enters the server and deadlocks.
func (s *server) badLockedEval() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.in.Eval("hook") // want lockedeval
}

// goodLockedEval releases the mutex before evaluating.
func (s *server) goodLockedEval() {
	s.mu.Lock()
	script := "hook"
	s.mu.Unlock()
	s.in.Eval(script)
}

// badScan discards parse errors both ways the rule recognizes.
func badScan(text string) int {
	n, _ := strconv.Atoi(text)  // want checkscan
	fmt.Sscanf(text, "%d", &n)  // want checkscan
	return n
}

// goodScan handles the error, and suppresses one intentional discard.
func goodScan(text string) int {
	n, err := strconv.Atoi(text)
	if err != nil {
		return 0
	}
	m, _ := strconv.Atoi(text) //wafevet:ignore checkscan (fixture: directive must suppress this)
	return n + m
}

// badAtomic mixes atomic and plain access to the same field.
func (s *server) badAtomic() int64 {
	atomic.AddInt64(&s.hits, 1)
	return s.hits // want atomics
}

// badRedisplayClass wires a Redisplay proc that clears the whole
// window and paints without ever looking at the clip.
var badRedisplayClass = &xt.Class{
	Name: "vetBad",
	Redisplay: func(w *xt.Widget) {
		d := w.Display()
		d.ClearWindow(w.Window())                      // want redisplayclip
		d.DrawString(w.Window(), d.NewGC(), 2, 12, "x") // want redisplayclip
	},
}

// goodRedisplayClass consults the clip in a helper one call deep; the
// rule must follow the closure and stay quiet.
var goodRedisplayClass = &xt.Class{
	Name:      "vetGood",
	Redisplay: goodRedisplay,
}

func goodRedisplay(w *xt.Widget) {
	goodRedisplayPaint(w)
}

func goodRedisplayPaint(w *xt.Widget) {
	if !w.ClipIntersects(2, 2, 10, 10) {
		return
	}
	w.Display().DrawString(w.Window(), w.Display().NewGC(), 2, 12, "x")
}
