// sessionowner fixture: one violation per touch kind the rule
// recognizes, plus the accepted idioms (Post routing, loop-owning
// goroutines, wiring reads, atomics) that must stay quiet.
package vetfixture

import (
	"wafe/internal/frontend"
	"wafe/internal/tcl"
	"wafe/internal/xt"
)

type session struct {
	app *xt.App
	in  *tcl.Interp
	f   *frontend.Frontend
	w   *xt.Widget
}

// badOffLoopTouches spawns a goroutine that touches session-owned
// state directly: a method call on the interpreter, a counter write on
// the frontend, and a widget method.
func (s *session) badOffLoopTouches() {
	go func() {
		s.in.Eval("hook")                  // want sessionowner
		s.f.CommandLines++                 // want sessionowner
		s.w.SetResourceValue("width", 100) // want sessionowner
	}()
}

// badOffLoopNamed spawns a named method whose body (and callee) touch
// session state; the call-graph closure must find both.
func (s *session) badOffLoopNamed() {
	go s.offLoopWorker()
}

func (s *session) offLoopWorker() {
	s.app.Quit(0) // want sessionowner
	s.offLoopHelper()
}

func (s *session) offLoopHelper() {
	s.in.SetVar("x", "1") // want sessionowner
}

// goodPostRouting is the sanctioned pattern: the goroutine only
// enqueues work; the closure runs on the owning loop.
func (s *session) goodPostRouting() {
	go func() {
		s.app.Post(func() {
			s.in.Eval("hook")
			s.f.CommandLines++
		})
	}()
}

// goodLoopOwner runs the event loop itself: it IS the owner, so its
// touches (before and after the loop) are legitimate.
func (s *session) goodLoopOwner() {
	go func() {
		s.in.SetVar("ready", "1")
		s.app.MainLoop()
		s.f.CommandLines++
	}()
}

// goodWiringRead reads pointer-typed wiring from a goroutine, which
// the convention allows (assigned once at construction), and routes
// the actual touch through Post.
func (s *session) goodWiringRead(sess *frontend.Session) {
	go func() {
		sess.W.App.Post(func() {})
	}()
}
