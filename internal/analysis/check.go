package analysis

import (
	"fmt"
	"strconv"
	"strings"

	"wafe/internal/core"
	"wafe/internal/tcl"
	"wafe/internal/xt"
)

// Checker lints .wafe scripts against a command Table.
type Checker struct {
	T *Table
	// Extra names accepted as commands in every checked script, for
	// commands the embedding program registers at runtime (the file
	// frontend adds getChannel and setCommunicationVariable, say).
	Extra []string
}

func NewChecker(t *Table) *Checker { return &Checker{T: t} }

// procInfo is a proc definition discovered in the file.
type procInfo struct {
	min, max int // arg bounds; max -1 when the proc takes "args"
}

// widgetInfo tracks a widget created by a literal creation command, so
// resource names can be validated against the exact class.
type widgetInfo struct {
	class  *xt.Class
	parent *xt.Class // class of the father widget, nil when unknown
}

// fileCheck is the per-file state of one CheckScript run.
type fileCheck struct {
	c       *Checker
	file    string
	src     string
	at      func(off int) (line, col int)
	diags   []Diagnostic
	ignores map[int]map[string]bool // line → suppressed rules ("all" wildcard)
	procs   map[string]procInfo
	extra   map[string]bool // commands introduced by rename / RegisterCommand
	widgets map[string]widgetInfo
	// wholeFile is true when src is the complete checked file (not a
	// script embedded in a host program); whole-file-only rules like
	// unusedproc key off it.
	wholeFile bool
}

// posFn maps a byte offset in some script source to an absolute
// line/column in the checked file. Nested scripts get exact mappings
// when their source is a verbatim slice of the file; percent-expanded
// scripts fall back to the position of the enclosing word.
type posFn func(off int) (line, col int)

// subFn builds an exact posFn for a nested source slice beginning at
// the given offset of the current script's source; nil when positions
// inside nested scripts cannot be mapped exactly.
type subFn func(base int) posFn

// varTracker is the straight-line variable state. checkReads is true
// only where execution is unconditional and immediate; conditional
// bodies still record definitions (so later straight-line reads are
// not false positives) but never flag reads.
type varTracker struct {
	defined    map[string]bool
	checkReads bool
}

// bodyTrack derives the tracker for a conditionally-executed body:
// same definition set, reads unchecked.
func bodyTrack(t *varTracker) *varTracker {
	if t == nil {
		return nil
	}
	if !t.checkReads {
		return t
	}
	return &varTracker{defined: t.defined, checkReads: false}
}

// Known percent-code sets for contexts not covered by the exported
// core constants; each mirrors the expansion its registration command
// performs.
const (
	rddSourcePercentCodes = "w%"
	rddTargetPercentCodes = "wvxy%"
	selectionPercentCodes = "t%"
)

// CheckScript lints one script and returns its findings sorted by
// position. file is used in diagnostics only.
func (c *Checker) CheckScript(file, src string) []Diagnostic {
	return c.CheckEmbedded(file, src, nil, nil)
}

// CheckEmbedded lints a script whose source is embedded in another
// file. at maps a byte offset within src to the absolute line/column
// in file (nil means src IS the file); extra names additional
// commands the embedding program registers.
func (c *Checker) CheckEmbedded(file, src string, at func(off int) (line, col int), extra []string) []Diagnostic {
	wholeFile := at == nil
	if at == nil {
		at = func(off int) (int, int) { return tcl.LineCol(src, off) }
	}
	f := &fileCheck{
		wholeFile: wholeFile,
		c:       c,
		file:    file,
		src:     src,
		at:      at,
		ignores: scanIgnores(src, at),
		procs:   make(map[string]procInfo),
		extra:   make(map[string]bool),
		widgets: map[string]widgetInfo{"topLevel": {class: c.T.TopLevelClass}},
	}
	f.addCommands(c.Extra)
	f.addCommands(extra)
	return f.run(src)
}

// addCommands marks extra names as known commands (used when a host
// program registers application commands via RegisterCommand).
func (f *fileCheck) addCommands(names []string) {
	for _, n := range names {
		f.extra[n] = true
	}
}

func (f *fileCheck) run(src string) []Diagnostic {
	script, _ := tcl.Compile(src)
	f.collectProcs(script, 0)
	exact := func(base int) posFn {
		return func(off int) (int, int) { return f.at(base + off) }
	}
	track := &varTracker{defined: predefinedVars(), checkReads: true}
	f.walk(script, exact(0), exact, track)
	f.dataflow(script)
	f.diags = filterIgnored(f.diags, f.ignores)
	SortDiagnostics(f.diags)
	return f.diags
}

func predefinedVars() map[string]bool {
	return map[string]bool{"argv": true, "argc": true, "argv0": true, "errorInfo": true, "env": true}
}

// scanIgnores finds "# wafecheck:ignore rule..." comment directives.
// A directive suppresses the named rules (or all of them, with "all")
// on its own line and on the next non-empty line. Line keys are
// absolute file lines (mapped through at for embedded scripts).
func scanIgnores(src string, at func(off int) (line, col int)) map[int]map[string]bool {
	out := make(map[int]map[string]bool)
	lines := strings.Split(src, "\n")
	starts := make([]int, len(lines))
	off := 0
	for i, line := range lines {
		starts[i] = off
		off += len(line) + 1
	}
	fileLine := func(i int) int {
		l, _ := at(starts[i])
		return l
	}
	for i, line := range lines {
		idx := strings.Index(line, "# wafecheck:ignore")
		if idx < 0 {
			continue
		}
		rules := strings.Fields(line[idx+len("# wafecheck:ignore"):])
		if len(rules) == 0 {
			rules = []string{"all"}
		}
		apply := func(ln int) {
			if out[ln] == nil {
				out[ln] = make(map[string]bool)
			}
			for _, r := range rules {
				out[ln][r] = true
			}
		}
		apply(fileLine(i))
		for j := i + 1; j < len(lines); j++ {
			if strings.TrimSpace(lines[j]) != "" {
				apply(fileLine(j))
				break
			}
		}
	}
	return out
}

func filterIgnored(ds []Diagnostic, ignores map[int]map[string]bool) []Diagnostic {
	out := ds[:0]
	for _, d := range ds {
		if set := ignores[d.Line]; set != nil && (set["all"] || set[d.Rule]) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func (f *fileCheck) report(pos posFn, off int, rule, format string, args ...any) {
	line, col := pos(off)
	f.diags = append(f.diags, Diagnostic{
		File: f.file, Line: line, Col: col, Rule: rule,
		Msg: fmt.Sprintf(format, args...),
	})
}

// collectProcs pre-scans every reachable braced word for proc
// definitions and renames, so forward references and callback scripts
// resolve. depth bounds pathological nesting.
func (f *fileCheck) collectProcs(s *tcl.Script, depth int) {
	if s == nil || depth > 20 {
		return
	}
	for _, cmd := range s.Commands() {
		if len(cmd.Words) == 0 {
			continue
		}
		if name, ok := cmd.Words[0].Literal(); ok {
			switch name {
			case "proc":
				if len(cmd.Words) == 4 {
					pname, ok1 := cmd.Words[1].Literal()
					formals, ok2 := cmd.Words[2].Literal()
					if ok1 && ok2 {
						f.procs[pname] = procArity(formals)
					}
				}
			case "rename":
				if len(cmd.Words) == 3 {
					if newName, ok := cmd.Words[2].Literal(); ok {
						f.extra[newName] = true
					}
				}
			}
		}
		for _, w := range cmd.Words {
			if w.Form != '{' {
				continue
			}
			lit, ok := w.Literal()
			if !ok || !strings.Contains(lit, "proc") && !strings.Contains(lit, "rename") {
				continue
			}
			sub, _ := tcl.Compile(lit)
			f.collectProcs(sub, depth+1)
		}
	}
}

// procArity derives argument bounds from a proc's formal list.
func procArity(formals string) procInfo {
	items, err := tcl.ParseList(formals)
	if err != nil {
		return procInfo{min: 0, max: -1}
	}
	info := procInfo{}
	for i, it := range items {
		if it == "args" && i == len(items)-1 {
			info.max = -1
			return info
		}
		parts, perr := tcl.ParseList(it)
		if perr == nil && len(parts) >= 2 {
			continue // defaulted formal: optional
		}
		info.min++
	}
	info.max = len(items)
	return info
}

// walk checks one script: parse errors, unreachable code, and every
// command.
func (f *fileCheck) walk(s *tcl.Script, pos posFn, sub subFn, track *varTracker) {
	if s == nil {
		return
	}
	if msg, _, _, ok := s.ParseErrorInfo(); ok {
		f.report(pos, parseErrOffset(s), "parse", "%s", msg)
	}
	reachable := true
	for _, cmd := range s.Commands() {
		if len(cmd.Words) == 0 {
			continue
		}
		if !reachable {
			f.report(pos, cmd.Pos, "unreachable", "unreachable command: control never reaches past the previous command")
			reachable = true // report once per script, keep checking
		}
		f.checkCommand(cmd, pos, sub, track)
		if name, ok := cmd.Words[0].Literal(); ok {
			switch name {
			case "return", "break", "continue", "exit":
				reachable = false
			case "error":
				if len(cmd.Words) >= 2 {
					reachable = false
				}
			}
		}
	}
}

// parseErrOffset recovers the byte offset of a script's parse error
// from its recorded line/column.
func parseErrOffset(s *tcl.Script) int {
	_, line, col, ok := s.ParseErrorInfo()
	if !ok {
		return 0
	}
	off := 0
	for l := 1; l < line; l++ {
		i := strings.IndexByte(s.Source[off:], '\n')
		if i < 0 {
			break
		}
		off += i + 1
	}
	return off + col - 1
}

// checkCommand applies every rule to a single command.
func (f *fileCheck) checkCommand(cmd tcl.CommandView, pos posFn, sub subFn, track *varTracker) {
	// Variable reads and nested [command] parts are checked for every
	// word, even when the command name itself is dynamic.
	for _, w := range cmd.Words {
		f.checkWordParts(w, pos, sub, track)
	}

	name, ok := cmd.Words[0].Literal()
	if !ok {
		return
	}
	nargs := len(cmd.Words) - 1

	if pi, isProc := f.procs[name]; isProc {
		if nargs < pi.min || (pi.max >= 0 && nargs > pi.max) {
			f.report(pos, cmd.Pos, "arity", "wrong # args for proc %q: got %d, want %s", name, nargs, boundsText(pi.min, pi.max))
		}
		f.trackDefs(name, cmd, track)
		return
	}
	meta, hasMeta := f.c.T.Metas[name]
	if !f.c.T.Commands[name] && !f.extra[name] && !hasMeta {
		f.report(pos, cmd.Words[0].Pos, "unknown-command", "unknown command %q", name)
		return
	}
	if hasMeta {
		if nargs < meta.MinArgs || (meta.MaxArgs >= 0 && nargs > meta.MaxArgs) {
			f.report(pos, cmd.Pos, "arity", "wrong # args for %q: got %d, want %s", name, nargs, boundsText(meta.MinArgs, meta.MaxArgs))
			return
		}
		f.checkOptions(cmd, meta, pos)
		f.checkSubcommand(cmd, meta, pos)
		f.checkExprArgs(cmd, meta, pos)
		for _, idx := range meta.ScriptArgs {
			if idx < len(cmd.Words) {
				f.walkBracedScript(cmd.Words[idx], pos, sub, bodyTrack(track))
			}
		}
	}
	f.checkSpecial(name, cmd, pos, sub, track)
	f.trackDefs(name, cmd, track)
}

func boundsText(min, max int) string {
	switch {
	case max < 0:
		return "at least " + strconv.Itoa(min)
	case min == max:
		return "exactly " + strconv.Itoa(min)
	default:
		return "between " + strconv.Itoa(min) + " and " + strconv.Itoa(max)
	}
}

// checkWordParts flags reads of obviously-undefined variables (only
// where track.checkReads) and walks [command] substitution parts,
// which execute inline with this command.
func (f *fileCheck) checkWordParts(w tcl.WordView, pos posFn, sub subFn, track *varTracker) {
	var visit func(parts []tcl.Part)
	visit = func(parts []tcl.Part) {
		for _, p := range parts {
			switch p.Kind {
			case tcl.PartVar:
				if track != nil && track.checkReads && !track.defined[varBase(p.Text)] {
					f.report(pos, p.Pos, "undefined-var", "variable %q is read before any assignment", p.Text)
				}
				if p.HasIndex {
					visit(p.Index)
				}
			case tcl.PartCommand:
				nested, nestedSub := nest(pos, sub, p.Pos+1)
				f.walk(p.Script, nested, nestedSub, track)
			}
		}
	}
	visit(w.Parts)
}

// nest derives the position mappers for a nested source slice that
// starts at base within the current script's source.
func nest(pos posFn, sub subFn, base int) (posFn, subFn) {
	if sub == nil {
		return func(int) (int, int) { return pos(0) }, nil
	}
	return sub(base), func(b int) posFn { return sub(base + b) }
}

// varBase strips an array index from a variable name: db(k) → db.
func varBase(name string) string {
	if i := strings.IndexByte(name, '('); i >= 0 {
		return name[:i]
	}
	return name
}

// checkOptions validates leading "-option" words against the meta's
// option list. Numeric words ("-5") and everything after "--" or the
// first non-dash word are left alone.
func (f *fileCheck) checkOptions(cmd tcl.CommandView, meta tcl.CommandMeta, pos posFn) {
	if len(meta.Options) == 0 {
		return
	}
	name, _ := cmd.Words[0].Literal()
	for i := 1; i < len(cmd.Words); i++ {
		lit, ok := cmd.Words[i].Literal()
		if !ok || !strings.HasPrefix(lit, "-") || lit == "--" {
			return
		}
		if _, err := strconv.ParseFloat(lit, 64); err == nil {
			return
		}
		valid := false
		for _, o := range meta.Options {
			if o == lit {
				valid = true
				break
			}
		}
		if !valid {
			f.report(pos, cmd.Words[i].Pos, "option", "unknown %s option %q (valid: %s)", name, lit, strings.Join(meta.Options, " "))
			return
		}
	}
}

func (f *fileCheck) checkSubcommand(cmd tcl.CommandView, meta tcl.CommandMeta, pos posFn) {
	if len(meta.Subcommands) == 0 || len(cmd.Words) < 2 {
		return
	}
	lit, ok := cmd.Words[1].Literal()
	if !ok {
		return
	}
	for _, s := range meta.Subcommands {
		if s == lit {
			return
		}
	}
	name, _ := cmd.Words[0].Literal()
	f.report(pos, cmd.Words[1].Pos, "subcommand", "unknown %s subcommand %q (valid: %s)", name, lit, strings.Join(meta.Subcommands, " "))
}

// checkExprArgs statically checks braced expression arguments (and,
// for expr itself, fully-literal multi-word expressions).
func (f *fileCheck) checkExprArgs(cmd tcl.CommandView, meta tcl.CommandMeta, pos posFn) {
	name, _ := cmd.Words[0].Literal()
	if name == "expr" {
		// Join fully-literal operands like cmdExpr does; any dynamic
		// word defers the whole check to runtime.
		var b strings.Builder
		for i := 1; i < len(cmd.Words); i++ {
			lit, ok := cmd.Words[i].Literal()
			if !ok {
				return
			}
			if i > 1 {
				b.WriteByte(' ')
			}
			b.WriteString(lit)
		}
		if err := tcl.CheckExpr(b.String()); err != nil {
			off := cmd.Words[1].Pos
			if pe, isPE := err.(*tcl.ParseError); isPE && len(cmd.Words) == 2 && cmd.Words[1].Form == '{' {
				off = cmd.Words[1].Pos + 1 + pe.Off
			}
			f.report(pos, off, "expr", "%s", err.Error())
		}
		return
	}
	for _, idx := range meta.ExprArgs {
		if idx >= len(cmd.Words) {
			continue
		}
		w := cmd.Words[idx]
		if w.Form != '{' {
			continue
		}
		lit, ok := w.Literal()
		if !ok {
			continue
		}
		if err := tcl.CheckExpr(lit); err != nil {
			off := w.Pos + 1
			if pe, isPE := err.(*tcl.ParseError); isPE {
				off += pe.Off
			}
			f.report(pos, off, "expr", "%s", err.Error())
		}
	}
}

// walkBracedScript compiles and walks a braced literal word as a
// script; other word forms are dynamic and skipped.
func (f *fileCheck) walkBracedScript(w tcl.WordView, pos posFn, sub subFn, track *varTracker) {
	if w.Form != '{' {
		return
	}
	lit, ok := w.Literal()
	if !ok {
		return
	}
	s, _ := tcl.Compile(lit)
	nested, nestedSub := nest(pos, sub, w.Pos+1)
	f.walk(s, nested, nestedSub, track)
}

// checkSpecial handles per-command structure beyond what CommandMeta
// expresses: if/switch bodies, proc bodies, widget creation, resource
// names, callback/action/lifecycle percent codes.
func (f *fileCheck) checkSpecial(name string, cmd tcl.CommandView, pos posFn, sub subFn, track *varTracker) {
	T := f.c.T
	words := cmd.Words
	switch name {
	case "if":
		f.checkIf(cmd, pos, sub, track)
	case "switch":
		f.checkSwitch(cmd, pos, sub, track)
	case "proc":
		if len(words) == 4 {
			// Proc bodies run in their own scope later: walk with no
			// variable tracking.
			f.walkBracedScript(words[3], pos, sub, nil)
		}
	case "addCallback":
		if len(words) == 4 {
			f.checkPercentScript(words[3], core.KnownCallbackPercentCodes, pos, sub)
		}
	case "addTimeOut":
		if len(words) == 3 {
			f.walkBracedScript(words[2], pos, sub, nil)
		}
	case "ownSelection":
		if len(words) == 4 {
			f.checkPercentScript(words[3], selectionPercentCodes, pos, sub)
		}
	case "rddRegisterSource":
		if len(words) == 3 {
			f.checkPercentScript(words[2], rddSourcePercentCodes, pos, sub)
		}
	case "rddRegisterTarget":
		if len(words) == 3 {
			f.checkPercentScript(words[2], rddTargetPercentCodes, pos, sub)
		}
	case "action":
		// action widget mode translations...: scan each translation
		// table for exec() percent codes.
		for i := 3; i < len(words); i++ {
			f.checkPercentCodes(words[i], core.KnownActionPercentCodes, pos)
		}
	case "setValues", "sV", "sv":
		f.checkResourcePairs(words, 1, pos, sub)
	case "getValue", "gV":
		if len(words) == 3 {
			if wname, ok := words[1].Literal(); ok {
				f.checkResourceName(words[2], wname, false, pos)
			}
		}
	case "mergeResources":
		f.checkMergeResources(cmd, pos, sub)
	default:
		if class, isCreation := T.Classes[name]; isCreation {
			f.checkCreation(class, cmd, pos, sub)
		}
	}
}

// checkIf walks the full if/elseif/else structure: conditions are
// expression args, bodies are scripts.
func (f *fileCheck) checkIf(cmd tcl.CommandView, pos posFn, sub subFn, track *varTracker) {
	words := cmd.Words
	i := 1
	for {
		if i >= len(words) {
			return
		}
		cond := words[i] // condition
		if cond.Form == '{' {
			if lit, ok := cond.Literal(); ok {
				if err := tcl.CheckExpr(lit); err != nil {
					off := cond.Pos + 1
					if pe, isPE := err.(*tcl.ParseError); isPE {
						off += pe.Off
					}
					f.report(pos, off, "expr", "%s", err.Error())
				}
			}
		}
		i++
		if i < len(words) {
			if lit, ok := words[i].Literal(); ok && lit == "then" {
				i++
			}
		}
		if i >= len(words) {
			f.report(pos, cmd.Pos, "arity", "if: missing script after condition")
			return
		}
		f.walkBracedScript(words[i], pos, sub, bodyTrack(track))
		i++
		if i >= len(words) {
			return
		}
		kw, ok := words[i].Literal()
		if !ok {
			return
		}
		switch kw {
		case "elseif":
			i++
			continue
		case "else":
			i++
			if i >= len(words) {
				f.report(pos, cmd.Pos, "arity", "if: missing script after \"else\"")
				return
			}
			f.walkBracedScript(words[i], pos, sub, bodyTrack(track))
			return
		default:
			// Implicit else body.
			f.walkBracedScript(words[i], pos, sub, bodyTrack(track))
			return
		}
	}
}

// checkSwitch walks switch pattern/body pairs given as separate
// words; the single-braced-list form is left to runtime.
func (f *fileCheck) checkSwitch(cmd tcl.CommandView, pos posFn, sub subFn, track *varTracker) {
	words := cmd.Words
	i := 1
	for i < len(words) {
		lit, ok := words[i].Literal()
		if !ok || !strings.HasPrefix(lit, "-") {
			break
		}
		i++
		if lit == "--" {
			break
		}
	}
	i++ // the subject string
	if len(words)-i < 2 {
		return // single-list form or malformed; runtime reports it
	}
	for ; i+1 < len(words); i += 2 {
		body := words[i+1]
		if lit, ok := body.Literal(); ok && lit == "-" {
			continue // fall-through body
		}
		f.walkBracedScript(body, pos, sub, bodyTrack(track))
	}
}

// checkCreation validates a widget-creation command: tracks the new
// widget's class, checks option placement and resource-name pairs.
func (f *fileCheck) checkCreation(class *xt.Class, cmd tcl.CommandView, pos posFn, sub subFn) {
	words := cmd.Words
	if len(words) < 3 {
		return
	}
	rest := 3
	if len(words) > 3 {
		if lit, ok := words[3].Literal(); ok && (lit == "-unmanaged" || lit == "unmanaged") {
			rest = 4
		}
	}
	var parent *xt.Class
	if father, ok := words[2].Literal(); ok {
		if wi, known := f.widgets[father]; known {
			parent = wi.class
		}
	}
	if wname, ok := words[1].Literal(); ok {
		f.widgets[wname] = widgetInfo{class: class, parent: parent}
	}
	if (len(words)-rest)%2 != 0 {
		f.report(pos, cmd.Pos, "arity", "%s: resource arguments must come in attribute-value pairs", class.Name)
		return
	}
	for i := rest; i+1 < len(words); i += 2 {
		f.checkResourcePair(words[i], words[i+1], class, parent, pos, sub)
	}
}

// checkResourcePairs validates setValues-style trailing resource
// pairs starting after widgetIdx.
func (f *fileCheck) checkResourcePairs(words []tcl.WordView, widgetIdx int, pos posFn, sub subFn) {
	if len(words) < widgetIdx+1 {
		return
	}
	var class, parent *xt.Class
	if wname, ok := words[widgetIdx].Literal(); ok {
		if wi, known := f.widgets[wname]; known {
			class, parent = wi.class, wi.parent
		}
	}
	if (len(words)-widgetIdx-1)%2 != 0 {
		name, _ := words[0].Literal()
		f.report(pos, words[0].Pos, "arity", "%s: resource arguments must come in attribute-value pairs", name)
		return
	}
	for i := widgetIdx + 1; i+1 < len(words); i += 2 {
		f.checkResourcePair(words[i], words[i+1], class, parent, pos, sub)
	}
}

// checkResourcePair validates one resource-name/value pair against a
// class (nil = any class) and checks callback values' percent codes.
func (f *fileCheck) checkResourcePair(nameW, valueW tcl.WordView, class, parent *xt.Class, pos posFn, sub subFn) {
	resName, ok := nameW.Literal()
	if !ok {
		return
	}
	typ, found := f.resolveResource(resName, class, parent)
	if !found {
		if class != nil {
			f.report(pos, nameW.Pos, "resource", "widget class %q has no resource %q", class.Name, resName)
		} else {
			f.report(pos, nameW.Pos, "resource", "no widget class has a resource %q", resName)
		}
		return
	}
	if IsCallbackType(typ) {
		f.checkPercentScript(valueW, core.KnownCallbackPercentCodes, pos, sub)
	}
}

// checkResourceName validates a bare resource-name argument (getValue).
func (f *fileCheck) checkResourceName(w tcl.WordView, widgetName string, _ bool, pos posFn) {
	resName, ok := w.Literal()
	if !ok {
		return
	}
	var class, parent *xt.Class
	if wi, known := f.widgets[widgetName]; known {
		class, parent = wi.class, wi.parent
	}
	if _, found := f.resolveResource(resName, class, parent); !found {
		if class != nil {
			f.report(pos, w.Pos, "resource", "widget class %q has no resource %q", class.Name, resName)
		} else {
			f.report(pos, w.Pos, "resource", "no widget class has a resource %q", resName)
		}
	}
}

// resolveResource looks a resource name up for a widget of the given
// class under the given parent; nil class falls back to the union
// across every class (conservative: only names no class knows are
// flagged).
func (f *fileCheck) resolveResource(resName string, class, parent *xt.Class) (typ string, found bool) {
	T := f.c.T
	if class != nil {
		if rm, ok := T.ResTypes[class.Name]; ok {
			if t, ok := rm[resName]; ok {
				return t, true
			}
		} else {
			// Class outside the table (shouldn't happen): fall back.
			if t, ok := T.UnionRes[resName]; ok {
				return t, true
			}
		}
		if parent != nil {
			if cm, ok := T.Constraints[parent.Name]; ok {
				if t, ok := cm[resName]; ok {
					return t, true
				}
			}
			return "", false
		}
		// Parent unknown: any constraint name may be valid.
		if t, ok := T.UnionConstraints[resName]; ok {
			return t, true
		}
		return "", false
	}
	if t, ok := T.UnionRes[resName]; ok {
		return t, true
	}
	if t, ok := T.UnionConstraints[resName]; ok {
		return t, true
	}
	return "", false
}

// checkMergeResources validates spec/value pairs: lifecycle scripts
// get backend percent validation, callback-typed resources get
// callback percent validation.
func (f *fileCheck) checkMergeResources(cmd tcl.CommandView, pos posFn, sub subFn) {
	words := cmd.Words
	for i := 1; i+1 < len(words); i += 2 {
		spec, ok := words[i].Literal()
		if !ok {
			continue
		}
		last := lastSpecComponent(spec)
		switch {
		case last == "onBackendExit" || last == "onBackendRestart":
			f.checkPercentScript(words[i+1], core.KnownBackendPercentCodes, pos, sub)
		case IsCallbackType(f.c.T.UnionRes[last]):
			f.checkPercentScript(words[i+1], core.KnownCallbackPercentCodes, pos, sub)
		}
	}
}

// checkPercentCodes validates the percent codes of a literal word
// against a known set without treating the word as a script.
func (f *fileCheck) checkPercentCodes(w tcl.WordView, valid string, pos posFn) {
	lit, ok := w.Literal()
	if !ok {
		return
	}
	ps := core.NewPercentScript(lit)
	for _, code := range ps.Codes() {
		if !strings.ContainsRune(valid, rune(code)) {
			f.report(pos, w.Pos, "percent", "invalid percent code %%%c (valid: %s)", code, percentSetText(valid))
		}
	}
}

// checkPercentScript validates a deferred script's percent codes via
// core.PercentScript and then walks the script body — with codes
// substituted by a placeholder — for unknown commands and arity.
func (f *fileCheck) checkPercentScript(w tcl.WordView, valid string, pos posFn, sub subFn) {
	lit, ok := w.Literal()
	if !ok {
		return
	}
	ps := core.NewPercentScript(lit)
	bad := false
	for _, code := range ps.Codes() {
		if !strings.ContainsRune(valid, rune(code)) {
			f.report(pos, w.Pos, "percent", "invalid percent code %%%c (valid: %s)", code, percentSetText(valid))
			bad = true
		}
	}
	if bad {
		return
	}
	if compiled := ps.Compiled(); compiled != nil {
		// Static script: positions map exactly for braced/quoted words.
		base := w.Pos
		if w.Form == '{' || w.Form == '"' {
			base++
		}
		nested, nestedSub := nest(pos, sub, base)
		if w.Form == '"' && len(w.Parts) != 1 {
			// Escapes shifted positions; anchor at the word.
			nested, nestedSub = func(int) (int, int) { return pos(w.Pos) }, nil
		}
		f.walk(compiled, nested, nestedSub, nil)
		return
	}
	// Percent codes present: expand with placeholders and anchor all
	// diagnostics at the enclosing word.
	expanded := ps.ExpandWith(func(byte) string { return "0" })
	s, _ := tcl.Compile(expanded)
	f.walk(s, func(int) (int, int) { return pos(w.Pos) }, nil, nil)
}

// percentSetText renders a valid-code set as %w %i ... for messages.
func percentSetText(valid string) string {
	var b strings.Builder
	for i := 0; i < len(valid); i++ {
		if valid[i] == '%' {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('%')
		b.WriteByte(valid[i])
	}
	return b.String()
}

// trackDefs records the variables a straight-line command defines.
func (f *fileCheck) trackDefs(name string, cmd tcl.CommandView, track *varTracker) {
	if track == nil {
		return
	}
	words := cmd.Words
	def := func(idx int) {
		if idx < len(words) {
			if lit, ok := words[idx].Literal(); ok {
				track.defined[varBase(lit)] = true
			}
		}
	}
	switch name {
	case "set":
		if len(words) == 3 {
			def(1)
		}
	case "foreach":
		def(1)
	case "global", "upvar":
		for i := 1; i < len(words); i++ {
			def(i)
		}
	case "array":
		if len(words) > 1 {
			if sub, ok := words[1].Literal(); ok && sub == "set" {
				def(2)
			}
		}
	case "scan":
		for i := 3; i < len(words); i++ {
			def(i)
		}
	case "regexp":
		// Match variables follow the exp and string arguments; options
		// may precede them, so conservatively define every literal
		// trailing word after the first two non-option args.
		seen := 0
		for i := 1; i < len(words); i++ {
			lit, ok := words[i].Literal()
			if ok && seen == 0 && strings.HasPrefix(lit, "-") {
				continue
			}
			seen++
			if seen > 2 {
				def(i)
			}
		}
	case "unset":
		for i := 1; i < len(words); i++ {
			if lit, ok := words[i].Literal(); ok {
				delete(track.defined, varBase(lit))
			}
		}
	default:
		if meta, ok := f.c.T.Metas[name]; ok {
			for _, idx := range meta.VarArgs {
				def(idx)
			}
		}
	}
}
