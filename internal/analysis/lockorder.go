package analysis

// lockorder.go implements the lockorder rule: it builds the package's
// lock-order graph over its known mutexes (struct fields like the
// frontend registry's Server.mu, the xproto display registry, the obs
// rings' mutexes, the xt intern tables; plus package-level mutex vars)
// and reports
//
//  1. cycles — mutex B acquired while A is held on one path and A
//     while B is held on another: two goroutines interleaving those
//     paths deadlock;
//  2. blocking calls under a lock — App.Post called, or a same-package
//     callee that transitively reaches Interp.Eval*/App.Post invoked,
//     while a known mutex is held: the loop (or the evaluated script)
//     may need that same mutex, and Post can block on a full queue.
//
// Direct lexical Eval-under-lock stays the lockedeval rule's report;
// lockorder adds the transitive reach that a lexical scan cannot see.
// Held-set tracking is lexical in source order (the same approximation
// checkLockedEval uses) and is computed per funcUnit: goroutine bodies
// and Post closures start with an empty held set of their own.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockEdge is one "to acquired while from held" observation.
type lockEdge struct {
	pos  token.Pos
	note string // "" for a direct acquire, else the call it went through
}

// lockFacts summarize one unit for the rule.
type lockFacts struct {
	acquires map[string]bool // mutex keys locked anywhere in the unit
	// heldCalls are same-package calls made while at least one known
	// mutex is held.
	heldCalls []heldCall
	// evalPost is non-"" when the unit itself calls Interp.Eval* or
	// App.Post anywhere (held or not): callers holding a lock must not
	// reach it.
	evalPost string
	// directEdges are the lexical acquire-while-held observations.
	directEdges []directEdge
}

type heldCall struct {
	callee types.Object
	held   []string
	pos    token.Pos
}

// checkLockOrder runs the rule over the package.
func (fc *vetCheck) checkLockOrder(files []*ast.File, g *pkgGraph) {
	declFacts := make(map[types.Object]*lockFacts)
	var anonFacts []*lockFacts
	var findings []Diagnostic
	add := func(pos token.Pos, format string, args ...any) {
		p := fc.v.fset.Position(pos)
		findings = append(findings, Diagnostic{
			File: p.Filename, Line: p.Line, Col: p.Column, Rule: "lockorder",
			Msg: fmt.Sprintf(format, args...),
		})
	}

	for obj, fn := range g.decls {
		declFacts[obj] = fc.lockFactsOf(g, fn.Body, add)
	}
	for lit := range g.goBodies {
		anonFacts = append(anonFacts, fc.lockFactsOf(g, lit.Body, add))
	}
	for lit := range g.postBodies {
		anonFacts = append(anonFacts, fc.lockFactsOf(g, lit.Body, add))
	}

	// Transitive closures over the same-goroutine call graph.
	transAcq := make(map[types.Object]map[string]bool)
	transEP := make(map[types.Object]string)
	var acq func(o types.Object, stack map[types.Object]bool) map[string]bool
	acq = func(o types.Object, stack map[types.Object]bool) map[string]bool {
		if got, ok := transAcq[o]; ok {
			return got
		}
		if stack[o] {
			return nil // recursion: break the cycle, facts accumulate elsewhere
		}
		stack[o] = true
		defer delete(stack, o)
		out := make(map[string]bool)
		if f := declFacts[o]; f != nil {
			for k := range f.acquires {
				out[k] = true
			}
		}
		for _, c := range g.calls[o] {
			for k := range acq(c, stack) {
				out[k] = true
			}
		}
		transAcq[o] = out
		return out
	}
	var ep func(o types.Object, stack map[types.Object]bool) string
	ep = func(o types.Object, stack map[types.Object]bool) string {
		if got, ok := transEP[o]; ok {
			return got
		}
		if stack[o] {
			return ""
		}
		stack[o] = true
		defer delete(stack, o)
		out := ""
		if f := declFacts[o]; f != nil {
			out = f.evalPost
		}
		if out == "" {
			for _, c := range g.calls[o] {
				if r := ep(c, stack); r != "" {
					out = fmt.Sprintf("%s (via %s)", r, c.Name())
					break
				}
			}
		}
		transEP[o] = out
		return out
	}

	// Fold held-context calls into edges and blocking-call reports.
	edges := make(map[string]map[string][]lockEdge)
	addEdge := func(from, to string, e lockEdge) {
		if from == to {
			return
		}
		if edges[from] == nil {
			edges[from] = make(map[string][]lockEdge)
		}
		edges[from][to] = append(edges[from][to], e)
	}
	allFacts := make([]*lockFacts, 0, len(declFacts)+len(anonFacts))
	for _, f := range declFacts {
		allFacts = append(allFacts, f)
	}
	allFacts = append(allFacts, anonFacts...)
	for _, f := range allFacts {
		for _, hc := range f.heldCalls {
			stack := make(map[types.Object]bool)
			for m := range acq(hc.callee, stack) {
				for _, h := range hc.held {
					addEdge(h, m, lockEdge{pos: hc.pos, note: hc.callee.Name()})
				}
			}
			if r := ep(hc.callee, make(map[types.Object]bool)); r != "" {
				add(hc.pos, "call to %s while %s is held reaches %s: the loop or the evaluated script can need the same mutex and deadlock; release before calling",
					hc.callee.Name(), strings.Join(hc.held, ", "), r)
			}
		}
		// Direct lexical edges were recorded during the walk (below,
		// via the directEdges field on the facts).
		for _, de := range f.directEdges {
			addEdge(de.from, de.to, lockEdge{pos: de.pos})
		}
	}

	// Cycle detection: report every edge that lies on a cycle.
	reach := func(from, to string) bool {
		seen := map[string]bool{}
		var dfs func(n string) bool
		dfs = func(n string) bool {
			if n == to {
				return true
			}
			if seen[n] {
				return false
			}
			seen[n] = true
			for m := range edges[n] {
				if dfs(m) {
					return true
				}
			}
			return false
		}
		return dfs(from)
	}
	var froms []string
	for from := range edges {
		froms = append(froms, from)
	}
	sort.Strings(froms)
	for _, from := range froms {
		var tos []string
		for to := range edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if !reach(to, from) {
				continue
			}
			e := edges[from][to][0]
			via := ""
			if e.note != "" {
				via = fmt.Sprintf(" (via call to %s)", e.note)
			}
			add(e.pos, "lock order cycle: %s is acquired while %s is held%s, and another path acquires %s while %s is held; concurrent goroutines taking the two paths deadlock",
				to, from, via, from, to)
		}
	}

	SortDiagnostics(findings)
	for _, f := range files {
		fc.ignores = scanVetIgnores(fc.v.fset, f)
		fname := fc.v.fset.Position(f.Pos()).Filename
		for _, d := range findings {
			if d.File != fname {
				continue
			}
			if set := fc.ignores[d.Line]; set != nil && (set["all"] || set[d.Rule]) {
				continue
			}
			fc.diags = append(fc.diags, d)
		}
	}
}

// directEdge is a lexical acquire-while-held observation.
type directEdge struct {
	from, to string
	pos      token.Pos
}

// lockFactsOf walks one unit in source order tracking the lexically
// held set, like checkLockedEval, and records acquires, acquire-edges,
// held calls and Eval/Post use. Post-under-lock is reported directly
// through add.
func (fc *vetCheck) lockFactsOf(g *pkgGraph, body ast.Node, add func(token.Pos, string, ...any)) *lockFacts {
	f := &lockFacts{acquires: make(map[string]bool)}
	held := make(map[string]bool)
	deferred := make(map[string]bool)
	heldList := func() []string {
		var out []string
		for k := range held {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}
	g.unitWalk(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.DeferStmt:
			if name, key := fc.knownMutexMethod(node.Call); name == "Unlock" || name == "RUnlock" {
				deferred[key] = true
				return false
			}
		case *ast.CallExpr:
			if name, key := fc.knownMutexMethod(node); name != "" {
				switch name {
				case "Lock", "RLock":
					for h := range held {
						f.directEdges = append(f.directEdges, directEdge{from: h, to: key, pos: node.Pos()})
					}
					held[key] = true
					f.acquires[key] = true
				case "Unlock", "RUnlock":
					if !deferred[key] {
						delete(held, key)
					}
				}
				return true
			}
			if fc.appPost(node) {
				f.evalPost = "App.Post"
				if len(held) > 0 {
					add(node.Pos(), "App.Post called while %s is held: if the event loop needs the same mutex the session deadlocks (and a full queue blocks here); enqueue after unlocking",
						strings.Join(heldList(), ", "))
				}
				return true
			}
			if evalName := fc.interpEval(node); evalName != "" {
				f.evalPost = "Interp." + evalName
				// Direct lexical Eval-under-lock is lockedeval's report.
				return true
			}
			if g.goCalls[node] {
				return true
			}
			if callee := fc.samePkgCallee(node); callee != nil && len(held) > 0 {
				f.heldCalls = append(f.heldCalls, heldCall{callee: callee, held: heldList(), pos: node.Pos()})
			}
		}
		return true
	})
	return f
}

// knownMutexMethod returns (method, mutex-key) when call is a
// Lock/Unlock/RLock/RUnlock on a mutex the rule can name across
// functions: a struct field ("pkg.Struct.field") or a package-level
// var ("pkg.var"). Local mutex values get no stable identity and are
// left to checkLockedEval's per-function tracking.
func (fc *vetCheck) knownMutexMethod(call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	t, ok := fc.info.Types[sel.X]
	if !ok {
		return "", ""
	}
	s := t.Type.String()
	if !strings.HasSuffix(s, "sync.Mutex") && !strings.HasSuffix(s, "sync.RWMutex") {
		return "", ""
	}
	switch recv := sel.X.(type) {
	case *ast.SelectorExpr:
		if key := fc.selFieldKey(recv); key != "" {
			return name, key
		}
	case *ast.Ident:
		if obj, ok := fc.info.Uses[recv]; ok {
			if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return name, v.Pkg().Path() + "." + v.Name()
			}
		}
	}
	return "", ""
}
