package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wafe/internal/tcl"
)

// TestWhyGolden pins the -why output for a fixture covering every
// dispatch decision: specialized set/incr/expr/exprTmpl/while/for,
// each generic-fallback reason, proc-body labeling and if-arm sites.
func TestWhyGolden(t *testing.T) {
	src, err := os.ReadFile("testdata/why_sites.wafe")
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("testdata/why_sites.why")
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	for _, r := range ExplainFile("why_sites.wafe", string(src)) {
		got.WriteString(r.String())
		got.WriteString("\n")
	}
	if got.String() != string(golden) {
		t.Errorf("-why mismatch\n--- got ---\n%s--- want ---\n%s", got.String(), golden)
	}
}

// TestWhyDemosLabelAccuracy holds the acceptance gate: over every
// shipped demo, the syntactic explanation must agree with the opcode
// the compiler actually emitted on at least 95% of command sites. The
// explainer reads the label from the compiled Program, so a mismatch
// means the reason mirror drifted from trySpecialize — expected zero.
func TestWhyDemosLabelAccuracy(t *testing.T) {
	demos, err := filepath.Glob("../../demos/*.wafe")
	if err != nil || len(demos) == 0 {
		t.Fatalf("no demos found: %v", err)
	}
	total, mismatched := 0, 0
	for _, path := range demos {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range ExplainFile(path, string(src)) {
			total++
			if r.Mismatch {
				mismatched++
				t.Logf("mismatch: %s", r.String())
			}
		}
	}
	if total == 0 {
		t.Fatal("no command sites labeled in demos")
	}
	if mismatched*100 > total*5 {
		t.Errorf("label accuracy below 95%%: %d of %d sites mismatched", mismatched, total)
	}
	if mismatched != 0 {
		t.Errorf("reason mirror drifted from the compiler: %d mismatches", mismatched)
	}
}

// TestWhyCountersCrossCheck validates -why labels against the VM's own
// dispatch counters. The script is straight-line with single-iteration
// loops, so every labeled site dispatches exactly once: the number of
// sites labeled specialized must equal the specialized dispatch total,
// and the generic sites must equal the opInvoke count.
func TestWhyCountersCrossCheck(t *testing.T) {
	const src = `set a 1
set b $a
incr a
incr a 5
expr {$a + 2}
expr $a > 3
set w 1
while {$w} {set w 0}
for {set i 0} {$i < 1} {incr i} {}
`
	reports := ExplainFile("cross.wafe", src)
	specialized, generic := 0, 0
	for _, r := range reports {
		if r.Mismatch {
			t.Errorf("mirror mismatch at %s", r.String())
		}
		if r.Specialized {
			specialized++
		} else {
			generic++
		}
	}

	in := tcl.New()
	in.Stdout = func(string) {}
	dc := in.CountDispatch()
	if _, err := in.Eval(src); err != nil {
		t.Fatalf("eval: %v", err)
	}
	if got := dc.SpecializedTotal(); got != int64(specialized) {
		t.Errorf("specialized sites = %d but VM made %d specialized dispatches (%+v)", specialized, got, *dc)
	}
	if dc.Invoke != int64(generic) {
		t.Errorf("generic sites = %d but VM made %d generic dispatches (%+v)", generic, dc.Invoke, *dc)
	}
}

// TestWhySpecializationFlip is the deopt-fix loop -why exists for: a
// quoted while condition forces generic dispatch; bracing it flips the
// loop onto the specialized path. Both the labels and the runtime
// counters must flip together.
func TestWhySpecializationFlip(t *testing.T) {
	// The quoted condition is substituted once, before while runs: it
	// freezes to "5 < 2" (false — the loop never iterates). Starting
	// from 0 it would freeze to "0 < 2" and spin forever, which is
	// precisely the bug class the deopt reason warns about.
	const broken = `set i 5
while "$i < 2" {incr i}
`
	const fixed = `set i 0
while {$i < 2} {incr i}
`
	whileReport := func(src string) SiteReport {
		for _, r := range ExplainFile("flip.wafe", src) {
			if r.Cmd == "while" {
				return r
			}
		}
		t.Fatal("no while site labeled")
		return SiteReport{}
	}
	run := func(src string) *tcl.DispatchCounts {
		in := tcl.New()
		in.Stdout = func(string) {}
		dc := in.CountDispatch()
		if _, err := in.Eval(src); err != nil {
			t.Fatalf("eval: %v", err)
		}
		return dc
	}

	b := whileReport(broken)
	if b.Specialized {
		t.Fatalf("quoted condition labeled specialized: %s", b.String())
	}
	if !strings.Contains(b.Reason, "condition is not a literal word") {
		t.Errorf("unhelpful deopt reason: %q", b.Reason)
	}
	bc := run(broken)
	if bc.While != 0 {
		t.Errorf("broken loop used the specialized while path %d times", bc.While)
	}
	if bc.Invoke == 0 {
		t.Error("broken loop made no generic dispatches")
	}

	f := whileReport(fixed)
	if !f.Specialized {
		t.Fatalf("braced condition labeled generic: %s", f.String())
	}
	fc := run(fixed)
	if fc.While != 1 {
		t.Errorf("fixed loop dispatched opWhile %d times, want 1", fc.While)
	}
	if fc.Incr != 2 {
		t.Errorf("fixed loop dispatched opIncr %d times, want 2", fc.Incr)
	}
	if fc.Invoke != 0 {
		t.Errorf("fixed loop still made %d generic dispatches", fc.Invoke)
	}
}
