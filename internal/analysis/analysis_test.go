package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func newTestChecker(t *testing.T) *Checker {
	t.Helper()
	table, err := NewTable("both")
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	c := NewChecker(table)
	c.Extra = []string{"getChannel", "setCommunicationVariable"}
	return c
}

// TestGolden checks every seeded bad script against its recorded
// diagnostics: at least one finding per script, at the exact
// file:line:col the golden pins down.
func TestGolden(t *testing.T) {
	c := newTestChecker(t)
	scripts, err := filepath.Glob("testdata/bad_*.wafe")
	if err != nil || len(scripts) == 0 {
		t.Fatalf("no testdata scripts: %v", err)
	}
	for _, path := range scripts {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			golden, err := os.ReadFile(strings.TrimSuffix(path, ".wafe") + ".diag")
			if err != nil {
				t.Fatal(err)
			}
			var got strings.Builder
			ds := c.CheckScript(name, string(src))
			if len(ds) == 0 {
				t.Fatalf("%s: expected diagnostics, got none", name)
			}
			for _, d := range ds {
				got.WriteString(d.String())
				got.WriteString("\n")
			}
			if got.String() != string(golden) {
				t.Errorf("%s diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", name, got.String(), golden)
			}
		})
	}
}

// TestShippedScriptsClean asserts wafecheck reports nothing on the
// demos and the example programs' embedded scripts.
func TestShippedScriptsClean(t *testing.T) {
	c := newTestChecker(t)
	demos, err := filepath.Glob("../../demos/*.wafe")
	if err != nil || len(demos) == 0 {
		t.Fatalf("no demos found: %v", err)
	}
	for _, path := range demos {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range c.CheckScript(path, string(src)) {
			t.Errorf("demo not clean: %s", d)
		}
	}
	goFiles, err := filepath.Glob("../../examples/*/main.go")
	if err != nil || len(goFiles) == 0 {
		t.Fatalf("no examples found: %v", err)
	}
	for _, path := range goFiles {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := c.CheckGoFile(path, src)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, d := range ds {
			t.Errorf("example not clean: %s", d)
		}
	}
}

// TestEmbeddedScriptPositions asserts a finding inside a Go raw
// string is reported at its absolute file position.
func TestEmbeddedScriptPositions(t *testing.T) {
	c := newTestChecker(t)
	src := []byte(`package p

var w interface{ Eval(string) (string, error) }

const script = ` + "`" + `
realize
bogusCmd here
` + "`" + `
`)
	ds, err := c.CheckGoFile("embed.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Rule != "unknown-command" {
		t.Fatalf("want one unknown-command finding, got %v", ds)
	}
	if ds[0].Line != 7 || ds[0].Col != 1 {
		t.Errorf("finding at %d:%d, want 7:1", ds[0].Line, ds[0].Col)
	}
}

// TestGoFileHeuristics asserts prose strings, printf formats and
// non-Eval quoted strings are not linted, while Eval arguments are.
func TestGoFileHeuristics(t *testing.T) {
	c := newTestChecker(t)
	src := []byte(`package p

import "fmt"

type W struct{}

func (W) Eval(s string) (string, error) { return "", nil }

func f(w W) {
	fmt.Printf("set %s value", "x")          // printf format: skipped
	_ = "read the docs before continuing"    // prose: skipped
	_ = "set quit callback quit"             // app DSL, not an Eval arg: skipped
	w.Eval("realizee")                       // Eval arg: linted
}
`)
	ds, err := c.CheckGoFile("heur.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Rule != "unknown-command" || !strings.Contains(ds[0].Msg, "realizee") {
		t.Fatalf("want exactly the Eval-arg finding, got %v", ds)
	}
}

// TestRegisterCommandExtendsTable asserts commands the program
// registers via RegisterCommand are known in its scripts.
func TestRegisterCommandExtendsTable(t *testing.T) {
	c := newTestChecker(t)
	src := []byte(`package p

type I struct{}

func (I) RegisterCommand(name string, fn func()) {}
func (I) Eval(s string) (string, error)          { return "", nil }

func f(in I) {
	in.RegisterCommand("visit", func() {})
	in.Eval("visit /tmp")
}
`)
	ds, err := c.CheckGoFile("reg.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Fatalf("registered command flagged: %v", ds)
	}
}

// TestVetFixture runs the wafevet engine over the fixture package and
// compares against its "// want rule" markers exactly.
func TestVetFixture(t *testing.T) {
	want := make(map[string]bool) // "file:line:rule"
	files, err := filepath.Glob("testdata/vetfixture/*.go")
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files: %v", err)
	}
	wantRe := regexp.MustCompile(`// want (\S+)`)
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		base := filepath.Base(path)
		for i, line := range strings.Split(string(src), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				want[base+":"+strconv.Itoa(i+1)+":"+m[1]] = true
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("fixture has no want markers")
	}
	v := NewVet("../..")
	ds, err := v.CheckDir("testdata/vetfixture")
	if err != nil {
		t.Fatalf("CheckDir: %v", err)
	}
	key := func(d Diagnostic) string {
		return filepath.Base(d.File) + ":" + strconv.Itoa(d.Line) + ":" + d.Rule
	}
	got := make(map[string]bool)
	for _, d := range ds {
		got[key(d)] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing expected finding %s", k)
		}
	}
	for _, d := range ds {
		if !want[key(d)] {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}

// TestVetInternalClean mirrors the CI gate: the analyzer must report
// nothing across the repo's internal packages.
func TestVetInternalClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks every internal package; skipped in -short")
	}
	v := NewVet("../..")
	dirs, err := filepath.Glob("../../internal/*")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		fi, err := os.Stat(dir)
		if err != nil || !fi.IsDir() || filepath.Base(dir) == "testdata" {
			continue
		}
		ds, err := v.CheckDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, d := range ds {
			t.Errorf("internal not clean: %s", d)
		}
	}
}

// TestIgnoreDirective checks both directive shapes inline.
func TestIgnoreDirective(t *testing.T) {
	c := newTestChecker(t)
	src := "# wafecheck:ignore unknown-command\nfoo bar\nbaz qux\n"
	ds := c.CheckScript("x.wafe", src)
	if len(ds) != 1 || !strings.Contains(ds[0].Msg, "baz") {
		t.Fatalf("directive should suppress only the next line, got %v", ds)
	}
}

// TestTableReflectsWidgetSet asserts set selection changes the table.
func TestTableReflectsWidgetSet(t *testing.T) {
	athena, err := NewTable("athena")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := athena.Classes["command"]; !ok {
		t.Error("athena table missing command creation class")
	}
	if _, ok := athena.Classes["mPushButton"]; ok {
		t.Error("athena table unexpectedly has Motif classes")
	}
	if _, err := NewTable("bogus"); err == nil {
		t.Error("bogus widget set accepted")
	}
}
