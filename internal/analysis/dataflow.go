package analysis

// dataflow.go is wafecheck v2's interprocedural dataflow pass over
// compiled tcl.Script values. It adds three rules on top of the
// per-command checks in check.go:
//
//   deadstore — a variable is assigned and then reassigned on the same
//     straight line with no possible read in between: the first value
//     never mattered. The scan is linear per scope; any mention of the
//     variable inside a nested body ([...] substitution, a loop or if
//     body, a proc definition) counts as a read, and eval/uplevel/
//     subst/source clear all pending stores, so only provably-dead
//     stores are reported.
//
//   unusedproc — a proc defined in a whole .wafe file whose name never
//     appears anywhere else in the file, not even inside a string or a
//     callback body. The check is a raw delimited-token count over the
//     file source, so dynamically-built callbacks that splice the name
//     in keep the proc alive. Embedded scripts (Go string literals)
//     skip the rule: their procs are routinely called by sibling
//     scripts the checker cannot see.
//
//   coercion — constant propagation with the VM's canonical-spelling
//     rules. internValue gives a value int semantics only when it is
//     spelled canonically ("7", "-12", "0"); "09", " 7" and 0x10 stay
//     strings, which skips the int fast path, changes comparison
//     semantics, and (for incr amounts) forces the generic dispatch
//     path. The rule tracks literal `set`s per scope, propagates
//     literal arguments into proc parameters, and reports numeric
//     values spelled non-canonically exactly where they reach a
//     numeric context: an incr amount or target, an expr/condition
//     read, or a proc parameter the body uses arithmetically.
//
// All three respect `# wafecheck:ignore <rule>` like every other rule
// (filtering happens in run()).

import (
	"strconv"
	"strings"

	"wafe/internal/tcl"
)

// nonCanonicalNumeric extends tcl.NonCanonicalNumber with spellings
// the VM's base-0 literal parse rejects outright but that still read
// as numbers to a human: "09" is invalid octal to ParseInt(s, 0, ...),
// yet anyone writing it means 9 and gets string semantics instead.
func nonCanonicalNumeric(s string) (canonical string, ok bool) {
	if canon, nc := tcl.NonCanonicalNumber(s); nc {
		return canon, true
	}
	t := strings.TrimSpace(s)
	if t == "" || t == s && !strings.HasPrefix(s, "0") && !strings.HasPrefix(s, "-0") && !strings.HasPrefix(s, "+") {
		return "", false
	}
	if v, err := strconv.ParseInt(t, 10, 64); err == nil {
		if c := strconv.FormatInt(v, 10); c != s {
			return c, true
		}
	}
	return "", false
}

const dfMaxDepth = 20

// dynamicCmds can read or write any variable: they clear the whole
// linear-scan state.
var dynamicCmds = map[string]bool{
	"eval": true, "uplevel": true, "subst": true, "source": true,
}

// escapeCmds alias a variable beyond the scope: stores to it are
// never dead and its value is never constant.
var escapeCmds = map[string]bool{
	"global": true, "upvar": true, "variable": true,
}

// procNumeric is the interprocedural summary of one proc: its
// positional formals and which of them the body uses arithmetically.
type procNumeric struct {
	formals []string
	numeric map[string]bool
}

// procDef is one proc-definition site, kept for unusedproc.
type procDef struct {
	name string
	pos  posFn
	off  int
}

// dfPass is the state of one dataflow run over a file.
type dfPass struct {
	f        *fileCheck
	numeric  map[string]*procNumeric
	procDefs []procDef
}

// dataflow runs the pass; called from run() after the per-command
// walk, on the same compiled script.
func (f *fileCheck) dataflow(s *tcl.Script) {
	d := &dfPass{f: f, numeric: make(map[string]*procNumeric)}
	d.collectProcSummaries(s, 0)
	exact := func(base int) posFn {
		return func(off int) (int, int) { return f.at(base + off) }
	}
	d.scope(s, exact(0), exact, make(map[string]string), 0)
	if f.wholeFile {
		d.reportUnusedProcs()
	}
}

// --- proc summaries -------------------------------------------------------------

// collectProcSummaries finds every literal proc definition (like
// collectProcs, through nested braced words) and computes which
// formals its body uses in a numeric context.
func (d *dfPass) collectProcSummaries(s *tcl.Script, depth int) {
	if s == nil || depth > dfMaxDepth {
		return
	}
	for _, cmd := range s.Commands() {
		if len(cmd.Words) == 0 {
			continue
		}
		if name, ok := cmd.Words[0].Literal(); ok && name == "proc" && len(cmd.Words) == 4 {
			pname, ok1 := cmd.Words[1].Literal()
			formalsLit, ok2 := cmd.Words[2].Literal()
			bodyLit, ok3 := cmd.Words[3].Literal()
			if ok1 && ok2 && ok3 && cmd.Words[3].Form == '{' {
				pn := &procNumeric{numeric: make(map[string]bool)}
				if items, err := tcl.ParseList(formalsLit); err == nil {
					for _, it := range items {
						fname := it
						if parts, perr := tcl.ParseList(it); perr == nil && len(parts) >= 1 {
							fname = parts[0]
						}
						pn.formals = append(pn.formals, fname)
					}
				}
				body, _ := tcl.Compile(bodyLit)
				uses := make(map[string]bool)
				numericVars(body, uses, 0)
				for _, fname := range pn.formals {
					if uses[fname] {
						pn.numeric[fname] = true
					}
				}
				d.numeric[pname] = pn
			}
		}
		for _, w := range cmd.Words {
			if w.Form != '{' {
				continue
			}
			if lit, ok := w.Literal(); ok && strings.Contains(lit, "proc") {
				sub, _ := tcl.Compile(lit)
				d.collectProcSummaries(sub, depth+1)
			}
		}
	}
}

// numericVars collects the variable names a script uses in numeric
// contexts: incr targets and amounts, $reads inside expr operands and
// inside braced expression arguments (expr, if/while/for conditions).
func numericVars(s *tcl.Script, out map[string]bool, depth int) {
	if s == nil || depth > dfMaxDepth {
		return
	}
	for _, cmd := range s.Commands() {
		if len(cmd.Words) == 0 {
			continue
		}
		name, _ := cmd.Words[0].Literal()
		switch name {
		case "incr":
			for i := 1; i < len(cmd.Words) && i <= 2; i++ {
				if lit, ok := cmd.Words[i].Literal(); ok && i == 1 {
					out[varBase(lit)] = true
				}
				for _, p := range cmd.Words[i].Parts {
					if p.Kind == tcl.PartVar {
						out[varBase(p.Text)] = true
					}
				}
			}
		case "expr":
			for i := 1; i < len(cmd.Words); i++ {
				exprWordVars(cmd.Words[i], out)
			}
		case "if", "while":
			if len(cmd.Words) > 1 {
				exprWordVars(cmd.Words[1], out)
			}
			for i := 2; i < len(cmd.Words); i++ {
				if lit, ok := cmd.Words[i].Literal(); ok && lit == "elseif" && i+1 < len(cmd.Words) {
					exprWordVars(cmd.Words[i+1], out)
				}
			}
		case "for":
			if len(cmd.Words) > 2 {
				exprWordVars(cmd.Words[2], out)
			}
		}
		for _, w := range cmd.Words {
			for _, p := range w.Parts {
				if p.Kind == tcl.PartCommand {
					numericVars(p.Script, out, depth+1)
				}
			}
			if w.Form == '{' {
				if lit, ok := w.Literal(); ok && strings.ContainsAny(lit, "\n;[") {
					sub, _ := tcl.Compile(lit)
					numericVars(sub, out, depth+1)
				}
			}
		}
	}
}

// exprWordVars collects the $names of one expression operand word:
// substitution parts for bare/quoted words, a textual scan for braced
// literals (braces suppress parsing but not the runtime read).
func exprWordVars(w tcl.WordView, out map[string]bool) {
	for _, p := range w.Parts {
		if p.Kind == tcl.PartVar {
			out[varBase(p.Text)] = true
		}
	}
	if w.Form == '{' {
		if lit, ok := w.Literal(); ok {
			for _, n := range dollarNames(lit) {
				out[n] = true
			}
		}
	}
}

// dollarNames extracts the variable names of $name references in a
// literal expression text.
func dollarNames(text string) []string {
	var out []string
	for i := 0; i+1 < len(text); i++ {
		if text[i] != '$' {
			continue
		}
		j := i + 1
		for j < len(text) && isVarNameByte(text[j]) {
			j++
		}
		if j > i+1 {
			out = append(out, text[i+1:j])
		}
		i = j - 1
	}
	return out
}

func isVarNameByte(b byte) bool {
	return b == '_' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

// --- linear scope scan ----------------------------------------------------------

// mentionSet is the conservative effect summary of a nested script:
// every variable it might read or write, and whether a dynamic command
// makes it able to touch anything.
type mentionSet struct {
	vars    map[string]bool
	dynamic bool
}

// scriptMentions folds a nested script into a mentionSet.
func scriptMentions(s *tcl.Script, m *mentionSet, depth int) {
	if s == nil || depth > dfMaxDepth {
		return
	}
	for _, cmd := range s.Commands() {
		if len(cmd.Words) == 0 {
			continue
		}
		// A non-literal first word is usually an expression operand
		// line ({$i < 10} compiled as a script), not a dynamic call:
		// its $vars are collected below like any other word's.
		if name, ok := cmd.Words[0].Literal(); ok {
			if dynamicCmds[name] {
				m.dynamic = true
			}
			for i := 1; i < len(cmd.Words); i++ {
				if lit, lok := cmd.Words[i].Literal(); lok {
					m.vars[varBase(lit)] = true
				}
			}
		}
		for _, w := range cmd.Words {
			wordMentions(w, m, depth)
		}
	}
}

// wordMentions adds one word's variable references, recursing into
// nested [command] scripts and braced script-looking literals.
func wordMentions(w tcl.WordView, m *mentionSet, depth int) {
	for _, p := range w.Parts {
		switch p.Kind {
		case tcl.PartVar:
			m.vars[varBase(p.Text)] = true
			if p.HasIndex {
				for _, ip := range p.Index {
					if ip.Kind == tcl.PartVar {
						m.vars[varBase(ip.Text)] = true
					}
				}
			}
		case tcl.PartCommand:
			scriptMentions(p.Script, m, depth+1)
		}
	}
	if w.Form == '{' {
		if lit, ok := w.Literal(); ok && strings.ContainsAny(lit, "$[;\n") {
			sub, _ := tcl.Compile(lit)
			scriptMentions(sub, m, depth+1)
		}
	}
}

// pendingStore is one store not yet observed to be read.
type pendingStore struct {
	off  int    // offset of the command in the scope source
	verb string // "set", "incr", ... for the message
}

// scope scans one straight-line scope (the top level, or one braced
// body). env carries literal values across `set`s for coercion checks;
// pending tracks unread stores for deadstore. Sub-scopes report
// independently; the parent only sees their mentions.
func (d *dfPass) scope(s *tcl.Script, pos posFn, sub subFn, env map[string]string, depth int) {
	if s == nil || depth > dfMaxDepth {
		return
	}
	pending := make(map[string]pendingStore)
	escaped := make(map[string]bool)

	for _, cmd := range s.Commands() {
		if len(cmd.Words) == 0 {
			continue
		}
		name, nameOK := cmd.Words[0].Literal()
		if !nameOK {
			// Dynamic command name: anything can happen.
			pending = make(map[string]pendingStore)
			env = make(map[string]string)
			continue
		}
		words := cmd.Words

		// Coercion checks run first, against the env as it stands when
		// this command executes.
		d.coercionAt(name, cmd, pos, env)

		// Direct reads ($var parts outside nested scripts) retire
		// pending stores but keep constants.
		for _, w := range words {
			for _, p := range w.Parts {
				if p.Kind == tcl.PartVar {
					delete(pending, varBase(p.Text))
				}
			}
		}
		// Nested mentions (command substitutions, braced bodies) may
		// read or write: retire pending stores and constants both.
		nested := &mentionSet{vars: make(map[string]bool)}
		for _, w := range words {
			for _, p := range w.Parts {
				if p.Kind == tcl.PartCommand {
					scriptMentions(p.Script, nested, depth+1)
				}
			}
			if w.Form == '{' {
				wordMentions(w, nested, depth)
			}
		}
		if nested.dynamic || dynamicCmds[name] {
			pending = make(map[string]pendingStore)
			env = make(map[string]string)
		} else {
			for v := range nested.vars {
				delete(pending, v)
				delete(env, v)
			}
		}

		// Escapes: the variable is an alias now; never report it.
		if escapeCmds[name] {
			for i := 1; i < len(words); i++ {
				if lit, ok := words[i].Literal(); ok {
					v := varBase(lit)
					escaped[v] = true
					delete(pending, v)
					delete(env, v)
				}
			}
		}

		// Stores.
		d.storesAt(name, cmd, pos, env, pending, escaped)

		// Sub-scope recursion for reporting inside bodies. The child
		// env drops everything the body itself might write.
		d.subScopes(name, cmd, pos, sub, env, depth)
	}
}

// storesAt applies one command's variable stores to the scan state,
// reporting a pending store it overwrites.
func (d *dfPass) storesAt(name string, cmd tcl.CommandView, pos posFn, env map[string]string, pending map[string]pendingStore, escaped map[string]bool) {
	f := d.f
	words := cmd.Words
	store := func(v string, off int, verb string, track bool) {
		if escaped[v] {
			return
		}
		if p, dead := pending[v]; dead && track {
			line, _ := pos(cmd.Pos)
			f.report(pos, p.off, "deadstore",
				"dead store: the value this %s gives %q is overwritten at line %d before any read", p.verb, v, line)
		}
		if track {
			pending[v] = pendingStore{off: off, verb: verb}
		} else {
			delete(pending, v)
		}
		delete(env, v)
	}
	switch name {
	case "set":
		if len(words) == 3 {
			if lit, ok := words[1].Literal(); ok {
				v := varBase(lit)
				// Distinct array elements share a base but do not
				// overwrite each other: an indexed store only retires
				// pending state, it never starts a death watch.
				store(v, cmd.Pos, "set", lit == v)
				if val, vok := words[2].Literal(); vok && !escaped[v] && lit == v {
					env[v] = val
				}
			}
		}
	case "incr":
		if len(words) >= 2 {
			if lit, ok := words[1].Literal(); ok {
				// incr reads the old value, so a pending store is
				// consumed, then the result becomes the new store.
				v := varBase(lit)
				delete(pending, v)
				store(v, cmd.Pos, "incr", lit == v)
			}
		}
	case "append", "lappend":
		if len(words) >= 2 {
			if lit, ok := words[1].Literal(); ok {
				v := varBase(lit)
				delete(pending, v) // reads the old value
				store(v, cmd.Pos, name, lit == v)
			}
		}
	case "unset":
		for i := 1; i < len(words); i++ {
			if lit, ok := words[i].Literal(); ok {
				v := varBase(lit)
				delete(pending, v)
				delete(env, v)
			}
		}
	case "proc":
		if len(words) == 4 {
			if lit, ok := words[1].Literal(); ok {
				d.procDefs = append(d.procDefs, procDef{name: lit, pos: pos, off: cmd.Pos})
			}
		}
	default:
		if meta, ok := f.c.T.Metas[name]; ok {
			for _, idx := range meta.VarArgs {
				if idx < len(words) {
					if lit, lok := words[idx].Literal(); lok {
						// Multi-target stores (scan, regexp, foreach,
						// catch results): clear without pending — the
						// store is the command's side channel, rarely
						// dead in a way worth reporting.
						store(varBase(lit), cmd.Pos, name, false)
					}
				}
			}
		}
	}
}

// subScopes recurses into the braced bodies a command evaluates,
// mirroring the body positions checkCommand/checkIf/checkSwitch use.
func (d *dfPass) subScopes(name string, cmd tcl.CommandView, pos posFn, sub subFn, env map[string]string, depth int) {
	words := cmd.Words
	body := func(w tcl.WordView) {
		if w.Form != '{' {
			return
		}
		lit, ok := w.Literal()
		if !ok {
			return
		}
		s, _ := tcl.Compile(lit)
		m := &mentionSet{vars: make(map[string]bool)}
		scriptMentions(s, m, depth+1)
		child := make(map[string]string)
		if !m.dynamic {
			for k, v := range env {
				if !m.vars[k] {
					child[k] = v
				}
			}
		}
		nested, nestedSub := nest(pos, sub, w.Pos+1)
		d.scope(s, nested, nestedSub, child, depth+1)
	}
	switch name {
	case "if":
		i := 2
		for i < len(words) {
			if lit, ok := words[i].Literal(); ok && lit == "then" {
				i++
				continue
			}
			break
		}
		for ; i < len(words); i++ {
			lit, ok := words[i].Literal()
			if ok && (lit == "elseif") {
				i++ // skip the condition
				continue
			}
			if ok && lit == "else" {
				continue
			}
			body(words[i])
		}
	case "switch":
		i := 1
		for i < len(words) {
			lit, ok := words[i].Literal()
			if !ok || !strings.HasPrefix(lit, "-") {
				break
			}
			i++
			if lit == "--" {
				break
			}
		}
		i++ // subject
		if len(words)-i < 2 {
			return
		}
		for ; i+1 < len(words); i += 2 {
			if lit, ok := words[i+1].Literal(); ok && lit == "-" {
				continue
			}
			body(words[i+1])
		}
	case "proc":
		if len(words) == 4 {
			// A fresh scope: formals are parameters, not outer vars.
			w := words[3]
			if w.Form != '{' {
				return
			}
			lit, ok := w.Literal()
			if !ok {
				return
			}
			s, _ := tcl.Compile(lit)
			nested, nestedSub := nest(pos, sub, w.Pos+1)
			d.scope(s, nested, nestedSub, make(map[string]string), depth+1)
		}
	default:
		if meta, ok := d.f.c.T.Metas[name]; ok {
			for _, idx := range meta.ScriptArgs {
				if idx < len(words) {
					body(words[idx])
				}
			}
		}
	}
}

// --- coercion -------------------------------------------------------------------

// coercionAt reports numeric values spelled non-canonically exactly
// where they reach a numeric context.
func (d *dfPass) coercionAt(name string, cmd tcl.CommandView, pos posFn, env map[string]string) {
	f := d.f
	words := cmd.Words
	reportVar := func(off int, v, val, canon string) {
		f.report(pos, off, "coercion",
			"variable %q holds %q, numeric but not canonically spelled (canonical %q): it keeps string semantics, so comparisons are textual and the VM's int fast path is skipped", v, val, canon)
	}
	checkRead := func(w tcl.WordView) {
		seen := make(map[string]bool)
		note := func(v string, off int) {
			if seen[v] {
				return
			}
			seen[v] = true
			if val, ok := env[v]; ok {
				if canon, nc := nonCanonicalNumeric(val); nc {
					reportVar(off, v, val, canon)
				}
			}
		}
		for _, p := range w.Parts {
			if p.Kind == tcl.PartVar {
				note(varBase(p.Text), p.Pos)
			}
		}
		if w.Form == '{' {
			if lit, ok := w.Literal(); ok {
				for _, n := range dollarNames(lit) {
					note(n, w.Pos)
				}
			}
		}
	}
	switch name {
	case "incr":
		if len(words) == 3 {
			if amt, ok := words[2].Literal(); ok {
				if canon, nc := nonCanonicalNumeric(amt); nc {
					f.report(pos, words[2].Pos, "coercion",
						"incr amount %q is not canonically spelled (canonical %q): the VM compiles this incr on the generic path", amt, canon)
				}
			}
		}
		if len(words) >= 2 {
			if lit, ok := words[1].Literal(); ok {
				if val, inEnv := env[varBase(lit)]; inEnv {
					if canon, nc := nonCanonicalNumeric(val); nc {
						reportVar(words[1].Pos, varBase(lit), val, canon)
					}
				}
			}
		}
	case "expr":
		for i := 1; i < len(words); i++ {
			checkRead(words[i])
		}
	case "if", "while":
		if len(words) > 1 {
			checkRead(words[1])
		}
		for i := 2; i < len(words); i++ {
			if lit, ok := words[i].Literal(); ok && lit == "elseif" && i+1 < len(words) {
				checkRead(words[i+1])
			}
		}
	case "for":
		if len(words) > 2 {
			checkRead(words[2])
		}
	default:
		pn, ok := d.numeric[name]
		if !ok || len(pn.numeric) == 0 {
			return
		}
		for i := 1; i < len(words) && i-1 < len(pn.formals); i++ {
			formal := pn.formals[i-1]
			if formal == "args" {
				break
			}
			if !pn.numeric[formal] {
				continue
			}
			arg, lok := words[i].Literal()
			if !lok {
				continue
			}
			if canon, nc := nonCanonicalNumeric(arg); nc {
				f.report(pos, words[i].Pos, "coercion",
					"argument %q for parameter %q of proc %q is numeric but not canonically spelled (canonical %q): the body uses it arithmetically, where it keeps string semantics", arg, formal, name, canon)
			}
		}
	}
}

// --- unusedproc -----------------------------------------------------------------

// reportUnusedProcs counts delimited occurrences of each defined proc
// name over the raw file source; a name that only occurs once (its
// definition) is never called, not even from a string-built callback.
func (d *dfPass) reportUnusedProcs() {
	src := d.f.src
	seen := make(map[string]bool)
	for _, def := range d.procDefs {
		if seen[def.name] || !plainName(def.name) {
			continue
		}
		seen[def.name] = true
		if tokenCount(src, def.name) <= 1 {
			d.f.report(def.pos, def.off, "unusedproc",
				"proc %q is defined but never used in this file", def.name)
		}
	}
}

// plainName reports whether a proc name consists only of word bytes,
// so a delimited-token count is meaningful.
func plainName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		if !isVarNameByte(name[i]) {
			return false
		}
	}
	return true
}

// tokenCount counts delimited occurrences of name in src.
func tokenCount(src, name string) int {
	count, off := 0, 0
	for {
		i := strings.Index(src[off:], name)
		if i < 0 {
			return count
		}
		i += off
		before := i == 0 || !isVarNameByte(src[i-1])
		afterIdx := i + len(name)
		after := afterIdx >= len(src) || !isVarNameByte(src[afterIdx])
		if before && after {
			count++
		}
		off = i + len(name)
	}
}
