package analysis

// cfg.go is the shared flow-analysis core of the v2 analyzers. For Go
// packages it builds the per-package call graph and the goroutine
// spawn graph that sessionowner (ownership.go) and lockorder
// (lockorder.go) both traverse; for Tcl scripts the structured block
// walk lives in dataflow.go. The central modeling decision is the
// funcUnit: a closure handed to App.Post runs on the owning event
// loop, and a `go` statement body runs on a brand-new goroutine, so
// neither belongs to the code of the function that lexically contains
// it. The graph carves both out of their enclosing declaration and
// tracks them as units of their own.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goUnit is one goroutine root: the body of `go func(){...}` or the
// named same-package function of `go name(...)`.
type goUnit struct {
	pos  token.Pos      // position of the go statement
	body *ast.BlockStmt // nil when obj names the spawned function
	obj  types.Object   // nil when body is inline
	encl string         // enclosing declared function, for messages
}

// pkgGraph is the per-package call/spawn graph.
type pkgGraph struct {
	decls map[types.Object]*ast.FuncDecl
	// calls maps a declared function to the same-package functions it
	// calls on its own goroutine (go-spawned callees and calls made
	// inside Post closures are excluded; those run elsewhere).
	calls map[types.Object][]types.Object
	// goUnits are every goroutine root of the package, however deeply
	// nested.
	goUnits []goUnit
	// postBodies are closures handed to App.Post: they run on the
	// owning event loop, no matter which goroutine enqueued them.
	postBodies map[*ast.FuncLit]bool
	// goBodies are inline `go func(){...}` bodies; goCalls the call
	// expressions of go statements (their callee is spawned, not
	// called).
	goBodies map[*ast.FuncLit]bool
	goCalls  map[*ast.CallExpr]bool
}

// buildPkgGraph scans every file of the package once.
func (fc *vetCheck) buildPkgGraph(files []*ast.File) *pkgGraph {
	g := &pkgGraph{
		decls:      make(map[types.Object]*ast.FuncDecl),
		calls:      make(map[types.Object][]types.Object),
		postBodies: make(map[*ast.FuncLit]bool),
		goBodies:   make(map[*ast.FuncLit]bool),
		goCalls:    make(map[*ast.CallExpr]bool),
	}
	// Pass 1: declarations, goroutine roots, Post closures.
	for _, f := range files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := fc.info.Defs[fn.Name]
			if obj != nil {
				g.decls[obj] = fn
			}
			encl := fn.Name.Name
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.GoStmt:
					g.goCalls[node.Call] = true
					if lit, ok := node.Call.Fun.(*ast.FuncLit); ok {
						g.goBodies[lit] = true
						g.goUnits = append(g.goUnits, goUnit{pos: node.Pos(), body: lit.Body, encl: encl})
					} else if callee := fc.samePkgCallee(node.Call); callee != nil {
						g.goUnits = append(g.goUnits, goUnit{pos: node.Pos(), obj: callee, encl: encl})
					}
				case *ast.CallExpr:
					if fc.appPost(node) {
						for _, a := range node.Args {
							if lit, ok := a.(*ast.FuncLit); ok {
								g.postBodies[lit] = true
							}
						}
					}
				}
				return true
			})
		}
	}
	// Pass 2: call edges, skipping code that runs on another goroutine
	// (go bodies) or on the loop (Post closures).
	for obj, fn := range g.decls {
		g.unitWalk(fn.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && !g.goCalls[call] {
				if callee := fc.samePkgCallee(call); callee != nil {
					g.calls[obj] = append(g.calls[obj], callee)
				}
			}
			return true
		})
	}
	return g
}

// unitWalk visits the nodes of one unit's body, not descending into
// nested units (go bodies, Post closures) or into the callee of a go
// statement. Plain closures (deferred, stored, passed to other calls)
// stay part of the unit: wherever they eventually run, the unit's
// goroutine created them and usually invokes them.
func (g *pkgGraph) unitWalk(body ast.Node, visit func(ast.Node) bool) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if g.goBodies[lit] || g.postBodies[lit] {
				return false
			}
		}
		return visit(n)
	})
}

// reachable returns the same-goroutine call closure of the roots
// (inclusive).
func (g *pkgGraph) reachable(roots ...types.Object) map[types.Object]bool {
	seen := make(map[types.Object]bool)
	var visit func(o types.Object)
	visit = func(o types.Object) {
		if o == nil || seen[o] {
			return
		}
		seen[o] = true
		for _, c := range g.calls[o] {
			visit(c)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}

// samePkgCallee resolves a call to the *types.Func it invokes when
// that function or method is declared in the package under analysis.
func (fc *vetCheck) samePkgCallee(call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := fc.info.Uses[fun].(*types.Func); ok && obj.Pkg() == fc.pkg {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := fc.info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() == fc.pkg {
			return obj
		}
	}
	return nil
}

// appPost reports whether call is App.Post(...) on *xt.App — the one
// sanctioned way to hand work to a session's event loop. Inside the
// xt package itself the method is matched the same way.
func (fc *vetCheck) appPost(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Post" {
		return false
	}
	t, ok := fc.info.Types[sel.X]
	return ok && t.Type.String() == "*"+xtPkgPath+".App"
}

// namedTypePath returns "pkgpath.Name" for a (possibly pointered)
// named type, "" otherwise.
func namedTypePath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// selFieldKey renders a field selection as "pkgpath.Struct.field",
// the identity the atomics and lockorder rules share.
func (fc *vetCheck) selFieldKey(sel *ast.SelectorExpr) string {
	s, ok := fc.info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	base := namedTypePath(s.Recv())
	if base == "" {
		return ""
	}
	return base + "." + sel.Sel.Name
}
