// Package analysis implements the static-analysis layer over Wafe:
// wafecheck, a linter for .wafe scripts that reuses the internal/tcl
// parser and the command-metadata registry populated by the core, and
// wafevet, a go/types-based analyzer enforcing the repo's runtime
// invariants (vet.go).
//
// Both tools report Diagnostics in the canonical
// "file:line:col: [rule] message" form and exit nonzero when any are
// found.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"wafe/internal/core"
	"wafe/internal/tcl"
	"wafe/internal/xt"
)

// Diagnostic is one finding, anchored at a 1-based line/column.
type Diagnostic struct {
	File string
	Line int
	Col  int
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Msg)
}

// SortDiagnostics orders findings by file, then position, then rule —
// the stable order the golden tests and CI output rely on.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// Table is the command knowledge wafecheck checks scripts against. It
// is built from a live core.Wafe instance, so the linter can never
// drift from what the binary actually registers: the command set, the
// per-command metadata (arity, options, subcommands, script/expr/var
// argument positions), the creation commands with their widget
// classes, and the resource name→type maps.
type Table struct {
	// Commands holds every registered command name.
	Commands map[string]bool
	// Metas holds the metadata registry (tcl builtins + core commands +
	// creation commands).
	Metas map[string]tcl.CommandMeta
	// Classes maps creation-command name → widget class.
	Classes map[string]*xt.Class
	// ResTypes maps class name → resource name → resource type for
	// every class in the widget set (own + inherited resources).
	ResTypes map[string]map[string]string
	// UnionRes maps resource name → type across all classes, for
	// widgets whose class cannot be determined statically.
	UnionRes map[string]string
	// UnionConstraints maps constraint resource name → type across all
	// classes (fromVert, fromHoriz and friends), used when the parent
	// is unknown.
	UnionConstraints map[string]string
	// Constraints maps class name → constraint resource name → type:
	// what the class provides for its children.
	Constraints map[string]map[string]string
	// TopLevelClass is the class of the predefined "topLevel" widget.
	TopLevelClass *xt.Class
}

// NewTable builds the table for a widget set ("athena", "motif" or
// "both"). It instantiates a headless core.Wafe, so the table always
// reflects the real registration code paths.
func NewTable(set string) (*Table, error) {
	var ws core.WidgetSet
	switch set {
	case "athena":
		ws = core.SetAthena
	case "motif":
		ws = core.SetMotif
	case "both", "":
		ws = core.SetBoth
	default:
		return nil, fmt.Errorf("unknown widget set %q (want athena, motif or both)", set)
	}
	w, err := core.New(core.Config{TestDisplay: true, Set: ws})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Commands:         make(map[string]bool),
		Metas:            make(map[string]tcl.CommandMeta),
		Classes:          w.CreationClasses(),
		ResTypes:         make(map[string]map[string]string),
		UnionRes:         make(map[string]string),
		UnionConstraints: make(map[string]string),
		Constraints:      make(map[string]map[string]string),
		TopLevelClass:    xt.ApplicationShellClass,
	}
	for _, name := range w.Interp.CommandNames() {
		t.Commands[name] = true
	}
	for _, m := range w.Interp.CommandMetas() {
		t.Metas[m.Name] = m
	}
	classes := []*xt.Class{xt.ApplicationShellClass}
	for _, c := range t.Classes {
		classes = append(classes, c)
	}
	for _, c := range classes {
		if _, done := t.ResTypes[c.Name]; done {
			continue
		}
		rm := make(map[string]string)
		for _, r := range c.AllResources() {
			rm[r.Name] = r.Type
			if _, ok := t.UnionRes[r.Name]; !ok {
				t.UnionRes[r.Name] = r.Type
			}
		}
		t.ResTypes[c.Name] = rm
		cm := make(map[string]string)
		for _, r := range c.AllConstraints() {
			cm[r.Name] = r.Type
			if _, ok := t.UnionConstraints[r.Name]; !ok {
				t.UnionConstraints[r.Name] = r.Type
			}
		}
		t.Constraints[c.Name] = cm
	}
	return t, nil
}

// IsCallbackType reports whether a resource type is a callback list.
func IsCallbackType(typ string) bool { return typ == xt.TCallback }

// lastSpecComponent returns the final component of a resource spec
// ("*paned.hits.callback" → "callback"), which is the resource name
// the database entry binds.
func lastSpecComponent(spec string) string {
	last := spec
	for {
		i := strings.IndexAny(last, ".*")
		if i < 0 {
			return last
		}
		last = last[i+1:]
	}
}
