package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Vet is the wafevet engine: a go/types-based analyzer (stdlib only,
// fully offline) that encodes runtime invariants of this repository:
//
//	nilguard   — *obs.X metric pointers are optional (nil when
//	             observability is off) and must be nil-checked before
//	             any selector use.
//	lockedeval — no mutex may be held across Interp.Eval/EvalScript:
//	             scripts run arbitrary callbacks that may re-enter the
//	             locked component and deadlock.
//	checkscan  — errors from strconv.Parse*/Atoi and fmt.Sscan* must
//	             not be silently discarded.
//	atomics    — a field accessed through sync/atomic in one place
//	             must never be read or written plainly elsewhere.
//	redisplayclip — Redisplay procs run under the damage-region
//	             pipeline: the dispatcher clears the damage rect and
//	             sets the clip before calling them, so a proc (or any
//	             same-package helper it calls) that issues draw
//	             primitives without ever consulting Widget.Clip/
//	             ClipIntersects repaints blind, and one that calls
//	             Display.ClearWindow wipes paint outside its clip.
//	sessionowner — session state (tcl.Interp, xt.App/Widget,
//	             xproto.Display, core.Wafe, frontend.Frontend/Session)
//	             is owned by one event-loop goroutine; touches
//	             reachable from any other goroutine must go through
//	             App.Post or an allowlisted atomic (ownership.go).
//	lockorder  — the lock-order graph over the package's known mutexes
//	             must be acyclic, and no known mutex may be held across
//	             a call that reaches Interp.Eval*/App.Post
//	             (lockorder.go).
//
// Findings on a line (or the line below) a "//wafevet:ignore rule"
// comment are suppressed.
type Vet struct {
	root string // module root (directory containing the wafe packages)
	fset *token.FileSet
	imp  *vetImporter
	// timings accumulates per-rule wall time across CheckDir calls.
	timings map[string]time.Duration
}

const modulePath = "wafe"

// obsPkgPath is the package whose exported pointer types the nilguard
// rule tracks.
const obsPkgPath = modulePath + "/internal/obs"

// NewVet creates an analyzer rooted at the repository's module root.
func NewVet(root string) *Vet {
	fset := token.NewFileSet()
	v := &Vet{root: root, fset: fset}
	v.imp = &vetImporter{
		fset: fset,
		root: root,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*types.Package),
	}
	return v
}

// vetImporter resolves module-internal import paths against the repo
// source tree (go/build alone is not module-aware) and everything
// else through the stdlib source importer, so the analyzer needs no
// network, GOPATH layout or precompiled export data.
type vetImporter struct {
	fset *token.FileSet
	root string
	std  types.Importer
	pkgs map[string]*types.Package
}

func (im *vetImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	if path == modulePath || strings.HasPrefix(path, modulePath+"/") {
		dir := filepath.Join(im.root, strings.TrimPrefix(path, modulePath))
		pkg, _, _, err := im.load(path, dir, nil)
		if err != nil {
			return nil, err
		}
		im.pkgs[path] = pkg
		return pkg, nil
	}
	p, err := im.std.Import(path)
	if err != nil {
		return nil, err
	}
	im.pkgs[path] = p
	return p, nil
}

// load parses and type-checks the package in dir. When info is
// non-nil the type-checker fills it (used for the package under
// analysis; dependencies skip it).
func (im *vetImporter) load(path, dir string, info *types.Info) (*types.Package, []*ast.File, *build.Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: im, Error: func(error) {}}
	pkg, err := conf.Check(path, im.fset, files, info)
	if pkg == nil {
		return nil, nil, nil, err
	}
	return pkg, files, bp, nil
}

// CheckDir analyzes the package in dir (relative or absolute) and
// returns its findings.
func (v *Vet) CheckDir(dir string) ([]Diagnostic, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rootAbs, err := filepath.Abs(v.root)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(rootAbs, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("wafevet: %s is outside the module root %s", dir, v.root)
	}
	pkgPath := modulePath
	if rel != "." {
		pkgPath = modulePath + "/" + filepath.ToSlash(rel)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, files, _, err := v.imp.load(pkgPath, abs, info)
	if err != nil {
		return nil, err
	}
	v.imp.pkgs[pkgPath] = pkg

	fc := &vetCheck{v: v, pkg: pkg, info: info}
	timed := func(rule string, run func()) {
		start := time.Now()
		run()
		if v.timings == nil {
			v.timings = make(map[string]time.Duration)
		}
		v.timings[rule] += time.Since(start)
	}
	for _, f := range files {
		fc.ignores = scanVetIgnores(v.fset, f)
		if pkgPath != obsPkgPath {
			timed("nilguard", func() { fc.checkNilGuard(f) })
		}
		timed("lockedeval", func() { fc.checkLockedEval(f) })
		timed("checkscan", func() { fc.checkScan(f) })
	}
	timed("atomics", func() { fc.checkAtomics(files) })
	timed("redisplayclip", func() { fc.checkRedisplayClip(files) })
	var g *pkgGraph
	timed("callgraph", func() { g = fc.buildPkgGraph(files) })
	timed("sessionowner", func() { fc.checkSessionOwner(files, g) })
	timed("lockorder", func() { fc.checkLockOrder(files, g) })
	SortDiagnostics(fc.diags)
	return fc.diags, nil
}

// Timings returns the cumulative per-rule wall time across every
// CheckDir call on this Vet (the bench harness reports it).
func (v *Vet) Timings() map[string]time.Duration {
	out := make(map[string]time.Duration, len(v.timings))
	for k, d := range v.timings {
		out[k] = d
	}
	return out
}

// vetCheck carries the per-package analysis state. report filters
// through ignores, which always holds the directives of the file
// currently being walked.
type vetCheck struct {
	v       *Vet
	pkg     *types.Package
	info    *types.Info
	diags   []Diagnostic
	ignores map[int]map[string]bool
}

func (fc *vetCheck) report(pos token.Pos, rule, format string, args ...any) {
	p := fc.v.fset.Position(pos)
	if set := fc.ignores[p.Line]; set != nil && (set["all"] || set[rule]) {
		return
	}
	fc.diags = append(fc.diags, Diagnostic{
		File: p.Filename, Line: p.Line, Col: p.Column, Rule: rule,
		Msg: fmt.Sprintf(format, args...),
	})
}

// scanVetIgnores collects "//wafevet:ignore rule..." comments; each
// suppresses the named rules on its own line and the following line.
func scanVetIgnores(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	out := make(map[int]map[string]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			idx := strings.Index(c.Text, "wafevet:ignore")
			if idx < 0 {
				continue
			}
			rules := strings.Fields(c.Text[idx+len("wafevet:ignore"):])
			if len(rules) == 0 {
				rules = []string{"all"}
			}
			line := fset.Position(c.Pos()).Line
			for _, ln := range []int{line, line + 1} {
				if out[ln] == nil {
					out[ln] = make(map[string]bool)
				}
				for _, r := range rules {
					out[ln][r] = true
				}
			}
		}
	}
	return out
}

// ---------------------------------------------------------------- nilguard

// isObsPointer reports whether t is *P with P a named type declared
// in the obs package.
func isObsPointer(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	p := named.Obj().Pkg()
	return p != nil && p.Path() == obsPkgPath
}

// checkNilGuard walks every function and flags selector uses of
// obs-pointer values that are not dominated by a nil check.
func (fc *vetCheck) checkNilGuard(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			// FuncLits are visited when their enclosing function walks
			// its statements; top-level ones have no enclosing FuncDecl,
			// but those don't occur in this codebase.
			return true
		default:
			return true
		}
		if body != nil {
			g := &nilGuard{fc: fc}
			g.walkStmts(body.List, map[string]bool{})
		}
		return false
	})
}

// nilGuard is the per-function guard walker.
type nilGuard struct{ fc *vetCheck }

func exprKey(e ast.Expr) string { return types.ExprString(e) }

// cleanSource reports whether rhs produces a never-nil obs pointer:
// constructor calls (New*, Enable*) and &Composite{} literals.
func (g *nilGuard) cleanSource(rhs ast.Expr) bool {
	switch e := rhs.(type) {
	case *ast.CallExpr:
		name := calleeName(e)
		return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "Enable")
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, isLit := e.X.(*ast.CompositeLit)
			return isLit
		}
	}
	return false
}

func (g *nilGuard) walkStmts(stmts []ast.Stmt, guards map[string]bool) {
	for i, s := range stmts {
		switch st := s.(type) {
		case *ast.IfStmt:
			if st.Init != nil {
				g.walkStmts([]ast.Stmt{st.Init}, guards)
			}
			g.checkExpr(st.Cond, guards)
			thenGuards := copyGuards(guards)
			var nilChecked []string
			collectNonNil(st.Cond, &nilChecked)
			for _, k := range nilChecked {
				thenGuards[k] = true
			}
			g.walkStmts(st.Body.List, thenGuards)
			elseGuards := copyGuards(guards)
			var nilEq []string
			collectIsNil(st.Cond, &nilEq)
			for _, k := range nilEq {
				elseGuards[k] = true
			}
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				g.walkStmts(e.List, elseGuards)
			case *ast.IfStmt:
				g.walkStmts([]ast.Stmt{e}, elseGuards)
			}
			// "if x == nil { return }" guards x for the rest of the block.
			if len(nilEq) > 0 && st.Else == nil && terminates(st.Body) {
				for _, k := range nilEq {
					guards[k] = true
				}
			}
			_ = i
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				g.checkExpr(rhs, guards)
			}
			for j, lhs := range st.Lhs {
				if j >= len(st.Rhs) && len(st.Rhs) != 1 {
					break
				}
				rhs := st.Rhs[0]
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[j]
				}
				if id, ok := lhs.(*ast.Ident); ok {
					if g.cleanSource(rhs) || guards[exprKey(rhs)] {
						guards[id.Name] = true
					} else {
						delete(guards, id.Name)
					}
				}
			}
		case *ast.BlockStmt:
			g.walkStmts(st.List, copyGuards(guards))
		case *ast.ForStmt:
			if st.Init != nil {
				g.walkStmts([]ast.Stmt{st.Init}, guards)
			}
			inner := copyGuards(guards)
			if st.Cond != nil {
				g.checkExpr(st.Cond, inner)
				var nn []string
				collectNonNil(st.Cond, &nn)
				for _, k := range nn {
					inner[k] = true
				}
			}
			g.walkStmts(st.Body.List, inner)
		case *ast.RangeStmt:
			g.checkExpr(st.X, guards)
			g.walkStmts(st.Body.List, copyGuards(guards))
		case *ast.SwitchStmt:
			if st.Init != nil {
				g.walkStmts([]ast.Stmt{st.Init}, guards)
			}
			if st.Tag != nil {
				g.checkExpr(st.Tag, guards)
			}
			for _, cl := range st.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					g.walkStmts(cc.Body, copyGuards(guards))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cl := range st.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					g.walkStmts(cc.Body, copyGuards(guards))
				}
			}
		case *ast.SelectStmt:
			for _, cl := range st.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					g.walkStmts(cc.Body, copyGuards(guards))
				}
			}
		case *ast.DeferStmt:
			g.checkExpr(st.Call, copyGuards(guards))
		case *ast.GoStmt:
			g.checkExpr(st.Call, copyGuards(guards))
		default:
			ast.Inspect(s, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					g.checkExpr(e, guards)
					return false
				}
				return true
			})
		}
	}
}

func copyGuards(g map[string]bool) map[string]bool {
	out := make(map[string]bool, len(g))
	for k := range g {
		out[k] = true
	}
	return out
}

// collectNonNil gathers expressions proven non-nil when cond is true:
// "x != nil" and conjunctions thereof.
func collectNonNil(cond ast.Expr, out *[]string) {
	switch e := cond.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			collectNonNil(e.X, out)
			collectNonNil(e.Y, out)
		case token.NEQ:
			if isNilIdent(e.Y) {
				*out = append(*out, exprKey(e.X))
			} else if isNilIdent(e.X) {
				*out = append(*out, exprKey(e.Y))
			}
		}
	case *ast.ParenExpr:
		collectNonNil(e.X, out)
	}
}

// collectIsNil gathers expressions proven non-nil when cond is FALSE:
// "x == nil" and disjunctions thereof ("x == nil || ..." false means
// every disjunct is false, so x != nil).
func collectIsNil(cond ast.Expr, out *[]string) {
	switch e := cond.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			collectIsNil(e.X, out)
			collectIsNil(e.Y, out)
		case token.EQL:
			if isNilIdent(e.Y) {
				*out = append(*out, exprKey(e.X))
			} else if isNilIdent(e.X) {
				*out = append(*out, exprKey(e.Y))
			}
		}
	case *ast.ParenExpr:
		collectIsNil(e.X, out)
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether a block always transfers control away
// (return, panic, continue, break, goto, os.Exit).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			name := calleeName(call)
			return name == "panic" || name == "Exit" || name == "Fatal" || name == "Fatalf"
		}
	}
	return false
}

// checkExpr flags unguarded selector uses of obs pointers inside e,
// honouring short-circuit guards ("x != nil && x.Use()",
// "x == nil || x.Use()").
func (g *nilGuard) checkExpr(e ast.Expr, guards map[string]bool) {
	switch ex := e.(type) {
	case nil:
		return
	case *ast.BinaryExpr:
		g.checkExpr(ex.X, guards)
		inner := guards
		switch ex.Op {
		case token.LAND:
			var nn []string
			collectNonNil(ex.X, &nn)
			if len(nn) > 0 {
				inner = copyGuards(guards)
				for _, k := range nn {
					inner[k] = true
				}
			}
		case token.LOR:
			var eq []string
			collectIsNil(ex.X, &eq)
			if len(eq) > 0 {
				inner = copyGuards(guards)
				for _, k := range eq {
					inner[k] = true
				}
			}
		}
		g.checkExpr(ex.Y, inner)
	case *ast.SelectorExpr:
		if t, ok := g.fc.info.Types[ex.X]; ok && isObsPointer(t.Type) {
			if !guards[exprKey(ex.X)] && !g.cleanSource(ex.X) {
				g.fc.report(ex.Pos(), "nilguard",
					"possible nil dereference: %s is an optional obs metrics pointer; guard with a nil check before using %s",
					exprKey(ex.X), exprKey(ex))
			}
		}
		g.checkExpr(ex.X, guards)
	case *ast.CallExpr:
		g.checkExpr(ex.Fun, guards)
		for _, a := range ex.Args {
			g.checkExpr(a, guards)
		}
	case *ast.ParenExpr:
		g.checkExpr(ex.X, guards)
	case *ast.UnaryExpr:
		g.checkExpr(ex.X, guards)
	case *ast.StarExpr:
		g.checkExpr(ex.X, guards)
	case *ast.IndexExpr:
		g.checkExpr(ex.X, guards)
		g.checkExpr(ex.Index, guards)
	case *ast.CompositeLit:
		for _, el := range ex.Elts {
			g.checkExpr(el, guards)
		}
	case *ast.KeyValueExpr:
		g.checkExpr(ex.Value, guards)
	case *ast.FuncLit:
		// The closure may run later, when previously-guarded state has
		// changed; analyze with only the current guards (conservative
		// enough in practice).
		g.walkStmts(ex.Body.List, copyGuards(guards))
	}
}

// ---------------------------------------------------------------- lockedeval

// checkLockedEval flags Interp.Eval/EvalScript calls made while a
// mutex is (lexically) held.
func (fc *vetCheck) checkLockedEval(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			return true
		}
		held := make(map[string]bool)
		deferred := make(map[string]bool)
		ast.Inspect(fn.Body, func(m ast.Node) bool {
			switch node := m.(type) {
			case *ast.DeferStmt:
				if name, recv := fc.mutexMethod(node.Call); name == "Unlock" || name == "RUnlock" {
					// Held until function exit; leave it in the set.
					deferred[recv] = true
					return false
				}
			case *ast.CallExpr:
				if name, recv := fc.mutexMethod(node); name != "" {
					switch name {
					case "Lock", "RLock":
						held[recv] = true
					case "Unlock", "RUnlock":
						if !deferred[recv] {
							delete(held, recv)
						}
					}
					return true
				}
				if evalName := fc.interpEval(node); evalName != "" && len(held) > 0 {
					var locks []string
					for k := range held {
						locks = append(locks, k)
					}
					sort.Strings(locks)
					fc.report(node.Pos(), "lockedeval",
						"Interp.%s called while %s is locked: the script may invoke a callback that re-enters the locked component and deadlocks",
						evalName, strings.Join(locks, ", "))
				}
			}
			return true
		})
		return false
	})
}

// mutexMethod returns (method, receiver-key) when call is
// recv.Lock/Unlock/RLock/RUnlock on a sync mutex value.
func (fc *vetCheck) mutexMethod(call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	t, ok := fc.info.Types[sel.X]
	if !ok {
		return "", ""
	}
	s := t.Type.String()
	if strings.HasSuffix(s, "sync.Mutex") || strings.HasSuffix(s, "sync.RWMutex") {
		return name, exprKey(sel.X)
	}
	return "", ""
}

// interpEval returns the method name when call is a script evaluation
// on *tcl.Interp.
func (fc *vetCheck) interpEval(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Eval", "EvalScript", "EvalWords":
	default:
		return ""
	}
	t, ok := fc.info.Types[sel.X]
	if !ok {
		return ""
	}
	if t.Type.String() == "*"+modulePath+"/internal/tcl.Interp" {
		return sel.Sel.Name
	}
	return ""
}

// ---------------------------------------------------------------- checkscan

// scanFuncs are the conversion functions whose error result must not
// be discarded.
var scanFuncs = map[string]bool{
	"strconv.Atoi": true, "strconv.ParseInt": true, "strconv.ParseUint": true,
	"strconv.ParseFloat": true, "strconv.ParseBool": true,
	"fmt.Sscan": true, "fmt.Sscanf": true, "fmt.Sscanln": true,
}

func (fc *vetCheck) scanCallName(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj, ok := fc.info.Uses[pkgIdent]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			full := pn.Imported().Path() + "." + sel.Sel.Name
			if scanFuncs[full] {
				return full
			}
		}
	}
	return ""
}

// checkScan flags strconv/fmt scanning calls whose error result is
// discarded (assigned to _ or the whole call used as a statement).
func (fc *vetCheck) checkScan(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if name := fc.scanCallName(call); name != "" {
					fc.report(call.Pos(), "checkscan", "result of %s is discarded; check the error (or n) result", name)
					return false
				}
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			name := fc.scanCallName(call)
			if name == "" {
				return true
			}
			// The error is the last result; flag when it lands in _.
			last := st.Lhs[len(st.Lhs)-1]
			if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
				fc.report(call.Pos(), "checkscan", "error result of %s is discarded; handle the parse failure explicitly", name)
			}
			return false
		}
		return true
	})
}

// ---------------------------------------------------------------- redisplayclip

const (
	xprotoPkgPath = modulePath + "/internal/xproto"
	xtPkgPath     = modulePath + "/internal/xt"
)

// drawPrimitives are the Display methods that put ink on a window.
var drawPrimitives = map[string]bool{
	"DrawString": true, "FillRectangle": true, "DrawLine": true,
	"DrawRectangle": true, "DrawPoint": true, "CopyPixmap": true,
}

// redrawFacts summarises one function body for the redisplayclip rule.
type redrawFacts struct {
	calls        []types.Object // same-package functions called
	firstDraw    token.Pos      // first draw-primitive call, if any
	firstDrawSel string
	clearCalls   []token.Pos // Display.ClearWindow call sites
	consultsClip bool        // calls Widget.Clip or Widget.ClipIntersects
}

// checkRedisplayClip finds every Redisplay proc wired into an xt.Class
// composite literal and walks its transitive same-package call closure.
// A closure that reaches a draw primitive without ever consulting the
// widget clip is flagged at the first draw site; any ClearWindow call
// in the closure is flagged unconditionally (clearing is the damage
// dispatcher's job, bounded to the damage rect).
func (fc *vetCheck) checkRedisplayClip(files []*ast.File) {
	// Facts for every package-level function, keyed by its object.
	declFacts := make(map[types.Object]*redrawFacts)
	// Redisplay roots: named functions and inline literals.
	var rootObjs []types.Object
	var rootLits []*ast.FuncLit

	for _, f := range files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj := fc.info.Defs[fn.Name]; obj != nil {
					declFacts[obj] = fc.redrawFactsOf(fn.Body)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			kv, ok := n.(*ast.KeyValueExpr)
			if !ok {
				return true
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "Redisplay" {
				return true
			}
			switch v := kv.Value.(type) {
			case *ast.Ident:
				if obj := fc.info.Uses[v]; obj != nil {
					rootObjs = append(rootObjs, obj)
				}
			case *ast.FuncLit:
				rootLits = append(rootLits, v)
			}
			return true
		})
	}
	if len(rootObjs) == 0 && len(rootLits) == 0 {
		return
	}

	// closure folds the facts reachable from a root into one summary.
	type finding struct {
		pos token.Pos
		msg string
	}
	var findings []finding
	analyze := func(root *redrawFacts) {
		seen := make(map[types.Object]bool)
		var agg redrawFacts
		var fold func(ft *redrawFacts)
		fold = func(ft *redrawFacts) {
			if ft == nil {
				return
			}
			if agg.firstDraw == token.NoPos && ft.firstDraw != token.NoPos {
				agg.firstDraw, agg.firstDrawSel = ft.firstDraw, ft.firstDrawSel
			}
			agg.clearCalls = append(agg.clearCalls, ft.clearCalls...)
			agg.consultsClip = agg.consultsClip || ft.consultsClip
			for _, callee := range ft.calls {
				if !seen[callee] {
					seen[callee] = true
					fold(declFacts[callee])
				}
			}
		}
		fold(root)
		for _, pos := range agg.clearCalls {
			findings = append(findings, finding{pos,
				"Redisplay proc calls Display.ClearWindow: the damage dispatcher already cleared the damage rect; clearing the whole window repaints outside the clip"})
		}
		if agg.firstDraw != token.NoPos && !agg.consultsClip {
			findings = append(findings, finding{agg.firstDraw, fmt.Sprintf(
				"Redisplay proc draws (%s) without consulting Widget.Clip or ClipIntersects anywhere in its call closure; clipped partial redraws will repaint everything", agg.firstDrawSel)})
		}
	}
	for _, obj := range rootObjs {
		analyze(declFacts[obj])
	}
	for _, lit := range rootLits {
		analyze(fc.redrawFactsOf(lit.Body))
	}

	// Report per file so ignore directives of the right file apply.
	for _, f := range files {
		fc.ignores = scanVetIgnores(fc.v.fset, f)
		fname := fc.v.fset.Position(f.Pos()).Filename
		for _, fd := range findings {
			if fc.v.fset.Position(fd.pos).Filename == fname {
				fc.report(fd.pos, "redisplayclip", "%s", fd.msg)
			}
		}
	}
}

// redrawFactsOf scans one function body for draw primitives, clip
// consults, ClearWindow calls and same-package callees. FuncLits
// nested in the body are folded into it: they run as part of the
// repaint if they run at all.
func (fc *vetCheck) redrawFactsOf(body *ast.BlockStmt) *redrawFacts {
	ft := &redrawFacts{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if obj, ok := fc.info.Uses[fun].(*types.Func); ok && obj.Pkg() == fc.pkg {
				ft.calls = append(ft.calls, obj)
			}
		case *ast.SelectorExpr:
			recv, ok := fc.info.Types[fun.X]
			if !ok {
				return true
			}
			name := fun.Sel.Name
			switch recv.Type.String() {
			case "*" + xprotoPkgPath + ".Display":
				if drawPrimitives[name] {
					if ft.firstDraw == token.NoPos {
						ft.firstDraw, ft.firstDrawSel = call.Pos(), name
					}
				} else if name == "ClearWindow" {
					ft.clearCalls = append(ft.clearCalls, call.Pos())
				}
			case "*" + xtPkgPath + ".Widget":
				if name == "Clip" || name == "ClipIntersects" {
					ft.consultsClip = true
				}
			}
		}
		return true
	})
	return ft
}

// ---------------------------------------------------------------- atomics

// checkAtomics collects struct fields passed to sync/atomic functions
// (&x.field) and flags plain accesses of the same fields elsewhere in
// the package.
func (fc *vetCheck) checkAtomics(files []*ast.File) {
	atomicFields := make(map[string]token.Pos) // "Struct.field" → first atomic site
	inAtomic := make(map[ast.Node]bool)

	fieldKey := func(sel *ast.SelectorExpr) string {
		s, ok := fc.info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return ""
		}
		recv := s.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Sel.Name
	}

	isAtomicCall := func(call *ast.CallExpr) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return false
		}
		obj, ok := fc.info.Uses[pkgIdent]
		if !ok {
			return false
		}
		pn, ok := obj.(*types.PkgName)
		return ok && pn.Imported().Path() == "sync/atomic"
	}

	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(call) {
				return true
			}
			inAtomic[call] = true
			for _, a := range call.Args {
				un, ok := a.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if sel, ok := un.X.(*ast.SelectorExpr); ok {
					if k := fieldKey(sel); k != "" {
						if _, seen := atomicFields[k]; !seen {
							atomicFields[k] = call.Pos()
						}
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	for _, f := range files {
		fc.ignores = scanVetIgnores(fc.v.fset, f)
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			k := fieldKey(sel)
			if k == "" {
				return true
			}
			if _, tracked := atomicFields[k]; !tracked {
				return true
			}
			for _, anc := range stack {
				if inAtomic[anc] {
					return true
				}
			}
			fc.report(sel.Pos(), "atomics",
				"field %s is accessed with sync/atomic elsewhere; this plain access is a data race", k)
			return true
		})
	}
}
