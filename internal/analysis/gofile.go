package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"strings"

	"wafe/internal/tcl"
)

// CheckGoFile extracts Wafe scripts embedded in a Go source file and
// lints each one. A string literal is treated as a script when its
// first command's first word is a known command — which skips
// translation tables, regexps and other incidental strings. Literals
// in the format-argument position of printf-style calls (callee name
// ending in 'f') are skipped: their %s/%d verbs are substitution
// slots, not Wafe percent codes.
//
// Commands the program registers itself (w.Interp.RegisterCommand
// calls with a literal name) are added to the known-command set
// before any script is checked.
func (c *Checker) CheckGoFile(filename string, src []byte) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, filename, src, 0)
	if err != nil {
		return nil, err
	}

	var extra []string
	skip := make(map[*ast.BasicLit]bool)
	evalArg := make(map[*ast.BasicLit]bool)
	for _, imp := range af.Imports {
		skip[imp.Path] = true
	}
	ast.Inspect(af, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if name == "RegisterCommand" && len(call.Args) >= 1 {
			if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if s, err := strconv.Unquote(lit.Value); err == nil {
					extra = append(extra, s)
				}
			}
		}
		if strings.HasSuffix(name, "f") {
			for _, a := range call.Args {
				if lit, ok := a.(*ast.BasicLit); ok && lit.Kind == token.STRING {
					skip[lit] = true
				}
			}
		}
		if evalCallees[name] {
			for _, a := range call.Args {
				if lit, ok := a.(*ast.BasicLit); ok && lit.Kind == token.STRING {
					evalArg[lit] = true
				}
			}
		}
		return true
	})

	var diags []Diagnostic
	ast.Inspect(af, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING || skip[lit] {
			return true
		}
		// Arguments of Eval-like calls are scripts by definition and
		// always linted. Other raw strings are linted when they look
		// like a script; other interpreted ("...") strings never are —
		// prose, widget names and app-private DSL strings otherwise
		// trigger false positives.
		if !evalArg[lit] && lit.Value[0] != '`' {
			return true
		}
		content, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if !evalArg[lit] && !c.looksLikeScript(content, extra) {
			return true
		}
		var at func(off int) (int, int)
		if lit.Value[0] == '`' {
			// Raw string: content is a verbatim slice of the file
			// starting one byte after the opening backtick.
			tf := fset.File(lit.Pos())
			base := tf.Offset(lit.Pos()) + 1
			at = func(off int) (int, int) {
				p := fset.Position(tf.Pos(base + off))
				return p.Line, p.Column
			}
		} else {
			// Interpreted string: escapes shift offsets, anchor
			// everything at the literal.
			p := fset.Position(lit.Pos())
			at = func(int) (int, int) { return p.Line, p.Column }
		}
		diags = append(diags, c.CheckEmbedded(filename, content, at, extra)...)
		return true
	})
	SortDiagnostics(diags)
	return diags, nil
}

// evalCallees are function names whose string arguments are executed
// as Wafe scripts.
var evalCallees = map[string]bool{
	"Eval": true, "EvalScript": true, "RunScript": true, "must": true,
}

func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// looksLikeScript reports whether a string literal's first command
// names a known Wafe/Tcl command or a proc defined in the string.
func (c *Checker) looksLikeScript(content string, extra []string) bool {
	s, err := tcl.Compile(content)
	if err != nil || s == nil {
		return false
	}
	cmds := s.Commands()
	if len(cmds) == 0 || len(cmds[0].Words) == 0 {
		return false
	}
	name, ok := cmds[0].Words[0].Literal()
	if !ok {
		return false
	}
	if c.T.Commands[name] {
		return true
	}
	if _, isMeta := c.T.Metas[name]; isMeta {
		return true
	}
	for _, e := range extra {
		if e == name {
			return true
		}
	}
	for _, e := range c.Extra {
		if e == name {
			return true
		}
	}
	return false
}
