package analysis

// ownership.go implements the sessionowner rule. The runtime's
// load-bearing invariant is that every session is single-threaded: one
// event-loop goroutine owns the interpreter, the widget tree, the
// virtual display and the frontend pipe state, and every other
// goroutine must route touches through App.Post. The rule classifies
// the session-owned types, finds every goroutine root in the package
// (the spawn graph), closes over the same-goroutine call graph, and
// flags reads, writes and method calls on session-owned values that
// the spawned goroutine can reach.
//
// What is deliberately NOT flagged:
//   - closures handed to App.Post — they run on the owning loop;
//   - fields whose type lives in sync or sync/atomic — those are the
//     allowlisted atomics (obs pointers, loopGoID, ...);
//   - reads of pointer/interface/chan/func-typed fields — session
//     wiring is written once at construction and read-only afterwards
//     (writes to them are still flagged);
//   - goroutines that run the loop themselves (they call App.MainLoop,
//     App.Sync or Session.Run somewhere in their call closure): they
//     are an owning event loop, not an intruder.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

const (
	tclPkgPath      = modulePath + "/internal/tcl"
	corePkgPath     = modulePath + "/internal/core"
	frontendPkgPath = modulePath + "/internal/frontend"
)

// sessionOwnedTypes maps the session-owned types to the short names
// used in diagnostics.
var sessionOwnedTypes = map[string]string{
	tclPkgPath + ".Interp":        "tcl.Interp",
	xtPkgPath + ".App":            "xt.App",
	xtPkgPath + ".Widget":         "xt.Widget",
	xprotoPkgPath + ".Display":    "xproto.Display",
	corePkgPath + ".Wafe":         "core.Wafe",
	frontendPkgPath + ".Frontend": "frontend.Frontend",
	frontendPkgPath + ".Session":  "frontend.Session",
}

// sessionSafeMethods are methods on session-owned types that are
// explicitly safe from any goroutine (each is internally synchronized
// and documented as the cross-goroutine entry point).
var sessionSafeMethods = map[string]bool{
	xtPkgPath + ".App.Post":            true, // chan send + goid-checked inline run
	frontendPkgPath + ".Session.Interrupt": true, // posts to the loop
}

// loopRunnerMethods mark a goroutine as an owning event loop: a
// goroutine that runs the loop owns the session state it touches.
var loopRunnerMethods = map[string]bool{
	xtPkgPath + ".App.MainLoop":  true,
	xtPkgPath + ".App.Sync":      true,
	frontendPkgPath + ".Session.Run": true,
}

// ownTouch is one touch of session-owned state.
type ownTouch struct {
	pos  token.Pos
	desc string
}

// ownFacts summarize one unit body for the rule.
type ownFacts struct {
	touches    []ownTouch
	loopRunner bool
}

// checkSessionOwner runs the rule over the package.
func (fc *vetCheck) checkSessionOwner(files []*ast.File, g *pkgGraph) {
	if len(g.goUnits) == 0 {
		return
	}
	declFacts := make(map[types.Object]*ownFacts)
	for obj, fn := range g.decls {
		declFacts[obj] = fc.ownFactsOf(g, fn.Body)
	}

	reported := make(map[token.Pos]bool)
	var findings []Diagnostic
	goLine := func(u goUnit) int { return fc.v.fset.Position(u.pos).Line }

	for _, u := range g.goUnits {
		var rootFacts *ownFacts
		var roots []types.Object
		if u.body != nil {
			rootFacts = fc.ownFactsOf(g, u.body)
			g.unitWalk(u.body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && !g.goCalls[call] {
					if callee := fc.samePkgCallee(call); callee != nil {
						roots = append(roots, callee)
					}
				}
				return true
			})
		} else {
			roots = []types.Object{u.obj}
		}
		reach := g.reachable(roots...)
		isLoop := rootFacts != nil && rootFacts.loopRunner
		for o := range reach {
			if f := declFacts[o]; f != nil && f.loopRunner {
				isLoop = true
			}
		}
		if isLoop {
			continue // this goroutine IS an owning event loop
		}
		emit := func(f *ownFacts) {
			if f == nil {
				return
			}
			for _, t := range f.touches {
				if reported[t.pos] {
					continue
				}
				reported[t.pos] = true
				p := fc.v.fset.Position(t.pos)
				findings = append(findings, Diagnostic{
					File: p.Filename, Line: p.Line, Col: p.Column, Rule: "sessionowner",
					Msg: fmt.Sprintf("%s from the goroutine started in %s (line %d): session-owned state is single-threaded; route it through App.Post",
						t.desc, u.encl, goLine(u)),
				})
			}
		}
		emit(rootFacts)
		for o := range reach {
			emit(declFacts[o])
		}
	}

	// Report per file so each file's ignore directives apply.
	SortDiagnostics(findings)
	for _, f := range files {
		fc.ignores = scanVetIgnores(fc.v.fset, f)
		fname := fc.v.fset.Position(f.Pos()).Filename
		for _, d := range findings {
			if d.File != fname {
				continue
			}
			if set := fc.ignores[d.Line]; set != nil && (set["all"] || set[d.Rule]) {
				continue
			}
			fc.diags = append(fc.diags, d)
		}
	}
}

// ownFactsOf scans one unit body for touches of session-owned state.
func (fc *vetCheck) ownFactsOf(g *pkgGraph, body ast.Node) *ownFacts {
	f := &ownFacts{}
	// First pass: selector expressions in write position.
	writes := make(map[*ast.SelectorExpr]bool)
	markWrite := func(e ast.Expr) {
		if sel, ok := e.(*ast.SelectorExpr); ok {
			writes[sel] = true
		}
	}
	g.unitWalk(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(st.X)
		case *ast.UnaryExpr:
			if st.Op == token.AND {
				// Taking the address may hand the field out for writing.
				markWrite(st.X)
			}
		}
		return true
	})
	g.unitWalk(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		tv, ok := fc.info.Types[sel.X]
		if !ok {
			return true
		}
		typePath := namedTypePath(tv.Type)
		short, owned := sessionOwnedTypes[typePath]
		if !owned {
			return true
		}
		s, ok := fc.info.Selections[sel]
		if !ok {
			return true
		}
		key := typePath + "." + sel.Sel.Name
		switch s.Kind() {
		case types.MethodVal, types.MethodExpr:
			if sessionSafeMethods[key] {
				return true
			}
			if loopRunnerMethods[key] {
				f.loopRunner = true
				return true
			}
			f.touches = append(f.touches, ownTouch{
				pos:  sel.Pos(),
				desc: fmt.Sprintf("call to session-owned (*%s).%s", short, sel.Sel.Name),
			})
		case types.FieldVal:
			ft := s.Obj().Type()
			if syncFieldType(ft) {
				return true // allowlisted atomic / mutex field
			}
			if writes[sel] {
				f.touches = append(f.touches, ownTouch{
					pos:  sel.Pos(),
					desc: fmt.Sprintf("write to session-owned field %s.%s", short, sel.Sel.Name),
				})
				return true
			}
			if wiringFieldType(ft) {
				return true // construction-time wiring: read-only after setup
			}
			f.touches = append(f.touches, ownTouch{
				pos:  sel.Pos(),
				desc: fmt.Sprintf("read of session-owned field %s.%s", short, sel.Sel.Name),
			})
		}
		return true
	})
	return f
}

// syncFieldType reports whether a field's type lives in sync or
// sync/atomic: mutexes and atomics are the sanctioned cross-goroutine
// fields.
func syncFieldType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "sync" || pkg.Path() == "sync/atomic"
}

// wiringFieldType reports field types whose reads are construction-
// time wiring (pointers, interfaces, channels, funcs): the repo's
// convention is that these are assigned exactly once before the loop
// starts. Mutable value state (ints, strings, maps, slices, structs)
// does not qualify.
func wiringFieldType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Signature:
		return true
	}
	return false
}
