package xt

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"wafe/internal/obs"
)

// Xrm is the resource database (XrmDatabase): specification lines like
//
//	*Font: fixed
//	Wafe*label1.foreground: blue
//
// entered from resource files or the mergeResources command, queried at
// widget-creation time with standard X precedence rules.
//
// The database is the Xlib-style quark tree: every specification
// component is interned to a Quark, and each tree level keeps separate
// tight ('.') and loose ('*') buckets for child levels and for leaf
// values. Enter is O(depth); queries walk the tree through a search
// list (XrmQGetSearchList) — the precomputed, precedence-ordered set of
// tree positions that can hold a value for a given widget path — so
// resolving one resource (XrmQGetSearchResource) costs a handful of
// small-int map probes regardless of database size.
//
// All methods are safe for concurrent use: mergeResources may run on
// the event loop while another goroutine reads. A generation counter,
// bumped by every Enter, invalidates cached search lists.
type Xrm struct {
	mu      sync.RWMutex
	root    *xrmNode
	count   int
	nextSeq int
	gen     atomic.Uint64

	// specCache interns parsed specification strings so re-entering a
	// spec (mergeResources with a fixed set of keys) skips the parser.
	specCache map[string][]xrmComponent

	// lists caches search lists keyed by a hash of the quarked widget
	// path. Entries are immutable once published and carry the
	// generation they were built at; a generation mismatch is a miss.
	lists map[uint64]*SearchList

	// obs, when non-nil, counts search-list cache hits/misses and
	// mirrors the generation counter (xt.xrm_* metrics).
	obs atomic.Pointer[obs.XtMetrics]
}

type xrmComponent struct {
	loose bool // preceded by '*' (matches zero or more levels)
	q     Quark
}

// xrmNode is one level of the quark tree. Children and leaf values are
// split into tight and loose buckets; maps are nil until first use so
// sparse databases stay small.
type xrmNode struct {
	tight     map[Quark]*xrmNode
	loose     map[Quark]*xrmNode
	tightVals map[Quark]*xrmValue
	looseVals map[Quark]*xrmValue
}

type xrmValue struct {
	value string
	seq   int // insertion order; a replacement takes the current sequence
}

// maxCachedLists bounds the per-database search-list cache; the cache
// is reset wholesale when full (paths repeat heavily in practice, so
// the steady state never approaches the bound).
const maxCachedLists = 512

// maxCachedSpecs bounds the parsed-specification intern cache.
const maxCachedSpecs = 4096

// NewXrm returns an empty database.
func NewXrm() *Xrm { return &Xrm{root: &xrmNode{}} }

// Len returns the number of entries.
func (db *Xrm) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.count
}

// Generation returns the database generation: it starts at zero and
// every Enter bumps it. Cached search lists are tagged with the
// generation they were built at and rebuilt on mismatch.
func (db *Xrm) Generation() uint64 { return db.gen.Load() }

// SetObs attaches (or, with nil, detaches) observability metrics:
// search-list cache hits/misses and the generation gauge.
func (db *Xrm) SetObs(m *obs.XtMetrics) {
	db.obs.Store(m)
	if m != nil {
		m.XrmGeneration.Observe(int64(db.gen.Load()))
	}
}

// EnterString parses a block of resource-file text: one "spec: value"
// per line, "!"- or "#"-prefixed comment lines ignored. A line whose
// trailing backslash run has odd length continues on the next line,
// with the backslash and the newline elided, as in real resource files.
func (db *Xrm) EnterString(text string) error {
	lines := strings.Split(text, "\n")
	for i := 0; i < len(lines); i++ {
		line := strings.TrimSuffix(lines[i], "\r")
		for oddTrailingBackslashes(line) && i+1 < len(lines) {
			i++
			line = line[:len(line)-1] + strings.TrimSuffix(lines[i], "\r")
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "#") {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return fmt.Errorf("xt: resource line %q has no colon", line)
		}
		if err := db.Enter(strings.TrimSpace(line[:colon]), strings.TrimSpace(line[colon+1:])); err != nil {
			return err
		}
	}
	return nil
}

// oddTrailingBackslashes reports whether the line ends in an unescaped
// backslash — the resource-file continuation marker.
func oddTrailingBackslashes(line string) bool {
	n := 0
	for n < len(line) && line[len(line)-1-n] == '\\' {
		n++
	}
	return n%2 == 1
}

// Enter adds one specification → value pair, replacing an identical
// specification. A replacement takes the current insertion priority —
// re-entering a spec behaves exactly like removing it and adding it
// fresh, so it cannot lose later-wins tie-breaks to entries added in
// between.
func (db *Xrm) Enter(spec, value string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	comps, err := db.parseSpecLocked(spec)
	if err != nil {
		return err
	}
	n := db.root
	for _, c := range comps[:len(comps)-1] {
		var m map[Quark]*xrmNode
		if c.loose {
			if n.loose == nil {
				n.loose = make(map[Quark]*xrmNode)
			}
			m = n.loose
		} else {
			if n.tight == nil {
				n.tight = make(map[Quark]*xrmNode)
			}
			m = n.tight
		}
		child := m[c.q]
		if child == nil {
			child = &xrmNode{}
			m[c.q] = child
		}
		n = child
	}
	last := comps[len(comps)-1]
	var vals map[Quark]*xrmValue
	if last.loose {
		if n.looseVals == nil {
			n.looseVals = make(map[Quark]*xrmValue)
		}
		vals = n.looseVals
	} else {
		if n.tightVals == nil {
			n.tightVals = make(map[Quark]*xrmValue)
		}
		vals = n.tightVals
	}
	db.nextSeq++
	if v := vals[last.q]; v != nil {
		v.value = value
		v.seq = db.nextSeq
	} else {
		vals[last.q] = &xrmValue{value: value, seq: db.nextSeq}
		db.count++
	}
	g := db.gen.Add(1)
	if m := db.obs.Load(); m != nil {
		m.XrmGeneration.Observe(int64(g))
	}
	return nil
}

// parseSpecLocked parses a specification through the intern cache;
// the caller holds db.mu.
func (db *Xrm) parseSpecLocked(spec string) ([]xrmComponent, error) {
	if comps, ok := db.specCache[spec]; ok {
		return comps, nil
	}
	comps, err := parseXrmSpec(spec)
	if err != nil {
		return nil, err
	}
	if db.specCache == nil {
		db.specCache = make(map[string][]xrmComponent)
	} else if len(db.specCache) >= maxCachedSpecs {
		clear(db.specCache)
	}
	db.specCache[spec] = comps
	return comps, nil
}

func parseXrmSpec(spec string) ([]xrmComponent, error) {
	var comps []xrmComponent
	loose := false
	cur := strings.Builder{}
	flush := func() {
		if cur.Len() > 0 {
			comps = append(comps, xrmComponent{loose: loose, q: StringToQuark(cur.String())})
			cur.Reset()
			loose = false
		}
	}
	for i := 0; i < len(spec); i++ {
		switch spec[i] {
		case '.':
			flush()
		case '*':
			flush()
			loose = true
		case ' ', '\t':
			// ignore stray whitespace
		default:
			cur.WriteByte(spec[i])
		}
	}
	flush()
	if len(comps) == 0 {
		return nil, fmt.Errorf("xt: empty resource specification %q", spec)
	}
	return comps, nil
}

// --- search lists -----------------------------------------------------------

// SearchList is the result of XrmQGetSearchList for one widget path:
// the precedence-ordered tree positions that can still hold a value
// for any resource of that widget. Lists are immutable once built and
// tagged with the database generation; SearchResource revalidates on
// every use, so holders (widgets cache their list across resource
// initialization) never observe a stale database.
type SearchList struct {
	states   []searchState
	gen      uint64
	namesQ   []Quark
	classesQ []Quark
}

// searchState is one tree position a query may find values at. A state
// reached by skipping a path level via a loose binding may only use the
// node's loose buckets.
type searchState struct {
	node      *xrmNode
	looseOnly bool
}

// SearchListFor returns the search list for a quarked widget name/class
// path, serving it from the per-database cache when the path was seen
// at the current generation (the widget-creation steady state).
func (db *Xrm) SearchListFor(namesQ, classesQ []Quark) *SearchList {
	h := hashQuarkPath(namesQ, classesQ)
	db.mu.RLock()
	g := db.gen.Load()
	if sl := db.lists[h]; sl != nil && sl.gen == g &&
		quarksEqual(sl.namesQ, namesQ) && quarksEqual(sl.classesQ, classesQ) {
		db.mu.RUnlock()
		if m := db.obs.Load(); m != nil {
			m.XrmSearchListHits.Inc()
		}
		return sl
	}
	fresh := &SearchList{
		gen:      g,
		namesQ:   append([]Quark(nil), namesQ...),
		classesQ: append([]Quark(nil), classesQ...),
	}
	fresh.states = db.buildStatesLocked(fresh.namesQ, fresh.classesQ)
	db.mu.RUnlock()
	if m := db.obs.Load(); m != nil {
		m.XrmSearchListMisses.Inc()
	}
	db.mu.Lock()
	// Publish only if still current — the tree may have changed while
	// the read lock was dropped.
	if db.gen.Load() == fresh.gen {
		if db.lists == nil {
			db.lists = make(map[uint64]*SearchList)
		} else if len(db.lists) >= maxCachedLists {
			clear(db.lists)
		}
		db.lists[h] = fresh
	}
	db.mu.Unlock()
	return fresh
}

// SearchResource resolves one resource name/class against a search
// list (XrmQGetSearchResource). The steady-state path — list current at
// this generation — performs no allocation.
func (db *Xrm) SearchResource(sl *SearchList, resName, resClass Quark) (string, bool) {
	db.mu.RLock()
	states := sl.states
	if sl.gen != db.gen.Load() {
		// The database changed after the list was built (mergeResources
		// racing widget creation). Recompute privately under the read
		// lock; sl itself is immutable, so concurrent holders are safe.
		states = db.buildStatesLocked(sl.namesQ, sl.classesQ)
		if m := db.obs.Load(); m != nil {
			m.XrmSearchListMisses.Inc()
		}
	}
	v := lookupStates(states, resName, resClass)
	if v == nil {
		db.mu.RUnlock()
		return "", false
	}
	value := v.value
	db.mu.RUnlock()
	return value, true
}

// buildStatesLocked runs the search-list DFS; the caller holds db.mu
// (read or write). States are emitted in strict precedence order: at
// each path level tight-name beats tight-class beats tight-'?' beats
// loose-name beats loose-class beats loose-'?' beats skipping the
// level, and earlier levels dominate later ones — exactly the X
// precedence rules. A (node, level, looseOnly) memo bounds the walk to
// O(nodes × depth); re-visits would only re-emit states already listed
// at higher precedence.
func (db *Xrm) buildStatesLocked(namesQ, classesQ []Quark) []searchState {
	type visit struct {
		n         *xrmNode
		level     int
		looseOnly bool
	}
	var states []searchState
	var seen map[visit]bool
	L := len(namesQ)
	var rec func(n *xrmNode, level int, looseOnly bool)
	rec = func(n *xrmNode, level int, looseOnly bool) {
		if n == nil {
			return
		}
		if seen == nil {
			seen = make(map[visit]bool)
		}
		v := visit{n, level, looseOnly}
		if seen[v] {
			return
		}
		seen[v] = true
		if level == L {
			states = append(states, searchState{node: n, looseOnly: looseOnly})
			return
		}
		nq, cq := namesQ[level], classesQ[level]
		if !looseOnly && n.tight != nil {
			rec(n.tight[nq], level+1, false)
			if cq != nq {
				rec(n.tight[cq], level+1, false)
			}
			if quarkQuestion != nq && quarkQuestion != cq {
				rec(n.tight[quarkQuestion], level+1, false)
			}
		}
		if n.loose != nil {
			rec(n.loose[nq], level+1, false)
			if cq != nq {
				rec(n.loose[cq], level+1, false)
			}
			if quarkQuestion != nq && quarkQuestion != cq {
				rec(n.loose[quarkQuestion], level+1, false)
			}
		}
		// A loose binding may skip this level; afterwards only the
		// node's loose buckets remain matchable, so prune when it has
		// none.
		if n.loose != nil || n.looseVals != nil {
			rec(n, level+1, true)
		}
	}
	rec(db.root, 0, false)
	return states
}

// lookupStates scans a search list for the best match of one resource,
// first state (highest path precedence) first; within a state the
// tight buckets beat the loose ones and name beats class beats '?'.
func lookupStates(states []searchState, resName, resClass Quark) *xrmValue {
	for _, st := range states {
		n := st.node
		if !st.looseOnly && n.tightVals != nil {
			if v := n.tightVals[resName]; v != nil {
				return v
			}
			if resClass != resName {
				if v := n.tightVals[resClass]; v != nil {
					return v
				}
			}
			if quarkQuestion != resName && quarkQuestion != resClass {
				if v := n.tightVals[quarkQuestion]; v != nil {
					return v
				}
			}
		}
		if n.looseVals != nil {
			if v := n.looseVals[resName]; v != nil {
				return v
			}
			if resClass != resName {
				if v := n.looseVals[resClass]; v != nil {
					return v
				}
			}
			if quarkQuestion != resName && quarkQuestion != resClass {
				if v := n.looseVals[quarkQuestion]; v != nil {
					return v
				}
			}
		}
	}
	return nil
}

// --- string-path query ------------------------------------------------------

// queryStackDepth is the widget-path depth served from stack buffers in
// Query; deeper paths fall back to heap slices.
const queryStackDepth = 24

// Query looks up the resource for a widget path. names and classes are
// the instance/class paths from the application down; resName/resClass
// identify the resource itself. It returns the best-matching value per
// the X precedence rules: instance over class over '?', tight over
// loose binding, earlier path levels dominating later ones.
//
// Repeated queries for the same path hit the cached search list and
// run allocation-free.
func (db *Xrm) Query(names, classes []string, resName, resClass string) (string, bool) {
	var nbuf, cbuf [queryStackDepth]Quark
	nq := internPath(nbuf[:0], names)
	cq := internPath(cbuf[:0], classes)
	sl := db.SearchListFor(nq, cq)
	return db.SearchResource(sl, StringToQuark(resName), StringToQuark(resClass))
}

func internPath(dst []Quark, path []string) []Quark {
	for _, s := range path {
		dst = append(dst, StringToQuark(s))
	}
	return dst
}

func quarksEqual(a, b []Quark) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hashQuarkPath is FNV-1a over the two quark paths with a separator.
func hashQuarkPath(nq, cq []Quark) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, q := range nq {
		h ^= uint64(uint32(q))
		h *= prime64
	}
	h ^= 0xffffffff
	h *= prime64
	for _, q := range cq {
		h ^= uint64(uint32(q))
		h *= prime64
	}
	return h
}
