package xt

import (
	"fmt"
	"strings"
)

// Xrm is the resource database (XrmDatabase): specification lines like
//
//	*Font: fixed
//	Wafe*label1.foreground: blue
//
// entered from resource files or the mergeResources command, queried at
// widget-creation time with standard X precedence rules.
type Xrm struct {
	entries []xrmEntry
}

type xrmComponent struct {
	loose bool // preceded by '*' (matches zero or more levels)
	name  string
}

type xrmEntry struct {
	components []xrmComponent
	value      string
	seq        int // insertion order breaks ties (later wins)
}

// NewXrm returns an empty database.
func NewXrm() *Xrm { return &Xrm{} }

// Len returns the number of entries.
func (db *Xrm) Len() int { return len(db.entries) }

// EnterString parses a block of resource-file text: one "spec: value"
// per line, "!"-prefixed comment lines ignored.
func (db *Xrm) EnterString(text string) error {
	for _, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "#") {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return fmt.Errorf("xt: resource line %q has no colon", line)
		}
		if err := db.Enter(strings.TrimSpace(line[:colon]), strings.TrimSpace(line[colon+1:])); err != nil {
			return err
		}
	}
	return nil
}

// Enter adds one specification → value pair, replacing an identical
// specification.
func (db *Xrm) Enter(spec, value string) error {
	comps, err := parseXrmSpec(spec)
	if err != nil {
		return err
	}
	e := xrmEntry{components: comps, value: value, seq: len(db.entries)}
	for i, old := range db.entries {
		if specEqual(old.components, comps) {
			e.seq = old.seq
			db.entries[i] = e
			return nil
		}
	}
	db.entries = append(db.entries, e)
	return nil
}

func specEqual(a, b []xrmComponent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func parseXrmSpec(spec string) ([]xrmComponent, error) {
	var comps []xrmComponent
	loose := false
	cur := strings.Builder{}
	flush := func() {
		if cur.Len() > 0 {
			comps = append(comps, xrmComponent{loose: loose, name: cur.String()})
			cur.Reset()
			loose = false
		}
	}
	for i := 0; i < len(spec); i++ {
		switch spec[i] {
		case '.':
			flush()
		case '*':
			flush()
			loose = true
		case ' ', '\t':
			// ignore stray whitespace
		default:
			cur.WriteByte(spec[i])
		}
	}
	flush()
	if len(comps) == 0 {
		return nil, fmt.Errorf("xt: empty resource specification %q", spec)
	}
	return comps, nil
}

// Query looks up the resource for a widget path. names and classes are
// the instance/class paths from the application down; resName/resClass
// identify the resource itself. It returns the best-matching value per
// the X precedence rules: instance over class over '?', tight over
// loose binding, earlier path levels dominating later ones.
func (db *Xrm) Query(names, classes []string, resName, resClass string) (string, bool) {
	pathN := append(append([]string(nil), names...), resName)
	pathC := append(append([]string(nil), classes...), resClass)
	bestScore := []int(nil)
	bestSeq := -1
	value := ""
	found := false
	for _, e := range db.entries {
		score, ok := matchEntry(e.components, pathN, pathC)
		if !ok {
			continue
		}
		if bestScore == nil || compareScores(score, bestScore) > 0 ||
			(compareScores(score, bestScore) == 0 && e.seq > bestSeq) {
			bestScore = score
			bestSeq = e.seq
			value = e.value
			found = true
		}
	}
	return value, found
}

// matchEntry matches components against the key path, producing a
// per-level score: 3 = name match, 2 = class match, 1 = '?', 0 = level
// skipped by a loose binding; +4 when the component was tightly bound.
func matchEntry(comps []xrmComponent, names, classes []string) ([]int, bool) {
	L := len(names)
	score := make([]int, L)
	var rec func(ci, li int) bool
	rec = func(ci, li int) bool {
		if ci == len(comps) {
			return li == L
		}
		c := comps[ci]
		if li >= L {
			return false
		}
		// The final component must match the final level.
		tryMatch := func(at int) bool {
			var s int
			switch {
			case c.name == names[at]:
				s = 3
			case c.name == classes[at]:
				s = 2
			case c.name == "?":
				s = 1
			default:
				return false
			}
			if !c.loose {
				s += 4
			}
			// Mark skipped levels between previous position and at.
			for k := li; k < at; k++ {
				score[k] = 0
			}
			score[at] = s
			return rec(ci+1, at+1)
		}
		if c.loose {
			// Try each possible level, earliest (most specific) first.
			// The last component must land on the last level.
			lim := L - 1
			if ci < len(comps)-1 {
				lim = L - 1 - (len(comps) - 1 - ci)
			}
			for at := li; at <= lim; at++ {
				if ci == len(comps)-1 && at != L-1 {
					continue
				}
				saved := append([]int(nil), score...)
				if tryMatch(at) {
					return true
				}
				copy(score, saved)
			}
			return false
		}
		if ci == len(comps)-1 && li != L-1 {
			return false
		}
		return tryMatch(li)
	}
	if !rec(0, 0) {
		return nil, false
	}
	return score, true
}

// compareScores compares level-by-level; earlier levels dominate.
func compareScores(a, b []int) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] > b[i] {
				return 1
			}
			return -1
		}
	}
	return 0
}
