package xt

import (
	"testing"

	"wafe/internal/xproto"
)

// TestFormattersRoundTrip: every built-in type formats its converted
// value back to a stable string.
func TestFormattersRoundTrip(t *testing.T) {
	app := NewTestApp("wafe")
	cases := []struct {
		typ  string
		in   string
		want string
	}{
		{TString, "hello", "hello"},
		{TInt, "42", "42"},
		{TDimension, "7", "7"},
		{TPosition, "-3", "-3"},
		{TBoolean, "true", "True"},
		{TBoolean, "off", "False"},
		{TFloat, "0.25", "0.25"},
		{TPixel, "red", "#ff0000"},
		{TFont, "fixed", "fixed"},
		{TJustify, "LEFT", "left"},
		{TOrientation, "Vertical", "vertical"},
	}
	for _, c := range cases {
		v, err := app.Convert(nil, c.typ, c.in)
		if err != nil {
			t.Errorf("Convert(%s, %q): %v", c.typ, c.in, err)
			continue
		}
		if got := app.Format(c.typ, v); got != c.want {
			t.Errorf("Format(%s, Convert(%q)) = %q, want %q", c.typ, c.in, got, c.want)
		}
	}
	// Translations round-trip through source text.
	tt, err := app.Convert(nil, TTranslations, "<Btn1Down>: go()")
	if err != nil {
		t.Fatal(err)
	}
	if got := app.Format(TTranslations, tt); got != "<Btn1Down>: go()" {
		t.Errorf("translations format = %q", got)
	}
	// StringList joins with newlines.
	sl, _ := app.Convert(nil, TStringList, "a\nb")
	if got := app.Format(TStringList, sl); got != "a\nb" {
		t.Errorf("stringlist format = %q", got)
	}
	// Nil pixmap formats as None.
	pm, _ := app.Convert(nil, TPixmap, "")
	if got := app.Format(TPixmap, pm); got != "None" {
		t.Errorf("nil pixmap format = %q", got)
	}
	// Unregistered types fall back to fmt.Sprint.
	if got := app.Format("NoSuchType", 7); got != "7" {
		t.Errorf("fallback format = %q", got)
	}
}

// TestEventMaskDerivation: the translation table determines the input
// mask the widget's window selects.
func TestEventMaskDerivation(t *testing.T) {
	tt, err := ParseTranslations(`<Btn1Down>: a()
<KeyPress>: b()
<EnterWindow>: c()
<Motion>: d()`)
	if err != nil {
		t.Fatal(err)
	}
	m := tt.EventMask()
	for _, want := range []xproto.EventMask{
		xproto.ButtonPressMask, xproto.KeyPressMask,
		xproto.EnterWindowMask, xproto.PointerMotionMask,
	} {
		if m&want == 0 {
			t.Errorf("mask missing %b", want)
		}
	}
	if m&xproto.ButtonReleaseMask != 0 {
		t.Error("mask includes unselected ButtonRelease")
	}
	if (*Translations)(nil).EventMask() != 0 {
		t.Error("nil table mask")
	}
}

// TestWidgetConverterResolvesNames: the Widget-typed converter turns
// names into widget pointers (used by constraint resources).
func TestWidgetConverterResolvesNames(t *testing.T) {
	app := NewTestApp("wafe")
	top, _ := app.CreateWidget("topLevel", ApplicationShellClass, nil, nil, false)
	lbl, _ := app.CreateWidget("target", testLabelClass, top, nil, true)
	v, err := app.Convert(nil, TWidget, "target")
	if err != nil {
		t.Fatal(err)
	}
	if v.(*Widget) != lbl {
		t.Error("widget converter returned wrong widget")
	}
	if got := app.Format(TWidget, v); got != "target" {
		t.Errorf("widget format = %q", got)
	}
	if _, err := app.Convert(nil, TWidget, "missing"); err == nil {
		t.Error("unknown widget name accepted")
	}
	empty, err := app.Convert(nil, TWidget, " ")
	if err != nil || empty.(*Widget) != nil {
		t.Errorf("empty widget ref = %v, %v", empty, err)
	}
}

// TestShellTitleResources: WMShell resources are declared and settable.
func TestShellTitleResources(t *testing.T) {
	app := NewTestApp("wafe")
	top, _ := app.CreateWidget("topLevel", ApplicationShellClass, nil,
		map[string]string{"title": "My Application", "iconName": "myapp"}, false)
	if top.Str("title") != "My Application" || top.Str("iconName") != "myapp" {
		t.Errorf("title=%q icon=%q", top.Str("title"), top.Str("iconName"))
	}
	if err := top.SetValues(map[string]string{"title": "Renamed"}); err != nil {
		t.Fatal(err)
	}
	if got, _ := top.GetValue("title"); got != "Renamed" {
		t.Errorf("title = %q", got)
	}
}

// TestClassIntrospection covers the small Class helpers.
func TestClassIntrospection(t *testing.T) {
	if !testButtonClass.IsSubclassOf(CoreClass) || !testButtonClass.IsSubclassOf(testLabelClass) {
		t.Error("subclass chain broken")
	}
	if CoreClass.IsSubclassOf(testLabelClass) {
		t.Error("inverted subclass relation")
	}
	all := testButtonClass.AllResources()
	if all[0].Name != "destroyCallback" {
		t.Errorf("first resource = %q", all[0].Name)
	}
	found := false
	for _, r := range all {
		if r.Name == "callback" {
			found = true
		}
	}
	if !found {
		t.Error("subclass resource missing from AllResources")
	}
}
