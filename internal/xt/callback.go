package xt

import (
	"strings"

	"wafe/internal/obs"
)

// CallData carries per-invocation information a widget passes to its
// callbacks (XtCallbackProc's call_data). Keys are the percent-code
// letters the Wafe layer substitutes: "i" → index, "s" → string, etc.
// The "w" code (invoking widget) is always available via the widget
// argument itself.
type CallData map[string]string

// CallbackProc is an Xt callback procedure.
type CallbackProc func(w *Widget, data CallData)

// Callback pairs a procedure with the source string it was created
// from, so the resource remains readable (gV widget callback).
type Callback struct {
	// Source is the Wafe-level representation: a Tcl script, or
	// "predefinedName shellName" for predefined callbacks.
	Source string
	Proc   CallbackProc
	// Compiled is an opaque slot for the interpreter layer to stash a
	// pre-parsed form of Source; xt never inspects it.
	Compiled any
}

// CallbackList is the value of a Callback-typed resource.
type CallbackList []Callback

// Source renders the list back to its string form; multiple entries
// join with "; " as concatenated scripts.
func (cl CallbackList) Source() string {
	parts := make([]string, 0, len(cl))
	for _, c := range cl {
		if c.Source != "" {
			parts = append(parts, c.Source)
		}
	}
	return strings.Join(parts, "; ")
}

// AddCallback appends a callback to the named callback resource
// (XtAddCallback).
func (w *Widget) AddCallback(name string, cb Callback) error {
	r, ok := w.spec[name]
	if !ok || r.Type != TCallback {
		return errNoCallbackResource(w, name)
	}
	cur, _ := w.Get(name)
	list, _ := cur.(CallbackList)
	w.setResource(name, append(list, cb))
	return nil
}

// RemoveAllCallbacks clears the named callback list
// (XtRemoveAllCallbacks).
func (w *Widget) RemoveAllCallbacks(name string) error {
	r, ok := w.spec[name]
	if !ok || r.Type != TCallback {
		return errNoCallbackResource(w, name)
	}
	w.setResource(name, CallbackList(nil))
	return nil
}

// CallCallbacks invokes every callback on the named list
// (XtCallCallbacks). Insensitive widgets still deliver callbacks when
// called programmatically, as in Xt.
func (w *Widget) CallCallbacks(name string, data CallData) {
	cur, ok := w.Get(name)
	if !ok {
		return
	}
	list, _ := cur.(CallbackList)
	for _, cb := range list {
		if cb.Proc != nil {
			if m := w.app.obs.Load(); m != nil {
				m.CallbacksFired.Inc()
			}
			var sp obs.SpanCtx
			if t := w.app.trace.Load(); t != nil && t.Enabled() {
				sp = t.StartSpan("callback", w.Name+"."+name)
			}
			cb.Proc(w, data)
			sp.End()
		}
	}
}

// HasCallbacks reports whether the named list has any entries
// (XtHasCallbacks).
func (w *Widget) HasCallbacks(name string) bool {
	cur, ok := w.Get(name)
	if !ok {
		return false
	}
	list, _ := cur.(CallbackList)
	return len(list) > 0
}

func errNoCallbackResource(w *Widget, name string) error {
	return &xtError{msg: "xt: widget " + w.Name + " (class " + w.Class.Name + ") has no callback resource " + name}
}

type xtError struct{ msg string }

func (e *xtError) Error() string { return e.msg }
