package xt

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// pathSpec is a random widget path for Xrm property tests.
type pathSpec struct {
	Names   []string
	Classes []string
}

var nameAlphabet = []string{"form", "box", "label1", "cmd", "quit", "menu", "text"}
var classAlphabet = []string{"Form", "Box", "Label", "Command", "MenuButton", "AsciiText"}

func (pathSpec) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(4)
	p := pathSpec{Names: make([]string, n), Classes: make([]string, n)}
	for i := 0; i < n; i++ {
		p.Names[i] = nameAlphabet[r.Intn(len(nameAlphabet))]
		p.Classes[i] = classAlphabet[r.Intn(len(classAlphabet))]
	}
	return reflect.ValueOf(p)
}

// Property: a fully-specified tight entry always matches its own path
// and wins over any wildcard entry.
func TestXrmExactAlwaysWinsProperty(t *testing.T) {
	f := func(p pathSpec) bool {
		db := NewXrm()
		names := append([]string{"app"}, p.Names...)
		classes := append([]string{"App"}, p.Classes...)
		spec := strings.Join(append(append([]string{}, names...), "res"), ".")
		if err := db.Enter(spec, "exact"); err != nil {
			t.Logf("Enter(%q): %v", spec, err)
			return false
		}
		if err := db.Enter("*res", "wild"); err != nil {
			return false
		}
		v, ok := db.Query(names, classes, "res", "Res")
		if !ok || v != "exact" {
			t.Logf("path %v: got %q/%v", names, v, ok)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the loose catch-all "*res" matches every path.
func TestXrmWildcardMatchesAllProperty(t *testing.T) {
	f := func(p pathSpec) bool {
		db := NewXrm()
		_ = db.Enter("*res", "wild")
		names := append([]string{"app"}, p.Names...)
		classes := append([]string{"App"}, p.Classes...)
		v, ok := db.Query(names, classes, "res", "Res")
		return ok && v == "wild"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: a class-targeted entry (*Class.res) beats the plain
// wildcard whenever the class occurs in the path.
func TestXrmClassBeatsWildcardProperty(t *testing.T) {
	f := func(p pathSpec, which uint8) bool {
		if len(p.Names) == 0 {
			return true
		}
		idx := int(which) % len(p.Classes)
		class := p.Classes[idx]
		db := NewXrm()
		_ = db.Enter("*res", "wild")
		_ = db.Enter("*"+class+"*res", "classy")
		names := append([]string{"app"}, p.Names...)
		classes := append([]string{"App"}, p.Classes...)
		v, ok := db.Query(names, classes, "res", "Res")
		if !ok {
			return false
		}
		return v == "classy"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: translation tables survive a parse → Source → parse cycle
// with identical matching behaviour on a probe event set.
func TestTranslationSourceRoundTripProperty(t *testing.T) {
	bindings := []string{
		"<Btn1Down>: set()",
		"<Btn3Up>: unset()",
		"Shift<Key>Return: act(a, b)",
		"<EnterWindow>: highlight()",
		"<Key>a: insert()",
		"Ctrl<Btn2Down>: menu(popup)",
		"<KeyPress>: exec(echo %k %a %s)",
	}
	f := func(mask uint8) bool {
		var chosen []string
		for i, b := range bindings {
			if mask&(1<<uint(i)) != 0 {
				chosen = append(chosen, b)
			}
		}
		if len(chosen) == 0 {
			return true
		}
		src := strings.Join(chosen, "\n")
		t1, err := ParseTranslations(src)
		if err != nil {
			t.Logf("parse %q: %v", src, err)
			return false
		}
		t2, err := ParseTranslations(t1.Source())
		if err != nil {
			t.Logf("reparse %q: %v", t1.Source(), err)
			return false
		}
		if t1.Len() != t2.Len() {
			return false
		}
		return t1.Source() == t2.Source()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

// Property: widget create/destroy sequences keep LiveWidgets exact and
// the registry consistent.
func TestWidgetLifecycleCountProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		app := NewTestApp("wafe")
		top, err := app.CreateWidget("topLevel", ApplicationShellClass, nil, nil, false)
		if err != nil {
			return false
		}
		expected := 1 // topLevel
		seq := 0
		var live []string
		for _, op := range ops {
			if op%3 != 0 && len(live) > 0 {
				// destroy a random live widget
				name := live[int(op)%len(live)]
				w := app.WidgetByName(name)
				if w == nil {
					continue
				}
				w.Destroy()
				var next []string
				for _, n := range live {
					if app.WidgetByName(n) != nil {
						next = append(next, n)
					}
				}
				live = next
				expected = 1 + len(live)
				continue
			}
			seq++
			name := fmt.Sprintf("w%d", seq)
			if _, err := app.CreateWidget(name, testLabelClass, top, nil, true); err != nil {
				return false
			}
			live = append(live, name)
			expected++
		}
		if app.LiveWidgets() != expected {
			t.Logf("live = %d, expected %d", app.LiveWidgets(), expected)
			return false
		}
		for _, n := range live {
			if app.WidgetByName(n) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Merge with MergeOverride is idempotent when merging a table
// into itself, and MergeReplace always yields the new table.
func TestTranslationMergeProperties(t *testing.T) {
	a, _ := ParseTranslations("<Btn1Down>: one()\n<EnterWindow>: enter()")
	b, _ := ParseTranslations("<Btn1Down>: two()\n<Key>x: kx()")
	self := a.Merge(a, MergeOverride)
	if self.Len() != a.Len() {
		t.Errorf("self-override changed length: %d vs %d", self.Len(), a.Len())
	}
	rep := a.Merge(b, MergeReplace)
	if rep.Source() != b.Source() {
		t.Error("replace did not yield the new table")
	}
	over := a.Merge(b, MergeOverride)
	aug := a.Merge(b, MergeAugment)
	// Both contain all non-conflicting bindings.
	if over.Len() != 3 || aug.Len() != 3 {
		t.Errorf("merge lengths: override=%d augment=%d, want 3", over.Len(), aug.Len())
	}
}
