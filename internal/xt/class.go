package xt

import "sync"

// Class is a widget class record (XtWidgetClass). Classes form a
// single-inheritance chain; resource lists are additive along the
// chain and method fields chain super-to-sub where the Xt spec says so.
//
// Resource and constraint declarations must be complete before the
// first instance of the class is created: the flattened chain, the
// merged resource list and the interned resource quarks are memoized
// on first use and shared by every subsequent widget creation.
type Class struct {
	Name  string
	Super *Class

	// Resources declared by this class (excluding superclass ones).
	Resources []Resource

	// Constraints declared by this (constraint) class for its children.
	Constraints []Resource

	// Actions provided by the class, available to translation tables of
	// its instances.
	Actions map[string]ActionProc

	// DefaultTranslations installed when an instance is created.
	DefaultTranslations string

	// Composite marks classes that manage children.
	Composite bool
	// Shell marks top-level / popup shells.
	Shell bool

	// Methods (each may be nil). Initialize runs super-to-sub;
	// Destroy runs sub-to-super.
	Initialize    func(w *Widget)
	Realize       func(w *Widget)
	Redisplay     func(w *Widget)
	Resize        func(w *Widget)
	SetValues     func(w *Widget, changed map[string]bool)
	Destroy       func(w *Widget)
	ChangeManaged func(w *Widget)
	// PreferredSize returns the widget's desired size given its current
	// resources (query-geometry).
	PreferredSize func(w *Widget) (width, height int)

	// cache memoizes the flattened class chain, merged resource list
	// and interned quarks (built once, on first instance creation).
	cacheOnce sync.Once
	cache     *classCache
}

// resourceQuarks are the interned symbols for one resource declaration:
// its instance name, class name and value type. Precomputing them per
// class means widget creation resolves every resource against the Xrm
// search list and the converter table without touching the intern
// table.
type resourceQuarks struct {
	nameQ  Quark
	classQ Quark
	typeQ  Quark
}

// classCache holds everything about a class that is recomputed for
// every instance otherwise.
type classCache struct {
	nameQ Quark
	chain []*Class // root-first (Core ... c)

	// all is the merged resource list in class-chain order, deduped by
	// name keeping the first (root-most) declaration; allQ is parallel.
	all  []Resource
	allQ []resourceQuarks

	// constraints is the constraint chain flattened sub-to-super,
	// duplicates preserved (the widget spec-merge resolves them exactly
	// as the per-creation loop used to); constraintsQ is parallel.
	constraints  []Resource
	constraintsQ []resourceQuarks
}

func (c *Class) resCache() *classCache {
	c.cacheOnce.Do(func() {
		cc := &classCache{nameQ: StringToQuark(c.Name)}
		var rev []*Class
		for k := c; k != nil; k = k.Super {
			rev = append(rev, k)
		}
		cc.chain = make([]*Class, len(rev))
		for i := range rev {
			cc.chain[i] = rev[len(rev)-1-i]
		}
		seen := map[string]bool{}
		for _, k := range cc.chain {
			for _, r := range k.Resources {
				if seen[r.Name] {
					continue
				}
				seen[r.Name] = true
				cc.all = append(cc.all, r)
			}
		}
		cc.allQ = internResourceQuarks(cc.all)
		for k := c; k != nil; k = k.Super {
			cc.constraints = append(cc.constraints, k.Constraints...)
		}
		cc.constraintsQ = internResourceQuarks(cc.constraints)
		c.cache = cc
	})
	return c.cache
}

func internResourceQuarks(rs []Resource) []resourceQuarks {
	if len(rs) == 0 {
		return nil
	}
	out := make([]resourceQuarks, len(rs))
	for i, r := range rs {
		out[i] = resourceQuarks{
			nameQ:  StringToQuark(r.Name),
			classQ: StringToQuark(r.Class),
			typeQ:  StringToQuark(r.Type),
		}
	}
	return out
}

// nameQuark returns the interned class name.
func (c *Class) nameQuark() Quark { return c.resCache().nameQ }

// IsSubclassOf reports whether c is cls or a subclass of it.
func (c *Class) IsSubclassOf(cls *Class) bool {
	for k := c; k != nil; k = k.Super {
		if k == cls {
			return true
		}
	}
	return false
}

// chain returns the memoized class chain root-first (Core ... c).
// Callers must not mutate the returned slice.
func (c *Class) chain() []*Class { return c.resCache().chain }

// AllResources returns the full resource list in class-chain order
// (Core resources first), the order XtGetResourceList reports. The
// slice is memoized and shared — callers must not mutate it.
func (c *Class) AllResources() []Resource { return c.resCache().all }

// AllConstraints returns the constraint resources this class (and its
// superclasses) declares for its children, memoized like
// AllResources. The slice is shared — callers must not mutate it.
func (c *Class) AllConstraints() []Resource { return c.resCache().constraints }

// actionFor resolves an action name against the class chain (sub-most
// class wins), returning nil when undefined.
func (c *Class) actionFor(name string) ActionProc {
	for k := c; k != nil; k = k.Super {
		if k.Actions != nil {
			if a, ok := k.Actions[name]; ok {
				return a
			}
		}
	}
	return nil
}

// CoreClass is the root class. Its resource list deliberately follows
// the X11R5 ordering so getResourceList output starts, as printed in
// the paper, with "destroyCallback ancestorSensitive x y width height
// borderWidth sensitive screen depth colormap background ...".
var CoreClass = &Class{
	Name: "Core",
	Resources: []Resource{
		{"destroyCallback", "Callback", TCallback, ""},
		{"ancestorSensitive", "Sensitive", TBoolean, "True"},
		{"x", "Position", TPosition, "0"},
		{"y", "Position", TPosition, "0"},
		{"width", "Width", TDimension, "0"},
		{"height", "Height", TDimension, "0"},
		{"borderWidth", "BorderWidth", TDimension, "1"},
		{"sensitive", "Sensitive", TBoolean, "True"},
		{"screen", "Screen", TScreen, ""},
		{"depth", "Depth", TInt, "24"},
		{"colormap", "Colormap", TColormap, ""},
		{"background", "Background", TPixel, "XtDefaultBackground"},
		{"backgroundPixmap", "Pixmap", TPixmap, ""},
		{"borderColor", "BorderColor", TPixel, "XtDefaultForeground"},
		{"borderPixmap", "Pixmap", TPixmap, ""},
		{"mappedWhenManaged", "MappedWhenManaged", TBoolean, "True"},
		{"translations", "Translations", TTranslations, ""},
		{"accelerators", "Accelerators", TAccelerators, ""},
	},
}

// CompositeClass manages children.
var CompositeClass = &Class{
	Name:      "Composite",
	Super:     CoreClass,
	Composite: true,
}

// ConstraintClass adds per-child constraint resources.
var ConstraintClass = &Class{
	Name:      "Constraint",
	Super:     CompositeClass,
	Composite: true,
}

// ShellClass is the base for all shells.
var ShellClass = &Class{
	Name:      "Shell",
	Super:     CompositeClass,
	Composite: true,
	Shell:     true,
	Resources: []Resource{
		{"allowShellResize", "AllowShellResize", TBoolean, "True"},
		{"overrideRedirect", "OverrideRedirect", TBoolean, "False"},
		{"saveUnder", "SaveUnder", TBoolean, "False"},
		{"geometry", "Geometry", TString, ""},
	},
}

// WMShellClass adds window-manager interaction resources.
var WMShellClass = &Class{
	Name:  "WMShell",
	Super: ShellClass,
	Shell: true, Composite: true,
	Resources: []Resource{
		{"title", "Title", TString, ""},
		{"iconName", "IconName", TString, ""},
		{"minWidth", "MinWidth", TDimension, "0"},
		{"minHeight", "MinHeight", TDimension, "0"},
	},
}

// TopLevelShellClass is the class of topLevel and additional
// application shells.
var TopLevelShellClass = &Class{
	Name:  "TopLevelShell",
	Super: WMShellClass,
	Shell: true, Composite: true,
	Resources: []Resource{
		{"iconic", "Iconic", TBoolean, "False"},
	},
}

// ApplicationShellClass is the class of the automatically created
// topLevel widget.
var ApplicationShellClass = &Class{
	Name:  "ApplicationShell",
	Super: TopLevelShellClass,
	Shell: true, Composite: true,
}

// TransientShellClass is used for dialogs.
var TransientShellClass = &Class{
	Name:  "TransientShell",
	Super: WMShellClass,
	Shell: true, Composite: true,
	Resources: []Resource{
		{"transientFor", "TransientFor", TWidget, ""},
	},
}

// OverrideShellClass is used for menus (no WM interaction).
var OverrideShellClass = &Class{
	Name:  "OverrideShell",
	Super: ShellClass,
	Shell: true, Composite: true,
}

func init() {
	shellInit := func(w *Widget) {
		// Shells default to border 0 and start unmanaged (popped up or
		// realized explicitly).
		if !w.explicit["borderWidth"] {
			w.setResource("borderWidth", 0)
		}
	}
	for _, c := range []*Class{ShellClass, WMShellClass, TopLevelShellClass, ApplicationShellClass, TransientShellClass, OverrideShellClass} {
		c.Initialize = shellInit
		c.PreferredSize = shellPreferredSize
		c.ChangeManaged = shellLayout
		c.Resize = shellResize
	}
}

func shellPreferredSize(w *Widget) (int, int) {
	if len(w.managedChildren()) == 0 {
		return maxInt(w.Int("width"), 1), maxInt(w.Int("height"), 1)
	}
	c := w.managedChildren()[0]
	cw, ch := c.preferredSize()
	return cw + 2*c.Int("borderWidth"), ch + 2*c.Int("borderWidth")
}

// shellLayout sizes the shell to its (single) managed child, or the
// child to the shell when the shell has an explicit size.
func shellLayout(w *Widget) {
	kids := w.managedChildren()
	if len(kids) == 0 {
		return
	}
	c := kids[0]
	cw, ch := c.preferredSize()
	if w.Bool("allowShellResize") || w.Int("width") == 0 || w.Int("height") == 0 {
		w.setGeometry(w.Int("x"), w.Int("y"), cw+2*c.Int("borderWidth"), ch+2*c.Int("borderWidth"))
	}
	c.setGeometry(0, 0, maxInt(w.Int("width")-2*c.Int("borderWidth"), 1), maxInt(w.Int("height")-2*c.Int("borderWidth"), 1))
}

func shellResize(w *Widget) {
	kids := w.managedChildren()
	if len(kids) == 0 {
		return
	}
	c := kids[0]
	c.setGeometry(0, 0, maxInt(w.Int("width")-2*c.Int("borderWidth"), 1), maxInt(w.Int("height")-2*c.Int("borderWidth"), 1))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
