package xt

import (
	"fmt"
	"strings"

	"wafe/internal/xproto"
)

// Widget is a widget instance. All state lives in the typed resource
// table; geometry accessors read the core geometry resources.
type Widget struct {
	Name   string
	Class  *Class
	Parent *Widget

	app      *App
	display  *xproto.Display
	window   xproto.WindowID
	children []*Widget

	managed        bool
	realized       bool
	beingDestroyed bool

	// resources holds converted values keyed by resource name;
	// spec maps resource name → its declaration (class chain plus
	// parent constraints).
	resources map[string]*any
	spec      map[string]*Resource
	// explicit records resources set by args or setValues (they
	// override later Xrm merges).
	explicit map[string]bool

	// pathQN/pathQC are the interned name/class paths from the
	// application down ("wafe", "form", "label1"), computed once at
	// creation — children extend their parent's slices. slist is the
	// cached Xrm search list for that path; it carries the database
	// generation it was built at and SearchResource revalidates it on
	// every use, so mergeResources invalidates it implicitly.
	pathQN, pathQC []Quark
	slist          *SearchList

	// Popup state.
	poppedUp bool
	grabKind GrabKind

	// clip, while hasClip, is the damage rect the current partial
	// redraw is limited to; Redisplay procs consult it through
	// Clip/ClipIntersects to skip draws outside the damaged area.
	clip    xproto.Rect
	hasClip bool

	// Private per-class state (widget implementations stash scroll
	// offsets, edit buffers etc. here).
	Private any
}

// App returns the owning application context.
func (w *Widget) App() *App { return w.app }

// Display returns the widget's display.
func (w *Widget) Display() *xproto.Display { return w.display }

// Window returns the widget's window id (0 before realization).
func (w *Widget) Window() xproto.WindowID { return w.window }

// Children returns the widget's children (composite widgets).
func (w *Widget) Children() []*Widget { return append([]*Widget(nil), w.children...) }

// IsRealized reports whether the widget has a window.
func (w *Widget) IsRealized() bool { return w.realized }

// IsManaged reports whether the widget is managed by its parent.
func (w *Widget) IsManaged() bool { return w.managed }

// IsPoppedUp reports whether a popup shell is currently up.
func (w *Widget) IsPoppedUp() bool { return w.poppedUp }

// CreateWidget creates a widget instance (XtCreateWidget /
// XtCreateManagedWidget when managed is true). args are resource
// name→string value pairs applied at creation time with the highest
// precedence, exactly as the paper's widget-creation commands pass
// attribute-value pairs.
func (app *App) CreateWidget(name string, class *Class, parent *Widget, args map[string]string, managed bool) (*Widget, error) {
	if name == "" {
		return nil, fmt.Errorf("xt: widget name must not be empty")
	}
	if _, exists := app.widgets[name]; exists {
		return nil, fmt.Errorf("xt: widget %q already exists", name)
	}
	if parent == nil && !class.Shell {
		return nil, fmt.Errorf("xt: non-shell widget %q needs a parent", name)
	}
	if parent != nil && !parent.Class.Composite {
		return nil, fmt.Errorf("xt: parent %q (%s) is not a composite widget", parent.Name, parent.Class.Name)
	}
	w := &Widget{
		Name:      name,
		Class:     class,
		Parent:    parent,
		app:       app,
		resources: make(map[string]*any),
		spec:      make(map[string]*Resource),
		explicit:  make(map[string]bool),
	}
	if parent != nil {
		w.display = parent.display
	} else {
		w.display = app.display
	}
	// The quarked naming path extends the parent's cached path; the
	// search list for it is computed once (usually a cache hit inside
	// the database) and then serves every resource below.
	if parent != nil {
		w.pathQN = append(parent.pathQN[:len(parent.pathQN):len(parent.pathQN)], StringToQuark(name))
		w.pathQC = append(parent.pathQC[:len(parent.pathQC):len(parent.pathQC)], class.nameQuark())
	} else {
		w.pathQN = []Quark{StringToQuark(app.Name), StringToQuark(name)}
		w.pathQC = []Quark{StringToQuark(app.ClassName), class.nameQuark()}
	}
	w.slist = app.DB.SearchListFor(w.pathQN, w.pathQC)
	// Merge resource specs: class chain, then parent constraint
	// resources. ordered keeps declaration order, which conversion
	// below relies on (e.g. fontList must convert before labelString).
	// Duplicate declarations keep the first position but resolve
	// through the last (sub-most constraint chain) declaration.
	type initEntry struct {
		r *Resource
		q resourceQuarks
	}
	crs := class.AllResources()
	crq := class.resCache().allQ
	var ccs []Resource
	var ccq []resourceQuarks
	if parent != nil {
		pc := parent.Class.resCache()
		ccs, ccq = pc.constraints, pc.constraintsQ
	}
	ordered := make([]initEntry, 0, len(crs)+len(ccs))
	for i := range crs {
		r := &crs[i]
		w.spec[r.Name] = r
		ordered = append(ordered, initEntry{r, crq[i]})
	}
	for i := range ccs {
		r := &ccs[i]
		if _, dup := w.spec[r.Name]; !dup {
			ordered = append(ordered, initEntry{r, ccq[i]})
		} else {
			for j := range ordered {
				if ordered[j].r.Name == r.Name {
					ordered[j] = initEntry{r, ccq[i]}
					break
				}
			}
		}
		w.spec[r.Name] = r
	}
	// Initialize every declared resource: args > Xrm database > default.
	for i := range ordered {
		r := ordered[i].r
		src, fromArgs := args[r.Name]
		if !fromArgs {
			if v, ok := app.DB.SearchResource(w.slist, ordered[i].q.nameQ, ordered[i].q.classQ); ok {
				src = v
			} else {
				src = r.Default
			}
		}
		var val any
		if src == "" && r.Type != TString {
			val = zeroFor(r.Type)
		} else {
			v, err := app.ConvertQ(w, ordered[i].q.typeQ, r.Type, src)
			if err != nil {
				return nil, fmt.Errorf("xt: widget %q resource %q: %v", name, r.Name, err)
			}
			val = v
		}
		w.resources[r.Name] = &val
		if fromArgs {
			w.explicit[r.Name] = true
		}
	}
	// Unknown creation args are an error — they indicate a typo in the
	// Wafe script.
	for aname := range args {
		if _, ok := w.spec[aname]; !ok {
			return nil, fmt.Errorf("xt: widget class %s has no resource %q", class.Name, aname)
		}
	}
	// Default translations.
	if tt := w.translations(); tt == nil && class.DefaultTranslations != "" {
		parsed, err := ParseTranslations(defaultTranslationsFor(class))
		if err != nil {
			return nil, fmt.Errorf("xt: class %s default translations: %v", class.Name, err)
		}
		w.setResource("translations", parsed)
	}
	if parent != nil {
		parent.children = append(parent.children, w)
	}
	app.widgets[name] = w
	app.liveWidgets++
	// Initialize methods run super-to-sub.
	for _, k := range class.chain() {
		if k.Initialize != nil {
			k.Initialize(w)
		}
	}
	if managed && parent != nil {
		w.Manage()
	}
	return w, nil
}

func defaultTranslationsFor(c *Class) string {
	for k := c; k != nil; k = k.Super {
		if k.DefaultTranslations != "" {
			return k.DefaultTranslations
		}
	}
	return ""
}

func zeroFor(typeName string) any {
	switch typeName {
	case TString, TCursor, TScreen, TColormap, TJustify, TOrientation, TShapeStyle:
		return ""
	case TInt, TDimension, TPosition, TCardinal:
		return 0
	case TBoolean:
		return false
	case TFloat:
		return 0.0
	case TPixel:
		return xproto.Pixel{}
	case TFont:
		return xproto.LoadFont("fixed")
	case TCallback:
		return CallbackList(nil)
	case TTranslations, TAccelerators:
		return (*Translations)(nil)
	case TPixmap, TBitmap:
		return (*xproto.Pixmap)(nil)
	case TWidget:
		return (*Widget)(nil)
	case TStringList:
		return []string{}
	default:
		return ""
	}
}

// SetDisplay rebinds an unrealized shell to another display — the
// multi-display path ("applicationShell top2 dec4:0" maps its children
// to the specified display).
func (w *Widget) SetDisplay(d *xproto.Display) error {
	if w.realized {
		return fmt.Errorf("xt: cannot move realized widget %q to another display", w.Name)
	}
	if !w.Class.Shell {
		return fmt.Errorf("xt: only shells can select a display (widget %q)", w.Name)
	}
	w.display = d
	var move func(x *Widget)
	move = func(x *Widget) {
		x.display = d
		for _, c := range x.children {
			move(c)
		}
	}
	move(w)
	return nil
}

// pathNames returns the widget naming path from the application down
// ("wafe", "form", "label1"), used by Xrm matching.
func (w *Widget) pathNames() []string {
	var rev []string
	for x := w; x != nil; x = x.Parent {
		rev = append(rev, x.Name)
	}
	out := []string{w.app.Name}
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// pathClasses is the parallel class-name path.
func (w *Widget) pathClasses() []string {
	var rev []string
	for x := w; x != nil; x = x.Parent {
		rev = append(rev, x.Class.Name)
	}
	out := []string{w.app.ClassName}
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// --- typed accessors ------------------------------------------------------

// Get returns the raw typed value of a resource.
func (w *Widget) Get(name string) (any, bool) {
	p, ok := w.resources[name]
	if !ok {
		return nil, false
	}
	return *p, true
}

func (w *Widget) setResource(name string, v any) {
	if p, ok := w.resources[name]; ok {
		*p = v
		return
	}
	val := v
	w.resources[name] = &val
}

// Int returns an integer resource (0 when absent).
func (w *Widget) Int(name string) int {
	if v, ok := w.Get(name); ok {
		if n, ok := v.(int); ok {
			return n
		}
	}
	return 0
}

// Bool returns a boolean resource.
func (w *Widget) Bool(name string) bool {
	if v, ok := w.Get(name); ok {
		if b, ok := v.(bool); ok {
			return b
		}
	}
	return false
}

// Str returns a string resource.
func (w *Widget) Str(name string) string {
	if v, ok := w.Get(name); ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return ""
}

// PixelRes returns a colour resource.
func (w *Widget) PixelRes(name string) xproto.Pixel {
	if v, ok := w.Get(name); ok {
		if p, ok := v.(xproto.Pixel); ok {
			return p
		}
	}
	return xproto.Pixel{}
}

// FontRes returns a font resource (never nil).
func (w *Widget) FontRes(name string) *xproto.Font {
	if v, ok := w.Get(name); ok {
		if f, ok := v.(*xproto.Font); ok && f != nil {
			return f
		}
	}
	return xproto.LoadFont("fixed")
}

// StringList returns a string-list resource.
func (w *Widget) StringList(name string) []string {
	if v, ok := w.Get(name); ok {
		if l, ok := v.([]string); ok {
			return l
		}
	}
	return nil
}

func (w *Widget) translations() *Translations {
	if v, ok := w.Get("translations"); ok {
		if tt, ok := v.(*Translations); ok {
			return tt
		}
	}
	return nil
}

// Explicit reports whether the resource was set explicitly (creation
// args or SetValues) rather than defaulted.
func (w *Widget) Explicit(name string) bool { return w.explicit[name] }

// SetResourceValue stores a typed resource value directly, bypassing
// conversion — for widget-class implementations updating their own
// state (Toggle's "state", Scrollbar's thumb, ...).
func (w *Widget) SetResourceValue(name string, v any) { w.setResource(name, v) }

// RequestResize asks the parent to give the widget a new preferred
// size (XtMakeResizeRequest): the geometry is updated and the parent
// relaid out.
func (w *Widget) RequestResize(width, height int) {
	w.setResource("width", maxInt(width, 1))
	w.setResource("height", maxInt(height, 1))
	w.applyGeometry()
	if w.Parent != nil {
		w.Parent.relayout()
	}
}

// IsSensitive reports whether the widget and all ancestors are
// sensitive; insensitive widgets receive no input events.
func (w *Widget) IsSensitive() bool {
	for x := w; x != nil; x = x.Parent {
		if !x.Bool("sensitive") {
			return false
		}
	}
	return true
}

// --- SetValues / GetValue --------------------------------------------------

// SetValues applies resource string values (the sV command). Values are
// converted, stored, the class SetValues methods run, and geometry or
// redisplay updates follow, as XtSetValues specifies.
func (w *Widget) SetValues(args map[string]string) error {
	changed := make(map[string]bool, len(args))
	geomChanged := false
	for name, src := range args {
		r, ok := w.spec[name]
		if !ok {
			return fmt.Errorf("xt: widget %q (class %s) has no resource %q", w.Name, w.Class.Name, name)
		}
		v, err := w.app.Convert(w, r.Type, src)
		if err != nil {
			return fmt.Errorf("xt: widget %q resource %q: %v", w.Name, name, err)
		}
		w.explicit[name] = true
		// As in XtSetValues, setting a resource to its current value
		// does not count as a change: the class set_values procedures
		// report "no redisplay needed" and the widget is left alone.
		// Only plain comparable values can be checked; anything else
		// (callback lists, pixmaps) conservatively counts as changed.
		if old, ok := w.Get(name); ok && scalarResourceEqual(old, v) {
			continue
		}
		w.setResource(name, v)
		changed[name] = true
		switch name {
		case "x", "y", "width", "height", "borderWidth":
			geomChanged = true
		}
	}
	if len(changed) == 0 {
		return nil
	}
	for _, k := range w.Class.chain() {
		if k.SetValues != nil {
			k.SetValues(w, changed)
		}
	}
	if geomChanged {
		w.applyGeometry()
		if w.Parent != nil {
			w.Parent.relayout()
		}
	}
	if changed["translations"] {
		w.updateInputMask()
	}
	if w.realized {
		w.Redraw()
	}
	return nil
}

// scalarResourceEqual reports whether two converted resource values
// are the same plain scalar. Non-scalar values (callback lists,
// pixmaps, fonts) never compare equal, so SetValues treats them as
// changed, as before.
func scalarResourceEqual(a, b any) bool {
	switch av := a.(type) {
	case string:
		bv, ok := b.(string)
		return ok && av == bv
	case int:
		bv, ok := b.(int)
		return ok && av == bv
	case bool:
		bv, ok := b.(bool)
		return ok && av == bv
	case float64:
		bv, ok := b.(float64)
		return ok && av == bv
	case xproto.Pixel:
		bv, ok := b.(xproto.Pixel)
		return ok && av == bv
	}
	return false
}

// GetValue returns a resource value formatted as a string (the gV
// command; Wafe supports the reverse direction even for callbacks).
func (w *Widget) GetValue(name string) (string, error) {
	r, ok := w.spec[name]
	if !ok {
		return "", fmt.Errorf("xt: widget %q (class %s) has no resource %q", w.Name, w.Class.Name, name)
	}
	v, _ := w.Get(name)
	if v == nil {
		return "", nil
	}
	return w.app.Format(r.Type, v), nil
}

// HasResource reports whether the widget declares the resource.
func (w *Widget) HasResource(name string) bool {
	_, ok := w.spec[name]
	return ok
}

// ResourceNames returns the declared resource names in class order.
func (w *Widget) ResourceNames() []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range w.Class.AllResources() {
		out = append(out, r.Name)
		seen[r.Name] = true
	}
	// Constraint resources follow, in declaration order.
	if w.Parent != nil {
		for k := w.Parent.Class; k != nil; k = k.Super {
			for _, r := range k.Constraints {
				if !seen[r.Name] {
					out = append(out, r.Name)
					seen[r.Name] = true
				}
			}
		}
	}
	return out
}

// --- geometry ---------------------------------------------------------------

func (w *Widget) preferredSize() (int, int) {
	if w.explicit["width"] && w.explicit["height"] {
		return maxInt(w.Int("width"), 1), maxInt(w.Int("height"), 1)
	}
	for k := w.Class; k != nil; k = k.Super {
		if k.PreferredSize != nil {
			pw, ph := k.PreferredSize(w)
			if w.explicit["width"] {
				pw = w.Int("width")
			}
			if w.explicit["height"] {
				ph = w.Int("height")
			}
			return maxInt(pw, 1), maxInt(ph, 1)
		}
	}
	return maxInt(w.Int("width"), 1), maxInt(w.Int("height"), 1)
}

// setGeometry updates the core geometry resources and the server
// window, then lets the class react. Like XtConfigureWidget it
// returns immediately when the new geometry equals the old, without
// reconfiguring the window or invoking the class resize procedure.
func (w *Widget) setGeometry(x, y, width, height int) {
	width, height = maxInt(width, 1), maxInt(height, 1)
	if w.Int("x") == x && w.Int("y") == y && w.Int("width") == width && w.Int("height") == height {
		return
	}
	w.setResource("x", x)
	w.setResource("y", y)
	w.setResource("width", width)
	w.setResource("height", height)
	w.applyGeometry()
}

func (w *Widget) applyGeometry() {
	if w.realized {
		w.display.ConfigureWindow(w.window, w.Int("x"), w.Int("y"), w.Int("width"), w.Int("height"))
	}
	for k := w.Class; k != nil; k = k.Super {
		if k.Resize != nil {
			k.Resize(w)
			break
		}
	}
}

// relayout invokes the composite layout method.
func (w *Widget) relayout() {
	for k := w.Class; k != nil; k = k.Super {
		if k.ChangeManaged != nil {
			k.ChangeManaged(w)
			return
		}
	}
}

// ManagedChildren returns the managed, non-shell children — the set a
// composite lays out.
func (w *Widget) ManagedChildren() []*Widget { return w.managedChildren() }

// PreferredSize returns the widget's desired size (query-geometry).
func (w *Widget) PreferredSize() (int, int) { return w.preferredSize() }

// SetChildGeometry is used by composite layout code to position a
// child (the geometry-manager grant path).
func (w *Widget) SetChildGeometry(x, y, width, height int) {
	w.setGeometry(x, y, width, height)
}

func (w *Widget) managedChildren() []*Widget {
	var out []*Widget
	for _, c := range w.children {
		if c.managed && !c.Class.Shell {
			out = append(out, c)
		}
	}
	return out
}

// Manage adds the widget to its parent's managed set (XtManageChild).
// Managing a child of an already-realized parent realizes the child
// immediately, as Xt does.
func (w *Widget) Manage() {
	if w.managed || w.Parent == nil {
		return
	}
	w.managed = true
	w.Parent.relayout()
	if !w.realized && w.Parent.realized && !w.Class.Shell {
		w.realizeTree()
	}
	if w.realized && w.Bool("mappedWhenManaged") {
		w.display.MapWindow(w.window)
	}
}

// Unmanage removes the widget from layout (XtUnmanageChild).
func (w *Widget) Unmanage() {
	if !w.managed {
		return
	}
	w.managed = false
	if w.realized {
		w.display.UnmapWindow(w.window)
	}
	if w.Parent != nil {
		w.Parent.relayout()
	}
}

// Realize creates windows for the widget and its descendants
// (XtRealizeWidget). Layout runs first so windows are created with
// final geometry.
func (w *Widget) Realize() {
	if w.realized {
		return
	}
	w.relayout()
	w.realizeTree()
	if w.Class.Shell && !w.poppedUp {
		// Top-level shells map on realize; popup shells wait for Popup.
		if w.Class.IsSubclassOf(TopLevelShellClass) || w.Class == ApplicationShellClass {
			w.display.MapWindow(w.window)
		}
	}
}

func (w *Widget) realizeTree() {
	if !w.realized {
		parentWin := w.display.Root
		if w.Parent != nil && !w.Class.Shell {
			if !w.Parent.realized {
				w.Parent.realizeTree()
			}
			parentWin = w.Parent.window
		}
		win, err := w.display.CreateWindow(parentWin, w.Int("x"), w.Int("y"), w.Int("width"), w.Int("height"), w.Int("borderWidth"))
		if err != nil {
			panic(fmt.Sprintf("xt: realize %s: %v", w.Name, err))
		}
		w.window = win
		w.realized = true
		w.app.byWindow[windowKey{w.display, win}] = w
		w.display.SetWindowBackground(win, w.PixelRes("background"))
		w.updateInputMask()
		// Class Realize methods (sub-most wins).
		for k := w.Class; k != nil; k = k.Super {
			if k.Realize != nil {
				k.Realize(w)
				break
			}
		}
	}
	for _, c := range w.children {
		if c.Class.Shell {
			continue // popup children realize on Popup
		}
		c.realizeTree()
		if c.managed && c.Bool("mappedWhenManaged") {
			w.display.MapWindow(c.window)
		}
	}
}

// UpdateInputMask re-derives the window event mask after the
// translation table changed through SetResourceValue.
func (w *Widget) UpdateInputMask() { w.updateInputMask() }

// updateInputMask derives the window event mask from the translation
// table plus the structural events Xt always needs.
func (w *Widget) updateInputMask() {
	if !w.realized {
		return
	}
	mask := xproto.ExposureMask | xproto.StructureNotifyMask
	if tt := w.translations(); tt != nil {
		mask |= tt.EventMask()
	}
	w.display.SelectInput(w.window, mask)
}

// Redraw clears and repaints the whole widget via its class Redisplay.
func (w *Widget) Redraw() {
	if !w.realized {
		return
	}
	if m := w.app.obs.Load(); m != nil {
		m.RedrawFull.Inc()
	}
	w.hasClip = false
	w.display.ClearWindow(w.window)
	w.redisplay()
}

// redisplay runs the first Redisplay proc on the class chain.
func (w *Widget) redisplay() {
	for k := w.Class; k != nil; k = k.Super {
		if k.Redisplay != nil {
			k.Redisplay(w)
			return
		}
	}
}

// Clip returns the rectangle the current redraw is limited to: the
// damage rect during a clipped partial redraw, the full window rect
// otherwise. Redisplay procs bound their background fill by it and
// skip primitives entirely outside it.
func (w *Widget) Clip() xproto.Rect {
	if w.hasClip {
		return w.clip
	}
	return xproto.Rect{W: w.Int("width"), H: w.Int("height")}
}

// ClipIntersects reports whether the rect touches the active clip
// region (always true outside a clipped redraw).
func (w *Widget) ClipIntersects(x, y, wd, h int) bool {
	if !w.hasClip {
		return true
	}
	return w.clip.Intersects(xproto.Rect{X: x, Y: y, W: wd, H: h})
}

// RedrawRect repaints only the given rectangle of the widget: the area
// is cleared, the clip set, and the class Redisplay runs consulting
// the clip. Rects covering the whole widget — and every rect while the
// app is in full-repaint oracle mode — fall back to Redraw.
func (w *Widget) RedrawRect(r xproto.Rect) {
	if !w.realized {
		return
	}
	full := xproto.Rect{W: w.Int("width"), H: w.Int("height")}
	r = r.Intersect(full)
	if r.Empty() {
		return
	}
	if w.app.fullRepaint || r.Contains(full) {
		w.Redraw()
		return
	}
	if m := w.app.obs.Load(); m != nil {
		m.RedrawClipped.Inc()
	}
	w.clip, w.hasClip = r, true
	w.display.ClearArea(w.window, r.X, r.Y, r.W, r.H)
	w.redisplay()
	w.hasClip = false
}

// Damage marks a rectangle of the widget dirty (a zero-sized rect
// means the whole widget): the rect enters the display's per-window
// damage region and comes back as a coalesced Expose on the next event
// read, which triggers the clipped redraw.
func (w *Widget) Damage(r xproto.Rect) {
	if !w.realized {
		return
	}
	if r.Empty() || w.app.fullRepaint {
		r = xproto.Rect{W: w.Int("width"), H: w.Int("height")}
	}
	w.display.DamageRect(w.window, r.X, r.Y, r.W, r.H)
}

// redrawExpose services one Expose event, using its damage rect for a
// clipped partial redraw (full repaint when the rect is empty — an
// event synthesized without geometry).
func (w *Widget) redrawExpose(ev *xproto.Event) {
	r := xproto.Rect{X: ev.X, Y: ev.Y, W: ev.Width, H: ev.Height}
	if r.Empty() {
		w.Redraw()
		return
	}
	w.RedrawRect(r)
}

// Destroy destroys the widget subtree (XtDestroyWidget), invoking
// destroyCallback lists, class destructors sub-to-super, and freeing
// all associated resources — the paper's "memory management" unit.
func (w *Widget) Destroy() {
	if w.beingDestroyed {
		return
	}
	w.beingDestroyed = true
	w.CallCallbacks("destroyCallback", nil)
	for _, c := range append([]*Widget(nil), w.children...) {
		c.Destroy()
	}
	for k := w.Class; k != nil; k = k.Super {
		if k.Destroy != nil {
			k.Destroy(w)
		}
	}
	if w.realized {
		delete(w.app.byWindow, windowKey{w.display, w.window})
		w.display.DestroyWindow(w.window)
	}
	if w.Parent != nil {
		for i, c := range w.Parent.children {
			if c == w {
				w.Parent.children = append(w.Parent.children[:i], w.Parent.children[i+1:]...)
				break
			}
		}
		if w.managed {
			w.managed = false
			w.Parent.relayout()
		}
	}
	delete(w.app.widgets, w.Name)
	w.app.liveWidgets--
	// Drop resource storage so late references fail loudly.
	w.resources = map[string]*any{}
	w.spec = map[string]*Resource{}
}

// PathString returns the dotted widget path (for diagnostics).
func (w *Widget) PathString() string {
	return strings.Join(w.pathNames(), ".")
}
