package xt

import "sync"

// Quark is an interned symbol for one resource-specification component
// — a widget name, class name, resource name or resource class
// (XrmQuark). Interning turns every comparison on the resource-lookup
// hot path into a small-int equality and every database level into a
// map keyed by int instead of string.
type Quark int32

// NullQuark is the reserved zero quark (XrmStringToQuark("") in spirit:
// no valid component interns to it).
const NullQuark Quark = 0

// quarkTab is the process-wide intern table, as Xlib's quark table is.
// A single table lets the package-global widget classes intern their
// resource lists once and share them across every App. Reads take the
// shared lock only; interning a new string is the rare path.
var quarkTab = struct {
	mu    sync.RWMutex
	m     map[string]Quark
	names []string
}{
	m:     map[string]Quark{},
	names: []string{""}, // index 0 is NullQuark
}

// StringToQuark interns s and returns its quark (XrmStringToQuark).
// Equal strings always return the same quark; quarks are never
// released.
func StringToQuark(s string) Quark {
	quarkTab.mu.RLock()
	q, ok := quarkTab.m[s]
	quarkTab.mu.RUnlock()
	if ok {
		return q
	}
	quarkTab.mu.Lock()
	defer quarkTab.mu.Unlock()
	if q, ok := quarkTab.m[s]; ok {
		return q
	}
	q = Quark(len(quarkTab.names))
	quarkTab.names = append(quarkTab.names, s)
	quarkTab.m[s] = q
	return q
}

// QuarkToString returns the string a quark was interned from
// (XrmQuarkToString), or "" for NullQuark and unknown quarks.
func QuarkToString(q Quark) string {
	quarkTab.mu.RLock()
	defer quarkTab.mu.RUnlock()
	if q <= 0 || int(q) >= len(quarkTab.names) {
		return ""
	}
	return quarkTab.names[q]
}

// quarkQuestion is the interned '?' wildcard component.
var quarkQuestion = StringToQuark("?")
