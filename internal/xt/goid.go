package xt

import (
	"bytes"
	"runtime"
	"strconv"
)

// goid returns the current goroutine's id, parsed from the runtime
// stack header ("goroutine N [status]:"). The parse costs a few
// microseconds, so callers keep it off hot paths — Post only consults
// it once its queue is already full.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := bytes.TrimPrefix(buf[:n], []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i >= 0 {
		s = s[:i]
	}
	id, _ := strconv.ParseInt(string(s), 10, 64) //wafevet:ignore checkscan (stack header is machine-generated; 0 on mismatch is fine)
	return id
}
