package xt

import (
	"strings"
	"testing"
	"time"

	"wafe/internal/xproto"
)

// testLabelClass is a minimal Label-like class for xt-level tests
// (the real Athena classes live in internal/xaw).
var testLabelClass = &Class{
	Name:  "TLabel",
	Super: CoreClass,
	Resources: []Resource{
		{Name: "label", Class: "Label", Type: TString, Default: "default-label"},
		{Name: "foreground", Class: "Foreground", Type: TPixel, Default: "XtDefaultForeground"},
		{Name: "font", Class: "Font", Type: TFont, Default: "fixed"},
	},
	PreferredSize: func(w *Widget) (int, int) {
		f := w.FontRes("font")
		return f.TextWidth(w.Str("label")) + 8, f.Height() + 4
	},
	Redisplay: func(w *Widget) {
		d := w.Display()
		gc := d.NewGC()
		gc.Foreground = w.PixelRes("foreground")
		d.DrawString(w.Window(), gc, 4, 13, w.Str("label"))
	},
}

var testButtonClass = &Class{
	Name:  "TButton",
	Super: testLabelClass,
	Resources: []Resource{
		{Name: "callback", Class: "Callback", Type: TCallback, Default: ""},
	},
	DefaultTranslations: `<Btn1Down>: notify()`,
	Actions: map[string]ActionProc{
		"notify": func(w *Widget, _ *xproto.Event, _ []string) {
			w.CallCallbacks("callback", nil)
		},
	},
}

var testBoxClass = &Class{
	Name:      "TBox",
	Super:     CompositeClass,
	Composite: true,
	ChangeManaged: func(w *Widget) {
		y := 0
		maxW := 1
		for _, c := range w.ManagedChildren() {
			cw, ch := c.PreferredSize()
			c.SetChildGeometry(0, y, cw, ch)
			y += ch + 2*c.Int("borderWidth")
			if cw > maxW {
				maxW = cw
			}
		}
		w.RequestResize(maxW, maxInt(y, 1))
	},
	PreferredSize: func(w *Widget) (int, int) {
		maxW, y := 1, 0
		for _, c := range w.ManagedChildren() {
			cw, ch := c.PreferredSize()
			y += ch + 2*c.Int("borderWidth")
			if cw > maxW {
				maxW = cw
			}
		}
		return maxW, maxInt(y, 1)
	},
}

func newShell(t *testing.T, app *App) *Widget {
	t.Helper()
	top, err := app.CreateWidget("topLevel", ApplicationShellClass, nil, nil, false)
	if err != nil {
		t.Fatalf("create shell: %v", err)
	}
	return top
}

func TestCreateWidgetDefaultsAndArgs(t *testing.T) {
	app := NewTestApp("wafe")
	top := newShell(t, app)
	w, err := app.CreateWidget("l1", testLabelClass, top, map[string]string{"label": "hello"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if w.Str("label") != "hello" {
		t.Errorf("label = %q", w.Str("label"))
	}
	// Default applies when no arg given.
	w2, err := app.CreateWidget("l2", testLabelClass, top, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Str("label") != "default-label" {
		t.Errorf("default label = %q", w2.Str("label"))
	}
	if !w.Bool("sensitive") {
		t.Error("sensitive default should be True")
	}
	if w.Int("borderWidth") != 1 {
		t.Errorf("borderWidth default = %d", w.Int("borderWidth"))
	}
}

func TestCreateWidgetErrors(t *testing.T) {
	app := NewTestApp("wafe")
	top := newShell(t, app)
	if _, err := app.CreateWidget("x", testLabelClass, top, map[string]string{"nosuch": "1"}, true); err == nil {
		t.Error("unknown resource arg must fail")
	}
	if _, err := app.CreateWidget("topLevel", testLabelClass, top, nil, true); err == nil {
		t.Error("duplicate name must fail")
	}
	if _, err := app.CreateWidget("orphan", testLabelClass, nil, nil, true); err == nil {
		t.Error("non-shell without parent must fail")
	}
	lab, _ := app.CreateWidget("leaf", testLabelClass, top, nil, true)
	if _, err := app.CreateWidget("child-of-leaf", testLabelClass, lab, nil, true); err == nil {
		t.Error("non-composite parent must fail")
	}
}

func TestXrmPrecedence(t *testing.T) {
	db := NewXrm()
	if err := db.EnterString(`
! comment line
*foreground: blue
*TLabel.foreground: green
wafe.box.l1.foreground: red
`); err != nil {
		t.Fatal(err)
	}
	names := []string{"wafe", "box", "l1"}
	classes := []string{"Wafe", "TBox", "TLabel"}
	v, ok := db.Query(names, classes, "foreground", "Foreground")
	if !ok || v != "red" {
		t.Errorf("fully-specified entry should win, got %q/%v", v, ok)
	}
	// Other instance: class entry beats wildcard.
	v, ok = db.Query([]string{"wafe", "box", "l2"}, classes, "foreground", "Foreground")
	if !ok || v != "green" {
		t.Errorf("class match should beat wildcard, got %q/%v", v, ok)
	}
	// No TLabel in path: falls to wildcard.
	v, ok = db.Query([]string{"wafe", "box", "other"}, []string{"Wafe", "TBox", "TButton2"}, "foreground", "Foreground")
	if !ok || v != "blue" {
		t.Errorf("wildcard fallback, got %q/%v", v, ok)
	}
	// Nothing matches an unrelated resource.
	if _, ok := db.Query(names, classes, "font", "Font"); ok {
		t.Error("unrelated resource must not match")
	}
}

func TestXrmReplacementAndTightVsLoose(t *testing.T) {
	db := NewXrm()
	_ = db.Enter("*label", "one")
	_ = db.Enter("*label", "two")
	if db.Len() != 1 {
		t.Errorf("duplicate spec should replace, len=%d", db.Len())
	}
	_ = db.Enter("wafe*label", "loose")
	_ = db.Enter("wafe.l.label", "tight")
	v, _ := db.Query([]string{"wafe", "l"}, []string{"Wafe", "TLabel"}, "label", "Label")
	if v != "tight" {
		t.Errorf("tight binding should win, got %q", v)
	}
}

func TestWidgetXrmIntegration(t *testing.T) {
	app := NewTestApp("wafe")
	_ = app.DB.EnterString("*label: from-db")
	top := newShell(t, app)
	w, err := app.CreateWidget("l1", testLabelClass, top, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if w.Str("label") != "from-db" {
		t.Errorf("db value not applied: %q", w.Str("label"))
	}
	// Creation args still beat the database.
	w2, _ := app.CreateWidget("l2", testLabelClass, top, map[string]string{"label": "arg"}, true)
	if w2.Str("label") != "arg" {
		t.Errorf("arg should beat db: %q", w2.Str("label"))
	}
}

func TestSetValuesGetValue(t *testing.T) {
	app := NewTestApp("wafe")
	top := newShell(t, app)
	w, _ := app.CreateWidget("l", testLabelClass, top, nil, true)
	if err := w.SetValues(map[string]string{"label": "Hi Man", "foreground": "tomato"}); err != nil {
		t.Fatal(err)
	}
	got, err := w.GetValue("label")
	if err != nil || got != "Hi Man" {
		t.Errorf("GetValue(label) = %q, %v", got, err)
	}
	fg, _ := w.GetValue("foreground")
	if fg != "#ff6347" {
		t.Errorf("foreground = %q", fg)
	}
	if err := w.SetValues(map[string]string{"nosuch": "x"}); err == nil {
		t.Error("setting unknown resource must fail")
	}
	if err := w.SetValues(map[string]string{"foreground": "notacolor"}); err == nil {
		t.Error("bad conversion must fail")
	}
	if _, err := w.GetValue("nosuch"); err == nil {
		t.Error("getting unknown resource must fail")
	}
}

func TestResourceNamesOrder(t *testing.T) {
	app := NewTestApp("wafe")
	top := newShell(t, app)
	w, _ := app.CreateWidget("l", testLabelClass, top, nil, true)
	names := w.ResourceNames()
	// The paper's getResourceList output prefix.
	wantPrefix := []string{"destroyCallback", "ancestorSensitive", "x", "y", "width", "height",
		"borderWidth", "sensitive", "screen", "depth", "colormap", "background"}
	for i, want := range wantPrefix {
		if i >= len(names) || names[i] != want {
			t.Fatalf("resource %d = %q, want %q (names=%v)", i, names[i], want, names[:12])
		}
	}
}

func TestTranslationParsing(t *testing.T) {
	tt, err := ParseTranslations(`<EnterWindow>: PopupMenu()
<Key>Return: exec(echo [gV input string])
Shift<Btn1Down>: doit(a, b)
<KeyPress>: exec(echo %k %a %s)`)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Len() != 4 {
		t.Fatalf("parsed %d entries", tt.Len())
	}
	// Bracket nesting within action params survives.
	ev := &xproto.Event{Type: xproto.KeyPress, Keysym: "Return", Rune: '\r'}
	calls := tt.Match(ev)
	if len(calls) != 1 || calls[0].Name != "exec" || calls[0].Params[0] != "echo [gV input string]" {
		t.Errorf("calls = %+v", calls)
	}
	// Wildcard key binding matches other keys.
	ev2 := &xproto.Event{Type: xproto.KeyPress, Keysym: "w", Rune: 'w'}
	calls = tt.Match(ev2)
	if len(calls) != 1 || calls[0].Params[0] != "echo %k %a %s" {
		t.Errorf("wildcard key match = %+v", calls)
	}
	// Modifier matching.
	press := &xproto.Event{Type: xproto.ButtonPress, Button: 1}
	if got := tt.Match(press); got != nil {
		t.Errorf("unshifted press should not match Shift<Btn1Down>, got %+v", got)
	}
	press.State = xproto.ShiftMask
	got := tt.Match(press)
	if len(got) != 1 || got[0].Name != "doit" || len(got[0].Params) != 2 || got[0].Params[1] != "b" {
		t.Errorf("shifted press = %+v", got)
	}
	// Enter binding.
	if got := tt.Match(&xproto.Event{Type: xproto.EnterNotify}); len(got) != 1 || got[0].Name != "PopupMenu" {
		t.Errorf("enter = %+v", got)
	}
}

func TestTranslationErrors(t *testing.T) {
	for _, bad := range []string{
		"nonsense",
		"<NoSuchEvent>: foo()",
		"<Key>Return foo()", // missing colon
		"<EnterWindow>:",    // no actions
		"Badmod<Key>: f()",
	} {
		if _, err := ParseTranslations(bad); err == nil {
			t.Errorf("ParseTranslations(%q) should fail", bad)
		}
	}
}

func TestTranslationMerge(t *testing.T) {
	base, _ := ParseTranslations("<Btn1Down>: one()\n<EnterWindow>: enter()")
	over, _ := ParseTranslations("<Btn1Down>: two()")
	merged := base.Merge(over, MergeOverride)
	got := merged.Match(&xproto.Event{Type: xproto.ButtonPress, Button: 1})
	if len(got) != 1 || got[0].Name != "two" {
		t.Errorf("override merge = %+v", got)
	}
	if calls := merged.Match(&xproto.Event{Type: xproto.EnterNotify}); len(calls) != 1 || calls[0].Name != "enter" {
		t.Errorf("non-conflicting binding lost: %+v", calls)
	}
	aug := base.Merge(over, MergeAugment)
	got = aug.Match(&xproto.Event{Type: xproto.ButtonPress, Button: 1})
	if len(got) != 1 || got[0].Name != "one" {
		t.Errorf("augment merge = %+v", got)
	}
	rep := base.Merge(over, MergeReplace)
	if rep.Match(&xproto.Event{Type: xproto.EnterNotify}) != nil {
		t.Error("replace should drop old bindings")
	}
}

func TestEventDispatchThroughTranslations(t *testing.T) {
	app := NewTestApp("wafe")
	top := newShell(t, app)
	var fired []string
	app.AddAction("record", func(w *Widget, ev *xproto.Event, params []string) {
		fired = append(fired, w.Name+":"+strings.Join(params, ","))
	})
	w, _ := app.CreateWidget("btn", testLabelClass, top, map[string]string{"width": "50", "height": "20"}, true)
	tt, _ := ParseTranslations("<Btn1Down>: record(pressed)")
	w.SetResourceValue("translations", tt)
	top.Realize()
	w.UpdateInputMask()
	app.Pump()
	d := app.Display()
	wx, wy := rootOf(w)
	d.WarpPointer(wx+5, wy+5)
	d.InjectButtonPress(1)
	app.Pump()
	if len(fired) != 1 || fired[0] != "btn:pressed" {
		t.Errorf("fired = %v", fired)
	}
}

func rootOf(w *Widget) (int, int) {
	win, _ := w.Display().Lookup(w.Window())
	return win.RootCoords(0, 0)
}

func TestInsensitiveWidgetIgnoresInput(t *testing.T) {
	app := NewTestApp("wafe")
	top := newShell(t, app)
	count := 0
	app.AddAction("hit", func(w *Widget, _ *xproto.Event, _ []string) { count++ })
	w, _ := app.CreateWidget("btn", testLabelClass, top, map[string]string{"width": "50", "height": "20"}, true)
	tt, _ := ParseTranslations("<Btn1Down>: hit()")
	w.SetResourceValue("translations", tt)
	top.Realize()
	w.UpdateInputMask()
	app.Pump()
	wx, wy := rootOf(w)
	app.Display().WarpPointer(wx+2, wy+2)
	app.Display().InjectButtonPress(1)
	app.Pump()
	if count != 1 {
		t.Fatalf("sensitive press count = %d", count)
	}
	_ = w.SetValues(map[string]string{"sensitive": "false"})
	app.Pump()
	app.Display().InjectButtonPress(1)
	app.Pump()
	if count != 1 {
		t.Errorf("insensitive widget received input (count=%d)", count)
	}
}

func TestCallbacks(t *testing.T) {
	app := NewTestApp("wafe")
	top := newShell(t, app)
	w, _ := app.CreateWidget("b", testButtonClass, top, nil, true)
	var calls []string
	err := w.AddCallback("callback", Callback{Source: "first", Proc: func(w *Widget, _ CallData) {
		calls = append(calls, "first")
	}})
	if err != nil {
		t.Fatal(err)
	}
	_ = w.AddCallback("callback", Callback{Source: "second", Proc: func(w *Widget, _ CallData) {
		calls = append(calls, "second")
	}})
	if !w.HasCallbacks("callback") {
		t.Error("HasCallbacks = false")
	}
	w.CallCallbacks("callback", nil)
	if strings.Join(calls, ",") != "first,second" {
		t.Errorf("calls = %v", calls)
	}
	// Readable callback resource (Wafe extension).
	src, err := w.GetValue("callback")
	if err != nil || src != "first; second" {
		t.Errorf("callback source = %q, %v", src, err)
	}
	_ = w.RemoveAllCallbacks("callback")
	if w.HasCallbacks("callback") {
		t.Error("callbacks survived RemoveAllCallbacks")
	}
	if err := w.AddCallback("label", Callback{}); err == nil {
		t.Error("AddCallback on non-callback resource must fail")
	}
}

func TestDestroyCallbacksAndMemory(t *testing.T) {
	app := NewTestApp("wafe")
	top := newShell(t, app)
	box, _ := app.CreateWidget("box", testBoxClass, top, nil, true)
	w, _ := app.CreateWidget("b", testButtonClass, box, nil, true)
	destroyed := []string{}
	_ = w.AddCallback("destroyCallback", Callback{Proc: func(w *Widget, _ CallData) {
		destroyed = append(destroyed, w.Name)
	}})
	before := app.LiveWidgets()
	box.Destroy()
	if app.LiveWidgets() != before-2 {
		t.Errorf("live widgets %d → %d, want -2", before, app.LiveWidgets())
	}
	if len(destroyed) != 1 || destroyed[0] != "b" {
		t.Errorf("destroyCallback fired %v", destroyed)
	}
	if app.WidgetByName("b") != nil || app.WidgetByName("box") != nil {
		t.Error("destroyed widgets still registered")
	}
	// Name can be reused after destroy.
	if _, err := app.CreateWidget("box", testBoxClass, top, nil, true); err != nil {
		t.Errorf("name reuse after destroy failed: %v", err)
	}
}

func TestRealizeCreatesWindows(t *testing.T) {
	app := NewTestApp("wafe")
	top := newShell(t, app)
	box, _ := app.CreateWidget("box", testBoxClass, top, nil, true)
	l1, _ := app.CreateWidget("l1", testLabelClass, box, map[string]string{"label": "one"}, true)
	l2, _ := app.CreateWidget("l2", testLabelClass, box, map[string]string{"label": "longer-label"}, true)
	top.Realize()
	for _, w := range []*Widget{top, box, l1, l2} {
		if !w.IsRealized() || w.Window() == 0 {
			t.Errorf("%s not realized", w.Name)
		}
	}
	// Box stacked l2 below l1.
	if l2.Int("y") <= l1.Int("y") {
		t.Errorf("layout: l1.y=%d l2.y=%d", l1.Int("y"), l2.Int("y"))
	}
	// Shell sized itself to the box.
	if top.Int("width") < l2.Int("width") {
		t.Errorf("shell width %d < child width %d", top.Int("width"), l2.Int("width"))
	}
	// Windows mapped.
	win, _ := app.Display().Lookup(l1.Window())
	if !win.Viewable() {
		t.Error("l1 window not viewable after realize")
	}
}

func TestExposeRedraw(t *testing.T) {
	app := NewTestApp("wafe")
	top := newShell(t, app)
	w, _ := app.CreateWidget("l", testLabelClass, top, map[string]string{"label": "drawme"}, true)
	top.Realize()
	app.Pump()
	texts := app.Display().StringsDrawn(w.Window())
	found := false
	for _, s := range texts {
		if s == "drawme" {
			found = true
		}
	}
	if !found {
		t.Errorf("label text not drawn, log=%v", texts)
	}
}

func TestPopupPopdownGrabs(t *testing.T) {
	app := NewTestApp("wafe")
	top := newShell(t, app)
	top.Realize()
	popup, _ := app.CreateWidget("menu", OverrideShellClass, top, nil, false)
	_, _ = app.CreateWidget("entry", testLabelClass, popup, nil, true)
	if err := popup.Popup(GrabExclusive); err != nil {
		t.Fatal(err)
	}
	if !popup.IsPoppedUp() {
		t.Error("not popped up")
	}
	d := app.Display()
	if d.GrabbedWindow() != popup.Window() {
		t.Error("exclusive grab not installed")
	}
	win, _ := d.Lookup(popup.Window())
	if !win.Mapped {
		t.Error("popup window not mapped")
	}
	if err := popup.Popdown(); err != nil {
		t.Fatal(err)
	}
	if popup.IsPoppedUp() || d.GrabbedWindow() != xproto.None {
		t.Error("popdown did not release state")
	}
	if win.Mapped {
		t.Error("popup window still mapped")
	}
	// Grab kinds parse per the paper's predefined callbacks table.
	for name, want := range map[string]GrabKind{"none": GrabNone, "exclusive": GrabExclusive, "nonexclusive": GrabNonexclusive} {
		got, err := ParseGrabKind(name)
		if err != nil || got != want {
			t.Errorf("ParseGrabKind(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseGrabKind("bogus"); err == nil {
		t.Error("bad grab kind must fail")
	}
}

func TestPositionShell(t *testing.T) {
	app := NewTestApp("wafe")
	top := newShell(t, app)
	top.Realize()
	popup, _ := app.CreateWidget("pop", TransientShellClass, top, nil, false)
	_ = popup.Popup(GrabNone)
	if err := popup.PositionShell(123, 45); err != nil {
		t.Fatal(err)
	}
	if popup.Int("x") != 123 || popup.Int("y") != 45 {
		t.Errorf("position = %d,%d", popup.Int("x"), popup.Int("y"))
	}
	app.Display().WarpPointer(300, 200)
	_ = popup.PositionShellUnderPointer()
	if popup.Int("x") != 300 || popup.Int("y") != 200 {
		t.Errorf("positionCursor = %d,%d", popup.Int("x"), popup.Int("y"))
	}
	lab := app.WidgetByName("topLevel")
	_ = lab
	w, _ := app.CreateWidget("plain", testLabelClass, top, nil, true)
	if err := w.PositionShell(1, 1); err == nil {
		t.Error("PositionShell on non-shell must fail")
	}
}

func TestTimeouts(t *testing.T) {
	app := NewTestApp("wafe")
	fired := 0
	app.AddTimeout(5*time.Millisecond, func() { fired++; app.Quit(0) })
	cancelled := app.AddTimeout(1*time.Millisecond, func() { fired += 100 })
	cancelled.Remove()
	done := make(chan int, 1)
	go func() { done <- app.MainLoop() }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("MainLoop did not quit")
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (cancelled timer must not run)", fired)
	}
}

func TestAddInputDeliversLines(t *testing.T) {
	app := NewTestApp("wafe")
	ch := make(chan string, 4)
	var got []string
	var sawEOF bool
	app.AddInput(ch, func(line string, eof bool) {
		if eof {
			sawEOF = true
			app.Quit(0)
			return
		}
		got = append(got, line)
	})
	ch <- "one"
	ch <- "two"
	close(ch)
	done := make(chan int, 1)
	go func() { done <- app.MainLoop() }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("MainLoop did not quit on EOF")
	}
	if strings.Join(got, ",") != "one,two" || !sawEOF {
		t.Errorf("got=%v eof=%v", got, sawEOF)
	}
}

func TestWorkProcRunsWhenIdle(t *testing.T) {
	app := NewTestApp("wafe")
	runs := 0
	app.AddWorkProc(func() bool {
		runs++
		if runs >= 3 {
			app.Quit(0)
			return true
		}
		return false
	})
	done := make(chan int, 1)
	go func() { done <- app.MainLoop() }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("MainLoop did not quit")
	}
	if runs != 3 {
		t.Errorf("work proc ran %d times", runs)
	}
}

func TestSecondDisplay(t *testing.T) {
	app := NewTestApp("wafe")
	d2 := app.OpenSecondDisplay("unit-dec4:0")
	if len(app.Displays()) != 2 {
		t.Fatalf("displays = %d", len(app.Displays()))
	}
	if app.OpenSecondDisplay("unit-dec4:0") != d2 {
		t.Error("re-opening should return same display")
	}
	xproto.CloseDisplay(d2)
}

func TestUnboundActionRaisesError(t *testing.T) {
	app := NewTestApp("wafe")
	top := newShell(t, app)
	w, _ := app.CreateWidget("l", testLabelClass, top, map[string]string{"width": "30", "height": "10"}, true)
	tt, _ := ParseTranslations("<Btn1Down>: NoSuchAction()")
	w.SetResourceValue("translations", tt)
	top.Realize()
	w.UpdateInputMask()
	app.Pump()
	wx, wy := rootOf(w)
	app.Display().WarpPointer(wx+1, wy+1)
	app.Display().InjectButtonPress(1)
	app.Pump()
	errs := app.Errors()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "unbound action") {
		t.Errorf("errors = %v", errs)
	}
}

func TestConverterErrors(t *testing.T) {
	app := NewTestApp("wafe")
	if _, err := app.Convert(nil, "NoSuchType", "x"); err == nil {
		t.Error("unknown type must fail")
	}
	if _, err := app.Convert(nil, TInt, "abc"); err == nil {
		t.Error("bad int must fail")
	}
	if _, err := app.Convert(nil, TBoolean, "maybe"); err == nil {
		t.Error("bad bool must fail")
	}
	if v, err := app.Convert(nil, TDimension, "42"); err != nil || v.(int) != 42 {
		t.Errorf("dimension = %v, %v", v, err)
	}
	if v, err := app.Convert(nil, TFloat, "0.5"); err != nil || v.(float64) != 0.5 {
		t.Errorf("float = %v, %v", v, err)
	}
}
