package xt

// The legacy flat-list resource matcher, retained verbatim as a test
// oracle for the quark-tree engine. It scores every entry against the
// full query path and keeps the lexicographically best score — O(n)
// per query, but independently derived from the X precedence rules, so
// agreement between the two engines over random databases is strong
// evidence the tree search order is right.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

type legacyComponent struct {
	loose bool
	name  string
}

type legacyEntry struct {
	components []legacyComponent
	value      string
	seq        int
}

type legacyXrm struct {
	entries []legacyEntry
}

func (db *legacyXrm) Enter(spec, value string) error {
	comps, err := legacyParseSpec(spec)
	if err != nil {
		return err
	}
	e := legacyEntry{components: comps, value: value, seq: len(db.entries)}
	for i, old := range db.entries {
		if legacySpecEqual(old.components, comps) {
			e.seq = old.seq
			db.entries[i] = e
			return nil
		}
	}
	db.entries = append(db.entries, e)
	return nil
}

func legacySpecEqual(a, b []legacyComponent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func legacyParseSpec(spec string) ([]legacyComponent, error) {
	var comps []legacyComponent
	loose := false
	cur := strings.Builder{}
	flush := func() {
		if cur.Len() > 0 {
			comps = append(comps, legacyComponent{loose: loose, name: cur.String()})
			cur.Reset()
			loose = false
		}
	}
	for i := 0; i < len(spec); i++ {
		switch spec[i] {
		case '.':
			flush()
		case '*':
			flush()
			loose = true
		case ' ', '\t':
		default:
			cur.WriteByte(spec[i])
		}
	}
	flush()
	if len(comps) == 0 {
		return nil, fmt.Errorf("xt: empty resource specification %q", spec)
	}
	return comps, nil
}

func (db *legacyXrm) Query(names, classes []string, resName, resClass string) (string, bool) {
	pathN := append(append([]string(nil), names...), resName)
	pathC := append(append([]string(nil), classes...), resClass)
	bestScore := []int(nil)
	bestSeq := -1
	value := ""
	found := false
	for _, e := range db.entries {
		score, ok := legacyMatchEntry(e.components, pathN, pathC)
		if !ok {
			continue
		}
		if bestScore == nil || legacyCompareScores(score, bestScore) > 0 ||
			(legacyCompareScores(score, bestScore) == 0 && e.seq > bestSeq) {
			bestScore = score
			bestSeq = e.seq
			value = e.value
			found = true
		}
	}
	return value, found
}

func legacyMatchEntry(comps []legacyComponent, names, classes []string) ([]int, bool) {
	L := len(names)
	score := make([]int, L)
	var rec func(ci, li int) bool
	rec = func(ci, li int) bool {
		if ci == len(comps) {
			return li == L
		}
		c := comps[ci]
		if li >= L {
			return false
		}
		tryMatch := func(at int) bool {
			var s int
			switch {
			case c.name == names[at]:
				s = 3
			case c.name == classes[at]:
				s = 2
			case c.name == "?":
				s = 1
			default:
				return false
			}
			if !c.loose {
				s += 4
			}
			for k := li; k < at; k++ {
				score[k] = 0
			}
			score[at] = s
			return rec(ci+1, at+1)
		}
		if c.loose {
			lim := L - 1
			if ci < len(comps)-1 {
				lim = L - 1 - (len(comps) - 1 - ci)
			}
			for at := li; at <= lim; at++ {
				if ci == len(comps)-1 && at != L-1 {
					continue
				}
				saved := append([]int(nil), score...)
				if tryMatch(at) {
					return true
				}
				copy(score, saved)
			}
			return false
		}
		if ci == len(comps)-1 && li != L-1 {
			return false
		}
		return tryMatch(li)
	}
	if !rec(0, 0) {
		return nil, false
	}
	return score, true
}

func legacyCompareScores(a, b []int) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] > b[i] {
				return 1
			}
			return -1
		}
	}
	return 0
}

// --- differential tests -----------------------------------------------------

// TestXrmDifferentialTargeted pins the tricky cases by hand: loose
// bindings first, '?' wildcards tight and loose, single-component loose
// entries, and the tight-beats-loose / name-beats-class orderings.
func TestXrmDifferentialTargeted(t *testing.T) {
	specs := []string{
		"*foreground",
		"*Foreground",
		"*?.foreground",
		"?.form.foreground",
		"wafe*foreground",
		"wafe.form.label.foreground",
		"wafe.form.label.Foreground",
		"Wafe*Label.foreground",
		"Wafe*label.foreground",
		"*Form*foreground",
		"*form.?.foreground",
		"wafe*?.Foreground",
		"*InitCom",
	}
	oracle := &legacyXrm{}
	tree := NewXrm()
	for i, s := range specs {
		v := fmt.Sprintf("v%d", i)
		if err := oracle.Enter(s, v); err != nil {
			t.Fatalf("oracle.Enter(%q): %v", s, err)
		}
		if err := tree.Enter(s, v); err != nil {
			t.Fatalf("tree.Enter(%q): %v", s, err)
		}
	}
	queries := []struct {
		names, classes    []string
		resName, resClass string
	}{
		{[]string{"wafe", "form", "label"}, []string{"Wafe", "Form", "Label"}, "foreground", "Foreground"},
		{[]string{"wafe", "form"}, []string{"Wafe", "Form"}, "foreground", "Foreground"},
		{[]string{"wafe"}, []string{"Wafe"}, "foreground", "Foreground"},
		{[]string{"wafe"}, []string{"Wafe"}, "InitCom", "InitCom"},
		{[]string{"wafe", "box", "label"}, []string{"Wafe", "Box", "Label"}, "foreground", "Foreground"},
		{[]string{"other", "form", "x"}, []string{"Other", "Form", "X"}, "foreground", "Foreground"},
		{[]string{"wafe", "form", "label"}, []string{"Wafe", "Form", "Label"}, "background", "Background"},
	}
	for _, q := range queries {
		wantV, wantOK := oracle.Query(q.names, q.classes, q.resName, q.resClass)
		gotV, gotOK := tree.Query(q.names, q.classes, q.resName, q.resClass)
		if gotV != wantV || gotOK != wantOK {
			t.Errorf("Query(%v,%v,%q,%q) = (%q,%v), oracle (%q,%v)",
				q.names, q.classes, q.resName, q.resClass, gotV, gotOK, wantV, wantOK)
		}
	}
}

// TestXrmDifferentialRandom drives both engines with random databases
// and random query paths. Specifications are deduplicated before entry
// so replacement semantics (where the engines intentionally differ,
// see TestXrmReplaceTakesCurrentPriority) stay out of scope; with
// distinct specs the engines must agree exactly.
func TestXrmDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Deliberately tiny alphabet with name/class collisions ("w" is
	// both a path name and, via the query below, sometimes a class).
	atoms := []string{"a", "b", "c", "A", "B", "C", "?", "w", "Form"}
	randSpec := func() string {
		n := 1 + rng.Intn(4)
		var b strings.Builder
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				b.WriteByte('*')
			} else if i > 0 {
				b.WriteByte('.')
			}
			b.WriteString(atoms[rng.Intn(len(atoms))])
		}
		return b.String()
	}
	for round := 0; round < 200; round++ {
		oracle := &legacyXrm{}
		tree := NewXrm()
		used := map[string]bool{}
		nEntries := 1 + rng.Intn(12)
		for len(used) < nEntries {
			s := randSpec()
			// Normalize to the parsed form so ".a" vs "a" style
			// duplicates cannot slip through the dedup.
			comps, err := legacyParseSpec(s)
			if err != nil {
				continue
			}
			key := fmt.Sprint(comps)
			if used[key] {
				continue
			}
			used[key] = true
			v := fmt.Sprintf("r%d.%d", round, len(used))
			if err := oracle.Enter(s, v); err != nil {
				t.Fatalf("oracle.Enter(%q): %v", s, err)
			}
			if err := tree.Enter(s, v); err != nil {
				t.Fatalf("tree.Enter(%q): %v", s, err)
			}
		}
		for q := 0; q < 30; q++ {
			depth := 1 + rng.Intn(4)
			names := make([]string, depth-1)
			classes := make([]string, depth-1)
			for i := range names {
				names[i] = atoms[rng.Intn(len(atoms))]
				if rng.Intn(4) == 0 {
					classes[i] = names[i] // name == class at this level
				} else {
					classes[i] = atoms[rng.Intn(len(atoms))]
				}
			}
			resName := atoms[rng.Intn(len(atoms))]
			resClass := atoms[rng.Intn(len(atoms))]
			wantV, wantOK := oracle.Query(names, classes, resName, resClass)
			gotV, gotOK := tree.Query(names, classes, resName, resClass)
			if gotV != wantV || gotOK != wantOK {
				t.Fatalf("round %d: Query(%v,%v,%q,%q) = (%q,%v), oracle (%q,%v)",
					round, names, classes, resName, resClass, gotV, gotOK, wantV, wantOK)
			}
		}
	}
}
