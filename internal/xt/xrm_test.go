package xt

import (
	"fmt"
	"sync"
	"testing"

	"wafe/internal/obs"
)

// TestXrmContinuationLines covers the backslash-newline continuation
// rule: an odd trailing-backslash run joins the next line with the
// backslash and newline elided.
func TestXrmContinuationLines(t *testing.T) {
	db := NewXrm()
	err := db.EnterString("*label: hello \\\nworld\n" +
		"*form.\\\nbutton.fg: red\n" +
		"*literal: back\\\\\n" + // even run: no continuation, stays literal
		"*cr: joined\\\r\nhere\n")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		names, classes []string
		res, want      string
	}{
		{[]string{"wafe"}, []string{"Wafe"}, "label", "hello world"},
		{[]string{"wafe", "form", "button"}, []string{"Wafe", "Form", "Button"}, "fg", "red"},
		{[]string{"wafe"}, []string{"Wafe"}, "literal", `back\\`},
		{[]string{"wafe"}, []string{"Wafe"}, "cr", "joinedhere"},
	}
	for _, c := range cases {
		got, ok := db.Query(c.names, c.classes, c.res, c.res)
		if !ok || got != c.want {
			t.Errorf("Query(%v, %q) = (%q, %v), want %q", c.names, c.res, got, ok, c.want)
		}
	}
	// A lone trailing backslash on the final line stays literal.
	db2 := NewXrm()
	if err := db2.EnterString("*tail: end\\"); err != nil {
		t.Fatal(err)
	}
	if got, _ := db2.Query([]string{"a"}, []string{"A"}, "tail", "Tail"); got != "end\\" {
		t.Errorf("trailing backslash on last line = %q, want %q", got, "end\\")
	}
}

// TestXrmReplaceTakesCurrentPriority is the regression test for the
// replace-keeps-old-seq bug: re-entering a specification must give it
// the *current* insertion priority, exactly as if it had been removed
// and added fresh. Distinct specifications can never tie on score (a
// score vector plus the query path pins the component list), so the
// sequence ordering is asserted white-box on the tree values.
func TestXrmReplaceTakesCurrentPriority(t *testing.T) {
	db := NewXrm()
	must := func(spec, val string) {
		t.Helper()
		if err := db.Enter(spec, val); err != nil {
			t.Fatal(err)
		}
	}
	must("*a.r", "first")
	must("*b.r", "middle")
	must("*a.r", "replaced") // two entries tied at the same tree shape
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2", db.Len())
	}
	seqOf := func(name string) int {
		t.Helper()
		n := db.root.loose[StringToQuark(name)]
		if n == nil {
			t.Fatalf("no node for %q", name)
		}
		v := n.tightVals[StringToQuark("r")]
		if v == nil {
			t.Fatalf("no value under %q", name)
		}
		return v.seq
	}
	if a, b := seqOf("a"), seqOf("b"); a <= b {
		t.Errorf("replacement kept stale priority: seq(a)=%d <= seq(b)=%d", a, b)
	}
	if got, _ := db.Query([]string{"a"}, []string{"A"}, "r", "R"); got != "replaced" {
		t.Errorf("value after replacement = %q", got)
	}
}

// TestXrmGenerationInvalidation checks that Enter bumps the generation
// and that both the string Query path and a held SearchList observe
// values entered after the search list was built and cached.
func TestXrmGenerationInvalidation(t *testing.T) {
	db := NewXrm()
	if err := db.Enter("*color", "red"); err != nil {
		t.Fatal(err)
	}
	g0 := db.Generation()
	names := []string{"wafe", "form"}
	classes := []string{"Wafe", "Form"}
	if v, _ := db.Query(names, classes, "color", "Color"); v != "red" {
		t.Fatalf("initial query = %q", v)
	}
	sl := db.SearchListFor(
		[]Quark{StringToQuark("wafe"), StringToQuark("form")},
		[]Quark{StringToQuark("Wafe"), StringToQuark("Form")})
	if err := db.Enter("wafe.form.color", "blue"); err != nil {
		t.Fatal(err)
	}
	if db.Generation() == g0 {
		t.Error("Enter did not bump the generation")
	}
	if v, _ := db.Query(names, classes, "color", "Color"); v != "blue" {
		t.Errorf("query after Enter = %q, want blue", v)
	}
	// The stale cached list must still resolve correctly.
	if v, ok := db.SearchResource(sl, StringToQuark("color"), StringToQuark("Color")); !ok || v != "blue" {
		t.Errorf("SearchResource on stale list = (%q, %v), want blue", v, ok)
	}
}

// TestXrmObsMetrics wires a metrics registry to the database and checks
// the search-list hit/miss counters and the generation gauge.
func TestXrmObsMetrics(t *testing.T) {
	m := obs.New()
	db := NewXrm()
	db.SetObs(&m.Xt)
	if err := db.Enter("*x", "1"); err != nil {
		t.Fatal(err)
	}
	names, classes := []string{"app"}, []string{"App"}
	db.Query(names, classes, "x", "X") // miss (build)
	db.Query(names, classes, "x", "X") // hit
	db.Query(names, classes, "x", "X") // hit
	if v, _ := m.Get("xt.xrm_searchlist_misses"); v != 1 {
		t.Errorf("misses = %d, want 1", v)
	}
	if v, _ := m.Get("xt.xrm_searchlist_hits"); v != 2 {
		t.Errorf("hits = %d, want 2", v)
	}
	if v, _ := m.Get("xt.xrm_generation"); v != int64(db.Generation()) {
		t.Errorf("generation gauge = %d, want %d", v, db.Generation())
	}
}

// TestXrmConcurrentMergeAndCreate exercises the race surface the quark
// engine adds: concurrent mergeResources-style Enter calls, intern-table
// growth, and cached search-list invalidation, all while widgets are
// being created (and resolving their resources) on another goroutine.
// Run under -race this is the satellite gate for the intern table and
// the generation counter.
func TestXrmConcurrentMergeAndCreate(t *testing.T) {
	app := NewTestApp("wafe")
	top, err := app.CreateWidget("topLevel", ApplicationShellClass, nil, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				spec := fmt.Sprintf("*w%d.res%d", wr, i%17)
				if err := app.DB.Enter(spec, fmt.Sprintf("v%d", i)); err != nil {
					t.Error(err)
					return
				}
				StringToQuark(fmt.Sprintf("sym-%d-%d", wr, i%101))
				app.DB.Query([]string{"wafe", "box"}, []string{"Wafe", "Box"}, "label", "Label")
				i++
			}
		}(wr)
	}
	for i := 0; i < 50; i++ {
		box, err := app.CreateWidget(fmt.Sprintf("box%d", i), testBoxClass, top, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := app.CreateWidget(fmt.Sprintf("lab%d", i), testLabelClass, box, nil, true); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
