package xt

import (
	"fmt"
	"strings"

	"wafe/internal/xproto"
)

// ActionProc is an action procedure invocable from translation tables
// (XtActionProc). params are the arguments written in the table, e.g.
// exec(echo %k %a %s) passes ["echo %k %a %s"].
type ActionProc func(w *Widget, ev *xproto.Event, params []string)

// ActionCall is one action invocation in a translation binding. Target
// is normally nil (the action runs on the widget the event arrived at);
// accelerator installation sets it so the action resolves and runs on
// the source widget, as XtInstallAccelerators specifies.
type ActionCall struct {
	Name   string
	Params []string
	Target *Widget
	// Compiled is an opaque per-binding cache slot for action
	// procedures that interpret their params (the Wafe exec action
	// stores a pre-parsed script here); xt never inspects it.
	Compiled any
}

// transEntry is one line of a translation table.
type transEntry struct {
	evType  xproto.EventType
	detail  string // keysym for key events ("" = any)
	button  int    // required button for button events (0 = any)
	mods    xproto.Modifiers
	modMask xproto.Modifiers // which modifier bits the entry cares about
	actions []ActionCall
	source  string
}

// Translations is a parsed translation table, the value of the
// "translations" resource.
type Translations struct {
	entries []transEntry
	source  string
}

// Source returns the textual table (one binding per line).
func (t *Translations) Source() string {
	if t == nil {
		return ""
	}
	return t.source
}

// Len returns the number of bindings.
func (t *Translations) Len() int {
	if t == nil {
		return 0
	}
	return len(t.entries)
}

// EventMask returns the input events this table needs delivered.
func (t *Translations) EventMask() xproto.EventMask {
	var m xproto.EventMask
	if t == nil {
		return 0
	}
	for _, e := range t.entries {
		m |= xproto.MaskFor(e.evType)
	}
	return m
}

// Match returns the actions bound to the event, or nil. Among matching
// entries the most specific wins (keysym detail, then required
// modifiers, then button), with table order breaking ties — so a
// Ctrl<Key>Return accelerator beats a plain <Key>Return binding no
// matter where the merge placed it, as in Xt.
func (t *Translations) Match(ev *xproto.Event) []ActionCall {
	if t == nil {
		return nil
	}
	best := -1
	var bestActions []ActionCall
	for _, e := range t.entries {
		if e.evType != ev.Type {
			continue
		}
		if e.button != 0 && e.button != ev.Button {
			continue
		}
		if e.detail != "" && !keysymMatches(e.detail, ev) {
			continue
		}
		if ev.State&e.modMask != e.mods {
			continue
		}
		score := 0
		if e.detail != "" {
			score += 4
		}
		score += 2 * popcount(uint16(e.modMask))
		if e.button != 0 {
			score++
		}
		if score > best {
			best = score
			bestActions = e.actions
		}
	}
	return bestActions
}

func popcount(v uint16) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func keysymMatches(detail string, ev *xproto.Event) bool {
	if detail == ev.Keysym {
		return true
	}
	// Single-character details match the generated character, so
	// <Key>a fires for both "a" and shifted variants mapping to 'a'.
	if len(detail) == 1 && ev.Rune != 0 && string(ev.Rune) == detail {
		return true
	}
	return false
}

// RetargetTo returns a copy of the table whose actions resolve and run
// on w instead of the event widget — the accelerator mechanism.
func (t *Translations) RetargetTo(w *Widget) *Translations {
	if t == nil {
		return nil
	}
	out := &Translations{source: t.source}
	for _, e := range t.entries {
		ne := e
		ne.actions = make([]ActionCall, len(e.actions))
		for i, a := range e.actions {
			a.Target = w
			ne.actions[i] = a
		}
		out.entries = append(out.entries, ne)
	}
	return out
}

// MergeMode selects how action's first argument combines tables.
type MergeMode int

const (
	// MergeReplace discards the previous table.
	MergeReplace MergeMode = iota
	// MergeOverride gives the new entries precedence (XtOverrideTranslations).
	MergeOverride
	// MergeAugment keeps existing bindings where they conflict
	// (XtAugmentTranslations).
	MergeAugment
)

// ParseMergeMode maps the Wafe action-command keywords.
func ParseMergeMode(s string) (MergeMode, error) {
	switch strings.ToLower(s) {
	case "replace":
		return MergeReplace, nil
	case "override":
		return MergeOverride, nil
	case "augment":
		return MergeAugment, nil
	}
	return 0, fmt.Errorf("xt: bad translation merge mode %q (want override, augment or replace)", s)
}

// Merge combines tables according to mode and returns the result.
func (t *Translations) Merge(nw *Translations, mode MergeMode) *Translations {
	if mode == MergeReplace || t == nil || len(t.entries) == 0 {
		return nw
	}
	if nw == nil || len(nw.entries) == 0 {
		return t
	}
	conflicts := func(a, b transEntry) bool {
		return a.evType == b.evType && a.detail == b.detail && a.button == b.button && a.mods == b.mods
	}
	var out Translations
	switch mode {
	case MergeOverride:
		out.entries = append(out.entries, nw.entries...)
		for _, old := range t.entries {
			keep := true
			for _, n := range nw.entries {
				if conflicts(old, n) {
					keep = false
					break
				}
			}
			if keep {
				out.entries = append(out.entries, old)
			}
		}
	case MergeAugment:
		out.entries = append(out.entries, t.entries...)
		for _, n := range nw.entries {
			add := true
			for _, old := range t.entries {
				if conflicts(old, n) {
					add = false
					break
				}
			}
			if add {
				out.entries = append(out.entries, n)
			}
		}
	}
	var lines []string
	for _, e := range out.entries {
		lines = append(lines, e.source)
	}
	out.source = strings.Join(lines, "\n")
	return &out
}

// ParseTranslations parses an Xt translation table: one binding per
// line (newline separated), each of the form
//
//	[modifiers]<EventType>[detail]: action1(args) action2() ...
//
// The supported event names cover the types Wafe's percent-code table
// lists plus the structural ones the Athena widgets use.
func ParseTranslations(src string) (*Translations, error) {
	t := &Translations{}
	var lines []string
	for _, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		line = strings.TrimPrefix(line, "#override")
		line = strings.TrimPrefix(line, "#augment")
		line = strings.TrimPrefix(line, "#replace")
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		e, err := parseBinding(line)
		if err != nil {
			return nil, err
		}
		t.entries = append(t.entries, e)
		lines = append(lines, e.source)
	}
	t.source = strings.Join(lines, "\n")
	return t, nil
}

func parseBinding(line string) (transEntry, error) {
	colon := findBindingColon(line)
	if colon < 0 {
		return transEntry{}, fmt.Errorf("xt: translation binding %q has no colon", line)
	}
	lhs := strings.TrimSpace(line[:colon])
	rhs := strings.TrimSpace(line[colon+1:])
	e := transEntry{source: line}

	open := strings.IndexByte(lhs, '<')
	closeIdx := strings.IndexByte(lhs, '>')
	if open < 0 || closeIdx < open {
		return transEntry{}, fmt.Errorf("xt: translation binding %q has no <event>", line)
	}
	modPart := strings.TrimSpace(lhs[:open])
	evName := strings.TrimSpace(lhs[open+1 : closeIdx])
	detail := strings.TrimSpace(lhs[closeIdx+1:])

	if err := parseModifiers(modPart, &e); err != nil {
		return transEntry{}, fmt.Errorf("xt: binding %q: %v", line, err)
	}
	if err := parseEventName(evName, &e); err != nil {
		return transEntry{}, fmt.Errorf("xt: binding %q: %v", line, err)
	}
	if detail != "" {
		switch e.evType {
		case xproto.KeyPress, xproto.KeyRelease:
			e.detail = detail
		case xproto.ButtonPress, xproto.ButtonRelease:
			return transEntry{}, fmt.Errorf("xt: binding %q: button detail goes in the event name (Btn1Down)", line)
		default:
			return transEntry{}, fmt.Errorf("xt: binding %q: detail not allowed for %s", line, e.evType)
		}
	}
	actions, err := parseActionSeq(rhs)
	if err != nil {
		return transEntry{}, fmt.Errorf("xt: binding %q: %v", line, err)
	}
	if len(actions) == 0 {
		return transEntry{}, fmt.Errorf("xt: binding %q has no actions", line)
	}
	e.actions = actions
	return e, nil
}

// findBindingColon locates the separating colon, skipping "Ctrl:" style
// usage inside the lhs is not an issue because Xt uses the first colon
// after the closing '>' plus detail; we find the colon outside any
// parens.
func findBindingColon(line string) int {
	depth := 0
	seenEvent := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '<':
			depth++
		case '>':
			depth--
			seenEvent = true
		case ':':
			if depth == 0 && seenEvent {
				return i
			}
		}
	}
	return -1
}

func parseModifiers(s string, e *transEntry) error {
	if s == "" {
		return nil
	}
	for _, tok := range strings.Fields(s) {
		neg := false
		if strings.HasPrefix(tok, "~") {
			neg = true
			tok = tok[1:]
		}
		if strings.HasPrefix(tok, "!") {
			// Exclusive match: care about all standard modifiers.
			e.modMask |= xproto.ShiftMask | xproto.ControlMask | xproto.Mod1Mask
			tok = tok[1:]
			if tok == "" {
				continue
			}
		}
		var m xproto.Modifiers
		switch tok {
		case "Shift":
			m = xproto.ShiftMask
		case "Ctrl", "Control":
			m = xproto.ControlMask
		case "Meta", "Alt", "Mod1":
			m = xproto.Mod1Mask
		case "Lock":
			m = xproto.LockMask
		case "Button1":
			m = xproto.Button1Mask
		case "Button2":
			m = xproto.Button2Mask
		case "Button3":
			m = xproto.Button3Mask
		case "None":
			e.modMask |= xproto.ShiftMask | xproto.ControlMask | xproto.Mod1Mask
			continue
		case "Any":
			continue
		default:
			return fmt.Errorf("unknown modifier %q", tok)
		}
		e.modMask |= m
		if !neg {
			e.mods |= m
		}
	}
	return nil
}

func parseEventName(name string, e *transEntry) error {
	switch name {
	case "Key", "KeyPress", "KeyDown":
		e.evType = xproto.KeyPress
	case "KeyUp", "KeyRelease":
		e.evType = xproto.KeyRelease
	case "BtnDown", "ButtonPress":
		e.evType = xproto.ButtonPress
	case "BtnUp", "ButtonRelease":
		e.evType = xproto.ButtonRelease
	case "Btn1Down", "Btn2Down", "Btn3Down", "Btn4Down", "Btn5Down":
		e.evType = xproto.ButtonPress
		e.button = int(name[3] - '0')
	case "Btn1Up", "Btn2Up", "Btn3Up", "Btn4Up", "Btn5Up":
		e.evType = xproto.ButtonRelease
		e.button = int(name[3] - '0')
	case "EnterWindow", "Enter", "EnterNotify":
		e.evType = xproto.EnterNotify
	case "LeaveWindow", "Leave", "LeaveNotify":
		e.evType = xproto.LeaveNotify
	case "Expose":
		e.evType = xproto.Expose
	case "Motion", "PtrMoved", "MouseMoved", "MotionNotify":
		e.evType = xproto.MotionNotify
	case "Btn1Motion", "Btn2Motion", "Btn3Motion":
		e.evType = xproto.MotionNotify
		switch name[3] {
		case '1':
			e.mods |= xproto.Button1Mask
			e.modMask |= xproto.Button1Mask
		case '2':
			e.mods |= xproto.Button2Mask
			e.modMask |= xproto.Button2Mask
		case '3':
			e.mods |= xproto.Button3Mask
			e.modMask |= xproto.Button3Mask
		}
	case "Configure", "ConfigureNotify":
		e.evType = xproto.ConfigureNotify
	case "Map", "MapNotify":
		e.evType = xproto.MapNotify
	case "Unmap", "UnmapNotify":
		e.evType = xproto.UnmapNotify
	case "FocusIn":
		e.evType = xproto.FocusIn
	case "FocusOut":
		e.evType = xproto.FocusOut
	case "ClientMessage", "Message":
		e.evType = xproto.ClientMessage
	default:
		return fmt.Errorf("unknown event type %q", name)
	}
	return nil
}

// parseActionSeq parses "act1(a, b) act2() act3(text with spaces)".
func parseActionSeq(s string) ([]ActionCall, error) {
	var out []ActionCall
	i := 0
	n := len(s)
	for i < n {
		for i < n && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= n {
			break
		}
		start := i
		for i < n && s[i] != '(' && s[i] != ' ' && s[i] != '\t' {
			i++
		}
		name := s[start:i]
		if name == "" {
			return nil, fmt.Errorf("empty action name in %q", s)
		}
		call := ActionCall{Name: name}
		if i < n && s[i] == '(' {
			depth := 1
			i++
			argStart := i
			for i < n && depth > 0 {
				switch s[i] {
				case '(':
					depth++
				case ')':
					depth--
				case '[':
					depth++
				case ']':
					depth--
				}
				i++
			}
			if depth != 0 {
				return nil, fmt.Errorf("unbalanced parentheses in action %q", name)
			}
			argText := s[argStart : i-1]
			call.Params = splitActionParams(argText)
		}
		out = append(out, call)
	}
	return out, nil
}

// splitActionParams splits on top-level commas, trimming whitespace and
// surrounding double quotes from each parameter.
func splitActionParams(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var parts []string
	depth := 0
	inQuote := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case '(', '[', '{':
			if !inQuote {
				depth++
			}
		case ')', ']', '}':
			if !inQuote {
				depth--
			}
		case ',':
			if depth == 0 && !inQuote {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	for i := range parts {
		p := strings.TrimSpace(parts[i])
		if len(p) >= 2 && p[0] == '"' && p[len(p)-1] == '"' {
			p = p[1 : len(p)-1]
		}
		parts[i] = p
	}
	return parts
}
