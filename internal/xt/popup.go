package xt

import "fmt"

// GrabKind is XtGrabKind: the user-event constraint a popup imposes.
type GrabKind int

const (
	// GrabNone pops up without constraining events.
	GrabNone GrabKind = iota
	// GrabNonexclusive adds the shell to the grab list but still
	// delivers events to earlier grab windows.
	GrabNonexclusive
	// GrabExclusive directs all user events to the popup.
	GrabExclusive
)

// ParseGrabKind maps the Wafe predefined-callback names.
func ParseGrabKind(s string) (GrabKind, error) {
	switch s {
	case "none":
		return GrabNone, nil
	case "nonexclusive":
		return GrabNonexclusive, nil
	case "exclusive":
		return GrabExclusive, nil
	}
	return 0, fmt.Errorf("xt: bad grab kind %q", s)
}

// Popup realizes and maps a popup shell (XtPopup). With an exclusive
// grab all pointer events are redirected to the shell.
func (w *Widget) Popup(kind GrabKind) error {
	if !w.Class.Shell {
		return fmt.Errorf("xt: popup on non-shell widget %q", w.Name)
	}
	if w.poppedUp {
		return nil
	}
	w.relayout()
	w.realizeTree()
	w.poppedUp = true
	w.grabKind = kind
	w.display.MapWindow(w.window)
	switch kind {
	case GrabExclusive, GrabNonexclusive:
		w.display.GrabPointer(w.window)
	}
	return nil
}

// Popdown unmaps a popup shell and releases its grab (XtPopdown).
func (w *Widget) Popdown() error {
	if !w.Class.Shell {
		return fmt.Errorf("xt: popdown on non-shell widget %q", w.Name)
	}
	if !w.poppedUp {
		return nil
	}
	w.poppedUp = false
	if w.realized {
		w.display.UnmapWindow(w.window)
	}
	if w.grabKind == GrabExclusive || w.grabKind == GrabNonexclusive {
		if w.display.GrabbedWindow() == w.window {
			w.display.UngrabPointer()
		}
	}
	w.grabKind = GrabNone
	return nil
}

// PositionShell moves a shell to root coordinates (used by the
// "position" predefined callback).
func (w *Widget) PositionShell(x, y int) error {
	if !w.Class.Shell {
		return fmt.Errorf("xt: position on non-shell widget %q", w.Name)
	}
	w.setResource("x", x)
	w.setResource("y", y)
	w.explicit["x"] = true
	w.explicit["y"] = true
	if w.realized {
		w.display.ConfigureWindow(w.window, x, y, w.Int("width"), w.Int("height"))
	}
	return nil
}

// PositionShellUnderPointer places the shell at the current pointer
// position ("positionCursor" predefined callback).
func (w *Widget) PositionShellUnderPointer() error {
	x, y, _ := w.display.Pointer()
	return w.PositionShell(x, y)
}
