// Package xt implements the X Toolkit Intrinsics over the headless
// display server in internal/xproto: widget classes and instances,
// resource management with an Xrm database and string converters,
// translation tables with actions, callback lists, popup shells with
// grabs, and an application event loop with timeouts, alternate inputs
// and work procedures.
//
// The API follows the X11R5 Xt specification closely enough that the
// Wafe command layer (internal/core) maps one Xt call to one command,
// as the paper describes.
package xt

import (
	"fmt"
	"strconv"
	"strings"

	"wafe/internal/xproto"
)

// Resource describes one widget resource: its instance name, class
// name, value type and textual default, as in XtResource.
type Resource struct {
	Name    string
	Class   string
	Type    string
	Default string
}

// Standard resource type names. Converters are registered per type.
const (
	TString       = "String"
	TInt          = "Int"
	TDimension    = "Dimension"
	TPosition     = "Position"
	TBoolean      = "Boolean"
	TPixel        = "Pixel"
	TPixmap       = "Pixmap"
	TBitmap       = "Bitmap"
	TFont         = "FontStruct"
	TCallback     = "Callback"
	TTranslations = "TranslationTable"
	TAccelerators = "AcceleratorTable"
	TJustify      = "Justify"
	TOrientation  = "Orientation"
	TCursor       = "Cursor"
	TScreen       = "Screen"
	TColormap     = "Colormap"
	TCardinal     = "Cardinal"
	TFloat        = "Float"
	TStringList   = "StringList"
	TWidget       = "Widget"
	TXmString     = "XmString"
	TFontList     = "FontList"
	TShapeStyle   = "ShapeStyle"
)

// Converter turns a resource string into its typed value. Converters
// receive the widget for context (display, colormap), mirroring
// XtConvertArgRec usage.
type Converter func(app *App, w *Widget, value string) (any, error)

// Formatter renders a typed resource value back to its string form —
// the reverse direction Wafe adds on top of Xt ("opposite to the X
// Toolkit it is possible in Wafe to obtain the value of a callback
// resource").
type Formatter func(v any) string

// RegisterConverter installs a converter for a resource type,
// reproducing XtAppAddConverter. Additional converters registered by
// the Wafe layer (Callback, Pixmap, XmString) use this hook. The type
// name is interned so widget creation can look converters up by quark.
func (app *App) RegisterConverter(typeName string, c Converter) {
	app.converters[typeName] = c
	app.convertersQ[StringToQuark(typeName)] = c
}

// RegisterFormatter installs the reverse (value→string) direction.
func (app *App) RegisterFormatter(typeName string, f Formatter) {
	app.formatters[typeName] = f
}

// Convert applies the registered converter for the type.
func (app *App) Convert(w *Widget, typeName, value string) (any, error) {
	c, ok := app.converters[typeName]
	if !ok {
		return nil, fmt.Errorf("xt: no converter registered for type %q", typeName)
	}
	return c(app, w, value)
}

// ConvertQ is Convert with the type pre-interned — the widget-creation
// fast path, fed by the per-class resource quark lists. typeName is
// only used for the error message.
func (app *App) ConvertQ(w *Widget, typeQ Quark, typeName, value string) (any, error) {
	c, ok := app.convertersQ[typeQ]
	if !ok {
		return nil, fmt.Errorf("xt: no converter registered for type %q", typeName)
	}
	return c(app, w, value)
}

// Format renders a typed value as a string using the registered
// formatter, falling back to fmt.Sprint.
func (app *App) Format(typeName string, v any) string {
	if f, ok := app.formatters[typeName]; ok {
		return f(v)
	}
	return fmt.Sprint(v)
}

func registerBuiltinConverters(app *App) {
	app.RegisterConverter(TString, func(_ *App, _ *Widget, v string) (any, error) { return v, nil })
	intConv := func(_ *App, _ *Widget, v string) (any, error) {
		n, err := strconv.ParseInt(strings.TrimSpace(v), 0, 64)
		if err != nil {
			return nil, fmt.Errorf("xt: cannot convert %q to integer", v)
		}
		return int(n), nil
	}
	app.RegisterConverter(TInt, intConv)
	app.RegisterConverter(TDimension, intConv)
	app.RegisterConverter(TPosition, intConv)
	app.RegisterConverter(TCardinal, intConv)
	app.RegisterConverter(TBoolean, func(_ *App, _ *Widget, v string) (any, error) {
		switch strings.ToLower(strings.TrimSpace(v)) {
		case "true", "yes", "on", "1", "t":
			return true, nil
		case "false", "no", "off", "0", "f":
			return false, nil
		}
		return nil, fmt.Errorf("xt: cannot convert %q to Boolean", v)
	})
	app.RegisterConverter(TFloat, func(_ *App, _ *Widget, v string) (any, error) {
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return nil, fmt.Errorf("xt: cannot convert %q to Float", v)
		}
		return f, nil
	})
	app.RegisterConverter(TPixel, func(app *App, w *Widget, v string) (any, error) {
		s := strings.TrimSpace(v)
		switch strings.ToLower(s) {
		case "xtdefaultforeground":
			return xproto.Pixel{}, nil
		case "xtdefaultbackground":
			return xproto.Pixel{R: 255, G: 255, B: 255}, nil
		}
		p, err := xproto.ParseColor(s)
		if err != nil {
			return nil, err
		}
		return p, nil
	})
	app.RegisterConverter(TFont, func(_ *App, _ *Widget, v string) (any, error) {
		return xproto.LoadFont(v), nil
	})
	app.RegisterConverter(TCursor, func(_ *App, _ *Widget, v string) (any, error) {
		return strings.TrimSpace(v), nil
	})
	app.RegisterConverter(TJustify, func(_ *App, _ *Widget, v string) (any, error) {
		s := strings.ToLower(strings.TrimSpace(v))
		switch s {
		case "left", "center", "right":
			return s, nil
		}
		return nil, fmt.Errorf("xt: cannot convert %q to Justify", v)
	})
	app.RegisterConverter(TOrientation, func(_ *App, _ *Widget, v string) (any, error) {
		s := strings.ToLower(strings.TrimSpace(v))
		switch s {
		case "horizontal", "vertical":
			return s, nil
		}
		return nil, fmt.Errorf("xt: cannot convert %q to Orientation", v)
	})
	app.RegisterConverter(TShapeStyle, func(_ *App, _ *Widget, v string) (any, error) {
		return strings.ToLower(strings.TrimSpace(v)), nil
	})
	app.RegisterConverter(TTranslations, func(app *App, w *Widget, v string) (any, error) {
		return ParseTranslations(v)
	})
	app.RegisterConverter(TAccelerators, func(app *App, w *Widget, v string) (any, error) {
		return ParseTranslations(v)
	})
	app.RegisterConverter(TScreen, func(_ *App, w *Widget, v string) (any, error) { return v, nil })
	app.RegisterConverter(TColormap, func(_ *App, w *Widget, v string) (any, error) { return v, nil })
	app.RegisterConverter(TWidget, func(app *App, w *Widget, v string) (any, error) {
		if strings.TrimSpace(v) == "" {
			return (*Widget)(nil), nil
		}
		ref := app.WidgetByName(strings.TrimSpace(v))
		if ref == nil {
			return nil, fmt.Errorf("xt: no widget named %q", v)
		}
		return ref, nil
	})
	app.RegisterConverter(TStringList, func(_ *App, _ *Widget, v string) (any, error) {
		if strings.TrimSpace(v) == "" {
			return []string{}, nil
		}
		return strings.Split(v, "\n"), nil
	})
	app.RegisterConverter(TPixmap, func(_ *App, _ *Widget, v string) (any, error) {
		// The plain Xt converter understands only XBM data; Wafe's
		// extended converter (registered by internal/core) adds XPM.
		if strings.TrimSpace(v) == "" || v == "None" {
			return (*xproto.Pixmap)(nil), nil
		}
		return xproto.ParseXBM(v)
	})
	app.RegisterConverter(TBitmap, app.converters[TPixmap])
	app.RegisterConverter(TCallback, func(_ *App, _ *Widget, v string) (any, error) {
		// Without Wafe's callback converter a callback resource cannot
		// be set from a string; the Wafe layer replaces this.
		return nil, fmt.Errorf("xt: no String-to-Callback converter registered")
	})

	// Formatters.
	app.RegisterFormatter(TString, func(v any) string { return v.(string) })
	intFmt := func(v any) string { return strconv.Itoa(v.(int)) }
	app.RegisterFormatter(TInt, intFmt)
	app.RegisterFormatter(TDimension, intFmt)
	app.RegisterFormatter(TPosition, intFmt)
	app.RegisterFormatter(TCardinal, intFmt)
	app.RegisterFormatter(TBoolean, func(v any) string {
		if v.(bool) {
			return "True"
		}
		return "False"
	})
	app.RegisterFormatter(TFloat, func(v any) string {
		return strconv.FormatFloat(v.(float64), 'g', -1, 64)
	})
	app.RegisterFormatter(TPixel, func(v any) string { return v.(xproto.Pixel).String() })
	app.RegisterFormatter(TFont, func(v any) string {
		if f, ok := v.(*xproto.Font); ok && f != nil {
			return f.Name
		}
		return ""
	})
	app.RegisterFormatter(TJustify, func(v any) string { return v.(string) })
	app.RegisterFormatter(TOrientation, func(v any) string { return v.(string) })
	app.RegisterFormatter(TCallback, func(v any) string {
		if cl, ok := v.(CallbackList); ok {
			return cl.Source()
		}
		return ""
	})
	app.RegisterFormatter(TTranslations, func(v any) string {
		if tt, ok := v.(*Translations); ok && tt != nil {
			return tt.Source()
		}
		return ""
	})
	app.RegisterFormatter(TAccelerators, app.formatters[TTranslations])
	app.RegisterFormatter(TStringList, func(v any) string {
		if ls, ok := v.([]string); ok {
			return strings.Join(ls, "\n")
		}
		return ""
	})
	app.RegisterFormatter(TPixmap, func(v any) string {
		if pm, ok := v.(*xproto.Pixmap); ok && pm != nil {
			return pm.Name
		}
		return "None"
	})
	app.RegisterFormatter(TBitmap, app.formatters[TPixmap])
	app.RegisterFormatter(TWidget, func(v any) string {
		if w, ok := v.(*Widget); ok && w != nil {
			return w.Name
		}
		return ""
	})
	app.RegisterFormatter(TCursor, func(v any) string { return v.(string) })
	app.RegisterFormatter(TScreen, func(v any) string { return fmt.Sprint(v) })
	app.RegisterFormatter(TColormap, func(v any) string { return fmt.Sprint(v) })
	app.RegisterFormatter(TShapeStyle, func(v any) string { return v.(string) })
}
