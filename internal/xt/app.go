package xt

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wafe/internal/obs"
	"wafe/internal/xproto"
)

type windowKey struct {
	d   *xproto.Display
	win xproto.WindowID
}

// WorkProc is a background procedure run when the event loop is idle
// (XtAppAddWorkProc). Returning true removes it.
type WorkProc func() bool

// InputHandler receives lines from an alternate input source
// (XtAppAddInput). eof is true exactly once, after the source closes.
type InputHandler func(line string, eof bool)

// App is the application context (XtAppContext): displays, the resource
// database, converters, global actions, timeouts, alternate inputs and
// work procedures, plus the widget registries.
type App struct {
	Name      string
	ClassName string

	// Namespace scopes every display name this app opens. A serve-mode
	// session sets it to its session id, so two sessions whose scripts
	// both say "applicationShell top2 dec4:0" get two distinct virtual
	// displays — the named in-memory displays are the isolation
	// boundary between sessions. Empty (the single-process default)
	// leaves display names untouched.
	Namespace string

	DB *Xrm

	display  *xproto.Display
	displays []*xproto.Display

	converters  map[string]Converter
	convertersQ map[Quark]Converter // same converters, keyed by interned type
	formatters  map[string]Formatter
	actions     map[string]ActionProc

	widgets     map[string]*Widget
	byWindow    map[windowKey]*Widget
	liveWidgets int

	posted chan func()
	timers []*Timer
	works  []WorkProc
	nextID int

	quit     bool
	quitCode int

	// fullRepaint forces the legacy render path: every damage rect
	// widens to the whole window and every expose clears and repaints
	// unconditionally. Kept as the differential oracle the clipped
	// pipeline is compared against.
	fullRepaint bool

	// dispatchedCall points at the translation binding currently being
	// dispatched, so action procedures can reach their per-binding
	// Compiled cache slot. Nil outside DispatchEvent.
	dispatchedCall *ActionCall

	// ErrorHandler receives errors raised while dispatching actions and
	// callbacks (default: collect into Errors).
	ErrorHandler func(error)
	errorsMu     sync.Mutex
	errors       []error

	// obs, when non-nil, collects event-dispatch latency, queue depths
	// and callback/action firings. Nil (the default) keeps the
	// dispatch paths at a single atomic pointer load. Atomic because
	// Post is called from input-reader goroutines while observability
	// may be enabled on the loop goroutine mid-session.
	obs atomic.Pointer[obs.XtMetrics]
	// displayObs is handed to every display attached to the app, so
	// displays opened after observability is enabled are instrumented
	// too.
	displayObs atomic.Pointer[obs.XprotoMetrics]

	// trace, when non-nil, records spans per event dispatch, action
	// and callback, and is handed to every display (current and
	// future) for per-request spans. Same atomic discipline as obs.
	trace atomic.Pointer[obs.Trace]

	// loopGoID identifies the goroutine currently running the event
	// loop (MainLoop, or Sync in tests); zero when none. Post consults
	// it on the full-queue path to avoid deadlocking against itself.
	loopGoID atomic.Int64
}

// SetObs attaches (or, with nil, detaches) the observability metrics,
// including the resource-database search-list and generation metrics.
func (app *App) SetObs(m *obs.XtMetrics) {
	app.obs.Store(m)
	app.DB.SetObs(m)
}

// SetDisplayObs attaches protocol-request metrics to every display of
// the app, current and future.
func (app *App) SetDisplayObs(m *obs.XprotoMetrics) {
	app.displayObs.Store(m)
	for _, d := range app.displays {
		d.SetObs(m)
	}
}

// SetTrace attaches (or, with nil, detaches) the span tracer, on the
// app's dispatch sites and on every display of the app, current and
// future.
func (app *App) SetTrace(t *obs.Trace) {
	app.trace.Store(t)
	for _, d := range app.displays {
		d.SetTrace(t)
	}
}

// NewApp creates an application context bound to the named display
// (the empty string means ":0").
func NewApp(appName, className, displayName string) *App {
	d := xproto.OpenDisplay(displayName)
	return newAppOn(appName, className, d)
}

// NewSessionApp creates an application context inside a display
// namespace: the primary display and every secondary display opened
// later are named <namespace>/<name>, private to this session by
// uniqueness of the namespace. Close releases them.
func NewSessionApp(appName, className, namespace string) *App {
	d := xproto.OpenDisplay(namespace + "/:0")
	app := newAppOn(appName, className, d)
	app.Namespace = namespace
	return app
}

// NewTestApp creates an app on a private display for tests.
func NewTestApp(appName string) *App {
	className := appName
	if className != "" {
		b := []byte(className)
		if b[0] >= 'a' && b[0] <= 'z' {
			b[0] -= 32
		}
		className = string(b)
	}
	return newAppOn(appName, className, xproto.NewTestDisplay())
}

func newAppOn(appName, className string, d *xproto.Display) *App {
	app := &App{
		Name:        appName,
		ClassName:   className,
		DB:          NewXrm(),
		display:     d,
		displays:    []*xproto.Display{d},
		converters:  make(map[string]Converter),
		convertersQ: make(map[Quark]Converter),
		formatters:  make(map[string]Formatter),
		actions:     make(map[string]ActionProc),
		widgets:     make(map[string]*Widget),
		byWindow:    make(map[windowKey]*Widget),
		posted:      make(chan func(), 1024),
	}
	app.ErrorHandler = func(err error) {
		app.errorsMu.Lock()
		app.errors = append(app.errors, err)
		app.errorsMu.Unlock()
	}
	registerBuiltinConverters(app)
	return app
}

// Display returns the default display.
func (app *App) Display() *xproto.Display { return app.display }

// OpenSecondDisplay attaches another display to the application, as
// "applicationShell top2 dec4:0" requires. Inside a namespaced app the
// name is scoped to the session, so equal names in different sessions
// open distinct displays.
func (app *App) OpenSecondDisplay(name string) *xproto.Display {
	if app.Namespace != "" {
		name = app.Namespace + "/" + name
	}
	d := xproto.OpenDisplay(name)
	for _, have := range app.displays {
		if have == d {
			return d
		}
	}
	if m := app.displayObs.Load(); m != nil {
		d.SetObs(m)
	}
	if t := app.trace.Load(); t != nil {
		d.SetTrace(t)
	}
	app.displays = append(app.displays, d)
	return d
}

// Displays returns all displays attached to the app.
func (app *App) Displays() []*xproto.Display {
	return append([]*xproto.Display(nil), app.displays...)
}

// Close releases the app's displays from the process-wide registry so
// a retired session's virtual displays (and their window trees, draw
// logs and event queues) become collectable. Must run after the
// event loop has stopped.
func (app *App) Close() {
	for _, d := range app.displays {
		xproto.CloseDisplay(d)
	}
}

// WidgetByName resolves a widget reference — the string names Wafe uses
// everywhere instead of widget pointers.
func (app *App) WidgetByName(name string) *Widget { return app.widgets[name] }

// WidgetForWindow resolves a server window back to its widget
// (XtWindowToWidget).
func (app *App) WidgetForWindow(d *xproto.Display, win xproto.WindowID) *Widget {
	return app.byWindow[windowKey{d, win}]
}

// WidgetNames lists all live widgets, sorted.
func (app *App) WidgetNames() []string {
	out := make([]string, 0, len(app.widgets))
	for n := range app.widgets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LiveWidgets returns the number of live widget instances (tests assert
// Wafe's memory-management claim with it).
func (app *App) LiveWidgets() int { return app.liveWidgets }

// Errors drains the collected dispatch errors.
func (app *App) Errors() []error {
	app.errorsMu.Lock()
	defer app.errorsMu.Unlock()
	out := app.errors
	app.errors = nil
	return out
}

func (app *App) raise(err error) {
	if err == nil {
		return
	}
	if app.ErrorHandler != nil {
		app.ErrorHandler(err)
	}
}

// --- actions ---------------------------------------------------------------

// AddAction registers a global action procedure (XtAppAddActions); the
// Wafe layer registers "exec" this way.
func (app *App) AddAction(name string, proc ActionProc) { app.actions[name] = proc }

// LookupAction resolves an action for a widget: class chain first, then
// the global table.
func (app *App) LookupAction(w *Widget, name string) ActionProc {
	if a := w.Class.actionFor(name); a != nil {
		return a
	}
	return app.actions[name]
}

// --- event dispatch ----------------------------------------------------------

// DispatchEvent routes one X event to its widget (XtDispatchEvent):
// Expose redraws, input events run through the translation table.
// With observability attached, each dispatch is counted and timed;
// with tracing attached, each dispatch is a span (a root span when no
// protocol line is open — timer- and input-driven events).
func (app *App) DispatchEvent(d *xproto.Display, ev xproto.Event) {
	if t := app.trace.Load(); t != nil && t.Enabled() {
		sp := t.StartSpan("dispatch", ev.Type.String())
		defer sp.End()
	}
	if m := app.obs.Load(); m != nil {
		start := time.Now()
		app.dispatchEvent(d, ev)
		m.EventsDispatched.Inc()
		m.DispatchLatency.Observe(time.Since(start))
		return
	}
	app.dispatchEvent(d, ev)
}

func (app *App) dispatchEvent(d *xproto.Display, ev xproto.Event) {
	w := app.byWindow[windowKey{d, ev.Window}]
	if w == nil || w.beingDestroyed {
		return
	}
	switch ev.Type {
	case xproto.Expose:
		w.redrawExpose(&ev)
		return
	case xproto.MapNotify, xproto.UnmapNotify, xproto.ConfigureNotify, xproto.DestroyNotify:
		return
	}
	if !w.IsSensitive() {
		return
	}
	calls := w.translations().Match(&ev)
	for i := range calls {
		call := &calls[i]
		recv := w
		if call.Target != nil && !call.Target.beingDestroyed {
			recv = call.Target
		}
		proc := app.LookupAction(recv, call.Name)
		if proc == nil {
			app.raise(fmt.Errorf("xt: widget %q: unbound action %q", recv.Name, call.Name))
			continue
		}
		if m := app.obs.Load(); m != nil {
			m.ActionsFired.Inc()
		}
		var sp obs.SpanCtx
		if t := app.trace.Load(); t != nil {
			sp = t.StartSpan("action", call.Name)
		}
		app.dispatchedCall = call
		proc(recv, &ev, call.Params)
		app.dispatchedCall = nil
		sp.End()
	}
}

// DispatchedCall returns the translation binding whose action is
// currently executing, or nil. Action procedures use it to cache a
// parsed form of their params on the binding (ActionCall.Compiled).
func (app *App) DispatchedCall() *ActionCall { return app.dispatchedCall }

// SetFullRepaint switches between the damage-clipped render pipeline
// (default) and the legacy full-repaint path. The render oracle tests
// run both and require identical snapshots.
func (app *App) SetFullRepaint(on bool) { app.fullRepaint = on }

// FullRepaint reports whether the legacy full-repaint path is active.
func (app *App) FullRepaint() bool { return app.fullRepaint }

// Pump dispatches all pending events on all displays until the queues
// are empty. Tests and the Wafe command layer call it after injecting
// events; the main loop calls it each iteration.
func (app *App) Pump() {
	for rounds := 0; rounds < 1000; rounds++ {
		progress := false
		for _, d := range app.displays {
			if m := app.obs.Load(); m != nil {
				m.EventQueueDepth.Observe(int64(d.Pending()))
			}
			for {
				ev, ok := d.NextEvent()
				if !ok {
					break
				}
				progress = true
				app.DispatchEvent(d, ev)
			}
		}
		if !progress {
			return
		}
	}
}

// Post schedules fn to run on the event-loop goroutine.
func (app *App) Post(fn func()) {
	if m := app.obs.Load(); m != nil {
		m.PostedQueueDepth.Observe(int64(len(app.posted)))
	}
	select {
	case app.posted <- fn:
	default:
		// Queue full. A blocking send is correct from reader
		// goroutines, which may legitimately outpace the loop — but on
		// the loop goroutine itself (a callback or timer posting) it
		// would wait on the only goroutine able to drain the queue.
		// Run the closure inline in that case; the goroutine identity
		// check is confined to this cold path.
		if app.loopGoID.Load() == goid() {
			fn()
			return
		}
		app.posted <- fn
	}
}

// --- timeouts ----------------------------------------------------------------

// Timer is a pending timeout (XtAppAddTimeOut).
type Timer struct {
	id       int
	deadline time.Time
	fn       func()
	removed  bool
}

// AddTimeout schedules fn once after d.
func (app *App) AddTimeout(d time.Duration, fn func()) *Timer {
	app.nextID++
	t := &Timer{id: app.nextID, deadline: time.Now().Add(d), fn: fn}
	app.timers = append(app.timers, t)
	return t
}

// Remove cancels the timer (XtRemoveTimeOut).
func (t *Timer) Remove() { t.removed = true }

// runDueTimers fires expired timers; returns the wait until the next
// deadline (or a park interval when none).
func (app *App) runDueTimers() time.Duration {
	now := time.Now()
	next := 50 * time.Millisecond
	var keep []*Timer
	var due []*Timer
	for _, t := range app.timers {
		switch {
		case t.removed:
		case !t.deadline.After(now):
			due = append(due, t)
		default:
			keep = append(keep, t)
			if d := t.deadline.Sub(now); d < next {
				next = d
			}
		}
	}
	app.timers = keep
	for _, t := range due {
		// Recheck removal: XtRemoveTimeOut guarantees a removed timeout
		// never fires, including removal by an earlier timer callback
		// in the same due batch.
		if t.removed {
			continue
		}
		t.fn()
	}
	if len(due) > 0 {
		return 0
	}
	return next
}

// --- alternate inputs ----------------------------------------------------------

// AddInput attaches a line-oriented input source: each line received on
// ch is handed to handler on the event-loop goroutine; channel close
// delivers eof. This is the frontend-mode hook (XtAppAddInput on the
// pipe from the application program).
func (app *App) AddInput(ch <-chan string, handler InputHandler) {
	go func() {
		for line := range ch {
			l := line
			app.Post(func() { handler(l, false) })
		}
		app.Post(func() { handler("", true) })
	}()
}

// InputEvent is one delivery from an error-aware input source: a line,
// or a terminal condition — EOF (the source closed cleanly) or Err (the
// read failed). Distinguishing the two is what lets the frontend tell a
// backend that exited from a pipe that broke.
type InputEvent struct {
	Line string
	EOF  bool
	Err  error
}

// AddInputEvents attaches an input source with error reporting: each
// event received on ch is handed to handler on the event-loop
// goroutine, in order. The producer sends a terminal EOF or Err event
// and then closes ch.
func (app *App) AddInputEvents(ch <-chan InputEvent, handler func(InputEvent)) {
	go func() {
		for ev := range ch {
			e := ev
			app.Post(func() { handler(e) })
		}
	}()
}

// --- work procs -----------------------------------------------------------------

// AddWorkProc registers a background procedure (XtAppAddWorkProc).
func (app *App) AddWorkProc(p WorkProc) { app.works = append(app.works, p) }

func (app *App) runOneWorkProc() bool {
	for i, p := range app.works {
		if p == nil {
			continue
		}
		done := p()
		if done {
			app.works = append(app.works[:i], app.works[i+1:]...)
		}
		return true
	}
	return false
}

// --- main loop --------------------------------------------------------------------

// Quit ends MainLoop with the given status.
func (app *App) Quit(code int) {
	app.quit = true
	app.quitCode = code
}

// Quitting reports whether Quit has been called.
func (app *App) Quitting() bool { return app.quit }

// MainLoop is XtAppMainLoop: dispatch X events, run posted input
// closures, fire timers, and run work procs when idle, until Quit.
// It returns the exit status passed to Quit.
func (app *App) MainLoop() int {
	app.loopGoID.Store(goid())
	defer app.loopGoID.Store(0)
	for !app.quit {
		app.Pump()
		wait := app.runDueTimers()
		if app.quit {
			break
		}
		select {
		case fn := <-app.posted:
			fn()
			app.drainPosted()
		case <-time.After(wait):
			if !app.runOneWorkProc() {
				continue
			}
		}
	}
	app.Pump()
	return app.quitCode
}

// drainPosted runs every immediately-available posted closure.
func (app *App) drainPosted() {
	for {
		select {
		case fn := <-app.posted:
			fn()
		default:
			return
		}
	}
}

// Sync processes posted closures and events until both are idle — the
// deterministic test helper (no timers fire). While it runs, the
// calling goroutine is the loop for Post's full-queue check.
func (app *App) Sync() {
	prev := app.loopGoID.Swap(goid())
	defer app.loopGoID.Store(prev)
	for {
		app.Pump()
		select {
		case fn := <-app.posted:
			fn()
		default:
			return
		}
	}
}
