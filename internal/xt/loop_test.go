package xt

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestPostFromLoopWithFullQueue: Post called on the event-loop
// goroutine with the queue at capacity must run the closure inline
// instead of block-sending — the loop cannot drain the queue while it
// is the one waiting on it.
func TestPostFromLoopWithFullQueue(t *testing.T) {
	app := NewTestApp("wafe")
	ran := false
	app.Post(func() {
		// We are on the loop goroutine: fill the queue to capacity so
		// the next Post hits the full-queue path.
		for i := 0; i < cap(app.posted); i++ {
			app.posted <- func() {}
		}
		app.Post(func() {
			ran = true
			app.Quit(0)
		})
	})
	done := make(chan int, 1)
	go func() { done <- app.MainLoop() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("MainLoop deadlocked: Post from the loop goroutine blocked on its own queue")
	}
	if !ran {
		t.Error("posted closure never ran")
	}
}

// TestPostFromReaderWithFullQueueBlocks: off-loop senders must still
// block (not drop, not run inline on the wrong goroutine) and be
// drained in order.
func TestPostFromReaderWithFullQueue(t *testing.T) {
	app := NewTestApp("wafe")
	const extra = 64
	total := cap(app.posted) + extra
	seen := 0
	go func() {
		for i := 0; i < total; i++ {
			app.Post(func() { seen++ })
		}
		app.Post(func() { app.Quit(0) })
	}()
	done := make(chan int, 1)
	go func() { done <- app.MainLoop() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("MainLoop did not quit")
	}
	if seen != total {
		t.Errorf("ran %d closures, want %d", seen, total)
	}
}

// TestPostFunnelSerializesSessionState pins the cross-goroutine idioms
// wafevet's sessionowner rule sanctions: session-owned state (the
// widget tree) is only ever touched via App.Post or the AddInput /
// AddInputEvents funnels, which marshal onto the loop goroutine. Many
// producers hammer one widget concurrently; under -race this proves
// the funnel serializes every access without any locking in xt itself.
func TestPostFunnelSerializesSessionState(t *testing.T) {
	app := NewTestApp("wafe")
	top := newShell(t, app)
	w, err := app.CreateWidget("l", testLabelClass, top, nil, true)
	if err != nil {
		t.Fatalf("create label: %v", err)
	}

	const posters, perPoster, inputLines = 4, 50, 50
	want := posters*perPoster + 2*inputLines
	touches := 0
	touch := func(tag string, i int) func() {
		return func() {
			w.SetResourceValue("label", fmt.Sprintf("%s-%d", tag, i))
			_ = w.Str("label") // read back on the loop, same funnel
			if touches++; touches == want {
				app.Quit(0)
			}
		}
	}

	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPoster; i++ {
				app.Post(touch(fmt.Sprintf("post%d", p), i))
			}
		}(p)
	}

	lines := make(chan string)
	app.AddInput(lines, func(line string, eof bool) {
		if !eof {
			touch("input", len(line))()
		}
	})
	events := make(chan InputEvent)
	app.AddInputEvents(events, func(ev InputEvent) {
		if !ev.EOF {
			touch("event", len(ev.Line))()
		}
	})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < inputLines; i++ {
			lines <- fmt.Sprintf("line %d", i)
			events <- InputEvent{Line: fmt.Sprintf("ev %d", i)}
		}
		close(lines)
		close(events)
	}()

	done := make(chan int, 1)
	go func() { done <- app.MainLoop() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("MainLoop did not quit after all funnel deliveries")
	}
	wg.Wait()
	if touches != want {
		t.Errorf("loop observed %d touches, want %d", touches, want)
	}
}

// TestTimerRemovedBySiblingInBatch: XtRemoveTimeOut guarantees a
// removed timeout never fires — including removal by an earlier timer
// callback in the same expired batch, after runDueTimers has already
// collected both.
func TestTimerRemovedBySiblingInBatch(t *testing.T) {
	app := NewTestApp("wafe")
	var t2 *Timer
	t1Fired, t2Fired := false, false
	app.AddTimeout(1*time.Millisecond, func() {
		t1Fired = true
		t2.Remove()
	})
	t2 = app.AddTimeout(2*time.Millisecond, func() { t2Fired = true })
	app.AddTimeout(50*time.Millisecond, func() { app.Quit(0) })
	// Let both deadlines expire before the loop starts so a single
	// runDueTimers pass collects them into one due batch.
	time.Sleep(20 * time.Millisecond)
	done := make(chan int, 1)
	go func() { done <- app.MainLoop() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("MainLoop did not quit")
	}
	if !t1Fired {
		t.Error("first timer did not fire")
	}
	if t2Fired {
		t.Error("timer removed by a sibling in the same due batch still fired")
	}
}
