//go:build unix

package frontend

import (
	"strings"
	"testing"
	"time"
)

// TestSessionCrashRespawnIsolation: one session's supervised backend
// keeps crashing and is respawned under the session's own restart
// policy (the --respawn semantics, scoped to the session); a sibling
// session keeps dispatching commands the whole time and never notices.
func TestSessionCrashRespawnIsolation(t *testing.T) {
	backend := writeBackend(t, `#!/bin/sh
read line
echo "booted $line"
exit 42
`)
	term := &syncBuffer{}
	a, err := NewSession(SessionConfig{PrivateDisplay: true, Terminal: term})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	_ = a.W.App.DB.Enter("*InitCom", "boot")
	sup, err := a.Supervise(backend, nil, RestartPolicy{
		MaxRestarts: 2,
		Backoff:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	aDone := make(chan sessionResult, 1)
	go func() {
		code, err := a.Run()
		aDone <- sessionResult{code, err}
	}()

	// The sibling dispatches while a's backend crashes and respawns.
	_, bc, bDone := startSession(t, SessionConfig{})
	for i := 0; i < 20; i++ {
		bc.send("%echo tick")
		if got := bc.readLine(); got != "tick" {
			t.Fatalf("sibling echo = %q, want \"tick\"", got)
		}
		time.Sleep(time.Millisecond)
	}

	r := waitSession(t, aDone)
	if r.err != nil {
		t.Fatalf("session a Run err = %v", r.err)
	}
	if r.code != 1 {
		t.Errorf("session a exit code = %d, want 1 after giving up on a crashing backend", r.code)
	}
	if sup.Restarts() != 2 {
		t.Errorf("Restarts() = %d, want 2", sup.Restarts())
	}
	if sup.LastExitClass() != ExitCrash {
		t.Errorf("LastExitClass() = %q, want %q", sup.LastExitClass(), ExitCrash)
	}
	// Three incarnations, each receiving InitCom after its (re)spawn.
	if got := strings.Count(term.String(), "booted boot"); got != 3 {
		t.Errorf("backend booted %d times, want 3; terminal:\n%s", got, term.String())
	}

	// The sibling is still healthy after a's supervisor gave up.
	bc.send("%echo still-up")
	if got := bc.readLine(); got != "still-up" {
		t.Errorf("sibling echo after crash storm = %q, want \"still-up\"", got)
	}
	bc.send("%quit")
	if r := waitSession(t, bDone); r.err != nil || r.code != 0 {
		t.Errorf("sibling Run = %d, %v; want 0, nil", r.code, r.err)
	}
}
