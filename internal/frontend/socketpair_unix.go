//go:build unix

package frontend

import (
	"os"
	"syscall"
)

// socketpair returns the two ends of an AF_UNIX stream socket pair —
// the paper's preferred program-to-program transport.
func socketpair() (parent, child *os.File, err error) {
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM, 0)
	if err != nil {
		return nil, nil, err
	}
	syscall.CloseOnExec(fds[0])
	return os.NewFile(uintptr(fds[0]), "wafe-sock-parent"),
		os.NewFile(uintptr(fds[1]), "wafe-sock-child"), nil
}

// closeWrite shuts down the write half of the parent's socketpair end:
// the backend's stdin reaches EOF while its stdout stays readable.
func closeWrite(f *os.File) error {
	rc, err := f.SyscallConn()
	if err != nil {
		return err
	}
	var serr error
	if err := rc.Control(func(fd uintptr) {
		serr = syscall.Shutdown(int(fd), syscall.SHUT_WR)
	}); err != nil {
		return err
	}
	return serr
}
