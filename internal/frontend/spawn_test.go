//go:build unix

package frontend

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"wafe/internal/core"
)

type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func writeBackend(t *testing.T, script string) string {
	t.Helper()
	if _, err := os.Stat("/bin/sh"); err != nil {
		t.Skip("no /bin/sh")
	}
	path := filepath.Join(t.TempDir(), "backend")
	if err := os.WriteFile(path, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

func runToQuit(t *testing.T, w *core.Wafe) {
	t.Helper()
	done := make(chan int, 1)
	go func() { done <- w.App.MainLoop() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("main loop did not finish")
	}
}

// TestSpawnSocketpairTransport: on unix the preferred transport must
// actually be a socketpair, and the protocol must work over it.
func TestSpawnSocketpairTransport(t *testing.T) {
	backend := writeBackend(t, `#!/bin/sh
echo '%label l topLevel label sock'
echo '%realize'
echo '%echo ping'
while read line; do
  case "$line" in ping) echo "pong over socketpair"; echo '%quit' ;; esac
done
`)
	w := core.NewTest()
	term := &lockedBuf{}
	f := New(w, nil, term)
	child, err := f.SpawnIPC(backend, nil, IPCSocketpair)
	if err != nil {
		t.Fatal(err)
	}
	if child.Transport != IPCSocketpair {
		t.Fatalf("transport = %v, want socketpair", child.Transport)
	}
	runToQuit(t, w)
	child.Kill()
	_ = child.Wait()
	if !strings.Contains(term.String(), "pong over socketpair") {
		t.Errorf("terminal = %q", term.String())
	}
}

// TestSpawnMassChannelFD3: the backend writes the data channel on fd 3,
// as a real Wafe application does.
func TestSpawnMassChannelFD3(t *testing.T) {
	backend := writeBackend(t, `#!/bin/sh
echo '%asciiText text topLevel editType edit'
echo '%realize'
echo '%setCommunicationVariable C 10 {sV text string $C; echo got-mass}'
printf '0123456789' >&3
while read line; do
  case "$line" in got-mass) echo '%echo final [gV text string]' ;; final*) echo '%quit' ;; esac
done
`)
	w := core.NewTest()
	term := &lockedBuf{}
	f := New(w, nil, term)
	child, err := f.Spawn(backend, nil)
	if err != nil {
		t.Fatal(err)
	}
	runToQuit(t, w)
	child.Kill()
	_ = child.Wait()
	// The loop has ended; reading the widget directly is safe.
	if got := w.App.WidgetByName("text").Str("string"); got != "0123456789" {
		t.Errorf("mass transfer over fd 3 = %q", got)
	}
}

// TestSpawnInitCom: the InitCom resource reaches the backend first.
func TestSpawnInitCom(t *testing.T) {
	backend := writeBackend(t, `#!/bin/sh
read first
echo "boot: $first"
echo '%quit'
`)
	w := core.NewTest()
	_ = w.App.DB.Enter("*InitCom", "[myapp], widget_tree, read_loop.")
	term := &lockedBuf{}
	f := New(w, nil, term)
	child, err := f.Spawn(backend, nil)
	if err != nil {
		t.Fatal(err)
	}
	runToQuit(t, w)
	child.Kill()
	_ = child.Wait()
	if !strings.Contains(term.String(), "boot: [myapp], widget_tree, read_loop.") {
		t.Errorf("InitCom not delivered: %q", term.String())
	}
}

// TestShutdownBlockedBackend: a backend blocked reading its stdin must
// see EOF when the frontend shuts down — closing the parent's write end
// is what unblocks it. Before CloseInput existed, nothing ever closed
// that end and Child.Wait deadlocked here.
func TestShutdownBlockedBackend(t *testing.T) {
	for _, ipc := range []IPC{IPCSocketpair, IPCPipe} {
		backend := writeBackend(t, `#!/bin/sh
while read line; do :; done
exit 0
`)
		w := core.NewTest()
		f := New(w, nil, &lockedBuf{})
		child, err := f.SpawnIPC(backend, nil, ipc)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		err = child.Shutdown(2 * time.Second)
		elapsed := time.Since(start)
		if err != nil {
			t.Errorf("ipc %v: Shutdown = %v, want clean EOF exit", ipc, err)
		}
		if elapsed >= 2*time.Second {
			t.Errorf("ipc %v: Shutdown took %v — stdin EOF did not unblock the backend", ipc, elapsed)
		}
	}
}

// TestShutdownHungBackend: a backend that ignores both stdin EOF and
// SIGTERM is killed on the grace deadline; Shutdown always reaps.
func TestShutdownHungBackend(t *testing.T) {
	backend := writeBackend(t, `#!/bin/sh
trap '' TERM
while :; do sleep 1; done
`)
	w := core.NewTest()
	f := New(w, nil, &lockedBuf{})
	child, err := f.Spawn(backend, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = child.Shutdown(100 * time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Error("Shutdown = nil, want the kill to surface as an exit error")
	}
	if elapsed > 5*time.Second {
		t.Errorf("Shutdown took %v — escalation to SIGKILL did not bound the teardown", elapsed)
	}
	// Wait after Shutdown stays idempotent and agrees.
	if werr := child.Wait(); werr == nil {
		t.Error("Wait after Shutdown = nil, want the same exit error")
	}
}

// TestSpawnMissingProgram: a startup failure is reported cleanly.
func TestSpawnMissingProgram(t *testing.T) {
	w := core.NewTest()
	f := New(w, nil, &lockedBuf{})
	if _, err := f.Spawn("/no/such/backend-program", nil); err == nil {
		t.Fatal("expected spawn error")
	}
}
