package frontend

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"wafe/internal/frontend/faultio"
	"wafe/internal/obs"
)

func TestParseServeAddr(t *testing.T) {
	cases := []struct {
		in, network, addr string
		wantErr           bool
	}{
		{in: "tcp:127.0.0.1:7012", network: "tcp", addr: "127.0.0.1:7012"},
		{in: "unix:/tmp/wafe.sock", network: "unix", addr: "/tmp/wafe.sock"},
		{in: "127.0.0.1:7012", network: "tcp", addr: "127.0.0.1:7012"},
		{in: ":7012", network: "tcp", addr: ":7012"},
		{in: "/tmp/wafe.sock", network: "unix", addr: "/tmp/wafe.sock"},
		{in: "./wafe.sock", network: "unix", addr: "./wafe.sock"},
		{in: "justaname", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, c := range cases {
		network, addr, err := ParseServeAddr(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseServeAddr(%q) = %q,%q, want error", c.in, network, addr)
			}
			continue
		}
		if err != nil || network != c.network || addr != c.addr {
			t.Errorf("ParseServeAddr(%q) = %q,%q,%v; want %q,%q", c.in, network, addr, err, c.network, c.addr)
		}
	}
}

// startServer builds a Server on a TCP loopback listener plus a fresh
// metrics registry, and runs its accept loop.
func startServer(t *testing.T, cfg ServeConfig) (*Server, *obs.ServerMetrics) {
	t.Helper()
	return startServerOn(t, "tcp:127.0.0.1:0", cfg)
}

func startServerOn(t *testing.T, addr string, cfg ServeConfig) (*Server, *obs.ServerMetrics) {
	t.Helper()
	sm := obs.NewServer()
	cfg.Metrics = sm
	if cfg.Log == nil {
		cfg.Log = &syncBuffer{}
	}
	if cfg.Grace == 0 {
		cfg.Grace = 5 * time.Second
	}
	srv, err := Listen(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Shutdown()
		select {
		case err := <-served:
			if err != nil {
				t.Errorf("Serve returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
	})
	return srv, sm
}

// client is one test backend talking to a serve session over a
// connection.
type client struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
	id   string
}

func dialServe(t *testing.T, srv *Server) *client {
	t.Helper()
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return attachClient(t, conn)
}

// attachClient wraps an established connection and consumes the
// greeting line.
func attachClient(t *testing.T, conn net.Conn) *client {
	t.Helper()
	c := &client{t: t, conn: conn, br: bufio.NewReader(conn)}
	greeting := c.readLine()
	if !strings.HasPrefix(greeting, "wafe session s") {
		t.Fatalf("greeting = %q, want \"wafe session s<n>\"", greeting)
	}
	c.id = strings.TrimPrefix(greeting, "wafe session ")
	return c
}

func (c *client) send(line string) {
	c.t.Helper()
	if err := c.conn.SetWriteDeadline(time.Now().Add(5 * time.Second)); err == nil {
		defer c.conn.SetWriteDeadline(time.Time{})
	}
	if _, err := io.WriteString(c.conn, line+"\n"); err != nil {
		c.t.Fatalf("send %q: %v", line, err)
	}
}

func (c *client) readLine() string {
	c.t.Helper()
	type res struct {
		s   string
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := c.br.ReadString('\n')
		ch <- res{s, err}
	}()
	select {
	case v := <-ch:
		if v.err != nil {
			c.t.Fatalf("session %s read: %v", c.id, v.err)
		}
		return strings.TrimRight(v.s, "\n")
	case <-time.After(10 * time.Second):
		c.t.Fatalf("session %s: timeout waiting for line", c.id)
		return ""
	}
}

// waitDrained polls until no session is live.
func waitDrained(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.SessionsActive() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d sessions still live", srv.SessionsActive())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeHandshakeAndInitCom: a connecting backend receives the
// greeting line, then the InitCom resource exactly as after a fork,
// and the line protocol works both ways.
func TestServeHandshakeAndInitCom(t *testing.T) {
	srv, sm := startServer(t, ServeConfig{Resources: "*initCom: booted\n"})
	c := dialServe(t, srv)
	defer c.conn.Close()
	if got := c.readLine(); got != "booted" {
		t.Errorf("InitCom line = %q, want \"booted\"", got)
	}
	c.send("%echo hello")
	if got := c.readLine(); got != "hello" {
		t.Errorf("echo = %q, want \"hello\"", got)
	}
	c.send("%quit")
	waitDrained(t, srv)
	if got := sm.SessionEnds.Get("quit"); got != 1 {
		t.Errorf("session_ends.quit = %d, want 1", got)
	}
	if got := sm.SessionsTotal.Load(); got != 1 {
		t.Errorf("sessions_total = %d, want 1", got)
	}
}

// TestServeSessionIsolation: concurrent sessions create widgets and
// variables under deliberately colliding names; every session must see
// only its own values. Run under -race this also proves the sessions
// share no unsynchronized state.
func TestServeSessionIsolation(t *testing.T) {
	const sessions = 16
	srv, sm := startServer(t, ServeConfig{MaxSessions: sessions})
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			c := attachClient(t, conn)
			// Same widget name, same variable name, different values.
			c.send(fmt.Sprintf("%%label l topLevel label text-%d", i))
			c.send(fmt.Sprintf("%%set v %d", i))
			c.send("%echo [gV l label]=[set v]")
			want := fmt.Sprintf("text-%d=%d", i, i)
			if got := c.readLine(); got != want {
				errs <- fmt.Errorf("session %s: got %q, want %q", c.id, got, want)
				return
			}
			c.send("%quit")
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	waitDrained(t, srv)
	if got := sm.SessionEnds.Get("quit"); got != sessions {
		t.Errorf("session_ends.quit = %d, want %d", got, sessions)
	}
	if got := sm.SessionsActive.Max(); got < 2 {
		t.Errorf("sessions_active high watermark = %d, want concurrency (>= 2)", got)
	}
}

// TestServeMidCommandDisconnect: a backend that vanishes mid-command
// ends only its own session; a sibling keeps dispatching. The partial
// line is delivered on EOF and evaluated (consistent with the pipe
// path), so the session departs as a clean eof.
func TestServeMidCommandDisconnect(t *testing.T) {
	srv, sm := startServer(t, ServeConfig{})
	a := dialServe(t, srv)
	b := dialServe(t, srv)
	defer b.conn.Close()

	// a dies mid-line: no newline, then the connection drops.
	if _, err := io.WriteString(a.conn, "%set half"); err != nil {
		t.Fatal(err)
	}
	a.conn.Close()

	// The sibling session keeps working while a is torn down.
	for i := 0; i < 5; i++ {
		b.send(fmt.Sprintf("%%echo ping-%d", i))
		if got := b.readLine(); got != fmt.Sprintf("ping-%d", i) {
			t.Fatalf("sibling echo = %q, want ping-%d", got, i)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for sm.SessionEnds.Get("eof") != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("session_ends = %v, want one eof", sm.SessionEnds.Snapshot())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if srv.SessionsActive() != 1 {
		t.Errorf("SessionsActive = %d, want 1 (only the sibling)", srv.SessionsActive())
	}
	b.send("%quit")
	waitDrained(t, srv)
}

// flakyConn injects a read fault into an otherwise healthy connection
// (faultio.FlakyReader over the real stream).
type flakyConn struct {
	net.Conn
	r io.Reader
}

func (c *flakyConn) Read(p []byte) (int, error) { return c.r.Read(p) }

// TestServeReadErrorIsolated: a connection whose read path fails with a
// real error (not EOF) departs as readerr — and only that session; a
// sibling keeps dispatching.
func TestServeReadErrorIsolated(t *testing.T) {
	srv, sm := startServer(t, ServeConfig{})

	clientEnd, serverEnd := net.Pipe()
	faulty := &flakyConn{
		Conn: serverEnd,
		r: &faultio.FlakyReader{
			R:   serverEnd,
			N:   len("%echo before\n"),
			Err: errors.New("injected conn failure"),
		},
	}
	if _, err := srv.StartConn(faulty); err != nil {
		t.Fatal(err)
	}
	a := attachClient(t, clientEnd)
	a.send("%echo before")
	if got := a.readLine(); got != "before" {
		t.Fatalf("echo before fault = %q, want \"before\"", got)
	}
	b := dialServe(t, srv)
	defer b.conn.Close()

	// The next read on a's session hits the injected error.
	go io.WriteString(clientEnd, "%echo never-delivered\n")
	deadline := time.Now().Add(10 * time.Second)
	for sm.SessionEnds.Get("readerr") != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("session_ends = %v, want one readerr", sm.SessionEnds.Snapshot())
		}
		time.Sleep(2 * time.Millisecond)
	}
	b.send("%echo sibling-alive")
	if got := b.readLine(); got != "sibling-alive" {
		t.Errorf("sibling echo = %q, want \"sibling-alive\"", got)
	}
	b.send("%quit")
	waitDrained(t, srv)
	clientEnd.Close()
}

// TestServeRefusesWhenFull: the MaxSessions bound refuses extra
// connections with a diagnostic line and counts the refusal, without
// disturbing the session already running.
func TestServeRefusesWhenFull(t *testing.T) {
	srv, sm := startServer(t, ServeConfig{MaxSessions: 1})
	c := dialServe(t, srv)
	defer c.conn.Close()

	extra, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer extra.Close()
	line, err := bufio.NewReader(extra).ReadString('\n')
	if err != nil {
		t.Fatalf("refused connection: %v", err)
	}
	if !strings.Contains(line, "server full") {
		t.Errorf("refusal line = %q, want it to name \"server full\"", line)
	}
	if got := sm.Refused.Load(); got != 1 {
		t.Errorf("refused = %d, want 1", got)
	}
	// The live session is unaffected, and closing it frees the slot.
	c.send("%echo still-here")
	if got := c.readLine(); got != "still-here" {
		t.Errorf("echo = %q, want \"still-here\"", got)
	}
	c.send("%quit")
	waitDrained(t, srv)
	again := dialServe(t, srv)
	again.send("%quit")
	again.conn.Close()
	waitDrained(t, srv)
}

// TestServeGracefulShutdown: Shutdown interrupts every live session,
// classifies the departures as shutdown, unblocks Serve, and leaves
// nothing live.
func TestServeGracefulShutdown(t *testing.T) {
	sm := obs.NewServer()
	srv, err := Listen("tcp:127.0.0.1:0", ServeConfig{
		Metrics: sm,
		Log:     &syncBuffer{},
		Grace:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()

	var conns []net.Conn
	for i := 0; i < 3; i++ {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, conn)
		attachClient(t, conn)
	}
	srv.Shutdown()
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("Serve returned %v, want nil after graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if n := srv.SessionsActive(); n != 0 {
		t.Errorf("SessionsActive = %d after shutdown, want 0", n)
	}
	if got := sm.SessionEnds.Get("shutdown"); got != 3 {
		t.Errorf("session_ends.shutdown = %d, want 3", got)
	}
	// New connections are now refused at the StartConn layer.
	if _, err := srv.StartConn(conns[0]); !errors.Is(err, ErrServerClosed) {
		t.Errorf("StartConn after shutdown = %v, want ErrServerClosed", err)
	}
	for _, conn := range conns {
		conn.Close()
	}
}

// TestServeUnixSocket: the unix transport speaks the same protocol,
// and closing the listener removes the socket file.
func TestServeUnixSocket(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "wafe.sock")
	srv, sm := startServerOn(t, "unix:"+sock, ServeConfig{})
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := attachClient(t, conn)
	c.send("%echo over-unix")
	if got := c.readLine(); got != "over-unix" {
		t.Errorf("echo = %q, want \"over-unix\"", got)
	}
	c.send("%quit")
	waitDrained(t, srv)
	if got := sm.SessionEnds.Get("quit"); got != 1 {
		t.Errorf("session_ends.quit = %d, want 1", got)
	}
}

// TestServeMetricsDumpKeyedBySession: the serve-mode metrics document
// has one object per session, keyed by id, plus the aggregate — for
// completed sessions at their final state.
func TestServeMetricsDumpKeyedBySession(t *testing.T) {
	srv, sm := startServer(t, ServeConfig{})
	ids := make([]string, 2)
	for i := range ids {
		c := dialServe(t, srv)
		ids[i] = c.id
		for j := 0; j <= i; j++ {
			c.send("%echo x")
			if got := c.readLine(); got != "x" {
				t.Fatalf("echo = %q", got)
			}
		}
		c.send("%not-a-command")
		c.send("%quit")
		c.conn.Close()
	}
	waitDrained(t, srv)

	var buf strings.Builder
	if err := sm.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Server   map[string]int64            `json:"server"`
		Sessions map[string]map[string]int64 `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("dump not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Server["server.sessions_total"] != 2 {
		t.Errorf("server.sessions_total = %d, want 2", doc.Server["server.sessions_total"])
	}
	for i, id := range ids {
		s, ok := doc.Sessions[id]
		if !ok {
			t.Fatalf("dump missing session %q; have %v", id, buf.String())
		}
		// echo commands (i+1), the failing one, and quit are all
		// command lines; exactly one eval error.
		wantLines := int64(i + 1 + 2)
		if s["frontend.command_lines"] != wantLines {
			t.Errorf("session %s command_lines = %d, want %d", id, s["frontend.command_lines"], wantLines)
		}
		if s["frontend.eval_errors"] != 1 {
			t.Errorf("session %s eval_errors = %d, want 1", id, s["frontend.eval_errors"])
		}
	}
	// The per-session labelled aggregates agree.
	for i, id := range ids {
		if got := sm.SessionLines.Get(id); got != int64(i+3) {
			t.Errorf("SessionLines[%s] = %d, want %d", id, got, i+3)
		}
		if got := sm.SessionErrors.Get(id); got != 1 {
			t.Errorf("SessionErrors[%s] = %d, want 1", id, got)
		}
	}
}
