package frontend

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// IPC selects the program-to-program transport. The paper's
// availability note: "The preferred program-to-program communication is
// done via socketpair. Support for PIPES ... is included for systems
// without the socketpair system call."
type IPC int

const (
	// IPCSocketpair is the preferred transport where available.
	IPCSocketpair IPC = iota
	// IPCPipe is the portable fallback.
	IPCPipe
)

// DefaultBackendGrace bounds each stage of the graceful-shutdown
// escalation (close stdin → SIGTERM → SIGKILL) when no --backend-grace
// was given.
const DefaultBackendGrace = 3 * time.Second

// Child is a spawned application program with its channels.
type Child struct {
	Cmd *exec.Cmd

	// Transport actually used (socketpair may fall back to pipes).
	Transport IPC

	massRead *os.File
	conn     *os.File  // parent end of a socketpair transport, if any
	stdin    io.Closer // parent's write end of the child's stdin (pipe transport)

	inOnce   sync.Once
	waitOnce sync.Once
	waitErr  error
}

// Spawn starts the application program as a subprocess of the frontend
// with the preferred transport, falling back to pipes.
func (f *Frontend) Spawn(program string, args []string) (*Child, error) {
	return f.SpawnIPC(program, args, IPCSocketpair)
}

// SpawnIPC starts the application program with an explicit transport
// and establishes the I/O channels of Figure 4: the child's stdout is
// read for command lines, its stdin receives event messages, stderr
// passes through, and fd 3 is the mass-transfer data channel.
func (f *Frontend) SpawnIPC(program string, args []string, ipc IPC) (*Child, error) {
	cmd := exec.Command(program, args...)
	cmd.Stderr = os.Stderr

	var appOut io.Reader // child stdout → frontend
	var appIn io.Writer  // frontend → child stdin
	var stdinCloser io.Closer
	var closeAfterStart []*os.File
	var parentConn *os.File
	used := IPCPipe

	if ipc == IPCSocketpair {
		if parentEnd, childEnd, err := socketpair(); err == nil {
			// One bidirectional socket carries both directions, dup'ed
			// onto the child's stdin and stdout like the original.
			cmd.Stdin = childEnd
			cmd.Stdout = childEnd
			appOut = parentEnd
			appIn = parentEnd
			parentConn = parentEnd
			closeAfterStart = append(closeAfterStart, childEnd)
			used = IPCSocketpair
		}
		// On failure fall through to pipes below.
	}
	if used == IPCPipe {
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, fmt.Errorf("wafe: stdin pipe: %v", err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, fmt.Errorf("wafe: stdout pipe: %v", err)
		}
		appIn = stdin
		appOut = stdout
		stdinCloser = stdin
	}

	massRead, massWrite, err := os.Pipe()
	if err != nil {
		return nil, fmt.Errorf("wafe: mass pipe: %v", err)
	}
	cmd.ExtraFiles = []*os.File{massWrite} // fd 3 in the child
	if err := cmd.Start(); err != nil {
		massRead.Close()
		massWrite.Close()
		for _, c := range closeAfterStart {
			c.Close()
		}
		return nil, fmt.Errorf("wafe: cannot start %q: %v", program, err)
	}
	// The parent keeps neither the child's socket end nor the mass
	// write end.
	massWrite.Close()
	for _, c := range closeAfterStart {
		c.Close()
	}
	f.AttachApp(appOut, appIn)
	f.AttachMass(massRead)
	f.SendInitCom()
	return &Child{Cmd: cmd, Transport: used, massRead: massRead, conn: parentConn, stdin: stdinCloser}, nil
}

// Wait reaps the child; safe to call any number of times and from
// multiple goroutines (the shutdown escalation and the supervisor both
// wait on the same child).
func (c *Child) Wait() error {
	c.waitOnce.Do(func() {
		c.waitErr = c.Cmd.Wait()
		c.massRead.Close()
		if c.conn != nil {
			c.conn.Close()
		}
	})
	return c.waitErr
}

// CloseInput closes the frontend→backend direction so a backend
// blocked reading its stdin sees EOF. On the socketpair transport only
// the write half is shut down — the read direction stays open so any
// final output from the backend is still collected. Without this,
// Child.Wait on a backend blocked in read(stdin) deadlocks forever:
// nothing else ever closes the parent's write end.
func (c *Child) CloseInput() {
	c.inOnce.Do(func() {
		if c.conn != nil {
			_ = closeWrite(c.conn)
			return
		}
		if c.stdin != nil {
			_ = c.stdin.Close()
		}
	})
}

// Signal sends sig to the child; a no-op when the process is gone.
func (c *Child) Signal(sig os.Signal) {
	if c.Cmd.Process != nil {
		_ = c.Cmd.Process.Signal(sig)
	}
}

// Kill terminates the child.
func (c *Child) Kill() {
	if c.Cmd.Process != nil {
		_ = c.Cmd.Process.Kill()
	}
}

// Shutdown tears the child down gracefully and always reaps it: close
// its stdin (a backend blocked in read sees EOF and can exit its read
// loop), wait up to grace, escalate to SIGTERM, wait up to grace
// again, then SIGKILL. It returns Wait's result, so it cannot deadlock
// on a backend that ignores both EOF and SIGTERM.
func (c *Child) Shutdown(grace time.Duration) error {
	if grace <= 0 {
		grace = DefaultBackendGrace
	}
	c.CloseInput()
	done := make(chan error, 1)
	go func() { done <- c.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(grace):
	}
	c.Signal(syscall.SIGTERM)
	select {
	case err := <-done:
		return err
	case <-time.After(grace):
	}
	c.Kill()
	return <-done
}
