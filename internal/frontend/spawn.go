package frontend

import (
	"fmt"
	"io"
	"os"
	"os/exec"
)

// IPC selects the program-to-program transport. The paper's
// availability note: "The preferred program-to-program communication is
// done via socketpair. Support for PIPES ... is included for systems
// without the socketpair system call."
type IPC int

const (
	// IPCSocketpair is the preferred transport where available.
	IPCSocketpair IPC = iota
	// IPCPipe is the portable fallback.
	IPCPipe
)

// Child is a spawned application program with its channels.
type Child struct {
	Cmd *exec.Cmd

	// Transport actually used (socketpair may fall back to pipes).
	Transport IPC

	massRead *os.File
	conn     io.Closer // parent end of a socketpair transport, if any
}

// Spawn starts the application program as a subprocess of the frontend
// with the preferred transport, falling back to pipes.
func (f *Frontend) Spawn(program string, args []string) (*Child, error) {
	return f.SpawnIPC(program, args, IPCSocketpair)
}

// SpawnIPC starts the application program with an explicit transport
// and establishes the I/O channels of Figure 4: the child's stdout is
// read for command lines, its stdin receives event messages, stderr
// passes through, and fd 3 is the mass-transfer data channel.
func (f *Frontend) SpawnIPC(program string, args []string, ipc IPC) (*Child, error) {
	cmd := exec.Command(program, args...)
	cmd.Stderr = os.Stderr

	var appOut io.Reader // child stdout → frontend
	var appIn io.Writer  // frontend → child stdin
	var closeAfterStart []*os.File
	var parentConn io.Closer
	used := IPCPipe

	if ipc == IPCSocketpair {
		if parentEnd, childEnd, err := socketpair(); err == nil {
			// One bidirectional socket carries both directions, dup'ed
			// onto the child's stdin and stdout like the original.
			cmd.Stdin = childEnd
			cmd.Stdout = childEnd
			appOut = parentEnd
			appIn = parentEnd
			parentConn = parentEnd
			closeAfterStart = append(closeAfterStart, childEnd)
			used = IPCSocketpair
		}
		// On failure fall through to pipes below.
	}
	if used == IPCPipe {
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, fmt.Errorf("wafe: stdin pipe: %v", err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, fmt.Errorf("wafe: stdout pipe: %v", err)
		}
		appIn = stdin
		appOut = stdout
	}

	massRead, massWrite, err := os.Pipe()
	if err != nil {
		return nil, fmt.Errorf("wafe: mass pipe: %v", err)
	}
	cmd.ExtraFiles = []*os.File{massWrite} // fd 3 in the child
	if err := cmd.Start(); err != nil {
		massRead.Close()
		massWrite.Close()
		for _, c := range closeAfterStart {
			c.Close()
		}
		return nil, fmt.Errorf("wafe: cannot start %q: %v", program, err)
	}
	// The parent keeps neither the child's socket end nor the mass
	// write end.
	massWrite.Close()
	for _, c := range closeAfterStart {
		c.Close()
	}
	f.AttachApp(appOut, appIn)
	f.AttachMass(massRead)
	f.SendInitCom()
	return &Child{Cmd: cmd, Transport: used, massRead: massRead, conn: parentConn}, nil
}

// Wait reaps the child.
func (c *Child) Wait() error {
	defer c.massRead.Close()
	if c.conn != nil {
		defer c.conn.Close()
	}
	return c.Cmd.Wait()
}

// Kill terminates the child.
func (c *Child) Kill() {
	if c.Cmd.Process != nil {
		_ = c.Cmd.Process.Kill()
	}
}
