package frontend

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"wafe/internal/core"
)

// syncBuffer is a goroutine-safe terminal sink.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// send writes a literal protocol line (avoiding Printf interpretation
// of % prefixes).
func send(w io.Writer, s string) { _, _ = io.WriteString(w, s) }

// sendf formats and writes a protocol line.
func sendf(w io.Writer, format string, args ...any) {
	_, _ = io.WriteString(w, fmt.Sprintf(format, args...))
}

// newPipedFrontend builds a frontend wired to OS pipes and returns the
// backend-side endpoints: appOut (the backend writes its stdout there)
// and appIn (the backend reads its stdin from there).
func newPipedFrontend(t *testing.T) (f *Frontend, backendStdout *os.File, backendStdin *bufio.Reader, term *syncBuffer, cleanup func()) {
	t.Helper()
	w := core.NewTest()
	term = &syncBuffer{}
	f = New(w, &Options{Prefix: '%', LineLimit: DefaultLineLimit}, term)
	outR, outW, err := os.Pipe() // backend stdout → frontend
	if err != nil {
		t.Fatal(err)
	}
	inR, inW, err := os.Pipe() // frontend → backend stdin
	if err != nil {
		t.Fatal(err)
	}
	f.AttachApp(outR, inW)
	cleanup = func() {
		outW.Close()
		outR.Close()
		inW.Close()
		inR.Close()
	}
	return f, outW, bufio.NewReader(inR), term, cleanup
}

// run starts the main loop and returns a stopper.
func run(t *testing.T, f *Frontend) (stop func()) {
	t.Helper()
	done := make(chan int, 1)
	go func() { done <- f.W.App.MainLoop() }()
	return func() {
		f.W.App.Post(func() { f.W.App.Quit(0) })
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("main loop did not stop")
		}
	}
}

// post runs fn on the event loop and waits for it.
func post(t *testing.T, f *Frontend, fn func()) {
	t.Helper()
	ch := make(chan struct{})
	f.W.App.Post(func() {
		fn()
		close(ch)
	})
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("posted function did not run")
	}
}

func readLine(t *testing.T, r *bufio.Reader) string {
	t.Helper()
	type res struct {
		s   string
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := r.ReadString('\n')
		ch <- res{s, err}
	}()
	select {
	case v := <-ch:
		if v.err != nil {
			t.Fatalf("read: %v", v.err)
		}
		return strings.TrimRight(v.s, "\n")
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for line from frontend")
		return ""
	}
}

// TestFrontendModeRoundTrip is experiment F4: the backend submits
// %-prefixed commands, Wafe builds the UI, a button press sends a
// message back to the backend.
func TestFrontendModeRoundTrip(t *testing.T) {
	f, backendOut, backendIn, term, cleanup := newPipedFrontend(t)
	defer cleanup()
	stop := run(t, f)
	defer stop()

	// Phase 2: the backend creates and configures the widget tree.
	send(backendOut, "%form top topLevel\n")
	send(backendOut, "%command hello top callback {echo pressed}\n")
	send(backendOut, "%realize\n")
	send(backendOut, "%echo ready\n")
	if got := readLine(t, backendIn); got != "ready" {
		t.Fatalf("handshake = %q", got)
	}

	// Phase 3: a user clicks; the callback writes to the backend.
	post(t, f, func() {
		wid := f.W.App.WidgetByName("hello")
		d := wid.Display()
		win, _ := d.Lookup(wid.Window())
		x, y := win.RootCoords(2, 2)
		d.WarpPointer(x, y)
		d.InjectButtonPress(1)
		d.InjectButtonRelease(1)
		f.W.App.Pump()
	})
	if got := readLine(t, backendIn); got != "pressed" {
		t.Fatalf("callback message = %q", got)
	}
	// Non-command lines pass through to the terminal.
	send(backendOut, "plain output line\n")
	post(t, f, func() {}) // drain input deliveries
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(term.String(), "plain output line") {
		if time.Now().After(deadline) {
			t.Fatalf("terminal = %q", term.String())
		}
		time.Sleep(time.Millisecond)
		post(t, f, func() {})
	}
	if f.CommandLines < 4 || f.PassedLines != 1 {
		t.Errorf("stats: commands=%d passed=%d", f.CommandLines, f.PassedLines)
	}
}

// TestClickAhead is experiment C3: clicks queue in the pipe while the
// backend is busy, none are lost.
func TestClickAhead(t *testing.T) {
	f, backendOut, backendIn, _, cleanup := newPipedFrontend(t)
	defer cleanup()
	stop := run(t, f)
	defer stop()
	send(backendOut, "%command b topLevel callback {echo click}\n%realize\n%echo ready\n")
	if got := readLine(t, backendIn); got != "ready" {
		t.Fatalf("handshake = %q", got)
	}
	// The backend is "busy": it reads nothing while we click 25 times.
	const clicks = 25
	post(t, f, func() {
		wid := f.W.App.WidgetByName("b")
		d := wid.Display()
		win, _ := d.Lookup(wid.Window())
		x, y := win.RootCoords(2, 2)
		d.WarpPointer(x, y)
		for i := 0; i < clicks; i++ {
			d.InjectButtonPress(1)
			d.InjectButtonRelease(1)
			f.W.App.Pump()
		}
	})
	// Now the backend wakes up and reads everything that buffered.
	for i := 0; i < clicks; i++ {
		if got := readLine(t, backendIn); got != "click" {
			t.Fatalf("click %d = %q", i, got)
		}
	}
}

// TestRefreshWhileBusy is experiment C4: expose events are serviced by
// the frontend although the backend never answers.
func TestRefreshWhileBusy(t *testing.T) {
	f, backendOut, backendIn, _, cleanup := newPipedFrontend(t)
	defer cleanup()
	stop := run(t, f)
	defer stop()
	send(backendOut, "%label l topLevel label {refresh me}\n%realize\n%echo ready\n")
	if got := readLine(t, backendIn); got != "ready" {
		t.Fatalf("handshake = %q", got)
	}
	// Backend goes silent. Expose the label; the frontend redraws on
	// its own.
	var redrawn bool
	post(t, f, func() {
		wid := f.W.App.WidgetByName("l")
		d := wid.Display()
		d.ClearWindow(wid.Window()) // wipe the display list
		d.InjectExpose(wid.Window())
		f.W.App.Pump()
		for _, s := range d.StringsDrawn(wid.Window()) {
			if s == "refresh me" {
				redrawn = true
			}
		}
	})
	if !redrawn {
		t.Error("frontend did not refresh while backend busy")
	}
}

// TestMassTransfer is experiment C5: the paper's getChannel /
// setCommunicationVariable mechanism with a 100 000 byte transfer.
func TestMassTransfer(t *testing.T) {
	f, backendOut, backendIn, _, cleanup := newPipedFrontend(t)
	defer cleanup()
	massR, massW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer massR.Close()
	defer massW.Close()
	f.AttachMass(massR)
	stop := run(t, f)
	defer stop()

	send(backendOut, "%asciiText text topLevel editType edit\n%realize\n")
	send(backendOut, "%echo listening on [getChannel]\n")
	if got := readLine(t, backendIn); got != "listening on 3" {
		t.Fatalf("getChannel = %q", got)
	}
	const size = 100000
	sendf(backendOut, "%%setCommunicationVariable C %d {sV text string $C; echo massdone}\n", size)
	send(backendOut, "%echo armed\n")
	if got := readLine(t, backendIn); got != "armed" {
		t.Fatalf("arm = %q", got)
	}
	payload := strings.Repeat("abcdefghij", size/10)
	go func() {
		massW.Write([]byte(payload))
	}()
	if got := readLine(t, backendIn); got != "massdone" {
		t.Fatalf("completion = %q", got)
	}
	var got string
	post(t, f, func() {
		got = f.W.App.WidgetByName("text").Str("string")
	})
	if len(got) != size || got != payload {
		t.Errorf("transferred %d bytes, want %d (content match: %v)", len(got), size, got == payload)
	}
}

// TestCommandLineLimit is experiment C8: lines over the configured
// limit (default 64 KB) are rejected, ones under it work.
func TestCommandLineLimit(t *testing.T) {
	w := core.NewTest()
	term := &syncBuffer{}
	f := New(w, &Options{Prefix: '%', LineLimit: 1000}, term)
	longLabel := strings.Repeat("x", 800)
	f.HandleAppLine("%label ok topLevel label " + longLabel)
	if f.OverlongLines != 0 || w.App.WidgetByName("ok") == nil {
		t.Fatalf("under-limit line rejected (overlong=%d)", f.OverlongLines)
	}
	f.HandleAppLine("%label bad topLevel label " + strings.Repeat("y", 2000))
	if f.OverlongLines != 1 {
		t.Errorf("overlong not detected")
	}
	if w.App.WidgetByName("bad") != nil {
		t.Error("overlong command executed")
	}
	if !strings.Contains(term.String(), "exceeds 1000 bytes") {
		t.Errorf("terminal = %q", term.String())
	}
}

func TestCommandErrorGoesToTerminal(t *testing.T) {
	w := core.NewTest()
	term := &syncBuffer{}
	f := New(w, nil, term)
	f.HandleAppLine("%nosuchcommand at all")
	if !strings.Contains(term.String(), "error in command") {
		t.Errorf("terminal = %q", term.String())
	}
}

// TestArgvSplit is experiment C9: the three argument classes.
func TestArgvSplit(t *testing.T) {
	o, err := ParseArgs("wafe", []string{"--app", "backend", "-display", "host:0",
		"-xrm", "*InitCom: startup", "backendArg1", "backendArg2"})
	if err != nil {
		t.Fatal(err)
	}
	if o.Mode != ModeFrontend || o.AppProgram != "backend" {
		t.Errorf("frontend opts: %+v", o)
	}
	if o.DisplayName != "host:0" || len(o.XrmEntries) != 1 {
		t.Errorf("Xt opts: %+v", o)
	}
	if strings.Join(o.AppArgs, ",") != "backendArg1,backendArg2" {
		t.Errorf("app args: %v", o.AppArgs)
	}
	// File mode via the #! form: wafe --f script.
	o, err = ParseArgs("wafe", []string{"--f", "myscript"})
	if err != nil || o.Mode != ModeFile || o.ScriptFile != "myscript" {
		t.Errorf("file mode: %+v, %v", o, err)
	}
	// Interactive is the default.
	o, _ = ParseArgs("wafe", nil)
	if o.Mode != ModeInteractive {
		t.Errorf("default mode = %v", o.Mode)
	}
	// Errors.
	if _, err := ParseArgs("wafe", []string{"--nonsense"}); err == nil {
		t.Error("unknown frontend option accepted")
	}
	if _, err := ParseArgs("wafe", []string{"--f"}); err == nil {
		t.Error("file mode without script accepted")
	}
	if _, err := ParseArgs("wafe", []string{"--linelimit", "zero"}); err == nil {
		t.Error("bad linelimit accepted")
	}
}

// TestSymlinkDispatch: "ln -s wafe xwafeApp" runs wafeApp.
func TestSymlinkDispatch(t *testing.T) {
	if app, ok := SymlinkApp("xwafeftp"); !ok || app != "wafeftp" {
		t.Errorf("xwafeftp → %q/%v", app, ok)
	}
	if _, ok := SymlinkApp("wafe"); ok {
		t.Error("plain wafe must not dispatch")
	}
	if _, ok := SymlinkApp("mofe"); ok {
		t.Error("mofe must not dispatch")
	}
	o, err := ParseArgs("/usr/bin/X11/xwafemail", nil)
	if err != nil || o.Mode != ModeFrontend || o.AppProgram != "wafemail" {
		t.Errorf("argv0 dispatch: %+v, %v", o, err)
	}
}

// TestPrimeFactorsPhases is experiment F5: the paper's Perl demo
// simulated over the real pipe protocol — three phases: spawn, widget
// tree, read loop.
func TestPrimeFactorsPhases(t *testing.T) {
	f, backendOut, backendIn, _, cleanup := newPipedFrontend(t)
	defer cleanup()
	stop := run(t, f)
	defer stop()

	// Phase 2: the backend sends the exact widget tree of the paper's
	// Perl program.
	script := []string{
		"%form top topLevel",
		"%asciiText input top editType edit width 200",
		`%action input override {<Key>Return: exec(echo [gV input string])}`,
		"%label result top label {} width 200 fromVert input",
		"%command quitBtn top fromVert result callback quit",
		"%label info top fromVert result fromHoriz quitBtn label {} borderWidth 0 width 150",
		"%realize",
		"%echo phase2-done",
	}
	for _, l := range script {
		send(backendOut, l+"\n")
	}
	if got := readLine(t, backendIn); got != "phase2-done" {
		t.Fatalf("phase 2 = %q", got)
	}

	// Phase 3: the user types 360 and presses Return.
	post(t, f, func() {
		wid := f.W.App.WidgetByName("input")
		d := wid.Display()
		d.SetInputFocus(wid.Window())
		_ = d.TypeString("360\r")
		f.W.App.Pump()
	})
	// The frontend sends the input line to the backend.
	if got := readLine(t, backendIn); got != "360" {
		t.Fatalf("read loop received %q", got)
	}
	// The backend computes 360 = 2*2*2*3*3*5 and updates the result
	// label, like the Perl program does.
	send(backendOut, "%sV info label thinking...\n")
	send(backendOut, "%sV result label {2*2*2*3*3*5}\n")
	send(backendOut, "%sV info label {0 seconds}\n")
	send(backendOut, "%echo updated\n")
	if got := readLine(t, backendIn); got != "updated" {
		t.Fatalf("update ack = %q", got)
	}
	var result, info string
	post(t, f, func() {
		result = f.W.App.WidgetByName("result").Str("label")
		info = f.W.App.WidgetByName("info").Str("label")
	})
	if result != "2*2*2*3*3*5" {
		t.Errorf("result label = %q", result)
	}
	if info != "0 seconds" {
		t.Errorf("info label = %q", info)
	}
}

// TestBackendEOFQuitsFrontend: when the application program exits, the
// frontend's main loop terminates.
func TestBackendEOFQuitsFrontend(t *testing.T) {
	w := core.NewTest()
	term := &syncBuffer{}
	f := New(w, nil, term)
	outR, outW, _ := os.Pipe()
	inR, inW, _ := os.Pipe()
	defer inR.Close()
	f.AttachApp(outR, inW)
	done := make(chan int, 1)
	go func() { done <- w.App.MainLoop() }()
	send(outW, "%echo hi\n")
	outW.Close() // backend exits
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("frontend did not quit on backend EOF")
	}
}

func TestInteractiveMode(t *testing.T) {
	w := core.NewTest()
	term := &syncBuffer{}
	f := New(w, nil, term)
	w.Interp.Stdout = func(line string) { fmt.Fprintln(term, line) }
	input := `label l topLevel
echo [getResourceList l retVal]
set x {
multi line
}
echo done
quit
`
	prompts := 0
	if err := f.RunInteractive(strings.NewReader(input), func() { prompts++ }); err != nil {
		t.Fatal(err)
	}
	out := term.String()
	if !strings.Contains(out, "42") || !strings.Contains(out, "done") {
		t.Errorf("interactive output = %q", out)
	}
	if !w.QuitRequested() {
		t.Error("quit not processed")
	}
	if prompts < 5 {
		t.Errorf("prompts = %d", prompts)
	}
}

func TestFileMode(t *testing.T) {
	w := core.NewTest()
	term := &syncBuffer{}
	f := New(w, &Options{Mode: ModeFile}, term)
	w.Interp.Stdout = func(line string) { fmt.Fprintln(term, line) }
	// The paper's Figure 4 file-mode script.
	script := `command hello topLevel \
  label "Wafe new World" \
  callback "echo Goodbye; quit"
realize
`
	if err := f.RunScript(script); err != nil {
		t.Fatal(err)
	}
	wid := w.App.WidgetByName("hello")
	if wid == nil || !wid.IsRealized() {
		t.Fatal("hello widget missing")
	}
	if got, _ := wid.GetValue("label"); got != "Wafe new World" {
		t.Errorf("label = %q", got)
	}
	// Click it: Goodbye + quit.
	d := wid.Display()
	win, _ := d.Lookup(wid.Window())
	x, y := win.RootCoords(2, 2)
	d.WarpPointer(x, y)
	d.InjectButtonPress(1)
	d.InjectButtonRelease(1)
	w.App.Pump()
	if !strings.Contains(term.String(), "Goodbye") || !w.QuitRequested() {
		t.Errorf("terminal=%q quit=%v", term.String(), w.QuitRequested())
	}
}

// TestSendInitCom: the InitCom resource is transmitted after the fork.
func TestSendInitCom(t *testing.T) {
	w := core.NewTest()
	term := &syncBuffer{}
	f := New(w, nil, term)
	_ = w.App.DB.Enter("*InitCom", "[myapp], widget_tree, read_loop.")
	outR, outW, _ := os.Pipe()
	inR, inW, _ := os.Pipe()
	defer func() { outR.Close(); outW.Close(); inR.Close(); inW.Close() }()
	f.AttachApp(outR, inW)
	f.SendInitCom()
	br := bufio.NewReader(inR)
	line, err := br.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "[myapp], widget_tree, read_loop." {
		t.Errorf("InitCom = %q, %v", line, err)
	}
}
