package frontend

import (
	"bufio"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"wafe/internal/core"
	"wafe/internal/frontend/faultio"
)

// TestOverlongLineResync: a line exceeding the reader budget must be
// reported and skipped, with the pipe loop resynchronizing at the next
// newline. The bufio.Scanner-based loop this replaces hit ErrTooLong
// instead and silently quit, dropping every later command.
func TestOverlongLineResync(t *testing.T) {
	w := core.NewTest()
	term := &syncBuffer{}
	f := New(w, &Options{Prefix: '%', LineLimit: 100}, term)
	outR, outW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	inR, inW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { outW.Close(); outR.Close(); inW.Close(); inR.Close() }()
	f.AttachApp(outR, inW)
	stop := run(t, f)
	defer stop()

	send(outW, strings.Repeat("x", 10_000)+"\n")
	send(outW, "%echo alive\n")

	br := bufio.NewReader(inR)
	if got := readLine(t, br); got != "alive" {
		t.Errorf("after overlong line got %q, want \"alive\"", got)
	}
	var overlong int
	post(t, f, func() { overlong = f.OverlongLines })
	if overlong != 1 {
		t.Errorf("OverlongLines = %d, want 1", overlong)
	}
	if !strings.Contains(term.String(), "exceeds 100 bytes") {
		t.Errorf("overlong line not reported; terminal:\n%s", term.String())
	}
}

// TestReadErrorReported: a failing command pipe is an error, not a
// clean EOF — it must be reported on the terminal and counted. The
// scanner loop swallowed sc.Err() and quit as if the backend had
// exited normally.
func TestReadErrorReported(t *testing.T) {
	w := core.NewTest()
	m := w.EnableObservability()
	term := &syncBuffer{}
	f := New(w, &Options{Prefix: '%', LineLimit: DefaultLineLimit}, term)
	appIn := &syncBuffer{}
	r := &faultio.FlakyReader{
		R:   strings.NewReader("%echo before\n%echo never-delivered\n"),
		N:   len("%echo before\n"),
		Err: errors.New("injected pipe failure"),
	}
	f.AttachApp(r, appIn)
	done := make(chan int, 1)
	go func() { done <- f.W.App.MainLoop() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("main loop did not quit on the read error")
	}
	// The line before the failure point was still handled.
	if !strings.Contains(appIn.String(), "before") {
		t.Errorf("line before the failure lost; backend stdin: %q", appIn.String())
	}
	if strings.Contains(appIn.String(), "never-delivered") {
		t.Errorf("line after the failure must not arrive; backend stdin: %q", appIn.String())
	}
	if f.ReadErrors != 1 {
		t.Errorf("ReadErrors = %d, want 1", f.ReadErrors)
	}
	if got := m.Frontend.ReadErrors.Load(); got != 1 {
		t.Errorf("frontend.read_errors = %d, want 1", got)
	}
	if !strings.Contains(term.String(), "read error on command pipe") ||
		!strings.Contains(term.String(), "injected pipe failure") {
		t.Errorf("read error not reported; terminal:\n%s", term.String())
	}
}

// TestReadCommandLinesFragmented: line assembly must be independent of
// how the kernel fragments reads.
func TestReadCommandLinesFragmented(t *testing.T) {
	w := core.NewTest()
	term := &syncBuffer{}
	f := New(w, &Options{Prefix: '%', LineLimit: DefaultLineLimit}, term)
	appIn := &syncBuffer{}
	r := &faultio.ShortReader{R: strings.NewReader("%echo one\npassthrough line\n%echo two\n"), Max: 3}
	f.AttachApp(r, appIn)
	done := make(chan int, 1)
	go func() { done <- f.W.App.MainLoop() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("main loop did not quit on EOF")
	}
	if got := appIn.String(); got != "one\ntwo\n" {
		t.Errorf("backend stdin = %q, want \"one\\ntwo\\n\"", got)
	}
	if !strings.Contains(term.String(), "passthrough line") {
		t.Errorf("passthrough lost; terminal:\n%s", term.String())
	}
}

// TestBalancedTrailingBackslash: a trailing backslash is a Tcl line
// continuation, so the command is incomplete — balanced() treating it
// as complete made interactive mode evaluate half a command.
func TestBalancedTrailingBackslash(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{`set x \`, false},      // continuation: wait for more
		{`set x \\`, true},      // escaped backslash: complete
		{"set x \\\nabc", true}, // continuation already joined
		{`set x {a b}`, true},   //
		{`set x {a \`, false},   // open brace dominates anyway
		{`set x "a \`, false},   // open quote dominates anyway
		{`set x \;`, true},      // escaped separator: complete
	}
	for _, c := range cases {
		if got := balanced(c.in); got != c.want {
			t.Errorf("balanced(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestInteractiveLineContinuation: a backslash-newline split command is
// accumulated across prompts and evaluated once, whole.
func TestInteractiveLineContinuation(t *testing.T) {
	w := core.NewTest()
	term := &syncBuffer{}
	f := New(w, &Options{Prefix: '%', LineLimit: DefaultLineLimit}, term)
	in := strings.NewReader("set \\\nx 5\nquit\n")
	if err := f.RunInteractive(in, nil); err != nil {
		t.Fatal(err)
	}
	if v, err := w.Eval("set x"); err != nil || v != "5" {
		t.Errorf("x = %q, %v; want \"5\" (continuation evaluated as one command)", v, err)
	}
	if strings.Contains(term.String(), "error:") {
		t.Errorf("continuation halves evaluated separately; terminal:\n%s", term.String())
	}
}
