package frontend

import (
	"fmt"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"wafe/internal/core"
)

// BackendState is the lifecycle state the `backend` command reports.
type BackendState string

const (
	// BackendRunning: the backend process is alive and attached.
	BackendRunning BackendState = "running"
	// BackendBackoff: the backend is gone and a respawn is scheduled.
	BackendBackoff BackendState = "backoff"
	// BackendExited: the backend is gone and will not be restarted
	// (clean exit, or the restart budget is exhausted).
	BackendExited BackendState = "exited"
	// BackendStopped: the frontend initiated shutdown.
	BackendStopped BackendState = "stopped"
)

// Exit classes for metrics (frontend.backend_exits.<class>) and the %r
// percent code.
const (
	ExitClean    = "clean"   // exit status 0 after EOF
	ExitCrash    = "crash"   // non-zero status or killed by a signal
	ExitReadErr  = "readerr" // the command pipe failed mid-session
	ExitSpawnErr = "spawn"   // a respawn attempt could not start
)

// RestartPolicy configures the Supervisor. The zero value never
// restarts and uses the default timing everywhere.
type RestartPolicy struct {
	// MaxRestarts bounds consecutive restarts after crashes and pipe
	// errors; 0 disables restarting (the exit callbacks still fire).
	MaxRestarts int
	// Backoff is the delay before the first respawn; it doubles per
	// consecutive restart. Default 250ms.
	Backoff time.Duration
	// BackoffCap bounds the exponential delay. Default 5s.
	BackoffCap time.Duration
	// Stability resets the consecutive-restart counter: a backend that
	// lived at least this long crashed "fresh", not in a loop.
	// Default 10s.
	Stability time.Duration
	// Grace bounds each stage of the shutdown escalation
	// (close stdin → SIGTERM → SIGKILL). Default DefaultBackendGrace.
	Grace time.Duration
}

func (p *RestartPolicy) withDefaults() RestartPolicy {
	q := *p
	if q.Backoff <= 0 {
		q.Backoff = 250 * time.Millisecond
	}
	if q.BackoffCap <= 0 {
		q.BackoffCap = 5 * time.Second
	}
	if q.Stability <= 0 {
		q.Stability = 10 * time.Second
	}
	if q.Grace <= 0 {
		q.Grace = DefaultBackendGrace
	}
	return q
}

// backoffFor returns the exponential delay before restart attempt n
// (0-based), capped.
func (p *RestartPolicy) backoffFor(n int) time.Duration {
	d := p.Backoff
	for i := 0; i < n && d < p.BackoffCap; i++ {
		d *= 2
	}
	if d > p.BackoffCap {
		d = p.BackoffCap
	}
	return d
}

// Supervisor owns the backend Child and its lifecycle: it
// distinguishes clean exit / crash / read error, applies the restart
// policy (bounded, exponentially backed off, InitCom re-sent on every
// respawn), runs the resource-configurable onBackendExit /
// onBackendRestart scripts, and exposes state to the `backend` Tcl
// command and the frontend.* metrics.
//
// All state transitions happen on the event-loop goroutine (input
// deliveries, timers and posted closures); the mutex only guards the
// snapshot reads done by Report, tests, and the shutdown path.
type Supervisor struct {
	f       *Frontend
	program string
	args    []string
	ipc     IPC
	policy  RestartPolicy

	mu          sync.Mutex
	child       *Child
	state       BackendState
	pid         int
	restarts    int // total respawns performed
	consecutive int // respawns since the last stable run
	started     time.Time
	uptime      time.Duration // last completed backend life
	lastClass   string
	lastStatus  int
	stopping    bool
}

// Supervise spawns the backend under lifecycle supervision. The
// returned Supervisor is also wired into the interpreter: the
// `backend` command reports its state, and the resources
// onBackendExit / onBackendRestart name scripts run on those
// transitions (see docs/protocol.md).
func (f *Frontend) Supervise(program string, args []string, policy RestartPolicy) (*Supervisor, error) {
	return f.SuperviseIPC(program, args, IPCSocketpair, policy)
}

// SuperviseIPC is Supervise with an explicit transport.
func (f *Frontend) SuperviseIPC(program string, args []string, ipc IPC, policy RestartPolicy) (*Supervisor, error) {
	s := &Supervisor{
		f:       f,
		program: program,
		args:    args,
		ipc:     ipc,
		policy:  policy.withDefaults(),
		state:   BackendExited,
	}
	f.onBackendGone = s.backendGone
	if err := s.spawn(); err != nil {
		f.onBackendGone = nil
		return nil, err
	}
	f.W.BackendReport = s.Report
	return s, nil
}

// spawn starts a backend incarnation and attaches it.
func (s *Supervisor) spawn() error {
	child, err := s.f.SpawnIPC(s.program, s.args, s.ipc)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.child = child
	s.state = BackendRunning
	s.started = time.Now()
	s.pid = 0
	if child.Cmd.Process != nil {
		s.pid = child.Cmd.Process.Pid
	}
	s.mu.Unlock()
	return nil
}

// backendGone runs on the event-loop goroutine when the command pipe
// ends (EOF or read error). Reaping may block on a child that closed
// its stdout but lingers, so the wait-and-classify step runs off-loop
// (bounded by the grace escalation) and posts the decision back.
func (s *Supervisor) backendGone(readErr error) {
	s.mu.Lock()
	child := s.child
	started := s.started
	s.mu.Unlock()
	if child == nil {
		return
	}
	go func() {
		waitErr := child.Shutdown(s.policy.Grace)
		class, status := classifyExit(waitErr, readErr)
		uptime := time.Since(started)
		s.f.W.App.Post(func() { s.afterExit(class, status, uptime) })
	}()
}

// classifyExit folds the pipe error and the process status into an
// exit class: a read error dominates (the process status is collateral
// of the teardown), then the wait result decides clean vs crash.
func classifyExit(waitErr, readErr error) (class string, status int) {
	status = 0
	if ee, ok := waitErr.(*exec.ExitError); ok {
		status = ee.ExitCode()
	}
	switch {
	case readErr != nil:
		return ExitReadErr, status
	case waitErr != nil:
		return ExitCrash, status
	}
	return ExitClean, 0
}

// afterExit applies the restart policy; on the event-loop goroutine.
func (s *Supervisor) afterExit(class string, status int, uptime time.Duration) {
	s.mu.Lock()
	s.child = nil
	s.lastClass = class
	s.lastStatus = status
	s.uptime = uptime
	if uptime >= s.policy.Stability {
		s.consecutive = 0
	}
	stopping := s.stopping
	restartsLeft := s.consecutive < s.policy.MaxRestarts
	attempt := s.consecutive
	s.mu.Unlock()

	if m := s.f.W.Metrics; m != nil {
		m.Frontend.BackendExits.Inc(class)
		m.Frontend.BackendUptime.Observe(uptime.Milliseconds())
		// Lifecycle transitions are root spans: afterExit runs on the
		// loop goroutine with no protocol line open.
		m.Trace.Instant("lifecycle", "backend_exit "+class)
		if fr := m.Flight; fr != nil && class != ExitClean {
			_, _ = fr.Trip("backend_"+class, m.Trace.Session(),
				fmt.Sprintf("backend %s exited %s (status %d) after %v", s.program, class, status, uptime),
				m, &m.Trace)
		}
	}
	if stopping {
		s.setState(BackendStopped)
		return
	}
	if class == ExitClean {
		// The paper's contract: the backend exited, the frontend quits
		// too — unless an onBackendExit script takes over (a UI can
		// grey itself out instead of vanishing, then quit on its own).
		s.setState(BackendExited)
		if !s.fireCallback("onBackendExit", "OnBackendExit", class, status, uptime) {
			s.f.W.App.Quit(s.f.W.ExitCode())
		}
		return
	}
	fmt.Fprintf(s.f.Terminal, "wafe: backend %s (%s, status %d) after %v\n",
		s.program, class, status, uptime.Round(time.Millisecond))
	if !restartsLeft {
		s.setState(BackendExited)
		if s.policy.MaxRestarts > 0 {
			fmt.Fprintf(s.f.Terminal, "wafe: giving up on backend after %d restarts\n", s.restarts)
		}
		if !s.fireCallback("onBackendExit", "OnBackendExit", class, status, uptime) {
			code := s.f.W.ExitCode()
			if code == 0 {
				// A crashed backend must not look like success.
				code = 1
			}
			s.f.W.App.Quit(code)
		}
		return
	}
	delay := s.policy.backoffFor(attempt)
	s.setState(BackendBackoff)
	fmt.Fprintf(s.f.Terminal, "wafe: restarting backend in %v (attempt %d/%d)\n",
		delay.Round(time.Millisecond), attempt+1, s.policy.MaxRestarts)
	s.f.W.App.AddTimeout(delay, s.respawn)
}

// respawn runs as a timer callback on the event-loop goroutine.
func (s *Supervisor) respawn() {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return
	}
	s.consecutive++
	s.restarts++
	n := s.restarts
	lastClass, lastStatus := s.lastClass, s.lastStatus
	s.mu.Unlock()

	if err := s.spawn(); err != nil {
		fmt.Fprintf(s.f.Terminal, "wafe: backend respawn failed: %v\n", err)
		// Treat the failed attempt like a crash with zero uptime: it
		// burns restart budget and backs off further.
		s.afterExit(ExitSpawnErr, 0, 0)
		return
	}
	if m := s.f.W.Metrics; m != nil {
		m.Frontend.BackendRestarts.Inc()
		m.Trace.Instant("lifecycle", "backend_restart")
	}
	fmt.Fprintf(s.f.Terminal, "wafe: backend restarted (pid %d, restart %d)\n", s.Pid(), n)
	s.fireCallback("onBackendRestart", "OnBackendRestart", lastClass, lastStatus, 0)
}

// fireCallback looks up the resource-configured script (like InitCom:
// <appName>.<name> / *<Class>), expands the backend percent codes and
// evaluates it. Reports whether a script was configured.
func (s *Supervisor) fireCallback(name, class string, exitClass string, status int, uptime time.Duration) bool {
	app := s.f.W.App
	script, ok := app.DB.Query([]string{app.Name}, []string{app.ClassName}, name, class)
	if !ok || script == "" {
		return false
	}
	expanded := core.ExpandBackendPercent(script, map[byte]string{
		'p': strconv.Itoa(s.Pid()),
		'n': strconv.Itoa(s.Restarts()),
		'r': exitClass,
		'x': strconv.Itoa(status),
		'u': strconv.FormatInt(uptime.Milliseconds(), 10),
	})
	if _, err := s.f.W.Eval(expanded); err != nil {
		fmt.Fprintf(s.f.Terminal, "wafe: %s script: %v\n", name, err)
	}
	return true
}

// Shutdown stops supervision and tears the backend down via the
// graceful escalation path (close stdin → SIGTERM → SIGKILL). Safe to
// call with the backend already gone.
func (s *Supervisor) Shutdown() error {
	s.mu.Lock()
	s.stopping = true
	s.state = BackendStopped
	child := s.child
	s.mu.Unlock()
	if child == nil {
		return nil
	}
	return child.Shutdown(s.policy.Grace)
}

func (s *Supervisor) setState(st BackendState) {
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
}

// State returns the current lifecycle state.
func (s *Supervisor) State() BackendState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Child returns the current backend child, or nil between incarnations.
func (s *Supervisor) Child() *Child {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.child
}

// Pid returns the pid of the current (or most recent) backend.
func (s *Supervisor) Pid() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pid
}

// Restarts returns the total number of respawns performed.
func (s *Supervisor) Restarts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts
}

// LastExitClass returns the classification of the most recent backend
// departure ("" while the first incarnation runs).
func (s *Supervisor) LastExitClass() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastClass
}

// Report renders the lifecycle state for the `backend` Tcl command as
// a flat name/value list.
func (s *Supervisor) Report() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	up := s.uptime
	if s.state == BackendRunning {
		up = time.Since(s.started)
	}
	return []string{
		"state", string(s.state),
		"pid", strconv.Itoa(s.pid),
		"restarts", strconv.Itoa(s.restarts),
		"lastExitClass", s.lastClass,
		"lastExitStatus", strconv.Itoa(s.lastStatus),
		"uptimeMs", strconv.FormatInt(up.Milliseconds(), 10),
	}
}
