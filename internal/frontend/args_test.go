package frontend

import (
	"strings"
	"testing"

	"wafe/internal/core"
)

func TestParseArgsPrefixAndLimit(t *testing.T) {
	o, err := ParseArgs("wafe", []string{"--prefix", "@", "--linelimit", "128", "--app", "backend"})
	if err != nil {
		t.Fatal(err)
	}
	if o.Prefix != '@' || o.LineLimit != 128 {
		t.Errorf("opts = %+v", o)
	}
	if _, err := ParseArgs("wafe", []string{"--prefix", "long"}); err == nil {
		t.Error("multi-char prefix accepted")
	}
	if _, err := ParseArgs("wafe", []string{"--app"}); err == nil {
		t.Error("--app without program accepted")
	}
	if _, err := ParseArgs("wafe", []string{"-display"}); err == nil {
		t.Error("-display without argument accepted")
	}
	if _, err := ParseArgs("wafe", []string{"-xrm"}); err == nil {
		t.Error("-xrm without argument accepted")
	}
	if _, err := ParseArgs("wafe", []string{"--resources"}); err == nil {
		t.Error("--resources without file accepted")
	}
}

func TestParseArgsFileModeBareScript(t *testing.T) {
	// "wafe --f" with the script as a later bare argument (the #! form
	// passes the script name after the option string).
	o, err := ParseArgs("wafe", []string{"--f", "/tmp/s.wafe"})
	if err != nil || o.ScriptFile != "/tmp/s.wafe" {
		t.Errorf("opts=%+v err=%v", o, err)
	}
	// Script plus backend-style extra args error out of scope: they
	// become app args, which file mode ignores.
	o, err = ParseArgs("wafe", []string{"--f", "s.wafe", "extra"})
	if err != nil || o.ScriptFile != "s.wafe" || len(o.AppArgs) != 1 {
		t.Errorf("opts=%+v err=%v", o, err)
	}
}

func TestModeString(t *testing.T) {
	if ModeInteractive.String() != "interactive" || ModeFile.String() != "file" ||
		ModeFrontend.String() != "frontend" || ModeServe.String() != "serve" ||
		Mode(9).String() != "unknown" {
		t.Error("mode strings wrong")
	}
}

func TestParseArgsServeMode(t *testing.T) {
	o, err := ParseArgs("wafe", []string{"--serve", "tcp:127.0.0.1:7012", "--max-sessions", "64"})
	if err != nil {
		t.Fatal(err)
	}
	if o.Mode != ModeServe || o.ServeAddr != "tcp:127.0.0.1:7012" || o.MaxSessions != 64 {
		t.Errorf("opts = %+v", o)
	}
	// Serve mode composes with the observability and protocol flags.
	o, err = ParseArgs("wafe", []string{"--serve", "unix:/tmp/w.sock", "--metrics-dump", "-", "--prefix", "@"})
	if err != nil || o.Mode != ModeServe || o.MetricsDump != "-" || o.Prefix != '@' {
		t.Errorf("opts=%+v err=%v", o, err)
	}
	if _, err := ParseArgs("wafe", []string{"--serve"}); err == nil {
		t.Error("--serve without address accepted")
	}
	if _, err := ParseArgs("wafe", []string{"--serve", "noaddr"}); err == nil {
		t.Error("--serve with an unresolvable address accepted")
	}
	if _, err := ParseArgs("wafe", []string{"--max-sessions", "0"}); err == nil {
		t.Error("--max-sessions 0 accepted")
	}
	if _, err := ParseArgs("wafe", []string{"--max-sessions"}); err == nil {
		t.Error("--max-sessions without count accepted")
	}
}

func TestCustomPrefixProtocol(t *testing.T) {
	// The command prefix character is configurable (the paper: "If the
	// line received by Wafe starts with a certain character (such as
	// %)").
	w := newTestWafe(t)
	var sink strings.Builder
	f := New(w, &Options{Prefix: '@', LineLimit: 1024}, &sink)
	f.HandleAppLine("@label l topLevel")
	if w.App.WidgetByName("l") == nil {
		t.Fatal("@-prefixed command not interpreted")
	}
	f.HandleAppLine("%label notacmd topLevel")
	if w.App.WidgetByName("notacmd") != nil {
		t.Error("%-line interpreted despite @ prefix")
	}
	if !strings.Contains(sink.String(), "%label notacmd") {
		t.Error("non-command line not passed through")
	}
}

func TestBalancedHelper(t *testing.T) {
	cases := map[string]bool{
		"set x 1":         true,
		"proc f {} {":     false,
		"proc f {} {\n} ": true,
		"set x \\{":       true, // escaped brace
		"if {a} {b} ":     true,
		"[llength {a b}]": true,
		"[open":           false,
	}
	for in, want := range cases {
		if got := balanced(in); got != want {
			t.Errorf("balanced(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestInteractiveContinuation(t *testing.T) {
	w := newTestWafe(t)
	var sink strings.Builder
	f := New(w, nil, &sink)
	w.Interp.Stdout = func(line string) { sink.WriteString(line + "\n") }
	input := `proc greet {who} {
	return "hi $who"
}
echo [greet world]
`
	if err := f.RunInteractive(strings.NewReader(input), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sink.String(), "hi world") {
		t.Errorf("continuation failed: %q", sink.String())
	}
}

func TestInteractiveErrorReported(t *testing.T) {
	w := newTestWafe(t)
	var sink strings.Builder
	f := New(w, nil, &sink)
	if err := f.RunInteractive(strings.NewReader("nosuchcmd\n"), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sink.String(), "error:") {
		t.Errorf("error not reported: %q", sink.String())
	}
}

func TestInteractiveResultEchoed(t *testing.T) {
	w := newTestWafe(t)
	var sink strings.Builder
	f := New(w, nil, &sink)
	if err := f.RunInteractive(strings.NewReader("expr 6*7\n"), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sink.String(), "42") {
		t.Errorf("result not echoed: %q", sink.String())
	}
}

func TestFeedMassWithoutConfiguration(t *testing.T) {
	w := newTestWafe(t)
	var sink strings.Builder
	f := New(w, nil, &sink)
	f.FeedMass("data with no setCommunicationVariable") // must not panic
	if f.massLimit != 0 {
		t.Error("unexpected mass config")
	}
}

func TestMassTransferMultipleRounds(t *testing.T) {
	w := newTestWafe(t)
	var sink strings.Builder
	f := New(w, nil, &sink)
	f.HandleAppLine("%set total {}")
	f.HandleAppLine("%setCommunicationVariable C 4 {append total $C}")
	f.FeedMass("aaaabbbbcc") // two complete chunks + remainder
	if got, _ := w.Interp.GetGlobalVar("total"); got != "aaaabbbb" {
		t.Errorf("total = %q", got)
	}
	f.FeedMass("cc") // completes the third chunk
	if got, _ := w.Interp.GetGlobalVar("total"); got != "aaaabbbbcccc" {
		t.Errorf("total = %q", got)
	}
}

func TestSetCommunicationVariableErrors(t *testing.T) {
	w := newTestWafe(t)
	var sink strings.Builder
	f := New(w, nil, &sink)
	f.HandleAppLine("%setCommunicationVariable C zero {x}")
	if !strings.Contains(sink.String(), "error in command") {
		t.Errorf("bad byte count accepted: %q", sink.String())
	}
}

// newTestWafe builds a Wafe on a private display.
func newTestWafe(t *testing.T) *core.Wafe {
	t.Helper()
	return core.NewTest()
}

func TestParseArgsTclEngine(t *testing.T) {
	o, err := ParseArgs("wafe", []string{"--tcl-engine", "tree"})
	if err != nil || o.TclEngine != "tree" {
		t.Errorf("opts=%+v err=%v", o, err)
	}
	o, err = ParseArgs("wafe", []string{"--tcl-engine", "bytecode"})
	if err != nil || o.TclEngine != "bytecode" {
		t.Errorf("opts=%+v err=%v", o, err)
	}
	// Default: empty, meaning the interpreter's own default (bytecode).
	o, err = ParseArgs("wafe", nil)
	if err != nil || o.TclEngine != "" {
		t.Errorf("opts=%+v err=%v", o, err)
	}
	if _, err := ParseArgs("wafe", []string{"--tcl-engine"}); err == nil {
		t.Error("--tcl-engine without a name accepted")
	}
	if _, err := ParseArgs("wafe", []string{"--tcl-engine", "jit"}); err == nil {
		t.Error("--tcl-engine jit accepted")
	}
}
