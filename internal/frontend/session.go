package frontend

import (
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"

	"wafe/internal/core"
	"wafe/internal/obs"
)

// sessionSeq makes auto-generated session ids (and therefore display
// namespaces) unique across every Server and Session in the process —
// two servers in one test binary must never share a virtual display.
var sessionSeq atomic.Int64

// SessionConfig configures one Session.
type SessionConfig struct {
	// ID names the session (metrics labels, log prefixes, the display
	// namespace). Empty auto-generates a process-unique "s<n>".
	ID string

	// AppName/ClassName seed the resource database paths; AppName
	// falls back to Opts.AppName, then "wafe".
	AppName   string
	ClassName string

	// Set selects the widget library.
	Set core.WidgetSet

	// Opts carries the protocol options (prefix, line limit, ...); nil
	// uses the defaults.
	Opts *Options

	// Terminal receives non-command backend output and diagnostics;
	// nil means os.Stdout.
	Terminal io.Writer

	// Metrics, when non-nil, is attached as the session's observability
	// registry (the serve layer creates it inside the ServerMetrics).
	Metrics *obs.Metrics

	// PrivateDisplay gives the session its own display namespace (its
	// ID), isolating even colliding display names from other sessions.
	// When false, DisplayName selects a shared registry display — the
	// classic single-process behavior.
	PrivateDisplay bool
	DisplayName    string
}

// Session promotes the implicit "one backend, one interpreter, one
// display" wiring of the classic wafe process into an explicit value:
// each Session owns its own Tcl interpreter, its own named virtual
// display (and any secondary displays its scripts open), its own
// widget tree, event loop and — when a child process is attached — its
// own Supervisor. The classic single-process modes construct exactly
// one Session around stdin/stdout; serve mode constructs one per
// accepted connection. Run drives the event loop with crash isolation;
// Close releases the session's process-global footprint.
type Session struct {
	ID string
	W  *core.Wafe
	F  *Frontend

	sup       *Supervisor
	closeOnce sync.Once
}

// NewSession builds a Session: one Wafe instance (interpreter, Xt app
// context, topLevel shell) wrapped by one Frontend.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.ID == "" {
		cfg.ID = "s" + strconv.FormatInt(sessionSeq.Add(1), 10)
	}
	appName := cfg.AppName
	if appName == "" && cfg.Opts != nil {
		appName = cfg.Opts.AppName
	}
	ns := ""
	if cfg.PrivateDisplay {
		ns = cfg.ID
	}
	engine := ""
	if cfg.Opts != nil {
		engine = cfg.Opts.TclEngine
	}
	w, err := core.New(core.Config{
		AppName:          appName,
		ClassName:        cfg.ClassName,
		DisplayName:      cfg.DisplayName,
		Set:              cfg.Set,
		DisplayNamespace: ns,
		TclEngine:        engine,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Opts != nil && cfg.Opts.TraceRing > 0 {
		// Applied when observability is enabled — now, if the serve
		// layer handed us a registry, or later when a traceOn/statistics
		// command enables it lazily.
		w.TraceRingSize = cfg.Opts.TraceRing
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Trace.SetSession(cfg.ID)
		w.EnableObservabilityWith(cfg.Metrics)
	}
	term := cfg.Terminal
	if term == nil {
		term = os.Stdout
	}
	f := New(w, cfg.Opts, term)
	return &Session{ID: cfg.ID, W: w, F: f}, nil
}

// LoadResources enters an application-defaults text and -xrm entries
// into the session's resource database (resources first, so -xrm wins
// ties, matching startup order).
func (s *Session) LoadResources(resources string, xrm []string) error {
	if resources != "" {
		if err := s.W.App.DB.EnterString(resources); err != nil {
			return fmt.Errorf("resource file: %v", err)
		}
	}
	for _, e := range xrm {
		if err := s.W.App.DB.EnterString(e); err != nil {
			return fmt.Errorf("-xrm: %v", err)
		}
	}
	return nil
}

// AttachConn wires a bidirectional stream (a serve-mode connection) as
// the session's backend: lines read from rw are command lines, the
// interpreter's output is written back, and the InitCom resource is
// delivered first, exactly as after a fork.
func (s *Session) AttachConn(rw io.ReadWriter) {
	s.F.AttachApp(rw, rw)
	s.F.SendInitCom()
}

// Supervise spawns a child backend under this session's own lifecycle
// supervision (PR 3 semantics, scoped to the session).
func (s *Session) Supervise(program string, args []string, policy RestartPolicy) (*Supervisor, error) {
	sup, err := s.F.Supervise(program, args, policy)
	if err != nil {
		return nil, err
	}
	s.sup = sup
	return sup, nil
}

// Run drives the session's event loop until quit, converting a panic
// anywhere on the loop (a command, callback, or dispatch bug) into an
// error return instead of taking the process — one session's crash
// must never affect its siblings.
func (s *Session) Run() (code int, err error) {
	defer func() {
		if p := recover(); p != nil {
			code = 1
			err = fmt.Errorf("session %s panic: %v\n%s", s.ID, p, debug.Stack())
			if m := s.W.Metrics; m != nil && m.Flight != nil {
				_, _ = m.Flight.Trip("panic", s.ID, fmt.Sprintf("%v", p), m, &m.Trace)
			}
		}
	}()
	return s.W.App.MainLoop(), nil
}

// Interrupt asks the session's event loop to quit with the given code;
// safe from any goroutine (the server's graceful shutdown path).
func (s *Session) Interrupt(code int) {
	s.W.App.Post(func() { s.W.App.Quit(code) })
}

// Supervisor returns the session's supervisor, or nil.
func (s *Session) Supervisor() *Supervisor { return s.sup }

// Close retires the session: the supervised backend (if any) is torn
// down through the graceful escalation, and the session's virtual
// displays and drag-and-drop context leave the process-global
// registries. Idempotent; must run after the event loop stopped.
func (s *Session) Close() {
	s.closeOnce.Do(func() {
		if s.sup != nil {
			_ = s.sup.Shutdown()
		}
		s.W.Close()
	})
}
