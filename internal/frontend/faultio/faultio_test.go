package faultio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFlakyReaderFailsAfterBudget(t *testing.T) {
	boom := errors.New("boom")
	r := &FlakyReader{R: strings.NewReader("0123456789"), N: 4, Err: boom}
	got, err := io.ReadAll(r)
	if string(got) != "0123" {
		t.Errorf("delivered %q, want %q", got, "0123")
	}
	if err != boom {
		t.Errorf("err = %v, want the injected error", err)
	}
	// The failure is sticky.
	if _, err := r.Read(make([]byte, 1)); err != boom {
		t.Errorf("second read err = %v, want the injected error", err)
	}
}

func TestFlakyReaderBudgetAtEOF(t *testing.T) {
	boom := errors.New("boom")
	r := &FlakyReader{R: strings.NewReader("abcd"), N: 4, Err: boom}
	got, err := io.ReadAll(r)
	if string(got) != "abcd" || err != boom {
		t.Errorf("got %q, %v; the injected error must win over EOF", got, err)
	}
}

func TestShortReaderFragments(t *testing.T) {
	r := &ShortReader{R: strings.NewReader("abcdef"), Max: 2}
	buf := make([]byte, 16)
	n, err := r.Read(buf)
	if n != 2 || err != nil {
		t.Errorf("Read = %d, %v; want 2, nil", n, err)
	}
	rest, _ := io.ReadAll(r)
	if string(buf[:n])+string(rest) != "abcdef" {
		t.Errorf("fragmented content lost: %q + %q", buf[:n], rest)
	}
}

func TestErrReader(t *testing.T) {
	boom := errors.New("boom")
	if _, err := (&ErrReader{Err: boom}).Read(make([]byte, 1)); err != boom {
		t.Errorf("err = %v, want the injected error", err)
	}
}

func TestFlakyWriterFailsAfterBudget(t *testing.T) {
	boom := errors.New("boom")
	var sink bytes.Buffer
	w := &FlakyWriter{W: &sink, N: 4, Err: boom}
	n, err := w.Write([]byte("0123456789"))
	if n != 4 || err != boom {
		t.Errorf("Write = %d, %v; want 4 and the injected error", n, err)
	}
	if sink.String() != "0123" {
		t.Errorf("sink = %q, want %q", sink.String(), "0123")
	}
	if _, err := w.Write([]byte("x")); err != boom {
		t.Errorf("second write err = %v, want the injected error", err)
	}
}
