// Package faultio provides fault-injecting io.Reader / io.Writer
// wrappers for exercising the frontend's pipe loop and backend
// supervision under failure: short reads that fragment lines across
// Read calls, readers that fail mid-stream, and writers that fail
// after a byte budget. They are deterministic by construction — faults
// trigger on byte counts, not timing — so tests using them are stable
// under -race and on loaded CI machines.
package faultio

import "io"

// FlakyReader delegates to R until N bytes have been produced, then
// every subsequent Read returns Err. A Read that straddles the budget
// is truncated to the remaining bytes, so the failure point is exact.
type FlakyReader struct {
	R   io.Reader
	N   int   // bytes to deliver before failing
	Err error // error to return once the budget is spent

	read int
}

func (f *FlakyReader) Read(p []byte) (int, error) {
	if f.read >= f.N {
		return 0, f.Err
	}
	if rest := f.N - f.read; len(p) > rest {
		p = p[:rest]
	}
	n, err := f.R.Read(p)
	f.read += n
	if err == io.EOF && f.read >= f.N {
		// The budget and the source ran out together; the injected
		// error still wins so the caller sees a failure, not EOF.
		err = f.Err
	}
	return n, err
}

// ShortReader caps every Read at Max bytes, forcing line-assembly code
// to cope with arbitrary fragmentation.
type ShortReader struct {
	R   io.Reader
	Max int
}

func (s *ShortReader) Read(p []byte) (int, error) {
	if s.Max > 0 && len(p) > s.Max {
		p = p[:s.Max]
	}
	return s.R.Read(p)
}

// ErrReader fails immediately with Err on every Read.
type ErrReader struct{ Err error }

func (e *ErrReader) Read([]byte) (int, error) { return 0, e.Err }

// FlakyWriter delegates to W until N bytes have been accepted, then
// every subsequent Write returns Err. A Write that straddles the
// budget writes the remaining bytes and reports a short write with
// Err.
type FlakyWriter struct {
	W   io.Writer
	N   int
	Err error

	written int
}

func (f *FlakyWriter) Write(p []byte) (int, error) {
	if f.written >= f.N {
		return 0, f.Err
	}
	if rest := f.N - f.written; len(p) > rest {
		n, err := f.W.Write(p[:rest])
		f.written += n
		if err == nil {
			err = f.Err
		}
		return n, err
	}
	n, err := f.W.Write(p)
	f.written += n
	return n, err
}
