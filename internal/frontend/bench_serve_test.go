package frontend

import (
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"wafe/internal/obs"
)

// TestServeLoad is the serve-mode load harness: it holds many
// concurrent sessions live in one process (1024 by default,
// WAFE_SERVE_SESSIONS overrides, -short runs 64), proves they are all
// live at once, measures per-session heap cost, drives colliding-name
// traffic through every one with per-session answers verified, and
// reports dispatch-latency quantiles from the server aggregate.
//
// The summary line is machine-parseable; scripts/bench.sh serve turns
// it into BENCH_serve.json and applies the acceptance gates
// (SERVE_P99_MAX_MS, SERVE_MAX_SESSION_KB):
//
//	serveload: sessions=N lines=N p50_ns=N p99_ns=N max_ns=N bytes_per_session=N
//
// Connections are in-memory pipes through StartConn — the harness
// measures the session machinery, not kernel socket limits.
func TestServeLoad(t *testing.T) {
	sessions := 1024
	if testing.Short() {
		sessions = 64
	}
	if env := os.Getenv("WAFE_SERVE_SESSIONS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			t.Fatalf("bad WAFE_SERVE_SESSIONS %q", env)
		}
		sessions = n
	}
	const linesPerSession = 8

	sm := obs.NewServer()
	srv, err := Listen("tcp:127.0.0.1:0", ServeConfig{
		MaxSessions: sessions,
		Metrics:     sm,
		Log:         io.Discard,
		Grace:       30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	var baseline runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&baseline)

	// Phase 1: bring every session up and hold at the greeting until
	// all are live simultaneously.
	clients := make([]*client, sessions)
	var up sync.WaitGroup
	for i := range clients {
		clientEnd, serverEnd := net.Pipe()
		if _, err := srv.StartConn(serverEnd); err != nil {
			t.Fatal(err)
		}
		clients[i] = &client{t: t, conn: clientEnd}
		up.Add(1)
		go func(c *client) {
			defer up.Done()
			// net.Pipe writes are synchronous: consuming the greeting
			// here releases the session goroutine into its event loop.
			buf := make([]byte, 64)
			n, err := c.conn.Read(buf)
			if err != nil || n == 0 {
				t.Errorf("greeting: %v", err)
			}
		}(clients[i])
	}
	up.Wait()
	if live := srv.SessionsActive(); live != sessions {
		t.Fatalf("SessionsActive = %d, want all %d live concurrently", live, sessions)
	}

	var loaded runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&loaded)
	bytesPerSession := int64(0)
	if loaded.HeapAlloc > baseline.HeapAlloc {
		bytesPerSession = int64(loaded.HeapAlloc-baseline.HeapAlloc) / int64(sessions)
	}

	// Phase 2: traffic. Every session uses the same widget and
	// variable names with its own values; each answer must come back
	// to the session that asked.
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client) {
			defer wg.Done()
			br := newLineReader(c.conn)
			for j := 0; j < linesPerSession-3; j++ {
				if err := writeLine(c.conn, fmt.Sprintf("%%set v %d", i)); err != nil {
					errs <- err
					return
				}
			}
			_ = writeLine(c.conn, fmt.Sprintf("%%label l topLevel label t%d", i))
			_ = writeLine(c.conn, "%echo [gV l label]=[set v]")
			want := fmt.Sprintf("t%d=%d", i, i)
			got, err := br.read()
			if err != nil {
				errs <- fmt.Errorf("session %d: %v", i, err)
				return
			}
			if got != want {
				errs <- fmt.Errorf("session %d answered %q, want %q", i, got, want)
				return
			}
			_ = writeLine(c.conn, "%quit")
		}(i, c)
	}
	wg.Wait()
	close(errs)
	failures := 0
	for err := range errs {
		failures++
		if failures <= 10 {
			t.Error(err)
		}
	}
	if failures > 10 {
		t.Errorf("... and %d more session failures", failures-10)
	}
	waitDrained(t, srv)
	for _, c := range clients {
		c.conn.Close()
	}

	wantLines := int64(sessions * linesPerSession)
	if got := sm.DispatchLatency.Count(); got != wantLines {
		t.Errorf("dispatch latency observations = %d, want %d", got, wantLines)
	}
	if got := sm.SessionsActive.Max(); got != int64(sessions) {
		t.Errorf("sessions_active high watermark = %d, want %d", got, sessions)
	}
	t.Logf("serveload: sessions=%d lines=%d p50_ns=%d p99_ns=%d max_ns=%d bytes_per_session=%d",
		sessions, sm.DispatchLatency.Count(),
		sm.DispatchLatency.Quantile(0.50), sm.DispatchLatency.Quantile(0.99),
		sm.DispatchLatency.Max(), bytesPerSession)
}

// lineReader is a minimal blocking line reader with a deadline.
type lineReader struct {
	conn net.Conn
	buf  []byte
}

func newLineReader(conn net.Conn) *lineReader { return &lineReader{conn: conn} }

func (r *lineReader) read() (string, error) {
	_ = r.conn.SetReadDeadline(time.Now().Add(60 * time.Second))
	chunk := make([]byte, 256)
	for {
		for i, b := range r.buf {
			if b == '\n' {
				line := string(r.buf[:i])
				r.buf = append(r.buf[:0], r.buf[i+1:]...)
				return line, nil
			}
		}
		n, err := r.conn.Read(chunk)
		if n > 0 {
			r.buf = append(r.buf, chunk[:n]...)
		}
		if err != nil {
			return "", err
		}
	}
}

func writeLine(conn net.Conn, s string) error {
	_ = conn.SetWriteDeadline(time.Now().Add(60 * time.Second))
	_, err := io.WriteString(conn, s+"\n")
	return err
}
