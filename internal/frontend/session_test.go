package frontend

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// sessionResult is what Session.Run returned.
type sessionResult struct {
	code int
	err  error
}

// startSession builds a private-display Session attached to the server
// end of an in-memory pipe and runs its event loop; the returned
// client drives it like a serve-mode backend would.
func startSession(t *testing.T, cfg SessionConfig) (*Session, *client, <-chan sessionResult) {
	t.Helper()
	cfg.PrivateDisplay = true
	if cfg.Terminal == nil {
		cfg.Terminal = &syncBuffer{}
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clientEnd, serverEnd := net.Pipe()
	s.AttachConn(serverEnd)
	done := make(chan sessionResult, 1)
	go func() {
		code, err := s.Run()
		done <- sessionResult{code, err}
	}()
	t.Cleanup(func() {
		clientEnd.Close()
		serverEnd.Close()
		s.Close()
	})
	return s, &client{t: t, conn: clientEnd, br: bufio.NewReader(clientEnd), id: s.ID}, done
}

func waitSession(t *testing.T, done <-chan sessionResult) sessionResult {
	t.Helper()
	select {
	case r := <-done:
		return r
	case <-time.After(10 * time.Second):
		t.Fatal("session did not finish")
		return sessionResult{}
	}
}

// TestSessionIsolation: many Sessions in one process, every one
// creating the same widget name, the same global variable, and the
// same secondary display name. Each must see only its own values —
// under -race this also proves the sessions share no unsynchronized
// process-global state.
func TestSessionIsolation(t *testing.T) {
	const sessions = 12
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, c, done := startSession(t, SessionConfig{})
			// Colliding widget name, variable name, and secondary
			// display name across every session.
			c.send(fmt.Sprintf("%%label l topLevel label text-%d", i))
			c.send(fmt.Sprintf("%%set v %d", i))
			c.send("%echo [gV l label]=[set v]")
			want := fmt.Sprintf("text-%d=%d", i, i)
			if got := c.readLine(); got != want {
				errs <- fmt.Errorf("session %s: got %q, want %q", s.ID, got, want)
			}
			c.send("%quit")
			if r := waitSession(t, done); r.err != nil || r.code != 0 {
				errs <- fmt.Errorf("session %s: Run = %d, %v", s.ID, r.code, r.err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSessionPanicContained: a panic on one session's event loop is
// converted into an error return instead of taking the process — a
// sibling session keeps dispatching commands throughout.
func TestSessionPanicContained(t *testing.T) {
	a, _, aDone := startSession(t, SessionConfig{})
	_, bc, bDone := startSession(t, SessionConfig{})

	a.W.App.Post(func() { panic("injected session failure") })
	r := waitSession(t, aDone)
	if r.code != 1 {
		t.Errorf("panicking session Run code = %d, want 1", r.code)
	}
	if r.err == nil || !strings.Contains(r.err.Error(), "injected session failure") {
		t.Errorf("Run err = %v, want the panic value", r.err)
	}
	if r.err != nil && !strings.Contains(r.err.Error(), "session "+a.ID+" panic") {
		t.Errorf("Run err = %v, want it to name session %s", r.err, a.ID)
	}

	bc.send("%echo sibling-still-up")
	if got := bc.readLine(); got != "sibling-still-up" {
		t.Errorf("sibling echo = %q, want \"sibling-still-up\"", got)
	}
	bc.send("%quit")
	if r := waitSession(t, bDone); r.err != nil || r.code != 0 {
		t.Errorf("sibling Run = %d, %v; want 0, nil", r.code, r.err)
	}
}

// TestSessionCloseIdempotent: Close may run twice (server teardown and
// a defer) without panicking or double-releasing.
func TestSessionCloseIdempotent(t *testing.T) {
	s, c, done := startSession(t, SessionConfig{})
	c.send("%quit")
	waitSession(t, done)
	s.Close()
	s.Close()
}
