// Package frontend implements Wafe's three modes of operation and the
// communication machinery of the frontend mode: the application program
// runs as a child process, writes `%`-prefixed command lines that the
// frontend interprets, receives event messages on its stdin, and may
// open an additional mass-transfer data channel.
package frontend

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"wafe/internal/tcl"
)

// Mode is Wafe's mode of operation.
type Mode int

const (
	// ModeInteractive reads commands from standard input ("the user
	// sees how the widget tree is built and modified step by step").
	ModeInteractive Mode = iota
	// ModeFile executes a command file (the #! magic).
	ModeFile
	// ModeFrontend runs an application program as a child process.
	ModeFrontend
	// ModeServe accepts frontend connections on a listening socket,
	// one session per connection (wafe --serve).
	ModeServe
)

func (m Mode) String() string {
	switch m {
	case ModeInteractive:
		return "interactive"
	case ModeFile:
		return "file"
	case ModeFrontend:
		return "frontend"
	case ModeServe:
		return "serve"
	}
	return "unknown"
}

// Options is the result of command-line parsing.
type Options struct {
	Mode Mode

	// ScriptFile is the command file in file mode.
	ScriptFile string

	// AppProgram and AppArgs identify the backend in frontend mode.
	AppProgram string
	AppArgs    []string

	// DisplayName is the -display argument for the X Toolkit.
	DisplayName string
	// XrmEntries are -xrm resource specifications.
	XrmEntries []string

	// Prefix is the command prefix character (default '%').
	Prefix byte
	// LineLimit bounds a single command line; the paper's default is
	// 64 KB ("can be pretty long depending on a preprocessor variable
	// ...; the default length is 64KB").
	LineLimit int

	// AppName is the application name for the resource database.
	AppName string

	// ResourceFile is an application-defaults file loaded into the
	// resource database at startup (the paper's "resource description
	// file, which is evaluated at startup time").
	ResourceFile string

	// Respawn is the maximum number of consecutive backend restarts
	// after a crash or pipe error (--respawn); 0 keeps the classic
	// behavior of quitting when the backend goes away.
	Respawn int

	// BackendGrace bounds each stage of the shutdown escalation
	// (close stdin → SIGTERM → SIGKILL); zero means the default.
	BackendGrace time.Duration

	// MetricsDump, when non-empty, enables observability and writes
	// the JSON metrics document to the named file at exit ("-" writes
	// to standard error).
	MetricsDump string

	// DebugAddr, when non-empty, enables observability and serves the
	// expvar/pprof/metrics debug endpoint on the address.
	DebugAddr string

	// TraceRing overrides the per-session span/trace ring capacity
	// (--trace-ring); 0 keeps obs.DefaultRingSize.
	TraceRing int

	// FlightDir, when non-empty, enables the flight recorder: on an
	// anomaly (panic, backend crash, slow line, refused connection) a
	// JSON snapshot of metrics and recent spans is written there.
	FlightDir string

	// FlightLatency is the per-line latency threshold that trips the
	// flight recorder (--flight-latency); zero disables the latency
	// trigger while keeping the other anomaly triggers.
	FlightLatency time.Duration

	// ServeAddr is the listening address in serve mode (--serve):
	// tcp:host:port, unix:/path, or the bare forms ParseServeAddr
	// resolves.
	ServeAddr string

	// MaxSessions bounds concurrent serve-mode sessions
	// (--max-sessions); 0 means DefaultMaxSessions.
	MaxSessions int

	// TclEngine selects the command-language execution engine
	// (--tcl-engine): "bytecode" (default, the v2 register VM) or
	// "tree" (the classic walker, kept as the differential oracle and
	// as an escape hatch). Empty keeps the interpreter default.
	TclEngine string

	// ShowVersion prints the version banner and exits.
	ShowVersion bool
}

// Version is the banner the --v option prints. 0.93 is the release the
// paper promises for the conference; the suffix marks this
// reproduction.
const Version = "Wafe 0.93 (Go reproduction)"

// DefaultLineLimit is the 64 KB command-line bound from the paper.
const DefaultLineLimit = 64 * 1024

// ParseArgs splits the command line the way the paper specifies:
// arguments starting with a double dash are handled by the frontend,
// the X Toolkit arguments (-display, -xrm) are peeled off, and the
// remaining arguments are passed to the application program.
//
// argv0 participates in the symlink naming scheme: invoking a link
// named xwafeApp runs wafeApp as the backend.
func ParseArgs(argv0 string, args []string) (*Options, error) {
	o := &Options{
		Mode:      ModeInteractive,
		Prefix:    '%',
		LineLimit: DefaultLineLimit,
		AppName:   "wafe",
	}
	// Symlink dispatch: "if a link like ln -s wafe xwafeApp is
	// established and xwafeApp is executed, the program wafeApp is
	// spawned as a subprocess".
	base := filepath.Base(argv0)
	if app, ok := SymlinkApp(base); ok {
		o.Mode = ModeFrontend
		o.AppProgram = app
		o.AppName = base
	}
	i := 0
	for i < len(args) {
		a := args[i]
		switch {
		case strings.HasPrefix(a, "--"):
			switch a {
			case "--f", "--file":
				o.Mode = ModeFile
				if i+1 < len(args) && !strings.HasPrefix(args[i+1], "-") {
					i++
					o.ScriptFile = args[i]
				}
			case "--i", "--interactive":
				o.Mode = ModeInteractive
			case "--app":
				if i+1 >= len(args) {
					return nil, fmt.Errorf("wafe: --app requires a program name")
				}
				i++
				o.Mode = ModeFrontend
				o.AppProgram = args[i]
			case "--prefix":
				if i+1 >= len(args) || len(args[i+1]) != 1 {
					return nil, fmt.Errorf("wafe: --prefix requires a single character")
				}
				i++
				o.Prefix = args[i][0]
			case "--linelimit":
				if i+1 >= len(args) {
					return nil, fmt.Errorf("wafe: --linelimit requires a byte count")
				}
				i++
				n, err := strconv.Atoi(args[i])
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("wafe: bad --linelimit %q", args[i])
				}
				o.LineLimit = n
			case "--v", "--version":
				o.ShowVersion = true
			case "--resources":
				if i+1 >= len(args) {
					return nil, fmt.Errorf("wafe: --resources requires a file name")
				}
				i++
				o.ResourceFile = args[i]
			case "--respawn":
				if i+1 >= len(args) {
					return nil, fmt.Errorf("wafe: --respawn requires a restart count")
				}
				i++
				n, err := strconv.Atoi(args[i])
				if err != nil || n < 0 {
					return nil, fmt.Errorf("wafe: bad --respawn %q", args[i])
				}
				o.Respawn = n
			case "--backend-grace":
				if i+1 >= len(args) {
					return nil, fmt.Errorf("wafe: --backend-grace requires a duration")
				}
				i++
				d, err := time.ParseDuration(args[i])
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("wafe: bad --backend-grace %q", args[i])
				}
				o.BackendGrace = d
			case "--serve":
				if i+1 >= len(args) {
					return nil, fmt.Errorf("wafe: --serve requires a listen address")
				}
				i++
				if _, _, err := ParseServeAddr(args[i]); err != nil {
					return nil, err
				}
				o.Mode = ModeServe
				o.ServeAddr = args[i]
			case "--max-sessions":
				if i+1 >= len(args) {
					return nil, fmt.Errorf("wafe: --max-sessions requires a session count")
				}
				i++
				n, err := strconv.Atoi(args[i])
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("wafe: bad --max-sessions %q", args[i])
				}
				o.MaxSessions = n
			case "--metrics-dump":
				if i+1 >= len(args) {
					return nil, fmt.Errorf("wafe: --metrics-dump requires a file name (or -)")
				}
				i++
				o.MetricsDump = args[i]
			case "--debug-addr":
				if i+1 >= len(args) {
					return nil, fmt.Errorf("wafe: --debug-addr requires a listen address")
				}
				i++
				o.DebugAddr = args[i]
			case "--trace-ring":
				if i+1 >= len(args) {
					return nil, fmt.Errorf("wafe: --trace-ring requires an entry count")
				}
				i++
				n, err := strconv.Atoi(args[i])
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("wafe: bad --trace-ring %q", args[i])
				}
				o.TraceRing = n
			case "--tcl-engine":
				if i+1 >= len(args) {
					return nil, fmt.Errorf("wafe: --tcl-engine requires an engine name (bytecode or tree)")
				}
				i++
				if _, err := tcl.ParseEngine(args[i]); err != nil {
					return nil, fmt.Errorf("wafe: %v", err)
				}
				o.TclEngine = args[i]
			case "--flight-dir":
				if i+1 >= len(args) {
					return nil, fmt.Errorf("wafe: --flight-dir requires a directory")
				}
				i++
				o.FlightDir = args[i]
			case "--flight-latency":
				if i+1 >= len(args) {
					return nil, fmt.Errorf("wafe: --flight-latency requires a duration")
				}
				i++
				d, err := time.ParseDuration(args[i])
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("wafe: bad --flight-latency %q", args[i])
				}
				o.FlightLatency = d
			default:
				return nil, fmt.Errorf("wafe: unknown frontend option %q", a)
			}
		case a == "-display":
			if i+1 >= len(args) {
				return nil, fmt.Errorf("wafe: -display requires an argument")
			}
			i++
			o.DisplayName = args[i]
		case a == "-xrm":
			if i+1 >= len(args) {
				return nil, fmt.Errorf("wafe: -xrm requires an argument")
			}
			i++
			o.XrmEntries = append(o.XrmEntries, args[i])
		default:
			// Everything else goes to the application program in
			// frontend mode; in file mode a bare argument is the
			// script.
			if o.Mode == ModeFile && o.ScriptFile == "" {
				o.ScriptFile = a
			} else {
				o.AppArgs = append(o.AppArgs, a)
			}
		}
		i++
	}
	if o.Mode == ModeFile && o.ScriptFile == "" {
		return nil, fmt.Errorf("wafe: file mode needs a script file")
	}
	if o.Mode == ModeFrontend && o.AppProgram == "" {
		return nil, fmt.Errorf("wafe: frontend mode needs an application program")
	}
	return o, nil
}

// SymlinkApp implements the argv[0] naming scheme: "xwafeApp" → "wafeApp".
// Plain names ("wafe", "mofe") do not dispatch.
func SymlinkApp(base string) (string, bool) {
	if base == "wafe" || base == "mofe" || base == "xwafe" {
		return "", false
	}
	if strings.HasPrefix(base, "x") && len(base) > 1 {
		return base[1:], true
	}
	return "", false
}
