package frontend

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"wafe/internal/core"
	"wafe/internal/obs"
)

// DefaultMaxSessions bounds the serve-mode session pool when no
// --max-sessions was given.
const DefaultMaxSessions = 4096

// ErrServerFull is returned by StartConn when the session bound is
// reached; the connection has already been refused and closed.
var ErrServerFull = errors.New("wafe: server full")

// ErrServerClosed is returned by StartConn after Shutdown began.
var ErrServerClosed = errors.New("wafe: server closed")

// ParseServeAddr resolves the --serve address forms documented in
// docs/protocol.md:
//
//	tcp:host:port   explicit TCP
//	unix:/path      explicit Unix socket
//	host:port       TCP (contains a colon, no slash)
//	/path, ./path   Unix socket (contains a slash)
func ParseServeAddr(s string) (network, addr string, err error) {
	switch {
	case strings.HasPrefix(s, "tcp:"):
		return "tcp", s[len("tcp:"):], nil
	case strings.HasPrefix(s, "unix:"):
		return "unix", s[len("unix:"):], nil
	case strings.Contains(s, "/"):
		return "unix", s, nil
	case strings.Contains(s, ":"):
		return "tcp", s, nil
	}
	return "", "", fmt.Errorf("wafe: bad --serve address %q (want tcp:host:port, unix:/path, host:port or /path)", s)
}

// ServeConfig configures a Server. Every session gets its own copy of
// the protocol options and its own resource database seeded from
// Resources/XrmEntries.
type ServeConfig struct {
	// Opts is the per-session option template (prefix, line limit,
	// app name, ...); nil uses the defaults.
	Opts *Options

	// Set selects the widget library for every session.
	Set core.WidgetSet

	// ClassName seeds each session's resource class (default "Wafe").
	ClassName string

	// MaxSessions bounds concurrently live sessions; connections over
	// the bound are refused with a diagnostic line. <= 0 means
	// DefaultMaxSessions.
	MaxSessions int

	// Log receives the server's terminal output — each session's
	// non-command lines and diagnostics, prefixed with its id. Nil
	// means os.Stdout.
	Log io.Writer

	// Metrics, when non-nil, enables observability: one registry per
	// session plus the server aggregates.
	Metrics *obs.ServerMetrics

	// Flight, when non-nil, is shared by every session: anomalies
	// (panics, backend crashes, slow lines, refused connections) dump
	// a metrics+span snapshot. Its rate limit is process-wide.
	Flight *obs.FlightRecorder

	// Resources is application-defaults text entered into every
	// session's resource database; XrmEntries follow (and win ties).
	Resources  string
	XrmEntries []string

	// Grace bounds the per-session drain during Shutdown before
	// connections are force-closed. <= 0 means DefaultBackendGrace.
	Grace time.Duration
}

// Server multiplexes many frontend sessions in one wafe process: one
// Session per accepted connection, each on its own event-loop
// goroutine, bounded by MaxSessions. A session's backend crash, parse
// error, or panic never affects its siblings — sessions share nothing
// but the widget-class tables, the quark intern table and the metrics
// registry, all of which are concurrency-safe by construction.
type Server struct {
	cfg     ServeConfig
	network string
	ln      net.Listener
	logMu   sync.Mutex // serializes session log lines onto cfg.Log

	mu       sync.Mutex
	sessions map[string]*liveSession
	closed   bool

	wg       sync.WaitGroup
	shutOnce sync.Once
	drained  chan struct{}
}

type liveSession struct {
	s    *Session
	conn net.Conn
}

// Listen binds the serve address and returns the Server; call Serve to
// accept. Resources/XrmEntries are validated once here so a config
// error fails startup instead of every connection.
func Listen(addr string, cfg ServeConfig) (*Server, error) {
	network, address, err := ParseServeAddr(addr)
	if err != nil {
		return nil, err
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.Log == nil {
		cfg.Log = os.Stdout
	}
	if cfg.Grace <= 0 {
		cfg.Grace = DefaultBackendGrace
	}
	if err := validateResources(cfg.Resources, cfg.XrmEntries); err != nil {
		return nil, fmt.Errorf("wafe: --serve: %v", err)
	}
	ln, err := net.Listen(network, address)
	if err != nil {
		return nil, fmt.Errorf("wafe: --serve %s: %v", addr, err)
	}
	return &Server{
		cfg:      cfg,
		network:  network,
		ln:       ln,
		sessions: make(map[string]*liveSession),
		drained:  make(chan struct{}),
	}, nil
}

// validateResources test-enters the server's resource configuration
// into a scratch database.
func validateResources(resources string, xrm []string) error {
	scratch, err := NewSession(SessionConfig{PrivateDisplay: true})
	if err != nil {
		return err
	}
	defer scratch.Close()
	return scratch.LoadResources(resources, xrm)
}

// Addr returns the bound listener address.
func (srv *Server) Addr() net.Addr { return srv.ln.Addr() }

// SessionsActive returns the number of live sessions.
func (srv *Server) SessionsActive() int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return len(srv.sessions)
}

// Serve accepts connections until the listener closes, starting one
// session per connection. It returns nil after a graceful Shutdown has
// drained every session; a fatal listener error triggers the same
// drain and is returned.
func (srv *Server) Serve() error {
	for {
		conn, err := srv.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				<-srv.drained
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if m := srv.cfg.Metrics; m != nil {
					m.AcceptErrors.Inc()
				}
				continue
			}
			srv.Shutdown()
			return err
		}
		_, _ = srv.StartConn(conn)
	}
}

// StartConn runs one connection as a session on its own goroutine and
// returns the session id without waiting. The accept loop calls it for
// every connection; the load harness calls it directly with in-memory
// pipes. The connection is closed on any failure path.
func (srv *Server) StartConn(conn net.Conn) (string, error) {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		conn.Close()
		return "", ErrServerClosed
	}
	if len(srv.sessions) >= srv.cfg.MaxSessions {
		srv.mu.Unlock()
		if m := srv.cfg.Metrics; m != nil {
			m.Refused.Inc()
			if fr := srv.cfg.Flight; fr != nil {
				_, _ = fr.Trip("refused", "", fmt.Sprintf("server full (%d sessions)", srv.cfg.MaxSessions), m, nil)
			}
		}
		fmt.Fprintf(conn, "wafe: server full (%d sessions)\n", srv.cfg.MaxSessions)
		conn.Close()
		return "", ErrServerFull
	}
	// Reserve the slot before building the session so a connection
	// burst cannot overshoot the bound.
	id := "s" + fmt.Sprint(sessionSeq.Add(1))
	srv.sessions[id] = nil
	srv.mu.Unlock()

	release := func() {
		srv.mu.Lock()
		delete(srv.sessions, id)
		srv.mu.Unlock()
	}

	var m *obs.Metrics
	sm := srv.cfg.Metrics
	if sm != nil {
		m = sm.AddSession(id)
		// statistics/metricsDump inside this session also report the
		// server aggregates; Snapshot never recurses back (it walks
		// SnapshotBase).
		m.Extra = sm.Snapshot
		m.Flight = srv.cfg.Flight
	}
	opts := srv.sessionOptions()
	sess, err := NewSession(SessionConfig{
		ID:             id,
		ClassName:      srv.cfg.ClassName,
		Set:            srv.cfg.Set,
		Opts:           opts,
		Terminal:       &prefixWriter{mu: &srv.logMu, w: srv.cfg.Log, prefix: "[" + id + "] "},
		Metrics:        m,
		PrivateDisplay: true,
	})
	if err != nil {
		release()
		if sm != nil {
			sm.EndSession(id, "spawnerr")
		}
		fmt.Fprintf(conn, "wafe: cannot start session: %v\n", err)
		conn.Close()
		return "", err
	}
	if err := sess.LoadResources(srv.cfg.Resources, srv.cfg.XrmEntries); err != nil {
		// Validated at Listen time; only a concurrent config mutation
		// could land here. The session still runs.
		srv.logf(id, "resources: %v", err)
	}
	if sm != nil {
		sess.F.SetServeObs(&sm.DispatchLatency, sm.SessionLines.Counter(id), sm.SessionErrors.Counter(id))
	}

	ls := &liveSession{s: sess, conn: conn}
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		release()
		if sm != nil {
			sm.EndSession(id, "shutdown")
		}
		sess.Close()
		conn.Close()
		return "", ErrServerClosed
	}
	srv.sessions[id] = ls
	srv.mu.Unlock()

	srv.wg.Add(1)
	go srv.runSession(ls)
	return id, nil
}

// sessionOptions clones the option template for one session.
func (srv *Server) sessionOptions() *Options {
	o := &Options{Prefix: '%', LineLimit: DefaultLineLimit, AppName: "wafe"}
	if t := srv.cfg.Opts; t != nil {
		clone := *t
		clone.XrmEntries = nil // entered via LoadResources
		o = &clone
	}
	return o
}

// runSession owns one session goroutine: handshake, protocol loop,
// teardown. A panic inside the loop is contained by Session.Run.
func (srv *Server) runSession(ls *liveSession) {
	defer srv.wg.Done()
	sess, conn := ls.s, ls.conn
	// Handshake: one greeting line carrying the session id, then the
	// InitCom resource (if configured), then the normal line protocol.
	fmt.Fprintf(conn, "wafe session %s\n", sess.ID)
	sess.AttachConn(conn)
	code, err := sess.Run()

	reason := "eof"
	switch {
	case err != nil:
		reason = "panic"
		srv.logf(sess.ID, "%v", err)
	case sess.F.ReadErrors > 0:
		reason = "readerr"
	case sess.W.QuitRequested():
		reason = "quit"
	}
	srv.mu.Lock()
	closing := srv.closed
	delete(srv.sessions, sess.ID)
	srv.mu.Unlock()
	if closing {
		reason = "shutdown"
	}
	conn.Close()
	sess.Close()
	if sm := srv.cfg.Metrics; sm != nil {
		sm.EndSession(sess.ID, reason)
	}
	srv.logf(sess.ID, "session ended (%s, exit %d)", reason, code)
}

// Shutdown gracefully stops the server: the listener closes, every
// session's loop is asked to quit, and after the grace period any
// straggler's connection is force-closed. Blocks until all session
// goroutines have finished. Idempotent.
func (srv *Server) Shutdown() {
	srv.shutOnce.Do(func() {
		srv.mu.Lock()
		srv.closed = true
		var live []*liveSession
		for _, ls := range srv.sessions {
			if ls != nil {
				live = append(live, ls)
			}
		}
		srv.mu.Unlock()
		srv.ln.Close()
		for _, ls := range live {
			ls.s.Interrupt(0)
		}
		done := make(chan struct{})
		go func() { srv.wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(srv.cfg.Grace):
			for _, ls := range live {
				ls.conn.Close()
			}
			<-done
		}
		close(srv.drained)
	})
}

// logf writes one diagnostic line for a session to the server log.
func (srv *Server) logf(id, format string, args ...any) {
	srv.logMu.Lock()
	fmt.Fprintf(srv.cfg.Log, "[%s] wafe: %s\n", id, fmt.Sprintf(format, args...))
	srv.logMu.Unlock()
}

// prefixWriter prefixes every line written through it with a session
// tag and serializes onto the shared server log. Partial lines are
// buffered until their newline arrives.
type prefixWriter struct {
	mu     *sync.Mutex
	w      io.Writer
	prefix string
	buf    []byte
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buf = append(p.buf, b...)
	for {
		nl := -1
		for i, c := range p.buf {
			if c == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			return len(b), nil
		}
		line := p.buf[:nl+1]
		if _, err := io.WriteString(p.w, p.prefix); err != nil {
			return len(b), err
		}
		if _, err := p.w.Write(line); err != nil {
			return len(b), err
		}
		p.buf = append(p.buf[:0], p.buf[nl+1:]...)
	}
}
