package frontend

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"wafe/internal/core"
	"wafe/internal/tcl"
)

// TestBalanced covers the interactive-continuation heuristic: quoted
// braces must not count, a closer with no opener is terminal, and
// unclosed quotes/braces continue.
func TestBalanced(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"echo hi", true},
		{"proc f {} {", false},
		{"proc f {} {\nbody\n}", true},
		{"set x [llength $y", false},
		{`set x "a{b"`, true},     // quoted brace is not an opener
		{`set x "a}b"`, true},     // quoted brace is not a closer
		{`set x "a{b`, false},     // unclosed quote continues
		{"}{", true},              // negative depth is terminal
		{"} {foo", true},          // ...even when later openers recover it
		{"set x \\{", true},       // escaped brace is literal
		{"set x {a\"b}", true},    // quote inside braces is ordinary
		{"set x {a\"b} {", false}, // ...and does not hide later openers
		{`puts "x" ; set y {1 2}`, true},
	}
	for _, c := range cases {
		if got := balanced(c.in); got != c.want {
			t.Errorf("balanced(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestInteractiveQuotedBrace: a brace inside a quoted string used to
// leave the prompt accumulating forever; now the line evaluates.
func TestInteractiveQuotedBrace(t *testing.T) {
	w := core.NewTest()
	term := &syncBuffer{}
	f := New(w, nil, term)
	w.Interp.Stdout = func(line string) { fmt.Fprintln(term, line) }
	input := "echo \"open{brace\"\necho done\nquit\n"
	if err := f.RunInteractive(strings.NewReader(input), nil); err != nil {
		t.Fatal(err)
	}
	out := term.String()
	if !strings.Contains(out, "open{brace") || !strings.Contains(out, "done") {
		t.Errorf("interactive output = %q", out)
	}
}

// TestFrontendAccounting covers the CommandLines / PassedLines /
// OverlongLines / EvalErrors fields and their metric mirrors.
func TestFrontendAccounting(t *testing.T) {
	w := core.NewTest()
	term := &syncBuffer{}
	f := New(w, &Options{Prefix: '%', LineLimit: 100}, term)
	m := w.EnableObservability()

	f.HandleAppLine("%echo ok")                     // command
	f.HandleAppLine("plain")                        // passthrough
	f.HandleAppLine("%" + strings.Repeat("x", 200)) // overlong
	f.HandleAppLine("%nosuchcommand")               // eval error

	if f.CommandLines != 2 || f.PassedLines != 1 || f.OverlongLines != 1 || f.EvalErrors != 1 {
		t.Errorf("fields: cmd=%d passed=%d overlong=%d evalErr=%d",
			f.CommandLines, f.PassedLines, f.OverlongLines, f.EvalErrors)
	}
	for name, want := range map[string]int64{
		"frontend.command_lines":  2,
		"frontend.passed_lines":   1,
		"frontend.overlong_lines": 1,
		"frontend.eval_errors":    1,
	} {
		if got, _ := m.Get(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got, _ := m.Get("frontend.line_latency.count"); got != 4 {
		t.Errorf("line latency count = %d, want 4", got)
	}
	if !strings.Contains(term.String(), "error in command") {
		t.Errorf("terminal = %q", term.String())
	}
}

// TestDrainMassErrors covers the mass-transfer failure paths: a
// transfer variable that cannot be set, and an action script that
// fails.
func TestDrainMassErrors(t *testing.T) {
	t.Run("bad-variable", func(t *testing.T) {
		w := core.NewTest()
		term := &syncBuffer{}
		f := New(w, nil, term)
		// C is an array, so setting the scalar C must fail.
		if _, err := w.Eval("set C(1) x"); err != nil {
			t.Fatal(err)
		}
		f.HandleAppLine("%setCommunicationVariable C 4 {echo never}")
		echoed := 0
		w.Interp.Stdout = func(string) { echoed++ }
		f.FeedMass("abcdefgh")
		if !strings.Contains(term.String(), "mass transfer variable") {
			t.Errorf("terminal = %q", term.String())
		}
		if echoed != 0 {
			t.Errorf("action ran despite variable error (%d times)", echoed)
		}
	})
	t.Run("failing-action", func(t *testing.T) {
		w := core.NewTest()
		term := &syncBuffer{}
		f := New(w, nil, term)
		m := w.EnableObservability()
		f.HandleAppLine("%setCommunicationVariable C 4 {definitelyNotACommand}")
		f.FeedMass("abcdefgh")
		if n := strings.Count(term.String(), "mass transfer action"); n != 2 {
			t.Errorf("action errors reported %d times, want 2 (terminal %q)", n, term.String())
		}
		// The transfer itself still completed (variable was set) and
		// both chunks are accounted.
		if v, err := w.Interp.GetGlobalVar("C"); err != nil || v != "efgh" {
			t.Errorf("C = %q, %v", v, err)
		}
		if got, _ := m.Get("frontend.mass_transfers"); got != 2 {
			t.Errorf("mass_transfers = %d, want 2", got)
		}
		if got, _ := m.Get("frontend.mass_bytes"); got != 8 {
			t.Errorf("mass_bytes = %d, want 8", got)
		}
	})
}

// TestMassBytesBeforeArm: the data channel and the command pipe are
// independent inputs, so the payload can arrive before the
// setCommunicationVariable command that arms the transfer. The
// buffered bytes must count toward the transfer, not be discarded.
func TestMassBytesBeforeArm(t *testing.T) {
	w := core.NewTest()
	term := &syncBuffer{}
	f := New(w, nil, term)
	f.FeedMass("0123456789")
	f.HandleAppLine("%setCommunicationVariable C 10 {echo got-mass}")
	if v, err := w.Interp.GetGlobalVar("C"); err != nil || v != "0123456789" {
		t.Errorf("C = %q, %v (terminal %q)", v, err, term.String())
	}
}

// TestStatisticsAndTraceOverPipe is the observability integration
// test: a backend enables metrics and tracing over the pipe, exactly
// as the paper's debug mode, and reads the statistics list back.
func TestStatisticsAndTraceOverPipe(t *testing.T) {
	f, backendOut, backendIn, term, cleanup := newPipedFrontend(t)
	defer cleanup()
	stop := run(t, f)
	defer stop()

	// Enable observability first so subsequent lines are counted.
	send(backendOut, "%statistics\n%echo obs-on\n")
	if got := readLine(t, backendIn); got != "obs-on" {
		t.Fatalf("handshake = %q", got)
	}

	// Build a UI and exercise the stack: repeated evals populate the
	// script cache, a click dispatches events and fires a callback.
	send(backendOut, "%command hello topLevel callback {echo pressed}\n")
	send(backendOut, "%realize\n")
	for i := 0; i < 5; i++ {
		send(backendOut, "%set n 1\n")
	}
	send(backendOut, "%echo built\n")
	if got := readLine(t, backendIn); got != "built" {
		t.Fatalf("build = %q", got)
	}
	post(t, f, func() {
		wid := f.W.App.WidgetByName("hello")
		d := wid.Display()
		win, _ := d.Lookup(wid.Window())
		x, y := win.RootCoords(2, 2)
		d.WarpPointer(x, y)
		d.InjectButtonPress(1)
		d.InjectButtonRelease(1)
		f.W.App.Pump()
	})
	if got := readLine(t, backendIn); got != "pressed" {
		t.Fatalf("callback = %q", got)
	}

	// The backend reads the statistics list over the pipe.
	send(backendOut, "%echo [statistics]\n")
	statsLine := readLine(t, backendIn)
	fields, err := tcl.ParseList(statsLine)
	if err != nil {
		t.Fatalf("statistics is not a Tcl list: %v (%q)", err, statsLine)
	}
	if len(fields)%2 != 0 {
		t.Fatalf("statistics has odd length %d", len(fields))
	}
	stats := make(map[string]string, len(fields)/2)
	for i := 0; i+1 < len(fields); i += 2 {
		stats[fields[i]] = fields[i+1]
	}
	positive := []string{
		"tcl.evals",
		"tcl.script_cache.hits",
		"tcl.script_cache.misses",
		"tcl.eval_latency.count",
		"tcl.dispatch.echo",
		"xt.events_dispatched",
		"xt.dispatch_latency.count",
		"xt.callbacks_fired",
		"xproto.events_queued",
		"frontend.command_lines",
		"frontend.line_latency.count",
	}
	for _, name := range positive {
		v, ok := stats[name]
		if !ok {
			t.Errorf("statistics misses %s", name)
			continue
		}
		if v == "0" || strings.HasPrefix(v, "-") {
			t.Errorf("%s = %s, want > 0", name, v)
		}
	}

	// traceOn: command lines and fired callbacks echo to the terminal.
	send(backendOut, "%traceOn\n")
	send(backendOut, "%echo traced\n")
	if got := readLine(t, backendIn); got != "traced" {
		t.Fatalf("traced ack = %q", got)
	}
	post(t, f, func() {
		wid := f.W.App.WidgetByName("hello")
		d := wid.Display()
		d.InjectButtonPress(1)
		d.InjectButtonRelease(1)
		f.W.App.Pump()
	})
	if got := readLine(t, backendIn); got != "pressed" {
		t.Fatalf("traced callback = %q", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		out := term.String()
		if strings.Contains(out, "wafe: trace cmd: %echo traced") &&
			strings.Contains(out, "wafe: trace callback: hello: echo pressed") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace output missing, terminal = %q", out)
		}
		time.Sleep(time.Millisecond)
	}

	// traceOff stops the echo.
	send(backendOut, "%traceOff\n%echo quiet\n")
	if got := readLine(t, backendIn); got != "quiet" {
		t.Fatalf("quiet ack = %q", got)
	}
	before := strings.Count(term.String(), "wafe: trace")
	send(backendOut, "%echo untraced\n")
	if got := readLine(t, backendIn); got != "untraced" {
		t.Fatalf("untraced ack = %q", got)
	}
	post(t, f, func() {})
	if after := strings.Count(term.String(), "wafe: trace"); after != before {
		t.Errorf("trace lines after traceOff: %d -> %d", before, after)
	}

	// The metricsDump command returns the single-line JSON document.
	send(backendOut, "%echo [metricsDump]\n")
	dump := readLine(t, backendIn)
	if !strings.HasPrefix(dump, "{") || !strings.Contains(dump, `"tcl.evals"`) || !strings.Contains(dump, `"trace"`) {
		t.Errorf("metricsDump = %.120q", dump)
	}
}
