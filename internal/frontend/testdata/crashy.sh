#!/bin/sh
# crashy.sh — crash-on-demand test backend for supervisor tests.
#
# Speaks the wafe pipe protocol on stdin/stdout: announces itself with
# a %-command on startup, echoes InitCom-style boot lines, and obeys
# fault orders sent as ordinary event lines on stdin:
#
#   crash   exit 42 immediately (simulates a backend crash)
#   hang    ignore SIGTERM and sleep forever (forces the SIGKILL path)
#   quit    exit 0 (clean shutdown)
#   boot    reply "booted $$" (lets tests count InitCom deliveries)
#
# Any other line is echoed back as "got <line>" so tests can confirm
# liveness. EOF on stdin is a clean exit, like a well-behaved backend.

echo "%echo backend-up $$"

while IFS= read -r line; do
    case "$line" in
        crash) exit 42 ;;
        hang)
            trap '' TERM
            while :; do sleep 1; done
            ;;
        quit) exit 0 ;;
        boot) echo "%echo booted $$" ;;
        *) echo "%echo got $line" ;;
    esac
done
exit 0
