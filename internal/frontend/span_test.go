package frontend

import (
	"bufio"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wafe/internal/core"
	"wafe/internal/obs"
)

// findSpan returns the first span matching kind and a name prefix.
func findSpan(spans []obs.Span, kind, namePrefix string) *obs.Span {
	for i := range spans {
		if spans[i].Kind == kind && strings.HasPrefix(spans[i].Name, namePrefix) {
			return &spans[i]
		}
	}
	return nil
}

// ancestors walks the parent links from sp to the root, returning the
// chain of span ids (nearest parent first).
func ancestors(spans []obs.Span, sp *obs.Span) []uint64 {
	byID := make(map[uint64]*obs.Span, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	var out []uint64
	for p := sp.Parent; p != 0; {
		out = append(out, p)
		next, ok := byID[p]
		if !ok {
			break
		}
		p = next.Parent
	}
	return out
}

func hasAncestor(spans []obs.Span, sp *obs.Span, id uint64) bool {
	for _, a := range ancestors(spans, sp) {
		if a == id {
			return true
		}
	}
	return false
}

// TestServeSpanTree is the tracing acceptance test: one serve-mode
// session builds a UI and clicks a button over the protocol, and the
// recorded spans must form the complete request tree — protocol line →
// tcl eval → xt callback → xproto request — with correct parent links,
// the session id stamped on every span, and plausible durations.
func TestServeSpanTree(t *testing.T) {
	srv, sm := startServer(t, ServeConfig{})
	c := dialServe(t, srv)
	defer c.conn.Close()

	c.send("%traceOn 512")
	c.send("%command hello topLevel callback {echo pressed}")
	c.send("%realize")
	c.send("%sendClick hello")
	if got := c.readLine(); got != "pressed" {
		t.Fatalf("click = %q", got)
	}
	// One more round trip so the %sendClick line span has surely been
	// recorded (lines are handled strictly in order).
	c.send("%echo done")
	if got := c.readLine(); got != "done" {
		t.Fatalf("sync = %q", got)
	}

	m := sm.Session(c.id)
	if m == nil {
		t.Fatal("no live session metrics")
	}
	spans := m.Trace.Spans()

	line := findSpan(spans, "line", "%sendClick hello")
	if line == nil {
		t.Fatalf("no line span for %%sendClick; spans:\n%s", obs.RenderSpanTree(spans, 0))
	}
	if line.Parent != 0 {
		t.Errorf("line span parent = %d, want 0 (root)", line.Parent)
	}
	eval := findSpan(spans, "eval", "sendClick hello")
	if eval == nil {
		t.Fatalf("no eval span for sendClick; spans:\n%s", obs.RenderSpanTree(spans, 0))
	}
	if eval.Parent != line.ID {
		t.Errorf("eval parent = %d, want line id %d", eval.Parent, line.ID)
	}
	cb := findSpan(spans, "callback", "hello.callback")
	if cb == nil {
		t.Fatalf("no callback span; spans:\n%s", obs.RenderSpanTree(spans, 0))
	}
	if !hasAncestor(spans, cb, eval.ID) || !hasAncestor(spans, cb, line.ID) {
		t.Errorf("callback span not under the sendClick line/eval; ancestors = %v\n%s",
			ancestors(spans, cb), obs.RenderSpanTree(spans, 0))
	}
	// The callback is reached through the Xt layers: its parent is the
	// notify action, which sits under a ButtonRelease dispatch.
	action := findSpan(spans, "action", "notify")
	if action == nil || cb.Parent != action.ID {
		t.Fatalf("callback parent is not the notify action; spans:\n%s", obs.RenderSpanTree(spans, 0))
	}
	dispatch := findSpan(spans, "dispatch", "ButtonRelease")
	if dispatch == nil || action.Parent != dispatch.ID {
		t.Errorf("notify action not under ButtonRelease dispatch; spans:\n%s", obs.RenderSpanTree(spans, 0))
	}
	// realize issued xproto requests; their instants sit under the
	// %realize line.
	realLine := findSpan(spans, "line", "%realize")
	xp := findSpan(spans, "xproto", "CreateWindow")
	if realLine == nil || xp == nil {
		t.Fatalf("missing realize line or CreateWindow instant; spans:\n%s", obs.RenderSpanTree(spans, 0))
	}
	if !hasAncestor(spans, xp, realLine.ID) {
		t.Errorf("CreateWindow not under the %%realize line; ancestors = %v", ancestors(spans, xp))
	}

	// Durations: real regions measured something, nesting is consistent,
	// instants are points.
	for _, sp := range []*obs.Span{line, eval, cb} {
		if sp.Dur <= 0 {
			t.Errorf("%s %q has non-positive duration %v", sp.Kind, sp.Name, sp.Dur)
		}
	}
	if eval.Dur > line.Dur {
		t.Errorf("eval dur %v exceeds enclosing line dur %v", eval.Dur, line.Dur)
	}
	if cb.Dur > line.Dur {
		t.Errorf("callback dur %v exceeds enclosing line dur %v", cb.Dur, line.Dur)
	}
	if xp.Dur != 0 {
		t.Errorf("instant dur = %v, want 0", xp.Dur)
	}

	// Serve-mode aggregation: spans are keyed by session id, each
	// stamped with it.
	agg := sm.SessionSpans()
	if len(agg[c.id]) == 0 {
		t.Fatalf("SessionSpans missing %s: %v", c.id, agg)
	}
	for _, sp := range agg[c.id] {
		if sp.Session != c.id {
			t.Errorf("span %d stamped %q, want %q", sp.ID, sp.Session, c.id)
		}
	}

	c.send("%quit")
	waitDrained(t, srv)
}

// TestFlightTripOnSlowLine: a protocol line over the configured
// latency threshold snapshots metrics and spans to the flight
// directory.
func TestFlightTripOnSlowLine(t *testing.T) {
	dir := t.TempDir()
	w := core.NewTest()
	w.Flight = &obs.FlightRecorder{Dir: dir, Latency: time.Nanosecond, MinInterval: time.Nanosecond}
	m := w.EnableObservability()
	m.Trace.SetEnabled(true)
	f := New(w, nil, &syncBuffer{})
	f.HandleAppLine("%echo hi")
	if m.Flight.Dumps.Load() != 1 {
		t.Fatalf("dumps = %d, want 1", m.Flight.Dumps.Load())
	}
	files, err := filepath.Glob(filepath.Join(dir, "wafe-flight-*-line_latency.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("flight files = %v, %v", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"reason": "line_latency"`, "%echo hi", `"frontend.command_lines": 1`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("flight dump misses %s:\n%s", want, data)
		}
	}
	// Below-threshold lines do not trip once the threshold is real.
	m.Flight.Latency = time.Hour
	f.HandleAppLine("%echo fast")
	if m.Flight.Dumps.Load() != 1 {
		t.Error("fast line tripped the recorder")
	}
}

// TestServeFlightRecorderOnPanicAndRefusal: the shared flight recorder
// trips on serve-layer anomalies.
func TestServeFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	fr := &obs.FlightRecorder{Dir: dir, MinInterval: time.Nanosecond}
	srv, _ := startServer(t, ServeConfig{MaxSessions: 1, Flight: fr})

	c := dialServe(t, srv)
	defer c.conn.Close()
	// Second connection is refused — the recorder trips with the server
	// aggregate as its metrics source.
	extra, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer extra.Close()
	if line, err := bufio.NewReader(extra).ReadString('\n'); err != nil || !strings.Contains(line, "server full") {
		t.Fatalf("refusal line = %q, %v", line, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for fr.Dumps.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("refusal did not trip the flight recorder")
		}
		time.Sleep(time.Millisecond)
	}
	c.send("%quit")
	waitDrained(t, srv)
}
