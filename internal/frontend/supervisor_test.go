//go:build unix

package frontend

import (
	"strings"
	"testing"
	"time"

	"path/filepath"
	"wafe/internal/core"
	"wafe/internal/obs"
)

// runLoop starts the main loop and returns its exit code, failing the
// test if it does not finish in time.
func runLoop(t *testing.T, w *core.Wafe, timeout time.Duration) int {
	t.Helper()
	done := make(chan int, 1)
	go func() { done <- w.App.MainLoop() }()
	select {
	case code := <-done:
		return code
	case <-time.After(timeout):
		t.Fatal("main loop did not finish")
		return -1
	}
}

// TestSupervisorRestartsCrashedBackend: a backend that keeps crashing
// is restarted with InitCom re-sent each time, the onBackendRestart
// script runs with percent codes expanded, and once the restart budget
// is exhausted the frontend quits with a failure code.
func TestSupervisorRestartsCrashedBackend(t *testing.T) {
	backend := writeBackend(t, `#!/bin/sh
read line
echo "booted $line"
exit 42
`)
	w := core.NewTest()
	m := w.EnableObservability()
	_ = w.App.DB.Enter("*InitCom", "boot")
	_ = w.App.DB.Enter("*onBackendRestart", "set lastRestart {%r %n}")
	term := &lockedBuf{}
	f := New(w, nil, term)
	sup, err := f.Supervise(backend, nil, RestartPolicy{
		MaxRestarts: 2,
		Backoff:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	code := runLoop(t, w, 15*time.Second)
	if code != 1 {
		t.Errorf("exit code = %d, want 1 after giving up on a crashing backend", code)
	}
	// Three incarnations (initial + 2 restarts), each booted by InitCom.
	if got := strings.Count(term.String(), "booted boot"); got != 3 {
		t.Errorf("backend booted %d times, want 3; terminal:\n%s", got, term.String())
	}
	if sup.Restarts() != 2 {
		t.Errorf("Restarts() = %d, want 2", sup.Restarts())
	}
	if sup.State() != BackendExited {
		t.Errorf("State() = %q, want %q", sup.State(), BackendExited)
	}
	if sup.LastExitClass() != ExitCrash {
		t.Errorf("LastExitClass() = %q, want %q", sup.LastExitClass(), ExitCrash)
	}
	if got := m.Frontend.BackendRestarts.Load(); got != 2 {
		t.Errorf("backend_restarts = %d, want 2", got)
	}
	if got := m.Frontend.BackendExits.Get(ExitCrash); got != 3 {
		t.Errorf("backend_exits.crash = %d, want 3", got)
	}
	// The restart script ran with %r and %n substituted.
	if v, err := w.Eval("set lastRestart"); err != nil || v != "crash 2" {
		t.Errorf("lastRestart = %q, %v; want \"crash 2\"", v, err)
	}
	if !strings.Contains(term.String(), "giving up on backend") {
		t.Errorf("missing give-up report; terminal:\n%s", term.String())
	}
}

// TestSupervisorCleanExitQuits: without an onBackendExit script a clean
// backend exit still ends the frontend, like the unsupervised path, and
// never burns restart budget.
func TestSupervisorCleanExitQuits(t *testing.T) {
	backend := writeBackend(t, `#!/bin/sh
echo "hello from backend"
exit 0
`)
	w := core.NewTest()
	m := w.EnableObservability()
	term := &lockedBuf{}
	f := New(w, nil, term)
	sup, err := f.Supervise(backend, nil, RestartPolicy{MaxRestarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if code := runLoop(t, w, 10*time.Second); code != 0 {
		t.Errorf("exit code = %d, want 0 for a clean backend exit", code)
	}
	if sup.Restarts() != 0 {
		t.Errorf("Restarts() = %d, want 0", sup.Restarts())
	}
	if got := m.Frontend.BackendExits.Get(ExitClean); got != 1 {
		t.Errorf("backend_exits.clean = %d, want 1", got)
	}
	if !strings.Contains(term.String(), "hello from backend") {
		t.Errorf("passthrough lost; terminal:\n%s", term.String())
	}
}

// TestSupervisorExitScriptKeepsFrontendAlive: with onBackendExit
// configured, a clean backend exit runs the script instead of quitting,
// and the `backend` command reports the terminal state.
func TestSupervisorExitScriptKeepsFrontendAlive(t *testing.T) {
	backend := writeBackend(t, `#!/bin/sh
exit 0
`)
	w := core.NewTest()
	_ = w.App.DB.Enter("*onBackendExit", "set gone %r")
	term := &lockedBuf{}
	f := New(w, nil, term)
	sup, err := f.Supervise(backend, nil, RestartPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 1)
	go func() { done <- w.App.MainLoop() }()

	deadline := time.Now().Add(10 * time.Second)
	for sup.State() != BackendExited {
		if time.Now().After(deadline) {
			t.Fatal("supervisor never reached the exited state")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var gone, report string
	post(t, f, func() {
		gone, _ = w.Eval("set gone")
		report, _ = w.Eval("backend")
	})
	if gone != "clean" {
		t.Errorf("onBackendExit saw %%r = %q, want \"clean\"", gone)
	}
	if !strings.Contains(report, "state exited") {
		t.Errorf("backend command = %q, want it to report state exited", report)
	}
	// The frontend is still alive — the loop only ends when we ask.
	f.W.App.Post(func() { f.W.App.Quit(7) })
	select {
	case code := <-done:
		if code != 7 {
			t.Errorf("exit code = %d, want the explicit 7 (frontend must not have quit on its own)", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("main loop did not finish")
	}
}

// TestBackendCommandUnsupervised: without a supervisor the `backend`
// command still answers.
func TestBackendCommandUnsupervised(t *testing.T) {
	w := core.NewTest()
	out, err := w.Eval("backend")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "state none") {
		t.Errorf("backend = %q, want state none", out)
	}
}

// TestSupervisorLifecycleSpansAndFlight: backend exits and restarts
// record lifecycle instants into the span ring, and a crash trips the
// flight recorder.
func TestSupervisorLifecycleSpansAndFlight(t *testing.T) {
	backend := writeBackend(t, `#!/bin/sh
exit 42
`)
	dir := t.TempDir()
	w := core.NewTest()
	w.Flight = &obs.FlightRecorder{Dir: dir, MinInterval: time.Nanosecond}
	m := w.EnableObservability()
	m.Trace.SetEnabled(true)
	term := &lockedBuf{}
	f := New(w, nil, term)
	if _, err := f.Supervise(backend, nil, RestartPolicy{
		MaxRestarts: 1,
		Backoff:     time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if code := runLoop(t, w, 15*time.Second); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	var exits, restarts int
	for _, sp := range m.Trace.Spans() {
		if sp.Kind != "lifecycle" {
			continue
		}
		switch {
		case strings.HasPrefix(sp.Name, "backend_exit "):
			exits++
			if sp.Name != "backend_exit crash" {
				t.Errorf("exit span = %q, want backend_exit crash", sp.Name)
			}
		case sp.Name == "backend_restart":
			restarts++
		}
	}
	if exits != 2 || restarts != 1 {
		t.Errorf("lifecycle spans: %d exits, %d restarts; want 2 and 1", exits, restarts)
	}
	if m.Flight.Dumps.Load() == 0 {
		t.Error("backend crash did not trip the flight recorder")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "wafe-flight-*-backend_crash.json"))
	if len(files) == 0 {
		t.Errorf("no backend_crash flight dump in %s", dir)
	}
}
