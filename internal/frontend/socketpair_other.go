//go:build !unix

package frontend

import (
	"errors"
	"os"
)

// socketpair is unavailable on this platform; Spawn falls back to
// pipes, mirroring the original's "support for PIPES ... is included
// for systems without the socketpair system call".
func socketpair() (parent, child *os.File, err error) {
	return nil, nil, errors.New("socketpair not supported on this platform")
}

// closeWrite is only reached with a socketpair transport, which this
// platform never establishes; closing the whole file is a safe stub.
func closeWrite(f *os.File) error { return f.Close() }
