package frontend

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"wafe/internal/core"
	"wafe/internal/obs"
	"wafe/internal/tcl"
	"wafe/internal/xt"
)

// Frontend drives one Wafe instance in any of the three modes. In
// frontend mode it owns the pipe pair to the application program and
// the optional mass-transfer channel.
type Frontend struct {
	W    *core.Wafe
	Opts *Options

	// Terminal receives non-command output lines from the application
	// program and diagnostics ("other lines from the application are
	// printed by Wafe to stdout").
	Terminal io.Writer

	// toApp is the application program's stdin. Wafe's echo/puts output
	// is sent there in frontend mode; the backend's read loop consumes
	// it.
	toApp io.Writer

	// mass-transfer state (setCommunicationVariable).
	massVar    string
	massLimit  int
	massAction string
	massBuf    []byte
	massFD     int

	// stats for tests and benchmarks. The same counts feed the
	// observability registry (frontend.* metrics) once it is enabled.
	CommandLines  int
	PassedLines   int
	OverlongLines int
	// EvalErrors counts command lines whose evaluation failed; the
	// failure itself is reported on the terminal only, so the counter
	// is the backend-visible signal (statistics, metrics dump).
	EvalErrors int
	// ReadErrors counts command-pipe read failures — a broken pipe is
	// not a clean backend exit and must not masquerade as one.
	ReadErrors int

	// onBackendGone, when non-nil, handles the end of the command pipe
	// (clean EOF or a read error) instead of the default quit. The
	// Supervisor installs itself here to classify the exit and apply
	// the restart policy.
	onBackendGone func(readErr error)

	// Serve-mode mirrors, nil outside serve mode: per-line latency is
	// also observed into the server-wide aggregate histogram, and line
	// and error counts into this session's labelled counters.
	aggLatency *obs.Histogram
	aggLines   *obs.Counter
	aggErrors  *obs.Counter
}

// SetServeObs wires the serve-mode aggregates: lat receives every
// line's handling latency alongside the session's own histogram;
// lines/errs are the per-session labelled counters from the server
// registry. All three may be nil.
func (f *Frontend) SetServeObs(lat *obs.Histogram, lines, errs *obs.Counter) {
	f.aggLatency = lat
	f.aggLines = lines
	f.aggErrors = errs
}

// New wires a Frontend around a Wafe instance.
func New(w *core.Wafe, opts *Options, terminal io.Writer) *Frontend {
	if opts == nil {
		opts = &Options{Prefix: '%', LineLimit: DefaultLineLimit}
	}
	if opts.Prefix == 0 {
		opts.Prefix = '%'
	}
	if opts.LineLimit == 0 {
		opts.LineLimit = DefaultLineLimit
	}
	f := &Frontend{W: w, Opts: opts, Terminal: terminal, massFD: 3}
	// Trace lines echo to the terminal, never onto the backend pipe,
	// mirroring the original debug mode ("other lines ... are printed
	// by Wafe to stdout").
	w.SetTraceSink(func(line string) { fmt.Fprintln(f.Terminal, line) })
	f.registerCommands()
	return f
}

// registerCommands adds the frontend-mode commands getChannel and
// setCommunicationVariable.
func (f *Frontend) registerCommands() {
	f.W.Interp.RegisterCommand("getChannel", func(_ *tcl.Interp, argv []string) (string, error) {
		return strconv.Itoa(f.massFD), nil
	})
	f.W.Interp.RegisterCommand("setCommunicationVariable", func(_ *tcl.Interp, argv []string) (string, error) {
		if len(argv) != 4 {
			return "", tcl.NewError("wrong # args: should be \"setCommunicationVariable varName byteCount script\"")
		}
		n, err := strconv.Atoi(argv[2])
		if err != nil || n <= 0 {
			return "", tcl.NewError("bad byte count %q", argv[2])
		}
		f.massVar = argv[1]
		f.massLimit = n
		f.massAction = argv[3]
		// Bytes may already be buffered: the data channel and the
		// command pipe are independent inputs, so the payload can race
		// ahead of the arming command. Buffered bytes count toward the
		// transfer being armed (they are not discarded).
		f.drainMass()
		return "", nil
	})
}

// AttachApp wires the application program's stdio: appOut is the
// backend's stdout (read for `%` command lines), appIn its stdin
// (receives Wafe's echo output). The reader goroutine feeds the Xt
// event loop through AddInputEvents, mirroring XtAppAddInput on the
// pipe, and distinguishes three terminal conditions: clean EOF, a read
// error, and an overlong line (which is skipped, not terminal at all).
func (f *Frontend) AttachApp(appOut io.Reader, appIn io.Writer) {
	f.toApp = appIn
	// Route the interpreter's output to the backend.
	f.W.Interp.Stdout = func(line string) {
		fmt.Fprintln(appIn, line)
		if fl, ok := appIn.(interface{ Flush() error }); ok {
			_ = fl.Flush()
		}
	}
	events := make(chan xt.InputEvent, 256)
	go readCommandLines(appOut, f.Opts.LineLimit+4096, events)
	f.W.App.AddInputEvents(events, f.handleInputEvent)
}

// readCommandLines reads the backend's stdout line by line and delivers
// each as an InputEvent. A line longer than max bytes is truncated to
// max and the remainder discarded up to its newline (skip-and-resync),
// so one runaway line cannot end the session — the frontend rejects the
// truncated prefix as overlong and the next line parses normally. A
// read error is delivered as a terminal Err event, distinct from EOF
// (the backend closing its stdout); bufio.Scanner conflated the two by
// stopping silently, which made ErrTooLong and broken pipes look like a
// clean backend exit.
func readCommandLines(r io.Reader, max int, out chan<- xt.InputEvent) {
	defer close(out)
	br := bufio.NewReaderSize(r, 64*1024)
	var buf []byte
	skipping := false
	for {
		chunk, err := br.ReadSlice('\n')
		if skipping {
			// Discarding the tail of an overlong line.
		} else if buf = append(buf, chunk...); len(buf) > max {
			buf = buf[:max]
			skipping = true
		}
		switch err {
		case nil:
			out <- xt.InputEvent{Line: chopLine(buf)}
			buf, skipping = buf[:0], false
		case bufio.ErrBufferFull:
			// Mid-line: keep reading.
		case io.EOF:
			if len(buf) > 0 {
				out <- xt.InputEvent{Line: chopLine(buf)}
			}
			out <- xt.InputEvent{EOF: true}
			return
		default:
			// A partial line before the error is dropped: executing a
			// truncated command would be worse than losing it.
			out <- xt.InputEvent{Err: err}
			return
		}
	}
}

// chopLine strips the line terminator (\n, optionally preceded by \r)
// and returns the line as a string.
func chopLine(b []byte) string {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
		if n := len(b); n > 0 && b[n-1] == '\r' {
			b = b[:n-1]
		}
	}
	return string(b)
}

// handleInputEvent runs on the event-loop goroutine for every delivery
// from the command pipe.
func (f *Frontend) handleInputEvent(ev xt.InputEvent) {
	switch {
	case ev.Err != nil:
		f.ReadErrors++
		if m := f.W.Metrics; m != nil {
			m.Frontend.ReadErrors.Inc()
		}
		fmt.Fprintf(f.Terminal, "wafe: read error on command pipe: %v\n", ev.Err)
		f.backendGone(ev.Err)
	case ev.EOF:
		f.backendGone(nil)
	default:
		f.HandleAppLine(ev.Line)
	}
}

// backendGone reacts to the end of the command pipe. Without a
// supervisor the frontend quits, as before; a supervisor classifies
// the exit and applies its restart policy instead.
func (f *Frontend) backendGone(readErr error) {
	if f.onBackendGone != nil {
		f.onBackendGone(readErr)
		return
	}
	f.W.App.Quit(f.W.ExitCode())
}

// HandleAppLine processes one output line from the application program:
// prefix lines are interpreted as Wafe commands, everything else passes
// through to the terminal. With observability enabled, each line's
// class and handling latency are recorded, and traceOn echoes command
// lines to the terminal. With tracing enabled the line is the root
// span of the request tree; a line over the flight recorder's latency
// threshold trips a flight dump.
func (f *Frontend) HandleAppLine(line string) {
	m := f.W.Metrics
	if m == nil && f.aggLatency == nil {
		f.handleAppLine(line, nil)
		return
	}
	var sp obs.SpanCtx
	if m != nil {
		sp = m.Trace.StartSpan("line", spanLabel(line))
	}
	start := time.Now()
	f.handleAppLine(line, m)
	d := time.Since(start)
	sp.End()
	if m != nil {
		m.Frontend.LineLatency.Observe(d)
		if fr := m.Flight; fr != nil && fr.TripLatency(d) {
			_, _ = fr.Trip("line_latency", m.Trace.Session(),
				fmt.Sprintf("line took %v: %.60q", d, line), m, &m.Trace)
		}
	}
	if f.aggLatency != nil {
		f.aggLatency.Observe(d)
	}
}

// spanLabel condenses a protocol line into a span name.
func spanLabel(line string) string {
	const max = 64
	if len(line) > max {
		line = line[:max]
	}
	return line
}

func (f *Frontend) handleAppLine(line string, m *obs.Metrics) {
	if len(line) > f.Opts.LineLimit {
		f.OverlongLines++
		if m != nil {
			m.Frontend.OverlongLines.Inc()
		}
		fmt.Fprintf(f.Terminal, "wafe: command line exceeds %d bytes (%d), ignored\n", f.Opts.LineLimit, len(line))
		return
	}
	if len(line) > 0 && line[0] == f.Opts.Prefix {
		f.CommandLines++
		if f.aggLines != nil {
			f.aggLines.Inc()
		}
		if m != nil {
			m.Frontend.CommandLines.Inc()
			if m.Trace.Enabled() {
				m.Trace.Emit("cmd", line)
			}
		}
		if _, err := f.W.Eval(line[1:]); err != nil {
			f.EvalErrors++
			if f.aggErrors != nil {
				f.aggErrors.Inc()
			}
			// The statistics/traceOn commands enable observability
			// mid-line; re-read so the very first failure still counts.
			if m == nil {
				m = f.W.Metrics
			}
			if m != nil {
				m.Frontend.EvalErrors.Inc()
			}
			fmt.Fprintf(f.Terminal, "wafe: error in command %.60q: %v\n", line, err)
		}
		return
	}
	f.PassedLines++
	if m != nil {
		m.Frontend.PassedLines.Inc()
	}
	fmt.Fprintln(f.Terminal, line)
}

// AttachMass wires the optional data channel: bytes read from r
// accumulate until the configured byte count is reached, then the
// transfer variable is set and the action script runs.
func (f *Frontend) AttachMass(r io.Reader) {
	chunks := make(chan string, 64)
	go func() {
		defer close(chunks)
		buf := make([]byte, 8192)
		for {
			n, err := r.Read(buf)
			if n > 0 {
				chunks <- string(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}()
	f.W.App.AddInput(chunks, func(chunk string, eof bool) {
		if eof {
			return
		}
		f.massBuf = append(f.massBuf, chunk...)
		f.drainMass()
	})
}

// FeedMass delivers data-channel bytes synchronously (tests and
// benchmarks; AttachMass is the asynchronous production path).
func (f *Frontend) FeedMass(data string) {
	f.massBuf = append(f.massBuf, data...)
	f.drainMass()
}

func (f *Frontend) drainMass() {
	for f.massLimit > 0 && len(f.massBuf) >= f.massLimit {
		data := string(f.massBuf[:f.massLimit])
		f.massBuf = append(f.massBuf[:0], f.massBuf[f.massLimit:]...)
		if f.massVar != "" {
			if err := f.W.Interp.SetGlobalVar(f.massVar, data); err != nil {
				fmt.Fprintf(f.Terminal, "wafe: mass transfer variable: %v\n", err)
				return
			}
		}
		if f.massAction != "" {
			if _, err := f.W.Eval(f.massAction); err != nil {
				fmt.Fprintf(f.Terminal, "wafe: mass transfer action: %v\n", err)
			}
		}
		if m := f.W.Metrics; m != nil {
			m.Frontend.MassTransfers.Inc()
			m.Frontend.MassBytes.Add(int64(f.massLimit))
		}
	}
}

// SendInitCom delivers the InitCom resource to the backend after the
// fork ("for instance in Prolog, it is convenient to send a startup
// goal"). It queries the resource database for <appName>.initCom /
// *InitCom.
func (f *Frontend) SendInitCom() {
	if f.toApp == nil {
		return
	}
	v, ok := f.W.App.DB.Query([]string{f.W.App.Name}, []string{f.W.App.ClassName}, "initCom", "InitCom")
	if !ok || v == "" {
		return
	}
	fmt.Fprintln(f.toApp, v)
	if fl, ok := f.toApp.(interface{ Flush() error }); ok {
		_ = fl.Flush()
	}
}

// RunScript evaluates a command file's content (file mode).
func (f *Frontend) RunScript(content string) error {
	_, err := f.W.Eval(content)
	if err != nil {
		return err
	}
	return nil
}

// RunInteractive reads commands from r, evaluating line by line with
// brace-continuation: lines are accumulated until braces and brackets
// balance, so multi-line procs work at the prompt.
func (f *Frontend) RunInteractive(r io.Reader, prompt func()) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), f.Opts.LineLimit+4096)
	var pending strings.Builder
	if prompt != nil {
		prompt()
	}
	for sc.Scan() {
		if pending.Len() > 0 {
			pending.WriteByte('\n')
		}
		pending.WriteString(sc.Text())
		script := pending.String()
		if !balanced(script) {
			continue
		}
		pending.Reset()
		if strings.TrimSpace(script) == "" {
			if prompt != nil {
				prompt()
			}
			continue
		}
		res, err := f.W.Eval(script)
		switch {
		case err != nil:
			fmt.Fprintf(f.Terminal, "error: %v\n", err)
		case res != "":
			fmt.Fprintln(f.Terminal, res)
		}
		if f.W.QuitRequested() {
			return nil
		}
		if prompt != nil {
			prompt()
		}
	}
	return sc.Err()
}

// balanced reports whether braces/brackets balance outside of
// backslash escapes and double-quoted strings (good enough for
// interactive continuation). Quotes are only significant at brace
// depth zero — inside braces a `"` is an ordinary character, as in
// Tcl. A closer with no matching opener can never balance by reading
// more input, so negative depth is terminal: the line is handed to
// the evaluator, which reports the parse error.
func balanced(s string) bool {
	depth := 0
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\':
			if i == len(s)-1 {
				// A trailing backslash is a Tcl line continuation
				// (backslash-newline): the command is incomplete until
				// more input arrives.
				return false
			}
			i++
		case inQuote:
			if c == '"' {
				inQuote = false
			}
		case c == '"' && depth == 0:
			inQuote = true
		case c == '{' || c == '[':
			depth++
		case c == '}' || c == ']':
			depth--
			if depth < 0 {
				return true
			}
		}
	}
	return depth == 0 && !inQuote
}
