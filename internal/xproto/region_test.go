package xproto

import (
	"strings"
	"testing"

	"wafe/internal/obs"
)

func TestRectBasics(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 10, H: 10}
	b := Rect{X: 5, Y: 5, W: 10, H: 10}
	if !a.Intersects(b) {
		t.Error("overlapping rects must intersect")
	}
	if a.Intersects(Rect{X: 10, Y: 0, W: 5, H: 5}) {
		t.Error("edge-adjacent rects do not strictly intersect")
	}
	if got := a.Union(b); got != (Rect{X: 0, Y: 0, W: 15, H: 15}) {
		t.Errorf("Union = %+v", got)
	}
	if got := a.Intersect(b); got != (Rect{X: 5, Y: 5, W: 5, H: 5}) {
		t.Errorf("Intersect = %+v", got)
	}
	if !a.Contains(Rect{X: 2, Y: 2, W: 3, H: 3}) || a.Contains(b) {
		t.Error("Contains wrong")
	}
	var empty Rect
	if !empty.Empty() || !a.Contains(empty) {
		t.Error("empty rect handling wrong")
	}
}

func TestRegionCoalescesTouchingRects(t *testing.T) {
	var r Region
	// Two edge-adjacent rects merge into one.
	r.Add(Rect{X: 0, Y: 0, W: 10, H: 10})
	r.Add(Rect{X: 10, Y: 0, W: 10, H: 10})
	if r.Len() != 1 {
		t.Fatalf("Len = %d after adjacent add, want 1", r.Len())
	}
	if got := r.Bounds(); got != (Rect{X: 0, Y: 0, W: 20, H: 10}) {
		t.Errorf("Bounds = %+v", got)
	}
	// A disjoint rect stays separate.
	r.Add(Rect{X: 100, Y: 100, W: 5, H: 5})
	if r.Len() != 2 {
		t.Fatalf("Len = %d after disjoint add, want 2", r.Len())
	}
	// A rect bridging both triggers the cascade: everything merges.
	r.Add(Rect{X: 0, Y: 0, W: 101, H: 101})
	if r.Len() != 1 {
		t.Fatalf("Len = %d after bridging add, want 1", r.Len())
	}
	if r.Added() != 4 {
		t.Errorf("Added = %d, want 4", r.Added())
	}
}

func TestRegionCapOverflowMergesLeastGrowth(t *testing.T) {
	var r Region
	// Fill all slots with well-separated rects.
	for i := 0; i < regionCap; i++ {
		r.Add(Rect{X: i * 100, Y: 0, W: 10, H: 10})
	}
	if r.Len() != regionCap {
		t.Fatalf("Len = %d, want %d", r.Len(), regionCap)
	}
	// One more disjoint rect must merge into an existing slot rather
	// than grow the region, and the merge target should be the nearest
	// rect (least area growth): the one at x=700.
	r.Add(Rect{X: 720, Y: 0, W: 10, H: 10})
	if r.Len() != regionCap {
		t.Fatalf("Len = %d after overflow, want %d", r.Len(), regionCap)
	}
	found := false
	for _, rc := range r.Rects() {
		if rc.X == 700 && rc.W == 30 {
			found = true
		}
	}
	if !found {
		t.Errorf("overflow did not merge into nearest rect: %+v", r.Rects())
	}
}

func TestExposeCoalescingAndMetrics(t *testing.T) {
	d := NewTestDisplay()
	m := &obs.XprotoMetrics{}
	d.SetObs(m)
	w := mustWindow(t, d, d.Root, 0, 0, 100, 100, 0)
	d.SelectInput(w, ExposureMask)
	d.MapWindow(w)
	drain(d) // initial map expose
	// Three overlapping damage rects coalesce into one Expose.
	d.InjectExposeRect(w, 0, 0, 20, 20)
	d.InjectExposeRect(w, 10, 10, 20, 20)
	d.InjectExposeRect(w, 20, 20, 20, 20)
	evs := drain(d)
	if len(evs) != 1 || evs[0].Type != Expose {
		t.Fatalf("got %d events, want 1 coalesced Expose: %+v", len(evs), evs)
	}
	if evs[0].X != 0 || evs[0].Y != 0 || evs[0].Width != 40 || evs[0].Height != 40 {
		t.Errorf("coalesced rect = %d,%d %dx%d, want 0,0 40x40", evs[0].X, evs[0].Y, evs[0].Width, evs[0].Height)
	}
	if m.ExposesCoalesced.Load() != 2 {
		t.Errorf("exposes_coalesced = %d, want 2", m.ExposesCoalesced.Load())
	}
	if m.DamageRects.Load() < 3 {
		t.Errorf("damage_rects = %d, want >= 3", m.DamageRects.Load())
	}
}

func TestInjectExposeDroppedCounted(t *testing.T) {
	d := NewTestDisplay()
	m := &obs.XprotoMetrics{}
	d.SetObs(m)
	w := mustWindow(t, d, d.Root, 0, 0, 50, 50, 0)
	d.MapWindow(w)
	// No ExposureMask selected: the expose is dropped, and counted.
	d.InjectExpose(w)
	if evs := drain(d); len(evs) != 0 {
		t.Fatalf("got %d events, want 0", len(evs))
	}
	if m.ExposesDropped.Load() != 1 {
		t.Errorf("exposes_dropped = %d, want 1", m.ExposesDropped.Load())
	}
	// Nonexistent window: dropped too.
	d.InjectExposeRect(WindowID(9999), 0, 0, 1, 1)
	if m.ExposesDropped.Load() != 2 {
		t.Errorf("exposes_dropped = %d, want 2", m.ExposesDropped.Load())
	}
}

func TestDamageRectClippedToWindow(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 0, 0, 50, 40, 0)
	d.SelectInput(w, ExposureMask)
	d.MapWindow(w)
	drain(d)
	d.DamageRect(w, 40, 30, 100, 100)
	evs := drain(d)
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	if evs[0].X != 40 || evs[0].Y != 30 || evs[0].Width != 10 || evs[0].Height != 10 {
		t.Errorf("clipped rect = %d,%d %dx%d, want 40,30 10x10", evs[0].X, evs[0].Y, evs[0].Width, evs[0].Height)
	}
	// Fully outside: no event at all.
	d.DamageRect(w, 60, 60, 10, 10)
	if evs := drain(d); len(evs) != 0 {
		t.Errorf("out-of-window damage delivered: %+v", evs)
	}
}

func TestClearAreaScrubsDisplayList(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 0, 0, 120, 60, 0)
	d.MapWindow(w)
	gc := d.NewGC()
	d.FillRectangle(w, gc, 10, 10, 20, 20) // fully inside the clear
	d.FillRectangle(w, gc, 0, 0, 120, 60)  // spans the window, kept
	d.DrawString(w, gc, 25, 20, "hello")   // intersects the clear, dropped
	d.DrawString(w, gc, 80, 50, "safe")    // outside, kept
	d.ClearArea(w, 5, 5, 40, 40)
	ops := d.DrawLogFor(w)
	var kinds []string
	var texts []string
	for _, op := range ops {
		kinds = append(kinds, op.Kind.String())
		if op.Kind == OpDrawString {
			texts = append(texts, op.Text)
		}
	}
	if strings.Join(texts, ",") != "safe" {
		t.Errorf("strings after scrub = %v, want [safe]", texts)
	}
	// The contained fill is gone; the spanning fill survives; the scrub
	// appended a partial clear.
	want := "FillRectangle,DrawString,ClearArea"
	if got := strings.Join(kinds, ","); got != want {
		t.Errorf("ops after scrub = %s, want %s", got, want)
	}
	last := ops[len(ops)-1]
	if last.X != 5 || last.Y != 5 || last.W != 40 || last.H != 40 {
		t.Errorf("partial clear rect = %d,%d %dx%d", last.X, last.Y, last.W, last.H)
	}
}

func TestClearAreaFullWindowResetsLog(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 0, 0, 30, 30, 0)
	gc := d.NewGC()
	d.DrawString(w, gc, 5, 12, "x")
	d.ClearArea(w, 0, 0, 30, 30)
	ops := d.DrawLogFor(w)
	if len(ops) != 1 || ops[0].Kind != OpClear || ops[0].W != 30 {
		t.Errorf("full-window ClearArea should degenerate to ClearWindow, got %+v", ops)
	}
}

func TestSnapshotMemoization(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 0, 0, 120, 40, 0)
	d.MapWindow(w)
	gc := d.NewGC()
	d.DrawString(w, gc, 0, 12, "first")
	s1 := d.Snapshot(d.Root)
	s2 := d.Snapshot(d.Root)
	if s1 != s2 {
		t.Fatal("repeated snapshot differs")
	}
	if !strings.Contains(s1, "first") {
		t.Fatalf("snapshot missing string: %q", s1)
	}
	// Any draw invalidates the memo.
	d.DrawString(w, gc, 0, 25, "second")
	s3 := d.Snapshot(d.Root)
	if !strings.Contains(s3, "second") {
		t.Errorf("snapshot not invalidated by draw: %q", s3)
	}
	// So does a window-tree mutation.
	d.UnmapWindow(w)
	s4 := d.Snapshot(d.Root)
	if strings.Contains(s4, "second") {
		t.Errorf("snapshot not invalidated by unmap: %q", s4)
	}
	// And a background change.
	d.MapWindow(w)
	before := d.Snapshot(d.Root)
	d.SetWindowBackground(w, Pixel{R: 1, G: 2, B: 3})
	_ = before
	if d.snapGen == d.gen {
		t.Error("SetWindowBackground did not bump the generation")
	}
}

func TestRenderImageClipsToWindow(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 10, 10, 20, 20, 0)
	d.MapWindow(w)
	gc := d.NewGC()
	gc.Foreground = Pixel{R: 255}
	// Fill overhangs the window on all sides.
	d.FillRectangle(w, gc, -5, -5, 40, 40)
	img := d.RenderImage(d.Root)
	if got := img.RGBAAt(15, 15); got.R != 255 {
		t.Errorf("inside pixel = %v, want red", got)
	}
	// x=35 is 25 in window coords, outside the 20-wide window: the
	// overhanging fill must not have painted there.
	if got := img.RGBAAt(35, 35); got.R == 255 && got.G == 0 {
		t.Errorf("overhanging fill painted outside the window: %v", got)
	}
}
