package xproto

// selection implements the server half of the ICCCM selection protocol
// in the simplified form Xt exposes (XtOwnSelection / XtGetSelection-
// Value): an owner window plus a conversion callback per selection atom.
type selection struct {
	owner   WindowID
	convert func(target string) (value string, ok bool)
}

// OwnSelection makes win the owner of the named selection (e.g.
// "PRIMARY"). The convert callback produces the selection value for a
// requested target type ("STRING" is the only target Wafe uses).
func (d *Display) OwnSelection(name string, win WindowID, convert func(target string) (string, bool)) {
	d.selections[name] = &selection{owner: win, convert: convert}
}

// DisownSelection clears ownership if win is the current owner.
func (d *Display) DisownSelection(name string, win WindowID) {
	if s, ok := d.selections[name]; ok && s.owner == win {
		delete(d.selections, name)
	}
}

// SelectionOwner returns the owner window of the selection, or None.
func (d *Display) SelectionOwner(name string) WindowID {
	if s, ok := d.selections[name]; ok {
		return s.owner
	}
	return None
}

// ConvertSelection requests the selection value for a target type.
// Unlike the asynchronous X protocol, the headless server resolves the
// conversion synchronously; Xt's callback-style API is layered on top.
func (d *Display) ConvertSelection(name, target string) (string, bool) {
	s, ok := d.selections[name]
	if !ok || s.convert == nil {
		return "", false
	}
	return s.convert(target)
}
