package xproto

import (
	"fmt"
	"sort"
	"sync"

	"wafe/internal/obs"
)

// Display is one headless X display (server + screen). A Display is not
// safe for concurrent use; the Xt layer serializes access through its
// event loop, exactly as Xlib connections are used in Wafe.
type Display struct {
	Name          string
	Width, Height int

	Root    WindowID
	windows map[WindowID]*Window
	nextID  WindowID

	// queue is the pending-event FIFO. qhead indexes the next event to
	// deliver; once the queue drains, both reset so the backing array's
	// capacity is reused instead of reallocating on every event cycle.
	queue  []Event
	qhead  int
	serial uint64

	// gcProto is the default graphics context NewGC copies.
	gcProto GC

	// Pointer state.
	pointerX, pointerY int
	pointerWin         WindowID
	buttonState        Modifiers
	modState           Modifiers
	grabWindow         WindowID // explicit pointer grab (popup menus)
	// implicitGrab is the window that received a ButtonPress; all
	// pointer events route there until every button is released, as
	// the X server's automatic grab specifies.
	implicitGrab WindowID

	focus WindowID

	keymap *Keymap

	selections map[string]*selection

	// Display list of drawing operations, grouped per window, used for
	// snapshots and assertions.
	drawLog map[WindowID][]DrawOp

	// damage accumulates per-window dirty regions; FlushDamage converts
	// each into coalesced Expose events when the event queue drains.
	// Region values persist across cycles (Reset keeps storage) and
	// damaged lists the windows with pending damage in arrival order,
	// its capacity reused — the steady-state damage/flush cycle
	// allocates nothing.
	damage  map[WindowID]*Region
	damaged []WindowID

	// gen counts display-list and window-tree mutations; the snapshot
	// cache keys on it.
	gen uint64

	// Snapshot scratch, reused across calls: the cell grid, the output
	// buffer, and a single-slot result cache keyed by (window, gen).
	snapGrid [][]rune
	snapBuf  []byte
	snapWin  WindowID
	snapGen  uint64
	snapStr  string

	// obs, when non-nil, counts protocol requests per operation and
	// queued events. Nil (the default) keeps request paths at a single
	// pointer comparison.
	obs *obs.XprotoMetrics

	// trace, when non-nil, records each protocol request as an instant
	// span parented to whatever span is open (the dispatching callback
	// or eval). Same nil discipline as obs.
	trace *obs.Trace

	closed bool
}

// SetObs attaches (or, with nil, detaches) the observability metrics.
func (d *Display) SetObs(m *obs.XprotoMetrics) { d.obs = m }

// SetTrace attaches (or, with nil, detaches) the span tracer.
func (d *Display) SetTrace(t *obs.Trace) { d.trace = t }

// registry of open displays, keyed by display name, emulating multiple
// X servers ("applicationShell top2 dec4:0" opens a second display).
var (
	registryMu sync.Mutex
	registry   = map[string]*Display{}
)

// OpenDisplay opens (or returns the already-open) display with the
// given name. The empty name means ":0".
func OpenDisplay(name string) *Display {
	if name == "" {
		name = ":0"
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if d, ok := registry[name]; ok && !d.closed {
		return d
	}
	d := newDisplay(name)
	registry[name] = d
	return d
}

// CloseDisplay closes the display and removes it from the registry.
func CloseDisplay(d *Display) {
	registryMu.Lock()
	defer registryMu.Unlock()
	d.closed = true
	delete(registry, d.Name)
}

// OpenDisplayNames lists the names of all open displays, sorted.
func OpenDisplayNames() []string {
	registryMu.Lock()
	defer registryMu.Unlock()
	var names []string
	for n, d := range registry {
		if !d.closed {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

func newDisplay(name string) *Display {
	d := &Display{
		Name:       name,
		Width:      1280,
		Height:     1024,
		windows:    make(map[WindowID]*Window),
		nextID:     2,
		keymap:     DefaultKeymap(),
		selections: make(map[string]*selection),
		drawLog:    make(map[WindowID][]DrawOp),
		damage:     make(map[WindowID]*Region),
	}
	d.gcProto = GC{
		Foreground: d.BlackPixel(),
		Background: d.WhitePixel(),
		Font:       LoadFont("fixed"),
		LineWidth:  1,
	}
	root := &Window{
		ID:      1,
		Parent:  None,
		Width:   d.Width,
		Height:  d.Height,
		Mapped:  true,
		display: d,
	}
	d.Root = root.ID
	d.windows[root.ID] = root
	d.pointerWin = root.ID
	return d
}

// NewTestDisplay returns a private display not entered in the registry,
// for tests that must not interfere with each other.
func NewTestDisplay() *Display { return newDisplay(":test") }

// WhitePixel and BlackPixel mirror the Xlib macros.
func (d *Display) WhitePixel() Pixel { return Pixel{R: 255, G: 255, B: 255} }

// BlackPixel returns the screen's black pixel.
func (d *Display) BlackPixel() Pixel { return Pixel{} }

// Keymap returns the display's keyboard mapping.
func (d *Display) Keymap() *Keymap { return d.keymap }

func (d *Display) enqueue(ev Event) {
	if m := d.obs; m != nil {
		m.EventsQueued.Inc()
	}
	d.serial++
	ev.Serial = d.serial
	d.queue = append(d.queue, ev)
}

// Pending returns the number of queued events (XPending).
func (d *Display) Pending() int { return len(d.queue) - d.qhead }

// NextEvent dequeues the oldest event. ok is false when the queue is
// empty (the real call would block; the Xt layer treats empty as idle).
// Draining the queue flushes accumulated window damage first, so
// coalesced Expose events are delivered after the mutations that
// caused them — the X server's expose-compression discipline.
func (d *Display) NextEvent() (Event, bool) {
	if d.qhead >= len(d.queue) {
		if len(d.queue) > 0 {
			d.queue = d.queue[:0]
			d.qhead = 0
		}
		d.FlushDamage()
		if len(d.queue) == 0 {
			return Event{}, false
		}
	}
	ev := d.queue[d.qhead]
	d.qhead++
	if d.qhead == len(d.queue) {
		d.queue = d.queue[:0]
		d.qhead = 0
	}
	return ev, true
}

// Flush is a no-op kept for API parity with Xlib.
func (d *Display) Flush() {}

// SetInputFocus assigns keyboard focus, generating FocusOut/FocusIn.
func (d *Display) SetInputFocus(id WindowID) {
	if d.focus == id {
		return
	}
	if old, ok := d.windows[d.focus]; ok && old.EventMask&FocusChangeMask != 0 {
		d.enqueue(Event{Type: FocusOut, Window: d.focus})
	}
	d.focus = id
	if nw, ok := d.windows[id]; ok && nw.EventMask&FocusChangeMask != 0 {
		d.enqueue(Event{Type: FocusIn, Window: id})
	}
}

// Focus returns the current input focus window.
func (d *Display) Focus() WindowID { return d.focus }

// GrabPointer directs all pointer events to the given window until
// UngrabPointer (used by popup shells with exclusive grabs).
func (d *Display) GrabPointer(id WindowID) { d.grabWindow = id }

// UngrabPointer releases the pointer grab.
func (d *Display) UngrabPointer() { d.grabWindow = None }

// GrabbedWindow returns the pointer grab window, or None.
func (d *Display) GrabbedWindow() WindowID { return d.grabWindow }

// --- event synthesis -----------------------------------------------------
//
// In a real server these states change because a human moves the mouse;
// tests and example drivers inject the hardware-level happenings and the
// display derives the proper event stream (crossing events, state
// masks, keysym lookup) exactly as a server would.

// WarpPointer moves the pointer to root coordinates, generating
// LeaveNotify/EnterNotify pairs on window crossings and MotionNotify on
// the destination window.
func (d *Display) WarpPointer(rootX, rootY int) {
	oldWin := d.pointerWin
	d.pointerX, d.pointerY = rootX, rootY
	newWin := d.windowAt(rootX, rootY)
	if oldWin != newWin {
		d.crossing(oldWin, newWin, rootX, rootY)
	}
	d.pointerWin = newWin
	// During a grab (explicit or the automatic button grab) motion is
	// reported to the grab window regardless of pointer position.
	motionWin := newWin
	if t := d.pointerTarget(); t != None {
		motionWin = t
	}
	if w, ok := d.windows[motionWin]; ok && w.EventMask&PointerMotionMask != 0 {
		x, y := d.toWindow(w, rootX, rootY)
		d.enqueue(Event{
			Type: MotionNotify, Window: motionWin,
			X: x, Y: y, XRoot: rootX, YRoot: rootY,
			State: d.buttonState | d.modState,
		})
	}
}

// crossing generates Leave on the old chain and Enter on the new chain
// (simplified: only the immediate windows, which is what Xt translation
// tables consume).
func (d *Display) crossing(oldWin, newWin WindowID, rootX, rootY int) {
	if w, ok := d.windows[oldWin]; ok && w.EventMask&LeaveWindowMask != 0 {
		x, y := d.toWindow(w, rootX, rootY)
		d.enqueue(Event{Type: LeaveNotify, Window: oldWin, X: x, Y: y, XRoot: rootX, YRoot: rootY, State: d.buttonState | d.modState})
	}
	if w, ok := d.windows[newWin]; ok && w.EventMask&EnterWindowMask != 0 {
		x, y := d.toWindow(w, rootX, rootY)
		d.enqueue(Event{Type: EnterNotify, Window: newWin, X: x, Y: y, XRoot: rootX, YRoot: rootY, State: d.buttonState | d.modState})
	}
}

func (d *Display) toWindow(w *Window, rootX, rootY int) (int, int) {
	wx, wy := w.RootCoords(0, 0)
	return rootX - wx, rootY - wy
}

func (d *Display) recomputePointerWindow() {
	newWin := d.windowAt(d.pointerX, d.pointerY)
	if newWin != d.pointerWin {
		d.crossing(d.pointerWin, newWin, d.pointerX, d.pointerY)
		d.pointerWin = newWin
	}
}

// pointerTarget decides the destination window for a pointer event,
// honouring explicit grabs, then the automatic button-press grab.
func (d *Display) pointerTarget() WindowID {
	if d.grabWindow != None {
		return d.grabWindow
	}
	if d.implicitGrab != None {
		return d.implicitGrab
	}
	return None
}

func (d *Display) pointerDeliveryWindow() WindowID {
	if t := d.pointerTarget(); t != None {
		return t
	}
	return d.pointerWin
}

// InjectButtonPress presses a mouse button at the current pointer
// position. The first press installs the automatic grab: further
// pointer events go to the pressed window until all buttons release.
func (d *Display) InjectButtonPress(button int) {
	target := d.pointerDeliveryWindow()
	w, ok := d.windows[target]
	if !ok {
		return
	}
	// Walk up until a window selects ButtonPress (simplified event
	// propagation for unselected windows).
	for w != nil && w.EventMask&ButtonPressMask == 0 && w.Parent != None {
		w = d.windows[w.Parent]
	}
	if w == nil || w.EventMask&ButtonPressMask == 0 {
		d.buttonState |= buttonMask(button)
		return
	}
	if d.grabWindow == None && d.implicitGrab == None {
		d.implicitGrab = w.ID
	}
	x, y := d.toWindow(w, d.pointerX, d.pointerY)
	d.enqueue(Event{
		Type: ButtonPress, Window: w.ID, Button: button,
		X: x, Y: y, XRoot: d.pointerX, YRoot: d.pointerY,
		State: d.buttonState | d.modState,
	})
	d.buttonState |= buttonMask(button)
}

// InjectButtonRelease releases a mouse button; releasing the last
// button ends the automatic grab.
func (d *Display) InjectButtonRelease(button int) {
	d.buttonState &^= buttonMask(button)
	target := d.pointerDeliveryWindow()
	if d.buttonState == 0 {
		d.implicitGrab = None
	}
	w, ok := d.windows[target]
	if !ok {
		return
	}
	for w != nil && w.EventMask&ButtonReleaseMask == 0 && w.Parent != None {
		w = d.windows[w.Parent]
	}
	if w == nil || w.EventMask&ButtonReleaseMask == 0 {
		return
	}
	x, y := d.toWindow(w, d.pointerX, d.pointerY)
	d.enqueue(Event{
		Type: ButtonRelease, Window: w.ID, Button: button,
		X: x, Y: y, XRoot: d.pointerX, YRoot: d.pointerY,
		State: d.buttonState | d.modState | buttonMask(button),
	})
}

func buttonMask(button int) Modifiers {
	switch button {
	case 1:
		return Button1Mask
	case 2:
		return Button2Mask
	case 3:
		return Button3Mask
	}
	return 0
}

// keyTarget returns the window keyboard events go to: the focus window
// if set, else the pointer window.
func (d *Display) keyTarget() WindowID {
	if d.focus != None {
		return d.focus
	}
	return d.pointerWin
}

// InjectKeycode presses/releases a raw keycode against the focus (or
// pointer) window. Keysym and rune are derived from the keymap with the
// current modifier state, as XLookupString would.
func (d *Display) InjectKeycode(keycode int, press bool) {
	target := d.keyTarget()
	w, ok := d.windows[target]
	if !ok {
		return
	}
	mask := KeyPressMask
	typ := KeyPress
	if !press {
		mask = KeyReleaseMask
		typ = KeyRelease
	}
	for w != nil && w.EventMask&mask == 0 && w.Parent != None {
		w = d.windows[w.Parent]
	}
	sym, r := d.keymap.Lookup(keycode, d.modState&ShiftMask != 0)
	// Track modifier keys regardless of delivery.
	defer func() {
		if m := modifierFor(sym); m != 0 {
			if press {
				d.modState |= m
			} else {
				d.modState &^= m
			}
		}
	}()
	if w == nil || w.EventMask&mask == 0 {
		return
	}
	x, y := d.toWindow(w, d.pointerX, d.pointerY)
	d.enqueue(Event{
		Type: typ, Window: w.ID,
		Keycode: keycode, Keysym: sym, Rune: r,
		X: x, Y: y, XRoot: d.pointerX, YRoot: d.pointerY,
		State: d.buttonState | d.modState,
	})
}

func modifierFor(keysym string) Modifiers {
	switch keysym {
	case "Shift_L", "Shift_R":
		return ShiftMask
	case "Control_L", "Control_R":
		return ControlMask
	case "Alt_L", "Alt_R", "Meta_L", "Meta_R":
		return Mod1Mask
	}
	return 0
}

// TypeString injects the key press/release sequence that produces the
// given text, inserting Shift transitions as needed — the convenience
// used by tests and example drivers ("if the input w! is typed...").
func (d *Display) TypeString(s string) error {
	for _, r := range s {
		strokes, ok := d.keymap.StrokesFor(r)
		if !ok {
			return fmt.Errorf("xproto: no keycode produces %q", string(r))
		}
		if strokes.Shift {
			d.InjectKeycode(d.keymap.ShiftKeycode, true)
		}
		d.InjectKeycode(strokes.Keycode, true)
		d.InjectKeycode(strokes.Keycode, false)
		if strokes.Shift {
			d.InjectKeycode(d.keymap.ShiftKeycode, false)
		}
	}
	return nil
}

// InjectExpose queues a full-window Expose for the window. Mask misses
// are counted (xproto.exposes_dropped) instead of silently vanishing.
func (d *Display) InjectExpose(id WindowID) {
	d.InjectExposeRect(id, 0, 0, 0, 0)
}

// InjectExposeRect damages a rectangle of the window; a zero-sized rect
// means the whole window. The damage flows through the per-window
// region, so repeated injections coalesce into the minimal Expose set
// when the event queue drains. Requests for unknown windows or windows
// not selecting ExposureMask are dropped and counted.
func (d *Display) InjectExposeRect(id WindowID, x, y, w, h int) {
	win, ok := d.windows[id]
	if !ok || win.EventMask&ExposureMask == 0 {
		if m := d.obs; m != nil {
			m.ExposesDropped.Inc()
		}
		return
	}
	r := Rect{X: x, Y: y, W: w, H: h}
	if r.Empty() {
		r = Rect{W: win.Width, H: win.Height}
	}
	d.addDamage(win, r)
}

// DamageRect accumulates damage on the window, clipped to its bounds.
// The accumulated region is flushed into coalesced Expose events when
// the event queue drains (or explicitly via FlushDamage). Mask misses
// are dropped and counted, like InjectExposeRect.
func (d *Display) DamageRect(id WindowID, x, y, w, h int) {
	win, ok := d.windows[id]
	if !ok || win.EventMask&ExposureMask == 0 {
		if m := d.obs; m != nil {
			m.ExposesDropped.Inc()
		}
		return
	}
	d.addDamage(win, Rect{X: x, Y: y, W: w, H: h})
}

// addDamage is the internal accumulation point: clip to the window,
// count, and enter the rect into the window's region. Callers have
// already checked the event mask.
func (d *Display) addDamage(win *Window, r Rect) {
	if !win.Viewable() {
		return
	}
	r = r.Intersect(Rect{W: win.Width, H: win.Height})
	if r.Empty() {
		return
	}
	if m := d.obs; m != nil {
		m.DamageRects.Inc()
	}
	reg := d.damage[win.ID]
	if reg == nil {
		reg = &Region{}
		d.damage[win.ID] = reg
	}
	if reg.Len() == 0 {
		d.damaged = append(d.damaged, win.ID)
	}
	reg.Add(r)
}

// FlushDamage converts every pending damage region into Expose events,
// one per coalesced rect, in damage-arrival order. Windows that became
// unviewable (or deselected exposure) since the damage accrued are
// skipped, as a real server would. The number of mutations saved by
// coalescing is counted (xproto.exposes_coalesced).
func (d *Display) FlushDamage() {
	if len(d.damaged) == 0 {
		return
	}
	for i := 0; i < len(d.damaged); i++ {
		id := d.damaged[i]
		reg := d.damage[id]
		if reg == nil || reg.Len() == 0 {
			continue
		}
		if win, ok := d.windows[id]; ok && win.EventMask&ExposureMask != 0 && win.Viewable() {
			for _, r := range reg.Rects() {
				d.enqueue(Event{Type: Expose, Window: id, X: r.X, Y: r.Y, Width: r.W, Height: r.H})
			}
			if m := d.obs; m != nil && reg.Added() > reg.Len() {
				m.ExposesCoalesced.Add(int64(reg.Added() - reg.Len()))
			}
		}
		reg.Reset()
	}
	d.damaged = d.damaged[:0]
}

// InjectClientMessage queues a ClientMessage carrying an opaque string
// payload.
func (d *Display) InjectClientMessage(id WindowID, data string) {
	d.enqueue(Event{Type: ClientMessage, Window: id, Data: data})
}

// Pointer returns the current pointer root position and window.
func (d *Display) Pointer() (x, y int, win WindowID) {
	return d.pointerX, d.pointerY, d.pointerWin
}
