package xproto

import (
	"strings"
	"sync"
)

// Font is a fixed-metric server font. The headless server implements
// only monospaced metrics, which is all the Athena widgets assume for
// layout; glyph shapes exist solely in snapshots.
type Font struct {
	Name    string
	Width   int // advance per character
	Ascent  int
	Descent int
	Bold    bool
}

// Height returns the line height of the font.
func (f *Font) Height() int { return f.Ascent + f.Descent }

// TextWidth returns the pixel width of s in this font.
func (f *Font) TextWidth(s string) int { return f.Width * len([]rune(s)) }

// builtin font metrics, keyed by canonical short name. "fixed" matches
// the classic 6x13 server font referenced throughout the paper era.
var builtinFonts = map[string]Font{
	"fixed":  {Name: "fixed", Width: 6, Ascent: 11, Descent: 2},
	"6x13":   {Name: "6x13", Width: 6, Ascent: 11, Descent: 2},
	"6x10":   {Name: "6x10", Width: 6, Ascent: 8, Descent: 2},
	"8x13":   {Name: "8x13", Width: 8, Ascent: 11, Descent: 2},
	"9x15":   {Name: "9x15", Width: 9, Ascent: 12, Descent: 3},
	"cursor": {Name: "cursor", Width: 16, Ascent: 14, Descent: 2},
}

// fontCache interns resolved fonts by name. Font structs are
// immutable once loaded (nothing in the tree writes to a Font), so
// every lookup of the same name can share one instance — redisplay
// paths call LoadFont on each draw.
var (
	fontCacheMu sync.Mutex
	fontCache   = map[string]*Font{}
)

// LoadFont resolves a font name. XLFD patterns
// (-foundry-family-weight-slant-*) and wildcard patterns resolve onto
// the nearest builtin metric; the weight field selects bold. Unknown
// names fall back to "fixed", matching the forgiving behaviour of
// XLoadQueryFont users with a fallback. The returned Font is shared
// and must not be modified.
func LoadFont(name string) *Font {
	n := strings.TrimSpace(name)
	if n == "" {
		n = "fixed"
	}
	fontCacheMu.Lock()
	if f, ok := fontCache[n]; ok {
		fontCacheMu.Unlock()
		return f
	}
	f := resolveFont(n)
	fontCache[n] = f
	fontCacheMu.Unlock()
	return f
}

func resolveFont(n string) *Font {
	if f, ok := builtinFonts[n]; ok {
		cp := f
		return &cp
	}
	lower := strings.ToLower(n)
	f := builtinFonts["fixed"]
	cp := f
	cp.Name = n
	if strings.Contains(lower, "bold") || strings.Contains(lower, "-b-") {
		cp.Bold = true
	}
	// Crude size extraction from XLFD pixel-size field or trailing
	// "NxM" geometry.
	if strings.Contains(lower, "14") || strings.Contains(lower, "140") {
		cp.Width, cp.Ascent, cp.Descent = 8, 11, 3
	} else if strings.Contains(lower, "18") || strings.Contains(lower, "180") {
		cp.Width, cp.Ascent, cp.Descent = 10, 14, 4
	} else if strings.Contains(lower, "24") || strings.Contains(lower, "240") {
		cp.Width, cp.Ascent, cp.Descent = 12, 19, 5
	}
	return &cp
}
