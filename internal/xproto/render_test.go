package xproto

import (
	"strings"
	"testing"
)

func TestMotionEvents(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 0, 0, 100, 100, 0)
	d.SelectInput(w, PointerMotionMask)
	d.MapWindow(w)
	drain(d)
	d.WarpPointer(10, 10)
	d.WarpPointer(20, 30)
	evs := drain(d)
	if len(evs) != 2 {
		t.Fatalf("motion events = %d", len(evs))
	}
	if evs[1].Type != MotionNotify || evs[1].X != 20 || evs[1].Y != 30 {
		t.Errorf("motion = %+v", evs[1])
	}
}

func TestMotionStateIncludesButtons(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 0, 0, 100, 100, 0)
	d.SelectInput(w, PointerMotionMask|ButtonPressMask|ButtonReleaseMask)
	d.MapWindow(w)
	drain(d)
	d.WarpPointer(10, 10)
	d.InjectButtonPress(2)
	d.WarpPointer(15, 15)
	evs := drain(d)
	var motion *Event
	for i := range evs {
		if evs[i].Type == MotionNotify && evs[i].X == 15 {
			motion = &evs[i]
		}
	}
	if motion == nil || motion.State&Button2Mask == 0 {
		t.Errorf("drag motion missing Button2Mask: %+v", motion)
	}
}

// TestImplicitButtonGrab: after a press, pointer events follow the
// pressed window until release (the X automatic grab).
func TestImplicitButtonGrab(t *testing.T) {
	d := NewTestDisplay()
	a := mustWindow(t, d, d.Root, 0, 0, 50, 50, 0)
	b := mustWindow(t, d, d.Root, 100, 0, 50, 50, 0)
	d.SelectInput(a, ButtonPressMask|ButtonReleaseMask|PointerMotionMask)
	d.SelectInput(b, ButtonPressMask|ButtonReleaseMask|PointerMotionMask)
	d.MapWindow(a)
	d.MapWindow(b)
	drain(d)
	d.WarpPointer(10, 10)
	d.InjectButtonPress(1)
	drain(d)
	// Drag onto b: motion and release still go to a.
	d.WarpPointer(110, 10)
	d.InjectButtonRelease(1)
	evs := drain(d)
	var motionWin, releaseWin WindowID
	for _, ev := range evs {
		switch ev.Type {
		case MotionNotify:
			motionWin = ev.Window
		case ButtonRelease:
			releaseWin = ev.Window
		}
	}
	if motionWin != a {
		t.Errorf("drag motion went to %d, want a=%d", motionWin, a)
	}
	if releaseWin != a {
		t.Errorf("release went to %d, want a=%d", releaseWin, a)
	}
	// After release the grab is gone: next press goes to b.
	d.InjectButtonPress(1)
	evs = drain(d)
	if len(evs) == 0 || evs[0].Window != b {
		t.Errorf("post-release press = %+v, want window b", evs)
	}
	d.InjectButtonRelease(1)
}

func TestClientMessage(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 0, 0, 10, 10, 0)
	d.InjectClientMessage(w, "payload")
	evs := drain(d)
	if len(evs) != 1 || evs[0].Type != ClientMessage || evs[0].Data != "payload" {
		t.Errorf("client message = %+v", evs)
	}
}

func TestKeyToUnselectedWindowIsDropped(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 0, 0, 10, 10, 0)
	d.MapWindow(w)
	d.SetInputFocus(w)
	drain(d)
	d.InjectKeycode(198, true) // no KeyPressMask anywhere
	if evs := drain(d); len(evs) != 0 {
		t.Errorf("events = %+v", evs)
	}
	// Modifier state still tracked even when undelivered.
	d.InjectKeycode(174, true) // Shift_L
	d.SelectInput(w, KeyPressMask)
	d.InjectKeycode(198, true)
	evs := drain(d)
	if len(evs) != 1 || evs[0].Keysym != "W" {
		t.Errorf("shifted key after undelivered shift press = %+v", evs)
	}
}

func TestKeymapLookups(t *testing.T) {
	k := DefaultKeymap()
	if code, ok := k.KeycodeFor("Return"); !ok || code != 189 {
		t.Errorf("Return keycode = %d/%v", code, ok)
	}
	if code, ok := k.KeycodeFor("exclam"); !ok || code != 197 {
		t.Errorf("exclam keycode = %d/%v", code, ok)
	}
	if _, ok := k.KeycodeFor("NoSuchSym"); ok {
		t.Error("bogus keysym resolved")
	}
	if sym, r := k.Lookup(198, false); sym != "w" || r != 'w' {
		t.Errorf("lookup 198 = %q/%q", sym, string(r))
	}
	if sym, r := k.Lookup(198, true); sym != "W" || r != 'W' {
		t.Errorf("shifted lookup = %q/%q", sym, string(r))
	}
	if sym, _ := k.Lookup(9999, false); sym != "" {
		t.Errorf("unknown keycode = %q", sym)
	}
	if _, ok := k.StrokesFor('€'); ok {
		t.Error("unmapped rune resolved")
	}
}

func TestTypeStringUnknownRune(t *testing.T) {
	d := NewTestDisplay()
	if err := d.TypeString("ok€"); err == nil {
		t.Error("expected error for unmapped rune")
	}
}

func TestTreeString(t *testing.T) {
	d := NewTestDisplay()
	a := mustWindow(t, d, d.Root, 5, 6, 50, 40, 0)
	_ = mustWindow(t, d, a, 1, 2, 10, 10, 0)
	d.MapWindow(a)
	out := d.TreeString()
	if !strings.Contains(out, "50x40+5+6 mapped") {
		t.Errorf("tree missing a: %s", out)
	}
	if !strings.Contains(out, "10x10+1+2 unmapped") {
		t.Errorf("tree missing child: %s", out)
	}
}

func TestRenderImageOps(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 0, 0, 60, 40, 0)
	d.MapWindow(w)
	gc := d.NewGC()
	gc.Foreground = Pixel{0, 0, 255}
	d.DrawLine(w, gc, 0, 0, 59, 39)
	d.DrawRectangle(w, gc, 5, 5, 20, 10)
	d.DrawPoint(w, gc, 30, 30)
	d.DrawString(w, gc, 2, 20, "txt")
	img := d.RenderImage(d.Root)
	// Line start pixel.
	if r, g, b, _ := img.At(0, 0).RGBA(); r != 0 || g != 0 || b>>8 != 255 {
		t.Error("line pixel missing")
	}
	// Rectangle corner.
	if _, _, b, _ := img.At(5, 5).RGBA(); b>>8 != 255 {
		t.Error("rect pixel missing")
	}
	// Point.
	if _, _, b, _ := img.At(30, 30).RGBA(); b>>8 != 255 {
		t.Error("point pixel missing")
	}
	// Text underline rule (y+1 of the baseline).
	if _, _, b, _ := img.At(3, 21).RGBA(); b>>8 != 255 {
		t.Error("text rule missing")
	}
}

func TestCopyPixmapRecorded(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 0, 0, 20, 20, 0)
	pm, err := ParseXBM("#define i_width 8\n#define i_height 1\nstatic char i_bits[] = {0x0f};")
	if err != nil {
		t.Fatal(err)
	}
	d.CopyPixmap(w, pm, 3, 4)
	d.CopyPixmap(w, nil, 0, 0) // nil is a no-op
	ops := d.DrawLogFor(w)
	if len(ops) != 1 || ops[0].Kind != OpCopyPixmap || ops[0].PixmapName != "i" {
		t.Errorf("ops = %+v", ops)
	}
}

func TestSnapshotClipsToSubtree(t *testing.T) {
	d := NewTestDisplay()
	a := mustWindow(t, d, d.Root, 0, 0, 120, 26, 0)
	b := mustWindow(t, d, d.Root, 300, 300, 120, 26, 0)
	d.MapWindow(a)
	d.MapWindow(b)
	gc := d.NewGC()
	d.DrawString(a, gc, 0, 11, "visible")
	d.DrawString(b, gc, 0, 11, "elsewhere")
	snap := d.Snapshot(a)
	if !strings.Contains(snap, "visible") {
		t.Errorf("snapshot missing own text:\n%s", snap)
	}
	if strings.Contains(snap, "elsewhere") {
		t.Errorf("snapshot leaked sibling text:\n%s", snap)
	}
}

func TestPixelString(t *testing.T) {
	if got := (Pixel{R: 255, G: 99, B: 71}).String(); got != "#ff6347" {
		t.Errorf("Pixel.String = %q", got)
	}
}

func TestEventTypeStrings(t *testing.T) {
	for typ, want := range map[EventType]string{
		KeyPress: "KeyPress", ButtonRelease: "ButtonRelease", Expose: "Expose",
		EnterNotify: "EnterNotify", ClientMessage: "ClientMessage",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q", typ, typ.String())
		}
	}
	if !strings.Contains(EventType(99).String(), "99") {
		t.Error("unknown event type string")
	}
}

func TestFocusEvents(t *testing.T) {
	d := NewTestDisplay()
	a := mustWindow(t, d, d.Root, 0, 0, 10, 10, 0)
	b := mustWindow(t, d, d.Root, 20, 0, 10, 10, 0)
	d.SelectInput(a, FocusChangeMask)
	d.SelectInput(b, FocusChangeMask)
	d.SetInputFocus(a)
	d.SetInputFocus(b)
	evs := drain(d)
	var kinds []string
	for _, ev := range evs {
		kinds = append(kinds, ev.Type.String())
	}
	want := "FocusIn,FocusOut,FocusIn"
	if strings.Join(kinds, ",") != want {
		t.Errorf("focus events = %v, want %s", kinds, want)
	}
	if d.Focus() != b {
		t.Errorf("focus = %d", d.Focus())
	}
	// Destroying the focus window clears focus.
	d.DestroyWindow(b)
	if d.Focus() != None {
		t.Error("focus not cleared on destroy")
	}
}
