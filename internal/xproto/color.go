package xproto

import (
	"fmt"
	"strings"
)

// Pixel is a resolved colour value. The headless server uses true
// colour, so a pixel is simply its RGB triple.
type Pixel struct {
	R, G, B uint8
}

// String renders the pixel as #rrggbb.
func (p Pixel) String() string { return fmt.Sprintf("#%02x%02x%02x", p.R, p.G, p.B) }

// namedColors is a subset of the X11 rgb.txt database covering every
// colour the paper's examples use plus common defaults.
var namedColors = map[string]Pixel{
	"black":        {0, 0, 0},
	"white":        {255, 255, 255},
	"red":          {255, 0, 0},
	"green":        {0, 255, 0},
	"blue":         {0, 0, 255},
	"yellow":       {255, 255, 0},
	"cyan":         {0, 255, 255},
	"magenta":      {255, 0, 255},
	"gray":         {190, 190, 190},
	"grey":         {190, 190, 190},
	"lightgray":    {211, 211, 211},
	"lightgrey":    {211, 211, 211},
	"darkgray":     {169, 169, 169},
	"darkgrey":     {169, 169, 169},
	"dimgray":      {105, 105, 105},
	"gray50":       {127, 127, 127},
	"gray75":       {191, 191, 191},
	"gray90":       {229, 229, 229},
	"tomato":       {255, 99, 71},
	"orange":       {255, 165, 0},
	"gold":         {255, 215, 0},
	"pink":         {255, 192, 203},
	"brown":        {165, 42, 42},
	"navy":         {0, 0, 128},
	"navyblue":     {0, 0, 128},
	"skyblue":      {135, 206, 235},
	"steelblue":    {70, 130, 180},
	"lightblue":    {173, 216, 230},
	"royalblue":    {65, 105, 225},
	"darkblue":     {0, 0, 139},
	"darkgreen":    {0, 100, 0},
	"forestgreen":  {34, 139, 34},
	"limegreen":    {50, 205, 50},
	"seagreen":     {46, 139, 87},
	"darkred":      {139, 0, 0},
	"maroon":       {176, 48, 96},
	"firebrick":    {178, 34, 34},
	"salmon":       {250, 128, 114},
	"coral":        {255, 127, 80},
	"khaki":        {240, 230, 140},
	"wheat":        {245, 222, 179},
	"tan":          {210, 180, 140},
	"beige":        {245, 245, 220},
	"ivory":        {255, 255, 240},
	"snow":         {255, 250, 250},
	"plum":         {221, 160, 221},
	"violet":       {238, 130, 238},
	"purple":       {160, 32, 240},
	"orchid":       {218, 112, 214},
	"lavender":     {230, 230, 250},
	"turquoise":    {64, 224, 208},
	"aquamarine":   {127, 255, 212},
	"chartreuse":   {127, 255, 0},
	"olive":        {128, 128, 0},
	"sienna":       {160, 82, 45},
	"chocolate":    {210, 105, 30},
	"peru":         {205, 133, 63},
	"goldenrod":    {218, 165, 32},
	"slategray":    {112, 128, 144},
	"slateblue":    {106, 90, 205},
	"midnightblue": {25, 25, 112},
	"springgreen":  {0, 255, 127},
	"hotpink":      {255, 105, 180},
	"deeppink":     {255, 20, 147},
	"indianred":    {205, 92, 92},
	"lightyellow":  {255, 255, 224},
	"lightgreen":   {144, 238, 144},
	"lightpink":    {255, 182, 193},
	"whitesmoke":   {245, 245, 245},
	"ghostwhite":   {248, 248, 255},
	"mintcream":    {245, 255, 250},
	"aliceblue":    {240, 248, 255},
	"honeydew":     {240, 255, 240},
}

// ParseColor resolves an X colour specification: a name from rgb.txt,
// #rgb, #rrggbb or #rrrrggggbbbb hex formats.
func ParseColor(spec string) (Pixel, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return Pixel{}, fmt.Errorf("xproto: empty color spec")
	}
	if s[0] == '#' {
		hex := s[1:]
		var r, g, b int
		switch len(hex) {
		case 3:
			if _, err := fmt.Sscanf(hex, "%1x%1x%1x", &r, &g, &b); err != nil {
				return Pixel{}, fmt.Errorf("xproto: bad color %q", spec)
			}
			return Pixel{uint8(r * 17), uint8(g * 17), uint8(b * 17)}, nil
		case 6:
			if _, err := fmt.Sscanf(hex, "%02x%02x%02x", &r, &g, &b); err != nil {
				return Pixel{}, fmt.Errorf("xproto: bad color %q", spec)
			}
			return Pixel{uint8(r), uint8(g), uint8(b)}, nil
		case 12:
			if _, err := fmt.Sscanf(hex, "%04x%04x%04x", &r, &g, &b); err != nil {
				return Pixel{}, fmt.Errorf("xproto: bad color %q", spec)
			}
			return Pixel{uint8(r >> 8), uint8(g >> 8), uint8(b >> 8)}, nil
		}
		return Pixel{}, fmt.Errorf("xproto: bad color %q", spec)
	}
	key := strings.ToLower(strings.ReplaceAll(s, " ", ""))
	if p, ok := namedColors[key]; ok {
		return p, nil
	}
	return Pixel{}, fmt.Errorf("xproto: unknown color name %q", spec)
}

// KnownColorNames returns the names in the colour database, for
// documentation and tests.
func KnownColorNames() int { return len(namedColors) }
