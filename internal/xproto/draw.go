package xproto

import (
	"fmt"
	"image"
	"image/color"
	"sort"
	"strings"
	"unicode/utf8"
)

// GC is a graphics context: the drawing parameters shared by render
// requests, as in the X protocol.
type GC struct {
	Foreground Pixel
	Background Pixel
	Font       *Font
	LineWidth  int
}

// NewGC returns a GC with black-on-white defaults and the fixed font.
// It copies a prototype built at display-open time, which keeps the
// function inlinable — the draw requests never retain the GC, so a GC
// that stays within its creating function lives on the stack.
func (d *Display) NewGC() *GC {
	gc := d.gcProto
	return &gc
}

// DrawOpKind enumerates the rendering primitives.
type DrawOpKind int

const (
	OpFillRect DrawOpKind = iota
	OpDrawRect
	OpDrawLine
	OpDrawString
	OpClear
	OpDrawPoint
	OpCopyPixmap
)

// DrawOp is one recorded rendering request against a window. The
// display keeps a per-window display list so widgets' output can be
// asserted on and snapshotted without rasterizing real glyphs.
type DrawOp struct {
	Kind       DrawOpKind
	X, Y, W, H int
	X2, Y2     int
	Text       string
	Color      Pixel
	Font       string
	Bold       bool
	PixmapName string
}

// String names the rendering primitive after its X request
// (metrics labels, debugging).
func (k DrawOpKind) String() string {
	switch k {
	case OpFillRect:
		return "FillRectangle"
	case OpDrawRect:
		return "DrawRectangle"
	case OpDrawLine:
		return "DrawLine"
	case OpDrawString:
		return "DrawString"
	case OpClear:
		return "ClearArea"
	case OpDrawPoint:
		return "DrawPoint"
	case OpCopyPixmap:
		return "CopyArea"
	}
	return "Unknown"
}

func (d *Display) record(win WindowID, op DrawOp) {
	if m := d.obs; m != nil {
		m.Requests.Inc(op.Kind.String())
	}
	if t := d.trace; t != nil {
		t.Instant("xproto", op.Kind.String())
	}
	d.gen++
	d.drawLog[win] = append(d.drawLog[win], op)
}

// ClearWindow erases the window to its background and resets its
// display list.
func (d *Display) ClearWindow(win WindowID) {
	w, ok := d.windows[win]
	if !ok {
		return
	}
	d.drawLog[win] = d.drawLog[win][:0]
	d.record(win, DrawOp{Kind: OpClear, W: w.Width, H: w.Height, Color: w.Background})
}

// opBounds returns the damage bounding box of a recorded op, used by
// ClearArea to decide what an erased rect invalidates.
func opBounds(op DrawOp) Rect {
	switch op.Kind {
	case OpDrawLine:
		x0, y0 := minI(op.X, op.X2), minI(op.Y, op.Y2)
		x1, y1 := maxI(op.X, op.X2), maxI(op.Y, op.Y2)
		return Rect{X: x0, Y: y0, W: x1 - x0 + 1, H: y1 - y0 + 1}
	case OpDrawPoint:
		return Rect{X: op.X, Y: op.Y, W: 1, H: 1}
	case OpDrawString:
		f := LoadFont(op.Font)
		return Rect{X: op.X, Y: op.Y - f.Ascent, W: f.TextWidth(op.Text), H: f.Height()}
	case OpDrawRect:
		// The outline includes the (x+w, y+h) edge.
		return Rect{X: op.X, Y: op.Y, W: op.W + 1, H: op.H + 1}
	}
	return Rect{X: op.X, Y: op.Y, W: op.W, H: op.H}
}

// ClearArea erases a rectangle of the window to its background — the
// partial-clear counterpart of ClearWindow that clipped redraws use. A
// rect covering the whole window degenerates to ClearWindow (display
// list reset). Otherwise the display list is scrubbed in place: ops
// fully inside the rect are dropped, strings merely intersecting it
// are dropped too (the clipped Redisplay that follows repaints every
// string touching the clip, and the ASCII snapshot paints strings
// whole), and a partial OpClear records the background fill for
// rasterized output.
func (d *Display) ClearArea(id WindowID, x, y, w, h int) {
	win, ok := d.windows[id]
	if !ok {
		return
	}
	bounds := Rect{W: win.Width, H: win.Height}
	r := Rect{X: x, Y: y, W: w, H: h}.Intersect(bounds)
	if r.Empty() {
		return
	}
	if r.Contains(bounds) {
		d.ClearWindow(id)
		return
	}
	log := d.drawLog[id]
	out := log[:0]
	for _, op := range log {
		b := opBounds(op)
		keep := !r.Contains(b)
		if keep && op.Kind == OpDrawString && r.Intersects(b) {
			keep = false
		}
		if keep {
			out = append(out, op)
		}
	}
	d.drawLog[id] = out
	d.record(id, DrawOp{Kind: OpClear, X: r.X, Y: r.Y, W: r.W, H: r.H, Color: win.Background})
}

// FillRectangle fills a rectangle in window coordinates.
func (d *Display) FillRectangle(win WindowID, gc *GC, x, y, w, h int) {
	d.record(win, DrawOp{Kind: OpFillRect, X: x, Y: y, W: w, H: h, Color: gc.Foreground})
}

// DrawRectangle outlines a rectangle.
func (d *Display) DrawRectangle(win WindowID, gc *GC, x, y, w, h int) {
	d.record(win, DrawOp{Kind: OpDrawRect, X: x, Y: y, W: w, H: h, Color: gc.Foreground})
}

// DrawLine draws a line segment.
func (d *Display) DrawLine(win WindowID, gc *GC, x1, y1, x2, y2 int) {
	d.record(win, DrawOp{Kind: OpDrawLine, X: x1, Y: y1, X2: x2, Y2: y2, Color: gc.Foreground})
}

// DrawPoint draws a single point.
func (d *Display) DrawPoint(win WindowID, gc *GC, x, y int) {
	d.record(win, DrawOp{Kind: OpDrawPoint, X: x, Y: y, Color: gc.Foreground})
}

// DrawString draws text with the GC font; (x, y) is the baseline origin
// as in XDrawString.
func (d *Display) DrawString(win WindowID, gc *GC, x, y int, s string) {
	fontName := "fixed"
	bold := false
	if gc.Font != nil {
		fontName = gc.Font.Name
		bold = gc.Font.Bold
	}
	d.record(win, DrawOp{Kind: OpDrawString, X: x, Y: y, Text: s, Color: gc.Foreground, Font: fontName, Bold: bold})
}

// CopyPixmap records blitting a named pixmap into the window.
func (d *Display) CopyPixmap(win WindowID, pm *Pixmap, x, y int) {
	if pm == nil {
		return
	}
	d.record(win, DrawOp{Kind: OpCopyPixmap, X: x, Y: y, W: pm.Width, H: pm.Height, PixmapName: pm.Name})
}

// DrawLogFor returns a copy of the window's display list.
func (d *Display) DrawLogFor(win WindowID) []DrawOp {
	ops := d.drawLog[win]
	out := make([]DrawOp, len(ops))
	copy(out, ops)
	return out
}

// StringsDrawn returns all text drawn into the window, in order.
func (d *Display) StringsDrawn(win WindowID) []string {
	var out []string
	for _, op := range d.drawLog[win] {
		if op.Kind == OpDrawString {
			out = append(out, op.Text)
		}
	}
	return out
}

// --- snapshots -----------------------------------------------------------

// cellW/cellH are the character-cell dimensions used to map pixel
// geometry onto the ASCII snapshot grid (the "fixed" font metrics).
const (
	cellW = 6
	cellH = 13
)

// Snapshot renders the mapped window tree into an ASCII grid: window
// frames as box-drawing characters and strings at their pixel-derived
// cell positions. It is deliberately lossy — its purpose is human-
// inspectable examples and golden tests, not pixel fidelity.
//
// The cell grid and output buffer are per-display scratch reused
// across calls, and the result is memoized against the display
// generation counter (bumped by every draw and window-tree mutation):
// repeated snapshots of an unchanged screen return the cached string.
func (d *Display) Snapshot(rootOf WindowID) string {
	w, ok := d.windows[rootOf]
	if !ok {
		return ""
	}
	if d.snapWin == rootOf && d.snapGen == d.gen && d.snapStr != "" {
		return d.snapStr
	}
	cols := (w.Width + cellW - 1) / cellW
	rows := (w.Height + cellH - 1) / cellH
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	for len(d.snapGrid) < rows {
		d.snapGrid = append(d.snapGrid, nil)
	}
	grid := d.snapGrid[:rows]
	for i := range grid {
		if cap(grid[i]) < cols {
			grid[i] = make([]rune, cols)
		}
		grid[i] = grid[i][:cols]
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	ox, oy := w.RootCoords(0, 0)
	d.paintInto(grid, w, -ox, -oy)
	buf := d.snapBuf[:0]
	for _, row := range grid {
		end := len(row)
		for end > 0 && row[end-1] == ' ' {
			end--
		}
		for _, r := range row[:end] {
			buf = utf8.AppendRune(buf, r)
		}
		buf = append(buf, '\n')
	}
	d.snapBuf = buf
	d.snapWin = rootOf
	d.snapGen = d.gen
	d.snapStr = string(buf)
	return d.snapStr
}

func (d *Display) paintInto(grid [][]rune, w *Window, dx, dy int) {
	if !w.Mapped && w.Parent != None {
		return
	}
	ax, ay := w.RootCoords(0, 0)
	ax += dx
	ay += dy
	// Frame the window if it has a border.
	if w.BorderWidth > 0 {
		d.frame(grid, ax, ay, w.Width, w.Height)
	}
	// Paint recorded strings.
	for _, op := range d.drawLog[w.ID] {
		if op.Kind != OpDrawString {
			continue
		}
		col := (ax + op.X) / cellW
		row := (ay + op.Y) / cellH
		d.putString(grid, row, col, op.Text)
	}
	for _, c := range w.Children {
		if cw := d.windows[c]; cw != nil {
			d.paintInto(grid, cw, dx, dy)
		}
	}
}

func (d *Display) frame(grid [][]rune, x, y, wpx, hpx int) {
	c0, r0 := x/cellW, y/cellH
	c1, r1 := (x+wpx)/cellW, (y+hpx)/cellH
	put := func(r, c int, ch rune) {
		if r >= 0 && r < len(grid) && c >= 0 && c < len(grid[r]) {
			grid[r][c] = ch
		}
	}
	for c := c0; c <= c1; c++ {
		put(r0, c, '-')
		put(r1, c, '-')
	}
	for r := r0; r <= r1; r++ {
		put(r, c0, '|')
		put(r, c1, '|')
	}
	put(r0, c0, '+')
	put(r0, c1, '+')
	put(r1, c0, '+')
	put(r1, c1, '+')
}

func (d *Display) putString(grid [][]rune, row, col int, s string) {
	if row < 0 || row >= len(grid) {
		return
	}
	for i, r := range s {
		c := col + i
		if c < 0 || c >= len(grid[row]) {
			continue
		}
		grid[row][c] = r
	}
}

// RenderImage rasterizes the display list for the window subtree into
// an RGBA image (fills, rectangles, lines; strings as baseline rules),
// usable with image/png for example output.
func (d *Display) RenderImage(rootOf WindowID) *image.RGBA {
	w, ok := d.windows[rootOf]
	if !ok {
		return image.NewRGBA(image.Rect(0, 0, 1, 1))
	}
	img := image.NewRGBA(image.Rect(0, 0, w.Width, w.Height))
	// White base.
	for y := 0; y < w.Height; y++ {
		for x := 0; x < w.Width; x++ {
			img.Set(x, y, color.White)
		}
	}
	ox, oy := w.RootCoords(0, 0)
	d.renderInto(img, w, -ox, -oy)
	return img
}

func (d *Display) renderInto(img *image.RGBA, w *Window, dx, dy int) {
	if !w.Mapped && w.Parent != None {
		return
	}
	ax, ay := w.RootCoords(0, 0)
	ax += dx
	ay += dy
	// As in X, output is clipped to the window: an op whose geometry
	// overhangs the window edge (a scrollbar thumb with shown near 1,
	// a long string) must not paint outside it.
	set := func(x, y int, p Pixel) {
		if x < ax || y < ay || x >= ax+w.Width || y >= ay+w.Height {
			return
		}
		img.Set(x, y, color.RGBA{p.R, p.G, p.B, 255})
	}
	for _, op := range d.drawLog[w.ID] {
		switch op.Kind {
		case OpClear, OpFillRect:
			x0, y0 := ax+op.X, ay+op.Y
			for y := y0; y < y0+op.H; y++ {
				for x := x0; x < x0+op.W; x++ {
					set(x, y, op.Color)
				}
			}
		case OpDrawRect:
			x0, y0 := ax+op.X, ay+op.Y
			for x := x0; x <= x0+op.W; x++ {
				set(x, y0, op.Color)
				set(x, y0+op.H, op.Color)
			}
			for y := y0; y <= y0+op.H; y++ {
				set(x0, y, op.Color)
				set(x0+op.W, y, op.Color)
			}
		case OpDrawLine:
			drawLinePixels(ax+op.X, ay+op.Y, ax+op.X2, ay+op.Y2, func(x, y int) { set(x, y, op.Color) })
		case OpDrawPoint:
			set(ax+op.X, ay+op.Y, op.Color)
		case OpDrawString:
			// Text renders as an underline rule of its pixel width.
			f := LoadFont(op.Font)
			wpx := f.TextWidth(op.Text)
			for x := ax + op.X; x < ax+op.X+wpx; x++ {
				set(x, ay+op.Y+1, op.Color)
			}
		}
	}
	for _, c := range w.Children {
		if cw := d.windows[c]; cw != nil {
			d.renderInto(img, cw, dx, dy)
		}
	}
}

func drawLinePixels(x0, y0, x1, y1 int, plot func(x, y int)) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		plot(x0, y0)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// TreeString renders the window hierarchy as an indented outline, used
// by tests and the designer example.
func (d *Display) TreeString() string {
	var b strings.Builder
	var walk func(id WindowID, depth int)
	walk = func(id WindowID, depth int) {
		w := d.windows[id]
		if w == nil {
			return
		}
		state := "unmapped"
		if w.Mapped {
			state = "mapped"
		}
		fmt.Fprintf(&b, "%s%d %dx%d+%d+%d %s\n", strings.Repeat("  ", depth), w.ID, w.Width, w.Height, w.X, w.Y, state)
		kids := append([]WindowID(nil), w.Children...)
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	walk(d.Root, 0)
	return b.String()
}
