package xproto

// Rect is an axis-aligned rectangle in window coordinates. A rect with
// non-positive width or height is empty.
type Rect struct {
	X, Y, W, H int
}

// Empty reports whether the rect covers no area.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Intersects reports whether the two rects share any area.
func (r Rect) Intersects(o Rect) bool {
	return !r.Empty() && !o.Empty() &&
		r.X < o.X+o.W && o.X < r.X+r.W &&
		r.Y < o.Y+o.H && o.Y < r.Y+r.H
}

// Contains reports whether o lies entirely inside r. An empty o is
// contained by anything.
func (r Rect) Contains(o Rect) bool {
	if o.Empty() {
		return true
	}
	return o.X >= r.X && o.Y >= r.Y &&
		o.X+o.W <= r.X+r.W && o.Y+o.H <= r.Y+r.H
}

// Union returns the bounding rect of both. An empty operand yields the
// other unchanged.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	x0, y0 := minI(r.X, o.X), minI(r.Y, o.Y)
	x1, y1 := maxI(r.X+r.W, o.X+o.W), maxI(r.Y+r.H, o.Y+o.H)
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// Intersect returns the overlap of both rects (empty when disjoint).
func (r Rect) Intersect(o Rect) Rect {
	x0, y0 := maxI(r.X, o.X), maxI(r.Y, o.Y)
	x1, y1 := minI(r.X+r.W, o.X+o.W), minI(r.Y+r.H, o.Y+o.H)
	if x1 <= x0 || y1 <= y0 {
		return Rect{}
	}
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// touches reports whether the rects overlap or share an edge/corner —
// the merge criterion for coalescing: their union then covers no (or
// negligibly little) area that neither rect covered.
func (r Rect) touches(o Rect) bool {
	return !r.Empty() && !o.Empty() &&
		r.X <= o.X+o.W && o.X <= r.X+r.W &&
		r.Y <= o.Y+o.H && o.Y <= r.Y+r.H
}

func (r Rect) area() int {
	if r.Empty() {
		return 0
	}
	return r.W * r.H
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// regionCap bounds a damage region's rect list. Past the bound new
// damage merges into the existing rect it grows least — the standard
// bounded-region trade of extra repaint area for O(1) memory.
const regionCap = 8

// Region accumulates damage rectangles with coalescing: overlapping
// and adjacent rects merge into their union (cascading, since a merge
// may make the grown rect touch further rects). The zero value is an
// empty region ready for use; Reset keeps the backing storage so the
// steady-state damage cycle allocates nothing.
type Region struct {
	rects [regionCap]Rect
	n     int
	added int
}

// Reset empties the region.
func (g *Region) Reset() { g.n, g.added = 0, 0 }

// Len returns the number of coalesced rects currently held.
func (g *Region) Len() int { return g.n }

// Added returns how many rects were accumulated since the last Reset
// (before coalescing); Added-Len is the number of merges.
func (g *Region) Added() int { return g.added }

// Rects returns a view of the coalesced rects, valid until the next
// Add or Reset.
func (g *Region) Rects() []Rect { return g.rects[:g.n] }

// Bounds returns the union of all held rects.
func (g *Region) Bounds() Rect {
	var b Rect
	for i := 0; i < g.n; i++ {
		b = b.Union(g.rects[i])
	}
	return b
}

// Add accumulates one damage rect, merging it with any rect it touches
// and cascading the merge while the grown rect touches others.
func (g *Region) Add(r Rect) {
	if r.Empty() {
		return
	}
	g.added++
	for i := 0; i < g.n; i++ {
		if g.rects[i].touches(r) {
			r = g.rects[i].Union(r)
			// Remove rects[i]; the grown rect re-enters the scan from the
			// start so chains of adjacent rects collapse fully.
			g.n--
			g.rects[i] = g.rects[g.n]
			i = -1
		}
	}
	if g.n < regionCap {
		g.rects[g.n] = r
		g.n++
		return
	}
	// Full: merge into the rect whose union with r grows least.
	best, bestGrowth := 0, -1
	for i := 0; i < g.n; i++ {
		growth := g.rects[i].Union(r).area() - g.rects[i].area()
		if bestGrowth < 0 || growth < bestGrowth {
			best, bestGrowth = i, growth
		}
	}
	g.rects[best] = g.rects[best].Union(r)
}
