package xproto

// Keymap maps hardware keycodes to keysyms and characters. The default
// table reproduces the DECstation LK401 codes visible in the paper's
// xev example: typing "w!" prints
//
//	198 w w
//	174 Shift_L
//	197 ! exclam
//
// i.e. keycode 198 is the W key, 174 the left shift, 197 the 1/! key.
type Keymap struct {
	// keys maps keycode → (unshifted, shifted) keysym entries.
	keys map[int]keyEntry

	// byRune maps a character to the stroke that produces it.
	byRune map[rune]Stroke

	// ShiftKeycode is the keycode of Shift_L.
	ShiftKeycode int
	// ReturnKeycode is the keycode of the Return key.
	ReturnKeycode int
}

type keyEntry struct {
	plain, shifted sym
}

type sym struct {
	name string
	r    rune // 0 if the keysym generates no character
}

// Stroke describes how to produce a character: which keycode to press
// and whether shift must be held.
type Stroke struct {
	Keycode int
	Shift   bool
}

// DefaultKeymap builds the LK401-flavoured keymap.
func DefaultKeymap() *Keymap {
	k := &Keymap{
		keys:   make(map[int]keyEntry),
		byRune: make(map[rune]Stroke),
	}
	add := func(code int, plainName string, plainRune rune, shiftName string, shiftRune rune) {
		k.keys[code] = keyEntry{
			plain:   sym{plainName, plainRune},
			shifted: sym{shiftName, shiftRune},
		}
		if plainRune != 0 {
			if _, dup := k.byRune[plainRune]; !dup {
				k.byRune[plainRune] = Stroke{Keycode: code}
			}
		}
		if shiftRune != 0 {
			if _, dup := k.byRune[shiftRune]; !dup {
				k.byRune[shiftRune] = Stroke{Keycode: code, Shift: true}
			}
		}
	}
	// Letter row codes follow the LK401 layout region around the
	// documented w=198; letters produce lower case unshifted.
	letterCodes := map[rune]int{
		'a': 194, 'b': 217, 'c': 206, 'd': 205, 'e': 204, 'f': 210,
		'g': 216, 'h': 221, 'i': 230, 'j': 226, 'k': 231, 'l': 236,
		'm': 227, 'n': 222, 'o': 235, 'p': 240, 'q': 193, 'r': 209,
		's': 199, 't': 215, 'u': 225, 'v': 211, 'w': 198, 'x': 200,
		'y': 220, 'z': 195,
	}
	for r, code := range letterCodes {
		upper := r - 32
		add(code, string(r), r, string(upper), upper)
	}
	// Digit row: 1/!, 2/@, ... with 1/! at the documented keycode 197.
	digitRow := []struct {
		code         int
		plain, shift rune
		pn, sn       string
	}{
		{197, '1', '!', "1", "exclam"},
		{203, '2', '@', "2", "at"},
		{208, '3', '#', "3", "numbersign"},
		{214, '4', '$', "4", "dollar"},
		{219, '5', '%', "5", "percent"},
		{224, '6', '^', "6", "asciicircum"},
		{229, '7', '&', "7", "ampersand"},
		{234, '8', '*', "8", "asterisk"},
		{239, '9', '(', "9", "parenleft"},
		{245, '0', ')', "0", "parenright"},
	}
	for _, d := range digitRow {
		add(d.code, d.pn, d.plain, d.sn, d.shift)
	}
	// Punctuation.
	add(249, "minus", '-', "underscore", '_')
	add(250, "equal", '=', "plus", '+')
	add(im('['), "bracketleft", '[', "braceleft", '{')
	add(im(']'), "bracketright", ']', "braceright", '}')
	add(im(';'), "semicolon", ';', "colon", ':')
	add(im('\''), "apostrophe", '\'', "quotedbl", '"')
	add(im(','), "comma", ',', "less", '<')
	add(im('.'), "period", '.', "greater", '>')
	add(im('/'), "slash", '/', "question", '?')
	add(im('\\'), "backslash", '\\', "bar", '|')
	add(im('`'), "grave", '`', "asciitilde", '~')
	add(212, "space", ' ', "space", ' ')
	// Control keys. LK401 Shift_L is keycode 174 per the paper.
	k.keys[174] = keyEntry{plain: sym{"Shift_L", 0}, shifted: sym{"Shift_L", 0}}
	k.ShiftKeycode = 174
	k.keys[175] = keyEntry{plain: sym{"Control_L", 0}, shifted: sym{"Control_L", 0}}
	k.keys[189] = keyEntry{plain: sym{"Return", '\r'}, shifted: sym{"Return", '\r'}}
	k.ReturnKeycode = 189
	k.byRune['\r'] = Stroke{Keycode: 189}
	k.byRune['\n'] = Stroke{Keycode: 189}
	k.keys[188] = keyEntry{plain: sym{"BackSpace", '\b'}, shifted: sym{"BackSpace", '\b'}}
	k.byRune['\b'] = Stroke{Keycode: 188}
	k.keys[190] = keyEntry{plain: sym{"Tab", '\t'}, shifted: sym{"Tab", '\t'}}
	k.byRune['\t'] = Stroke{Keycode: 190}
	k.keys[187] = keyEntry{plain: sym{"Escape", 0x1b}, shifted: sym{"Escape", 0x1b}}
	k.keys[170] = keyEntry{plain: sym{"Delete", 0x7f}, shifted: sym{"Delete", 0x7f}}
	// Arrow keys.
	k.keys[167] = keyEntry{plain: sym{"Left", 0}, shifted: sym{"Left", 0}}
	k.keys[168] = keyEntry{plain: sym{"Right", 0}, shifted: sym{"Right", 0}}
	k.keys[169] = keyEntry{plain: sym{"Up", 0}, shifted: sym{"Up", 0}}
	k.keys[166] = keyEntry{plain: sym{"Down", 0}, shifted: sym{"Down", 0}}
	return k
}

// im derives deterministic keycodes for punctuation not documented in
// the paper, in an unused band of the LK401 space.
func im(r rune) int { return 64 + int(r)%64 }

// Lookup resolves keycode+shift to (keysym name, generated rune), as
// XLookupString does.
func (k *Keymap) Lookup(keycode int, shift bool) (string, rune) {
	e, ok := k.keys[keycode]
	if !ok {
		return "", 0
	}
	if shift {
		return e.shifted.name, e.shifted.r
	}
	return e.plain.name, e.plain.r
}

// StrokesFor returns the key stroke producing the rune.
func (k *Keymap) StrokesFor(r rune) (Stroke, bool) {
	s, ok := k.byRune[r]
	return s, ok
}

// KeycodeFor returns the keycode whose unshifted or shifted keysym has
// the given name (e.g. "Return", "w", "exclam").
func (k *Keymap) KeycodeFor(keysym string) (int, bool) {
	for code, e := range k.keys {
		if e.plain.name == keysym || e.shifted.name == keysym {
			return code, true
		}
	}
	return 0, false
}
