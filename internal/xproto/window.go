package xproto

import "fmt"

// WindowID identifies a window within one display. ID 0 is "None"; the
// root window always has ID 1.
type WindowID uint32

// None is the null window id.
const None WindowID = 0

// Window is a server-side window record.
type Window struct {
	ID       WindowID
	Parent   WindowID
	Children []WindowID

	// Geometry relative to the parent window.
	X, Y          int
	Width, Height int
	BorderWidth   int

	Mapped     bool
	InputOnly  bool
	Background Pixel
	EventMask  EventMask

	// OverrideRedirect marks popup windows that bypass window-manager
	// placement (menus, tooltips) — Xt sets it for shells popped up
	// with grabs.
	OverrideRedirect bool

	display *Display
}

func (w *Window) String() string {
	return fmt.Sprintf("window %d %dx%d+%d+%d", w.ID, w.Width, w.Height, w.X, w.Y)
}

// RootCoords translates window-relative coordinates to root coordinates.
func (w *Window) RootCoords(x, y int) (int, int) {
	for w != nil && w.Parent != None {
		x += w.X + w.BorderWidth
		y += w.Y + w.BorderWidth
		w = w.display.windows[w.Parent]
	}
	return x, y
}

// Viewable reports whether the window and all its ancestors are mapped.
func (w *Window) Viewable() bool {
	for w != nil {
		if !w.Mapped {
			return false
		}
		if w.Parent == None {
			return true
		}
		w = w.display.windows[w.Parent]
	}
	return false
}

// CreateWindow creates a child of parent with the given geometry. The
// window starts unmapped with no event mask, as in the X protocol.
func (d *Display) CreateWindow(parent WindowID, x, y, width, height, borderWidth int) (WindowID, error) {
	p, ok := d.windows[parent]
	if !ok {
		return None, fmt.Errorf("xproto: bad parent window %d", parent)
	}
	if width <= 0 {
		width = 1
	}
	if height <= 0 {
		height = 1
	}
	if m := d.obs; m != nil {
		m.Requests.Inc("CreateWindow")
	}
	if t := d.trace; t != nil {
		t.Instant("xproto", "CreateWindow")
	}
	d.gen++
	id := d.nextID
	d.nextID++
	w := &Window{
		ID:          id,
		Parent:      parent,
		X:           x,
		Y:           y,
		Width:       width,
		Height:      height,
		BorderWidth: borderWidth,
		Background:  d.WhitePixel(),
		display:     d,
	}
	d.windows[id] = w
	p.Children = append(p.Children, id)
	return id, nil
}

// DestroyWindow destroys a window and all its descendants, delivering
// DestroyNotify to windows selecting StructureNotify.
func (d *Display) DestroyWindow(id WindowID) {
	w, ok := d.windows[id]
	if !ok || id == d.Root {
		return
	}
	if m := d.obs; m != nil {
		m.Requests.Inc("DestroyWindow")
	}
	if t := d.trace; t != nil {
		t.Instant("xproto", "DestroyWindow")
	}
	d.gen++
	for _, c := range append([]WindowID(nil), w.Children...) {
		d.DestroyWindow(c)
	}
	if w.EventMask&StructureNotifyMask != 0 {
		d.enqueue(Event{Type: DestroyNotify, Window: id})
	}
	if p, ok := d.windows[w.Parent]; ok {
		for i, c := range p.Children {
			if c == id {
				p.Children = append(p.Children[:i], p.Children[i+1:]...)
				break
			}
		}
	}
	if d.focus == id {
		d.focus = None
	}
	if d.implicitGrab == id {
		d.implicitGrab = None
	}
	if d.grabWindow == id {
		d.grabWindow = None
	}
	delete(d.windows, id)
	d.recomputePointerWindow()
}

// Lookup returns the window record for id.
func (d *Display) Lookup(id WindowID) (*Window, bool) {
	w, ok := d.windows[id]
	return w, ok
}

// MapWindow maps a window and generates MapNotify plus an initial
// Expose, as a real server does for viewable windows.
func (d *Display) MapWindow(id WindowID) {
	w, ok := d.windows[id]
	if !ok || w.Mapped {
		return
	}
	if m := d.obs; m != nil {
		m.Requests.Inc("MapWindow")
	}
	if t := d.trace; t != nil {
		t.Instant("xproto", "MapWindow")
	}
	w.Mapped = true
	d.gen++
	if w.EventMask&StructureNotifyMask != 0 {
		d.enqueue(Event{Type: MapNotify, Window: id})
	}
	if w.Viewable() {
		d.exposeTree(w)
	}
	d.recomputePointerWindow()
}

func (d *Display) exposeTree(w *Window) {
	if w.EventMask&ExposureMask != 0 {
		d.addDamage(w, Rect{W: w.Width, H: w.Height})
	}
	for _, c := range w.Children {
		cw := d.windows[c]
		if cw != nil && cw.Mapped {
			d.exposeTree(cw)
		}
	}
}

// UnmapWindow unmaps a window, generating UnmapNotify.
func (d *Display) UnmapWindow(id WindowID) {
	w, ok := d.windows[id]
	if !ok || !w.Mapped {
		return
	}
	if m := d.obs; m != nil {
		m.Requests.Inc("UnmapWindow")
	}
	if t := d.trace; t != nil {
		t.Instant("xproto", "UnmapWindow")
	}
	w.Mapped = false
	d.gen++
	if w.EventMask&StructureNotifyMask != 0 {
		d.enqueue(Event{Type: UnmapNotify, Window: id})
	}
	d.recomputePointerWindow()
}

// ConfigureWindow moves/resizes a window and generates ConfigureNotify
// plus Expose when the size grows.
func (d *Display) ConfigureWindow(id WindowID, x, y, width, height int) {
	w, ok := d.windows[id]
	if !ok {
		return
	}
	grew := width > w.Width || height > w.Height
	w.X, w.Y = x, y
	if width > 0 {
		w.Width = width
	}
	if height > 0 {
		w.Height = height
	}
	d.gen++
	if w.EventMask&StructureNotifyMask != 0 {
		d.enqueue(Event{Type: ConfigureNotify, Window: id, X: x, Y: y, Width: w.Width, Height: w.Height})
	}
	if grew && w.EventMask&ExposureMask != 0 {
		d.addDamage(w, Rect{W: w.Width, H: w.Height})
	}
	d.recomputePointerWindow()
}

// SelectInput sets the window's event mask.
func (d *Display) SelectInput(id WindowID, mask EventMask) {
	if w, ok := d.windows[id]; ok {
		w.EventMask = mask
	}
}

// SetWindowBackground sets the background pixel used by ClearWindow.
func (d *Display) SetWindowBackground(id WindowID, p Pixel) {
	if w, ok := d.windows[id]; ok {
		w.Background = p
		d.gen++
	}
}

// windowAt returns the deepest viewable window containing the root
// coordinate, walking front-to-back through the children (later
// children stack above earlier ones, as in X).
func (d *Display) windowAt(rootX, rootY int) WindowID {
	root := d.windows[d.Root]
	return d.descend(root, rootX, rootY)
}

func (d *Display) descend(w *Window, x, y int) WindowID {
	for i := len(w.Children) - 1; i >= 0; i-- {
		c := d.windows[w.Children[i]]
		if c == nil || !c.Mapped {
			continue
		}
		cx := x - c.X - c.BorderWidth
		cy := y - c.Y - c.BorderWidth
		if cx >= 0 && cy >= 0 && cx < c.Width && cy < c.Height {
			return d.descend(c, cx, cy)
		}
	}
	return w.ID
}

// ancestors returns the chain from w up to the root, inclusive.
func (d *Display) ancestors(id WindowID) []WindowID {
	var chain []WindowID
	for id != None {
		chain = append(chain, id)
		w, ok := d.windows[id]
		if !ok {
			break
		}
		id = w.Parent
	}
	return chain
}
