package xproto

import (
	"fmt"
	"strconv"
	"strings"
)

// Pixmap is an off-screen image. Wafe's extended String-to-Bitmap
// converter first tries the X bitmap (XBM) text format and falls back
// to the coloured XPM format; both parsers live here.
type Pixmap struct {
	Name          string
	Width, Height int
	// Pixels in row-major order.
	Pixels []Pixel
	// Mask[i] is false for transparent pixels (XPM "None" colour).
	Mask []bool
	// Depth is 1 for bitmaps, 24 for pixmaps.
	Depth int
}

// At returns the pixel at (x, y).
func (p *Pixmap) At(x, y int) (Pixel, bool) {
	if x < 0 || y < 0 || x >= p.Width || y >= p.Height {
		return Pixel{}, false
	}
	i := y*p.Width + x
	return p.Pixels[i], p.Mask[i]
}

// ParseXBM parses the X11 bitmap C-source text format:
//
//	#define name_width 8
//	#define name_height 2
//	static char name_bits[] = { 0x01, 0x80, ... };
//
// Set bits become black pixels.
func ParseXBM(src string) (*Pixmap, error) {
	width, height := 0, 0
	name := "bitmap"
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "#define") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		v, err := strconv.Atoi(fields[2])
		if err != nil {
			continue
		}
		switch {
		case strings.HasSuffix(fields[1], "_width"):
			width = v
			name = strings.TrimSuffix(fields[1], "_width")
		case strings.HasSuffix(fields[1], "_height"):
			height = v
		}
	}
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("xproto: XBM missing width/height defines")
	}
	open := strings.Index(src, "{")
	close := strings.LastIndex(src, "}")
	if open < 0 || close < open {
		return nil, fmt.Errorf("xproto: XBM missing bits array")
	}
	var bytes []byte
	for _, tok := range strings.Split(src[open+1:close], ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(tok, "0x"), 16, 8)
		if err != nil {
			v2, err2 := strconv.ParseUint(tok, 0, 8)
			if err2 != nil {
				return nil, fmt.Errorf("xproto: bad XBM byte %q", tok)
			}
			v = v2
		}
		bytes = append(bytes, byte(v))
	}
	bytesPerRow := (width + 7) / 8
	if len(bytes) < bytesPerRow*height {
		return nil, fmt.Errorf("xproto: XBM has %d bytes, need %d", len(bytes), bytesPerRow*height)
	}
	pm := &Pixmap{
		Name:   name,
		Width:  width,
		Height: height,
		Pixels: make([]Pixel, width*height),
		Mask:   make([]bool, width*height),
		Depth:  1,
	}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			b := bytes[y*bytesPerRow+x/8]
			set := b&(1<<uint(x%8)) != 0
			i := y*width + x
			pm.Mask[i] = true
			if set {
				pm.Pixels[i] = Pixel{} // black
			} else {
				pm.Pixels[i] = Pixel{255, 255, 255}
			}
		}
	}
	return pm, nil
}

// ParseXPM parses the XPM2/XPM3 pixmap format (the subset produced by
// common tools): the values line "W H ncolors chars_per_pixel", ncolors
// colour definitions with "c" keys, then H pixel rows. Quotes and C
// scaffolding from XPM3 files are stripped.
func ParseXPM(src string) (*Pixmap, error) {
	lines := extractXPMLines(src)
	if len(lines) == 0 {
		return nil, fmt.Errorf("xproto: empty XPM")
	}
	var w, h, nc, cpp int
	if _, err := fmt.Sscanf(lines[0], "%d %d %d %d", &w, &h, &nc, &cpp); err != nil {
		return nil, fmt.Errorf("xproto: bad XPM values line %q", lines[0])
	}
	if w <= 0 || h <= 0 || nc <= 0 || cpp <= 0 {
		return nil, fmt.Errorf("xproto: bad XPM dimensions")
	}
	if len(lines) < 1+nc+h {
		return nil, fmt.Errorf("xproto: XPM truncated: have %d lines, need %d", len(lines), 1+nc+h)
	}
	type cdef struct {
		pixel Pixel
		none  bool
	}
	colors := make(map[string]cdef, nc)
	for i := 0; i < nc; i++ {
		line := lines[1+i]
		if len(line) < cpp {
			return nil, fmt.Errorf("xproto: short XPM color line %q", line)
		}
		key := line[:cpp]
		rest := strings.Fields(line[cpp:])
		// Find the "c" (colour) visual key.
		spec := ""
		for j := 0; j+1 < len(rest); j++ {
			if rest[j] == "c" {
				spec = rest[j+1]
				break
			}
		}
		if spec == "" && len(rest) > 0 {
			spec = rest[len(rest)-1]
		}
		if strings.EqualFold(spec, "None") {
			colors[key] = cdef{none: true}
			continue
		}
		p, err := ParseColor(spec)
		if err != nil {
			return nil, fmt.Errorf("xproto: XPM color %q: %v", spec, err)
		}
		colors[key] = cdef{pixel: p}
	}
	pm := &Pixmap{
		Name:   "pixmap",
		Width:  w,
		Height: h,
		Pixels: make([]Pixel, w*h),
		Mask:   make([]bool, w*h),
		Depth:  24,
	}
	for y := 0; y < h; y++ {
		row := lines[1+nc+y]
		if len(row) < w*cpp {
			return nil, fmt.Errorf("xproto: short XPM pixel row %d", y)
		}
		for x := 0; x < w; x++ {
			key := row[x*cpp : (x+1)*cpp]
			c, ok := colors[key]
			if !ok {
				return nil, fmt.Errorf("xproto: XPM pixel %q undefined", key)
			}
			i := y*w + x
			if c.none {
				continue
			}
			pm.Mask[i] = true
			pm.Pixels[i] = c.pixel
		}
	}
	return pm, nil
}

// extractXPMLines pulls the data strings out of either an XPM3 C file
// (quoted strings) or a raw XPM2 block.
func extractXPMLines(src string) []string {
	var out []string
	if strings.Contains(src, "\"") {
		for {
			i := strings.Index(src, "\"")
			if i < 0 {
				break
			}
			j := strings.Index(src[i+1:], "\"")
			if j < 0 {
				break
			}
			out = append(out, src[i+1:i+1+j])
			src = src[i+j+2:]
		}
		return out
	}
	for _, l := range strings.Split(src, "\n") {
		l = strings.TrimSpace(l)
		if l == "" || strings.HasPrefix(l, "!") || strings.HasPrefix(l, "/*") || strings.HasPrefix(l, "XPM") {
			continue
		}
		out = append(out, l)
	}
	return out
}

// ParseBitmapOrPixmap mirrors Wafe's extended converter: try XBM first,
// then XPM.
func ParseBitmapOrPixmap(src string) (*Pixmap, error) {
	if pm, err := ParseXBM(src); err == nil {
		return pm, nil
	}
	pm, err := ParseXPM(src)
	if err != nil {
		return nil, fmt.Errorf("xproto: data is neither XBM nor XPM: %v", err)
	}
	return pm, nil
}
