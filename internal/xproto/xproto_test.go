package xproto

import (
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func drain(d *Display) []Event {
	var evs []Event
	for {
		ev, ok := d.NextEvent()
		if !ok {
			return evs
		}
		evs = append(evs, ev)
	}
}

func mustWindow(t *testing.T, d *Display, parent WindowID, x, y, w, h, bw int) WindowID {
	t.Helper()
	id, err := d.CreateWindow(parent, x, y, w, h, bw)
	if err != nil {
		t.Fatalf("CreateWindow: %v", err)
	}
	return id
}

func TestCreateDestroyWindowTree(t *testing.T) {
	d := NewTestDisplay()
	a := mustWindow(t, d, d.Root, 0, 0, 100, 100, 0)
	b := mustWindow(t, d, a, 10, 10, 50, 50, 1)
	c := mustWindow(t, d, b, 5, 5, 20, 20, 0)
	if _, ok := d.Lookup(c); !ok {
		t.Fatal("child c missing")
	}
	d.DestroyWindow(a)
	for _, id := range []WindowID{a, b, c} {
		if _, ok := d.Lookup(id); ok {
			t.Errorf("window %d survived subtree destroy", id)
		}
	}
	// Root is indestructible.
	d.DestroyWindow(d.Root)
	if _, ok := d.Lookup(d.Root); !ok {
		t.Error("root window destroyed")
	}
}

func TestMapGeneratesExpose(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 0, 0, 100, 50, 0)
	d.SelectInput(w, ExposureMask|StructureNotifyMask)
	d.MapWindow(w)
	evs := drain(d)
	var sawMap, sawExpose bool
	for _, ev := range evs {
		switch ev.Type {
		case MapNotify:
			sawMap = true
		case Expose:
			sawExpose = true
			if ev.Width != 100 || ev.Height != 50 {
				t.Errorf("expose size %dx%d", ev.Width, ev.Height)
			}
		}
	}
	if !sawMap || !sawExpose {
		t.Errorf("map=%v expose=%v, want both", sawMap, sawExpose)
	}
}

func TestUnmappedWindowNotExposed(t *testing.T) {
	d := NewTestDisplay()
	parent := mustWindow(t, d, d.Root, 0, 0, 100, 100, 0)
	child := mustWindow(t, d, parent, 0, 0, 10, 10, 0)
	d.SelectInput(child, ExposureMask)
	d.MapWindow(child) // parent still unmapped → not viewable
	for _, ev := range drain(d) {
		if ev.Type == Expose {
			t.Error("expose delivered to non-viewable window")
		}
	}
}

func TestPointerCrossingEvents(t *testing.T) {
	d := NewTestDisplay()
	a := mustWindow(t, d, d.Root, 0, 0, 100, 100, 0)
	b := mustWindow(t, d, d.Root, 200, 0, 100, 100, 0)
	d.SelectInput(a, EnterWindowMask|LeaveWindowMask)
	d.SelectInput(b, EnterWindowMask|LeaveWindowMask)
	d.WarpPointer(600, 600) // neutral root area
	d.MapWindow(a)
	d.MapWindow(b)
	drain(d)
	d.WarpPointer(50, 50) // into a
	evs := drain(d)
	if len(evs) != 1 || evs[0].Type != EnterNotify || evs[0].Window != a {
		t.Fatalf("expected EnterNotify on a, got %+v", evs)
	}
	d.WarpPointer(250, 50) // a → b
	evs = drain(d)
	if len(evs) != 2 || evs[0].Type != LeaveNotify || evs[0].Window != a ||
		evs[1].Type != EnterNotify || evs[1].Window != b {
		t.Fatalf("expected Leave(a),Enter(b), got %+v", evs)
	}
}

func TestButtonEventsWithCoordinates(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 100, 100, 50, 50, 0)
	d.SelectInput(w, ButtonPressMask|ButtonReleaseMask)
	d.MapWindow(w)
	drain(d)
	d.WarpPointer(110, 120)
	d.InjectButtonPress(1)
	d.InjectButtonRelease(1)
	evs := drain(d)
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	p := evs[0]
	if p.Type != ButtonPress || p.Button != 1 || p.X != 10 || p.Y != 20 || p.XRoot != 110 || p.YRoot != 120 {
		t.Errorf("press = %+v", p)
	}
	r := evs[1]
	if r.Type != ButtonRelease || r.State&Button1Mask == 0 {
		t.Errorf("release = %+v (state should include Button1Mask)", r)
	}
}

func TestButtonPropagatesToSelectingAncestor(t *testing.T) {
	d := NewTestDisplay()
	parent := mustWindow(t, d, d.Root, 0, 0, 100, 100, 0)
	child := mustWindow(t, d, parent, 10, 10, 20, 20, 0)
	d.SelectInput(parent, ButtonPressMask)
	d.MapWindow(parent)
	d.MapWindow(child)
	drain(d)
	d.WarpPointer(15, 15) // inside child
	d.InjectButtonPress(1)
	evs := drain(d)
	if len(evs) != 1 || evs[0].Window != parent {
		t.Fatalf("expected press routed to parent, got %+v", evs)
	}
}

// TestXevKeycodes reproduces the paper's xev example: typing "w!" must
// produce keycode/char/keysym triples 198/w/w, 174/-/Shift_L and
// 197/!/exclam.
func TestXevKeycodes(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 0, 0, 100, 20, 0)
	d.SelectInput(w, KeyPressMask)
	d.MapWindow(w)
	d.SetInputFocus(w)
	drain(d)
	if err := d.TypeString("w!"); err != nil {
		t.Fatal(err)
	}
	evs := drain(d)
	var lines []string
	for _, ev := range evs {
		if ev.Type != KeyPress {
			continue
		}
		ch := ""
		if ev.Rune != 0 {
			ch = string(ev.Rune)
		}
		lines = append(lines, strings.TrimSpace(strings.Join([]string{itoa(ev.Keycode), ch, ev.Keysym}, " ")))
	}
	want := []string{"198 w w", "174  Shift_L", "197 ! exclam"}
	if len(lines) != len(want) {
		t.Fatalf("lines = %q, want %q", lines, want)
	}
	for i := range want {
		if strings.Join(strings.Fields(lines[i]), " ") != strings.Join(strings.Fields(want[i]), " ") {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func TestShiftStateAffectsKeysym(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 0, 0, 100, 20, 0)
	d.SelectInput(w, KeyPressMask|KeyReleaseMask)
	d.MapWindow(w)
	d.SetInputFocus(w)
	drain(d)
	if err := d.TypeString("A"); err != nil {
		t.Fatal(err)
	}
	evs := drain(d)
	var presses []Event
	for _, ev := range evs {
		if ev.Type == KeyPress {
			presses = append(presses, ev)
		}
	}
	// Shift press then 'A' press.
	if len(presses) != 2 {
		t.Fatalf("presses = %d, want 2", len(presses))
	}
	if presses[0].Keysym != "Shift_L" {
		t.Errorf("first press %q, want Shift_L", presses[0].Keysym)
	}
	if presses[1].Keysym != "A" || presses[1].Rune != 'A' {
		t.Errorf("second press = %q/%q", presses[1].Keysym, string(presses[1].Rune))
	}
	if presses[1].State&ShiftMask == 0 {
		t.Error("shift not in state mask")
	}
}

func TestFocusRouting(t *testing.T) {
	d := NewTestDisplay()
	a := mustWindow(t, d, d.Root, 0, 0, 50, 50, 0)
	b := mustWindow(t, d, d.Root, 60, 0, 50, 50, 0)
	d.SelectInput(a, KeyPressMask)
	d.SelectInput(b, KeyPressMask)
	d.MapWindow(a)
	d.MapWindow(b)
	d.SetInputFocus(b)
	drain(d)
	d.InjectKeycode(198, true) // 'w'
	evs := drain(d)
	if len(evs) != 1 || evs[0].Window != b {
		t.Fatalf("key went to %+v, want window b", evs)
	}
}

func TestGrabRedirectsPointer(t *testing.T) {
	d := NewTestDisplay()
	a := mustWindow(t, d, d.Root, 0, 0, 50, 50, 0)
	menu := mustWindow(t, d, d.Root, 60, 0, 50, 50, 0)
	d.SelectInput(a, ButtonPressMask)
	d.SelectInput(menu, ButtonPressMask)
	d.MapWindow(a)
	d.MapWindow(menu)
	drain(d)
	d.WarpPointer(10, 10) // over a
	d.GrabPointer(menu)
	d.InjectButtonPress(1)
	evs := drain(d)
	if len(evs) != 1 || evs[0].Window != menu {
		t.Fatalf("grabbed press delivered to %+v, want menu", evs)
	}
	d.UngrabPointer()
	d.InjectButtonPress(2)
	evs = drain(d)
	if len(evs) != 1 || evs[0].Window != a {
		t.Fatalf("ungrabbed press delivered to %+v, want a", evs)
	}
}

func TestConfigureNotifyAndGrowExpose(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 0, 0, 50, 50, 0)
	d.SelectInput(w, StructureNotifyMask|ExposureMask)
	d.MapWindow(w)
	drain(d)
	d.ConfigureWindow(w, 10, 10, 100, 100)
	evs := drain(d)
	var sawConfig, sawExpose bool
	for _, ev := range evs {
		if ev.Type == ConfigureNotify && ev.Width == 100 {
			sawConfig = true
		}
		if ev.Type == Expose {
			sawExpose = true
		}
	}
	if !sawConfig || !sawExpose {
		t.Errorf("config=%v expose=%v", sawConfig, sawExpose)
	}
}

func TestMultiDisplayRegistry(t *testing.T) {
	d1 := OpenDisplay("unit-reg-a:0")
	d2 := OpenDisplay("unit-reg-b:0")
	if d1 == d2 {
		t.Fatal("distinct names share a display")
	}
	if OpenDisplay("unit-reg-a:0") != d1 {
		t.Error("reopening a display must return the same instance")
	}
	names := OpenDisplayNames()
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "unit-reg-a:0") || !strings.Contains(joined, "unit-reg-b:0") {
		t.Errorf("registry names = %v", names)
	}
	CloseDisplay(d1)
	CloseDisplay(d2)
}

func TestColorParsing(t *testing.T) {
	cases := []struct {
		spec string
		want Pixel
	}{
		{"red", Pixel{255, 0, 0}},
		{"Red", Pixel{255, 0, 0}},
		{"tomato", Pixel{255, 99, 71}},
		{"#fff", Pixel{255, 255, 255}},
		{"#ff0000", Pixel{255, 0, 0}},
		{"#ffff00000000", Pixel{255, 0, 0}},
		{"navy blue", Pixel{0, 0, 128}},
	}
	for _, c := range cases {
		got, err := ParseColor(c.spec)
		if err != nil {
			t.Errorf("ParseColor(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseColor(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
	if _, err := ParseColor("notacolor"); err == nil {
		t.Error("expected error for unknown color")
	}
	if _, err := ParseColor("#12345"); err == nil {
		t.Error("expected error for bad hex length")
	}
}

func TestFontMetrics(t *testing.T) {
	f := LoadFont("fixed")
	if f.Width != 6 || f.Height() != 13 {
		t.Errorf("fixed = %dx%d", f.Width, f.Height())
	}
	if got := f.TextWidth("hello"); got != 30 {
		t.Errorf("TextWidth(hello) = %d", got)
	}
	bold := LoadFont("*b&h-lucida-bold-r*14*")
	if !bold.Bold {
		t.Error("XLFD bold pattern not detected")
	}
	if LoadFont("") == nil || LoadFont("no-such-font") == nil {
		t.Error("fallback font must always resolve")
	}
}

func TestDrawLogAndSnapshot(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 0, 0, 120, 26, 1)
	d.MapWindow(w)
	gc := d.NewGC()
	d.ClearWindow(w)
	d.DrawString(w, gc, 6, 11, "hello")
	ops := d.DrawLogFor(w)
	if len(ops) != 2 || ops[1].Kind != OpDrawString || ops[1].Text != "hello" {
		t.Fatalf("ops = %+v", ops)
	}
	snap := d.Snapshot(d.Root)
	if !strings.Contains(snap, "hello") {
		t.Errorf("snapshot missing text:\n%s", snap)
	}
	if !strings.Contains(snap, "+") {
		t.Errorf("snapshot missing border frame:\n%s", snap)
	}
	if got := d.StringsDrawn(w); len(got) != 1 || got[0] != "hello" {
		t.Errorf("StringsDrawn = %v", got)
	}
}

func TestRenderImage(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 0, 0, 40, 20, 0)
	d.MapWindow(w)
	gc := d.NewGC()
	gc.Foreground = Pixel{255, 0, 0}
	d.FillRectangle(w, gc, 0, 0, 10, 10)
	img := d.RenderImage(d.Root)
	r, g, b, _ := img.At(5, 5).RGBA()
	if r>>8 != 255 || g != 0 || b != 0 {
		t.Errorf("pixel at 5,5 = %d,%d,%d; want red", r>>8, g>>8, b>>8)
	}
}

func TestXBMParsing(t *testing.T) {
	src := `
#define tiny_width 8
#define tiny_height 2
static char tiny_bits[] = {
  0x01, 0x80};`
	pm, err := ParseXBM(src)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Width != 8 || pm.Height != 2 || pm.Depth != 1 {
		t.Fatalf("pixmap = %+v", pm)
	}
	// bit 0 of row 0 set → black at (0,0)
	if p, _ := pm.At(0, 0); p != (Pixel{}) {
		t.Errorf("(0,0) = %v, want black", p)
	}
	if p, _ := pm.At(1, 0); p != (Pixel{255, 255, 255}) {
		t.Errorf("(1,0) = %v, want white", p)
	}
	// bit 7 of row 1 set → black at (7,1)
	if p, _ := pm.At(7, 1); p != (Pixel{}) {
		t.Errorf("(7,1) = %v, want black", p)
	}
}

func TestXPMParsing(t *testing.T) {
	src := `/* XPM */
static char *icon[] = {
"3 2 2 1",
". c None",
"# c red",
"#.#",
".#."
};`
	pm, err := ParseXPM(src)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Width != 3 || pm.Height != 2 {
		t.Fatalf("size = %dx%d", pm.Width, pm.Height)
	}
	if p, opaque := pm.At(0, 0); !opaque || p != (Pixel{255, 0, 0}) {
		t.Errorf("(0,0) = %v opaque=%v", p, opaque)
	}
	if _, opaque := pm.At(1, 0); opaque {
		t.Error("(1,0) should be transparent (None)")
	}
}

func TestBitmapOrPixmapFallback(t *testing.T) {
	// The Wafe converter behaviour: XBM tried first, then XPM.
	xbm := "#define a_width 8\n#define a_height 1\nstatic char a_bits[] = {0xff};"
	if pm, err := ParseBitmapOrPixmap(xbm); err != nil || pm.Depth != 1 {
		t.Errorf("XBM path failed: %v", err)
	}
	xpm := "static char *x[] = {\"1 1 1 1\", \"a c blue\", \"a\"};"
	if pm, err := ParseBitmapOrPixmap(xpm); err != nil || pm.Depth != 24 {
		t.Errorf("XPM fallback failed: %v", err)
	}
	if _, err := ParseBitmapOrPixmap("garbage"); err == nil {
		t.Error("garbage should fail both parsers")
	}
}

func TestSelections(t *testing.T) {
	d := NewTestDisplay()
	w := mustWindow(t, d, d.Root, 0, 0, 10, 10, 0)
	d.OwnSelection("PRIMARY", w, func(target string) (string, bool) {
		if target == "STRING" {
			return "selected-text", true
		}
		return "", false
	})
	if d.SelectionOwner("PRIMARY") != w {
		t.Error("owner mismatch")
	}
	if v, ok := d.ConvertSelection("PRIMARY", "STRING"); !ok || v != "selected-text" {
		t.Errorf("convert = %q/%v", v, ok)
	}
	if _, ok := d.ConvertSelection("PRIMARY", "PIXMAP"); ok {
		t.Error("unsupported target should fail")
	}
	d.DisownSelection("PRIMARY", w)
	if d.SelectionOwner("PRIMARY") != None {
		t.Error("selection not disowned")
	}
}

func TestRootCoords(t *testing.T) {
	d := NewTestDisplay()
	a := mustWindow(t, d, d.Root, 100, 50, 200, 200, 0)
	b := mustWindow(t, d, a, 10, 20, 100, 100, 2)
	bw, _ := d.Lookup(b)
	x, y := bw.RootCoords(1, 1)
	// a at (100,50), b at +10+20 with border 2 → (112, 72) + (1,1)
	if x != 113 || y != 73 {
		t.Errorf("RootCoords = %d,%d; want 113,73", x, y)
	}
}

// Property: WarpPointer never generates unbalanced Enter/Leave pairs —
// every Leave is eventually matched by an Enter in the same batch.
func TestCrossingBalanceProperty(t *testing.T) {
	d := NewTestDisplay()
	var wins []WindowID
	for i := 0; i < 4; i++ {
		w := mustWindow(t, d, d.Root, i*100, 0, 90, 90, 0)
		d.SelectInput(w, EnterWindowMask|LeaveWindowMask)
		d.MapWindow(w)
		wins = append(wins, w)
	}
	drain(d)
	f := func(seq []uint16) bool {
		for _, p := range seq {
			d.WarpPointer(int(p)%400, int(p)%90)
		}
		evs := drain(d)
		depth := 0
		for _, ev := range evs {
			switch ev.Type {
			case EnterNotify:
				depth++
			case LeaveNotify:
				depth--
			}
			if depth < -1 || depth > 1 {
				return false
			}
		}
		return depth >= -1 && depth <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: window lookup after arbitrary create/destroy interleavings
// never panics and parents never reference destroyed children.
func TestTreeIntegrityProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		d := NewTestDisplay()
		ids := []WindowID{d.Root}
		for _, op := range ops {
			switch op % 3 {
			case 0, 1: // create under random existing window
				parent := ids[int(op)%len(ids)]
				if _, ok := d.Lookup(parent); !ok {
					continue
				}
				id, err := d.CreateWindow(parent, int(op), int(op), 10+int(op)%50, 10, 0)
				if err == nil {
					ids = append(ids, id)
				}
			case 2: // destroy random window
				d.DestroyWindow(ids[int(op)%len(ids)])
			}
		}
		// Integrity: every child id referenced by a live window resolves.
		for _, id := range ids {
			w, ok := d.Lookup(id)
			if !ok {
				continue
			}
			for _, c := range w.Children {
				cw, ok := d.Lookup(c)
				if !ok {
					return false
				}
				if cw.Parent != id {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
