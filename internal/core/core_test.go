package core

import (
	"strings"
	"testing"

	"wafe/internal/xproto"
)

func eval(t *testing.T, w *Wafe, script string) string {
	t.Helper()
	res, err := w.Eval(script)
	if err != nil {
		t.Fatalf("Eval(%q): %v", script, err)
	}
	return res
}

func evalErr(t *testing.T, w *Wafe, script, substr string) {
	t.Helper()
	_, err := w.Eval(script)
	if err == nil {
		t.Fatalf("Eval(%q): expected error containing %q", script, substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Errorf("Eval(%q) error %q missing %q", script, err, substr)
	}
}

func output(w *Wafe) string { return w.Interp.Output() }

func TestCommandNaming(t *testing.T) {
	cases := map[string]string{
		"XtDestroyWidget":          "destroyWidget",
		"XtRealizeWidget":          "realizeWidget",
		"XtGetResourceList":        "getResourceList",
		"XawFormAllowResize":       "formAllowResize",
		"XawListHighlight":         "listHighlight",
		"XmCommandAppendValue":     "mCommandAppendValue",
		"XmCascadeButtonHighlight": "mCascadeButtonHighlight",
		"XFlush":                   "flush",
	}
	for in, want := range cases {
		if got := CommandName(in); got != want {
			t.Errorf("CommandName(%q) = %q, want %q", in, got, want)
		}
	}
	classes := map[string]string{
		"Toggle":          "toggle",
		"AsciiText":       "asciiText",
		"XmCascadeButton": "mCascadeButton",
		"Label":           "label",
		"MenuButton":      "menuButton",
	}
	for in, want := range classes {
		if got := CreationCommandName(in); got != want {
			t.Errorf("CreationCommandName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestGetResourceListPaperExample runs the paper's interactive session:
//
//	label l topLevel
//	echo [getResourceList l retVal]   → 42
//	echo Resources: $retVal           → destroyCallback ancestorSensitive ...
func TestGetResourceListPaperExample(t *testing.T) {
	w := NewTest()
	eval(t, w, "label l topLevel")
	eval(t, w, "echo [getResourceList l retVal]")
	if got := strings.TrimSpace(output(w)); got != "42" {
		t.Errorf("resource count = %q, want 42", got)
	}
	eval(t, w, "echo Resources: $retVal")
	out := output(w)
	if !strings.HasPrefix(out, "Resources: destroyCallback ancestorSensitive x y width height borderWidth sensitive screen depth colormap background") {
		t.Errorf("resource list = %q", out)
	}
}

func TestWidgetCreationCommand(t *testing.T) {
	w := NewTest()
	eval(t, w, "label label1 topLevel background red foreground blue")
	l := w.App.WidgetByName("label1")
	if l == nil {
		t.Fatal("label1 not created")
	}
	if l.PixelRes("background") != (xproto.Pixel{R: 255}) {
		t.Errorf("background = %v", l.PixelRes("background"))
	}
	// Errors from the paper's rules.
	evalErr(t, w, "label", "wrong # args")
	evalErr(t, w, "label x noSuchParent", "no widget named")
	evalErr(t, w, "label y topLevel oddarg", "attribute-value pairs")
	evalErr(t, w, "label label1 topLevel", "already exists")
}

func TestUnmanagedCreation(t *testing.T) {
	w := NewTest()
	eval(t, w, "form f topLevel")
	eval(t, w, "label hidden f -unmanaged")
	if w.App.WidgetByName("hidden").IsManaged() {
		t.Error("widget should be unmanaged")
	}
	eval(t, w, "manageChild hidden")
	if !w.App.WidgetByName("hidden").IsManaged() {
		t.Error("manageChild failed")
	}
	eval(t, w, "unmanageChild hidden")
	if w.App.WidgetByName("hidden").IsManaged() {
		t.Error("unmanageChild failed")
	}
}

// TestSetValuesPaperExample: sV/gV aliases and the tomato example.
func TestSetValuesPaperExample(t *testing.T) {
	w := NewTest()
	eval(t, w, "label label1 topLevel background red foreground blue")
	eval(t, w, `setValues label1 background "tomato" label "Hi Man"`)
	if got := eval(t, w, "gV label1 label"); got != "Hi Man" {
		t.Errorf("gV label = %q", got)
	}
	eval(t, w, "sV label1 label Other")
	if got := eval(t, w, "getValue label1 label"); got != "Other" {
		t.Errorf("getValue = %q", got)
	}
	eval(t, w, `echo [gV label1 label]`)
	if got := output(w); got != "Other\n" {
		t.Errorf("echo gV = %q", got)
	}
}

// TestMergeResourcesPrecedence checks the paper's precedence order:
// resource file < mergeResources < creation args < setValues.
func TestMergeResourcesPrecedence(t *testing.T) {
	w := NewTest()
	eval(t, w, "mergeResources *Font fixed *foreground blue *background red")
	eval(t, w, "label hello topLevel")
	l := w.App.WidgetByName("hello")
	if l.PixelRes("background") != (xproto.Pixel{R: 255}) {
		t.Errorf("mergeResources background not applied: %v", l.PixelRes("background"))
	}
	if l.PixelRes("foreground") != (xproto.Pixel{B: 255}) {
		t.Errorf("mergeResources foreground not applied: %v", l.PixelRes("foreground"))
	}
	// Creation args beat mergeResources.
	eval(t, w, "label l2 topLevel background green")
	if w.App.WidgetByName("l2").PixelRes("background") != (xproto.Pixel{G: 255}) {
		t.Error("creation arg should beat mergeResources")
	}
	// setValues beats everything.
	eval(t, w, "sV l2 background white")
	if w.App.WidgetByName("l2").PixelRes("background") != (xproto.Pixel{R: 255, G: 255, B: 255}) {
		t.Error("setValues should beat creation args")
	}
	// mergeResources applies to widgets created afterwards (per-class).
	eval(t, w, "mergeResources *Label.foreground gold")
	eval(t, w, "label l3 topLevel")
	if w.App.WidgetByName("l3").PixelRes("foreground") != (xproto.Pixel{R: 255, G: 215}) {
		t.Errorf("class-specific mergeResources: %v", w.App.WidgetByName("l3").PixelRes("foreground"))
	}
	evalErr(t, w, "mergeResources *odd", "spec value")
}

// TestCallbackConverter: the paper's "command hello topLevel callback
// {echo hello world}" pattern.
func TestCallbackConverter(t *testing.T) {
	w := NewTest()
	eval(t, w, `command hello topLevel callback "echo hello world"`)
	eval(t, w, "realize")
	clickOn(t, w, "hello")
	if got := output(w); got != "hello world\n" {
		t.Errorf("callback output = %q", got)
	}
}

// TestCallbackResourceReadable reproduces the paper's c1/c2 script: the
// callback of c2 is set to the content of c1's callback resource.
func TestCallbackResourceReadable(t *testing.T) {
	w := NewTest()
	eval(t, w, "form f topLevel")
	eval(t, w, `command c1 f callback "echo i am %w."`)
	eval(t, w, `command c2 f callback [gV c1 callback] fromVert c1`)
	eval(t, w, "realize")
	clickOn(t, w, "c1")
	if got := output(w); got != "i am c1.\n" {
		t.Errorf("c1 output = %q", got)
	}
	clickOn(t, w, "c2")
	if got := output(w); got != "i am c2.\n" {
		t.Errorf("c2 output = %q", got)
	}
}

// clickOn simulates a full button click on a named widget.
func clickOn(t *testing.T, w *Wafe, name string) {
	t.Helper()
	wid := w.App.WidgetByName(name)
	if wid == nil {
		t.Fatalf("no widget %q", name)
	}
	d := wid.Display()
	win, ok := d.Lookup(wid.Window())
	if !ok {
		t.Fatalf("widget %q has no window", name)
	}
	x, y := win.RootCoords(2, 2)
	d.WarpPointer(x, y)
	d.InjectButtonPress(1)
	d.InjectButtonRelease(1)
	w.App.Pump()
}

// TestPredefinedCallbacksTable exercises every row of the paper's
// Predefined Callbacks table (experiment T1).
func TestPredefinedCallbacksTable(t *testing.T) {
	w := NewTest()
	eval(t, w, "command b topLevel")
	eval(t, w, "transientShell popup topLevel x 400 y 400")
	eval(t, w, "label inside popup")
	eval(t, w, "realize")

	shell := w.App.WidgetByName("popup")
	d := shell.Display()

	// none: realize shell, grab none.
	eval(t, w, "callback b callback none popup")
	clickOn(t, w, "b")
	if !shell.IsPoppedUp() {
		t.Fatal("none: shell not popped up")
	}
	if d.GrabbedWindow() != xproto.None {
		t.Error("none: grab should not be installed")
	}

	// popdown: unrealize shell.
	eval(t, w, "removeAllCallbacks b callback")
	eval(t, w, "callback b callback popdown popup")
	clickOn(t, w, "b")
	if shell.IsPoppedUp() {
		t.Fatal("popdown: shell still up")
	}

	// exclusive: realize shell, grab exclusive.
	eval(t, w, "removeAllCallbacks b callback")
	eval(t, w, "callback b callback exclusive popup")
	clickOn(t, w, "b")
	if !shell.IsPoppedUp() || d.GrabbedWindow() != shell.Window() {
		t.Error("exclusive: popup or grab missing")
	}
	_ = shell.Popdown()

	// nonexclusive.
	eval(t, w, "removeAllCallbacks b callback")
	eval(t, w, "callback b callback nonexclusive popup")
	clickOn(t, w, "b")
	if !shell.IsPoppedUp() {
		t.Error("nonexclusive: shell not popped up")
	}
	_ = shell.Popdown()

	// position: position shell.
	eval(t, w, "removeAllCallbacks b callback")
	eval(t, w, "callback b callback position popup 111 222")
	clickOn(t, w, "b")
	if shell.Int("x") != 111 || shell.Int("y") != 222 {
		t.Errorf("position: %d,%d", shell.Int("x"), shell.Int("y"))
	}

	// positionCursor: position shell under pointer.
	eval(t, w, "removeAllCallbacks b callback")
	eval(t, w, "callback b callback positionCursor popup")
	wid := w.App.WidgetByName("b")
	win, _ := d.Lookup(wid.Window())
	bx, by := win.RootCoords(2, 2)
	clickOn(t, w, "b")
	if shell.Int("x") != bx || shell.Int("y") != by {
		t.Errorf("positionCursor: shell at %d,%d pointer at %d,%d", shell.Int("x"), shell.Int("y"), bx, by)
	}

	// Unknown names fail.
	evalErr(t, w, "callback b callback bogus popup", "unknown predefined callback")
	evalErr(t, w, "callback b callback none noSuchShell", "no widget named")
	evalErr(t, w, "callback b callback none b", "not a shell")
}

// TestXevExample reproduces the paper's xev demo (experiment C7): with
//
//	label xev topLevel
//	action xev override {<KeyPress>: exec(echo %k %a %s)}
//
// typing "w!" prints the documented three lines.
func TestXevExample(t *testing.T) {
	w := NewTest()
	eval(t, w, "label xev topLevel")
	eval(t, w, `action xev override {<KeyPress>: exec(echo %k %a %s)}`)
	eval(t, w, "realize")
	wid := w.App.WidgetByName("xev")
	d := wid.Display()
	d.SetInputFocus(wid.Window())
	if err := d.TypeString("w!"); err != nil {
		t.Fatal(err)
	}
	w.App.Pump()
	got := output(w)
	// Tcl's echo joins its arguments with single spaces, so the empty
	// %a for Shift_L collapses (the paper's printed second line).
	want := "198 w w\n174 Shift_L\n197 ! exclam\n"
	if got != want {
		t.Errorf("xev output:\n%q\nwant:\n%q", got, want)
	}
}

// TestActionPercentCodeTable covers the action percent-code validity
// matrix (experiment T2).
func TestActionPercentCodeTable(t *testing.T) {
	w := NewTest()
	eval(t, w, "label l topLevel width 60 height 40")
	eval(t, w, `action l override {<Btn1Down>: exec(echo b=%b t=%t x=%x y=%y X=%X Y=%Y w=%w)}`)
	eval(t, w, `action l augment {<EnterWindow>: exec(echo enter t=%t k=%k a=%a s=%s b=%b)}`)
	eval(t, w, "realize")
	wid := w.App.WidgetByName("l")
	d := wid.Display()
	win, _ := d.Lookup(wid.Window())
	rx, ry := win.RootCoords(0, 0)
	d.WarpPointer(900, 900)
	w.App.Pump()
	output(w)
	// Enter: %k %a %s %b are invalid for crossing events → empty.
	d.WarpPointer(rx+10, ry+5)
	w.App.Pump()
	if got := strings.TrimSpace(output(w)); got != "enter t=EnterNotify k= a= s= b=" {
		t.Errorf("enter expansion = %q", got)
	}
	// Button: all positional codes valid.
	d.InjectButtonPress(1)
	w.App.Pump()
	got := strings.TrimSpace(output(w))
	want := "b=1 t=ButtonPress x=10 y=5 X=" + itoa(rx+10) + " Y=" + itoa(ry+5) + " w=l"
	if got != want {
		t.Errorf("button expansion:\n%q\nwant\n%q", got, want)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// TestListCallbackPercentCodes covers the Athena List callback table
// (experiment T3): %w, %i, %s.
func TestListCallbackPercentCodes(t *testing.T) {
	w := NewTest()
	eval(t, w, "form f topLevel")
	eval(t, w, `label confirmLab f label " "`)
	eval(t, w, `list chooseLst f fromVert confirmLab verticalList true list "alpha
beta
gamma"`)
	// The paper's example: sV chooseLst callback "sV confirmLab label %s"
	eval(t, w, `sV chooseLst callback "echo w=%w i=%i; sV confirmLab label %s"`)
	eval(t, w, "realize")
	wid := w.App.WidgetByName("chooseLst")
	d := wid.Display()
	win, _ := d.Lookup(wid.Window())
	// Click second row.
	x, y := win.RootCoords(3, wid.Int("internalHeight")+15+2)
	d.WarpPointer(x, y)
	d.InjectButtonPress(1)
	d.InjectButtonRelease(1)
	w.App.Pump()
	if got := strings.TrimSpace(output(w)); got != "w=chooseLst i=1" {
		t.Errorf("percent output = %q", got)
	}
	if got := eval(t, w, "gV confirmLab label"); got != "beta" {
		t.Errorf("confirmLab = %q", got)
	}
}

// TestMenuButtonPopupMenu reproduces the paper's MenuButton example.
func TestMenuButtonPopupMenu(t *testing.T) {
	w := NewTest()
	eval(t, w, "menuButton mb topLevel menuName mymenu")
	eval(t, w, "simpleMenu mymenu topLevel")
	eval(t, w, "smeBSB entry1 mymenu label First")
	eval(t, w, `action mb override "<EnterWindow>: PopupMenu()"`)
	eval(t, w, "realize")
	wid := w.App.WidgetByName("mb")
	d := wid.Display()
	d.WarpPointer(900, 900)
	w.App.Pump()
	win, _ := d.Lookup(wid.Window())
	x, y := win.RootCoords(2, 2)
	d.WarpPointer(x, y)
	w.App.Pump()
	if !w.App.WidgetByName("mymenu").IsPoppedUp() {
		t.Error("menu did not pop up on EnterWindow")
	}
}

func TestExecActionRunsAnyWafeCommand(t *testing.T) {
	w := NewTest()
	eval(t, w, "label l topLevel")
	eval(t, w, `label target topLevel label before`)
	eval(t, w, `action l override {<Btn1Down>: exec(sV target label after)}`)
	eval(t, w, "realize")
	clickRaw(t, w, "l")
	if got := eval(t, w, "gV target label"); got != "after" {
		t.Errorf("target label = %q", got)
	}
}

func clickRaw(t *testing.T, w *Wafe, name string) {
	t.Helper()
	wid := w.App.WidgetByName(name)
	d := wid.Display()
	win, _ := d.Lookup(wid.Window())
	x, y := win.RootCoords(1, 1)
	d.WarpPointer(x, y)
	d.InjectButtonPress(1)
	w.App.Pump()
	d.InjectButtonRelease(1)
	w.App.Pump()
}

func TestMultiDisplayShells(t *testing.T) {
	w := NewTest()
	eval(t, w, "applicationShell top2 unit-core-dec4:0")
	eval(t, w, "label remote top2 label faraway")
	eval(t, w, "realize top2")
	shell := w.App.WidgetByName("top2")
	if shell.Display().Name != "unit-core-dec4:0" {
		t.Errorf("shell display = %q", shell.Display().Name)
	}
	lab := w.App.WidgetByName("remote")
	if lab.Display() != shell.Display() {
		t.Error("child not mapped to the second display")
	}
	if !lab.IsRealized() {
		t.Error("remote child not realized")
	}
	if got := eval(t, w, "displayList"); !strings.Contains(got, "unit-core-dec4:0") {
		t.Errorf("displayList = %q", got)
	}
}

func TestQuitCommand(t *testing.T) {
	w := NewTest()
	eval(t, w, "quit")
	if !w.QuitRequested() || w.ExitCode() != 0 {
		t.Error("quit not recorded")
	}
	w2 := NewTest()
	eval(t, w2, "quit 3")
	if w2.ExitCode() != 3 {
		t.Errorf("exit code = %d", w2.ExitCode())
	}
}

func TestTclExitMapsToQuit(t *testing.T) {
	w := NewTest()
	if _, err := w.Eval("exit 7"); err != nil {
		t.Fatalf("exit should be absorbed: %v", err)
	}
	if !w.QuitRequested() || w.ExitCode() != 7 {
		t.Errorf("quit=%v code=%d", w.QuitRequested(), w.ExitCode())
	}
}

func TestDestroyWidgetCommand(t *testing.T) {
	w := NewTest()
	eval(t, w, "form f topLevel")
	eval(t, w, "label a f")
	eval(t, w, "label b f fromVert a")
	before := w.App.LiveWidgets()
	eval(t, w, "destroyWidget f")
	if got := w.App.LiveWidgets(); got != before-3 {
		t.Errorf("live widgets = %d, want %d", got, before-3)
	}
	evalErr(t, w, "gV a label", "no widget named")
}

func TestActionCommandModes(t *testing.T) {
	w := NewTest()
	eval(t, w, "command c topLevel")
	// Override replaces Btn1Down set() with a custom action.
	eval(t, w, `action c override {<Btn1Down>: exec(echo overridden)}`)
	eval(t, w, "realize")
	clickRaw(t, w, "c")
	out := output(w)
	if !strings.Contains(out, "overridden") {
		t.Errorf("override failed: %q", out)
	}
	evalErr(t, w, "action c badmode {<Btn1Down>: exec(echo x)}", "bad translation merge mode")
	evalErr(t, w, "action c override {garbage}", "no")
}

func TestTimeoutCommand(t *testing.T) {
	w := NewTest()
	id := eval(t, w, "addTimeOut 1 {echo timer-fired; quit}")
	if !strings.HasPrefix(id, "timeout") {
		t.Fatalf("id = %q", id)
	}
	code := w.App.MainLoop()
	if code != 0 {
		t.Errorf("exit = %d", code)
	}
	if got := output(w); !strings.Contains(got, "timer-fired") {
		t.Errorf("output = %q", got)
	}
	// removeTimeOut on unknown id errors.
	evalErr(t, w, "removeTimeOut nope", "no timeout")
	id2 := eval(t, w, "addTimeOut 50000 {echo never}")
	eval(t, w, "removeTimeOut "+id2)
}

func TestSelectionsCommands(t *testing.T) {
	w := NewTest()
	eval(t, w, `asciiText txt topLevel string "selected stuff"`)
	eval(t, w, "realize")
	eval(t, w, `ownSelection txt PRIMARY {gV txt string}`)
	if got := eval(t, w, "getSelectionValue txt PRIMARY STRING"); got != "selected stuff" {
		t.Errorf("selection = %q", got)
	}
	eval(t, w, "disownSelection txt PRIMARY")
	evalErr(t, w, "getSelectionValue txt PRIMARY", "no value")
}

func TestMotifCommandsThroughWafe(t *testing.T) {
	w := NewTest()
	eval(t, w, "mRowColumn rc topLevel")
	eval(t, w, `mLabel l rc fontList "*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft" labelString {I'm\bft bold\ft and\rl strange}`)
	if got := eval(t, w, "gV l labelString"); got != `I'm\bft bold\ft and\rl strange` {
		t.Errorf("labelString round-trip = %q", got)
	}
	eval(t, w, "mPushButton pressMe rc")
	eval(t, w, "transientShell pop topLevel x 500 y 500")
	eval(t, w, "mLabel inpop pop")
	eval(t, w, "callback pressMe armCallback none pop")
	eval(t, w, "realize")
	clickRaw(t, w, "pressMe")
	if !w.App.WidgetByName("pop").IsPoppedUp() {
		t.Error("armCallback none did not pop up the shell")
	}
	eval(t, w, "mCascadeButton mc rc")
	eval(t, w, "mCascadeButtonHighlight mc true")
	eval(t, w, "mCommand mcmd rc")
	eval(t, w, "mCommandAppendValue mcmd {ls -l}")
	if got := eval(t, w, "gV mcmd value"); got != "ls -l" {
		t.Errorf("mCommandAppendValue = %q", got)
	}
}

func TestPixmapConverterFallback(t *testing.T) {
	w := NewTest()
	// XBM first.
	eval(t, w, `label b1 topLevel bitmap {#define i_width 8
#define i_height 1
static char i_bits[] = {0xff};}`)
	// XPM fallback when XBM parsing fails.
	eval(t, w, `label b2 topLevel bitmap {static char *x[] = {"1 1 1 1", "a c blue", "a"};}`)
	evalErr(t, w, "label b3 topLevel bitmap garbage", "neither XBM nor XPM")
}

func TestSnapshotAndWidgetTree(t *testing.T) {
	w := NewTest()
	eval(t, w, "form f topLevel")
	eval(t, w, `label hello f label "Wafe new World"`)
	eval(t, w, "realize")
	snap := eval(t, w, "snapshot")
	if !strings.Contains(snap, "Wafe new World") {
		t.Errorf("snapshot missing label:\n%s", snap)
	}
	tree := eval(t, w, "widgetTree")
	if !strings.Contains(tree, "topLevel (ApplicationShell)") || !strings.Contains(tree, "hello (Label)") {
		t.Errorf("widgetTree = %q", tree)
	}
	list := eval(t, w, "widgetList")
	if !strings.Contains(list, "hello") {
		t.Errorf("widgetList = %q", list)
	}
}

func TestScriptErrorReporting(t *testing.T) {
	w := NewTest()
	eval(t, w, `command bad topLevel callback "nosuchcommand"`)
	eval(t, w, "realize")
	clickOn(t, w, "bad")
	out := output(w)
	if !strings.Contains(out, "callback error") {
		t.Errorf("error not reported: %q", out)
	}
}

// TestLayering is experiment F1: a widget tree built through the full
// Tcl → Wafe → Xt → Xaw → xproto stack works end to end.
func TestLayering(t *testing.T) {
	w := NewTest()
	eval(t, w, `
		form top topLevel
		asciiText input top editType edit width 200
		label result top label {} width 200 fromVert input
		command quitBtn top fromVert result callback quit
		label info top fromVert result fromHoriz quitBtn label {} borderWidth 0 width 150
		realize
	`)
	for _, name := range []string{"top", "input", "result", "quitBtn", "info"} {
		wid := w.App.WidgetByName(name)
		if wid == nil || !wid.IsRealized() {
			t.Errorf("widget %q missing or unrealized", name)
		}
	}
	// Type into the text widget and read it back via gV.
	wid := w.App.WidgetByName("input")
	d := wid.Display()
	d.SetInputFocus(wid.Window())
	_ = d.TypeString("360")
	w.App.Pump()
	if got := eval(t, w, "gV input string"); got != "360" {
		t.Errorf("typed string = %q", got)
	}
	// Clicking quit requests termination.
	clickOn(t, w, "quitBtn")
	if !w.QuitRequested() {
		t.Error("quit callback did not run")
	}
}

func TestMemoryManagementOnSetValues(t *testing.T) {
	// "every time a string resource, a callback ... is updated, the old
	// value is freed": replacing a callback via sV replaces, not
	// appends.
	w := NewTest()
	eval(t, w, `command c topLevel callback "echo one"`)
	eval(t, w, `sV c callback "echo two"`)
	eval(t, w, "realize")
	clickOn(t, w, "c")
	if got := output(w); got != "two\n" {
		t.Errorf("output = %q (old callback must be replaced)", got)
	}
	if got := eval(t, w, "gV c callback"); got != "echo two" {
		t.Errorf("callback source = %q", got)
	}
}

func TestEchoJoinsArgs(t *testing.T) {
	w := NewTest()
	eval(t, w, "echo listening on 5")
	if got := output(w); got != "listening on 5\n" {
		t.Errorf("echo = %q", got)
	}
}

// TestListCommandCollision: the derived creation command "list"
// collides with Tcl's list built-in; dispatch goes by the father
// argument.
func TestListCommandCollision(t *testing.T) {
	w := NewTest()
	// Tcl semantics when the second word is not a widget.
	if got := eval(t, w, "list year 1994"); got != "year 1994" {
		t.Errorf("tcl list = %q", got)
	}
	if got := eval(t, w, "llength [list a b c]"); got != "3" {
		t.Errorf("llength = %q", got)
	}
	// Widget creation when the father exists.
	eval(t, w, "form f topLevel")
	eval(t, w, `list hits f verticalList true list "x
y"`)
	wid := w.App.WidgetByName("hits")
	if wid == nil || wid.Class.Name != "List" {
		t.Fatalf("List widget not created: %+v", wid)
	}
	// Tcl list still works afterwards.
	if got := eval(t, w, "lindex [list p q] 1"); got != "q" {
		t.Errorf("tcl list after widget = %q", got)
	}
}

func TestNameToWidget(t *testing.T) {
	w := NewTest()
	eval(t, w, "form f topLevel")
	eval(t, w, "box inner f")
	eval(t, w, "label deep inner")
	if got := eval(t, w, "nameToWidget topLevel f.inner.deep"); got != "deep" {
		t.Errorf("nameToWidget = %q", got)
	}
	if got := eval(t, w, "nameToWidget f inner"); got != "inner" {
		t.Errorf("relative path = %q", got)
	}
	evalErr(t, w, "nameToWidget topLevel f.missing", "no descendant")
}

func TestInstallAccelerators(t *testing.T) {
	w := NewTest()
	eval(t, w, "form f topLevel")
	eval(t, w, `command btn f callback "echo accelerated"`)
	eval(t, w, `asciiText entry f fromVert btn editType edit width 100`)
	// Give the button an accelerator binding that triggers notify.
	eval(t, w, `sV btn accelerators {Ctrl<Key>Return: set() notify() unset()}`)
	eval(t, w, "installAccelerators entry btn")
	eval(t, w, "realize")
	// Pressing Ctrl-Return inside the text widget activates the button.
	wid := w.App.WidgetByName("entry")
	d := wid.Display()
	d.SetInputFocus(wid.Window())
	ctrl, _ := d.Keymap().KeycodeFor("Control_L")
	ret, _ := d.Keymap().KeycodeFor("Return")
	d.InjectKeycode(ctrl, true)
	d.InjectKeycode(ret, true)
	d.InjectKeycode(ret, false)
	d.InjectKeycode(ctrl, false)
	w.App.Pump()
	if got := output(w); !strings.Contains(got, "accelerated") {
		t.Errorf("accelerator did not fire: %q", got)
	}
	evalErr(t, w, "installAccelerators entry f", "no accelerators")
}

func TestWidgetIntrospectionCommands(t *testing.T) {
	w := NewTest()
	eval(t, w, "form f topLevel")
	eval(t, w, "label a f")
	eval(t, w, "label b f fromVert a")
	if got := eval(t, w, "widgetChildren f"); got != "a b" {
		t.Errorf("children = %q", got)
	}
	if got := eval(t, w, "widgetParent a"); got != "f" {
		t.Errorf("parent = %q", got)
	}
	if got := eval(t, w, "widgetParent topLevel"); got != "" {
		t.Errorf("root parent = %q", got)
	}
	if got := eval(t, w, "widgetClass a"); got != "Label" {
		t.Errorf("class = %q", got)
	}
	if got := eval(t, w, "isRealized a"); got != "0" {
		t.Errorf("isRealized before realize = %q", got)
	}
	eval(t, w, "realize")
	if got := eval(t, w, "isRealized a"); got != "1" {
		t.Errorf("isRealized after realize = %q", got)
	}
	if got := eval(t, w, "isManaged a"); got != "1" {
		t.Errorf("isManaged = %q", got)
	}
}

// TestRddDragAndDropCommands exercises the Rdd integration the paper
// mentions through the script-level commands.
func TestRddDragAndDropCommands(t *testing.T) {
	w := NewTest()
	eval(t, w, "box b topLevel orientation horizontal")
	eval(t, w, `label src b label {payload-text}`)
	eval(t, w, `label dst b label {drop here}`)
	eval(t, w, "realize")
	eval(t, w, `rddRegisterSource src {gV %w label}`)
	eval(t, w, `rddRegisterTarget dst {sV %w label %v; echo dropped %v at %x,%y}`)
	eval(t, w, "rddDrag src dst")
	if got := eval(t, w, "gV dst label"); got != "payload-text" {
		t.Errorf("dst label = %q", got)
	}
	if out := output(w); !strings.Contains(out, "dropped payload-text at") {
		t.Errorf("drop script output = %q", out)
	}
	// Unregister stops drops.
	eval(t, w, "rddUnregisterTarget dst")
	eval(t, w, "sV dst label reset")
	eval(t, w, "rddDrag src dst")
	if got := eval(t, w, "gV dst label"); got != "reset" {
		t.Errorf("drop fired after unregister: %q", got)
	}
	evalErr(t, w, "rddDrag src nosuch", "no widget named")
}

func TestWidgetSetConfigurations(t *testing.T) {
	athena, err := New(Config{TestDisplay: true, Set: SetAthena})
	if err != nil {
		t.Fatal(err)
	}
	if !athena.Interp.HasCommand("asciiText") {
		t.Error("athena build lacks asciiText")
	}
	if athena.Interp.HasCommand("mPushButton") {
		t.Error("athena build must not have Motif widgets (no free mixing)")
	}
	motif, err := New(Config{TestDisplay: true, Set: SetMotif, AppName: "mofe"})
	if err != nil {
		t.Fatal(err)
	}
	if motif.Interp.HasCommand("asciiText") {
		t.Error("motif build must not have asciiText (paper: not possible to mix freely)")
	}
	if !motif.Interp.HasCommand("mCascadeButton") {
		t.Error("motif build lacks mCascadeButton")
	}
	// Plotter set is in both.
	if !athena.Interp.HasCommand("barGraph") || !motif.Interp.HasCommand("barGraph") {
		t.Error("plotter classes missing")
	}
}
