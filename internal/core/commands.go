package core

import (
	"fmt"
	"image/png"
	"os"
	"strconv"
	"strings"
	"time"

	"wafe/internal/tcl"
	"wafe/internal/xaw"
	"wafe/internal/xm"
	"wafe/internal/xt"
)

// registerCommands installs the Wafe commands that correspond to Xt,
// Xaw and Xm functions plus the Wafe-specific ones (mergeResources,
// callback, action, quit, snapshot).
func (w *Wafe) registerCommands() {
	reg := func(name string, fn func(argv []string) (string, error)) {
		w.Interp.RegisterCommand(name, func(_ *tcl.Interp, argv []string) (string, error) {
			return fn(argv)
		})
	}

	// --- widget life cycle (Xt) ---
	reg("realize", w.cmdRealize)
	reg("destroyWidget", w.cmdDestroyWidget)
	reg("manageChild", w.cmdManageChild)
	reg("unmanageChild", w.cmdUnmanageChild)
	reg("setSensitive", w.cmdSetSensitive)
	reg("isRealized", w.cmdIsRealized)
	reg("isManaged", w.cmdIsManaged)
	reg("nameToWidget", w.cmdNameToWidget)
	reg("translateCoords", w.cmdTranslateCoords)
	reg("installAccelerators", w.cmdInstallAccelerators)
	reg("widgetChildren", w.cmdWidgetChildren)
	reg("widgetParent", w.cmdWidgetParent)
	reg("widgetClass", w.cmdWidgetClass)

	// --- resources ---
	reg("setValues", w.cmdSetValues)
	w.Interp.RegisterCommand("sV", func(_ *tcl.Interp, argv []string) (string, error) {
		return w.cmdSetValues(argv)
	})
	w.Interp.RegisterCommand("sv", func(_ *tcl.Interp, argv []string) (string, error) {
		return w.cmdSetValues(argv)
	})
	reg("getValue", w.cmdGetValue)
	reg("getValues", w.cmdGetValues)
	w.Interp.RegisterCommand("gV", func(_ *tcl.Interp, argv []string) (string, error) {
		return w.cmdGetValue(argv)
	})
	reg("mergeResources", w.cmdMergeResources)
	reg("getResourceList", w.cmdGetResourceList)

	// --- callbacks and actions ---
	reg("callback", w.cmdCallback)
	reg("addCallback", w.cmdAddCallback)
	reg("removeAllCallbacks", w.cmdRemoveAllCallbacks)
	reg("hasCallbacks", w.cmdHasCallbacks)
	reg("callCallbacks", w.cmdCallCallbacks)
	reg("action", w.cmdAction)

	// --- popups ---
	reg("popup", w.cmdPopup)
	reg("popdown", w.cmdPopdown)

	// --- timeouts ---
	reg("addTimeOut", w.cmdAddTimeOut)
	reg("removeTimeOut", w.cmdRemoveTimeOut)

	// --- selections ---
	reg("ownSelection", w.cmdOwnSelection)
	reg("disownSelection", w.cmdDisownSelection)
	reg("getSelectionValue", w.cmdGetSelectionValue)

	// --- Athena programmatic interface ---
	reg("listHighlight", w.cmdListHighlight)
	reg("listUnhighlight", w.cmdListUnhighlight)
	reg("listChange", w.cmdListChange)
	reg("listShowCurrent", w.cmdListShowCurrent)
	reg("dialogGetValueString", w.cmdDialogGetValueString)
	reg("scrollbarSetThumb", w.cmdScrollbarSetThumb)
	reg("formAllowResize", w.cmdFormAllowResize)
	reg("stripChartSample", w.cmdStripChartSample)
	reg("stripChartStart", w.cmdStripChartStart)
	reg("stripChartStop", w.cmdStripChartStop)
	reg("viewportSetLocation", w.cmdViewportSetLocation)
	reg("viewportSetCoordinates", w.cmdViewportSetLocation)

	// --- Motif programmatic interface ---
	reg("mCascadeButtonHighlight", w.cmdCascadeButtonHighlight)
	reg("mCommandAppendValue", w.cmdCommandAppendValue)
	reg("mTextInsert", w.cmdTextInsert)

	// --- Wafe specifics ---
	reg("quit", w.cmdQuit)
	reg("sync", w.cmdSync)
	reg("backend", w.cmdBackend)

	// --- headless event synthesis (this reproduction's stand-in for a
	// human at the display; documented in README) ---
	reg("sendClick", w.cmdSendClick)
	reg("sendKeys", w.cmdSendKeys)
	reg("sendExpose", w.cmdSendExpose)
	reg("warpPointer", w.cmdWarpPointer)
	reg("focusWidget", w.cmdFocusWidget)
	reg("widgetList", w.cmdWidgetList)
	reg("widgetTree", w.cmdWidgetTree)
	reg("snapshot", w.cmdSnapshot)
	reg("writeImage", w.cmdWriteImage)
	reg("displayList", w.cmdDisplayList)
}

func (w *Wafe) cmdRealize(argv []string) (string, error) {
	target := w.TopLevel
	if len(argv) == 2 {
		t, err := w.widgetArg(argv[1])
		if err != nil {
			return "", err
		}
		target = t
	} else if len(argv) > 2 {
		return "", tcl.NewError("wrong # args: should be \"realize ?widget?\"")
	}
	target.Realize()
	w.App.Pump()
	return "", nil
}

func (w *Wafe) cmdDestroyWidget(argv []string) (string, error) {
	if len(argv) != 2 {
		return "", tcl.NewError("wrong # args: should be \"destroyWidget widget\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	wid.Destroy()
	return "", nil
}

func (w *Wafe) cmdManageChild(argv []string) (string, error) {
	if len(argv) != 2 {
		return "", tcl.NewError("wrong # args: should be \"manageChild widget\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	wid.Manage()
	return "", nil
}

func (w *Wafe) cmdUnmanageChild(argv []string) (string, error) {
	if len(argv) != 2 {
		return "", tcl.NewError("wrong # args: should be \"unmanageChild widget\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	wid.Unmanage()
	return "", nil
}

func (w *Wafe) cmdSetSensitive(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"setSensitive widget boolean\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	return "", wid.SetValues(map[string]string{"sensitive": argv[2]})
}

func (w *Wafe) cmdIsRealized(argv []string) (string, error) {
	if len(argv) != 2 {
		return "", tcl.NewError("wrong # args: should be \"isRealized widget\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	if wid.IsRealized() {
		return "1", nil
	}
	return "0", nil
}

func (w *Wafe) cmdIsManaged(argv []string) (string, error) {
	if len(argv) != 2 {
		return "", tcl.NewError("wrong # args: should be \"isManaged widget\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	if wid.IsManaged() {
		return "1", nil
	}
	return "0", nil
}

// cmdNameToWidget resolves a slash/dot path relative to a reference
// widget (XtNameToWidget): nameToWidget ref path.
func (w *Wafe) cmdNameToWidget(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"nameToWidget reference path\"")
	}
	ref, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	cur := ref
	path := strings.FieldsFunc(argv[2], func(r rune) bool { return r == '.' || r == '/' })
	for _, part := range path {
		if part == "" {
			continue
		}
		var next *xt.Widget
		for _, c := range cur.Children() {
			if c.Name == part {
				next = c
				break
			}
		}
		if next == nil {
			return "", tcl.NewError("widget %q has no descendant %q", argv[1], part)
		}
		cur = next
	}
	return cur.Name, nil
}

// cmdTranslateCoords converts widget-relative coordinates to root
// coordinates (XtTranslateCoords): translateCoords widget x y → "rx ry".
func (w *Wafe) cmdTranslateCoords(argv []string) (string, error) {
	if len(argv) != 4 {
		return "", tcl.NewError("wrong # args: should be \"translateCoords widget x y\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	if !wid.IsRealized() {
		return "", tcl.NewError("widget %q is not realized", argv[1])
	}
	x, err1 := strconv.Atoi(argv[2])
	y, err2 := strconv.Atoi(argv[3])
	if err1 != nil || err2 != nil {
		return "", tcl.NewError("bad coordinates %q %q", argv[2], argv[3])
	}
	win, ok := wid.Display().Lookup(wid.Window())
	if !ok {
		return "", tcl.NewError("widget %q has no window", argv[1])
	}
	rx, ry := win.RootCoords(x, y)
	return fmt.Sprintf("%d %d", rx, ry), nil
}

// cmdInstallAccelerators merges the source widget's accelerators
// resource into the destination's translations
// (XtInstallAccelerators): installAccelerators destination source.
func (w *Wafe) cmdInstallAccelerators(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"installAccelerators destination source\"")
	}
	dst, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	src, err := w.widgetArg(argv[2])
	if err != nil {
		return "", err
	}
	var acc *xt.Translations
	if v, ok := src.Get("accelerators"); ok {
		acc, _ = v.(*xt.Translations)
	}
	if acc == nil || acc.Len() == 0 {
		return "", tcl.NewError("widget %q has no accelerators", argv[2])
	}
	var cur *xt.Translations
	if v, ok := dst.Get("translations"); ok {
		cur, _ = v.(*xt.Translations)
	}
	// The accelerator actions resolve and run on the source widget.
	dst.SetResourceValue("translations", cur.Merge(acc.RetargetTo(src), xt.MergeAugment))
	dst.UpdateInputMask()
	return "", nil
}

func (w *Wafe) cmdWidgetChildren(argv []string) (string, error) {
	if len(argv) != 2 {
		return "", tcl.NewError("wrong # args: should be \"widgetChildren widget\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	var names []string
	for _, c := range wid.Children() {
		names = append(names, c.Name)
	}
	return tcl.FormatList(names), nil
}

func (w *Wafe) cmdWidgetParent(argv []string) (string, error) {
	if len(argv) != 2 {
		return "", tcl.NewError("wrong # args: should be \"widgetParent widget\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	if wid.Parent == nil {
		return "", nil
	}
	return wid.Parent.Name, nil
}

func (w *Wafe) cmdWidgetClass(argv []string) (string, error) {
	if len(argv) != 2 {
		return "", tcl.NewError("wrong # args: should be \"widgetClass widget\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	return wid.Class.Name, nil
}

func (w *Wafe) cmdSetValues(argv []string) (string, error) {
	if len(argv) < 2 || len(argv)%2 != 0 {
		return "", tcl.NewError("wrong # args: should be \"setValues widget ?resource value ...?\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	args := make(map[string]string, (len(argv)-2)/2)
	for i := 2; i+1 < len(argv); i += 2 {
		args[argv[i]] = argv[i+1]
	}
	if err := wid.SetValues(args); err != nil {
		return "", tcl.NewError("%s", err.Error())
	}
	w.App.Pump()
	return "", nil
}

func (w *Wafe) cmdGetValue(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"getValue widget resource\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	v, err := wid.GetValue(argv[2])
	if err != nil {
		return "", tcl.NewError("%s", err.Error())
	}
	return v, nil
}

// cmdGetValues fills a Tcl associative array with resource values —
// the paper's convention for functions returning structures: "The Wafe
// counterparts of these functions take a name of a Tcl associative
// array as an argument (instead of a pointer) and create entries in the
// associative array corresponding to the C-structure's components."
//
//	getValues widget arrayName ?resource ...?
//
// Without explicit resources every declared resource is stored. The
// number of entries written is returned.
func (w *Wafe) cmdGetValues(argv []string) (string, error) {
	if len(argv) < 3 {
		return "", tcl.NewError("wrong # args: should be \"getValues widget arrayName ?resource ...?\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	arrName := argv[2]
	names := argv[3:]
	if len(names) == 0 {
		names = wid.ResourceNames()
	}
	count := 0
	for _, r := range names {
		v, err := wid.GetValue(r)
		if err != nil {
			return "", tcl.NewError("%s", err.Error())
		}
		if err := w.Interp.SetVar(arrName+"("+r+")", v); err != nil {
			return "", err
		}
		count++
	}
	return strconv.Itoa(count), nil
}

// cmdMergeResources extends the per-display resource database:
// mergeResources spec value ?spec value ...?
func (w *Wafe) cmdMergeResources(argv []string) (string, error) {
	if len(argv) < 3 || (len(argv)-1)%2 != 0 {
		return "", tcl.NewError("wrong # args: should be \"mergeResources spec value ?spec value ...?\"")
	}
	for i := 1; i+1 < len(argv); i += 2 {
		if err := w.App.DB.Enter(argv[i], argv[i+1]); err != nil {
			return "", tcl.NewError("%s", err.Error())
		}
	}
	return "", nil
}

// cmdGetResourceList implements the paper's value-passing convention:
// the element count is the return value and the list lands in a Tcl
// variable named by the second argument.
func (w *Wafe) cmdGetResourceList(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"getResourceList widget varName\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	names := wid.ResourceNames()
	if err := w.Interp.SetVar(argv[2], tcl.FormatList(names)); err != nil {
		return "", err
	}
	return strconv.Itoa(len(names)), nil
}

// cmdCallback binds a predefined callback function:
//
//	callback widget resourceName predefined shellName
//
// with predefined ∈ {none, exclusive, nonexclusive, popdown, position,
// positionCursor} — the paper's Predefined Callbacks table.
func (w *Wafe) cmdCallback(argv []string) (string, error) {
	if len(argv) < 4 {
		return "", tcl.NewError("wrong # args: should be \"callback widget resource predefined shell ?args?\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	resource, predefined := argv[2], argv[3]
	var shellName string
	var extra []string
	if len(argv) >= 5 {
		shellName = argv[4]
		extra = argv[5:]
	}
	cb, err := w.predefinedCallback(predefined, shellName, extra)
	if err != nil {
		return "", err
	}
	if err := wid.AddCallback(resource, cb); err != nil {
		return "", tcl.NewError("%s", err.Error())
	}
	return "", nil
}

// predefinedCallback builds one entry of the predefined callbacks
// table.
func (w *Wafe) predefinedCallback(name, shellName string, extra []string) (xt.Callback, error) {
	shell := func() (*xt.Widget, error) {
		s := w.App.WidgetByName(shellName)
		if s == nil {
			return nil, tcl.NewError("no widget named %q", shellName)
		}
		if !s.Class.Shell {
			return nil, tcl.NewError("widget %q is not a shell", shellName)
		}
		return s, nil
	}
	source := strings.TrimSpace(name + " " + shellName)
	switch name {
	case "none", "exclusive", "nonexclusive":
		kind, _ := xt.ParseGrabKind(name)
		if _, err := shell(); err != nil {
			return xt.Callback{}, err
		}
		return xt.Callback{Source: source, Proc: func(*xt.Widget, xt.CallData) {
			if s, err := shell(); err == nil {
				if err := s.Popup(kind); err != nil {
					w.reportScriptError("popup", s, err)
				}
				w.App.Pump()
			}
		}}, nil
	case "popdown":
		if _, err := shell(); err != nil {
			return xt.Callback{}, err
		}
		return xt.Callback{Source: source, Proc: func(*xt.Widget, xt.CallData) {
			if s, err := shell(); err == nil {
				if err := s.Popdown(); err != nil {
					w.reportScriptError("popdown", s, err)
				}
				w.App.Pump()
			}
		}}, nil
	case "position":
		if _, err := shell(); err != nil {
			return xt.Callback{}, err
		}
		x, y := 0, 0
		if len(extra) >= 2 {
			var errX, errY error
			x, errX = strconv.Atoi(extra[0])
			y, errY = strconv.Atoi(extra[1])
			if errX != nil || errY != nil {
				return xt.Callback{}, tcl.NewError("position: bad coordinates %v", extra)
			}
		}
		return xt.Callback{Source: source, Proc: func(*xt.Widget, xt.CallData) {
			if s, err := shell(); err == nil {
				_ = s.PositionShell(x, y)
			}
		}}, nil
	case "positionCursor":
		if _, err := shell(); err != nil {
			return xt.Callback{}, err
		}
		return xt.Callback{Source: source, Proc: func(*xt.Widget, xt.CallData) {
			if s, err := shell(); err == nil {
				_ = s.PositionShellUnderPointer()
			}
		}}, nil
	}
	return xt.Callback{}, tcl.NewError("unknown predefined callback %q (want none, exclusive, nonexclusive, popdown, position or positionCursor)", name)
}

func (w *Wafe) cmdAddCallback(argv []string) (string, error) {
	if len(argv) != 4 {
		return "", tcl.NewError("wrong # args: should be \"addCallback widget resource script\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	if err := wid.AddCallback(argv[2], w.scriptCallback(argv[3])); err != nil {
		return "", tcl.NewError("%s", err.Error())
	}
	return "", nil
}

func (w *Wafe) cmdRemoveAllCallbacks(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"removeAllCallbacks widget resource\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	if err := wid.RemoveAllCallbacks(argv[2]); err != nil {
		return "", tcl.NewError("%s", err.Error())
	}
	return "", nil
}

func (w *Wafe) cmdHasCallbacks(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"hasCallbacks widget resource\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	if wid.HasCallbacks(argv[2]) {
		return "1", nil
	}
	return "0", nil
}

func (w *Wafe) cmdCallCallbacks(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"callCallbacks widget resource\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	wid.CallCallbacks(argv[2], nil)
	w.App.Pump()
	return "", nil
}

// cmdAction overrides/augments/replaces a widget's translation table:
//
//	action widget mode translation ?translation ...?
func (w *Wafe) cmdAction(argv []string) (string, error) {
	if len(argv) < 4 {
		return "", tcl.NewError("wrong # args: should be \"action widget mode translations ?translations ...?\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	mode, err := xt.ParseMergeMode(argv[2])
	if err != nil {
		return "", tcl.NewError("%s", err.Error())
	}
	nt, err := xt.ParseTranslations(strings.Join(argv[3:], "\n"))
	if err != nil {
		return "", tcl.NewError("%s", err.Error())
	}
	var cur *xt.Translations
	if v, ok := wid.Get("translations"); ok {
		cur, _ = v.(*xt.Translations)
	}
	wid.SetResourceValue("translations", cur.Merge(nt, mode))
	wid.UpdateInputMask()
	return "", nil
}

func (w *Wafe) cmdPopup(argv []string) (string, error) {
	if len(argv) != 2 && len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"popup shell ?grabKind?\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	kind := xt.GrabNone
	if len(argv) == 3 {
		k, err := xt.ParseGrabKind(argv[2])
		if err != nil {
			return "", tcl.NewError("%s", err.Error())
		}
		kind = k
	}
	if err := wid.Popup(kind); err != nil {
		return "", tcl.NewError("%s", err.Error())
	}
	w.App.Pump()
	return "", nil
}

func (w *Wafe) cmdPopdown(argv []string) (string, error) {
	if len(argv) != 2 {
		return "", tcl.NewError("wrong # args: should be \"popdown shell\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	if err := wid.Popdown(); err != nil {
		return "", tcl.NewError("%s", err.Error())
	}
	w.App.Pump()
	return "", nil
}

// cmdAddTimeOut schedules a script: addTimeOut milliseconds script → id.
func (w *Wafe) cmdAddTimeOut(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"addTimeOut milliseconds script\"")
	}
	ms, err := strconv.Atoi(argv[1])
	if err != nil || ms < 0 {
		return "", tcl.NewError("bad interval %q", argv[1])
	}
	// Compile at registration; a malformed script still yields an
	// evaluable prefix that replays the parse error when it fires.
	script, _ := tcl.Compile(argv[2])
	w.nextID++
	id := "timeout" + strconv.Itoa(w.nextID)
	t := w.App.AddTimeout(time.Duration(ms)*time.Millisecond, func() {
		delete(w.timers, id)
		if _, err := w.EvalScript(script); err != nil {
			w.reportScriptError("timeout", nil, err)
		}
	})
	w.timers[id] = t
	return id, nil
}

func (w *Wafe) cmdRemoveTimeOut(argv []string) (string, error) {
	if len(argv) != 2 {
		return "", tcl.NewError("wrong # args: should be \"removeTimeOut id\"")
	}
	t, ok := w.timers[argv[1]]
	if !ok {
		return "", tcl.NewError("no timeout %q", argv[1])
	}
	t.Remove()
	delete(w.timers, argv[1])
	return "", nil
}

// cmdOwnSelection makes the widget own a selection; the script is
// evaluated when another client requests the value and its result is
// the selection value: ownSelection widget selection script.
func (w *Wafe) cmdOwnSelection(argv []string) (string, error) {
	if len(argv) != 4 {
		return "", tcl.NewError("wrong # args: should be \"ownSelection widget selection script\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	sel, script := argv[2], argv[3]
	// Scripts without the %t target code never change between requests,
	// so they compile once here.
	var compiled *tcl.Script
	if !strings.Contains(script, "%t") {
		compiled, _ = tcl.Compile(script)
	}
	wid.Display().OwnSelection(sel, wid.Window(), func(target string) (string, bool) {
		var res string
		var err error
		if compiled != nil {
			res, err = w.EvalScript(compiled)
		} else {
			res, err = w.Eval(strings.ReplaceAll(script, "%t", target))
		}
		if err != nil {
			return "", false
		}
		return res, true
	})
	return "", nil
}

func (w *Wafe) cmdDisownSelection(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"disownSelection widget selection\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	wid.Display().DisownSelection(argv[2], wid.Window())
	return "", nil
}

func (w *Wafe) cmdGetSelectionValue(argv []string) (string, error) {
	if len(argv) != 3 && len(argv) != 4 {
		return "", tcl.NewError("wrong # args: should be \"getSelectionValue widget selection ?target?\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	target := "STRING"
	if len(argv) == 4 {
		target = argv[3]
	}
	v, ok := wid.Display().ConvertSelection(argv[2], target)
	if !ok {
		return "", tcl.NewError("selection %q has no value for target %q", argv[2], target)
	}
	return v, nil
}

// --- Athena functions -------------------------------------------------------

func (w *Wafe) xawWidgetArg(name string, class *xt.Class) (*xt.Widget, error) {
	wid, err := w.widgetArg(name)
	if err != nil {
		return nil, err
	}
	if !wid.Class.IsSubclassOf(class) {
		return nil, tcl.NewError("widget %q is a %s, not a %s", name, wid.Class.Name, class.Name)
	}
	return wid, nil
}

func (w *Wafe) cmdListHighlight(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"listHighlight widget index\"")
	}
	wid, err := w.xawWidgetArg(argv[1], xaw.ListClass)
	if err != nil {
		return "", err
	}
	idx, err := strconv.Atoi(argv[2])
	if err != nil {
		return "", tcl.NewError("bad index %q", argv[2])
	}
	xaw.ListHighlight(wid, idx)
	return "", nil
}

func (w *Wafe) cmdListUnhighlight(argv []string) (string, error) {
	if len(argv) != 2 {
		return "", tcl.NewError("wrong # args: should be \"listUnhighlight widget\"")
	}
	wid, err := w.xawWidgetArg(argv[1], xaw.ListClass)
	if err != nil {
		return "", err
	}
	xaw.ListUnhighlight(wid)
	return "", nil
}

func (w *Wafe) cmdListChange(argv []string) (string, error) {
	if len(argv) != 3 && len(argv) != 4 {
		return "", tcl.NewError("wrong # args: should be \"listChange widget list ?resize?\"")
	}
	wid, err := w.xawWidgetArg(argv[1], xaw.ListClass)
	if err != nil {
		return "", err
	}
	items, err := tcl.ParseList(argv[2])
	if err != nil {
		return "", err
	}
	resize := true
	if len(argv) == 4 {
		b, err := tcl.ParseBool(argv[3])
		if err != nil {
			return "", err
		}
		resize = b
	}
	xaw.ListChange(wid, items, resize)
	w.App.Pump()
	return "", nil
}

// cmdListShowCurrent follows the count-plus-variable convention: it
// returns the index and stores the string in the named variable.
func (w *Wafe) cmdListShowCurrent(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"listShowCurrent widget varName\"")
	}
	wid, err := w.xawWidgetArg(argv[1], xaw.ListClass)
	if err != nil {
		return "", err
	}
	cur := xaw.ListCurrent(wid)
	if err := w.Interp.SetVar(argv[2], cur.String); err != nil {
		return "", err
	}
	return strconv.Itoa(cur.Index), nil
}

func (w *Wafe) cmdDialogGetValueString(argv []string) (string, error) {
	if len(argv) != 2 {
		return "", tcl.NewError("wrong # args: should be \"dialogGetValueString widget\"")
	}
	wid, err := w.xawWidgetArg(argv[1], xaw.DialogClass)
	if err != nil {
		return "", err
	}
	return xaw.DialogValue(wid), nil
}

func (w *Wafe) cmdScrollbarSetThumb(argv []string) (string, error) {
	if len(argv) != 4 {
		return "", tcl.NewError("wrong # args: should be \"scrollbarSetThumb widget top shown\"")
	}
	wid, err := w.xawWidgetArg(argv[1], xaw.ScrollbarClass)
	if err != nil {
		return "", err
	}
	top, err1 := strconv.ParseFloat(argv[2], 64)
	shown, err2 := strconv.ParseFloat(argv[3], 64)
	if err1 != nil || err2 != nil {
		return "", tcl.NewError("bad thumb values %q %q", argv[2], argv[3])
	}
	xaw.ScrollbarSetThumb(wid, top, shown)
	return "", nil
}

func (w *Wafe) cmdFormAllowResize(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"formAllowResize widget boolean\"")
	}
	wid, err := w.xawWidgetArg(argv[1], xaw.FormClass)
	if err != nil {
		return "", err
	}
	allow, err := tcl.ParseBool(argv[2])
	if err != nil {
		return "", err
	}
	xaw.FormAllowResize(wid, allow)
	return "", nil
}

func (w *Wafe) cmdStripChartSample(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"stripChartSample widget value\"")
	}
	wid, err := w.xawWidgetArg(argv[1], xaw.StripChartClass)
	if err != nil {
		return "", err
	}
	v, err := strconv.ParseFloat(argv[2], 64)
	if err != nil {
		return "", tcl.NewError("bad sample %q", argv[2])
	}
	xaw.StripChartAddSample(wid, v)
	return "", nil
}

// cmdViewportSetLocation implements XawViewportSetLocation:
// viewportSetLocation widget xFraction yFraction.
func (w *Wafe) cmdViewportSetLocation(argv []string) (string, error) {
	if len(argv) != 4 {
		return "", tcl.NewError("wrong # args: should be \"viewportSetLocation widget xFraction yFraction\"")
	}
	wid, err := w.xawWidgetArg(argv[1], xaw.ViewportClass)
	if err != nil {
		return "", err
	}
	xf, err1 := strconv.ParseFloat(argv[2], 64)
	yf, err2 := strconv.ParseFloat(argv[3], 64)
	if err1 != nil || err2 != nil {
		return "", tcl.NewError("bad fractions %q %q", argv[2], argv[3])
	}
	xaw.ViewportSetLocation(wid, xf, yf)
	w.App.Pump()
	return "", nil
}

// stripCharts tracks the running samplers (stopped by stripChartStop
// or widget destruction).
var noStripChart = tcl.NewError("no strip chart sampler running for widget")

type stripChartRun struct{ stopped bool }

// cmdStripChartStart begins periodic sampling: the widget's getValue
// callback script is evaluated every `update` seconds (Xaw semantics)
// and its result becomes the next sample.
func (w *Wafe) cmdStripChartStart(argv []string) (string, error) {
	if len(argv) != 2 {
		return "", tcl.NewError("wrong # args: should be \"stripChartStart widget\"")
	}
	wid, err := w.xawWidgetArg(argv[1], xaw.StripChartClass)
	if err != nil {
		return "", err
	}
	script, err := wid.GetValue("getValue")
	if err != nil || strings.TrimSpace(script) == "" {
		return "", tcl.NewError("widget %q has no getValue callback", argv[1])
	}
	if w.chartRuns == nil {
		w.chartRuns = make(map[string]*stripChartRun)
	}
	if run, ok := w.chartRuns[wid.Name]; ok {
		run.stopped = true // restart with current script
	}
	run := &stripChartRun{}
	w.chartRuns[wid.Name] = run
	interval := time.Duration(maxIntC(wid.Int("update"), 1)) * time.Second
	compiled, _ := tcl.Compile(script)
	var tick func()
	tick = func() {
		if run.stopped || w.App.WidgetByName(wid.Name) != wid {
			return
		}
		res, err := w.EvalScript(compiled)
		if err != nil {
			w.reportScriptError("stripChart getValue", wid, err)
			return
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(res), 64)
		if err != nil {
			w.reportScriptError("stripChart getValue", wid, tcl.NewError("script result %q is not a number", res))
			return
		}
		xaw.StripChartAddSample(wid, v)
		w.App.AddTimeout(interval, tick)
	}
	// First sample fires immediately; subsequent ones on the interval.
	tick()
	return "", nil
}

func (w *Wafe) cmdStripChartStop(argv []string) (string, error) {
	if len(argv) != 2 {
		return "", tcl.NewError("wrong # args: should be \"stripChartStop widget\"")
	}
	run, ok := w.chartRuns[argv[1]]
	if !ok {
		return "", noStripChart
	}
	run.stopped = true
	delete(w.chartRuns, argv[1])
	return "", nil
}

func maxIntC(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- Motif functions ---------------------------------------------------------

func (w *Wafe) cmdCascadeButtonHighlight(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"mCascadeButtonHighlight widget boolean\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	if wid.Class != xm.XmCascadeButtonClass {
		return "", tcl.NewError("widget %q is not an XmCascadeButton", argv[1])
	}
	b, err := tcl.ParseBool(argv[2])
	if err != nil {
		return "", err
	}
	xm.CascadeButtonHighlight(wid, b)
	return "", nil
}

func (w *Wafe) cmdCommandAppendValue(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"mCommandAppendValue widget string\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	if !wid.Class.IsSubclassOf(xm.XmCommandClass) {
		return "", tcl.NewError("widget %q is not an XmCommand", argv[1])
	}
	xm.CommandAppendValue(wid, argv[2])
	return "", nil
}

func (w *Wafe) cmdTextInsert(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"mTextInsert widget string\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	if !wid.Class.IsSubclassOf(xm.XmTextClass) {
		return "", tcl.NewError("widget %q is not an XmText", argv[1])
	}
	xm.TextInsert(wid, argv[2])
	return "", nil
}

// --- Wafe specifics ------------------------------------------------------------

func (w *Wafe) cmdQuit(argv []string) (string, error) {
	code := 0
	if len(argv) == 2 {
		c, err := strconv.Atoi(argv[1])
		if err != nil {
			return "", tcl.NewError("bad exit code %q", argv[1])
		}
		code = c
	}
	w.quitRequested = true
	w.exitCode = code
	w.App.Quit(code)
	return "", nil
}

func (w *Wafe) cmdSync(argv []string) (string, error) {
	w.App.Pump()
	return "", nil
}

// cmdBackend reports the backend lifecycle state as a flat Tcl list
// (state running pid 1234 restarts 2 ...); `state none` when no
// backend is under supervision — interactive and file mode, or a
// frontend wired without the Supervisor.
func (w *Wafe) cmdBackend(argv []string) (string, error) {
	if len(argv) != 1 {
		return "", tcl.NewError("wrong # args: should be \"backend\"")
	}
	if w.BackendReport == nil {
		return tcl.FormatList([]string{"state", "none"}), nil
	}
	return tcl.FormatList(w.BackendReport()), nil
}

func (w *Wafe) cmdWidgetList(argv []string) (string, error) {
	return tcl.FormatList(w.App.WidgetNames()), nil
}

func (w *Wafe) cmdWidgetTree(argv []string) (string, error) {
	root := w.TopLevel
	if len(argv) == 2 {
		wid, err := w.widgetArg(argv[1])
		if err != nil {
			return "", err
		}
		root = wid
	}
	var b strings.Builder
	var walk func(x *xt.Widget, depth int)
	walk = func(x *xt.Widget, depth int) {
		fmt.Fprintf(&b, "%s%s (%s) %dx%d+%d+%d\n",
			strings.Repeat("  ", depth), x.Name, x.Class.Name,
			x.Int("width"), x.Int("height"), x.Int("x"), x.Int("y"))
		for _, c := range x.Children() {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return strings.TrimRight(b.String(), "\n"), nil
}

// cmdSnapshot renders the widget tree as ASCII art — the headless
// stand-in for looking at the screen.
func (w *Wafe) cmdSnapshot(argv []string) (string, error) {
	target := w.TopLevel
	if len(argv) == 2 {
		wid, err := w.widgetArg(argv[1])
		if err != nil {
			return "", err
		}
		target = wid
	}
	if !target.IsRealized() {
		return "", tcl.NewError("widget %q is not realized", target.Name)
	}
	return target.Display().Snapshot(target.Window()), nil
}

// cmdWriteImage rasterizes a widget subtree to a PNG file.
func (w *Wafe) cmdWriteImage(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"writeImage widget fileName\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	if !wid.IsRealized() {
		return "", tcl.NewError("widget %q is not realized", wid.Name)
	}
	img := wid.Display().RenderImage(wid.Window())
	f, err := os.Create(argv[2])
	if err != nil {
		return "", tcl.NewError("cannot create %q: %v", argv[2], err)
	}
	defer f.Close()
	if err := png.Encode(f, img); err != nil {
		return "", tcl.NewError("png encode: %v", err)
	}
	return "", nil
}

// cmdSendClick synthesizes a full button click on a widget:
// sendClick widget ?button? ?x y?
func (w *Wafe) cmdSendClick(argv []string) (string, error) {
	if len(argv) < 2 || len(argv) > 5 {
		return "", tcl.NewError("wrong # args: should be \"sendClick widget ?button? ?x y?\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	if !wid.IsRealized() {
		return "", tcl.NewError("widget %q is not realized", argv[1])
	}
	button := 1
	if len(argv) >= 3 {
		b, err := strconv.Atoi(argv[2])
		if err != nil || b < 1 || b > 5 {
			return "", tcl.NewError("bad button %q", argv[2])
		}
		button = b
	}
	ox, oy := 2, 2
	if len(argv) == 5 {
		x, err1 := strconv.Atoi(argv[3])
		y, err2 := strconv.Atoi(argv[4])
		if err1 != nil || err2 != nil {
			return "", tcl.NewError("bad coordinates %q %q", argv[3], argv[4])
		}
		ox, oy = x, y
	}
	d := wid.Display()
	win, ok := d.Lookup(wid.Window())
	if !ok {
		return "", tcl.NewError("widget %q has no window", argv[1])
	}
	rx, ry := win.RootCoords(ox, oy)
	d.WarpPointer(rx, ry)
	d.InjectButtonPress(button)
	d.InjectButtonRelease(button)
	w.App.Pump()
	return "", nil
}

// cmdSendKeys types text into a widget (focus is moved there first):
// sendKeys widget text
func (w *Wafe) cmdSendKeys(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"sendKeys widget text\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	if !wid.IsRealized() {
		return "", tcl.NewError("widget %q is not realized", argv[1])
	}
	d := wid.Display()
	d.SetInputFocus(wid.Window())
	if err := d.TypeString(argv[2]); err != nil {
		return "", tcl.NewError("%s", err.Error())
	}
	w.App.Pump()
	return "", nil
}

// cmdSendExpose injects an Expose for a widget, whole-window or for one
// damage rectangle: sendExpose widget ?x y w h?
func (w *Wafe) cmdSendExpose(argv []string) (string, error) {
	if len(argv) != 2 && len(argv) != 6 {
		return "", tcl.NewError("wrong # args: should be \"sendExpose widget ?x y w h?\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	x, y, ew, eh := 0, 0, 0, 0
	if len(argv) == 6 {
		var errs [4]error
		x, errs[0] = strconv.Atoi(argv[2])
		y, errs[1] = strconv.Atoi(argv[3])
		ew, errs[2] = strconv.Atoi(argv[4])
		eh, errs[3] = strconv.Atoi(argv[5])
		for _, e := range errs {
			if e != nil {
				return "", tcl.NewError("bad damage rectangle %q %q %q %q", argv[2], argv[3], argv[4], argv[5])
			}
		}
	}
	if wid.IsRealized() {
		wid.Display().InjectExposeRect(wid.Window(), x, y, ew, eh)
		w.App.Pump()
	}
	return "", nil
}

func (w *Wafe) cmdWarpPointer(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"warpPointer x y\"")
	}
	x, err1 := strconv.Atoi(argv[1])
	y, err2 := strconv.Atoi(argv[2])
	if err1 != nil || err2 != nil {
		return "", tcl.NewError("bad coordinates %q %q", argv[1], argv[2])
	}
	w.App.Display().WarpPointer(x, y)
	w.App.Pump()
	return "", nil
}

func (w *Wafe) cmdFocusWidget(argv []string) (string, error) {
	if len(argv) != 2 {
		return "", tcl.NewError("wrong # args: should be \"focusWidget widget\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	if !wid.IsRealized() {
		return "", tcl.NewError("widget %q is not realized", argv[1])
	}
	wid.Display().SetInputFocus(wid.Window())
	return "", nil
}

func (w *Wafe) cmdDisplayList(argv []string) (string, error) {
	names := make([]string, 0, len(w.App.Displays()))
	for _, d := range w.App.Displays() {
		names = append(names, d.Name)
	}
	return tcl.FormatList(names), nil
}
