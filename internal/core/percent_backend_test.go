package core

import "testing"

func TestExpandBackendPercent(t *testing.T) {
	vals := map[byte]string{
		'p': "4321",
		'n': "2",
		'r': "crash",
		'x': "42",
		'u': "1500",
	}
	cases := []struct{ in, want string }{
		{"set pid %p", "set pid 4321"},
		{"report %r %x after %u ms, restart %n", "report crash 42 after 1500 ms, restart 2"},
		{"100%% done", "100% done"},
		{"unknown %q stays", "unknown %q stays"},
		{"trailing %", "trailing %"},
		{"no codes", "no codes"},
	}
	for _, c := range cases {
		if got := ExpandBackendPercent(c.in, vals); got != c.want {
			t.Errorf("ExpandBackendPercent(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
