package core

import (
	"strconv"
	"strings"
	"testing"

	"wafe/internal/obs"
	"wafe/internal/tcl"
)

// TestStatisticsFilter: the optional pattern argument glob-filters the
// metric names.
func TestStatisticsFilter(t *testing.T) {
	w := NewTest()
	eval(t, w, "set x 1")
	all := eval(t, w, "statistics")
	if !strings.Contains(all, "tcl.evals") || !strings.Contains(all, "frontend.command_lines") {
		t.Fatalf("statistics = %.200q", all)
	}
	filtered := eval(t, w, "statistics tcl.*")
	fields, err := tcl.ParseList(filtered)
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) == 0 || len(fields)%2 != 0 {
		t.Fatalf("filtered statistics = %q", filtered)
	}
	for i := 0; i < len(fields); i += 2 {
		if !strings.HasPrefix(fields[i], "tcl.") {
			t.Errorf("filter leaked %s", fields[i])
		}
	}
	if none := eval(t, w, "statistics does.not.match.*"); none != "" {
		t.Errorf("unmatched filter = %q", none)
	}
	evalErr(t, w, "statistics a b", "wrong # args")
}

// TestTraceCommands: traceOn with a ring size bounds the span ring,
// trace spans/tree render the recorded forest, trace clear drops it.
func TestTraceCommands(t *testing.T) {
	w := NewTest()
	eval(t, w, "traceOn 4")
	for i := 0; i < 10; i++ {
		eval(t, w, "set x 1")
	}
	spans := eval(t, w, "trace spans")
	entries, err := tcl.ParseList(spans)
	if err != nil {
		t.Fatal(err)
	}
	// Ring size 4 bounds the retained spans.
	if len(entries) != 4 {
		t.Errorf("trace spans kept %d entries, want 4", len(entries))
	}
	for _, e := range entries {
		f, err := tcl.ParseList(e)
		if err != nil || len(f) != 5 {
			t.Errorf("span entry %q: %d fields, err %v", e, len(f), err)
		} else if f[2] != "eval" || f[3] != "set x 1" {
			t.Errorf("span entry fields = %q", f)
		}
	}
	tree := eval(t, w, "trace tree")
	if !strings.Contains(tree, `eval "set x 1"`) {
		t.Errorf("trace tree = %q", tree)
	}
	// Clear drops the recorded spans ("trace clear" itself records a
	// fresh eval span once its own evaluation completes).
	eval(t, w, "trace clear")
	if got := eval(t, w, "trace spans"); strings.Contains(got, "set x 1") {
		t.Errorf("spans after clear = %q", got)
	}
	evalErr(t, w, "trace bogus", "unknown subcommand")
	evalErr(t, w, "traceOn zero", "positive ring size")
	evalErr(t, w, "traceOn 0", "positive ring size")
	eval(t, w, "traceOff")
}

// TestTraceTreeSubtree: trace tree <id> renders only that span's
// subtree.
func TestTraceTreeSubtree(t *testing.T) {
	w := NewTest()
	m := w.EnableObservability()
	m.Trace.SetEnabled(true)
	outer := m.Trace.StartSpan("line", "%outer")
	m.Trace.StartSpan("eval", "inner").End()
	outer.End()
	m.Trace.StartSpan("line", "%other").End()
	m.Trace.SetEnabled(false)

	full := eval(t, w, "trace tree")
	if !strings.Contains(full, "%outer") || !strings.Contains(full, "%other") {
		t.Fatalf("full tree = %q", full)
	}
	spans := m.Trace.Spans()
	var outerID uint64
	for _, sp := range spans {
		if sp.Name == "%outer" {
			outerID = sp.ID
		}
	}
	sub := eval(t, w, "trace tree "+strconv.FormatUint(outerID, 10))
	if !strings.Contains(sub, "%outer") || !strings.Contains(sub, "inner") || strings.Contains(sub, "%other") {
		t.Errorf("subtree = %q", sub)
	}
	evalErr(t, w, "trace tree notanid", "expected span id")
}

// TestProfileCommands drives the profileOn/profileOff/profileDump
// cycle over Tcl.
func TestProfileCommands(t *testing.T) {
	w := NewTest()
	evalErr(t, w, "profileDump", "no profile recorded")
	eval(t, w, "profileOn")
	eval(t, w, "proc work {} { set s 0; set s 1 }")
	eval(t, w, "work")
	eval(t, w, "profileOff")
	doc := eval(t, w, "profileDump")
	for _, want := range []string{`"procs"`, `"work"`, `"commands"`, `"total_ns"`} {
		if !strings.Contains(doc, want) {
			t.Errorf("profileDump misses %s: %.300q", want, doc)
		}
	}
	folded := eval(t, w, "profileDump -folded")
	if !strings.Contains(folded, "<top>;work ") {
		t.Errorf("folded = %q", folded)
	}
	// Evals after profileOff are not recorded.
	p := w.profiler
	before := p.TotalNs()
	eval(t, w, "work")
	if p.TotalNs() != before {
		t.Error("profiler kept recording after profileOff")
	}
	// profileOn opens a fresh window.
	eval(t, w, "profileOn")
	eval(t, w, "set y 1")
	eval(t, w, "profileOff")
	if w.profiler == p {
		t.Error("profileOn reused the old profiler")
	}
	if st := w.profiler.ProcStat("work"); st.Count != 0 {
		t.Errorf("fresh profiler inherited work count %d", st.Count)
	}
	evalErr(t, w, "profileDump -folded extra junk", "wrong # args")
}

// TestTraceRingSizeStaged: a TraceRingSize staged on the Wafe before
// observability exists is applied when it is enabled lazily.
func TestTraceRingSizeStaged(t *testing.T) {
	w := NewTest()
	w.TraceRingSize = 7
	m := w.EnableObservability()
	if got := m.Trace.RingSize(); got != 7 {
		t.Errorf("ring size = %d, want staged 7", got)
	}
	// Idempotent enable keeps the registry.
	if w.EnableObservability() != m {
		t.Error("EnableObservability not idempotent")
	}
}

// TestFlightStaged: a recorder staged on the Wafe is attached at
// enable time.
func TestFlightStaged(t *testing.T) {
	w := NewTest()
	fr := &obs.FlightRecorder{Dir: t.TempDir()}
	w.Flight = fr
	if m := w.EnableObservability(); m.Flight != fr {
		t.Error("staged flight recorder not attached")
	}
}
