package core

import (
	"wafe/gen/bindings"
)

// Wafe implements bindings.Dispatcher, the hand-written half of the
// generated command bindings: the generated code (gen/bindings,
// produced by cmd/wafegen from specs/wafe.spec) performs argument
// checking and marshalling, then calls into these typed entry points —
// the same division of labour as the original system, where the Perl
// generator produced the conversion/registration C code around
// hand-written implementation functions.

// CreateWidgetClass instantiates a widget of the named class.
func (w *Wafe) CreateWidgetClass(className, name, father string, unmanaged bool, resources []string) (string, error) {
	argv := []string{CreationCommandName(className), name, father}
	if unmanaged {
		argv = append(argv, "-unmanaged")
	}
	argv = append(argv, resources...)
	return w.Interp.EvalWords(argv)
}

// CallFunction invokes the toolkit function's Wafe command with the
// converted arguments.
func (w *Wafe) CallFunction(cName string, args []bindings.Arg) (string, error) {
	argv := make([]string, 0, len(args)+1)
	argv = append(argv, CommandName(cName))
	for _, a := range args {
		argv = append(argv, a.Value)
	}
	return w.Interp.EvalWords(argv)
}

// RunBinding executes a generated binding by command name — used by
// tests and by embedders that want the generated arity checking in
// front of the command dispatch.
func (w *Wafe) RunBinding(command string, argv []string) (string, error) {
	b, ok := bindings.Bindings[command]
	if !ok {
		return "", &bindingError{command}
	}
	return b.Run(w, argv)
}

type bindingError struct{ cmd string }

func (e *bindingError) Error() string { return "no generated binding for command " + e.cmd }
