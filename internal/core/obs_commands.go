package core

import (
	"os"
	"strings"

	"wafe/internal/tcl"
)

// registerObsCommands installs the observability commands the backend
// can use over the pipe, mirroring the original Wafe's debug/echo
// mode:
//
//	statistics          return every metric as a flat Tcl list
//	                    (name value name value ...)
//	traceOn / traceOff  echo backend command lines and fired
//	                    callbacks/actions to the terminal
//	metricsDump ?file?  write the JSON metrics document to a file, or
//	                    return it as the command result
//
// Each command enables observability on first use, so a backend in any
// language can opt in without restarting the frontend.
func (w *Wafe) registerObsCommands() {
	w.Interp.RegisterCommand("statistics", func(_ *tcl.Interp, argv []string) (string, error) {
		if len(argv) != 1 {
			return "", tcl.NewError("wrong # args: should be \"statistics\"")
		}
		m := w.EnableObservability()
		samples := m.Snapshot()
		flat := make([]string, 0, 2*len(samples))
		for _, s := range samples {
			flat = append(flat, s.Name, s.FormatValue())
		}
		return tcl.FormatList(flat), nil
	})
	w.Interp.RegisterCommand("traceOn", func(_ *tcl.Interp, argv []string) (string, error) {
		if len(argv) != 1 {
			return "", tcl.NewError("wrong # args: should be \"traceOn\"")
		}
		w.EnableObservability().Trace.SetEnabled(true)
		return "", nil
	})
	w.Interp.RegisterCommand("traceOff", func(_ *tcl.Interp, argv []string) (string, error) {
		if len(argv) != 1 {
			return "", tcl.NewError("wrong # args: should be \"traceOff\"")
		}
		w.EnableObservability().Trace.SetEnabled(false)
		return "", nil
	})
	w.Interp.RegisterCommand("metricsDump", func(_ *tcl.Interp, argv []string) (string, error) {
		if len(argv) > 2 {
			return "", tcl.NewError("wrong # args: should be \"metricsDump ?fileName?\"")
		}
		m := w.EnableObservability()
		var sb strings.Builder
		if err := m.WriteJSON(&sb); err != nil {
			return "", tcl.NewError("metricsDump: %v", err)
		}
		doc := strings.TrimRight(sb.String(), "\n")
		if len(argv) == 2 {
			if err := os.WriteFile(argv[1], []byte(doc+"\n"), 0o644); err != nil {
				return "", tcl.NewError("metricsDump: %v", err)
			}
			return "", nil
		}
		return doc, nil
	})
}
