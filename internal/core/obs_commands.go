package core

import (
	"os"
	"strconv"
	"strings"

	"wafe/internal/obs"
	"wafe/internal/tcl"
)

// registerObsCommands installs the observability commands the backend
// can use over the pipe, mirroring the original Wafe's debug/echo
// mode:
//
//	statistics ?pattern?   return metrics as a flat Tcl list (name
//	                       value ...), optionally filtered by a glob
//	                       pattern over the metric names
//	traceOn ?n? / traceOff event+span recording on (with an optional
//	                       ring size) or off
//	trace spans            recorded spans, one {id parent kind name us}
//	                       sub-list per span
//	trace tree ?id?        the span forest (or one subtree) as an
//	                       indented multi-line rendering
//	trace clear            drop recorded spans and events
//	metricsDump ?file?     write the JSON metrics document to a file,
//	                       or return it as the command result
//	profileOn              open a fresh Tcl profiling window
//	profileOff             close it
//	profileDump ?-folded? ?file?
//	                       the profile as single-line JSON, or as
//	                       folded stacks for flamegraph tools
//
// Each command enables observability on first use, so a backend in any
// language can opt in without restarting the frontend.
func (w *Wafe) registerObsCommands() {
	w.Interp.RegisterCommand("statistics", func(_ *tcl.Interp, argv []string) (string, error) {
		if len(argv) > 2 {
			return "", tcl.NewError("wrong # args: should be \"statistics ?pattern?\"")
		}
		m := w.EnableObservability()
		samples := m.Snapshot()
		flat := make([]string, 0, 2*len(samples))
		for _, s := range samples {
			if len(argv) == 2 && !tcl.GlobMatch(argv[1], s.Name) {
				continue
			}
			flat = append(flat, s.Name, s.FormatValue())
		}
		return tcl.FormatList(flat), nil
	})
	w.Interp.RegisterCommand("traceOn", func(_ *tcl.Interp, argv []string) (string, error) {
		if len(argv) > 2 {
			return "", tcl.NewError("wrong # args: should be \"traceOn ?ringSize?\"")
		}
		m := w.EnableObservability()
		if len(argv) == 2 {
			n, err := strconv.Atoi(argv[1])
			if err != nil || n <= 0 {
				return "", tcl.NewError("traceOn: expected positive ring size but got %q", argv[1])
			}
			m.Trace.SetRingSize(n)
		}
		m.Trace.SetEnabled(true)
		return "", nil
	})
	w.Interp.RegisterCommand("traceOff", func(_ *tcl.Interp, argv []string) (string, error) {
		if len(argv) != 1 {
			return "", tcl.NewError("wrong # args: should be \"traceOff\"")
		}
		w.EnableObservability().Trace.SetEnabled(false)
		return "", nil
	})
	w.Interp.RegisterCommand("trace", func(_ *tcl.Interp, argv []string) (string, error) {
		if len(argv) < 2 {
			return "", tcl.NewError("wrong # args: should be \"trace spans|tree|clear ?arg?\"")
		}
		m := w.EnableObservability()
		switch argv[1] {
		case "spans":
			if len(argv) != 2 {
				return "", tcl.NewError("wrong # args: should be \"trace spans\"")
			}
			spans := m.Trace.Spans()
			lines := make([]string, 0, len(spans))
			for _, sp := range spans {
				lines = append(lines, tcl.FormatList([]string{
					strconv.FormatUint(sp.ID, 10),
					strconv.FormatUint(sp.Parent, 10),
					sp.Kind,
					sp.Name,
					strconv.FormatInt(sp.Dur.Microseconds(), 10),
				}))
			}
			return tcl.FormatList(lines), nil
		case "tree":
			if len(argv) > 3 {
				return "", tcl.NewError("wrong # args: should be \"trace tree ?id?\"")
			}
			var root uint64
			if len(argv) == 3 {
				n, err := strconv.ParseUint(argv[2], 10, 64)
				if err != nil {
					return "", tcl.NewError("trace tree: expected span id but got %q", argv[2])
				}
				root = n
			}
			return obs.RenderSpanTree(m.Trace.Spans(), root), nil
		case "clear":
			if len(argv) != 2 {
				return "", tcl.NewError("wrong # args: should be \"trace clear\"")
			}
			m.Trace.Clear()
			return "", nil
		}
		return "", tcl.NewError("trace: unknown subcommand %q: must be spans, tree or clear", argv[1])
	})
	w.Interp.RegisterCommand("metricsDump", func(_ *tcl.Interp, argv []string) (string, error) {
		if len(argv) > 2 {
			return "", tcl.NewError("wrong # args: should be \"metricsDump ?fileName?\"")
		}
		m := w.EnableObservability()
		var sb strings.Builder
		if err := m.WriteJSON(&sb); err != nil {
			return "", tcl.NewError("metricsDump: %v", err)
		}
		doc := strings.TrimRight(sb.String(), "\n")
		if len(argv) == 2 {
			if err := os.WriteFile(argv[1], []byte(doc+"\n"), 0o644); err != nil {
				return "", tcl.NewError("metricsDump: %v", err)
			}
			return "", nil
		}
		return doc, nil
	})
	w.Interp.RegisterCommand("profileOn", func(in *tcl.Interp, argv []string) (string, error) {
		if len(argv) != 1 {
			return "", tcl.NewError("wrong # args: should be \"profileOn\"")
		}
		w.EnableObservability()
		p := obs.NewProfiler()
		p.Start()
		w.profiler = p
		in.SetProfiler(p)
		return "", nil
	})
	w.Interp.RegisterCommand("profileOff", func(in *tcl.Interp, argv []string) (string, error) {
		if len(argv) != 1 {
			return "", tcl.NewError("wrong # args: should be \"profileOff\"")
		}
		if w.profiler != nil {
			w.profiler.Stop()
		}
		in.SetProfiler(nil)
		return "", nil
	})
	w.Interp.RegisterCommand("profileDump", func(_ *tcl.Interp, argv []string) (string, error) {
		folded := false
		args := argv[1:]
		if len(args) > 0 && args[0] == "-folded" {
			folded = true
			args = args[1:]
		}
		if len(args) > 1 {
			return "", tcl.NewError("wrong # args: should be \"profileDump ?-folded? ?fileName?\"")
		}
		p := w.profiler
		if p == nil {
			return "", tcl.NewError("profileDump: no profile recorded (run profileOn first)")
		}
		var doc string
		if folded {
			doc = strings.TrimRight(p.Folded(), "\n")
		} else {
			var sb strings.Builder
			if err := p.WriteJSON(&sb); err != nil {
				return "", tcl.NewError("profileDump: %v", err)
			}
			doc = strings.TrimRight(sb.String(), "\n")
		}
		if len(args) == 1 {
			if err := os.WriteFile(args[0], []byte(doc+"\n"), 0o644); err != nil {
				return "", tcl.NewError("profileDump: %v", err)
			}
			return "", nil
		}
		return doc, nil
	})
}
