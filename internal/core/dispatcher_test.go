package core

import (
	"strings"
	"testing"

	"wafe/gen/bindings"
)

// TestGeneratedBindingsEndToEnd drives the generated (wafegen) binding
// code against the real runtime: generated arity checks and dispatch on
// top of the hand-written implementation — the original's generated-C-
// around-handwritten-C structure.
func TestGeneratedBindingsEndToEnd(t *testing.T) {
	w := NewTest()
	// Widget creation through the generated mCascadeButton binding
	// (the paper's first spec example).
	if _, err := w.RunBinding("mCascadeButton", []string{"mCascadeButton", "mc", "topLevel"}); err != nil {
		t.Fatalf("generated mCascadeButton: %v", err)
	}
	if w.App.WidgetByName("mc") == nil {
		t.Fatal("widget not created through generated binding")
	}
	// Function call through the generated mCascadeButtonHighlight
	// binding (the paper's second spec example).
	if _, err := w.RunBinding("mCascadeButtonHighlight", []string{"mCascadeButtonHighlight", "mc", "true"}); err != nil {
		t.Fatalf("generated mCascadeButtonHighlight: %v", err)
	}
	// Generated arity checking fires before dispatch.
	_, err := w.RunBinding("mCascadeButtonHighlight", []string{"mCascadeButtonHighlight", "mc"})
	if err == nil || !strings.Contains(err.Error(), "wrong # args") {
		t.Errorf("arity error = %v", err)
	}
	// The -unmanaged flag threads through.
	if _, err := w.RunBinding("label", []string{"label", "hid", "topLevel", "-unmanaged"}); err != nil {
		t.Fatal(err)
	}
	if w.App.WidgetByName("hid").IsManaged() {
		t.Error("unmanaged flag lost through generated binding")
	}
	// destroyWidget through its generated binding.
	if _, err := w.RunBinding("destroyWidget", []string{"destroyWidget", "hid"}); err != nil {
		t.Fatal(err)
	}
	if w.App.WidgetByName("hid") != nil {
		t.Error("widget survived generated destroyWidget")
	}
	// Unknown binding errors cleanly.
	if _, err := w.RunBinding("noSuchBinding", nil); err == nil {
		t.Error("unknown binding accepted")
	}
}

// TestGeneratedBindingTableCoversSpec sanity-checks the checked-in
// generated output: every binding's command resolves in the runtime and
// the table is non-trivial.
func TestGeneratedBindingTableCoversSpec(t *testing.T) {
	if len(bindings.Bindings) < 50 {
		t.Fatalf("binding table has only %d entries — regenerate with cmd/wafegen", len(bindings.Bindings))
	}
	w := NewTest()
	for name, b := range bindings.Bindings {
		if !w.Interp.HasCommand(name) {
			t.Errorf("generated binding %q (%s) has no runtime command", name, b.CName)
		}
		if b.Run == nil {
			t.Errorf("binding %q has no Run function", name)
		}
	}
}
