package core

import (
	"os"
	"testing"

	"wafe/internal/spec"
)

// TestSpecRuntimeConsistency verifies the generator's headline benefit:
// "consistency in documentation and interface code". Every command the
// specification declares must be registered in the running interpreter
// under exactly the generated name, and every widget class in the
// runtime registry must appear in the spec.
func TestSpecRuntimeConsistency(t *testing.T) {
	data, err := os.ReadFile("../../specs/wafe.spec")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := spec.Parse(string(data))
	if err != nil {
		t.Fatal(err)
	}
	w := NewTest() // SetBoth: Athena + Motif + Plotter
	for _, e := range entries {
		cmd := e.CommandName()
		if !w.Interp.HasCommand(cmd) {
			t.Errorf("spec declares %q (%s) but the runtime does not register it", cmd, e.Kind)
		}
	}
	// Reverse direction for widget classes.
	declared := map[string]bool{}
	for _, e := range entries {
		if e.Kind == "widgetClass" {
			declared[e.ClassName] = true
		}
	}
	for _, c := range w.WidgetSetClasses() {
		if !declared[c.Name] {
			t.Errorf("runtime registers widget class %q missing from the spec", c.Name)
		}
	}
}
