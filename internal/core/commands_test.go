package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPopupPopdownCommands(t *testing.T) {
	w := NewTest()
	eval(t, w, "transientShell sh topLevel x 300 y 300")
	eval(t, w, "label in sh")
	eval(t, w, "realize")
	eval(t, w, "popup sh")
	if !w.App.WidgetByName("sh").IsPoppedUp() {
		t.Fatal("popup failed")
	}
	eval(t, w, "popdown sh")
	if w.App.WidgetByName("sh").IsPoppedUp() {
		t.Fatal("popdown failed")
	}
	eval(t, w, "popup sh exclusive")
	if w.App.Display().GrabbedWindow() != w.App.WidgetByName("sh").Window() {
		t.Error("exclusive grab missing")
	}
	eval(t, w, "popdown sh")
	evalErr(t, w, "popup sh bogus", "bad grab kind")
	eval(t, w, "label plain topLevel")
	evalErr(t, w, "popup plain", "non-shell")
	evalErr(t, w, "popdown plain", "non-shell")
}

func TestCallbackCommandFamily(t *testing.T) {
	w := NewTest()
	eval(t, w, "command c topLevel")
	if got := eval(t, w, "hasCallbacks c callback"); got != "0" {
		t.Errorf("hasCallbacks = %q", got)
	}
	eval(t, w, `addCallback c callback "echo first"`)
	eval(t, w, `addCallback c callback "echo second"`)
	if got := eval(t, w, "hasCallbacks c callback"); got != "1" {
		t.Errorf("hasCallbacks = %q", got)
	}
	eval(t, w, "callCallbacks c callback")
	if got := output(w); got != "first\nsecond\n" {
		t.Errorf("callCallbacks output = %q", got)
	}
	eval(t, w, "removeAllCallbacks c callback")
	eval(t, w, "callCallbacks c callback")
	if got := output(w); got != "" {
		t.Errorf("callbacks survived removal: %q", got)
	}
	evalErr(t, w, "addCallback c label {echo x}", "no callback resource")
	evalErr(t, w, "addCallback nosuch callback {echo x}", "no widget named")
}

func TestListCommandFamily(t *testing.T) {
	w := NewTest()
	eval(t, w, `list lst topLevel verticalList true list "a
b
c"`)
	eval(t, w, "realize")
	eval(t, w, "listHighlight lst 1")
	if got := eval(t, w, "listShowCurrent lst cur"); got != "1" {
		t.Errorf("index = %q", got)
	}
	if got := eval(t, w, "set cur"); got != "b" {
		t.Errorf("current = %q", got)
	}
	eval(t, w, "listUnhighlight lst")
	if got := eval(t, w, "listShowCurrent lst cur"); got != "-1" {
		t.Errorf("after unhighlight = %q", got)
	}
	eval(t, w, "listChange lst {x y}")
	if got := eval(t, w, "gV lst list"); got != "x\ny" {
		t.Errorf("list = %q", got)
	}
	evalErr(t, w, "listHighlight lst notanumber", "bad index")
	eval(t, w, "label notalist topLevel")
	evalErr(t, w, "listHighlight notalist 0", "not a List")
}

func TestDialogAndScrollbarCommands(t *testing.T) {
	w := NewTest()
	eval(t, w, "transientShell pop topLevel")
	eval(t, w, `dialog dlg pop label Question value Answer`)
	if got := eval(t, w, "dialogGetValueString dlg"); got != "Answer" {
		t.Errorf("dialog value = %q", got)
	}
	eval(t, w, "scrollbar sb topLevel length 120")
	eval(t, w, "realize")
	eval(t, w, "scrollbarSetThumb sb 0.5 0.25")
	if got := eval(t, w, "gV sb topOfThumb"); got != "0.5" {
		t.Errorf("thumb = %q", got)
	}
	evalErr(t, w, "scrollbarSetThumb sb x y", "bad thumb values")
	eval(t, w, "stripChart sc topLevel")
	eval(t, w, "stripChartSample sc 4.5")
	eval(t, w, "stripChartSample sc 2.5")
	evalErr(t, w, "stripChartSample sc abc", "bad sample")
}

// TestGetValuesArrayConvention checks the paper's structure-return
// convention: entries are created in a Tcl associative array.
func TestGetValuesArrayConvention(t *testing.T) {
	w := NewTest()
	eval(t, w, "label l topLevel label Hello foreground blue width 120")
	if got := eval(t, w, "getValues l info label foreground width"); got != "3" {
		t.Fatalf("count = %q", got)
	}
	if got := eval(t, w, "set info(label)"); got != "Hello" {
		t.Errorf("info(label) = %q", got)
	}
	if got := eval(t, w, "set info(foreground)"); got != "#0000ff" {
		t.Errorf("info(foreground) = %q", got)
	}
	if got := eval(t, w, "set info(width)"); got != "120" {
		t.Errorf("info(width) = %q", got)
	}
	// All 42 resources without an explicit list.
	if got := eval(t, w, "getValues l all"); got != "42" {
		t.Errorf("full dump count = %q", got)
	}
	if got := eval(t, w, "array size all"); got != "42" {
		t.Errorf("array size = %q", got)
	}
	evalErr(t, w, "getValues l arr nosuchres", "no resource")
}

// TestStripChartAutoSampling runs the Xaw-style getValue sampling loop.
func TestStripChartAutoSampling(t *testing.T) {
	w := NewTest()
	eval(t, w, "set n 0")
	eval(t, w, `stripChart sc topLevel update 1 getValue {incr n}`)
	eval(t, w, "realize")
	eval(t, w, "stripChartStart sc")
	// The first sample fires synchronously.
	if got := eval(t, w, "set n"); got != "1" {
		t.Fatalf("first sample: n = %q", got)
	}
	eval(t, w, "stripChartStop sc")
	evalErr(t, w, "stripChartStop sc", "no strip chart sampler")
	eval(t, w, "stripChart bare topLevel")
	evalErr(t, w, "stripChartStart bare", "no getValue callback")
}

func TestFormAllowResizeCommand(t *testing.T) {
	w := NewTest()
	eval(t, w, "form f topLevel")
	eval(t, w, "label a f")
	eval(t, w, "formAllowResize f false")
	eval(t, w, "label b f fromVert a label {a very long label that would grow the form}")
	eval(t, w, "realize")
	eval(t, w, "formAllowResize f true")
	evalErr(t, w, "formAllowResize f maybe", "boolean")
	eval(t, w, "label g topLevel")
	evalErr(t, w, "formAllowResize g true", "not a Form")
}

func TestSendKeysAndFocusCommands(t *testing.T) {
	w := NewTest()
	eval(t, w, "asciiText in topLevel editType edit width 120")
	evalErr(t, w, "sendKeys in hello", "not realized")
	eval(t, w, "realize")
	eval(t, w, "focusWidget in")
	eval(t, w, "sendKeys in {hi there}")
	if got := eval(t, w, "gV in string"); got != "hi there" {
		t.Errorf("typed = %q", got)
	}
	eval(t, w, "sendExpose in")
	eval(t, w, "warpPointer 10 10")
	evalErr(t, w, "warpPointer x y", "bad coordinates")
	evalErr(t, w, "sendClick in 9", "bad button")
}

func TestWriteImageCommand(t *testing.T) {
	w := NewTest()
	eval(t, w, "label l topLevel label picture")
	eval(t, w, "realize")
	dir := t.TempDir()
	file := filepath.Join(dir, "out.png")
	eval(t, w, "writeImage topLevel "+file)
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 8 || string(data[1:4]) != "PNG" {
		t.Errorf("not a PNG: % x", data[:8])
	}
	evalErr(t, w, "writeImage nosuch x.png", "no widget named")
}

func TestTranslateCoordsCommand(t *testing.T) {
	w := NewTest()
	eval(t, w, "form f topLevel")
	eval(t, w, "label a f")
	eval(t, w, "label b f fromVert a")
	eval(t, w, "realize")
	b := w.App.WidgetByName("b")
	got := eval(t, w, "translateCoords b 1 2")
	win, _ := b.Display().Lookup(b.Window())
	rx, ry := win.RootCoords(1, 2)
	want := itoa(rx) + " " + itoa(ry)
	if got != want {
		t.Errorf("translateCoords = %q, want %q", got, want)
	}
	evalErr(t, w, "translateCoords b one two", "bad coordinates")
	eval(t, w, "label unreal topLevel -unmanaged")
	evalErr(t, w, "translateCoords unreal 0 0", "not realized")
}

func TestSetSensitiveCommand(t *testing.T) {
	w := NewTest()
	eval(t, w, `command c topLevel callback "echo hit"`)
	eval(t, w, "realize")
	eval(t, w, "setSensitive c false")
	clickOn(t, w, "c")
	if got := output(w); got != "" {
		t.Errorf("insensitive widget fired: %q", got)
	}
	eval(t, w, "setSensitive c true")
	clickOn(t, w, "c")
	if got := output(w); got != "hit\n" {
		t.Errorf("resensitized widget silent: %q", got)
	}
}

func TestTimeoutScriptError(t *testing.T) {
	w := NewTest()
	eval(t, w, "addTimeOut 1 {nosuchcmd}")
	eval(t, w, "addTimeOut 30 {quit}")
	done := make(chan int, 1)
	go func() { done <- w.App.MainLoop() }()
	<-done
	if got := output(w); !strings.Contains(got, "timeout error") {
		t.Errorf("timeout error not reported: %q", got)
	}
}

func TestGetValueOfTranslations(t *testing.T) {
	w := NewTest()
	eval(t, w, "label l topLevel")
	eval(t, w, `action l replace {<Btn1Down>: exec(echo hi)}`)
	got := eval(t, w, "gV l translations")
	if !strings.Contains(got, "<Btn1Down>: exec(echo hi)") {
		t.Errorf("translations source = %q", got)
	}
}

func TestSnapshotUnrealizedError(t *testing.T) {
	w := NewTest()
	eval(t, w, "label l topLevel")
	evalErr(t, w, "snapshot", "not realized")
}

func TestCreationOnSecondDisplayIndependence(t *testing.T) {
	w := NewTest()
	eval(t, w, "label local topLevel label here")
	eval(t, w, "applicationShell far unit-ind-d2:0")
	eval(t, w, "label remote far label there")
	eval(t, w, "realize")
	eval(t, w, "realize far")
	local := w.App.WidgetByName("local")
	remote := w.App.WidgetByName("remote")
	if local.Display() == remote.Display() {
		t.Fatal("widgets share a display")
	}
	// Clicking on one display does not disturb the other.
	clickOn(t, w, "local")
	if !remote.IsRealized() {
		t.Error("remote unrealized by local activity")
	}
}
