package core

import (
	"strings"
	"testing"

	"wafe/internal/xt"
)

// TestCreationCommandMeta asserts every widget-creation command has
// registered metadata and that the central arity enforcement produces
// the canonical wrong-#-args message.
func TestCreationCommandMeta(t *testing.T) {
	w := NewTest()
	for name := range w.classes {
		if _, ok := w.Interp.LookupMeta(name); !ok {
			t.Errorf("creation command %q has no metadata", name)
		}
	}
	_, err := w.Interp.Eval("command onlyName")
	if err == nil || !strings.Contains(err.Error(), `wrong # args: should be "command name father ?-unmanaged? ?resource value ...?"`) {
		t.Errorf("creation arity error = %v", err)
	}

	// The colliding "list" name must keep dispatching to the Tcl
	// builtin when the second argument is not a widget.
	if out, err := w.Interp.Eval("list a b c"); err != nil || out != "a b c" {
		t.Errorf("list builtin broken: %q, %v", out, err)
	}
}

// TestCoreMetaMirrorsRuntime spot-checks that recorded bounds agree
// with the implementations' own arity errors.
func TestCoreMetaMirrorsRuntime(t *testing.T) {
	w := NewTest()
	cases := []string{"realize a b", "sendKeys onlyWidget", "getValue w"}
	for _, script := range cases {
		name := strings.Fields(script)[0]
		meta, ok := w.Interp.LookupMeta(name)
		if !ok {
			t.Fatalf("no metadata for %q", name)
		}
		nargs := len(strings.Fields(script)) - 1
		if nargs >= meta.MinArgs && (meta.MaxArgs < 0 || nargs <= meta.MaxArgs) {
			t.Fatalf("test case %q is within recorded bounds %d..%d", script, meta.MinArgs, meta.MaxArgs)
		}
		if _, err := w.Interp.Eval(script); err == nil {
			t.Errorf("%q succeeded despite out-of-bounds argument count", script)
		}
	}
}

// TestCreationClassesCopy asserts the accessor returns a copy, not
// the live table.
func TestCreationClassesCopy(t *testing.T) {
	w := NewTest()
	m := w.CreationClasses()
	if len(m) == 0 {
		t.Fatal("no creation classes")
	}
	m["command"] = nil
	if w.classes["command"] == nil {
		t.Error("mutating the copy changed the live table")
	}
}

// TestAllConstraints asserts constraint resources merge along the
// class chain and are memoized.
func TestAllConstraints(t *testing.T) {
	w := NewTest()
	form := w.classes["form"]
	if form == nil {
		t.Fatal("no form class")
	}
	cons := form.AllConstraints()
	var found bool
	for _, r := range cons {
		if r.Name == "fromVert" {
			found = true
		}
	}
	if !found {
		t.Errorf("form constraints missing fromVert: %v", cons)
	}
	if len(xt.ApplicationShellClass.AllConstraints()) != 0 {
		t.Error("shell unexpectedly declares constraints")
	}
}
