package core

import (
	"wafe/internal/tcl"
	"wafe/internal/xt"
)

// This file records command metadata (tcl.CommandMeta) for every
// command the Wafe core registers, mirroring each implementation's
// own arity check. The wafecheck linter builds its command table from
// this registry; the creation commands additionally set Usage so the
// central enforcement in the interpreter produces the standard
// "wrong # args" message for them.

// coreMetas mirrors the arity checks in commands.go, obs_commands.go
// and rdd_commands.go. VarArgs marks output-variable positions
// (listShowCurrent writes its second argument) so the checker knows
// the variable is defined afterwards.
var coreMetas = []tcl.CommandMeta{
	// widget life cycle (Xt)
	{Name: "realize", MinArgs: 0, MaxArgs: 1},
	{Name: "destroyWidget", MinArgs: 1, MaxArgs: 1},
	{Name: "manageChild", MinArgs: 1, MaxArgs: 1},
	{Name: "unmanageChild", MinArgs: 1, MaxArgs: 1},
	{Name: "setSensitive", MinArgs: 2, MaxArgs: 2},
	{Name: "isRealized", MinArgs: 1, MaxArgs: 1},
	{Name: "isManaged", MinArgs: 1, MaxArgs: 1},
	{Name: "nameToWidget", MinArgs: 2, MaxArgs: 2},
	{Name: "translateCoords", MinArgs: 3, MaxArgs: 3},
	{Name: "installAccelerators", MinArgs: 2, MaxArgs: 2},
	{Name: "widgetChildren", MinArgs: 1, MaxArgs: 1},
	{Name: "widgetParent", MinArgs: 1, MaxArgs: 1},
	{Name: "widgetClass", MinArgs: 1, MaxArgs: 1},

	// resources
	{Name: "setValues", MinArgs: 1, MaxArgs: -1},
	{Name: "sV", MinArgs: 1, MaxArgs: -1},
	{Name: "sv", MinArgs: 1, MaxArgs: -1},
	{Name: "getValue", MinArgs: 2, MaxArgs: 2},
	{Name: "gV", MinArgs: 2, MaxArgs: 2},
	{Name: "getValues", MinArgs: 2, MaxArgs: -1},
	{Name: "mergeResources", MinArgs: 2, MaxArgs: -1},
	{Name: "getResourceList", MinArgs: 2, MaxArgs: 2, VarArgs: []int{2}},

	// callbacks and actions
	{Name: "callback", MinArgs: 3, MaxArgs: -1},
	{Name: "addCallback", MinArgs: 3, MaxArgs: 3},
	{Name: "removeAllCallbacks", MinArgs: 2, MaxArgs: 2},
	{Name: "hasCallbacks", MinArgs: 2, MaxArgs: 2},
	{Name: "callCallbacks", MinArgs: 2, MaxArgs: 2},
	{Name: "action", MinArgs: 3, MaxArgs: -1},

	// popups
	{Name: "popup", MinArgs: 1, MaxArgs: 2},
	{Name: "popdown", MinArgs: 1, MaxArgs: 1},

	// timeouts
	{Name: "addTimeOut", MinArgs: 2, MaxArgs: 2},
	{Name: "removeTimeOut", MinArgs: 1, MaxArgs: 1},

	// selections
	{Name: "ownSelection", MinArgs: 3, MaxArgs: 3},
	{Name: "disownSelection", MinArgs: 2, MaxArgs: 2},
	{Name: "getSelectionValue", MinArgs: 2, MaxArgs: 3},

	// Athena programmatic equivalents
	{Name: "listHighlight", MinArgs: 2, MaxArgs: 2},
	{Name: "listUnhighlight", MinArgs: 1, MaxArgs: 1},
	{Name: "listChange", MinArgs: 2, MaxArgs: 3},
	{Name: "listShowCurrent", MinArgs: 2, MaxArgs: 2, VarArgs: []int{2}},
	{Name: "dialogGetValueString", MinArgs: 1, MaxArgs: 1},
	{Name: "scrollbarSetThumb", MinArgs: 3, MaxArgs: 3},
	{Name: "formAllowResize", MinArgs: 2, MaxArgs: 2},
	{Name: "stripChartSample", MinArgs: 2, MaxArgs: 2},
	{Name: "stripChartStart", MinArgs: 1, MaxArgs: 1},
	{Name: "stripChartStop", MinArgs: 1, MaxArgs: 1},
	{Name: "viewportSetLocation", MinArgs: 3, MaxArgs: 3},
	{Name: "viewportSetCoordinates", MinArgs: 3, MaxArgs: 3},

	// Motif programmatic equivalents
	{Name: "mCascadeButtonHighlight", MinArgs: 2, MaxArgs: 2},
	{Name: "mCommandAppendValue", MinArgs: 2, MaxArgs: 2},
	{Name: "mTextInsert", MinArgs: 2, MaxArgs: 2},

	// application control
	{Name: "quit", MinArgs: 0, MaxArgs: 1},
	{Name: "sync", MinArgs: 0, MaxArgs: 0},
	{Name: "backend", MinArgs: 0, MaxArgs: 0},

	// headless event synthesis and inspection
	{Name: "sendClick", MinArgs: 1, MaxArgs: 4},
	{Name: "sendKeys", MinArgs: 2, MaxArgs: 2},
	{Name: "sendExpose", MinArgs: 1, MaxArgs: 5},
	{Name: "warpPointer", MinArgs: 2, MaxArgs: 2},
	{Name: "focusWidget", MinArgs: 1, MaxArgs: 1},
	{Name: "widgetList", MinArgs: 0, MaxArgs: 0},
	{Name: "widgetTree", MinArgs: 0, MaxArgs: 1},
	{Name: "snapshot", MinArgs: 0, MaxArgs: 1},
	{Name: "writeImage", MinArgs: 2, MaxArgs: 2},
	{Name: "displayList", MinArgs: 0, MaxArgs: 0},

	// observability
	{Name: "statistics", MinArgs: 0, MaxArgs: 1},
	{Name: "traceOn", MinArgs: 0, MaxArgs: 1},
	{Name: "traceOff", MinArgs: 0, MaxArgs: 0},
	{Name: "trace", MinArgs: 1, MaxArgs: 2, Subcommands: []string{"spans", "tree", "clear"}},
	{Name: "metricsDump", MinArgs: 0, MaxArgs: 1},
	{Name: "profileOn", MinArgs: 0, MaxArgs: 0},
	{Name: "profileOff", MinArgs: 0, MaxArgs: 0},
	{Name: "profileDump", MinArgs: 0, MaxArgs: 2, Options: []string{"-folded"}},

	// drag and drop
	{Name: "rddRegisterSource", MinArgs: 2, MaxArgs: 2},
	{Name: "rddRegisterTarget", MinArgs: 2, MaxArgs: 2},
	{Name: "rddUnregisterSource", MinArgs: 1, MaxArgs: 1},
	{Name: "rddUnregisterTarget", MinArgs: 1, MaxArgs: 1},
	{Name: "rddDrag", MinArgs: 2, MaxArgs: 2},
}

// registerCommandMetas records metadata for the fixed command set and
// for every widget-creation command of the configured widget set.
// Creation commands (except those colliding with a Tcl builtin, like
// the List widget's "list") set Usage, so arity is enforced centrally
// with the exact message cmdCreateWidget itself produces.
func (w *Wafe) registerCommandMetas() {
	for _, m := range coreMetas {
		w.Interp.SetCommandMeta(m)
	}
	for cmdName := range w.classes {
		meta := tcl.CommandMeta{
			Name:    cmdName,
			MinArgs: 2,
			MaxArgs: -1,
			Options: []string{"-unmanaged", "unmanaged"},
		}
		if _, isBuiltin := w.Interp.LookupMeta(cmdName); !isBuiltin {
			meta.Usage = cmdName + " name father ?-unmanaged? ?resource value ...?"
		} else {
			// Colliding names ("list") dispatch on the father argument at
			// runtime; keep the builtin's metadata.
			continue
		}
		w.Interp.SetCommandMeta(meta)
	}
}

// CreationClasses returns a copy of the creation-command → widget
// class table for the configured widget set (static analysis reads
// it to validate resource names per class).
func (w *Wafe) CreationClasses() map[string]*xt.Class {
	out := make(map[string]*xt.Class, len(w.classes))
	for name, c := range w.classes {
		out[name] = c
	}
	return out
}
