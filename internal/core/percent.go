package core

import (
	"strconv"
	"strings"

	"wafe/internal/tcl"
	"wafe/internal/xproto"
	"wafe/internal/xt"
)

// actionEventName maps an event type to the %t expansion. Only the six
// event types in the paper's table are named; everything else expands
// to "unknown".
func actionEventName(t xproto.EventType) string {
	switch t {
	case xproto.ButtonPress:
		return "ButtonPress"
	case xproto.ButtonRelease:
		return "ButtonRelease"
	case xproto.KeyPress:
		return "KeyPress"
	case xproto.KeyRelease:
		return "KeyRelease"
	case xproto.EnterNotify:
		return "EnterNotify"
	case xproto.LeaveNotify:
		return "LeaveNotify"
	}
	return "unknown"
}

func isButtonEvent(t xproto.EventType) bool {
	return t == xproto.ButtonPress || t == xproto.ButtonRelease
}

func isKeyEvent(t xproto.EventType) bool {
	return t == xproto.KeyPress || t == xproto.KeyRelease
}

func isPercentEvent(t xproto.EventType) bool {
	switch t {
	case xproto.ButtonPress, xproto.ButtonRelease, xproto.KeyPress, xproto.KeyRelease,
		xproto.EnterNotify, xproto.LeaveNotify:
		return true
	}
	return false
}

// ExpandActionPercent substitutes the exec-action percent codes of the
// paper's table into a command string:
//
//	%t event type   %w widget      %b button number
//	%x %y           window coords  %X %Y root coords
//	%a ascii char   %k keycode     %s keysym
//
// Codes that are invalid for the event type expand to the empty string
// ("it is the programmer's responsibility to ensure ... a percent code
// substitution occurs only with a valid event type").
func ExpandActionPercent(cmd string, w *xt.Widget, ev *xproto.Event) string {
	if !strings.ContainsRune(cmd, '%') {
		return cmd
	}
	var b strings.Builder
	b.Grow(len(cmd))
	start := 0
	for i := 0; i < len(cmd); i++ {
		if cmd[i] != '%' || i+1 >= len(cmd) {
			continue
		}
		b.WriteString(cmd[start:i])
		i++
		expandActionCode(&b, cmd[i], w, ev)
		start = i + 1
	}
	b.WriteString(cmd[start:])
	return b.String()
}

// expandActionCode writes the expansion of one exec-action percent code.
func expandActionCode(b *strings.Builder, code byte, w *xt.Widget, ev *xproto.Event) {
	if ev == nil {
		if code == '%' {
			b.WriteByte('%')
		} else if code == 'w' {
			b.WriteString(w.Name)
		}
		return
	}
	switch code {
	case '%':
		b.WriteByte('%')
	case 't':
		b.WriteString(actionEventName(ev.Type))
	case 'w':
		b.WriteString(w.Name)
	case 'b':
		if isButtonEvent(ev.Type) {
			b.WriteString(strconv.Itoa(ev.Button))
		}
	case 'x':
		if isPercentEvent(ev.Type) {
			b.WriteString(strconv.Itoa(ev.X))
		}
	case 'y':
		if isPercentEvent(ev.Type) {
			b.WriteString(strconv.Itoa(ev.Y))
		}
	case 'X':
		if isPercentEvent(ev.Type) {
			b.WriteString(strconv.Itoa(ev.XRoot))
		}
	case 'Y':
		if isPercentEvent(ev.Type) {
			b.WriteString(strconv.Itoa(ev.YRoot))
		}
	case 'a':
		if isKeyEvent(ev.Type) && ev.Rune != 0 {
			b.WriteString(string(ev.Rune))
		}
	case 'k':
		if isKeyEvent(ev.Type) {
			b.WriteString(strconv.Itoa(ev.Keycode))
		}
	case 's':
		if isKeyEvent(ev.Type) {
			b.WriteString(ev.Keysym)
		}
	default:
		// Unknown codes pass through untouched.
		b.WriteByte('%')
		b.WriteByte(code)
	}
}

// ExpandBackendPercent substitutes the backend lifecycle percent codes
// into an onBackendExit / onBackendRestart script. The code→value map
// comes from the frontend's supervisor:
//
//	%p pid   %n restart count   %r exit class   %x exit status
//	%u uptime (ms)
//
// Codes not in the map pass through untouched; %% is a literal percent.
// The scan follows the other expansion functions exactly: a '%'
// introduces a code only when a byte follows it.
func ExpandBackendPercent(script string, vals map[byte]string) string {
	if !strings.ContainsRune(script, '%') {
		return script
	}
	var b strings.Builder
	b.Grow(len(script))
	start := 0
	for i := 0; i < len(script); i++ {
		if script[i] != '%' || i+1 >= len(script) {
			continue
		}
		b.WriteString(script[start:i])
		i++
		switch c := script[i]; {
		case c == '%':
			b.WriteByte('%')
		default:
			if v, ok := vals[c]; ok {
				b.WriteString(v)
			} else {
				b.WriteByte('%')
				b.WriteByte(c)
			}
		}
		start = i + 1
	}
	b.WriteString(script[start:])
	return b.String()
}

// percentSegment is one piece of a scanned script: either a literal run
// (code == 0) or a single percent code.
type percentSegment struct {
	lit  string
	code byte
}

// PercentScript is a callback or action script scanned for percent
// codes once, at registration time. A script without any percent code
// is static: it carries a compiled *tcl.Script so each invocation skips
// both the expansion scan and the parse. Scripts with codes keep the
// literal/code segment list, so per-event expansion only substitutes —
// it never rescans the source.
type PercentScript struct {
	Source   string
	segs     []percentSegment
	compiled *tcl.Script // non-nil iff the script has no percent codes
}

// NewPercentScript scans src. The segmentation follows the expansion
// functions exactly: a '%' introduces a code only when a byte follows
// it; a trailing lone '%' stays literal.
func NewPercentScript(src string) *PercentScript {
	p := &PercentScript{Source: src}
	static := true
	start := 0
	for i := 0; i < len(src); i++ {
		if src[i] != '%' || i+1 >= len(src) {
			continue
		}
		if i > start {
			p.segs = append(p.segs, percentSegment{lit: src[start:i]})
		}
		i++
		p.segs = append(p.segs, percentSegment{code: src[i]})
		static = false
		start = i + 1
	}
	if start < len(src) {
		p.segs = append(p.segs, percentSegment{lit: src[start:]})
	}
	if static {
		// A malformed script still compiles to an evaluable prefix that
		// replays the parse error, so the compiled path is always safe.
		p.compiled, _ = tcl.Compile(src)
	}
	return p
}

// Compiled returns the pre-compiled script, or nil when the script has
// percent codes and must be expanded per event.
func (p *PercentScript) Compiled() *tcl.Script { return p.compiled }

// Codes returns the percent codes the script uses, in order of
// appearance (with duplicates). Static scripts return nil. The
// wafecheck linter validates these against the known code sets below.
func (p *PercentScript) Codes() []byte {
	var out []byte
	for _, s := range p.segs {
		if s.code != 0 {
			out = append(out, s.code)
		}
	}
	return out
}

// ExpandWith substitutes every percent code through fn, leaving
// literal segments untouched ("%%" is always a literal percent).
// Static analysis uses it to turn a percent script into plain Tcl by
// substituting placeholder values.
func (p *PercentScript) ExpandWith(fn func(code byte) string) string {
	if p.compiled != nil {
		return p.Source
	}
	var b strings.Builder
	b.Grow(len(p.Source))
	for _, s := range p.segs {
		switch {
		case s.code == 0:
			b.WriteString(s.lit)
		case s.code == '%':
			b.WriteByte('%')
		default:
			b.WriteString(fn(s.code))
		}
	}
	return b.String()
}

// The known percent-code sets, one per expansion context. Each string
// lists the single-character codes valid in that context ('%' itself
// is always valid as the escape for a literal percent).
//
// KnownActionPercentCodes mirrors expandActionCode's switch;
// KnownCallbackPercentCodes is %w plus the single-character CallData
// keys the widget classes publish (List %i/%s, scrollbar %f/%d);
// KnownBackendPercentCodes mirrors the supervisor's value map handed
// to ExpandBackendPercent.
const (
	KnownActionPercentCodes   = "twbxyXYaks%"
	KnownCallbackPercentCodes = "wisfd%"
	KnownBackendPercentCodes  = "pnrxu%"
)

// ExpandAction substitutes the exec-action percent codes; identical to
// ExpandActionPercent on the source.
func (p *PercentScript) ExpandAction(w *xt.Widget, ev *xproto.Event) string {
	if p.compiled != nil {
		return p.Source
	}
	var b strings.Builder
	b.Grow(len(p.Source))
	for _, s := range p.segs {
		if s.code == 0 {
			b.WriteString(s.lit)
			continue
		}
		expandActionCode(&b, s.code, w, ev)
	}
	return b.String()
}

// ExpandCallback substitutes the callback clientData percent codes;
// identical to ExpandCallbackPercent on the source.
func (p *PercentScript) ExpandCallback(w *xt.Widget, data xt.CallData) string {
	if p.compiled != nil {
		return p.Source
	}
	var b strings.Builder
	b.Grow(len(p.Source))
	for _, s := range p.segs {
		if s.code == 0 {
			b.WriteString(s.lit)
			continue
		}
		expandCallbackCode(&b, s.code, w, data)
	}
	return b.String()
}

// ExpandCallbackPercent substitutes callback clientData percent codes.
// %w (the invoking widget) is available for every callback; the other
// codes come from the widget-class-specific CallData — for the Athena
// List widget, %i (index) and %s (active element), per the paper's
// table.
func ExpandCallbackPercent(script string, w *xt.Widget, data xt.CallData) string {
	if !strings.ContainsRune(script, '%') {
		return script
	}
	var b strings.Builder
	b.Grow(len(script))
	start := 0
	for i := 0; i < len(script); i++ {
		if script[i] != '%' || i+1 >= len(script) {
			continue
		}
		b.WriteString(script[start:i])
		i++
		expandCallbackCode(&b, script[i], w, data)
		start = i + 1
	}
	b.WriteString(script[start:])
	return b.String()
}

// expandCallbackCode writes the expansion of one callback clientData
// percent code.
func expandCallbackCode(b *strings.Builder, code byte, w *xt.Widget, data xt.CallData) {
	switch {
	case code == '%':
		b.WriteByte('%')
	case code == 'w':
		b.WriteString(w.Name)
	default:
		if data != nil {
			if v, ok := data[string(code)]; ok {
				b.WriteString(v)
				return
			}
		}
		// Codes not provided by this widget class stay literal.
		b.WriteByte('%')
		b.WriteByte(code)
	}
}
