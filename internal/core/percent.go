package core

import (
	"strconv"
	"strings"

	"wafe/internal/xproto"
	"wafe/internal/xt"
)

// actionEventName maps an event type to the %t expansion. Only the six
// event types in the paper's table are named; everything else expands
// to "unknown".
func actionEventName(t xproto.EventType) string {
	switch t {
	case xproto.ButtonPress:
		return "ButtonPress"
	case xproto.ButtonRelease:
		return "ButtonRelease"
	case xproto.KeyPress:
		return "KeyPress"
	case xproto.KeyRelease:
		return "KeyRelease"
	case xproto.EnterNotify:
		return "EnterNotify"
	case xproto.LeaveNotify:
		return "LeaveNotify"
	}
	return "unknown"
}

func isButtonEvent(t xproto.EventType) bool {
	return t == xproto.ButtonPress || t == xproto.ButtonRelease
}

func isKeyEvent(t xproto.EventType) bool {
	return t == xproto.KeyPress || t == xproto.KeyRelease
}

func isPercentEvent(t xproto.EventType) bool {
	switch t {
	case xproto.ButtonPress, xproto.ButtonRelease, xproto.KeyPress, xproto.KeyRelease,
		xproto.EnterNotify, xproto.LeaveNotify:
		return true
	}
	return false
}

// ExpandActionPercent substitutes the exec-action percent codes of the
// paper's table into a command string:
//
//	%t event type   %w widget      %b button number
//	%x %y           window coords  %X %Y root coords
//	%a ascii char   %k keycode     %s keysym
//
// Codes that are invalid for the event type expand to the empty string
// ("it is the programmer's responsibility to ensure ... a percent code
// substitution occurs only with a valid event type").
func ExpandActionPercent(cmd string, w *xt.Widget, ev *xproto.Event) string {
	if !strings.ContainsRune(cmd, '%') {
		return cmd
	}
	var b strings.Builder
	for i := 0; i < len(cmd); i++ {
		c := cmd[i]
		if c != '%' || i+1 >= len(cmd) {
			b.WriteByte(c)
			continue
		}
		i++
		code := cmd[i]
		if ev == nil {
			if code == '%' {
				b.WriteByte('%')
			} else if code == 'w' {
				b.WriteString(w.Name)
			}
			continue
		}
		switch code {
		case '%':
			b.WriteByte('%')
		case 't':
			b.WriteString(actionEventName(ev.Type))
		case 'w':
			b.WriteString(w.Name)
		case 'b':
			if isButtonEvent(ev.Type) {
				b.WriteString(strconv.Itoa(ev.Button))
			}
		case 'x':
			if isPercentEvent(ev.Type) {
				b.WriteString(strconv.Itoa(ev.X))
			}
		case 'y':
			if isPercentEvent(ev.Type) {
				b.WriteString(strconv.Itoa(ev.Y))
			}
		case 'X':
			if isPercentEvent(ev.Type) {
				b.WriteString(strconv.Itoa(ev.XRoot))
			}
		case 'Y':
			if isPercentEvent(ev.Type) {
				b.WriteString(strconv.Itoa(ev.YRoot))
			}
		case 'a':
			if isKeyEvent(ev.Type) && ev.Rune != 0 {
				b.WriteString(string(ev.Rune))
			}
		case 'k':
			if isKeyEvent(ev.Type) {
				b.WriteString(strconv.Itoa(ev.Keycode))
			}
		case 's':
			if isKeyEvent(ev.Type) {
				b.WriteString(ev.Keysym)
			}
		default:
			// Unknown codes pass through untouched.
			b.WriteByte('%')
			b.WriteByte(code)
		}
	}
	return b.String()
}

// ExpandCallbackPercent substitutes callback clientData percent codes.
// %w (the invoking widget) is available for every callback; the other
// codes come from the widget-class-specific CallData — for the Athena
// List widget, %i (index) and %s (active element), per the paper's
// table.
func ExpandCallbackPercent(script string, w *xt.Widget, data xt.CallData) string {
	if !strings.ContainsRune(script, '%') {
		return script
	}
	var b strings.Builder
	for i := 0; i < len(script); i++ {
		c := script[i]
		if c != '%' || i+1 >= len(script) {
			b.WriteByte(c)
			continue
		}
		i++
		code := script[i]
		switch {
		case code == '%':
			b.WriteByte('%')
		case code == 'w':
			b.WriteString(w.Name)
		default:
			if data != nil {
				if v, ok := data[string(code)]; ok {
					b.WriteString(v)
					continue
				}
			}
			// Codes not provided by this widget class stay literal.
			b.WriteByte('%')
			b.WriteByte(code)
		}
	}
	return b.String()
}
