package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestStressWidgetChurn creates, reconfigures, exercises and destroys
// hundreds of widgets; live-widget accounting must stay exact and the
// display must stay consistent.
func TestStressWidgetChurn(t *testing.T) {
	w := NewTest()
	eval(t, w, "box arena topLevel")
	eval(t, w, "realize")
	rng := rand.New(rand.NewSource(42))
	classes := []string{"label", "command", "toggle", "asciiText", "barGraph"}
	var live []string
	for i := 0; i < 600; i++ {
		switch rng.Intn(4) {
		case 0, 1: // create
			name := fmt.Sprintf("s%d", i)
			class := classes[rng.Intn(len(classes))]
			if _, err := w.Eval(class + " " + name + " arena label x"); err != nil {
				// asciiText and barGraph have no label resource.
				if _, err2 := w.Eval(class + " " + name + " arena"); err2 != nil {
					t.Fatalf("create %s: %v / %v", class, err, err2)
				}
			}
			live = append(live, name)
		case 2: // reconfigure or poke
			if len(live) == 0 {
				continue
			}
			name := live[rng.Intn(len(live))]
			switch rng.Intn(3) {
			case 0:
				if _, err := w.Eval("sV " + name + " width " + fmt.Sprint(10+rng.Intn(200))); err != nil {
					t.Fatalf("sV %s: %v", name, err)
				}
			case 1:
				if _, err := w.Eval("sendExpose " + name); err != nil {
					t.Fatalf("expose %s: %v", name, err)
				}
			case 2:
				if _, err := w.Eval("sendClick " + name); err != nil {
					t.Fatalf("click %s: %v", name, err)
				}
			}
		case 3: // destroy
			if len(live) == 0 {
				continue
			}
			idx := rng.Intn(len(live))
			name := live[idx]
			live = append(live[:idx], live[idx+1:]...)
			eval(t, w, "destroyWidget "+name)
		}
	}
	// topLevel + arena + survivors.
	if got := w.App.LiveWidgets(); got != 2+len(live) {
		t.Errorf("live widgets = %d, want %d", got, 2+len(live))
	}
	for _, name := range live {
		if w.App.WidgetByName(name) == nil {
			t.Errorf("live widget %q lost", name)
		}
	}
	// The display can still be snapshot.
	if snap := eval(t, w, "snapshot"); snap == "" {
		t.Error("empty snapshot after churn")
	}
	if errs := w.App.Errors(); len(errs) > 0 {
		t.Errorf("dispatch errors during churn: %v", errs[:min(3, len(errs))])
	}
}

// TestStressRandomScripts feeds pseudo-random token soup through the
// full line protocol; the frontend must report errors, never panic.
func TestStressRandomScripts(t *testing.T) {
	w := NewTest()
	w.Interp.Stdout = func(string) {}
	rng := rand.New(rand.NewSource(7))
	tokens := []string{
		"label", "sV", "gV", "{", "}", "[", "]", "$x", "realize", "expr",
		"1+", "topLevel", "callback", "echo", "\\", "\"", ";", "%w",
		"set", "a(b)", "destroyWidget", "action", "override", "<Btn1Down>:",
	}
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(6)
		var parts []string
		for j := 0; j < n; j++ {
			parts = append(parts, tokens[rng.Intn(len(tokens))])
		}
		script := strings.Join(parts, " ")
		_, _ = w.Eval(script) // errors fine; panics are the failure mode
	}
	// The instance still works afterwards.
	if got := eval(t, w, "expr 6*7"); got != "42" {
		t.Errorf("interpreter damaged by fuzz: %q", got)
	}
}
