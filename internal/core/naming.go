// Package core implements the Wafe command layer — the paper's primary
// contribution: Tcl commands giving access to the X Toolkit, the Athena
// and Motif widget sets, the converter extensions (Callback, Pixmap,
// XmString), the predefined popup callbacks, the exec action with
// printf-like percent codes, and the commands the frontend mode builds
// on.
package core

import "strings"

// knownPrefixes are stripped from C function names, longest first; the
// paper: "the prefix Xt, Xaw or X is stripped and the first letter of
// the remaining string is translated to lower case", while Xm functions
// keep an "m" prefix (XmCommandAppendValue → mCommandAppendValue).
var knownPrefixes = []string{"Xaw", "Xt", "Xm", "X"}

// CommandName derives the Wafe command name from an Xt/Xaw/Xm/Xlib
// function name:
//
//	XtDestroyWidget     → destroyWidget
//	XawFormAllowResize  → formAllowResize
//	XmCommandAppendValue → mCommandAppendValue
func CommandName(cName string) string {
	for _, p := range knownPrefixes {
		if !strings.HasPrefix(cName, p) || len(cName) == len(p) {
			continue
		}
		rest := cName[len(p):]
		// The character after the prefix must be upper case, otherwise
		// the "prefix" is part of the name itself.
		if rest[0] < 'A' || rest[0] > 'Z' {
			continue
		}
		if p == "Xm" {
			return "m" + rest
		}
		return lowerFirst(rest)
	}
	return lowerFirst(cName)
}

// CreationCommandName derives the widget-creation command from a class
// name: Toggle → toggle, AsciiText → asciiText, XmCascadeButton →
// mCascadeButton.
func CreationCommandName(className string) string {
	if strings.HasPrefix(className, "Xm") && len(className) > 2 {
		return "m" + className[2:]
	}
	return lowerFirst(className)
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'A' && b[0] <= 'Z' {
		b[0] += 32
	}
	return string(b)
}
