package core

import (
	"strings"
	"testing"
	"testing/quick"

	"wafe/internal/xproto"
	"wafe/internal/xt"
)

// Property: percent expansion never panics, preserves %% as %, and is
// the identity on strings without percent signs.
func TestActionPercentExpansionProperties(t *testing.T) {
	w := NewTest()
	eval(t, w, "label l topLevel")
	wid := w.App.WidgetByName("l")
	events := []xproto.Event{
		{Type: xproto.ButtonPress, Button: 2, X: 1, Y: 2, XRoot: 3, YRoot: 4},
		{Type: xproto.KeyPress, Keycode: 198, Keysym: "w", Rune: 'w'},
		{Type: xproto.EnterNotify, X: 5, Y: 6},
		{Type: xproto.Expose},
	}
	f := func(raw []byte, evIdx uint8) bool {
		s := string(raw)
		if len(s) > 80 {
			return true
		}
		ev := events[int(evIdx)%len(events)]
		out := ExpandActionPercent(s, wid, &ev)
		if !strings.ContainsRune(s, '%') && out != s {
			t.Logf("identity violated: %q → %q", s, out)
			return false
		}
		if strings.ReplaceAll(s, "%%", "") == s && strings.Count(out, "%%") > strings.Count(s, "%%") {
			return false
		}
		// Escaped percents collapse.
		if s == "a%%b" && out != "a%b" {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: callback percent expansion substitutes exactly the keys the
// CallData provides and leaves other codes literal.
func TestCallbackPercentExpansionProperties(t *testing.T) {
	w := NewTest()
	eval(t, w, "label cb topLevel")
	wid := w.App.WidgetByName("cb")
	f := func(idx uint16, item string) bool {
		if strings.ContainsAny(item, "%\x00") || len(item) > 40 {
			return true
		}
		data := xt.CallData{"i": "7", "s": item}
		out := ExpandCallbackPercent("w=%w i=%i s=%s q=%q", wid, data)
		want := "w=cb i=7 s=" + item + " q=%q"
		if out != want {
			t.Logf("got %q want %q", out, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: CommandName is idempotent on its own output (stripping a
// prefix once yields a name with no further prefix).
func TestCommandNameIdempotentProperty(t *testing.T) {
	inputs := []string{
		"XtDestroyWidget", "XawListChange", "XmTextInsert", "XFlush",
		"XtPopup", "XawFormAllowResize", "XmCommandError", "XtAddCallback",
	}
	for _, in := range inputs {
		once := CommandName(in)
		twice := CommandName(once)
		if once != twice {
			t.Errorf("CommandName not idempotent: %q → %q → %q", in, once, twice)
		}
	}
}

// Property: resource round trip through sV/gV preserves arbitrary label
// strings (the string-only boundary).
func TestLabelRoundTripProperty(t *testing.T) {
	w := NewTest()
	eval(t, w, "label rt topLevel")
	wid := w.App.WidgetByName("rt")
	f := func(raw []byte) bool {
		s := string(raw)
		if strings.ContainsRune(s, 0) || len(s) > 60 {
			return true
		}
		if err := wid.SetValues(map[string]string{"label": s}); err != nil {
			return false
		}
		got, err := wid.GetValue("label")
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: every registered creation command yields a widget whose
// ResourceNames contain the Core prefix in the documented order.
func TestAllClassesResourcePrefixProperty(t *testing.T) {
	w := NewTest()
	prefix := []string{"destroyCallback", "ancestorSensitive", "x", "y", "width", "height"}
	i := 0
	for _, class := range w.WidgetSetClasses() {
		i++
		name := "p" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		parent := w.TopLevel
		if class.IsSubclassOf(classByName(w, "Sme")) && class.Name != "SimpleMenu" {
			continue // menu entries need a menu parent; covered elsewhere
		}
		wid, err := w.App.CreateWidget(name, class, parent, nil, false)
		if err != nil {
			t.Errorf("create %s: %v", class.Name, err)
			continue
		}
		names := wid.ResourceNames()
		for j, want := range prefix {
			if j >= len(names) || names[j] != want {
				t.Errorf("%s resource %d = %v, want %q", class.Name, j, names[:min(6, len(names))], want)
				break
			}
		}
	}
}

func classByName(w *Wafe, name string) *xt.Class {
	for _, c := range w.WidgetSetClasses() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
