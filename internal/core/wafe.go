package core

import (
	"fmt"
	"os"
	"strings"

	"wafe/internal/obs"
	"wafe/internal/plotter"
	"wafe/internal/rdd"
	"wafe/internal/tcl"
	"wafe/internal/xaw"
	"wafe/internal/xm"
	"wafe/internal/xproto"
	"wafe/internal/xt"
)

// WidgetSet selects which widget library a Wafe binary is configured
// with. As in the paper, Athena and Motif widgets cannot be mixed
// freely: installing the Motif version removes asciiText and friends,
// and vice versa. The Plotter set is available in both.
type WidgetSet int

const (
	// SetAthena is the primarily supported library.
	SetAthena WidgetSet = iota
	// SetMotif is the mofe binary.
	SetMotif
	// SetBoth is a research configuration used by tests.
	SetBoth
)

// Config configures a Wafe instance.
type Config struct {
	AppName   string
	ClassName string
	// DisplayName names the X display (the -display argument).
	DisplayName string
	// Set selects Athena or Motif.
	Set WidgetSet
	// TestDisplay uses a private display (tests).
	TestDisplay bool
	// DisplayNamespace, when non-empty, scopes every display this
	// instance opens (primary and secondary) under the namespace —
	// serve-mode sessions pass their session id so colliding display
	// names across sessions stay isolated. Overrides DisplayName.
	DisplayNamespace string
	// TclEngine selects the interpreter's execution engine ("bytecode"
	// or "tree", see tcl.ParseEngine); empty keeps the default.
	TclEngine string
}

// Wafe couples the Tcl interpreter with the Xt application context and
// registers every Wafe command. One Wafe instance is one frontend
// process.
type Wafe struct {
	Interp *tcl.Interp
	App    *xt.App

	// TopLevel is the automatically created application shell, "a top
	// level shell automatically created in every Wafe program".
	TopLevel *xt.Widget

	// Metrics is the observability registry, nil until
	// EnableObservability runs (the statistics/traceOn commands enable
	// it on demand, as do the --metrics-dump and --debug-addr flags).
	// While nil every instrumented hot path costs one pointer check.
	Metrics *obs.Metrics

	// traceSink receives echoed trace lines; the frontend points it at
	// the terminal so traces never land on the backend pipe.
	traceSink func(string)

	// TraceRingSize, when positive, configures the trace/span ring
	// capacity applied when observability is (lazily) enabled — the
	// --trace-ring flag lands here before any traceOn runs.
	TraceRingSize int

	// Flight, when non-nil, is attached to the registry at enable time
	// so the anomaly trip sites can dump through it (--flight-dir).
	Flight *obs.FlightRecorder

	// BackendReport, when set by the frontend layer, supplies the
	// `backend` command's lifecycle report as a flat name/value list
	// (state, pid, restarts, last exit class/status, uptime). Nil means
	// no backend is under lifecycle supervision.
	BackendReport func() []string

	cfg Config

	// classes maps creation-command name → widget class.
	classes map[string]*xt.Class

	timers    map[string]*xt.Timer
	nextID    int
	chartRuns map[string]*stripChartRun

	// profiler holds the Tcl profiler across a profileOn/profileOff
	// window (and after it, for profileDump); nil before the first
	// profileOn.
	profiler *obs.Profiler

	quitRequested bool
	exitCode      int
}

// New creates a Wafe instance: Tcl interpreter, Xt app context, the
// widget-set command bindings, the Wafe converters and the topLevel
// shell.
func New(cfg Config) (*Wafe, error) {
	if cfg.AppName == "" {
		cfg.AppName = "wafe"
	}
	if cfg.ClassName == "" {
		cfg.ClassName = "Wafe"
	}
	var app *xt.App
	switch {
	case cfg.TestDisplay:
		app = xt.NewTestApp(cfg.AppName)
		app.ClassName = cfg.ClassName
	case cfg.DisplayNamespace != "":
		app = xt.NewSessionApp(cfg.AppName, cfg.ClassName, cfg.DisplayNamespace)
	default:
		app = xt.NewApp(cfg.AppName, cfg.ClassName, cfg.DisplayName)
	}
	w := &Wafe{
		Interp:  tcl.New(),
		App:     app,
		cfg:     cfg,
		classes: make(map[string]*xt.Class),
		timers:  make(map[string]*xt.Timer),
	}
	if cfg.TclEngine != "" {
		e, err := tcl.ParseEngine(cfg.TclEngine)
		if err != nil {
			return nil, err
		}
		w.Interp.SetEngine(e)
	}
	w.registerConverters()
	w.registerWidgetSet()
	w.registerCommands()
	w.registerRddCommands()
	w.registerObsCommands()
	w.registerActions()
	w.registerCommandMetas()
	top, err := app.CreateWidget("topLevel", xt.ApplicationShellClass, nil, nil, false)
	if err != nil {
		return nil, err
	}
	w.TopLevel = top
	return w, nil
}

// NewTest returns a Wafe on a private display with both widget sets.
func NewTest() *Wafe {
	w, err := New(Config{TestDisplay: true, Set: SetBoth})
	if err != nil {
		panic(err)
	}
	return w
}

// SetTraceSink directs echoed trace lines to fn (the frontend passes
// its terminal). Applies immediately when observability is already
// enabled.
func (w *Wafe) SetTraceSink(fn func(string)) {
	w.traceSink = fn
	if w.Metrics != nil {
		w.Metrics.Trace.SetSink(fn)
	}
}

// EnableObservability creates the metrics registry (idempotently) and
// threads it through every layer: interpreter, event loop, and the
// protocol displays. It returns the registry.
func (w *Wafe) EnableObservability() *obs.Metrics {
	return w.EnableObservabilityWith(nil)
}

// EnableObservabilityWith threads a caller-provided registry through
// every layer — the serve layer passes the per-session registry it
// created in the ServerMetrics so aggregate and session views stay
// coherent. A nil registry allocates a fresh one. Idempotent: once a
// registry is attached, it wins.
func (w *Wafe) EnableObservabilityWith(m *obs.Metrics) *obs.Metrics {
	if w.Metrics != nil {
		return w.Metrics
	}
	m = obs.NewOr(m)
	w.Metrics = m
	if w.TraceRingSize > 0 {
		m.Trace.SetRingSize(w.TraceRingSize)
	}
	if w.Flight != nil && m.Flight == nil {
		m.Flight = w.Flight
	}
	w.Interp.SetObs(&m.Tcl)
	w.Interp.SetTrace(&m.Trace)
	w.App.SetObs(&m.Xt)
	w.App.SetDisplayObs(&m.Xproto)
	w.App.SetTrace(&m.Trace)
	sink := w.traceSink
	if sink == nil {
		sink = func(line string) { fmt.Fprintln(os.Stdout, line) }
	}
	m.Trace.SetSink(sink)
	return m
}

// Close releases the process-global resources this instance holds:
// its virtual displays leave the xproto registry and the drag-and-drop
// context map drops the app. Must run after the event loop has
// stopped; sessions call it when they retire.
func (w *Wafe) Close() {
	rdd.Release(w.App)
	w.App.Close()
}

// QuitRequested reports whether the quit command ran.
func (w *Wafe) QuitRequested() bool { return w.quitRequested }

// ExitCode returns the requested exit status.
func (w *Wafe) ExitCode() int { return w.exitCode }

// Eval evaluates a Wafe/Tcl command string and pumps the display queues
// afterwards so side effects (exposures from realize, etc.) settle.
func (w *Wafe) Eval(script string) (string, error) {
	res, err := w.Interp.Eval(script)
	if code, isExit := tcl.IsExit(err); isExit {
		w.quitRequested = true
		w.exitCode = code
		w.App.Quit(code)
		return res, nil
	}
	w.App.Pump()
	return res, err
}

// EvalScript evaluates a pre-compiled script; otherwise identical to
// Eval. Callback and timeout scripts compiled at registration time run
// through here so each firing skips the parse.
func (w *Wafe) EvalScript(s *tcl.Script) (string, error) {
	res, err := w.Interp.EvalScript(s)
	if code, isExit := tcl.IsExit(err); isExit {
		w.quitRequested = true
		w.exitCode = code
		w.App.Quit(code)
		return res, nil
	}
	w.App.Pump()
	return res, err
}

// widgetArg resolves a widget-name argument.
func (w *Wafe) widgetArg(name string) (*xt.Widget, error) {
	wid := w.App.WidgetByName(name)
	if wid == nil {
		return nil, tcl.NewError("no widget named %q", name)
	}
	return wid, nil
}

// classFor returns the class registered for a creation command.
func (w *Wafe) classFor(cmd string) (*xt.Class, bool) {
	c, ok := w.classes[cmd]
	return c, ok
}

// WidgetSetClasses returns the classes for the configured set.
func (w *Wafe) WidgetSetClasses() []*xt.Class {
	var classes []*xt.Class
	switch w.cfg.Set {
	case SetAthena:
		classes = xaw.AllClasses()
	case SetMotif:
		classes = xm.AllClasses()
	case SetBoth:
		classes = append(xaw.AllClasses(), xm.AllClasses()...)
	}
	classes = append(classes, plotter.AllClasses()...)
	classes = append(classes,
		xt.ApplicationShellClass,
		xt.TopLevelShellClass,
		xt.TransientShellClass,
		xt.OverrideShellClass,
	)
	return classes
}

// registerWidgetSet installs one creation command per widget class,
// derived with the naming rule (Toggle → "toggle Name Father ...").
//
// One derived name collides with a Tcl built-in: the Athena List class
// yields "list". The command therefore dispatches on its second
// argument — when it names an existing widget (or a display, for
// shells) the call is a widget creation, otherwise the original Tcl
// command runs. "list year 1994" stays a Tcl list; "list hits form"
// creates a List widget.
func (w *Wafe) registerWidgetSet() {
	for _, class := range w.WidgetSetClasses() {
		cmdName := CreationCommandName(class.Name)
		w.classes[cmdName] = class
		cls := class
		if prev, collides := w.Interp.Command(cmdName); collides {
			w.Interp.RegisterCommand(cmdName, func(in *tcl.Interp, argv []string) (string, error) {
				if len(argv) >= 3 && (w.App.WidgetByName(argv[2]) != nil || cls.Shell) {
					return w.cmdCreateWidget(cls, argv)
				}
				return prev(in, argv)
			})
			continue
		}
		w.Interp.RegisterCommand(cmdName, func(in *tcl.Interp, argv []string) (string, error) {
			return w.cmdCreateWidget(cls, argv)
		})
	}
	if w.cfg.Set == SetMotif || w.cfg.Set == SetBoth {
		xm.RegisterConverters(w.App)
	}
}

// cmdCreateWidget implements every creation command:
//
//	class Name Father ?-unmanaged? ?resource value?...
//
// For shells, Father may name a display instead of a widget.
func (w *Wafe) cmdCreateWidget(class *xt.Class, argv []string) (string, error) {
	cmd := argv[0]
	if len(argv) < 3 {
		return "", tcl.NewError("wrong # args: should be \"%s name father ?-unmanaged? ?resource value ...?\"", cmd)
	}
	name, father := argv[1], argv[2]
	rest := argv[3:]
	managed := true
	if len(rest) > 0 && (rest[0] == "-unmanaged" || rest[0] == "unmanaged") {
		managed = false
		rest = rest[1:]
	}
	if len(rest)%2 != 0 {
		return "", tcl.NewError("%s: resource arguments must come in attribute-value pairs", cmd)
	}
	args := make(map[string]string, len(rest)/2)
	for i := 0; i+1 < len(rest); i += 2 {
		args[rest[i]] = rest[i+1]
	}
	parent := w.App.WidgetByName(father)
	if parent == nil {
		if !class.Shell {
			return "", tcl.NewError("no widget named %q", father)
		}
		// Father is a display specification: applicationShell top2 dec4:0
		d := w.App.OpenSecondDisplay(father)
		shell, err := w.App.CreateWidget(name, class, nil, args, false)
		if err != nil {
			return "", tcl.NewError("%s", err.Error())
		}
		if err := shell.SetDisplay(d); err != nil {
			return "", tcl.NewError("%s", err.Error())
		}
		return name, nil
	}
	// Shells under a widget parent stay unmanaged (popups).
	if class.Shell {
		managed = false
	}
	if _, err := w.App.CreateWidget(name, class, parent, args, managed); err != nil {
		return "", tcl.NewError("%s", err.Error())
	}
	return name, nil
}

// registerConverters installs the Wafe converter extensions: the
// Callback converter, the extended Bitmap/Pixmap converter (XBM then
// XPM) and — for Motif builds — XmString/FontList (done in
// registerWidgetSet).
func (w *Wafe) registerConverters() {
	w.App.RegisterConverter(xt.TCallback, func(_ *xt.App, _ *xt.Widget, v string) (any, error) {
		script := strings.TrimSpace(v)
		if script == "" {
			return xt.CallbackList(nil), nil
		}
		return xt.CallbackList{w.scriptCallback(script)}, nil
	})
	pixmapConv := func(_ *xt.App, _ *xt.Widget, v string) (any, error) {
		s := strings.TrimSpace(v)
		if s == "" || s == "None" {
			return (*xproto.Pixmap)(nil), nil
		}
		// Wafe's extended converter: try XBM, then XPM.
		pm, err := xproto.ParseBitmapOrPixmap(s)
		if err != nil {
			return nil, err
		}
		return pm, nil
	}
	w.App.RegisterConverter(xt.TPixmap, pixmapConv)
	w.App.RegisterConverter(xt.TBitmap, pixmapConv)
}

// scriptCallback wraps a Tcl script as an Xt callback. The script is
// scanned for percent codes once, here; a static script is compiled
// once too, so each invocation evaluates the cached parse directly,
// while scripts with codes substitute per event and re-use the
// interpreter's intern cache for the expanded text.
func (w *Wafe) scriptCallback(script string) xt.Callback {
	ps := NewPercentScript(script)
	return xt.Callback{
		Source:   script,
		Compiled: ps,
		Proc: func(widget *xt.Widget, data xt.CallData) {
			var err error
			if s := ps.Compiled(); s != nil {
				w.traceFired("callback", widget, s.Source)
				_, err = w.EvalScript(s)
			} else {
				expanded := ps.ExpandCallback(widget, data)
				w.traceFired("callback", widget, expanded)
				_, err = w.Eval(expanded)
			}
			if err != nil {
				w.reportScriptError("callback", widget, err)
			}
		},
	}
}

func (w *Wafe) reportScriptError(kind string, widget *xt.Widget, err error) {
	if code, isExit := tcl.IsExit(err); isExit {
		w.quitRequested = true
		w.exitCode = code
		w.App.Quit(code)
		return
	}
	name := "?"
	if widget != nil {
		name = widget.Name
	}
	w.Interp.Stdout(fmt.Sprintf("wafe: %s error in widget %s: %v", kind, name, err))
}

// registerActions installs the global exec action: "Wafe registers a
// global action exec which accepts any Wafe command as argument".
func (w *Wafe) registerActions() {
	w.App.AddAction("exec", func(widget *xt.Widget, ev *xproto.Event, params []string) {
		// The params of a translation binding never change, so the
		// scanned (and, for static scripts, compiled) form is cached on
		// the binding itself via its Compiled slot.
		var ps *PercentScript
		if call := w.App.DispatchedCall(); call != nil {
			ps, _ = call.Compiled.(*PercentScript)
			if ps == nil {
				ps = NewPercentScript(strings.Join(params, ","))
				call.Compiled = ps
			}
		} else {
			ps = NewPercentScript(strings.Join(params, ","))
		}
		var err error
		if s := ps.Compiled(); s != nil {
			w.traceFired("action", widget, s.Source)
			_, err = w.EvalScript(s)
		} else {
			expanded := ps.ExpandAction(widget, ev)
			w.traceFired("action", widget, expanded)
			_, err = w.Eval(expanded)
		}
		if err != nil {
			w.reportScriptError("action", widget, err)
		}
	})
}

// traceFired records a fired callback/action script when tracing is
// on; the text is only assembled in that case.
func (w *Wafe) traceFired(kind string, widget *xt.Widget, script string) {
	m := w.Metrics
	if m == nil || !m.Trace.Enabled() {
		return
	}
	name := "?"
	if widget != nil {
		name = widget.Name
	}
	m.Trace.Emit(kind, name+": "+script)
}
