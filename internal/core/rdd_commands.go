package core

import (
	"strconv"
	"strings"

	"wafe/internal/rdd"
	"wafe/internal/tcl"
	"wafe/internal/xt"
)

// registerRddCommands installs the drag-and-drop commands layered over
// internal/rdd, following the paper's extension story (the Rdd library
// was one of the Xt-based libraries Wafe integrated).
//
//	rddRegisterSource widget script   — script's result is the drag data
//	rddRegisterTarget widget script   — script runs on drop; %w target,
//	                                    %v data, %x %y drop position
//	rddUnregisterSource widget
//	rddUnregisterTarget widget
//	rddDrag source target             — synthetic drag (headless driver)
func (w *Wafe) registerRddCommands() {
	reg := func(name string, fn func(argv []string) (string, error)) {
		w.Interp.RegisterCommand(name, func(_ *tcl.Interp, argv []string) (string, error) {
			return fn(argv)
		})
	}
	reg("rddRegisterSource", w.cmdRddRegisterSource)
	reg("rddRegisterTarget", w.cmdRddRegisterTarget)
	reg("rddUnregisterSource", w.cmdRddUnregisterSource)
	reg("rddUnregisterTarget", w.cmdRddUnregisterTarget)
	reg("rddDrag", w.cmdRddDrag)
}

func (w *Wafe) dnd() *rdd.DND { return rdd.Context(w.App) }

func (w *Wafe) cmdRddRegisterSource(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"rddRegisterSource widget script\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	script := argv[2]
	err = w.dnd().RegisterSource(wid, func(src *xt.Widget) string {
		res, err := w.Eval(strings.ReplaceAll(script, "%w", src.Name))
		if err != nil {
			w.reportScriptError("drag source", src, err)
			return ""
		}
		return res
	})
	if err != nil {
		return "", tcl.NewError("%s", err.Error())
	}
	return "", nil
}

func (w *Wafe) cmdRddRegisterTarget(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"rddRegisterTarget widget script\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	script := argv[2]
	err = w.dnd().RegisterTarget(wid, func(tgt *xt.Widget, data string, x, y int) {
		expanded := script
		expanded = strings.ReplaceAll(expanded, "%w", tgt.Name)
		expanded = strings.ReplaceAll(expanded, "%v", tcl.QuoteListElement(data))
		expanded = strings.ReplaceAll(expanded, "%x", strconv.Itoa(x))
		expanded = strings.ReplaceAll(expanded, "%y", strconv.Itoa(y))
		if _, err := w.Eval(expanded); err != nil {
			w.reportScriptError("drop target", tgt, err)
		}
	})
	if err != nil {
		return "", tcl.NewError("%s", err.Error())
	}
	return "", nil
}

func (w *Wafe) cmdRddUnregisterSource(argv []string) (string, error) {
	if len(argv) != 2 {
		return "", tcl.NewError("wrong # args: should be \"rddUnregisterSource widget\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	w.dnd().UnregisterSource(wid)
	return "", nil
}

func (w *Wafe) cmdRddUnregisterTarget(argv []string) (string, error) {
	if len(argv) != 2 {
		return "", tcl.NewError("wrong # args: should be \"rddUnregisterTarget widget\"")
	}
	wid, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	w.dnd().UnregisterTarget(wid)
	return "", nil
}

func (w *Wafe) cmdRddDrag(argv []string) (string, error) {
	if len(argv) != 3 {
		return "", tcl.NewError("wrong # args: should be \"rddDrag source target\"")
	}
	src, err := w.widgetArg(argv[1])
	if err != nil {
		return "", err
	}
	dst, err := w.widgetArg(argv[2])
	if err != nil {
		return "", err
	}
	if err := w.dnd().Drag(src, dst); err != nil {
		return "", tcl.NewError("%s", err.Error())
	}
	return "", nil
}
