package core

import (
	"strings"
	"testing"
)

// TestQuickstartGoldenSnapshot pins the exact ASCII rendering of the
// paper's hello-world script — a regression net over the whole
// rendering path (layout, fonts, snapshot grid).
func TestQuickstartGoldenSnapshot(t *testing.T) {
	w := NewTest()
	eval(t, w, `command hello topLevel label "Wafe new World" callback "echo Goodbye; quit"`)
	eval(t, w, "realize")
	snap := eval(t, w, "snapshot")
	want := strings.Join([]string{
		"+--------------+",
		"Wafe new World-+",
		"",
	}, "\n")
	if snap != want {
		t.Errorf("snapshot drifted:\n%q\nwant:\n%q", snap, want)
	}
	tree := eval(t, w, "widgetTree")
	wantTree := "topLevel (ApplicationShell) 94x19+0+0\n  hello (Command) 92x17+0+0"
	if tree != wantTree {
		t.Errorf("widgetTree drifted:\n%q\nwant:\n%q", tree, wantTree)
	}
}

// TestPrimeFactorsGoldenGeometry pins the layout of the paper's demo
// tree: explicit widths honoured, constraint rows and columns exact.
func TestPrimeFactorsGoldenGeometry(t *testing.T) {
	w := NewTest()
	eval(t, w, `
		form top topLevel
		asciiText input top editType edit width 200
		label result top label {} width 200 fromVert input
		command quitBtn top fromVert result
		label info top fromVert result fromHoriz quitBtn label {} borderWidth 0 width 150
		realize
	`)
	type geo struct{ x, y, w int }
	want := map[string]geo{
		"input":   {4, 4, 200},
		"result":  {4, 27, 200},
		"quitBtn": {4, 50, 50},
		"info":    {60, 50, 150},
	}
	for name, g := range want {
		wid := w.App.WidgetByName(name)
		if wid.Int("x") != g.x || wid.Int("y") != g.y || wid.Int("width") != g.w {
			t.Errorf("%s geometry = %dx?+%d+%d, want width=%d x=%d y=%d",
				name, wid.Int("width"), wid.Int("x"), wid.Int("y"), g.w, g.x, g.y)
		}
	}
}
