package xaw

import (
	"fmt"
	"strconv"

	"wafe/internal/xproto"
	"wafe/internal/xt"
)

// ScrollbarClass provides a thumb with jumpProc (fractional position)
// and scrollProc (incremental pixels) callbacks.
var ScrollbarClass = &xt.Class{
	Name:  "Scrollbar",
	Super: SimpleClass,
	Resources: []xt.Resource{
		{Name: "foreground", Class: "Foreground", Type: xt.TPixel, Default: "XtDefaultForeground"},
		{Name: "orientation", Class: "Orientation", Type: xt.TOrientation, Default: "vertical"},
		{Name: "length", Class: "Length", Type: xt.TDimension, Default: "100"},
		{Name: "thickness", Class: "Thickness", Type: xt.TDimension, Default: "14"},
		{Name: "shown", Class: "Shown", Type: xt.TFloat, Default: "0.1"},
		{Name: "topOfThumb", Class: "TopOfThumb", Type: xt.TFloat, Default: "0"},
		{Name: "minimumThumb", Class: "MinimumThumb", Type: xt.TDimension, Default: "7"},
		{Name: "scrollProc", Class: "Callback", Type: xt.TCallback, Default: ""},
		{Name: "jumpProc", Class: "Callback", Type: xt.TCallback, Default: ""},
	},
	DefaultTranslations: `<Btn1Down>: StartScroll(Forward)
<Btn3Down>: StartScroll(Backward)
<Btn2Down>: StartScroll(Continuous) MoveThumb() NotifyThumb()
<Btn2Motion>: MoveThumb() NotifyThumb()
<BtnUp>: NotifyScroll(Proportional) EndScroll()`,
	Actions: map[string]xt.ActionProc{
		"StartScroll":  scrollbarStartScroll,
		"MoveThumb":    scrollbarMoveThumb,
		"NotifyThumb":  scrollbarNotifyThumb,
		"NotifyScroll": scrollbarNotifyScroll,
		"EndScroll":    func(w *xt.Widget, _ *xproto.Event, _ []string) {},
	},
	PreferredSize: func(w *xt.Widget) (int, int) {
		if w.Str("orientation") == "horizontal" {
			return w.Int("length"), w.Int("thickness")
		}
		return w.Int("thickness"), w.Int("length")
	},
	Redisplay: scrollbarRedisplay,
}

type scrollbarPrivate struct {
	mode string // Forward, Backward, Continuous
}

func sbState(w *xt.Widget) *scrollbarPrivate {
	st, ok := w.Private.(*scrollbarPrivate)
	if !ok {
		st = &scrollbarPrivate{}
		w.Private = st
	}
	return st
}

func sbFloat(w *xt.Widget, name string) float64 {
	if v, ok := w.Get(name); ok {
		if f, ok := v.(float64); ok {
			return f
		}
	}
	return 0
}

func sbLengthPixels(w *xt.Widget) int {
	if w.Str("orientation") == "horizontal" {
		return maxInt(w.Int("width"), 1)
	}
	return maxInt(w.Int("height"), 1)
}

func sbEventPos(w *xt.Widget, ev *xproto.Event) int {
	if w.Str("orientation") == "horizontal" {
		return ev.X
	}
	return ev.Y
}

func scrollbarStartScroll(w *xt.Widget, _ *xproto.Event, params []string) {
	if len(params) > 0 {
		sbState(w).mode = params[0]
	}
}

func scrollbarMoveThumb(w *xt.Widget, ev *xproto.Event, _ []string) {
	frac := float64(sbEventPos(w, ev)) / float64(sbLengthPixels(w))
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	old := sbThumbRect(w)
	w.SetResourceValue("topOfThumb", frac)
	w.RedrawRect(old.Union(sbThumbRect(w)))
}

func scrollbarNotifyThumb(w *xt.Widget, _ *xproto.Event, _ []string) {
	frac := sbFloat(w, "topOfThumb")
	w.CallCallbacks("jumpProc", xt.CallData{"f": fmt.Sprintf("%g", frac)})
}

func scrollbarNotifyScroll(w *xt.Widget, ev *xproto.Event, _ []string) {
	pos := sbEventPos(w, ev)
	delta := pos
	if sbState(w).mode == "Backward" {
		delta = -pos
	}
	w.CallCallbacks("scrollProc", xt.CallData{"d": strconv.Itoa(delta)})
}

// ScrollbarSetThumb implements XawScrollbarSetThumb. Only the union of
// the old and new thumb rectangles is repainted.
func ScrollbarSetThumb(w *xt.Widget, top, shown float64) {
	old := sbThumbRect(w)
	w.SetResourceValue("topOfThumb", top)
	w.SetResourceValue("shown", shown)
	w.RedrawRect(old.Union(sbThumbRect(w)))
}

// sbThumbRect returns the thumb rectangle in widget coordinates.
func sbThumbRect(w *xt.Widget) xproto.Rect {
	length := sbLengthPixels(w)
	top := int(sbFloat(w, "topOfThumb") * float64(length))
	size := maxInt(int(sbFloat(w, "shown")*float64(length)), w.Int("minimumThumb"))
	if w.Str("orientation") == "horizontal" {
		return xproto.Rect{X: top, Y: 1, W: size, H: w.Int("height") - 2}
	}
	return xproto.Rect{X: 1, Y: top, W: w.Int("width") - 2, H: size}
}

func scrollbarRedisplay(w *xt.Widget) {
	d := w.Display()
	clip := w.Clip()
	gc := d.NewGC()
	gc.Foreground = w.PixelRes("background")
	d.FillRectangle(w.Window(), gc, clip.X, clip.Y, clip.W, clip.H)
	t := sbThumbRect(w)
	if w.ClipIntersects(t.X, t.Y, t.W, t.H) {
		gc.Foreground = w.PixelRes("foreground")
		d.FillRectangle(w.Window(), gc, t.X, t.Y, t.W, t.H)
	}
}

// GripClass is the Paned grip: a small square with a callback.
var GripClass = &xt.Class{
	Name:  "Grip",
	Super: SimpleClass,
	Resources: []xt.Resource{
		{Name: "callback", Class: "Callback", Type: xt.TCallback, Default: ""},
		{Name: "gripIndent", Class: "GripIndent", Type: xt.TPosition, Default: "10"},
	},
	DefaultTranslations: `<Btn1Down>: GripAction(press)
<Btn1Up>: GripAction(release)`,
	Actions: map[string]xt.ActionProc{
		"GripAction": func(w *xt.Widget, _ *xproto.Event, params []string) {
			data := xt.CallData{}
			if len(params) > 0 {
				data["action"] = params[0]
			}
			w.CallCallbacks("callback", data)
		},
	},
	PreferredSize: func(w *xt.Widget) (int, int) { return 8, 8 },
}

// StripChartClass samples a value via its getValue callback at a fixed
// interval and scrolls the resulting graph (used by xnetstats-style
// monitors).
var StripChartClass = &xt.Class{
	Name:  "StripChart",
	Super: SimpleClass,
	Resources: []xt.Resource{
		{Name: "foreground", Class: "Foreground", Type: xt.TPixel, Default: "XtDefaultForeground"},
		{Name: "highlight", Class: "Foreground", Type: xt.TPixel, Default: "XtDefaultForeground"},
		{Name: "getValue", Class: "Callback", Type: xt.TCallback, Default: ""},
		{Name: "update", Class: "Interval", Type: xt.TInt, Default: "10"},
		{Name: "minScale", Class: "Scale", Type: xt.TInt, Default: "1"},
		{Name: "jumpScroll", Class: "JumpScroll", Type: xt.TDimension, Default: "8"},
	},
	PreferredSize: func(w *xt.Widget) (int, int) { return 120, 40 },
	Redisplay:     stripChartRedisplay,
}

type stripChartPrivate struct {
	samples []float64
}

func chartState(w *xt.Widget) *stripChartPrivate {
	st, ok := w.Private.(*stripChartPrivate)
	if !ok {
		st = &stripChartPrivate{}
		w.Private = st
	}
	return st
}

// StripChartAddSample records a sample and scrolls the chart. The Wafe
// layer drives it from the getValue callback on a timer.
//
// The steady-state path damages only the new sample's column. Two cases
// still repaint the whole chart: the sample raises the vertical scale
// (every bar's height changes), and the chart running out of columns —
// there the samples jump-scroll left by the jumpScroll resource in
// place, so scroll repaints happen once per jumpScroll samples rather
// than per sample and the slice never reallocates.
func StripChartAddSample(w *xt.Widget, v float64) {
	st := chartState(w)
	scale := float64(w.Int("minScale"))
	for _, s := range st.samples {
		if s > scale {
			scale = s
		}
	}
	if max := maxInt(w.Int("width"), 1); len(st.samples) >= max {
		j := maxInt(w.Int("jumpScroll"), 1)
		if j > len(st.samples) {
			j = len(st.samples)
		}
		n := copy(st.samples, st.samples[j:])
		st.samples = append(st.samples[:n], v)
		w.Redraw()
		return
	}
	st.samples = append(st.samples, v)
	if v > scale {
		w.Redraw()
		return
	}
	w.RedrawRect(xproto.Rect{X: len(st.samples) - 1, Y: 0, W: 1, H: w.Int("height")})
}

// StripChartSamples returns the recorded samples (for tests).
func StripChartSamples(w *xt.Widget) []float64 {
	return append([]float64(nil), chartState(w).samples...)
}

func stripChartRedisplay(w *xt.Widget) {
	d := w.Display()
	clip := w.Clip()
	gc := d.NewGC()
	gc.Foreground = w.PixelRes("background")
	d.FillRectangle(w.Window(), gc, clip.X, clip.Y, clip.W, clip.H)
	gc.Foreground = w.PixelRes("foreground")
	st := chartState(w)
	scale := float64(w.Int("minScale"))
	for _, s := range st.samples {
		if s > scale {
			scale = s
		}
	}
	h := w.Int("height")
	for i, s := range st.samples {
		if !w.ClipIntersects(i, 0, 1, h) {
			continue
		}
		bar := int(s / scale * float64(h-2))
		d.DrawLine(w.Window(), gc, i, h-1, i, h-1-bar)
	}
}
