package xaw

import (
	"strings"

	"wafe/internal/xproto"
	"wafe/internal/xt"
)

// LabelClass displays a text string or bitmap. Its resource list —
// Core (18) + Simple/Xaw3d (13) + Label (11) — totals the 42 resources
// the paper reports for getResourceList on a Label instance.
var LabelClass = &xt.Class{
	Name:  "Label",
	Super: SimpleClass,
	Resources: []xt.Resource{
		{Name: "foreground", Class: "Foreground", Type: xt.TPixel, Default: "XtDefaultForeground"},
		{Name: "font", Class: "Font", Type: xt.TFont, Default: "fixed"},
		{Name: "fontSet", Class: "FontSet", Type: xt.TString, Default: ""},
		{Name: "label", Class: "Label", Type: xt.TString, Default: ""},
		{Name: "encoding", Class: "Encoding", Type: xt.TString, Default: "8bit"},
		{Name: "justify", Class: "Justify", Type: xt.TJustify, Default: "center"},
		{Name: "internalWidth", Class: "Width", Type: xt.TDimension, Default: "4"},
		{Name: "internalHeight", Class: "Height", Type: xt.TDimension, Default: "2"},
		{Name: "leftBitmap", Class: "LeftBitmap", Type: xt.TBitmap, Default: ""},
		{Name: "bitmap", Class: "Pixmap", Type: xt.TBitmap, Default: ""},
		{Name: "resize", Class: "Resize", Type: xt.TBoolean, Default: "True"},
	},
	Initialize: func(w *xt.Widget) {
		// A Label defaults its label to the widget name, as Xaw does.
		if w.Str("label") == "" && !w.Explicit("label") {
			w.SetResourceValue("label", w.Name)
		}
	},
	PreferredSize: labelPreferredSize,
	Redisplay:     labelRedisplay,
	SetValues: func(w *xt.Widget, changed map[string]bool) {
		if (changed["label"] || changed["font"]) && w.Bool("resize") && !w.Explicit("width") {
			pw, ph := labelPreferredSize(w)
			w.RequestResize(pw, ph)
		}
	},
}

func labelPreferredSize(w *xt.Widget) (int, int) {
	f := w.FontRes("font")
	label := labelText(w)
	width := 0
	lines := strings.Split(label, "\n")
	for _, l := range lines {
		if tw := f.TextWidth(l); tw > width {
			width = tw
		}
	}
	if pm := labelBitmap(w); pm != nil {
		width = pm.Width
		return width + 2*w.Int("internalWidth"), pm.Height + 2*w.Int("internalHeight")
	}
	h := f.Height() * len(lines)
	return width + 2*w.Int("internalWidth"), h + 2*w.Int("internalHeight")
}

func labelText(w *xt.Widget) string { return w.Str("label") }

func labelBitmap(w *xt.Widget) *xproto.Pixmap {
	if v, ok := w.Get("bitmap"); ok {
		if pm, ok := v.(*xproto.Pixmap); ok {
			return pm
		}
	}
	return nil
}

func labelRedisplay(w *xt.Widget) {
	d := w.Display()
	win := w.Window()
	clip := w.Clip()
	gc := d.NewGC()
	gc.Foreground = w.PixelRes("background")
	d.FillRectangle(win, gc, clip.X, clip.Y, clip.W, clip.H)
	if pm := labelBitmap(w); pm != nil {
		if w.ClipIntersects(w.Int("internalWidth"), w.Int("internalHeight"), pm.Width, pm.Height) {
			d.CopyPixmap(win, pm, w.Int("internalWidth"), w.Int("internalHeight"))
		}
		return
	}
	gc.Foreground = w.PixelRes("foreground")
	gc.Font = w.FontRes("font")
	f := gc.Font
	y := w.Int("internalHeight") + f.Ascent
	drawLine := func(line string) {
		x := w.Int("internalWidth")
		switch w.Str("justify") {
		case "center":
			if extra := w.Int("width") - 2*w.Int("internalWidth") - f.TextWidth(line); extra > 0 {
				x += extra / 2
			}
		case "right":
			if extra := w.Int("width") - 2*w.Int("internalWidth") - f.TextWidth(line); extra > 0 {
				x += extra
			}
		}
		if w.ClipIntersects(x, y-f.Ascent, f.TextWidth(line), f.Height()) {
			d.DrawString(win, gc, x, y, line)
		}
		y += f.Height()
	}
	text := labelText(w)
	// Single-line labels (the common case) skip the line split.
	if !strings.Contains(text, "\n") {
		drawLine(text)
		return
	}
	for _, line := range strings.Split(text, "\n") {
		drawLine(line)
	}
}

// CommandClass is a pushbutton: a Label with a callback list and the
// set/notify/highlight action protocol.
var CommandClass = &xt.Class{
	Name:  "Command",
	Super: LabelClass,
	Resources: []xt.Resource{
		{Name: "callback", Class: "Callback", Type: xt.TCallback, Default: ""},
		{Name: "highlightThickness", Class: "Thickness", Type: xt.TDimension, Default: "2"},
		{Name: "shapeStyle", Class: "ShapeStyle", Type: xt.TShapeStyle, Default: "rectangle"},
		{Name: "cornerRoundPercent", Class: "CornerRoundPercent", Type: xt.TDimension, Default: "25"},
	},
	DefaultTranslations: `<EnterWindow>: highlight()
<LeaveWindow>: reset()
<Btn1Down>: set()
<Btn1Up>: notify() unset()`,
	Actions: map[string]xt.ActionProc{
		"set":       actionSet,
		"unset":     actionUnset,
		"reset":     actionReset,
		"highlight": actionHighlight,
		"notify":    actionNotify,
	},
	PreferredSize: labelPreferredSize,
	Redisplay:     commandRedisplay,
}

// commandState is the per-instance pressed/highlight state.
type commandState struct {
	set         bool
	highlighted bool
}

func cmdState(w *xt.Widget) *commandState {
	st, ok := w.Private.(*commandState)
	if !ok {
		st = &commandState{}
		w.Private = st
	}
	return st
}

func actionSet(w *xt.Widget, _ *xproto.Event, _ []string) {
	cmdState(w).set = true
	w.Redraw()
}

func actionUnset(w *xt.Widget, _ *xproto.Event, _ []string) {
	cmdState(w).set = false
	w.Redraw()
}

func actionReset(w *xt.Widget, _ *xproto.Event, _ []string) {
	st := cmdState(w)
	st.set = false
	st.highlighted = false
	w.Redraw()
}

func actionHighlight(w *xt.Widget, _ *xproto.Event, _ []string) {
	cmdState(w).highlighted = true
	w.Redraw()
}

func actionNotify(w *xt.Widget, _ *xproto.Event, _ []string) {
	if cmdState(w).set {
		w.CallCallbacks("callback", nil)
	}
}

func commandRedisplay(w *xt.Widget) {
	labelRedisplay(w)
	st := cmdState(w)
	d := w.Display()
	gc := d.NewGC()
	if st.set {
		gc.Foreground = w.PixelRes("bottomShadowPixel")
	} else {
		gc.Foreground = w.PixelRes("topShadowPixel")
	}
	// The shadow and highlight rings span the whole widget, so any
	// non-empty clip intersects them; the check is the clip contract.
	if w.ClipIntersects(0, 0, w.Int("width"), w.Int("height")) {
		d.DrawRectangle(w.Window(), gc, 0, 0, w.Int("width")-1, w.Int("height")-1)
		if st.highlighted {
			gc.Foreground = w.PixelRes("foreground")
			t := w.Int("highlightThickness")
			d.DrawRectangle(w.Window(), gc, t/2, t/2, w.Int("width")-1-t, w.Int("height")-1-t)
		}
	}
}

// IsCommandSet reports the pressed state (for tests).
func IsCommandSet(w *xt.Widget) bool { return cmdState(w).set }

// ToggleClass is a Command that latches its state.
var ToggleClass = &xt.Class{
	Name:  "Toggle",
	Super: CommandClass,
	Resources: []xt.Resource{
		{Name: "state", Class: "State", Type: xt.TBoolean, Default: "False"},
		{Name: "radioGroup", Class: "Widget", Type: xt.TWidget, Default: ""},
		{Name: "radioData", Class: "RadioData", Type: xt.TString, Default: ""},
	},
	DefaultTranslations: `<EnterWindow>: highlight()
<LeaveWindow>: reset()
<Btn1Up>: toggle() notify()`,
	Actions: map[string]xt.ActionProc{
		"toggle": actionToggle,
		"notify": func(w *xt.Widget, _ *xproto.Event, _ []string) {
			w.CallCallbacks("callback", xt.CallData{"state": boolStr(w.Bool("state"))})
		},
	},
	PreferredSize: labelPreferredSize,
	Redisplay:     toggleRedisplay,
}

func actionToggle(w *xt.Widget, _ *xproto.Event, _ []string) {
	nw := !w.Bool("state")
	w.SetResourceValue("state", nw)
	// Radio-group semantics: turning one member on turns the rest off.
	if nw {
		if v, ok := w.Get("radioGroup"); ok {
			if leader, ok := v.(*xt.Widget); ok && leader != nil {
				for _, name := range w.App().WidgetNames() {
					other := w.App().WidgetByName(name)
					if other == nil || other == w || other.Class != w.Class {
						continue
					}
					if g, ok := other.Get("radioGroup"); ok {
						if gw, ok := g.(*xt.Widget); ok && gw == leader && other.Bool("state") {
							other.SetResourceValue("state", false)
							other.Redraw()
						}
					}
				}
			}
		}
	}
	w.Redraw()
}

func toggleRedisplay(w *xt.Widget) {
	labelRedisplay(w)
	d := w.Display()
	gc := d.NewGC()
	if w.Bool("state") && w.ClipIntersects(0, 0, w.Int("width"), w.Int("height")) {
		gc.Foreground = w.PixelRes("foreground")
		d.DrawRectangle(w.Window(), gc, 0, 0, w.Int("width")-1, w.Int("height")-1)
		d.DrawRectangle(w.Window(), gc, 1, 1, w.Int("width")-3, w.Int("height")-3)
	}
}

func boolStr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// MenuButtonClass pops up a named menu shell; its PopupMenu action is
// the one the paper rebinds to <EnterWindow>.
var MenuButtonClass = &xt.Class{
	Name:  "MenuButton",
	Super: CommandClass,
	Resources: []xt.Resource{
		{Name: "menuName", Class: "MenuName", Type: xt.TString, Default: "menu"},
	},
	DefaultTranslations: `<EnterWindow>: highlight()
<LeaveWindow>: reset()
<Btn1Down>: reset() PopupMenu()`,
	Actions: map[string]xt.ActionProc{
		"PopupMenu": actionPopupMenu,
	},
	PreferredSize: labelPreferredSize,
	Redisplay:     commandRedisplay,
}

func actionPopupMenu(w *xt.Widget, ev *xproto.Event, _ []string) {
	menu := w.App().WidgetByName(w.Str("menuName"))
	if menu == nil || !menu.Class.Shell {
		return
	}
	// Place under the button.
	if ev != nil {
		_ = menu.PositionShell(ev.XRoot, ev.YRoot)
	}
	_ = menu.Popup(xt.GrabExclusive)
}
