package xaw

import (
	"os"
	"strings"
	"unicode/utf8"

	"wafe/internal/xproto"
	"wafe/internal/xt"
)

// AsciiTextClass is the Athena text widget in its ascii-string flavour:
// an editable buffer exposed through the "string" resource, which the
// paper's prime-factor demo reads with "gV input string" and the mass-
// transfer example writes with "sv text ... string $C".
var AsciiTextClass = &xt.Class{
	Name:  "AsciiText",
	Super: SimpleClass,
	Resources: []xt.Resource{
		{Name: "foreground", Class: "Foreground", Type: xt.TPixel, Default: "XtDefaultForeground"},
		{Name: "font", Class: "Font", Type: xt.TFont, Default: "fixed"},
		{Name: "string", Class: "String", Type: xt.TString, Default: ""},
		{Name: "editType", Class: "EditType", Type: xt.TString, Default: "read"},
		{Name: "type", Class: "Type", Type: xt.TString, Default: "string"},
		{Name: "length", Class: "Length", Type: xt.TInt, Default: "0"},
		{Name: "useStringInPlace", Class: "Boolean", Type: xt.TBoolean, Default: "False"},
		{Name: "insertPosition", Class: "TextPosition", Type: xt.TInt, Default: "0"},
		{Name: "displayCaret", Class: "Output", Type: xt.TBoolean, Default: "True"},
		{Name: "scrollVertical", Class: "Scroll", Type: xt.TString, Default: "never"},
		{Name: "scrollHorizontal", Class: "Scroll", Type: xt.TString, Default: "never"},
		{Name: "autoFill", Class: "AutoFill", Type: xt.TBoolean, Default: "False"},
		{Name: "wrap", Class: "Wrap", Type: xt.TString, Default: "never"},
	},
	DefaultTranslations: `<Key>Return: newline()
<Key>BackSpace: delete-previous-character()
<Key>Delete: delete-previous-character()
<Key>Left: backward-character()
<Key>Right: forward-character()
<KeyPress>: insert-char()
<Btn1Down>: select-start()
<Btn1Motion>: extend-adjust()
<Btn1Up>: select-end(PRIMARY)
<Btn2Down>: insert-selection(PRIMARY)`,
	Actions: map[string]xt.ActionProc{
		"insert-char":               textInsertChar,
		"newline":                   textNewline,
		"delete-previous-character": textDeletePrev,
		"backward-character":        textBackward,
		"forward-character":         textForward,
		"beginning-of-line":         textBOL,
		"end-of-line":               textEOL,
		"kill-to-end-of-line":       textKillEOL,
		"select-start":              textSelectStart,
		"extend-adjust":             textExtendAdjust,
		"select-end":                textSelectEnd,
		"insert-selection":          textInsertSelection,
	},
	PreferredSize: textPreferredSize,
	Redisplay:     textRedisplay,
	SetValues: func(w *xt.Widget, changed map[string]bool) {
		if changed["string"] {
			// Clamp the caret into the new buffer.
			n := len(w.Str("string"))
			if w.Int("insertPosition") > n {
				w.SetResourceValue("insertPosition", n)
			}
		}
	},
}

func textEditable(w *xt.Widget) bool {
	if strings.EqualFold(w.Str("type"), "file") {
		return false // file sources display read-only here
	}
	return strings.EqualFold(w.Str("editType"), "edit") || strings.EqualFold(w.Str("editType"), "append")
}

// textPrivate holds the per-instance text state: the loaded-file cache
// for type=file widgets and the active selection.
type textPrivate struct {
	loadedFrom string
	content    string
	loadErr    string

	selAnchor, selStart, selEnd int
	selecting                   bool

	// Caret geometry cache: the row/column of caretPos in caretBuf.
	// Redisplay consults it so an unchanged buffer needs no O(n) prefix
	// scan, and the editing actions update it incrementally (caret
	// geometry depends only on the text before the caret).
	caretBuf      string
	caretPos      int
	caretRow      int
	caretCol      int // column in runes from the line start
	caretOK       bool
}

func textState(w *xt.Widget) *textPrivate {
	st, ok := w.Private.(*textPrivate)
	if !ok {
		st = &textPrivate{}
		w.Private = st
	}
	return st
}

// TextBuffer returns the text the widget displays: the string resource
// itself, or — for type=file — the contents of the named file.
func TextBuffer(w *xt.Widget) string {
	if !strings.EqualFold(w.Str("type"), "file") {
		return w.Str("string")
	}
	st := textState(w)
	name := w.Str("string")
	if st.loadedFrom != name {
		st.loadedFrom = name
		st.content = ""
		st.loadErr = ""
		if name != "" {
			data, err := os.ReadFile(name)
			if err != nil {
				st.loadErr = "[cannot read " + name + "]"
			} else {
				st.content = string(data)
			}
		}
	}
	if st.loadErr != "" {
		return st.loadErr
	}
	return st.content
}

func textInsertChar(w *xt.Widget, ev *xproto.Event, _ []string) {
	if !textEditable(w) || ev == nil || ev.Rune == 0 {
		return
	}
	if ev.Rune < 0x20 && ev.Rune != '\t' {
		return
	}
	insertText(w, string(ev.Rune))
}

func insertText(w *xt.Widget, s string) {
	buf := w.Str("string")
	pos := clamp(w.Int("insertPosition"), 0, len(buf))
	newBuf := buf[:pos] + s + buf[pos:]
	newPos := pos + len(s)
	st := textState(w)
	if st.caretOK && st.caretPos == pos && st.caretBuf == buf {
		// The text before the caret is the old prefix plus s, so the
		// cached geometry advances by s alone.
		if nl := strings.Count(s, "\n"); nl > 0 {
			st.caretRow += nl
			st.caretCol = utf8.RuneCountInString(s[strings.LastIndexByte(s, '\n')+1:])
		} else {
			st.caretCol += utf8.RuneCountInString(s)
		}
		st.caretBuf, st.caretPos = newBuf, newPos
	} else {
		st.caretOK = false
	}
	w.SetResourceValue("string", newBuf)
	w.SetResourceValue("insertPosition", newPos)
	w.Redraw()
}

func textNewline(w *xt.Widget, _ *xproto.Event, _ []string) {
	if !textEditable(w) {
		return
	}
	insertText(w, "\n")
}

func textDeletePrev(w *xt.Widget, _ *xproto.Event, _ []string) {
	if !textEditable(w) {
		return
	}
	buf := w.Str("string")
	pos := clamp(w.Int("insertPosition"), 0, len(buf))
	if pos == 0 {
		return
	}
	newBuf := buf[:pos-1] + buf[pos:]
	st := textState(w)
	deleted := buf[pos-1]
	if st.caretOK && st.caretPos == pos && st.caretBuf == buf && deleted != '\n' && deleted < 0x80 {
		st.caretCol--
		st.caretBuf, st.caretPos = newBuf, pos-1
	} else {
		// Deleting a newline or part of a multi-byte rune needs a full
		// rescan; let the next redisplay recompute.
		st.caretOK = false
	}
	w.SetResourceValue("string", newBuf)
	w.SetResourceValue("insertPosition", pos-1)
	w.Redraw()
}

func textBackward(w *xt.Widget, _ *xproto.Event, _ []string) {
	if p := w.Int("insertPosition"); p > 0 {
		w.SetResourceValue("insertPosition", p-1)
	}
}

func textForward(w *xt.Widget, _ *xproto.Event, _ []string) {
	if p := w.Int("insertPosition"); p < len(w.Str("string")) {
		w.SetResourceValue("insertPosition", p+1)
	}
}

func textBOL(w *xt.Widget, _ *xproto.Event, _ []string) {
	buf := w.Str("string")
	pos := clamp(w.Int("insertPosition"), 0, len(buf))
	for pos > 0 && buf[pos-1] != '\n' {
		pos--
	}
	w.SetResourceValue("insertPosition", pos)
}

func textEOL(w *xt.Widget, _ *xproto.Event, _ []string) {
	buf := w.Str("string")
	pos := clamp(w.Int("insertPosition"), 0, len(buf))
	for pos < len(buf) && buf[pos] != '\n' {
		pos++
	}
	w.SetResourceValue("insertPosition", pos)
}

func textKillEOL(w *xt.Widget, _ *xproto.Event, _ []string) {
	if !textEditable(w) {
		return
	}
	buf := w.Str("string")
	pos := clamp(w.Int("insertPosition"), 0, len(buf))
	end := pos
	for end < len(buf) && buf[end] != '\n' {
		end++
	}
	if end == pos && end < len(buf) {
		end++ // kill the newline itself
	}
	w.SetResourceValue("string", buf[:pos]+buf[end:])
	w.Redraw()
}

// textPosAt maps window coordinates to a buffer offset.
func textPosAt(w *xt.Widget, x, y int) int {
	f := w.FontRes("font")
	buf := TextBuffer(w)
	row := (y - 2) / f.Height()
	col := (x - 2 + f.Width/2) / f.Width
	if row < 0 {
		return 0
	}
	lines := strings.Split(buf, "\n")
	if row >= len(lines) {
		return len(buf)
	}
	pos := 0
	for i := 0; i < row; i++ {
		pos += len(lines[i]) + 1
	}
	return pos + clamp(col, 0, len(lines[row]))
}

func textSelectStart(w *xt.Widget, ev *xproto.Event, _ []string) {
	st := textState(w)
	p := textPosAt(w, ev.X, ev.Y)
	st.selAnchor, st.selStart, st.selEnd = p, p, p
	st.selecting = true
	w.SetResourceValue("insertPosition", p)
	// Clicking a text widget gives it keyboard focus.
	w.Display().SetInputFocus(w.Window())
}

func textExtendAdjust(w *xt.Widget, ev *xproto.Event, _ []string) {
	st := textState(w)
	if !st.selecting {
		return
	}
	p := textPosAt(w, ev.X, ev.Y)
	if p < st.selAnchor {
		st.selStart, st.selEnd = p, st.selAnchor
	} else {
		st.selStart, st.selEnd = st.selAnchor, p
	}
	w.Redraw()
}

// textSelectEnd completes the selection and asserts ownership of the
// named selection (PRIMARY by default) through the Xt selection
// mechanism.
func textSelectEnd(w *xt.Widget, ev *xproto.Event, params []string) {
	st := textState(w)
	if !st.selecting {
		return
	}
	st.selecting = false
	if ev != nil {
		textExtendAdjustFinal(w, ev)
	}
	if st.selStart >= st.selEnd {
		return
	}
	sel := "PRIMARY"
	if len(params) > 0 && params[0] != "" {
		sel = params[0]
	}
	widget := w
	w.Display().OwnSelection(sel, w.Window(), func(target string) (string, bool) {
		s := textState(widget)
		buf := TextBuffer(widget)
		if s.selStart >= s.selEnd || s.selEnd > len(buf) {
			return "", false
		}
		return buf[s.selStart:s.selEnd], true
	})
}

func textExtendAdjustFinal(w *xt.Widget, ev *xproto.Event) {
	st := textState(w)
	p := textPosAt(w, ev.X, ev.Y)
	if p < st.selAnchor {
		st.selStart, st.selEnd = p, st.selAnchor
	} else {
		st.selStart, st.selEnd = st.selAnchor, p
	}
}

// textInsertSelection pastes the named selection at the event position.
func textInsertSelection(w *xt.Widget, ev *xproto.Event, params []string) {
	if !textEditable(w) {
		return
	}
	sel := "PRIMARY"
	if len(params) > 0 && params[0] != "" {
		sel = params[0]
	}
	v, ok := w.Display().ConvertSelection(sel, "STRING")
	if !ok {
		return
	}
	if ev != nil {
		w.SetResourceValue("insertPosition", textPosAt(w, ev.X, ev.Y))
	}
	insertText(w, v)
}

// TextSelection returns the widget's current selection range and text.
func TextSelection(w *xt.Widget) (start, end int, text string) {
	st := textState(w)
	buf := TextBuffer(w)
	if st.selStart >= st.selEnd || st.selEnd > len(buf) {
		return 0, 0, ""
	}
	return st.selStart, st.selEnd, buf[st.selStart:st.selEnd]
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func textPreferredSize(w *xt.Widget) (int, int) {
	f := w.FontRes("font")
	lines := strings.Split(TextBuffer(w), "\n")
	maxW := 100
	for _, l := range lines {
		if tw := f.TextWidth(l); tw > maxW {
			maxW = tw
		}
	}
	return maxW + 4, maxInt(len(lines), 1)*f.Height() + 4
}

func textRedisplay(w *xt.Widget) {
	d := w.Display()
	win := w.Window()
	clip := w.Clip()
	gc := d.NewGC()
	gc.Foreground = w.PixelRes("background")
	d.FillRectangle(win, gc, clip.X, clip.Y, clip.W, clip.H)
	gc.Foreground = w.PixelRes("foreground")
	gc.Font = w.FontRes("font")
	y := 2 + gc.Font.Ascent
	for _, line := range strings.Split(TextBuffer(w), "\n") {
		if w.ClipIntersects(2, y-gc.Font.Ascent, gc.Font.TextWidth(line), gc.Font.Height()) {
			d.DrawString(win, gc, 2, y, line)
		}
		y += gc.Font.Height()
	}
	// Caret as a one-pixel line at the insert position.
	if w.Bool("displayCaret") && textEditable(w) {
		buf := w.Str("string")
		pos := clamp(w.Int("insertPosition"), 0, len(buf))
		row, col := textCaret(w, buf, pos)
		cx := 2 + gc.Font.Width*col
		cy := 2 + row*gc.Font.Height()
		if w.ClipIntersects(cx, cy, 1, gc.Font.Height()) {
			d.DrawLine(win, gc, cx, cy, cx, cy+gc.Font.Height()-1)
		}
	}
}

// textCaret returns the caret's row and rune column, consulting and
// refreshing the cache in textPrivate. A cache hit is O(1): the buffer
// comparison short-circuits on the string header when the resource
// still holds the same string value.
func textCaret(w *xt.Widget, buf string, pos int) (row, col int) {
	st := textState(w)
	if st.caretOK && st.caretPos == pos && st.caretBuf == buf {
		return st.caretRow, st.caretCol
	}
	row = strings.Count(buf[:pos], "\n")
	colStart := strings.LastIndexByte(buf[:pos], '\n') + 1
	col = utf8.RuneCountInString(buf[colStart:pos])
	st.caretBuf, st.caretPos, st.caretRow, st.caretCol, st.caretOK = buf, pos, row, col, true
	return row, col
}
