// Package xaw implements the Athena widget set (Xaw) — plus the Xaw3d
// shadow resources the paper measures ("42 resources ... using the
// X11R5 Xaw3d libraries") — on top of the Intrinsics in internal/xt.
//
// Resource names follow the Xaw programmatic interface exactly (label,
// fromVert, callback, ...) so the scripts printed in the paper run
// unmodified through the Wafe command layer.
package xaw

import (
	"wafe/internal/xt"
)

// SimpleClass is the Xaw Simple widget: the common superclass adding
// cursor and (in the Xaw3d variant Wafe links against) shadow
// resources.
var SimpleClass = &xt.Class{
	Name:  "Simple",
	Super: xt.CoreClass,
	Resources: []xt.Resource{
		{Name: "cursor", Class: "Cursor", Type: xt.TCursor, Default: ""},
		{Name: "cursorName", Class: "Cursor", Type: xt.TString, Default: ""},
		{Name: "insensitiveBorder", Class: "Insensitive", Type: xt.TPixmap, Default: ""},
		{Name: "pointerColor", Class: "Foreground", Type: xt.TPixel, Default: "XtDefaultForeground"},
		{Name: "pointerColorBackground", Class: "Background", Type: xt.TPixel, Default: "XtDefaultBackground"},
		// Xaw3d three-d resources.
		{Name: "shadowWidth", Class: "ShadowWidth", Type: xt.TDimension, Default: "2"},
		{Name: "topShadowPixel", Class: "TopShadowPixel", Type: xt.TPixel, Default: "gray90"},
		{Name: "bottomShadowPixel", Class: "BottomShadowPixel", Type: xt.TPixel, Default: "gray50"},
		{Name: "topShadowPixmap", Class: "TopShadowPixmap", Type: xt.TPixmap, Default: ""},
		{Name: "bottomShadowPixmap", Class: "BottomShadowPixmap", Type: xt.TPixmap, Default: ""},
		{Name: "topShadowContrast", Class: "TopShadowContrast", Type: xt.TInt, Default: "20"},
		{Name: "bottomShadowContrast", Class: "BottomShadowContrast", Type: xt.TInt, Default: "40"},
		{Name: "beNiceToColormap", Class: "BeNiceToColormap", Type: xt.TBoolean, Default: "False"},
	},
}

// AllClasses returns every Athena widget class this package provides,
// in a stable order; the Wafe layer derives creation commands from it.
func AllClasses() []*xt.Class {
	return []*xt.Class{
		SimpleClass,
		LabelClass,
		CommandClass,
		ToggleClass,
		MenuButtonClass,
		FormClass,
		BoxClass,
		PanedClass,
		ListClass,
		AsciiTextClass,
		ScrollbarClass,
		ViewportClass,
		DialogClass,
		SimpleMenuClass,
		SmeClass,
		SmeBSBClass,
		SmeLineClass,
		StripChartClass,
		GripClass,
	}
}
