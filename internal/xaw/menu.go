package xaw

import (
	"wafe/internal/xproto"
	"wafe/internal/xt"
)

// SimpleMenuClass is the Athena popup menu shell; its children are Sme
// entries.
var SimpleMenuClass = &xt.Class{
	Name:      "SimpleMenu",
	Super:     xt.OverrideShellClass,
	Composite: true,
	Shell:     true,
	Resources: []xt.Resource{
		{Name: "label", Class: "Label", Type: xt.TString, Default: ""},
		{Name: "rowHeight", Class: "RowHeight", Type: xt.TDimension, Default: "0"},
		{Name: "topMargin", Class: "VerticalMargins", Type: xt.TDimension, Default: "2"},
		{Name: "bottomMargin", Class: "VerticalMargins", Type: xt.TDimension, Default: "2"},
		{Name: "popupOnEntry", Class: "Widget", Type: xt.TWidget, Default: ""},
		{Name: "menuOnScreen", Class: "Boolean", Type: xt.TBoolean, Default: "True"},
	},
	DefaultTranslations: `<EnterWindow>: highlight()
<LeaveWindow>: unhighlight()
<Motion>: highlight()
<BtnUp>: MenuNotify() MenuPopdown()`,
	Actions: map[string]xt.ActionProc{
		"highlight":     menuHighlight,
		"unhighlight":   menuUnhighlight,
		"notify":        menuNotify,
		"MenuNotify":    menuNotify,
		"MenuPopdown":   menuPopdown,
		"XtMenuPopdown": menuPopdown,
	},
	ChangeManaged: menuLayout,
	PreferredSize: menuPreferredSize,
	Redisplay:     menuRedisplay,
}

type menuPrivate struct {
	highlight int
}

func menuState(w *xt.Widget) *menuPrivate {
	st, ok := w.Private.(*menuPrivate)
	if !ok {
		st = &menuPrivate{highlight: -1}
		w.Private = st
	}
	return st
}

func menuEntries(w *xt.Widget) []*xt.Widget {
	var out []*xt.Widget
	for _, c := range w.Children() {
		if c.Class.IsSubclassOf(SmeClass) && c.IsManaged() {
			out = append(out, c)
		}
	}
	return out
}

func menuRowHeight(w *xt.Widget) int {
	if rh := w.Int("rowHeight"); rh > 0 {
		return rh
	}
	return 13 + 2
}

func menuLayout(w *xt.Widget) {
	rh := menuRowHeight(w)
	y := w.Int("topMargin")
	maxW := 40
	for _, e := range menuEntries(w) {
		ew, _ := e.PreferredSize()
		if ew > maxW {
			maxW = ew
		}
	}
	for _, e := range menuEntries(w) {
		e.SetChildGeometry(0, y, maxW, rh)
		y += rh
	}
	w.RequestResize(maxW, y+w.Int("bottomMargin"))
}

func menuPreferredSize(w *xt.Widget) (int, int) {
	rh := menuRowHeight(w)
	n := len(menuEntries(w))
	maxW := 40
	for _, e := range menuEntries(w) {
		ew, _ := e.PreferredSize()
		if ew > maxW {
			maxW = ew
		}
	}
	return maxW, n*rh + w.Int("topMargin") + w.Int("bottomMargin")
}

func menuEntryAt(w *xt.Widget, y int) int {
	rh := menuRowHeight(w)
	idx := (y - w.Int("topMargin")) / rh
	if idx < 0 || idx >= len(menuEntries(w)) {
		return -1
	}
	return idx
}

// menuRepaintRow repaints one entry row of the menu (no-op for -1).
func menuRepaintRow(w *xt.Widget, idx int) {
	entries := menuEntries(w)
	if idx < 0 || idx >= len(entries) {
		return
	}
	w.RedrawRect(xproto.Rect{X: 0, Y: entries[idx].Int("y"), W: w.Int("width"), H: menuRowHeight(w)})
}

func menuHighlight(w *xt.Widget, ev *xproto.Event, _ []string) {
	st := menuState(w)
	old := st.highlight
	idx := menuEntryAt(w, ev.Y)
	if idx == old {
		return
	}
	st.highlight = idx
	menuRepaintRow(w, old)
	menuRepaintRow(w, idx)
}

func menuUnhighlight(w *xt.Widget, _ *xproto.Event, _ []string) {
	st := menuState(w)
	if st.highlight == -1 {
		return
	}
	old := st.highlight
	st.highlight = -1
	menuRepaintRow(w, old)
}

func menuNotify(w *xt.Widget, ev *xproto.Event, _ []string) {
	idx := menuState(w).highlight
	if ev != nil {
		if at := menuEntryAt(w, ev.Y); at >= 0 {
			idx = at
		}
	}
	entries := menuEntries(w)
	if idx < 0 || idx >= len(entries) {
		return
	}
	entries[idx].CallCallbacks("callback", nil)
}

func menuPopdown(w *xt.Widget, _ *xproto.Event, _ []string) {
	_ = w.Popdown()
}

// SmeClass is the menu-entry base class (Sme objects are windowless in
// Xaw; here they are lightweight widgets laid out by the menu).
var SmeClass = &xt.Class{
	Name:  "Sme",
	Super: xt.CoreClass,
	Resources: []xt.Resource{
		{Name: "callback", Class: "Callback", Type: xt.TCallback, Default: ""},
	},
	PreferredSize: func(w *xt.Widget) (int, int) { return 40, 15 },
}

// SmeBSBClass is the standard text menu entry (bitmap-string-bitmap).
var SmeBSBClass = &xt.Class{
	Name:  "SmeBSB",
	Super: SmeClass,
	Resources: []xt.Resource{
		{Name: "label", Class: "Label", Type: xt.TString, Default: ""},
		{Name: "font", Class: "Font", Type: xt.TFont, Default: "fixed"},
		{Name: "foreground", Class: "Foreground", Type: xt.TPixel, Default: "XtDefaultForeground"},
		{Name: "justify", Class: "Justify", Type: xt.TJustify, Default: "left"},
		{Name: "leftBitmap", Class: "LeftBitmap", Type: xt.TBitmap, Default: ""},
		{Name: "rightBitmap", Class: "RightBitmap", Type: xt.TBitmap, Default: ""},
		{Name: "leftMargin", Class: "HorizontalMargins", Type: xt.TDimension, Default: "4"},
		{Name: "rightMargin", Class: "HorizontalMargins", Type: xt.TDimension, Default: "4"},
		{Name: "vertSpace", Class: "VertSpace", Type: xt.TDimension, Default: "25"},
	},
	Initialize: func(w *xt.Widget) {
		if w.Str("label") == "" && !w.Explicit("label") {
			w.SetResourceValue("label", w.Name)
		}
	},
	PreferredSize: func(w *xt.Widget) (int, int) {
		f := w.FontRes("font")
		return f.TextWidth(w.Str("label")) + w.Int("leftMargin") + w.Int("rightMargin"), f.Height() + 2
	},
	Redisplay: func(w *xt.Widget) {
		d := w.Display()
		gc := d.NewGC()
		gc.Foreground = w.PixelRes("foreground")
		gc.Font = w.FontRes("font")
		if w.ClipIntersects(w.Int("leftMargin"), 1, gc.Font.TextWidth(w.Str("label")), gc.Font.Height()) {
			d.DrawString(w.Window(), gc, w.Int("leftMargin"), gc.Font.Ascent+1, w.Str("label"))
		}
	},
}

// SmeLineClass is the separator entry.
var SmeLineClass = &xt.Class{
	Name:  "SmeLine",
	Super: SmeClass,
	Resources: []xt.Resource{
		{Name: "lineWidth", Class: "LineWidth", Type: xt.TDimension, Default: "1"},
		{Name: "stipple", Class: "Stipple", Type: xt.TPixmap, Default: ""},
	},
	PreferredSize: func(w *xt.Widget) (int, int) { return 40, 4 },
	Redisplay: func(w *xt.Widget) {
		d := w.Display()
		gc := d.NewGC()
		if w.ClipIntersects(0, 2, w.Int("width"), 1) {
			d.DrawLine(w.Window(), gc, 0, 2, w.Int("width"), 2)
		}
	},
}

func menuRedisplay(w *xt.Widget) {
	d := w.Display()
	clip := w.Clip()
	gc := d.NewGC()
	gc.Foreground = w.PixelRes("background")
	d.FillRectangle(w.Window(), gc, clip.X, clip.Y, clip.W, clip.H)
	hl := menuState(w).highlight
	if hl >= 0 {
		entries := menuEntries(w)
		if hl < len(entries) && w.ClipIntersects(0, entries[hl].Int("y"), w.Int("width"), menuRowHeight(w)) {
			gcH := d.NewGC()
			gcH.Foreground = xproto.Pixel{R: 200, G: 200, B: 255}
			d.FillRectangle(w.Window(), gcH, 0, entries[hl].Int("y"), w.Int("width"), menuRowHeight(w))
		}
	}
}
