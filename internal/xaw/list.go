package xaw

import (
	"strconv"

	"wafe/internal/xproto"
	"wafe/internal/xt"
)

// ListClass shows a list of strings in columns; selecting an item runs
// the callback with the Athena XawListReturnStruct, which the Wafe
// layer exposes through the %i (index) and %s (string) percent codes.
var ListClass = &xt.Class{
	Name:  "List",
	Super: SimpleClass,
	Resources: []xt.Resource{
		{Name: "foreground", Class: "Foreground", Type: xt.TPixel, Default: "XtDefaultForeground"},
		{Name: "font", Class: "Font", Type: xt.TFont, Default: "fixed"},
		{Name: "list", Class: "List", Type: xt.TStringList, Default: ""},
		{Name: "numberStrings", Class: "NumberStrings", Type: xt.TInt, Default: "0"},
		{Name: "defaultColumns", Class: "Columns", Type: xt.TInt, Default: "2"},
		{Name: "forceColumns", Class: "Columns", Type: xt.TBoolean, Default: "False"},
		{Name: "internalWidth", Class: "Width", Type: xt.TDimension, Default: "2"},
		{Name: "internalHeight", Class: "Height", Type: xt.TDimension, Default: "2"},
		{Name: "columnSpacing", Class: "Spacing", Type: xt.TDimension, Default: "6"},
		{Name: "rowSpacing", Class: "Spacing", Type: xt.TDimension, Default: "2"},
		{Name: "verticalList", Class: "Boolean", Type: xt.TBoolean, Default: "False"},
		{Name: "pasteBuffer", Class: "Boolean", Type: xt.TBoolean, Default: "False"},
		{Name: "callback", Class: "Callback", Type: xt.TCallback, Default: ""},
	},
	DefaultTranslations: `<Btn1Down>: Set()
<Btn1Up>: Notify()`,
	Actions: map[string]xt.ActionProc{
		"Set":    listActionSet,
		"Unset":  listActionUnset,
		"Notify": listActionNotify,
	},
	PreferredSize: listPreferredSize,
	Redisplay:     listRedisplay,
	SetValues: func(w *xt.Widget, changed map[string]bool) {
		if changed["list"] {
			listState(w).highlight = -1
			if !w.Explicit("width") {
				pw, ph := listPreferredSize(w)
				w.RequestResize(pw, ph)
			}
		}
	},
}

type listPrivate struct {
	highlight int
}

func listState(w *xt.Widget) *listPrivate {
	st, ok := w.Private.(*listPrivate)
	if !ok {
		st = &listPrivate{highlight: -1}
		w.Private = st
	}
	return st
}

// ListReturn is XawListReturnStruct.
type ListReturn struct {
	String string
	Index  int
}

func listItems(w *xt.Widget) []string {
	items := w.StringList("list")
	if n := w.Int("numberStrings"); n > 0 && n < len(items) {
		items = items[:n]
	}
	return items
}

// listColumns returns the effective column count.
func listColumns(w *xt.Widget) int {
	cols := w.Int("defaultColumns")
	if w.Bool("verticalList") {
		cols = 1
	}
	if cols < 1 {
		cols = 1
	}
	return cols
}

// listCellSize computes a uniform cell size from the longest item.
func listCellSize(w *xt.Widget) (int, int) {
	f := w.FontRes("font")
	maxW := 1
	for _, it := range listItems(w) {
		if tw := f.TextWidth(it); tw > maxW {
			maxW = tw
		}
	}
	return maxW, f.Height()
}

func listPreferredSize(w *xt.Widget) (int, int) {
	items := listItems(w)
	cols := listColumns(w)
	rows := (len(items) + cols - 1) / cols
	if rows < 1 {
		rows = 1
	}
	cw, ch := listCellSize(w)
	width := cols*cw + (cols-1)*w.Int("columnSpacing") + 2*w.Int("internalWidth")
	height := rows*ch + (rows-1)*w.Int("rowSpacing") + 2*w.Int("internalHeight")
	return width, height
}

// listIndexAt maps window coordinates to an item index (-1 outside).
func listIndexAt(w *xt.Widget, x, y int) int {
	items := listItems(w)
	cols := listColumns(w)
	cw, ch := listCellSize(w)
	col := (x - w.Int("internalWidth")) / (cw + w.Int("columnSpacing"))
	row := (y - w.Int("internalHeight")) / (ch + w.Int("rowSpacing"))
	if col < 0 || row < 0 || col >= cols {
		return -1
	}
	idx := row*cols + col
	if idx >= len(items) {
		return -1
	}
	return idx
}

// listCellRect returns the cell rectangle of item i, one pixel wider on
// each side to cover the highlight bar.
func listCellRect(w *xt.Widget, i int) xproto.Rect {
	cols := listColumns(w)
	cw, ch := listCellSize(w)
	col := i % cols
	row := i / cols
	x := w.Int("internalWidth") + col*(cw+w.Int("columnSpacing"))
	y := w.Int("internalHeight") + row*(ch+w.Int("rowSpacing"))
	return xproto.Rect{X: x - 1, Y: y, W: cw + 2, H: ch}
}

// listSetHighlight moves the highlight and repaints only the two cells
// that changed instead of the whole list.
func listSetHighlight(w *xt.Widget, idx int) {
	st := listState(w)
	old := st.highlight
	if idx == old {
		return
	}
	st.highlight = idx
	n := len(listItems(w))
	if old >= 0 && old < n {
		w.RedrawRect(listCellRect(w, old))
	}
	if idx >= 0 && idx < n {
		w.RedrawRect(listCellRect(w, idx))
	}
}

func listActionSet(w *xt.Widget, ev *xproto.Event, _ []string) {
	listSetHighlight(w, listIndexAt(w, ev.X, ev.Y))
}

func listActionUnset(w *xt.Widget, _ *xproto.Event, _ []string) {
	listSetHighlight(w, -1)
}

func listActionNotify(w *xt.Widget, ev *xproto.Event, _ []string) {
	idx := listState(w).highlight
	items := listItems(w)
	if idx < 0 || idx >= len(items) {
		return
	}
	w.CallCallbacks("callback", xt.CallData{
		"i": strconv.Itoa(idx),
		"s": items[idx],
	})
}

// ListHighlight implements XawListHighlight.
func ListHighlight(w *xt.Widget, index int) {
	listSetHighlight(w, index)
}

// ListUnhighlight implements XawListUnhighlight.
func ListUnhighlight(w *xt.Widget) {
	listSetHighlight(w, -1)
}

// ListCurrent implements XawListShowCurrent.
func ListCurrent(w *xt.Widget) ListReturn {
	idx := listState(w).highlight
	items := listItems(w)
	if idx < 0 || idx >= len(items) {
		return ListReturn{Index: -1}
	}
	return ListReturn{String: items[idx], Index: idx}
}

// ListChange implements XawListChange: replace the items.
func ListChange(w *xt.Widget, items []string, resize bool) {
	w.SetResourceValue("list", append([]string(nil), items...))
	listState(w).highlight = -1
	if resize && !w.Explicit("width") {
		pw, ph := listPreferredSize(w)
		w.RequestResize(pw, ph)
	}
	w.Redraw()
}

func listRedisplay(w *xt.Widget) {
	d := w.Display()
	win := w.Window()
	clip := w.Clip()
	gc := d.NewGC()
	gc.Foreground = w.PixelRes("background")
	d.FillRectangle(win, gc, clip.X, clip.Y, clip.W, clip.H)
	gc.Foreground = w.PixelRes("foreground")
	gc.Font = w.FontRes("font")
	items := listItems(w)
	cols := listColumns(w)
	cw, ch := listCellSize(w)
	hl := listState(w).highlight
	for i, it := range items {
		col := i % cols
		row := i / cols
		x := w.Int("internalWidth") + col*(cw+w.Int("columnSpacing"))
		y := w.Int("internalHeight") + row*(ch+w.Int("rowSpacing"))
		if !w.ClipIntersects(x-1, y, cw+2, ch) {
			continue
		}
		if i == hl {
			d.FillRectangle(win, gc, x-1, y, cw+2, ch)
			inv := d.NewGC()
			inv.Foreground = w.PixelRes("background")
			inv.Font = gc.Font
			d.DrawString(win, inv, x, y+gc.Font.Ascent, it)
			continue
		}
		d.DrawString(win, gc, x, y+gc.Font.Ascent, it)
	}
}
