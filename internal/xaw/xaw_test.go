package xaw

import (
	"os"
	"strings"
	"testing"

	"wafe/internal/xproto"
	"wafe/internal/xt"
)

func newApp(t *testing.T) (*xt.App, *xt.Widget) {
	t.Helper()
	app := xt.NewTestApp("wafe")
	top, err := app.CreateWidget("topLevel", xt.ApplicationShellClass, nil, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	return app, top
}

func create(t *testing.T, app *xt.App, name string, class *xt.Class, parent *xt.Widget, args map[string]string) *xt.Widget {
	t.Helper()
	w, err := app.CreateWidget(name, class, parent, args, true)
	if err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	return w
}

func press(app *xt.App, w *xt.Widget) {
	d := w.Display()
	win, _ := d.Lookup(w.Window())
	x, y := win.RootCoords(2, 2)
	d.WarpPointer(x, y)
	d.InjectButtonPress(1)
	d.InjectButtonRelease(1)
	app.Pump()
}

// TestLabelResourceCount asserts the paper's measured number: 42
// resources for the Label class under Xaw3d.
func TestLabelResourceCount(t *testing.T) {
	app, top := newApp(t)
	w := create(t, app, "l", LabelClass, top, nil)
	names := w.ResourceNames()
	if len(names) != 42 {
		t.Errorf("Label has %d resources, paper reports 42:\n%s", len(names), strings.Join(names, " "))
	}
	prefix := strings.Join(names[:12], " ")
	want := "destroyCallback ancestorSensitive x y width height borderWidth sensitive screen depth colormap background"
	if prefix != want {
		t.Errorf("prefix = %q\nwant     %q", prefix, want)
	}
}

func TestLabelDefaultsToName(t *testing.T) {
	app, top := newApp(t)
	w := create(t, app, "hello", LabelClass, top, nil)
	if w.Str("label") != "hello" {
		t.Errorf("label = %q", w.Str("label"))
	}
	w2 := create(t, app, "l2", LabelClass, top, map[string]string{"label": "explicit"})
	if w2.Str("label") != "explicit" {
		t.Errorf("label = %q", w2.Str("label"))
	}
}

func TestLabelPreferredSizeTracksFont(t *testing.T) {
	app, top := newApp(t)
	w := create(t, app, "l", LabelClass, top, map[string]string{"label": "1234567890"})
	pw, ph := w.PreferredSize()
	// fixed font: 6px/char + 2*4 internal width.
	if pw != 6*10+8 {
		t.Errorf("preferred width = %d", pw)
	}
	if ph != 13+4 {
		t.Errorf("preferred height = %d", ph)
	}
}

func TestLabelColorsFromPaperExample(t *testing.T) {
	// label label1 topLevel background red foreground blue
	app, top := newApp(t)
	w := create(t, app, "label1", LabelClass, top, map[string]string{
		"background": "red", "foreground": "blue",
	})
	if w.PixelRes("background") != (xproto.Pixel{R: 255}) {
		t.Errorf("background = %v", w.PixelRes("background"))
	}
	if w.PixelRes("foreground") != (xproto.Pixel{B: 255}) {
		t.Errorf("foreground = %v", w.PixelRes("foreground"))
	}
	// setValues label1 background tomato label "Hi Man"
	if err := w.SetValues(map[string]string{"background": "tomato", "label": "Hi Man"}); err != nil {
		t.Fatal(err)
	}
	if w.PixelRes("background") != (xproto.Pixel{R: 255, G: 99, B: 71}) {
		t.Errorf("tomato = %v", w.PixelRes("background"))
	}
	if got, _ := w.GetValue("label"); got != "Hi Man" {
		t.Errorf("gV label = %q", got)
	}
}

func TestCommandPressFiresCallback(t *testing.T) {
	app, top := newApp(t)
	b := create(t, app, "quit", CommandClass, top, nil)
	fired := 0
	_ = b.AddCallback("callback", xt.Callback{Source: "quit", Proc: func(*xt.Widget, xt.CallData) { fired++ }})
	top.Realize()
	app.Pump()
	press(app, b)
	if fired != 1 {
		t.Errorf("callback fired %d times", fired)
	}
	// Press without release inside: set() then unset via leave+reset.
	if IsCommandSet(b) {
		t.Error("button still set after release")
	}
}

func TestCommandHighlightOnEnter(t *testing.T) {
	app, top := newApp(t)
	b := create(t, app, "b", CommandClass, top, nil)
	top.Realize()
	app.Pump()
	d := b.Display()
	win, _ := d.Lookup(b.Window())
	x, y := win.RootCoords(1, 1)
	d.WarpPointer(900, 900)
	app.Pump()
	d.WarpPointer(x, y)
	app.Pump()
	// Highlight drew an extra rectangle; just assert no errors and the
	// state toggles on leave.
	d.WarpPointer(900, 900)
	app.Pump()
	if errs := app.Errors(); len(errs) > 0 {
		t.Errorf("errors: %v", errs)
	}
}

func TestToggleState(t *testing.T) {
	app, top := newApp(t)
	tg := create(t, app, "tog", ToggleClass, top, nil)
	top.Realize()
	app.Pump()
	if tg.Bool("state") {
		t.Fatal("initial state true")
	}
	press(app, tg)
	if !tg.Bool("state") {
		t.Error("state not set after click")
	}
	press(app, tg)
	if tg.Bool("state") {
		t.Error("state not cleared after second click")
	}
}

func TestRadioGroup(t *testing.T) {
	app, top := newApp(t)
	box := create(t, app, "box", BoxClass, top, nil)
	a := create(t, app, "a", ToggleClass, box, nil)
	b := create(t, app, "b", ToggleClass, box, map[string]string{"radioGroup": "a"})
	_ = a.SetValues(map[string]string{"radioGroup": "a"})
	top.Realize()
	app.Pump()
	press(app, a)
	if !a.Bool("state") {
		t.Fatal("a not set")
	}
	press(app, b)
	if !b.Bool("state") || a.Bool("state") {
		t.Errorf("radio semantics: a=%v b=%v", a.Bool("state"), b.Bool("state"))
	}
}

// TestFormLayoutPaperExample reproduces the Perl demo's widget tree:
// input / result below / quit below / info right of quit.
func TestFormLayoutPaperExample(t *testing.T) {
	app, top := newApp(t)
	form := create(t, app, "top", FormClass, top, nil)
	input := create(t, app, "input", AsciiTextClass, form, map[string]string{"editType": "edit", "width": "200"})
	result := create(t, app, "result", LabelClass, form, map[string]string{"label": " ", "width": "200", "fromVert": "input"})
	quit := create(t, app, "quit", CommandClass, form, map[string]string{"fromVert": "result"})
	info := create(t, app, "info", LabelClass, form, map[string]string{
		"fromVert": "result", "fromHoriz": "quit", "label": " ", "borderWidth": "0", "width": "150"})
	top.Realize()
	app.Pump()
	if result.Int("y") <= input.Int("y") {
		t.Errorf("result not below input: %d vs %d", result.Int("y"), input.Int("y"))
	}
	if quit.Int("y") <= result.Int("y") {
		t.Errorf("quit not below result")
	}
	if info.Int("x") <= quit.Int("x") {
		t.Errorf("info not right of quit: %d vs %d", info.Int("x"), quit.Int("x"))
	}
	if info.Int("y") != quit.Int("y") {
		t.Errorf("info and quit rows differ: %d vs %d", info.Int("y"), quit.Int("y"))
	}
	// Explicit width honoured.
	if input.Int("width") != 200 {
		t.Errorf("input width = %d", input.Int("width"))
	}
}

func TestFormConstraintCycleIsSafe(t *testing.T) {
	app, top := newApp(t)
	form := create(t, app, "f", FormClass, top, nil)
	a := create(t, app, "a", LabelClass, form, nil)
	b := create(t, app, "b", LabelClass, form, map[string]string{"fromVert": "a"})
	_ = a.SetValues(map[string]string{"fromVert": "b"}) // cycle
	top.Realize()
	app.Pump() // must not hang or panic
	_ = b
}

func TestBoxOrientation(t *testing.T) {
	app, top := newApp(t)
	box := create(t, app, "box", BoxClass, top, map[string]string{"orientation": "horizontal"})
	a := create(t, app, "a", LabelClass, box, nil)
	b := create(t, app, "b", LabelClass, box, nil)
	top.Realize()
	app.Pump()
	if b.Int("x") <= a.Int("x") {
		t.Errorf("horizontal box: b.x=%d a.x=%d", b.Int("x"), a.Int("x"))
	}
	if a.Int("y") != b.Int("y") {
		t.Errorf("horizontal box rows differ")
	}
}

func TestPanedStacksChildren(t *testing.T) {
	app, top := newApp(t)
	paned := create(t, app, "p", PanedClass, top, nil)
	a := create(t, app, "pa", LabelClass, paned, nil)
	b := create(t, app, "pb", LabelClass, paned, nil)
	c := create(t, app, "pc", LabelClass, paned, nil)
	top.Realize()
	app.Pump()
	if !(a.Int("y") < b.Int("y") && b.Int("y") < c.Int("y")) {
		t.Errorf("paned order: %d %d %d", a.Int("y"), b.Int("y"), c.Int("y"))
	}
}

func TestPanedGripsResize(t *testing.T) {
	app, top := newApp(t)
	paned := create(t, app, "gp", PanedClass, top, nil)
	a := create(t, app, "ga", LabelClass, paned, map[string]string{"label": "upper pane"})
	b := create(t, app, "gb", LabelClass, paned, map[string]string{"label": "lower pane"})
	top.Realize()
	app.Pump()
	grip := app.WidgetByName("gaGrip")
	if grip == nil {
		t.Fatal("grip not created between panes")
	}
	if app.WidgetByName("gbGrip") != nil {
		t.Error("grip created after the last pane")
	}
	// Drag: press on the grip, move down 30px, release → pane a grows.
	d := grip.Display()
	win, _ := d.Lookup(grip.Window())
	gx, gy := win.RootCoords(2, 2)
	heightBefore := a.Int("height")
	d.WarpPointer(gx, gy)
	d.InjectButtonPress(1)
	app.Pump()
	d.WarpPointer(gx, gy+30)
	d.InjectButtonRelease(1)
	app.Pump()
	if a.Int("height") <= heightBefore {
		t.Errorf("pane height %d → %d, want growth", heightBefore, a.Int("height"))
	}
	if b.Int("y") <= a.Int("height") {
		t.Errorf("lower pane not pushed down: b.y=%d", b.Int("y"))
	}
	// showGrip false suppresses the grip.
	paned2 := create(t, app, "ng", PanedClass, top, nil)
	create(t, app, "na", LabelClass, paned2, map[string]string{"showGrip": "false"})
	create(t, app, "nb", LabelClass, paned2, nil)
	top.Realize()
	app.Pump()
	if app.WidgetByName("naGrip") != nil {
		t.Error("grip created despite showGrip false")
	}
}

func TestListSelectionCallback(t *testing.T) {
	app, top := newApp(t)
	lst := create(t, app, "chooseLst", ListClass, top, map[string]string{
		"list":         "alpha\nbeta\ngamma\ndelta",
		"verticalList": "true",
	})
	var gotIdx, gotStr string
	_ = lst.AddCallback("callback", xt.Callback{Proc: func(w *xt.Widget, d xt.CallData) {
		gotIdx, gotStr = d["i"], d["s"]
	}})
	top.Realize()
	app.Pump()
	// Click the third row.
	d := lst.Display()
	win, _ := d.Lookup(lst.Window())
	_, ch := listCellSize(lst)
	x, y := win.RootCoords(3, lst.Int("internalHeight")+2*(ch+lst.Int("rowSpacing"))+1)
	d.WarpPointer(x, y)
	d.InjectButtonPress(1)
	d.InjectButtonRelease(1)
	app.Pump()
	if gotIdx != "2" || gotStr != "gamma" {
		t.Errorf("callback data = i=%q s=%q", gotIdx, gotStr)
	}
	if cur := ListCurrent(lst); cur.Index != 2 || cur.String != "gamma" {
		t.Errorf("ListCurrent = %+v", cur)
	}
	ListUnhighlight(lst)
	if cur := ListCurrent(lst); cur.Index != -1 {
		t.Errorf("after unhighlight: %+v", cur)
	}
}

func TestListChange(t *testing.T) {
	app, top := newApp(t)
	lst := create(t, app, "l", ListClass, top, map[string]string{"list": "a\nb"})
	top.Realize()
	ListChange(lst, []string{"x", "y", "z"}, true)
	if got := lst.StringList("list"); len(got) != 3 || got[2] != "z" {
		t.Errorf("list = %v", got)
	}
}

func TestAsciiTextTyping(t *testing.T) {
	app, top := newApp(t)
	txt := create(t, app, "input", AsciiTextClass, top, map[string]string{"editType": "edit", "width": "200"})
	top.Realize()
	app.Pump()
	d := txt.Display()
	d.SetInputFocus(txt.Window())
	if err := d.TypeString("360"); err != nil {
		t.Fatal(err)
	}
	app.Pump()
	if txt.Str("string") != "360" {
		t.Errorf("buffer = %q", txt.Str("string"))
	}
	// BackSpace deletes.
	code, _ := d.Keymap().KeycodeFor("BackSpace")
	d.InjectKeycode(code, true)
	d.InjectKeycode(code, false)
	app.Pump()
	if txt.Str("string") != "36" {
		t.Errorf("after backspace = %q", txt.Str("string"))
	}
	// Read-only widget ignores keys.
	ro := create(t, app, "ro", AsciiTextClass, top, nil)
	_ = ro
	roW := create(t, app, "ro2", AsciiTextClass, top, map[string]string{"string": "fixed"})
	d.SetInputFocus(roW.Window())
	top.Realize()
	app.Pump()
	_ = d.TypeString("x")
	app.Pump()
	if roW.Str("string") != "fixed" {
		t.Errorf("read-only buffer changed: %q", roW.Str("string"))
	}
}

func TestAsciiTextFileType(t *testing.T) {
	app, top := newApp(t)
	dir := t.TempDir()
	file := dir + "/content.txt"
	if err := os.WriteFile(file, []byte("line one\nline two"), 0o644); err != nil {
		t.Fatal(err)
	}
	txt := create(t, app, "ft", AsciiTextClass, top, map[string]string{"type": "file", "string": file})
	if got := TextBuffer(txt); got != "line one\nline two" {
		t.Errorf("file buffer = %q", got)
	}
	// The string resource still reads back as the file name.
	if got, _ := txt.GetValue("string"); got != file {
		t.Errorf("string resource = %q", got)
	}
	top.Realize()
	app.Pump()
	drawn := strings.Join(txt.Display().StringsDrawn(txt.Window()), "|")
	if !strings.Contains(drawn, "line two") {
		t.Errorf("file content not drawn: %q", drawn)
	}
	// File widgets are read-only.
	d := txt.Display()
	d.SetInputFocus(txt.Window())
	_ = d.TypeString("x")
	app.Pump()
	if TextBuffer(txt) != "line one\nline two" {
		t.Error("file buffer edited")
	}
	// Missing files render a diagnostic instead of crashing.
	missing := create(t, app, "mf", AsciiTextClass, top, map[string]string{"type": "file", "string": dir + "/nope"})
	if got := TextBuffer(missing); !strings.Contains(got, "cannot read") {
		t.Errorf("missing file buffer = %q", got)
	}
}

// TestTextSelectionOwnsPrimary: dragging over text selects it and owns
// the PRIMARY selection; Btn2 pastes it elsewhere.
func TestTextSelectionOwnsPrimary(t *testing.T) {
	app, top := newApp(t)
	box := create(t, app, "selbox", BoxClass, top, nil)
	src := create(t, app, "selsrc", AsciiTextClass, box, map[string]string{
		"editType": "edit", "string": "hello world", "width": "200"})
	dst := create(t, app, "seldst", AsciiTextClass, box, map[string]string{
		"editType": "edit", "width": "200"})
	top.Realize()
	app.Pump()
	d := src.Display()
	win, _ := d.Lookup(src.Window())
	f := src.FontRes("font")
	// Drag from character 0 to character 5 ("hello").
	x0, y0 := win.RootCoords(2, 2+f.Height()/2)
	d.WarpPointer(x0, y0)
	d.InjectButtonPress(1)
	app.Pump()
	d.WarpPointer(x0+5*f.Width, y0)
	app.Pump()
	d.InjectButtonRelease(1)
	app.Pump()
	s, e, text := TextSelection(src)
	if text != "hello" {
		t.Fatalf("selection = [%d,%d) %q", s, e, text)
	}
	if d.SelectionOwner("PRIMARY") != src.Window() {
		t.Fatal("PRIMARY not owned")
	}
	if v, ok := d.ConvertSelection("PRIMARY", "STRING"); !ok || v != "hello" {
		t.Fatalf("PRIMARY value = %q/%v", v, ok)
	}
	// Paste into dst with Btn2.
	dwin, _ := d.Lookup(dst.Window())
	px, py := dwin.RootCoords(2, 2)
	d.WarpPointer(px, py)
	d.InjectButtonPress(2)
	d.InjectButtonRelease(2)
	app.Pump()
	if dst.Str("string") != "hello" {
		t.Errorf("paste result = %q", dst.Str("string"))
	}
}

// TestScrollbarDragWithImplicitGrab: Btn2Motion drags move the thumb
// continuously even when the pointer leaves the bar.
func TestScrollbarDragWithImplicitGrab(t *testing.T) {
	app, top := newApp(t)
	sb := create(t, app, "dragbar", ScrollbarClass, top, map[string]string{"length": "100"})
	var fractions []string
	_ = sb.AddCallback("jumpProc", xt.Callback{Proc: func(_ *xt.Widget, d xt.CallData) {
		fractions = append(fractions, d["f"])
	}})
	top.Realize()
	app.Pump()
	d := sb.Display()
	win, _ := d.Lookup(sb.Window())
	x, y := win.RootCoords(5, 10)
	d.WarpPointer(x, y)
	d.InjectButtonPress(2)
	app.Pump()
	d.WarpPointer(x, y+40) // drag down, pointer may exit the 14px-wide bar
	app.Pump()
	d.WarpPointer(x+30, y+70) // way outside; implicit grab keeps delivery
	app.Pump()
	d.InjectButtonRelease(2)
	app.Pump()
	if len(fractions) < 3 {
		t.Fatalf("jumpProc calls = %v", fractions)
	}
	last := fractions[len(fractions)-1]
	if last == fractions[0] {
		t.Errorf("thumb did not move: %v", fractions)
	}
}

func TestAsciiTextSetStringClampsCaret(t *testing.T) {
	app, top := newApp(t)
	txt := create(t, app, "t", AsciiTextClass, top, map[string]string{"editType": "edit", "string": "hello"})
	txt.SetResourceValue("insertPosition", 5)
	if err := txt.SetValues(map[string]string{"string": "hi"}); err != nil {
		t.Fatal(err)
	}
	if txt.Int("insertPosition") > 2 {
		t.Errorf("caret not clamped: %d", txt.Int("insertPosition"))
	}
	_ = top
}

// TestMenuButtonEnterWindowOverride reproduces the paper's action
// example: override the MenuButton translations so the menu pops up on
// EnterWindow.
func TestMenuButtonEnterWindowOverride(t *testing.T) {
	app, top := newApp(t)
	mb := create(t, app, "mb", MenuButtonClass, top, map[string]string{"menuName": "mymenu"})
	menu, err := app.CreateWidget("mymenu", SimpleMenuClass, top, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	create(t, app, "e1", SmeBSBClass, menu, map[string]string{"label": "first"})
	top.Realize()
	app.Pump()
	// action mb override "<EnterWindow>: PopupMenu()"
	nt, err := xt.ParseTranslations("<EnterWindow>: PopupMenu()")
	if err != nil {
		t.Fatal(err)
	}
	merged := mustTranslations(mb).Merge(nt, xt.MergeOverride)
	mb.SetResourceValue("translations", merged)
	mb.UpdateInputMask()
	d := mb.Display()
	d.WarpPointer(900, 900)
	app.Pump()
	win, _ := d.Lookup(mb.Window())
	x, y := win.RootCoords(2, 2)
	d.WarpPointer(x, y)
	app.Pump()
	if !menu.IsPoppedUp() {
		t.Error("menu did not pop up on EnterWindow")
	}
}

func mustTranslations(w *xt.Widget) *xt.Translations {
	if v, ok := w.Get("translations"); ok {
		if tt, ok := v.(*xt.Translations); ok {
			return tt
		}
	}
	return nil
}

func TestSimpleMenuNotify(t *testing.T) {
	app, top := newApp(t)
	top.Realize()
	menu, _ := app.CreateWidget("menu", SimpleMenuClass, top, nil, false)
	var picked string
	e1 := create(t, app, "open", SmeBSBClass, menu, nil)
	e2 := create(t, app, "close", SmeBSBClass, menu, nil)
	_ = e1.AddCallback("callback", xt.Callback{Proc: func(w *xt.Widget, _ xt.CallData) { picked = "open" }})
	_ = e2.AddCallback("callback", xt.Callback{Proc: func(w *xt.Widget, _ xt.CallData) { picked = "close" }})
	_ = menu.Popup(xt.GrabExclusive)
	app.Pump()
	d := menu.Display()
	win, _ := d.Lookup(menu.Window())
	rh := menuRowHeight(menu)
	x, y := win.RootCoords(5, menu.Int("topMargin")+rh+2) // second row
	d.WarpPointer(x, y)
	d.InjectButtonPress(1)
	d.InjectButtonRelease(1)
	app.Pump()
	if picked != "close" {
		t.Errorf("picked = %q", picked)
	}
	if menu.IsPoppedUp() {
		t.Error("menu should pop down after notify")
	}
}

func TestScrollbarThumb(t *testing.T) {
	app, top := newApp(t)
	sb := create(t, app, "sb", ScrollbarClass, top, map[string]string{"length": "100"})
	var jumped string
	_ = sb.AddCallback("jumpProc", xt.Callback{Proc: func(w *xt.Widget, d xt.CallData) { jumped = d["f"] }})
	top.Realize()
	app.Pump()
	d := sb.Display()
	win, _ := d.Lookup(sb.Window())
	x, y := win.RootCoords(5, 50) // half way down
	d.WarpPointer(x, y)
	d.InjectButtonPress(2)
	app.Pump()
	if jumped == "" {
		t.Fatal("jumpProc not called")
	}
	if !strings.HasPrefix(jumped, "0.5") {
		t.Errorf("thumb fraction = %q", jumped)
	}
	ScrollbarSetThumb(sb, 0.25, 0.5)
	if got := sbFloat(sb, "topOfThumb"); got != 0.25 {
		t.Errorf("topOfThumb = %v", got)
	}
}

func TestViewportClipsChild(t *testing.T) {
	app, top := newApp(t)
	vp := create(t, app, "vp", ViewportClass, top, map[string]string{"width": "100", "height": "50", "allowVert": "true"})
	big := create(t, app, "big", ListClass, vp, map[string]string{"list": strings.Repeat("item\n", 50) + "last"})
	top.Realize()
	app.Pump()
	if vp.Int("width") != 100 || vp.Int("height") != 50 {
		t.Errorf("viewport size = %dx%d", vp.Int("width"), vp.Int("height"))
	}
	if big.Int("height") <= 50 {
		t.Errorf("child should keep preferred height, got %d", big.Int("height"))
	}
}

func TestViewportScrolling(t *testing.T) {
	app, top := newApp(t)
	vp := create(t, app, "vp", ViewportClass, top, map[string]string{
		"width": "100", "height": "40", "allowVert": "true"})
	big := create(t, app, "big", ListClass, vp, map[string]string{
		"list": strings.Repeat("row\n", 40) + "last", "verticalList": "true"})
	top.Realize()
	app.Pump()
	if x, y := ViewportLocation(vp); x != 0 || y != 0 {
		t.Fatalf("initial offset = %d,%d", x, y)
	}
	ViewportSetLocation(vp, 0, 0.5)
	_, offY := ViewportLocation(vp)
	if offY <= 0 {
		t.Fatalf("scroll had no effect: offY=%d", offY)
	}
	if big.Int("y") != -offY {
		t.Errorf("child y = %d, want %d", big.Int("y"), -offY)
	}
	// Horizontal scrolling disabled → x offset forced to zero.
	ViewportSetLocation(vp, 0.5, 0.5)
	offX, _ := ViewportLocation(vp)
	if offX != 0 {
		t.Errorf("allowHoriz=false but offX=%d", offX)
	}
	// Scrolling past the end clamps.
	ViewportSetLocation(vp, 0, 5.0)
	_, offY = ViewportLocation(vp)
	if offY > big.Int("height") {
		t.Errorf("offset %d beyond child height %d", offY, big.Int("height"))
	}
}

func TestViewportAutoScrollbar(t *testing.T) {
	app, top := newApp(t)
	vp := create(t, app, "avp", ViewportClass, top, map[string]string{
		"width": "100", "height": "40", "allowVert": "true"})
	create(t, app, "abig", ListClass, vp, map[string]string{
		"list": strings.Repeat("row\n", 30) + "end", "verticalList": "true"})
	top.Realize()
	app.Pump()
	sb := app.WidgetByName("avpVScroll")
	if sb == nil {
		t.Fatal("scrollbar not auto-created")
	}
	if sb.Class != ScrollbarClass {
		t.Fatalf("scrollbar class = %s", sb.Class.Name)
	}
	// Dragging its thumb scrolls the viewport.
	d := sb.Display()
	win, ok := d.Lookup(sb.Window())
	if !ok {
		t.Fatal("scrollbar has no window")
	}
	x, y := win.RootCoords(3, 20) // half way down the 40px bar
	d.WarpPointer(x, y)
	d.InjectButtonPress(2)
	app.Pump()
	if _, offY := ViewportLocation(vp); offY <= 0 {
		t.Errorf("thumb drag did not scroll (offY=%d)", offY)
	}
	// No scrollbar without allowVert.
	vp2 := create(t, app, "plainvp", ViewportClass, top, map[string]string{"width": "50", "height": "20"})
	create(t, app, "pbig", LabelClass, vp2, nil)
	top.Realize()
	app.Pump()
	if app.WidgetByName("plainvpVScroll") != nil {
		t.Error("scrollbar created without allowVert")
	}
}

func TestDialogValue(t *testing.T) {
	app, top := newApp(t)
	top.Realize()
	shell, _ := app.CreateWidget("popup", xt.TransientShellClass, top, nil, false)
	dlg := create(t, app, "dialog", DialogClass, shell, map[string]string{"label": "Name?", "value": "initial"})
	if DialogValue(dlg) != "initial" {
		t.Errorf("value = %q", DialogValue(dlg))
	}
	_ = dlg.SetValues(map[string]string{"value": "edited"})
	if DialogValue(dlg) != "edited" {
		t.Errorf("value = %q", DialogValue(dlg))
	}
}

func TestStripChart(t *testing.T) {
	app, top := newApp(t)
	sc := create(t, app, "chart", StripChartClass, top, nil)
	top.Realize()
	app.Pump()
	for _, v := range []float64{1, 5, 2} {
		StripChartAddSample(sc, v)
	}
	if got := StripChartSamples(sc); len(got) != 3 || got[1] != 5 {
		t.Errorf("samples = %v", got)
	}
}

func TestGripCallback(t *testing.T) {
	app, top := newApp(t)
	g := create(t, app, "grip", GripClass, top, nil)
	var actions []string
	_ = g.AddCallback("callback", xt.Callback{Proc: func(w *xt.Widget, d xt.CallData) {
		actions = append(actions, d["action"])
	}})
	top.Realize()
	app.Pump()
	press(app, g)
	if strings.Join(actions, ",") != "press,release" {
		t.Errorf("grip actions = %v", actions)
	}
}

func TestAllClassesCreatable(t *testing.T) {
	app, top := newApp(t)
	// Every class in the registry must instantiate without error.
	parentFor := func(c *xt.Class) *xt.Widget { return top }
	menu, _ := app.CreateWidget("menushell", SimpleMenuClass, top, nil, false)
	for i, c := range AllClasses() {
		p := parentFor(c)
		if c.IsSubclassOf(SmeClass) {
			p = menu
		}
		if c == SimpleMenuClass {
			continue // created above
		}
		name := "w" + string(rune('a'+i))
		if _, err := app.CreateWidget(name, c, p, nil, !c.Shell); err != nil {
			t.Errorf("create %s: %v", c.Name, err)
		}
	}
	top.Realize()
	app.Pump()
	if errs := app.Errors(); len(errs) > 0 {
		t.Errorf("dispatch errors: %v", errs)
	}
}
