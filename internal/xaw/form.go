package xaw

import (
	"fmt"

	"wafe/internal/xt"
)

// FormClass is the Athena constraint widget: children are positioned
// relative to each other with the fromVert/fromHoriz constraints the
// paper's Perl example uses.
var FormClass = &xt.Class{
	Name:      "Form",
	Super:     xt.ConstraintClass,
	Composite: true,
	Resources: []xt.Resource{
		{Name: "defaultDistance", Class: "Thickness", Type: xt.TDimension, Default: "4"},
	},
	Constraints: []xt.Resource{
		{Name: "fromVert", Class: "Widget", Type: xt.TWidget, Default: ""},
		{Name: "fromHoriz", Class: "Widget", Type: xt.TWidget, Default: ""},
		{Name: "horizDistance", Class: "Thickness", Type: xt.TDimension, Default: "4"},
		{Name: "vertDistance", Class: "Thickness", Type: xt.TDimension, Default: "4"},
		{Name: "top", Class: "Edge", Type: xt.TString, Default: "rubber"},
		{Name: "bottom", Class: "Edge", Type: xt.TString, Default: "rubber"},
		{Name: "left", Class: "Edge", Type: xt.TString, Default: "rubber"},
		{Name: "right", Class: "Edge", Type: xt.TString, Default: "rubber"},
		{Name: "resizable", Class: "Boolean", Type: xt.TBoolean, Default: "False"},
	},
	ChangeManaged: formLayout,
	PreferredSize: formPreferredSize,
	Resize:        func(w *xt.Widget) { formPlace(w) },
}

// formAllowResize is the XawFormAllowResize state; Wafe exposes it as
// the formAllowResize command.
var formResizeDisabled = map[*xt.Widget]bool{}

// FormAllowResize implements XawFormAllowResize.
func FormAllowResize(w *xt.Widget, allow bool) {
	if allow {
		delete(formResizeDisabled, w)
	} else {
		formResizeDisabled[w] = true
	}
}

func constraintWidget(c *xt.Widget, name string) *xt.Widget {
	if v, ok := c.Get(name); ok {
		if w, ok := v.(*xt.Widget); ok {
			return w
		}
	}
	return nil
}

// formPlace computes child positions from their constraints.
func formPlace(w *xt.Widget) map[*xt.Widget][4]int {
	placed := make(map[*xt.Widget][4]int) // x, y, w, h
	kids := w.ManagedChildren()
	dd := w.Int("defaultDistance")
	var place func(c *xt.Widget) [4]int
	visiting := map[*xt.Widget]bool{}
	place = func(c *xt.Widget) [4]int {
		if g, ok := placed[c]; ok {
			return g
		}
		if visiting[c] {
			// Constraint cycle: fall back to origin.
			return [4]int{dd, dd, 1, 1}
		}
		visiting[c] = true
		defer delete(visiting, c)
		cw, ch := c.PreferredSize()
		x, y := dd, dd
		if fh := constraintWidget(c, "fromHoriz"); fh != nil && fh.Parent == w && fh.IsManaged() {
			g := place(fh)
			x = g[0] + g[2] + 2*fh.Int("borderWidth") + c.Int("horizDistance")
		}
		if fv := constraintWidget(c, "fromVert"); fv != nil && fv.Parent == w && fv.IsManaged() {
			g := place(fv)
			y = g[1] + g[3] + 2*fv.Int("borderWidth") + c.Int("vertDistance")
		}
		g := [4]int{x, y, cw, ch}
		placed[c] = g
		return g
	}
	for _, c := range kids {
		place(c)
	}
	for c, g := range placed {
		c.SetChildGeometry(g[0], g[1], g[2], g[3])
	}
	return placed
}

func formLayout(w *xt.Widget) {
	placed := formPlace(w)
	if formResizeDisabled[w] {
		return
	}
	// Size the form to enclose its children unless explicitly sized.
	maxX, maxY := 1, 1
	dd := w.Int("defaultDistance")
	for c, g := range placed {
		bw := c.Int("borderWidth")
		if r := g[0] + g[2] + 2*bw + dd; r > maxX {
			maxX = r
		}
		if b := g[1] + g[3] + 2*bw + dd; b > maxY {
			maxY = b
		}
	}
	if !w.Explicit("width") || !w.Explicit("height") {
		nw, nh := w.Int("width"), w.Int("height")
		if !w.Explicit("width") {
			nw = maxX
		}
		if !w.Explicit("height") {
			nh = maxY
		}
		if nw != w.Int("width") || nh != w.Int("height") {
			w.RequestResize(nw, nh)
		}
	}
}

func formPreferredSize(w *xt.Widget) (int, int) {
	placed := formPlace(w)
	maxX, maxY := 1, 1
	dd := w.Int("defaultDistance")
	for c, g := range placed {
		bw := c.Int("borderWidth")
		if r := g[0] + g[2] + 2*bw + dd; r > maxX {
			maxX = r
		}
		if b := g[1] + g[3] + 2*bw + dd; b > maxY {
			maxY = b
		}
	}
	return maxX, maxY
}

// BoxClass packs children in rows (or a column when vertical).
var BoxClass = &xt.Class{
	Name:      "Box",
	Super:     xt.CompositeClass,
	Composite: true,
	Resources: []xt.Resource{
		{Name: "hSpace", Class: "HSpace", Type: xt.TDimension, Default: "4"},
		{Name: "vSpace", Class: "VSpace", Type: xt.TDimension, Default: "4"},
		{Name: "orientation", Class: "Orientation", Type: xt.TOrientation, Default: "vertical"},
	},
	ChangeManaged: boxLayout,
	PreferredSize: boxPreferredSize,
	Resize:        func(w *xt.Widget) { boxPlace(w) },
}

func boxPlace(w *xt.Widget) (int, int) {
	hs, vs := w.Int("hSpace"), w.Int("vSpace")
	x, y := hs, vs
	maxX, maxY := 1, 1
	horizontal := w.Str("orientation") == "horizontal"
	for _, c := range w.ManagedChildren() {
		cw, ch := c.PreferredSize()
		bw := c.Int("borderWidth")
		c.SetChildGeometry(x, y, cw, ch)
		if horizontal {
			x += cw + 2*bw + hs
			if y+ch+2*bw+vs > maxY {
				maxY = y + ch + 2*bw + vs
			}
			maxX = x
		} else {
			y += ch + 2*bw + vs
			if x+cw+2*bw+hs > maxX {
				maxX = x + cw + 2*bw + hs
			}
			maxY = y
		}
	}
	return maxX, maxY
}

func boxLayout(w *xt.Widget) {
	maxX, maxY := boxPlace(w)
	if !w.Explicit("width") || !w.Explicit("height") {
		nw, nh := w.Int("width"), w.Int("height")
		if !w.Explicit("width") {
			nw = maxX
		}
		if !w.Explicit("height") {
			nh = maxY
		}
		w.RequestResize(nw, nh)
	}
}

func boxPreferredSize(w *xt.Widget) (int, int) { return boxPlace(w) }

// PanedClass stacks children vertically (or horizontally) with grips
// between panes.
var PanedClass = &xt.Class{
	Name:      "Paned",
	Super:     xt.ConstraintClass,
	Composite: true,
	Resources: []xt.Resource{
		{Name: "orientation", Class: "Orientation", Type: xt.TOrientation, Default: "vertical"},
		{Name: "internalBorderWidth", Class: "BorderWidth", Type: xt.TDimension, Default: "1"},
	},
	Constraints: []xt.Resource{
		{Name: "min", Class: "Min", Type: xt.TDimension, Default: "1"},
		{Name: "max", Class: "Max", Type: xt.TDimension, Default: "10000"},
		{Name: "preferredPaneSize", Class: "PreferredPaneSize", Type: xt.TDimension, Default: "0"},
		{Name: "skipAdjust", Class: "Boolean", Type: xt.TBoolean, Default: "False"},
		{Name: "showGrip", Class: "ShowGrip", Type: xt.TBoolean, Default: "True"},
	},
	ChangeManaged: panedLayout,
	PreferredSize: panedPreferredSize,
	Resize:        func(w *xt.Widget) { panedPlace(w) },
}

// panedPrivate guards grip creation against layout recursion.
type panedPrivate struct {
	creatingGrips bool
}

func panedState(w *xt.Widget) *panedPrivate {
	st, ok := w.Private.(*panedPrivate)
	if !ok {
		st = &panedPrivate{}
		w.Private = st
	}
	return st
}

// panedGripName names the grip that follows a pane.
func panedGripName(pane *xt.Widget) string { return pane.Name + "Grip" }

// panedPanes returns the managed children that are real panes (not
// grips).
func panedPanes(w *xt.Widget) []*xt.Widget {
	var out []*xt.Widget
	for _, c := range w.ManagedChildren() {
		if c.Class == GripClass {
			continue
		}
		out = append(out, c)
	}
	return out
}

// ensurePanedGrip creates (once) the grip following a pane and wires
// its release callback to resize the pane — the Xaw drag-to-resize
// protocol in its committed-on-release form.
func ensurePanedGrip(w, pane *xt.Widget) *xt.Widget {
	name := panedGripName(pane)
	if g := w.App().WidgetByName(name); g != nil {
		return g
	}
	st := panedState(w)
	if st.creatingGrips {
		return nil
	}
	st.creatingGrips = true
	defer func() { st.creatingGrips = false }()
	g, err := w.App().CreateWidget(name, GripClass, w, nil, true)
	if err != nil {
		return nil
	}
	paned, thisPane := w, pane
	_ = g.AddCallback("callback", xt.Callback{
		Source: "paned grip",
		Proc: func(grip *xt.Widget, data xt.CallData) {
			if data["action"] != "release" {
				return
			}
			// The new boundary is the pointer position relative to the
			// pane's top (vertical) or left (horizontal).
			_, _, _ = grip, paned, thisPane
			px, py, _ := paned.Display().Pointer()
			if pw, ok := paned.Display().Lookup(paned.Window()); ok {
				ox, oy := pw.RootCoords(0, 0)
				var newSize int
				if paned.Str("orientation") != "horizontal" {
					newSize = (py - oy) - thisPane.Int("y")
				} else {
					newSize = (px - ox) - thisPane.Int("x")
				}
				lo, hi := thisPane.Int("min"), thisPane.Int("max")
				newSize = clampInt(newSize, maxInt(lo, 1), hi)
				thisPane.SetResourceValue("preferredPaneSize", newSize)
				panedPlace(paned)
				paned.Redraw()
			}
		},
	})
	return g
}

func panedPlace(w *xt.Widget) (int, int) {
	ib := w.Int("internalBorderWidth")
	vertical := w.Str("orientation") != "horizontal"
	pos := 0
	maxCross := 1
	panes := panedPanes(w)
	for i, c := range panes {
		cw, ch := c.PreferredSize()
		if p := c.Int("preferredPaneSize"); p > 0 {
			if vertical {
				ch = p
			} else {
				cw = p
			}
		}
		if vertical {
			c.SetChildGeometry(0, pos, maxInt(cw, w.Int("width")), ch)
			pos += ch + 2*c.Int("borderWidth") + ib
			if cw > maxCross {
				maxCross = cw
			}
		} else {
			c.SetChildGeometry(pos, 0, cw, maxInt(ch, w.Int("height")))
			pos += cw + 2*c.Int("borderWidth") + ib
			if ch > maxCross {
				maxCross = ch
			}
		}
		// A grip sits on each internal boundary (not after the last
		// pane) when the pane asks for one.
		if i < len(panes)-1 && c.Bool("showGrip") {
			if g := ensurePanedGrip(w, c); g != nil {
				gw, gh := g.PreferredSize()
				if vertical {
					g.SetChildGeometry(maxInt(w.Int("width")-gw-w.Int("internalBorderWidth")-10, 0), pos-gh/2-ib, gw, gh)
				} else {
					g.SetChildGeometry(pos-gw/2-ib, maxInt(w.Int("height")-gh-10, 0), gw, gh)
				}
			}
		}
	}
	if vertical {
		return maxCross, maxInt(pos, 1)
	}
	return maxInt(pos, 1), maxCross
}

func panedLayout(w *xt.Widget) {
	pw, ph := panedPlace(w)
	if !w.Explicit("width") || !w.Explicit("height") {
		nw, nh := w.Int("width"), w.Int("height")
		if !w.Explicit("width") {
			nw = pw
		}
		if !w.Explicit("height") {
			nh = ph
		}
		w.RequestResize(nw, nh)
	}
}

func panedPreferredSize(w *xt.Widget) (int, int) { return panedPlace(w) }

// ViewportClass clips a single child and provides scrollbars.
var ViewportClass = &xt.Class{
	Name:      "Viewport",
	Super:     FormClass,
	Composite: true,
	Resources: []xt.Resource{
		{Name: "allowHoriz", Class: "Boolean", Type: xt.TBoolean, Default: "False"},
		{Name: "allowVert", Class: "Boolean", Type: xt.TBoolean, Default: "False"},
		{Name: "forceBars", Class: "Boolean", Type: xt.TBoolean, Default: "False"},
		{Name: "useBottom", Class: "Boolean", Type: xt.TBoolean, Default: "False"},
		{Name: "useRight", Class: "Boolean", Type: xt.TBoolean, Default: "False"},
	},
	ChangeManaged: viewportLayout,
	PreferredSize: viewportPreferredSize,
	Resize:        func(w *xt.Widget) { viewportLayout(w) },
}

// viewportPrivate holds the scroll offsets.
type viewportPrivate struct {
	offX, offY int
}

func viewportState(w *xt.Widget) *viewportPrivate {
	st, ok := w.Private.(*viewportPrivate)
	if !ok {
		st = &viewportPrivate{}
		w.Private = st
	}
	return st
}

// ViewportSetLocation implements XawViewportSetLocation: scroll the
// child so that (xFrac, yFrac) of it is at the viewport origin.
func ViewportSetLocation(w *xt.Widget, xFrac, yFrac float64) {
	c := viewportMainChild(w)
	if c == nil {
		return
	}
	st := viewportState(w)
	cw, ch := c.Int("width"), c.Int("height")
	st.offX = clampInt(int(xFrac*float64(cw)), 0, maxInt(cw-w.Int("width"), 0))
	st.offY = clampInt(int(yFrac*float64(ch)), 0, maxInt(ch-w.Int("height"), 0))
	if !w.Bool("allowHoriz") {
		st.offX = 0
	}
	if !w.Bool("allowVert") {
		st.offY = 0
	}
	c.SetChildGeometry(-st.offX, -st.offY, cw, ch)
	w.Redraw()
}

// ViewportLocation returns the current scroll offsets in pixels.
func ViewportLocation(w *xt.Widget) (int, int) {
	st := viewportState(w)
	return st.offX, st.offY
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// viewportScrollName names the auto-created vertical scrollbar.
func viewportScrollName(w *xt.Widget) string { return w.Name + "VScroll" }

// viewportMainChild returns the scrolled child, skipping the
// auto-created scrollbar.
func viewportMainChild(w *xt.Widget) *xt.Widget {
	for _, c := range w.ManagedChildren() {
		if c.Name != viewportScrollName(w) {
			return c
		}
	}
	return nil
}

// ensureViewportBars creates the vertical scrollbar when allowVert (or
// forceBars) asks for one, wiring its jumpProc to ViewportSetLocation —
// the Xaw behaviour of Viewport creating its own Scrollbar children.
func ensureViewportBars(w *xt.Widget) {
	if !w.Bool("allowVert") && !w.Bool("forceBars") {
		return
	}
	name := viewportScrollName(w)
	if w.App().WidgetByName(name) != nil {
		return
	}
	sb, err := w.App().CreateWidget(name, ScrollbarClass, w, map[string]string{
		"orientation": "vertical",
	}, false)
	if err != nil {
		return
	}
	vp := w
	_ = sb.AddCallback("jumpProc", xt.Callback{
		Source: "viewport scroll",
		Proc: func(_ *xt.Widget, data xt.CallData) {
			var frac float64
			if v, ok := data["f"]; ok {
				if _, err := fmt.Sscanf(v, "%g", &frac); err != nil {
					return
				}
			}
			ViewportSetLocation(vp, 0, frac)
		},
	})
	sb.Manage()
}

func viewportLayout(w *xt.Widget) {
	ensureViewportBars(w)
	c := viewportMainChild(w)
	if c == nil {
		return
	}
	cw, ch := c.PreferredSize()
	st := viewportState(w)
	// The child keeps its preferred size; the viewport clips it and
	// offsets it by the current scroll position.
	c.SetChildGeometry(-st.offX, -st.offY, cw, ch)
	if !w.Explicit("width") || !w.Explicit("height") {
		nw, nh := w.Int("width"), w.Int("height")
		if !w.Explicit("width") {
			nw = minInt(cw, 300)
		}
		if !w.Explicit("height") {
			nh = minInt(ch, 300)
		}
		w.RequestResize(nw, nh)
	}
	// Pin the scrollbar to the right edge and keep its thumb in sync.
	if sb := w.App().WidgetByName(viewportScrollName(w)); sb != nil && sb.IsManaged() {
		thickness := sb.Int("thickness")
		sb.SetChildGeometry(w.Int("width")-thickness, 0, thickness, w.Int("height"))
		if ch > 0 {
			shown := float64(w.Int("height")) / float64(ch)
			if shown > 1 {
				shown = 1
			}
			sb.SetResourceValue("shown", shown)
			sb.SetResourceValue("topOfThumb", float64(st.offY)/float64(ch))
		}
	}
}

func viewportPreferredSize(w *xt.Widget) (int, int) {
	c := viewportMainChild(w)
	if c == nil {
		return maxInt(w.Int("width"), 1), maxInt(w.Int("height"), 1)
	}
	return c.PreferredSize()
}

// DialogClass is a Form with a label, an optional editable value and
// button children; XawDialogGetValueString maps to DialogValue.
var DialogClass = &xt.Class{
	Name:      "Dialog",
	Super:     FormClass,
	Composite: true,
	Resources: []xt.Resource{
		{Name: "label", Class: "Label", Type: xt.TString, Default: ""},
		{Name: "value", Class: "Value", Type: xt.TString, Default: ""},
		{Name: "icon", Class: "Icon", Type: xt.TBitmap, Default: ""},
	},
	ChangeManaged: formLayout,
	PreferredSize: dialogPreferredSize,
	Redisplay: func(w *xt.Widget) {
		d := w.Display()
		clip := w.Clip()
		gc := d.NewGC()
		gc.Foreground = w.PixelRes("background")
		d.FillRectangle(w.Window(), gc, clip.X, clip.Y, clip.W, clip.H)
		gc.Foreground = w.PixelRes("borderColor")
		f := gc.Font
		if label := w.Str("label"); w.ClipIntersects(4, 2, f.TextWidth(label), f.Height()) {
			d.DrawString(w.Window(), gc, 4, f.Ascent+2, label)
		}
		if v := w.Str("value"); v != "" && w.ClipIntersects(4, 2*f.Height()+2-f.Ascent, f.TextWidth(v), f.Height()) {
			d.DrawString(w.Window(), gc, 4, 2*f.Height()+2, v)
		}
	},
}

func dialogPreferredSize(w *xt.Widget) (int, int) {
	fw, fh := formPreferredSize(w)
	f := w.App()
	_ = f
	labelW := 6*len(w.Str("label")) + 8
	if labelW > fw {
		fw = labelW
	}
	return fw, fh + 2*13 // room for label and value lines
}

// DialogValue returns the dialog's value string
// (XawDialogGetValueString).
func DialogValue(w *xt.Widget) string { return w.Str("value") }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
