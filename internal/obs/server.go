package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// ServerMetrics is the serve-mode registry: one *Metrics per live
// session (created by AddSession, carried by the session's Wafe), plus
// the aggregate counters the server itself maintains. The aggregate
// Snapshot is what --debug-addr publishes in serve mode and what every
// session's statistics command appends under the server.* prefix.
//
// Completed sessions keep their final metric snapshot (bounded by
// DoneLimit) so the exit dump can report every session of a bounded
// run, while a long-lived server does not grow without bound.
type ServerMetrics struct {
	// SessionsActive tracks the number of live sessions (its Max is the
	// high watermark of the run).
	SessionsActive Gauge
	// SessionsTotal counts every session ever started.
	SessionsTotal Counter
	// SessionEnds classifies every session departure:
	// quit / eof / readerr / panic / shutdown.
	SessionEnds CounterVec
	// Refused counts connections turned away by the session bound.
	Refused Counter
	// AcceptErrors counts transient listener failures.
	AcceptErrors Counter
	// DispatchLatency aggregates per-line handling latency across all
	// sessions (each session also records into its own
	// frontend.line_latency histogram).
	DispatchLatency Histogram
	// SessionLines / SessionErrors are per-session labelled counters:
	// command lines handled and eval errors, keyed by session id.
	SessionLines  CounterVec
	SessionErrors CounterVec

	// DoneLimit bounds retained snapshots of completed sessions
	// (<= 0 means the default of 4096).
	DoneLimit int

	mu        sync.Mutex
	live      map[string]*Metrics
	done      map[string]map[string]int64
	doneSpans map[string][]Span
	doneOrder []string
}

// NewServer returns an empty serve-mode registry.
func NewServer() *ServerMetrics {
	return &ServerMetrics{
		live:      make(map[string]*Metrics),
		done:      make(map[string]map[string]int64),
		doneSpans: make(map[string][]Span),
	}
}

// AddSession registers a new session and returns its private metrics
// registry. The registry's Extra hook is left to the caller (the serve
// layer points it at this ServerMetrics so per-session statistics
// include the aggregates).
func (s *ServerMetrics) AddSession(id string) *Metrics {
	m := New()
	s.mu.Lock()
	s.live[id] = m
	n := int64(len(s.live))
	s.mu.Unlock()
	s.SessionsTotal.Inc()
	s.SessionsActive.Observe(n)
	return m
}

// EndSession retires a session: its final snapshot — and, when it
// traced, its last DumpTraceCap spans — is retained (up to DoneLimit
// sessions), the live map shrinks, and the departure is classified.
func (s *ServerMetrics) EndSession(id, reason string) {
	s.mu.Lock()
	m := s.live[id]
	delete(s.live, id)
	n := int64(len(s.live))
	if m != nil {
		limit := s.DoneLimit
		if limit <= 0 {
			limit = 4096
		}
		final := make(map[string]int64)
		for _, sam := range m.SnapshotBase() {
			final[sam.Name] = sam.Value
		}
		s.done[id] = final
		if spans := lastN(m.Trace.Spans(), DumpTraceCap); len(spans) > 0 {
			s.doneSpans[id] = spans
		}
		s.doneOrder = append(s.doneOrder, id)
		for len(s.doneOrder) > limit {
			delete(s.done, s.doneOrder[0])
			delete(s.doneSpans, s.doneOrder[0])
			s.doneOrder = s.doneOrder[1:]
		}
	}
	s.mu.Unlock()
	s.SessionsActive.Observe(n)
	s.SessionEnds.Inc(reason)
}

// Session returns the live registry for a session id, or nil.
func (s *ServerMetrics) Session(id string) *Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live[id]
}

// Active returns the number of live sessions.
func (s *ServerMetrics) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}

// Snapshot returns the aggregate server.* samples: the server's own
// counters plus aggregates computed over the live sessions (summed
// eval counts, max queue depths). It never descends into a session's
// full Snapshot, so a session whose Extra hook points back here cannot
// recurse.
func (s *ServerMetrics) Snapshot() []Sample {
	s.mu.Lock()
	var evals, lines, errs, queueMax int64
	for _, m := range s.live {
		evals += m.Tcl.Evals.Load()
		lines += m.Frontend.CommandLines.Load()
		errs += m.Frontend.EvalErrors.Load()
		if q := m.Xt.PostedQueueDepth.Max(); q > queueMax {
			queueMax = q
		}
	}
	s.mu.Unlock()
	out := []Sample{
		{"server.sessions_active", s.SessionsActive.Load()},
		{"server.sessions_active_max", s.SessionsActive.Max()},
		{"server.sessions_total", s.SessionsTotal.Load()},
		{"server.refused", s.Refused.Load()},
		{"server.accept_errors", s.AcceptErrors.Load()},
		{"server.live_evals", evals},
		{"server.live_command_lines", lines},
		{"server.live_eval_errors", errs},
		{"server.live_queue_depth_max", queueMax},
	}
	out = vecSamples("server.session_ends", &s.SessionEnds, out)
	out = histSamples("server.dispatch_latency", &s.DispatchLatency, out)
	return out
}

// serverDump is the serve-mode --metrics-dump document: the aggregate
// plus one object per session (live sessions snapshotted now, completed
// sessions at their final state), keyed by session id; sessions with a
// tracer enabled also contribute their recent spans (capped at
// DumpTraceCap each, completed sessions keeping their retained tail),
// again keyed by session id.
type serverDump struct {
	Server   map[string]int64            `json:"server"`
	Sessions map[string]map[string]int64 `json:"sessions"`
	Spans    map[string][]Span           `json:"spans,omitempty"`
}

// WriteJSON writes the serve-mode metrics document.
func (s *ServerMetrics) WriteJSON(w io.Writer) error {
	d := serverDump{
		Server:   make(map[string]int64),
		Sessions: make(map[string]map[string]int64),
	}
	for _, sam := range s.Snapshot() {
		d.Server[sam.Name] = sam.Value
	}
	s.mu.Lock()
	liveIDs := make([]string, 0, len(s.live))
	for id := range s.live {
		liveIDs = append(liveIDs, id)
	}
	sort.Strings(liveIDs)
	liveMetrics := make([]*Metrics, len(liveIDs))
	for i, id := range liveIDs {
		liveMetrics[i] = s.live[id]
	}
	for id, final := range s.done {
		d.Sessions[id] = final
	}
	for id, spans := range s.doneSpans {
		if d.Spans == nil {
			d.Spans = make(map[string][]Span)
		}
		d.Spans[id] = spans
	}
	s.mu.Unlock()
	// Snapshot live sessions outside the lock: SnapshotBase walks
	// lock-free atomics only.
	for i, id := range liveIDs {
		final := make(map[string]int64)
		for _, sam := range liveMetrics[i].SnapshotBase() {
			final[sam.Name] = sam.Value
		}
		d.Sessions[id] = final
		if spans := lastN(liveMetrics[i].Trace.Spans(), DumpTraceCap); len(spans) > 0 {
			if d.Spans == nil {
				d.Spans = make(map[string][]Span)
			}
			d.Spans[id] = spans
		}
	}
	return json.NewEncoder(w).Encode(d)
}

// SessionSpans returns the recent spans of every session that has
// recorded any — live sessions' full rings plus completed sessions'
// retained tails — keyed by session id; the serve-layer view behind
// the aggregate span dump.
func (s *ServerMetrics) SessionSpans() map[string][]Span {
	s.mu.Lock()
	live := make([]*Metrics, 0, len(s.live))
	ids := make([]string, 0, len(s.live))
	for id, m := range s.live {
		ids = append(ids, id)
		live = append(live, m)
	}
	out := make(map[string][]Span, len(s.doneSpans))
	for id, spans := range s.doneSpans {
		out[id] = spans
	}
	s.mu.Unlock()
	for i, m := range live {
		if spans := m.Trace.Spans(); len(spans) > 0 {
			out[ids[i]] = spans
		}
	}
	return out
}
