// Package obs is Wafe's runtime observability layer: low-overhead
// metric primitives (atomic counters, gauges, fixed-bucket latency
// histograms, labelled counter vectors), a bounded ring buffer of
// recent trace events, and the aggregate Metrics registry the
// statistics/traceOn commands and the --metrics-dump / --debug-addr
// flags expose.
//
// The layer is designed to be zero-cost when disabled: every
// instrumented hot path holds a typed metrics pointer that is nil
// until observability is enabled, so the only cost in the disabled
// state is one pointer comparison per instrumented site. All
// primitives are safe for concurrent use — the event loop writes while
// the optional debug HTTP endpoint reads.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge tracks a last-seen value and its high watermark.
type Gauge struct {
	cur atomic.Int64
	max atomic.Int64
}

// Observe records v, updating the high watermark.
func (g *Gauge) Observe(v int64) {
	g.cur.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Load returns the last observed value.
func (g *Gauge) Load() int64 { return g.cur.Load() }

// Max returns the high watermark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// histBuckets is the number of histogram buckets. Bucket i counts
// observations with d < histBase<<i nanoseconds; the last bucket is
// the overflow bucket.
const histBuckets = 24

// histBase is the upper bound of bucket 0 in nanoseconds (128ns);
// doubling per bucket puts the last boundary at ~1s.
const histBase = 128

// Histogram is a fixed-bucket latency histogram with power-of-two
// nanosecond boundaries. Observations are lock-free atomic adds.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := 0
	for bound := int64(histBase); i < histBuckets-1 && ns >= bound; i++ {
		bound <<= 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed duration in nanoseconds.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the mean observed duration in nanoseconds (0 when
// empty).
func (h *Histogram) Mean() int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Load() / n
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q
// <= 1) in nanoseconds: the upper boundary of the bucket holding the
// q-th observation. The overflow bucket reports the observed maximum.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen int64
	bound := int64(histBase)
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == histBuckets-1 {
				return h.max.Load()
			}
			return bound
		}
		bound <<= 1
	}
	return h.max.Load()
}

// Buckets returns a copy of the bucket counts (tests, JSON dump).
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, histBuckets)
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// BucketBound returns the upper nanosecond boundary of bucket i (the
// overflow bucket has no boundary and returns -1).
func BucketBound(i int) int64 {
	if i >= histBuckets-1 {
		return -1
	}
	return histBase << i
}

// CounterVec is a set of counters keyed by a label (command name,
// draw-op name, ...). Lookups take a read lock; labels are created on
// first use.
type CounterVec struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// Inc increments the counter for the label.
func (v *CounterVec) Inc(label string) { v.Counter(label).Inc() }

// Counter returns the counter behind a label, creating it on first
// use. Hot paths that always hit the same label (a serve-mode session
// counting its own lines) hold the pointer and skip the map lookup.
func (v *CounterVec) Counter(label string) *Counter {
	v.mu.RLock()
	c := v.m[label]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	if v.m == nil {
		v.m = make(map[string]*Counter)
	}
	c = v.m[label]
	if c == nil {
		c = &Counter{}
		v.m[label] = c
	}
	v.mu.Unlock()
	return c
}

// Get returns the current value for the label (0 when unseen).
func (v *CounterVec) Get(label string) int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	c := v.m[label]
	if c == nil {
		return 0
	}
	return c.Load()
}

// Snapshot returns all label→value pairs.
func (v *CounterVec) Snapshot() map[string]int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.m))
	for k, c := range v.m {
		out[k] = c.Load()
	}
	return out
}
