package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file implements Prometheus text-format exposition
// (https://prometheus.io/docs/instrumenting/exposition_formats/) for
// the metrics registries. Unlike Snapshot — which flattens histograms
// to count/mean/p50/p99/max for the Tcl-facing statistics list — the
// Prometheus form keeps the full bucket layout (cumulative `le`
// series in seconds), and labelled counter vectors become one series
// per label instead of one dotted name per label.

// promName maps a dotted snapshot name to a Prometheus metric name:
// wafe_ prefix, dots to underscores.
func promName(name string) string {
	return "wafe_" + strings.ReplaceAll(name, ".", "_")
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promWriter accumulates exposition lines, remembering the first write
// error so call sites stay linear.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// scalar emits one TYPE-annotated single-value metric.
func (p *promWriter) scalar(name, typ string, v int64) {
	n := promName(name)
	p.printf("# TYPE %s %s\n%s %d\n", n, typ, n, v)
}

// vec emits one counter per label under a single metric name.
func (p *promWriter) vec(name, label string, v *CounterVec) {
	n := promName(name)
	snap := v.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	p.printf("# TYPE %s counter\n", n)
	for _, k := range keys {
		p.printf("%s{%s=\"%s\"} %d\n", n, label, promEscape(k), snap[k])
	}
}

// histogram emits the full bucket layout as a Prometheus histogram:
// cumulative bucket counts with `le` upper bounds in seconds, then
// _sum (seconds) and _count. The overflow bucket maps to le="+Inf".
func (p *promWriter) histogram(name string, h *Histogram) {
	n := promName(name)
	p.printf("# TYPE %s histogram\n", n)
	var cum int64
	for i, c := range h.Buckets() {
		cum += c
		bound := BucketBound(i)
		if bound < 0 {
			p.printf("%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		} else {
			p.printf("%s_bucket{le=%q} %d\n", n, formatSeconds(bound), cum)
		}
	}
	p.printf("%s_sum %s\n", n, formatSeconds(h.Sum()))
	p.printf("%s_count %d\n", n, h.Count())
}

// formatSeconds renders nanoseconds as a decimal seconds literal
// without float rounding artifacts (128ns → "0.000000128").
func formatSeconds(ns int64) string {
	sec := ns / 1e9
	frac := ns % 1e9
	if frac == 0 {
		return fmt.Sprintf("%d", sec)
	}
	s := fmt.Sprintf("%d.%09d", sec, frac)
	return strings.TrimRight(s, "0")
}

// WritePrometheus writes the single-session registry in Prometheus
// text format.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	p := &promWriter{w: w}
	t := &m.Tcl
	p.scalar("tcl.evals", "counter", t.Evals.Load())
	p.scalar("tcl.script_cache.hits", "counter", t.ScriptCacheHits.Load())
	p.scalar("tcl.script_cache.misses", "counter", t.ScriptCacheMisses.Load())
	p.scalar("tcl.expr_cache.hits", "counter", t.ExprCacheHits.Load())
	p.scalar("tcl.expr_cache.misses", "counter", t.ExprCacheMisses.Load())
	p.histogram("tcl.eval_latency_seconds", &t.EvalLatency)
	p.vec("tcl.dispatch", "command", &t.Dispatch)

	x := &m.Xt
	p.scalar("xt.events_dispatched", "counter", x.EventsDispatched.Load())
	p.scalar("xt.event_queue_depth", "gauge", x.EventQueueDepth.Load())
	p.scalar("xt.event_queue_depth_max", "gauge", x.EventQueueDepth.Max())
	p.scalar("xt.posted_queue_depth_max", "gauge", x.PostedQueueDepth.Max())
	p.scalar("xt.callbacks_fired", "counter", x.CallbacksFired.Load())
	p.scalar("xt.actions_fired", "counter", x.ActionsFired.Load())
	p.scalar("xt.xrm_searchlist_hits", "counter", x.XrmSearchListHits.Load())
	p.scalar("xt.xrm_searchlist_misses", "counter", x.XrmSearchListMisses.Load())
	p.scalar("xt.xrm_generation", "gauge", x.XrmGeneration.Load())
	p.histogram("xt.dispatch_latency_seconds", &x.DispatchLatency)

	pr := &m.Xproto
	p.scalar("xproto.events_queued", "counter", pr.EventsQueued.Load())
	p.vec("xproto.requests", "op", &pr.Requests)

	f := &m.Frontend
	p.scalar("frontend.command_lines", "counter", f.CommandLines.Load())
	p.scalar("frontend.passed_lines", "counter", f.PassedLines.Load())
	p.scalar("frontend.overlong_lines", "counter", f.OverlongLines.Load())
	p.scalar("frontend.eval_errors", "counter", f.EvalErrors.Load())
	p.scalar("frontend.mass_transfers", "counter", f.MassTransfers.Load())
	p.scalar("frontend.mass_bytes", "counter", f.MassBytes.Load())
	p.scalar("frontend.read_errors", "counter", f.ReadErrors.Load())
	p.scalar("frontend.backend_restarts", "counter", f.BackendRestarts.Load())
	p.scalar("frontend.backend_uptime_ms", "gauge", f.BackendUptime.Load())
	p.scalar("frontend.backend_uptime_ms_max", "gauge", f.BackendUptime.Max())
	p.vec("frontend.backend_exits", "class", &f.BackendExits)
	p.histogram("frontend.line_latency_seconds", &f.LineLatency)
	return p.err
}

// WritePrometheus writes the serve-mode aggregate in Prometheus text
// format: the server's own counters, the live-session aggregates the
// Snapshot computes, the aggregate dispatch histogram with buckets,
// and the per-session line/error counters labelled by session id.
func (s *ServerMetrics) WritePrometheus(w io.Writer) error {
	p := &promWriter{w: w}
	s.mu.Lock()
	var evals, lines, errs, queueMax int64
	for _, m := range s.live {
		evals += m.Tcl.Evals.Load()
		lines += m.Frontend.CommandLines.Load()
		errs += m.Frontend.EvalErrors.Load()
		if q := m.Xt.PostedQueueDepth.Max(); q > queueMax {
			queueMax = q
		}
	}
	s.mu.Unlock()
	p.scalar("server.sessions_active", "gauge", s.SessionsActive.Load())
	p.scalar("server.sessions_active_max", "gauge", s.SessionsActive.Max())
	p.scalar("server.sessions_total", "counter", s.SessionsTotal.Load())
	p.scalar("server.refused", "counter", s.Refused.Load())
	p.scalar("server.accept_errors", "counter", s.AcceptErrors.Load())
	p.scalar("server.live_evals", "gauge", evals)
	p.scalar("server.live_command_lines", "gauge", lines)
	p.scalar("server.live_eval_errors", "gauge", errs)
	p.scalar("server.live_queue_depth_max", "gauge", queueMax)
	p.vec("server.session_ends", "reason", &s.SessionEnds)
	p.vec("server.session_lines", "session", &s.SessionLines)
	p.vec("server.session_errors", "session", &s.SessionErrors)
	p.histogram("server.dispatch_latency_seconds", &s.DispatchLatency)
	return p.err
}
