package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Span is one timed region of a request: a backend protocol line, a
// top-level tcl eval, a proc call, an xt dispatch/callback/action, or
// an xproto request. Parent links make the chain a tree rooted at the
// protocol line (Parent == 0), so a slow line can be decomposed into
// the eval → dispatch → request path that caused it.
type Span struct {
	ID      uint64        `json:"id"`
	Parent  uint64        `json:"parent,omitempty"`
	Session string        `json:"session,omitempty"`
	Kind    string        `json:"kind"`
	Name    string        `json:"name"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"dur_ns"`
	Attrs   string        `json:"attrs,omitempty"`
}

// SpanRing is a bounded ring buffer of completed spans, the span
// counterpart of Ring: writers never block, old spans are overwritten.
type SpanRing struct {
	r ring[Span]
}

// NewSpanRing returns a ring holding the last n spans (n <= 0 picks
// DefaultRingSize).
func NewSpanRing(n int) *SpanRing { return &SpanRing{r: newRing[Span](n)} }

// Push appends a span, overwriting the oldest once full.
func (s *SpanRing) Push(sp Span) { s.r.push(sp) }

// Len returns the number of spans currently held.
func (s *SpanRing) Len() int { return s.r.len() }

// Spans returns the held spans, oldest first.
func (s *SpanRing) Spans() []Span { return s.r.items() }

// SpanCtx is the context-free propagation handle StartSpan returns: a
// plain value the call site keeps on its stack, no context plumbing
// through layer APIs. The zero SpanCtx is the disabled no-op — tracing
// off (or no tracer attached) yields id 0 and End does nothing, so
// call sites need no enabled checks beyond the one StartSpan performs.
type SpanCtx struct {
	t      *Trace
	id     uint64
	parent uint64
	kind   string
	name   string
	start  time.Time
}

// StartSpan opens a span and makes it the current parent for spans
// started until End. Disabled tracing costs exactly one atomic load.
//
// Span nesting relies on each session being single-threaded through
// its event loop (the same invariant the interpreter itself depends
// on): all StartSpan/End pairs for one Trace happen on that goroutine,
// so the parent swap is well-ordered; the atomic keeps concurrent
// readers (Spans, the debug endpoint) race-free.
func (t *Trace) StartSpan(kind, name string) SpanCtx {
	if !t.enabled.Load() {
		return SpanCtx{}
	}
	id := t.seq.Add(1)
	parent := t.cur.Swap(id)
	return SpanCtx{t: t, id: id, parent: parent, kind: kind, name: name, start: time.Now()}
}

// Active reports whether the span is live (tracing was enabled when it
// started); callers use it to skip building names/attrs.
func (c SpanCtx) Active() bool { return c.id != 0 }

// End closes the span, restores its parent as current, and records it.
// A zero SpanCtx (disabled at StartSpan time) is a no-op.
func (c SpanCtx) End() { c.EndAttrs("") }

// EndAttrs is End with a free-form attribute string recorded on the
// span (callers build attrs only after checking Active, so the
// disabled path never pays the formatting).
func (c SpanCtx) EndAttrs(attrs string) {
	if c.id == 0 {
		return
	}
	c.t.cur.CompareAndSwap(c.id, c.parent)
	c.t.record(Span{
		ID:     c.id,
		Parent: c.parent,
		Kind:   c.kind,
		Name:   c.name,
		Start:  c.start,
		Dur:    time.Since(c.start),
		Attrs:  attrs,
	})
}

// Instant records a zero-duration span parented to the current span —
// a point event in the tree (one xproto request, a supervisor
// lifecycle transition). Disabled tracing costs one atomic load.
func (t *Trace) Instant(kind, name string) {
	if !t.enabled.Load() {
		return
	}
	t.record(Span{
		ID:     t.seq.Add(1),
		Parent: t.cur.Load(),
		Kind:   kind,
		Name:   name,
		Start:  time.Now(),
	})
}

// record finalises a span into the ring, attaching the session id.
func (t *Trace) record(sp Span) {
	t.mu.Lock()
	sp.Session = t.session
	if t.spans == nil {
		t.spans = NewSpanRing(t.ringSize)
	}
	t.spans.Push(sp)
	t.mu.Unlock()
}

// Spans returns the completed spans, oldest first.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	ring := t.spans
	t.mu.Unlock()
	if ring == nil {
		return nil
	}
	return ring.Spans()
}

// Clear drops all recorded spans and trace events (the `trace clear`
// command) without touching the enabled flag or the ring size.
func (t *Trace) Clear() {
	t.mu.Lock()
	t.spans = nil
	t.ring = nil
	t.mu.Unlock()
	t.cur.Store(0)
}

// FormatSpanList renders spans one per entry as
//
//	<id> <parent> <kind> <name> <dur_us>
//
// in recording order; the trace spans command wraps each as a Tcl
// sub-list.
func FormatSpanList(spans []Span) []string {
	out := make([]string, 0, len(spans))
	for _, sp := range spans {
		out = append(out, fmt.Sprintf("%d %d %s %s %d",
			sp.ID, sp.Parent, sp.Kind, sp.Name, sp.Dur.Microseconds()))
	}
	return out
}

// RenderSpanTree renders the span forest (or, when root != 0, the
// subtree under that id) as an indented multi-line listing:
//
//	line "sV b label x" 812µs (id 7)
//	  eval "sV b label x" 790µs (id 8)
//	    callback "b.activate" 310µs (id 9)
//
// Spans whose parent was evicted from the ring are promoted to roots
// so nothing recorded is hidden.
func RenderSpanTree(spans []Span, root uint64) string {
	byID := make(map[uint64]bool, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = true
	}
	children := make(map[uint64][]Span)
	var roots []Span
	for _, sp := range spans {
		switch {
		case root != 0 && sp.ID == root:
			roots = append(roots, sp)
		case root != 0:
			children[sp.Parent] = append(children[sp.Parent], sp)
		case sp.Parent == 0 || !byID[sp.Parent]:
			roots = append(roots, sp)
		default:
			children[sp.Parent] = append(children[sp.Parent], sp)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ID < roots[j].ID })
	var b strings.Builder
	var walk func(sp Span, depth int)
	walk = func(sp Span, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s %q %dµs (id %d)\n", sp.Kind, sp.Name, sp.Dur.Microseconds(), sp.ID)
		kids := children[sp.ID]
		sort.Slice(kids, func(i, j int) bool { return kids[i].ID < kids[j].ID })
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return strings.TrimRight(b.String(), "\n")
}
