package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanDisabledIsNoop(t *testing.T) {
	var tr Trace
	sp := tr.StartSpan("line", "ignored")
	if sp.Active() {
		t.Fatal("disabled StartSpan returned an active span")
	}
	sp.End()
	tr.Instant("xproto", "ignored")
	if got := tr.Spans(); len(got) != 0 {
		t.Fatalf("disabled trace recorded %d spans", len(got))
	}
}

func TestSpanParentLinks(t *testing.T) {
	var tr Trace
	tr.SetEnabled(true)
	line := tr.StartSpan("line", "%sV b label x")
	eval := tr.StartSpan("eval", "sV b label x")
	tr.Instant("xproto", "DrawString")
	eval.End()
	cb := tr.StartSpan("callback", "b.activate")
	cb.EndAttrs("data=click")
	line.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	lineSp := byName["%sV b label x"]
	if lineSp.Parent != 0 {
		t.Errorf("line parent = %d, want 0 (root)", lineSp.Parent)
	}
	if got := byName["sV b label x"].Parent; got != lineSp.ID {
		t.Errorf("eval parent = %d, want line id %d", got, lineSp.ID)
	}
	if got := byName["DrawString"].Parent; got != byName["sV b label x"].ID {
		t.Errorf("instant parent = %d, want eval id", got)
	}
	cbSp := byName["b.activate"]
	if cbSp.Parent != lineSp.ID {
		t.Errorf("callback parent = %d, want line id %d (eval ended)", cbSp.Parent, lineSp.ID)
	}
	if cbSp.Attrs != "data=click" {
		t.Errorf("callback attrs = %q", cbSp.Attrs)
	}
	if byName["DrawString"].Dur != 0 {
		t.Errorf("instant has nonzero duration %v", byName["DrawString"].Dur)
	}
}

func TestSpanRingEvictsOldest(t *testing.T) {
	var tr Trace
	tr.SetRingSize(3)
	tr.SetEnabled(true)
	for i := 0; i < 7; i++ {
		tr.StartSpan("eval", "e"+strconv.Itoa(i)).End()
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want ring size 3", len(spans))
	}
	for i, sp := range spans {
		if want := "e" + strconv.Itoa(4+i); sp.Name != want {
			t.Errorf("span %d = %s, want %s", i, sp.Name, want)
		}
	}
	if tr.RingSize() != 3 {
		t.Errorf("RingSize = %d", tr.RingSize())
	}
}

func TestSpanClear(t *testing.T) {
	var tr Trace
	tr.SetEnabled(true)
	tr.StartSpan("line", "a").End()
	tr.Emit("cmd", "a")
	tr.Clear()
	if len(tr.Spans()) != 0 || len(tr.Events()) != 0 {
		t.Fatal("Clear left spans or events behind")
	}
	// Recording still works after Clear, and parents restart at root.
	tr.StartSpan("line", "b").End()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Parent != 0 {
		t.Fatalf("post-Clear spans = %+v", spans)
	}
}

func TestSpanSessionStamp(t *testing.T) {
	var tr Trace
	tr.SetSession("s7")
	tr.SetEnabled(true)
	tr.StartSpan("line", "x").End()
	if spans := tr.Spans(); len(spans) != 1 || spans[0].Session != "s7" {
		t.Fatalf("spans = %+v, want session s7", spans)
	}
	if tr.Session() != "s7" {
		t.Errorf("Session() = %q", tr.Session())
	}
}

func TestRenderSpanTree(t *testing.T) {
	spans := []Span{
		{ID: 1, Kind: "line", Name: "%echo hi", Dur: 5 * time.Microsecond},
		{ID: 2, Parent: 1, Kind: "eval", Name: "echo hi", Dur: 3 * time.Microsecond},
		{ID: 3, Parent: 2, Kind: "xproto", Name: "DrawString"},
		{ID: 4, Parent: 99, Kind: "eval", Name: "orphan"}, // evicted parent
	}
	out := RenderSpanTree(spans, 0)
	want := "line \"%echo hi\" 5µs (id 1)\n" +
		"  eval \"echo hi\" 3µs (id 2)\n" +
		"    xproto \"DrawString\" 0µs (id 3)\n" +
		"eval \"orphan\" 0µs (id 4)"
	if out != want {
		t.Errorf("tree =\n%s\nwant\n%s", out, want)
	}
	sub := RenderSpanTree(spans, 2)
	if !strings.HasPrefix(sub, "eval \"echo hi\"") || !strings.Contains(sub, "DrawString") || strings.Contains(sub, "line") {
		t.Errorf("subtree = %q", sub)
	}
	if list := FormatSpanList(spans[:1]); list[0] != "1 0 line %echo hi 5" {
		t.Errorf("span list = %q", list[0])
	}
}

// TestTraceConcurrency hammers one Trace from parallel goroutines doing
// everything the serve-mode surfaces do concurrently — span recording
// on the session goroutine vs. snapshot readers, sink swaps, ring
// resizes — and relies on -race for the verdict.
func TestTraceConcurrency(t *testing.T) {
	var tr Trace
	tr.SetEnabled(true)
	var wg sync.WaitGroup
	// Writer: the session event loop (span nesting is single-threaded
	// per session; one writer goroutine models that).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			sp := tr.StartSpan("eval", "e")
			tr.Instant("xproto", "op")
			sp.End()
			tr.Emit("cmd", "line")
			if i%64 == 0 {
				tr.Clear()
			}
		}
	}()
	// Readers and reconfigurers: debug endpoint, metricsDump, traceOn.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch (i + g) % 4 {
				case 0:
					_ = tr.Spans()
				case 1:
					_ = tr.Events()
				case 2:
					tr.SetSink(func(string) {})
				case 3:
					tr.SetRingSize(16 + i%16)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestRingConcurrency: parallel Push vs Events on the raw ring.
func TestRingConcurrency(t *testing.T) {
	r := NewRing(32)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if g%2 == 0 {
					r.Push(TraceEvent{Seq: uint64(i)})
				} else {
					_ = r.Events()
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Len() == 0 {
		t.Error("ring empty after pushes")
	}
}

// TestServerSampleNamesDistinct is the regression test for serve-mode
// aggregation: the server.* aggregate sample names a session's Extra
// hook appends must never collide with the session's own SnapshotBase
// names, or statistics would report one name twice with different
// values.
func TestServerSampleNamesDistinct(t *testing.T) {
	sm := NewServer()
	m := sm.AddSession("s1")
	m.Extra = sm.Snapshot
	sm.SessionLines.Counter("s1").Inc()
	sm.SessionErrors.Counter("s1").Inc()
	sm.SessionEnds.Inc("eof")
	sm.DispatchLatency.Observe(time.Millisecond)

	base := make(map[string]bool)
	for _, s := range m.SnapshotBase() {
		if base[s.Name] {
			t.Errorf("SnapshotBase repeats %s", s.Name)
		}
		base[s.Name] = true
	}
	seen := make(map[string]bool)
	for _, s := range m.Snapshot() {
		if seen[s.Name] {
			t.Errorf("statistics name %s appears twice", s.Name)
		}
		seen[s.Name] = true
		if strings.HasPrefix(s.Name, "server.") && base[s.Name] {
			t.Errorf("aggregate name %s collides with a session name", s.Name)
		}
	}
	for _, s := range sm.Snapshot() {
		if !strings.HasPrefix(s.Name, "server.") {
			t.Errorf("aggregate sample %s lacks the server. prefix", s.Name)
		}
		if base[s.Name] {
			t.Errorf("aggregate name %s collides with per-session name", s.Name)
		}
	}
}

// TestServerRetainsEndedSessionSpans: a traced session that ends
// before the exit dump keeps its span tail — SessionSpans and the
// JSON document still carry it, keyed by session id, and eviction of
// the oldest done session drops its spans too.
func TestServerRetainsEndedSessionSpans(t *testing.T) {
	sm := NewServer()
	sm.DoneLimit = 1
	m := sm.AddSession("s1")
	m.Trace.SetSession("s1")
	m.Trace.SetEnabled(true)
	m.Trace.StartSpan("line", "%echo hi").End()
	sm.EndSession("s1", "quit")

	agg := sm.SessionSpans()
	if len(agg["s1"]) != 1 || agg["s1"][0].Name != "%echo hi" {
		t.Fatalf("SessionSpans after end = %v", agg)
	}
	var sb strings.Builder
	if err := sm.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"spans":{"s1":`) {
		t.Errorf("dump misses ended session spans: %s", sb.String())
	}
	// A second ended session evicts the first (DoneLimit 1), spans
	// included.
	m2 := sm.AddSession("s2")
	m2.Trace.SetEnabled(true)
	m2.Trace.StartSpan("line", "%quit").End()
	sm.EndSession("s2", "quit")
	agg = sm.SessionSpans()
	if len(agg["s1"]) != 0 {
		t.Errorf("evicted session s1 still has spans: %v", agg["s1"])
	}
	if len(agg["s2"]) != 1 {
		t.Errorf("retained session s2 spans = %v", agg["s2"])
	}
}

func TestProfilerMath(t *testing.T) {
	p := NewProfiler()
	p.Start()
	if !p.Active() {
		t.Fatal("not active after Start")
	}
	p.AddCommand("incr@hot:2", 2*time.Microsecond, 2*time.Microsecond)
	p.AddCommand("incr@hot:2", 3*time.Microsecond, 3*time.Microsecond)
	p.AddProc("hot", "<top>;hot", 5*time.Microsecond, 10*time.Microsecond, false)
	p.AddProc("hot", "<top>;hot", 5*time.Microsecond, 10*time.Microsecond, true) // recursive: no cum
	p.AddToplevel(time.Microsecond, 20*time.Microsecond)
	p.Stop()
	if p.Active() {
		t.Fatal("active after Stop")
	}

	st := p.ProcStat("hot")
	if st.Count != 2 || st.SelfNs != 10_000 || st.CumNs != 10_000 {
		t.Errorf("hot = %+v", st)
	}
	if p.TotalNs() != 20_000 {
		t.Errorf("total = %d", p.TotalNs())
	}
	var sb strings.Builder
	if err := p.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	doc := sb.String()
	if strings.Count(strings.TrimSpace(doc), "\n") != 0 {
		t.Errorf("profile dump not single-line: %q", doc)
	}
	for _, want := range []string{`"total_ns":20000`, `"incr@hot:2"`, `"count":2`} {
		if !strings.Contains(doc, want) {
			t.Errorf("dump misses %s: %q", want, doc)
		}
	}
	folded := p.Folded()
	if !strings.Contains(folded, "<top>;hot 10\n") || !strings.Contains(folded, "<top> 1\n") {
		t.Errorf("folded = %q", folded)
	}
}

// parsePromText is a minimal Prometheus text-format validator: every
// non-comment line must be `name{labels} value` or `name value`, every
// series must follow a # TYPE comment for its family, and histogram
// bucket counts must be cumulative (non-decreasing, ending at _count).
func parsePromText(t *testing.T, text string) map[string]string {
	t.Helper()
	types := map[string]string{}
	values := map[string]string{}
	var lastBucketFamily string
	var lastCum int64 = -1
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: bad TYPE comment %q", ln+1, line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value in %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(valStr, 64); err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := series
		if br := strings.IndexByte(series, '{'); br >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated labels in %q", ln+1, series)
			}
			name = series[:br]
		}
		if !strings.HasPrefix(name, "wafe_") {
			t.Fatalf("line %d: series %s lacks wafe_ prefix", ln+1, name)
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && types[strings.TrimSuffix(name, suf)] == "histogram" {
				family = strings.TrimSuffix(name, suf)
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("line %d: series %s has no TYPE comment", ln+1, name)
		}
		if strings.HasSuffix(name, "_bucket") && types[family] == "histogram" {
			if family != lastBucketFamily {
				lastBucketFamily, lastCum = family, -1
			}
			v, _ := strconv.ParseInt(valStr, 10, 64)
			if v < lastCum {
				t.Fatalf("line %d: %s buckets not cumulative (%d < %d)", ln+1, family, v, lastCum)
			}
			lastCum = v
		}
		values[series] = valStr
	}
	return values
}

func TestWritePrometheus(t *testing.T) {
	m := New()
	m.Tcl.Evals.Add(7)
	m.Tcl.Dispatch.Inc("echo")
	m.Tcl.Dispatch.Inc(`quoted"cmd`)
	m.Tcl.EvalLatency.Observe(200 * time.Nanosecond)
	m.Tcl.EvalLatency.Observe(time.Hour) // overflow bucket
	m.Frontend.LineLatency.Observe(time.Millisecond)
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	vals := parsePromText(t, sb.String())
	if vals["wafe_tcl_evals"] != "7" {
		t.Errorf("wafe_tcl_evals = %q", vals["wafe_tcl_evals"])
	}
	if vals[`wafe_tcl_dispatch{command="echo"}`] != "1" {
		t.Errorf("dispatch echo missing: %v", vals)
	}
	if vals[`wafe_tcl_dispatch{command="quoted\"cmd"}`] != "1" {
		t.Errorf("label escaping broken")
	}
	if vals["wafe_tcl_eval_latency_seconds_count"] != "2" {
		t.Errorf("eval latency count = %q", vals["wafe_tcl_eval_latency_seconds_count"])
	}
	if vals[`wafe_tcl_eval_latency_seconds_bucket{le="+Inf"}`] != "2" {
		t.Errorf("+Inf bucket = %q", vals[`wafe_tcl_eval_latency_seconds_bucket{le="+Inf"}`])
	}
	// 200ns falls in the first bucket (bound 128ns) .. second (256ns):
	// the le="0.000000256" cumulative count must include it.
	if vals[`wafe_tcl_eval_latency_seconds_bucket{le="0.000000256"}`] != "1" {
		t.Errorf("256ns bucket = %q", vals[`wafe_tcl_eval_latency_seconds_bucket{le="0.000000256"}`])
	}
}

func TestWritePrometheusServer(t *testing.T) {
	sm := NewServer()
	m := sm.AddSession("s1")
	m.Tcl.Evals.Add(3)
	sm.SessionLines.Counter("s1").Add(5)
	sm.SessionEnds.Inc("eof")
	sm.DispatchLatency.Observe(time.Millisecond)
	var sb strings.Builder
	if err := sm.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	vals := parsePromText(t, sb.String())
	if vals["wafe_server_live_evals"] != "3" {
		t.Errorf("live evals = %q", vals["wafe_server_live_evals"])
	}
	if vals[`wafe_server_session_lines{session="s1"}`] != "5" {
		t.Errorf("session lines missing: %v", vals)
	}
	if vals["wafe_server_dispatch_latency_seconds_count"] != "1" {
		t.Errorf("dispatch latency count = %q", vals["wafe_server_dispatch_latency_seconds_count"])
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[int64]string{
		0:             "0",
		128:           "0.000000128",
		1_000_000_000: "1",
		1_500_000_000: "1.5",
		2_000_000:     "0.002",
	}
	for ns, want := range cases {
		if got := formatSeconds(ns); got != want {
			t.Errorf("formatSeconds(%d) = %q, want %q", ns, got, want)
		}
	}
}

func TestFlightRecorderTrip(t *testing.T) {
	dir := t.TempDir()
	fr := &FlightRecorder{Dir: dir, Latency: 10 * time.Millisecond, MinInterval: time.Hour}
	if fr.TripLatency(time.Millisecond) {
		t.Error("below-threshold latency tripped")
	}
	if !fr.TripLatency(20 * time.Millisecond) {
		t.Error("above-threshold latency did not trip")
	}

	m := New()
	m.Tcl.Evals.Add(5)
	m.Trace.SetEnabled(true)
	m.Trace.SetSession("s9")
	m.Trace.StartSpan("line", "%echo hi").End()

	path, err := fr.Trip("line_latency", "", "line took 20ms", m, &m.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "wafe-flight-1-line_latency.json" {
		t.Errorf("dump path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"reason": "line_latency"`, `"session": "s9"`, `"tcl.evals": 5`, `"%echo hi"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("dump misses %s:\n%s", want, data)
		}
	}
	if fr.Dumps.Load() != 1 {
		t.Errorf("dumps = %d", fr.Dumps.Load())
	}

	// Second trip inside MinInterval is rate-limited.
	if p, err := fr.Trip("panic", "s9", "again", m, nil); err != nil || p != "" {
		t.Errorf("rate-limited trip: path=%q err=%v", p, err)
	}
	if fr.Dropped.Load() != 1 {
		t.Errorf("dropped = %d", fr.Dropped.Load())
	}
	// Reason strings are sanitized into safe filenames.
	if sanitizeReason("a/b c!") != "a_b_c_" || sanitizeReason("") != "anomaly" {
		t.Errorf("sanitizeReason broken")
	}
}

func TestMetricsDumpCapsTraceAndSpans(t *testing.T) {
	m := New()
	m.Trace.SetRingSize(DumpTraceCap * 4)
	m.Trace.SetEnabled(true)
	for i := 0; i < DumpTraceCap*3; i++ {
		m.Trace.Emit("cmd", fmt.Sprintf("line %d", i))
		m.Trace.StartSpan("eval", fmt.Sprintf("e%d", i)).End()
	}
	var sb strings.Builder
	if err := m.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, `"kind":"cmd"`); n != DumpTraceCap {
		t.Errorf("dump trace events = %d, want cap %d", n, DumpTraceCap)
	}
	if n := strings.Count(out, `"kind":"eval"`); n != DumpTraceCap {
		t.Errorf("dump spans = %d, want cap %d", n, DumpTraceCap)
	}
	// The cap keeps the newest entries.
	last := fmt.Sprintf("e%d", DumpTraceCap*3-1)
	if !strings.Contains(out, last) {
		t.Errorf("dump misses newest span %s", last)
	}
}
