package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// TclMetrics instruments the interpreter: top-level eval latency,
// per-command dispatch counts, and the PR 1 intern caches.
type TclMetrics struct {
	Evals             Counter
	EvalLatency       Histogram
	ScriptCacheHits   Counter
	ScriptCacheMisses Counter
	ExprCacheHits     Counter
	ExprCacheMisses   Counter
	Dispatch          CounterVec // per command name
}

// XtMetrics instruments the event loop: dispatch latency, queue
// depths, and callback/action firings.
type XtMetrics struct {
	EventsDispatched Counter
	DispatchLatency  Histogram
	EventQueueDepth  Gauge // X event queue observed in Pump
	PostedQueueDepth Gauge // posted-closure channel observed in Post
	CallbacksFired   Counter
	ActionsFired     Counter

	// RedrawClipped/RedrawFull split widget repaints by path: clipped
	// partial redraws against unconditional full-window repaints.
	RedrawClipped Counter
	RedrawFull    Counter

	// XrmSearchListHits/Misses count resource-database search-list
	// cache hits against (re)builds; XrmGeneration mirrors the
	// database generation counter whose bumps (mergeResources, -xrm,
	// resource files) invalidate cached search lists.
	XrmSearchListHits   Counter
	XrmSearchListMisses Counter
	XrmGeneration       Gauge
}

// XprotoMetrics counts protocol requests per operation (draw requests,
// window operations), queued events, and the damage-region pipeline:
// accumulated dirty rects, Expose mutations saved by coalescing, and
// expose requests dropped because the target window does not select
// ExposureMask (or does not exist).
type XprotoMetrics struct {
	Requests         CounterVec // per op name
	EventsQueued     Counter
	DamageRects      Counter
	ExposesCoalesced Counter
	ExposesDropped   Counter
}

// FrontendMetrics accounts the pipe protocol: line classes, per-line
// handling latency, eval failures, mass-channel throughput, and the
// backend lifecycle (exit classes, supervised restarts, uptime).
type FrontendMetrics struct {
	CommandLines  Counter
	PassedLines   Counter
	OverlongLines Counter
	EvalErrors    Counter
	LineLatency   Histogram
	MassTransfers Counter
	MassBytes     Counter

	// ReadErrors counts command-pipe read failures — previously
	// indistinguishable from clean EOF.
	ReadErrors Counter
	// BackendExits classifies every backend departure:
	// clean / crash / readerr / spawn.
	BackendExits CounterVec
	// BackendRestarts counts supervised respawns.
	BackendRestarts Counter
	// BackendUptime records each completed backend life in
	// milliseconds (the Max watermark is the longest life).
	BackendUptime Gauge
}

// Metrics is the aggregate registry one Wafe instance threads through
// its layers. Layers hold pointers to their sub-struct; a nil pointer
// (observability disabled) keeps every instrumented path zero-cost.
type Metrics struct {
	Tcl      TclMetrics
	Xt       XtMetrics
	Xproto   XprotoMetrics
	Frontend FrontendMetrics
	Trace    Trace

	// Extra, when non-nil, contributes additional samples to Snapshot —
	// the serve layer points a session's registry at the server
	// aggregates so statistics/metricsDump inside one session report
	// the whole process too. Set before the session runs, never
	// mutated afterwards. Aggregators must use SnapshotBase to avoid
	// recursing through it.
	Extra func() []Sample

	// Flight, when non-nil, is the process-wide flight recorder the
	// anomaly trip sites (line latency, session panic, backend crash)
	// dump through. Like Extra it is set before the session runs.
	Flight *FlightRecorder
}

// New returns an empty metrics registry.
func New() *Metrics { return &Metrics{} }

// NewOr returns m when non-nil, else a fresh registry — the pattern a
// layer uses to accept an optional caller-owned registry (the serve
// layer's per-session metrics) while guaranteeing a usable one.
func NewOr(m *Metrics) *Metrics {
	if m == nil {
		return New()
	}
	return m
}

// Sample is one named metric value in a snapshot.
type Sample struct {
	Name  string
	Value int64
}

func histSamples(prefix string, h *Histogram, out []Sample) []Sample {
	return append(out,
		Sample{prefix + ".count", h.Count()},
		Sample{prefix + ".mean_ns", h.Mean()},
		Sample{prefix + ".p50_ns", h.Quantile(0.50)},
		Sample{prefix + ".p99_ns", h.Quantile(0.99)},
		Sample{prefix + ".max_ns", h.Max()},
	)
}

func vecSamples(prefix string, v *CounterVec, out []Sample) []Sample {
	snap := v.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, Sample{prefix + "." + k, snap[k]})
	}
	return out
}

// Snapshot returns every metric as an ordered name/value list — the
// statistics command renders it as a Tcl list, the JSON dump as an
// object. Grouped per layer; names are stable and documented in
// docs/protocol.md. Extra samples (serve-mode server aggregates) come
// last.
func (m *Metrics) Snapshot() []Sample {
	out := m.SnapshotBase()
	if m.Extra != nil {
		out = append(out, m.Extra()...)
	}
	return out
}

// SnapshotBase is Snapshot without the Extra samples — what aggregators
// walking many session registries must use.
func (m *Metrics) SnapshotBase() []Sample {
	var out []Sample
	t := &m.Tcl
	out = append(out,
		Sample{"tcl.evals", t.Evals.Load()},
		Sample{"tcl.script_cache.hits", t.ScriptCacheHits.Load()},
		Sample{"tcl.script_cache.misses", t.ScriptCacheMisses.Load()},
		Sample{"tcl.expr_cache.hits", t.ExprCacheHits.Load()},
		Sample{"tcl.expr_cache.misses", t.ExprCacheMisses.Load()},
	)
	out = histSamples("tcl.eval_latency", &t.EvalLatency, out)
	out = vecSamples("tcl.dispatch", &t.Dispatch, out)

	x := &m.Xt
	out = append(out,
		Sample{"xt.events_dispatched", x.EventsDispatched.Load()},
		Sample{"xt.event_queue_depth", x.EventQueueDepth.Load()},
		Sample{"xt.event_queue_depth_max", x.EventQueueDepth.Max()},
		Sample{"xt.posted_queue_depth_max", x.PostedQueueDepth.Max()},
		Sample{"xt.callbacks_fired", x.CallbacksFired.Load()},
		Sample{"xt.actions_fired", x.ActionsFired.Load()},
		Sample{"xt.redraw_clipped", x.RedrawClipped.Load()},
		Sample{"xt.redraw_full", x.RedrawFull.Load()},
		Sample{"xt.xrm_searchlist_hits", x.XrmSearchListHits.Load()},
		Sample{"xt.xrm_searchlist_misses", x.XrmSearchListMisses.Load()},
		Sample{"xt.xrm_generation", x.XrmGeneration.Load()},
	)
	out = histSamples("xt.dispatch_latency", &x.DispatchLatency, out)

	p := &m.Xproto
	out = append(out,
		Sample{"xproto.events_queued", p.EventsQueued.Load()},
		Sample{"xproto.damage_rects", p.DamageRects.Load()},
		Sample{"xproto.exposes_coalesced", p.ExposesCoalesced.Load()},
		Sample{"xproto.exposes_dropped", p.ExposesDropped.Load()},
	)
	out = vecSamples("xproto.requests", &p.Requests, out)

	f := &m.Frontend
	out = append(out,
		Sample{"frontend.command_lines", f.CommandLines.Load()},
		Sample{"frontend.passed_lines", f.PassedLines.Load()},
		Sample{"frontend.overlong_lines", f.OverlongLines.Load()},
		Sample{"frontend.eval_errors", f.EvalErrors.Load()},
		Sample{"frontend.mass_transfers", f.MassTransfers.Load()},
		Sample{"frontend.mass_bytes", f.MassBytes.Load()},
		Sample{"frontend.read_errors", f.ReadErrors.Load()},
		Sample{"frontend.backend_restarts", f.BackendRestarts.Load()},
		Sample{"frontend.backend_uptime_ms", f.BackendUptime.Load()},
		Sample{"frontend.backend_uptime_ms_max", f.BackendUptime.Max()},
	)
	out = vecSamples("frontend.backend_exits", &f.BackendExits, out)
	out = histSamples("frontend.line_latency", &f.LineLatency, out)
	return out
}

// Get returns the snapshot value for a metric name (tests).
func (m *Metrics) Get(name string) (int64, bool) {
	for _, s := range m.Snapshot() {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// jsonDump is the --metrics-dump / metricsDump document shape.
type jsonDump struct {
	Metrics map[string]int64 `json:"metrics"`
	Trace   []TraceEvent     `json:"trace,omitempty"`
	Spans   []Span           `json:"spans,omitempty"`
}

// DumpTraceCap bounds the trace events and spans embedded in the
// metricsDump JSON: the document travels as one protocol line, so a
// large configured ring (--trace-ring 65536) must not balloon it. The
// most recent entries win; the full rings stay reachable through the
// trace Tcl command and the flight recorder.
const DumpTraceCap = 64

func lastN[T any](in []T, n int) []T {
	if len(in) > n {
		return in[len(in)-n:]
	}
	return in
}

// WriteJSON writes the snapshot (plus the tails of the trace and span
// rings, capped at DumpTraceCap each) as a single-line JSON object, so
// `echo [metricsDump]` stays one protocol line.
func (m *Metrics) WriteJSON(w io.Writer) error {
	d := jsonDump{Metrics: make(map[string]int64)}
	for _, s := range m.Snapshot() {
		d.Metrics[s.Name] = s.Value
	}
	d.Trace = lastN(m.Trace.Events(), DumpTraceCap)
	d.Spans = lastN(m.Trace.Spans(), DumpTraceCap)
	enc := json.NewEncoder(w)
	return enc.Encode(d)
}

// FormatValue renders a sample value for the statistics Tcl list.
func (s Sample) FormatValue() string { return strconv.FormatInt(s.Value, 10) }
