package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// FlightRecorder snapshots the span ring plus the metric registry to a
// JSON file when an anomaly trips: a session panic, a backend crash, a
// protocol line over the latency threshold, or a refused connection
// when the serve pool is full. One recorder is shared by every session
// of a process (classic mode has exactly one); Trip is rate-limited so
// a pathological session cannot flood the directory.
type FlightRecorder struct {
	// Dir receives the dump files, named
	// wafe-flight-<seq>-<reason>.json.
	Dir string
	// Latency is the per-line threshold above which HandleAppLine
	// trips a dump; zero disables the latency trigger.
	Latency time.Duration
	// MinInterval is the minimum spacing between dumps (default 1s).
	MinInterval time.Duration

	seq  atomic.Int64
	last atomic.Int64 // unix nanos of the last dump
	// Dumps counts dumps written; Dropped counts trips suppressed by
	// rate limiting or write failures.
	Dumps   Counter
	Dropped Counter
}

// flightDump is the on-disk document shape.
type flightDump struct {
	Reason  string           `json:"reason"`
	Session string           `json:"session,omitempty"`
	Detail  string           `json:"detail,omitempty"`
	Time    time.Time        `json:"time"`
	Metrics map[string]int64 `json:"metrics"`
	Spans   []Span           `json:"spans,omitempty"`
	Trace   []TraceEvent     `json:"trace,omitempty"`
}

// TripLatency reports whether d crosses the configured latency
// threshold — the one branch hot paths take before building a Trip.
func (fr *FlightRecorder) TripLatency(d time.Duration) bool {
	return fr.Latency > 0 && d >= fr.Latency
}

// Trip writes one flight dump and returns its path. src supplies the
// metric snapshot (a session's *Metrics or the serve aggregate); tr,
// when non-nil, contributes the span and event rings. A trip inside
// MinInterval of the previous dump is dropped (counted, not written).
func (fr *FlightRecorder) Trip(reason, session, detail string, src Source, tr *Trace) (string, error) {
	min := fr.MinInterval
	if min <= 0 {
		min = time.Second
	}
	now := time.Now().UnixNano()
	last := fr.last.Load()
	if now-last < int64(min) || !fr.last.CompareAndSwap(last, now) {
		fr.Dropped.Inc()
		return "", nil
	}
	d := flightDump{
		Reason:  reason,
		Session: session,
		Detail:  detail,
		Time:    time.Now(),
		Metrics: make(map[string]int64),
	}
	if src != nil {
		for _, s := range src.Snapshot() {
			d.Metrics[s.Name] = s.Value
		}
	}
	if tr != nil {
		d.Spans = tr.Spans()
		d.Trace = tr.Events()
		if session == "" {
			d.Session = tr.Session()
		}
	}
	dir := fr.Dir
	if dir == "" {
		dir = "."
	}
	name := fmt.Sprintf("wafe-flight-%d-%s.json", fr.seq.Add(1), sanitizeReason(reason))
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fr.Dropped.Inc()
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(d)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fr.Dropped.Inc()
		return path, err
	}
	fr.Dumps.Inc()
	return path, nil
}

// sanitizeReason keeps dump filenames shell-safe.
func sanitizeReason(r string) string {
	out := make([]byte, 0, len(r))
	for i := 0; i < len(r); i++ {
		c := r[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "anomaly"
	}
	return string(out)
}
