package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ProfStat is one aggregated profile row: call count, self time (time
// in the site itself, children excluded) and cumulative time (children
// included).
type ProfStat struct {
	Count  int64 `json:"count"`
	SelfNs int64 `json:"self_ns"`
	CumNs  int64 `json:"cum_ns"`
}

// Profiler accumulates Tcl execution time three ways:
//
//   - per command site ("<cmd>@<proc>:<line>", the PR 5 positions) —
//     self and cumulative per invocation,
//   - per proc — calls, self, cumulative,
//   - per folded call stack ("<top>;a;b") — self time at that exact
//     stack, the flamegraph input (Folded output).
//
// The interpreter holds a nil *Profiler until profileOn, so the
// disabled hot path is one pointer check; while enabled, recording
// takes a mutex (profiling is a measurement mode, not a hot path).
type Profiler struct {
	active atomic.Bool

	mu      sync.Mutex
	cmds    map[string]*ProfStat
	procs   map[string]*ProfStat
	stacks  map[string]int64 // folded stack → self ns
	totalNs int64            // sum of profiled top-level eval durations
	started time.Time
	wallNs  int64 // wall time profiled (profileOff - profileOn)
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{
		cmds:   make(map[string]*ProfStat),
		procs:  make(map[string]*ProfStat),
		stacks: make(map[string]int64),
	}
}

// Start marks the profiling window open.
func (p *Profiler) Start() {
	p.mu.Lock()
	p.started = time.Now()
	p.mu.Unlock()
	p.active.Store(true)
}

// Stop closes the profiling window, accumulating the wall time.
func (p *Profiler) Stop() {
	if !p.active.Swap(false) {
		return
	}
	p.mu.Lock()
	p.wallNs += time.Since(p.started).Nanoseconds()
	p.mu.Unlock()
}

// Active reports whether the window is open.
func (p *Profiler) Active() bool { return p.active.Load() }

func add(m map[string]*ProfStat, key string, self, cum time.Duration) {
	st := m[key]
	if st == nil {
		st = &ProfStat{}
		m[key] = st
	}
	st.Count++
	st.SelfNs += self.Nanoseconds()
	st.CumNs += cum.Nanoseconds()
}

// AddCommand records one command invocation at site
// "<cmd>@<proc>:<line>".
func (p *Profiler) AddCommand(site string, self, cum time.Duration) {
	p.mu.Lock()
	add(p.cmds, site, self, cum)
	p.mu.Unlock()
}

// AddProc records one proc call: name for the per-proc table, stack
// (the folded "<top>;a;b" path ending in this proc) for the flamegraph
// table. recursive suppresses the cumulative add when the proc is
// already on the stack, so self-recursive calls do not double-count.
func (p *Profiler) AddProc(name, stack string, self, cum time.Duration, recursive bool) {
	p.mu.Lock()
	st := p.procs[name]
	if st == nil {
		st = &ProfStat{}
		p.procs[name] = st
	}
	st.Count++
	st.SelfNs += self.Nanoseconds()
	if !recursive {
		st.CumNs += cum.Nanoseconds()
	}
	p.stacks[stack] += self.Nanoseconds()
	p.mu.Unlock()
}

// AddToplevel records one profiled top-level eval: its duration joins
// the total, and its self time (children excluded) joins the synthetic
// "<top>" frame so the folded output is rooted.
func (p *Profiler) AddToplevel(self, cum time.Duration) {
	p.mu.Lock()
	p.totalNs += cum.Nanoseconds()
	p.stacks["<top>"] += self.Nanoseconds()
	p.mu.Unlock()
}

// TotalNs returns the summed duration of profiled top-level evals.
func (p *Profiler) TotalNs() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totalNs
}

// ProcStat returns the aggregated row for one proc (zero value when
// never called).
func (p *Profiler) ProcStat(name string) ProfStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st := p.procs[name]; st != nil {
		return *st
	}
	return ProfStat{}
}

// profDump is the profileDump JSON document shape.
type profDump struct {
	TotalNs  int64                `json:"total_ns"`
	WallNs   int64                `json:"wall_ns"`
	Procs    map[string]*ProfStat `json:"procs"`
	Commands map[string]*ProfStat `json:"commands"`
}

// WriteJSON writes the profile as a single-line JSON object
// (profileDump's default form), so `echo [profileDump]` stays one
// protocol line.
func (p *Profiler) WriteJSON(w io.Writer) error {
	p.mu.Lock()
	d := profDump{
		TotalNs:  p.totalNs,
		WallNs:   p.wallNs,
		Procs:    make(map[string]*ProfStat, len(p.procs)),
		Commands: make(map[string]*ProfStat, len(p.cmds)),
	}
	for k, v := range p.procs {
		c := *v
		d.Procs[k] = &c
	}
	for k, v := range p.cmds {
		c := *v
		d.Commands[k] = &c
	}
	p.mu.Unlock()
	return json.NewEncoder(w).Encode(d)
}

// Folded renders the folded-stack table, one "stack count" line per
// stack with the self time in microseconds — the input format of
// standard flamegraph tooling (flamegraph.pl, speedscope, inferno).
func (p *Profiler) Folded() string {
	p.mu.Lock()
	keys := make([]string, 0, len(p.stacks))
	for k := range p.stacks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		us := p.stacks[k] / 1000
		b.WriteString(k)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(us, 10))
		b.WriteByte('\n')
	}
	p.mu.Unlock()
	return b.String()
}
