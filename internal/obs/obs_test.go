package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("counter = %d", c.Load())
	}
	var g Gauge
	g.Observe(7)
	g.Observe(3)
	if g.Load() != 3 || g.Max() != 7 {
		t.Errorf("gauge = %d max %d", g.Load(), g.Max())
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{100, 200, 400, 100_000, 5 * time.Second} {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != int64(5*time.Second) {
		t.Errorf("max = %d", h.Max())
	}
	want := int64(100 + 200 + 400 + 100_000 + 5*time.Second)
	if h.Sum() != want {
		t.Errorf("sum = %d, want %d", h.Sum(), want)
	}
	if h.Mean() != want/5 {
		t.Errorf("mean = %d", h.Mean())
	}
	// The p50 (3rd of 5 observations, 400ns) falls in the bucket
	// bounded by 512ns.
	if q := h.Quantile(0.5); q != 512 {
		t.Errorf("p50 = %d", q)
	}
	// The top quantile lands in the overflow bucket → observed max.
	if q := h.Quantile(0.99); q != int64(5*time.Second) {
		t.Errorf("p99 = %d", q)
	}
	var total int64
	for _, b := range h.Buckets() {
		total += b
	}
	if total != 5 {
		t.Errorf("bucket total = %d", total)
	}
	if BucketBound(0) != histBase || BucketBound(histBuckets-1) != -1 {
		t.Errorf("bucket bounds wrong")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Errorf("negative observation: count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestCounterVec(t *testing.T) {
	var v CounterVec
	v.Inc("echo")
	v.Inc("echo")
	v.Inc("realize")
	if v.Get("echo") != 2 || v.Get("realize") != 1 || v.Get("missing") != 0 {
		t.Errorf("snapshot = %v", v.Snapshot())
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Push(TraceEvent{Seq: uint64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d", r.Len())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestTraceGatingAndSink(t *testing.T) {
	var tr Trace
	var lines []string
	tr.SetSink(func(s string) { lines = append(lines, s) })
	tr.Emit("cmd", "ignored while disabled")
	if len(tr.Events()) != 0 || len(lines) != 0 {
		t.Fatal("disabled trace recorded")
	}
	tr.SetEnabled(true)
	tr.Emit("cmd", "%echo hi")
	tr.SetEnabled(false)
	tr.Emit("cmd", "off again")
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Kind != "cmd" || evs[0].Text != "%echo hi" {
		t.Fatalf("events = %+v", evs)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "wafe: trace cmd: %echo hi") {
		t.Fatalf("sink = %q", lines)
	}
}

func TestMetricsSnapshotAndJSON(t *testing.T) {
	m := New()
	m.Tcl.Evals.Add(3)
	m.Tcl.ScriptCacheHits.Add(2)
	m.Tcl.Dispatch.Inc("echo")
	m.Xt.DispatchLatency.Observe(time.Millisecond)
	m.Frontend.MassBytes.Add(4096)
	m.Xproto.Requests.Inc("DrawString")
	if v, ok := m.Get("tcl.evals"); !ok || v != 3 {
		t.Errorf("tcl.evals = %d, %v", v, ok)
	}
	if v, ok := m.Get("tcl.dispatch.echo"); !ok || v != 1 {
		t.Errorf("tcl.dispatch.echo = %d, %v", v, ok)
	}
	if v, ok := m.Get("xt.dispatch_latency.count"); !ok || v != 1 {
		t.Errorf("dispatch latency count = %d, %v", v, ok)
	}
	m.Trace.SetEnabled(true)
	m.Trace.Emit("cmd", "line")
	var sb strings.Builder
	if err := m.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(strings.TrimSpace(out), "\n") != 0 {
		t.Errorf("dump is not single-line: %q", out)
	}
	var doc struct {
		Metrics map[string]int64 `json:"metrics"`
		Trace   []TraceEvent     `json:"trace"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("dump not valid JSON: %v", err)
	}
	if doc.Metrics["frontend.mass_bytes"] != 4096 || doc.Metrics["xproto.requests.DrawString"] != 1 {
		t.Errorf("dump metrics = %v", doc.Metrics)
	}
	if len(doc.Trace) != 1 || doc.Trace[0].Text != "line" {
		t.Errorf("dump trace = %v", doc.Trace)
	}
}

func TestConcurrentWritersAndSnapshot(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Tcl.Evals.Inc()
				m.Tcl.Dispatch.Inc(fmt.Sprintf("cmd%d", g%2))
				m.Xt.DispatchLatency.Observe(time.Duration(i))
				m.Xt.EventQueueDepth.Observe(int64(i))
			}
		}(g)
	}
	for i := 0; i < 100; i++ {
		_ = m.Snapshot()
	}
	wg.Wait()
	if m.Tcl.Evals.Load() != 4000 {
		t.Errorf("evals = %d", m.Tcl.Evals.Load())
	}
	if m.Xt.DispatchLatency.Count() != 4000 {
		t.Errorf("latency count = %d", m.Xt.DispatchLatency.Count())
	}
}

func TestServeDebug(t *testing.T) {
	m := New()
	m.Tcl.Evals.Add(9)
	ln, err := ServeDebug("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	base := "http://" + ln.Addr().String()
	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(b)
	}
	if body := get("/metrics.json"); !strings.Contains(body, `"tcl.evals":9`) {
		t.Errorf("/metrics.json = %q", body)
	}
	if body := get("/metrics"); !strings.Contains(body, "wafe_tcl_evals 9") {
		t.Errorf("/metrics = %q", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, `"wafe"`) {
		t.Errorf("/debug/vars misses wafe var")
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %.100q", body)
	}
}
