package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceEvent is one recorded trace entry: a backend command line, a
// fired callback/action, or any other annotated happening.
type TraceEvent struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Kind string    `json:"kind"` // "cmd", "callback", "action", ...
	Text string    `json:"text"`
}

// Ring is a bounded ring buffer of trace events. Writers never block
// and never allocate beyond the fixed backing array; old events are
// overwritten.
type Ring struct {
	mu   sync.Mutex
	buf  []TraceEvent
	next int
	full bool
}

// NewRing returns a ring holding the last n events (n <= 0 picks a
// default of 256).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 256
	}
	return &Ring{buf: make([]TraceEvent, n)}
}

// Push appends an event, overwriting the oldest once full.
func (r *Ring) Push(ev TraceEvent) {
	r.mu.Lock()
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len returns the number of events currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Events returns the held events, oldest first.
func (r *Ring) Events() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]TraceEvent, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Trace is the tracing half of the observability layer: a ring of
// recent events plus an optional echo sink (the terminal, in frontend
// mode), mirroring the original Wafe's debug/echo mode. Recording is
// gated by an atomic flag so a disabled tracer costs one atomic load.
type Trace struct {
	enabled atomic.Bool
	seq     atomic.Uint64

	mu   sync.Mutex
	sink func(line string)
	ring *Ring
}

// Enabled reports whether tracing is on.
func (t *Trace) Enabled() bool { return t.enabled.Load() }

// SetEnabled turns tracing on or off (the traceOn/traceOff commands).
func (t *Trace) SetEnabled(on bool) { t.enabled.Store(on) }

// SetSink directs echoed trace lines to fn (nil silences the echo;
// the ring keeps recording).
func (t *Trace) SetSink(fn func(line string)) {
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

// Emit records one trace event and echoes it to the sink as
//
//	wafe: trace <kind>: <text>
//
// It is a no-op unless tracing is enabled; callers on hot paths should
// still guard with Enabled() to avoid building the text.
func (t *Trace) Emit(kind, text string) {
	if !t.enabled.Load() {
		return
	}
	ev := TraceEvent{Seq: t.seq.Add(1), Time: time.Now(), Kind: kind, Text: text}
	t.mu.Lock()
	if t.ring == nil {
		t.ring = NewRing(0)
	}
	t.ring.Push(ev)
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink(fmt.Sprintf("wafe: trace %s: %s", kind, text))
	}
}

// Events returns the recorded trace events, oldest first.
func (t *Trace) Events() []TraceEvent {
	t.mu.Lock()
	ring := t.ring
	t.mu.Unlock()
	if ring == nil {
		return nil
	}
	return ring.Events()
}
