package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRingSize is the trace/span ring capacity used when none is
// configured (--trace-ring / traceOn <n>).
const DefaultRingSize = 256

// TraceEvent is one recorded trace entry: a backend command line, a
// fired callback/action, or any other annotated happening.
type TraceEvent struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Kind string    `json:"kind"` // "cmd", "callback", "action", ...
	Text string    `json:"text"`
}

// ring is the shared bounded-buffer core behind Ring (trace events)
// and SpanRing (spans): writers never block and never allocate beyond
// the fixed backing array; old entries are overwritten.
type ring[T any] struct {
	mu   sync.Mutex
	buf  []T
	next int
	full bool
}

func newRing[T any](n int) ring[T] {
	if n <= 0 {
		n = DefaultRingSize
	}
	return ring[T]{buf: make([]T, n)}
}

func (r *ring[T]) push(v T) {
	r.mu.Lock()
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

func (r *ring[T]) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

func (r *ring[T]) items() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]T, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Ring is a bounded ring buffer of trace events.
type Ring struct {
	r ring[TraceEvent]
}

// NewRing returns a ring holding the last n events (n <= 0 picks
// DefaultRingSize).
func NewRing(n int) *Ring { return &Ring{r: newRing[TraceEvent](n)} }

// Push appends an event, overwriting the oldest once full.
func (r *Ring) Push(ev TraceEvent) { r.r.push(ev) }

// Len returns the number of events currently held.
func (r *Ring) Len() int { return r.r.len() }

// Events returns the held events, oldest first.
func (r *Ring) Events() []TraceEvent { return r.r.items() }

// Trace is the tracing half of the observability layer: a ring of
// recent flat events plus a ring of completed spans (span.go) and an
// optional echo sink (the terminal, in frontend mode), mirroring the
// original Wafe's debug/echo mode. Recording is gated by an atomic
// flag so a disabled tracer costs one atomic load per site.
type Trace struct {
	enabled atomic.Bool
	seq     atomic.Uint64

	// cur is the id of the innermost open span — the parent the next
	// StartSpan/Instant links to. Written only by the session's event
	// loop goroutine (span sites are single-threaded per session);
	// atomic so concurrent snapshot readers stay race-free.
	cur atomic.Uint64

	mu       sync.Mutex
	sink     func(line string)
	ring     *Ring
	spans    *SpanRing
	ringSize int    // 0 → DefaultRingSize, set by --trace-ring / traceOn <n>
	session  string // session id stamped on recorded spans
}

// Enabled reports whether tracing is on.
func (t *Trace) Enabled() bool { return t.enabled.Load() }

// SetEnabled turns tracing on or off (the traceOn/traceOff commands).
func (t *Trace) SetEnabled(on bool) { t.enabled.Store(on) }

// SetSink directs echoed trace lines to fn (nil silences the echo;
// the ring keeps recording).
func (t *Trace) SetSink(fn func(line string)) {
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

// SetRingSize configures the capacity of the event and span rings
// (n <= 0 restores DefaultRingSize). Existing rings are resized by
// dropping their contents; the usual sequence is `traceOn <n>` before
// any recording.
func (t *Trace) SetRingSize(n int) {
	if n < 0 {
		n = 0
	}
	t.mu.Lock()
	t.ringSize = n
	t.ring = nil
	t.spans = nil
	t.mu.Unlock()
}

// RingSize returns the configured ring capacity (the default when
// unset).
func (t *Trace) RingSize() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ringSize <= 0 {
		return DefaultRingSize
	}
	return t.ringSize
}

// SetSession stamps sid on every span recorded from now on — the serve
// layer sets the session id before the session loop starts.
func (t *Trace) SetSession(sid string) {
	t.mu.Lock()
	t.session = sid
	t.mu.Unlock()
}

// Session returns the stamped session id.
func (t *Trace) Session() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.session
}

// Emit records one trace event and echoes it to the sink as
//
//	wafe: trace <kind>: <text>
//
// It is a no-op unless tracing is enabled; callers on hot paths should
// still guard with Enabled() to avoid building the text.
func (t *Trace) Emit(kind, text string) {
	if !t.enabled.Load() {
		return
	}
	ev := TraceEvent{Seq: t.seq.Add(1), Time: time.Now(), Kind: kind, Text: text}
	t.mu.Lock()
	if t.ring == nil {
		t.ring = NewRing(t.ringSize)
	}
	t.ring.Push(ev)
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink("wafe: trace " + kind + ": " + text)
	}
}

// Events returns the recorded trace events, oldest first.
func (t *Trace) Events() []TraceEvent {
	t.mu.Lock()
	ring := t.ring
	t.mu.Unlock()
	if ring == nil {
		return nil
	}
	return ring.Events()
}
