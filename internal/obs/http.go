package obs

import (
	"expvar"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Source is anything that can be published on the debug endpoint: a
// single-session *Metrics or the serve-mode *ServerMetrics aggregate.
type Source interface {
	Snapshot() []Sample
	WriteJSON(w io.Writer) error
}

// published is the source the expvar variable reads; expvar names are
// process-global and can be registered only once, so the variable
// indirects through this slot.
var (
	publishMu   sync.Mutex
	published   Source
	publishOnce sync.Once
)

func publish(s Source) {
	publishMu.Lock()
	published = s
	publishMu.Unlock()
	publishOnce.Do(func() {
		expvar.Publish("wafe", expvar.Func(func() any {
			publishMu.Lock()
			cur := published
			publishMu.Unlock()
			if cur == nil {
				return nil
			}
			out := make(map[string]int64)
			for _, s := range cur.Snapshot() {
				out[s.Name] = s.Value
			}
			return out
		}))
	})
}

// PromSource is a Source that can also render itself in Prometheus
// text format — both *Metrics and *ServerMetrics implement it.
type PromSource interface {
	Source
	WritePrometheus(w io.Writer) error
}

// ServeDebug exposes m on addr: /debug/vars (expvar, including the
// "wafe" metrics map), the /debug/pprof profiling endpoints, /metrics
// (Prometheus text format, full histogram buckets) and /metrics.json
// (the metricsDump JSON document). It returns the bound listener so
// callers can report the actual address (addr may use port 0) and
// close it; the HTTP server runs until the listener closes.
func ServeDebug(addr string, m *Metrics) (net.Listener, error) {
	return ServeDebugSource(addr, m)
}

// ServeDebugSource is ServeDebug for any snapshot source — serve mode
// passes the ServerMetrics aggregate, so /debug/vars and /metrics
// report the whole process (per-session objects included in the
// serve-mode JSON document).
func ServeDebugSource(addr string, src Source) (net.Listener, error) {
	publish(src)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = src.WriteJSON(w)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if ps, ok := src.(PromSource); ok {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = ps.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = src.WriteJSON(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}
