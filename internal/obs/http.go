package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// published is the metrics instance the expvar variable reads; expvar
// names are process-global and can be registered only once, so the
// variable indirects through this slot.
var (
	publishMu   sync.Mutex
	published   *Metrics
	publishOnce sync.Once
)

func publish(m *Metrics) {
	publishMu.Lock()
	published = m
	publishMu.Unlock()
	publishOnce.Do(func() {
		expvar.Publish("wafe", expvar.Func(func() any {
			publishMu.Lock()
			cur := published
			publishMu.Unlock()
			if cur == nil {
				return nil
			}
			out := make(map[string]int64)
			for _, s := range cur.Snapshot() {
				out[s.Name] = s.Value
			}
			return out
		}))
	})
}

// ServeDebug exposes m on addr: /debug/vars (expvar, including the
// "wafe" metrics map), the /debug/pprof profiling endpoints, and
// /metrics (the JSON dump). It returns the bound listener so callers
// can report the actual address (addr may use port 0) and close it;
// the HTTP server runs until the listener closes.
func ServeDebug(addr string, m *Metrics) (net.Listener, error) {
	publish(m)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = m.WriteJSON(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}
