package tcl

import (
	"os"
	"strings"
	"testing"
)

func TestFileIO(t *testing.T) {
	in := New()
	dir := t.TempDir()
	path := dir + "/data.txt"
	// Write.
	fid := evalOK(t, in, "open "+path+" w")
	if !strings.HasPrefix(fid, "file") {
		t.Fatalf("fileId = %q", fid)
	}
	evalOK(t, in, "puts "+fid+" {first line}")
	evalOK(t, in, "puts "+fid+" {second line}")
	evalOK(t, in, "puts -nonewline "+fid+" {no newline}")
	evalOK(t, in, "close "+fid)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "first line\nsecond line\nno newline" {
		t.Fatalf("file content = %q", data)
	}
	// Read back line by line.
	fid2 := evalOK(t, in, "open "+path)
	wantEval(t, in, "gets "+fid2+" line", "10")
	wantEval(t, in, "set line", "first line")
	wantEval(t, in, "gets "+fid2, "second line")
	wantEval(t, in, "eof "+fid2, "0")
	wantEval(t, in, "gets "+fid2, "no newline")
	wantEval(t, in, "eof "+fid2, "1")
	wantEval(t, in, "gets "+fid2+" line", "-1")
	evalOK(t, in, "close "+fid2)
	// Whole-file read.
	fid3 := evalOK(t, in, "open "+path)
	got := evalOK(t, in, "read "+fid3)
	if got != "first line\nsecond line\nno newline" {
		t.Errorf("read = %q", got)
	}
	evalOK(t, in, "close "+fid3)
	// Byte-count read.
	fid4 := evalOK(t, in, "open "+path)
	wantEval(t, in, "read "+fid4+" 5", "first")
	evalOK(t, in, "close "+fid4)
}

func TestFileIOErrors(t *testing.T) {
	in := New()
	wantErr(t, in, "open /no/such/dir/file.txt", "couldn't open")
	wantErr(t, in, "open x badmode", "illegal access mode")
	wantErr(t, in, "gets file99", "can not find channel")
	wantErr(t, in, "close file99", "can not find channel")
	dir := t.TempDir()
	fid := evalOK(t, in, "open "+dir+"/w.txt w")
	wantErr(t, in, "gets "+fid, "not opened for reading")
	evalOK(t, in, "close "+fid)
	wantErr(t, in, "gets "+fid, "can not find channel") // closed
}

func TestAppendMode(t *testing.T) {
	in := New()
	dir := t.TempDir()
	path := dir + "/log.txt"
	f1 := evalOK(t, in, "open "+path+" w")
	evalOK(t, in, "puts "+f1+" one; close "+f1)
	f2 := evalOK(t, in, "open "+path+" a")
	evalOK(t, in, "puts "+f2+" two; flush "+f2+"; close "+f2)
	data, _ := os.ReadFile(path)
	if string(data) != "one\ntwo\n" {
		t.Errorf("append result = %q", data)
	}
}

func TestFileCommand(t *testing.T) {
	in := New()
	dir := t.TempDir()
	path := dir + "/x.tar.gz"
	if err := os.WriteFile(path, []byte("12345"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantEval(t, in, "file exists "+path, "1")
	wantEval(t, in, "file exists "+dir+"/nope", "0")
	wantEval(t, in, "file isfile "+path, "1")
	wantEval(t, in, "file isdirectory "+dir, "1")
	wantEval(t, in, "file size "+path, "5")
	wantEval(t, in, "file tail "+path, "x.tar.gz")
	wantEval(t, in, "file dirname "+path, dir)
	wantEval(t, in, "file extension "+path, ".gz")
	wantEval(t, in, "file rootname "+path, dir+"/x.tar")
	wantEval(t, in, "file dirname plain", ".")
	wantEval(t, in, "file readable "+path, "1")
	wantErr(t, in, "file bogus "+path, "bad file option")
}

func TestExecCommand(t *testing.T) {
	if _, err := os.Stat("/bin/echo"); err != nil {
		t.Skip("no /bin/echo")
	}
	in := New()
	wantEval(t, in, "exec /bin/echo hello exec", "hello exec")
	wantErr(t, in, "exec /no/such/program", "couldn't execute")
	if _, err := os.Stat("/bin/false"); err == nil {
		wantErr(t, in, "exec /bin/false", "status")
	}
}

func TestCaseCommand(t *testing.T) {
	in := New()
	wantEval(t, in, "case abc in {a* {set r starts-a} default {set r other}}", "starts-a")
	wantEval(t, in, "case xyz in {a* {set r starts-a} default {set r other}}", "other")
	// Multiple patterns per branch.
	wantEval(t, in, "case bbb in {{a* b*} {set r ab} default {set r d}}", "ab")
	// Inline pairs without the braced list.
	wantEval(t, in, "case q in q {set r exact}", "exact")
	// No match, no default → empty.
	wantEval(t, in, "case zz in {a {set r 1}}", "")
	wantErr(t, in, "case s in {pat}", "extra case pattern")
}

func TestOpenChannelNamesAndCloseAll(t *testing.T) {
	in := New()
	dir := t.TempDir()
	f1 := evalOK(t, in, "open "+dir+"/a w")
	f2 := evalOK(t, in, "open "+dir+"/b w")
	names := in.OpenChannelNames()
	if len(names) != 2 {
		t.Fatalf("open channels = %v", names)
	}
	evalOK(t, in, "puts "+f1+" data")
	in.CloseAllChannels()
	if got := in.OpenChannelNames(); len(got) != 0 {
		t.Errorf("channels after CloseAll = %v", got)
	}
	// Buffered data was flushed by CloseAllChannels.
	data, _ := os.ReadFile(dir + "/a")
	if string(data) != "data\n" {
		t.Errorf("flushed content = %q", data)
	}
	_ = f2
}

func TestGlobPwdCd(t *testing.T) {
	in := New()
	dir := t.TempDir()
	for _, f := range []string{"a.txt", "b.txt", "c.dat"} {
		if err := os.WriteFile(dir+"/"+f, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got := evalOK(t, in, "glob "+dir+"/*.txt")
	if !strings.Contains(got, "a.txt") || !strings.Contains(got, "b.txt") || strings.Contains(got, "c.dat") {
		t.Errorf("glob = %q", got)
	}
	wantErr(t, in, "glob "+dir+"/*.nope", "no files matched")
	wantEval(t, in, "glob -nocomplain "+dir+"/*.nope", "")
	// pwd/cd round trip.
	orig := evalOK(t, in, "pwd")
	evalOK(t, in, "cd "+dir)
	here := evalOK(t, in, "pwd")
	if !strings.HasSuffix(here, strings.TrimPrefix(dir, "/private")) && here != dir {
		t.Errorf("pwd after cd = %q, want %q", here, dir)
	}
	evalOK(t, in, "cd "+orig)
	wantErr(t, in, "cd /no/such/dir", "couldn't change directory")
}
