package tcl

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// channel is an open file handle ("file3"-style identifiers, as in
// classic Tcl).
type channel struct {
	name   string
	f      *os.File
	r      *bufio.Reader
	w      *bufio.Writer
	atEOF  bool
	closed bool
}

// channels lives on the interpreter; lazily allocated.
type channelTable struct {
	byName map[string]*channel
	nextID int
}

func (in *Interp) channels() *channelTable {
	if in.chans == nil {
		in.chans = &channelTable{byName: make(map[string]*channel)}
	}
	return in.chans
}

func (in *Interp) lookupChannel(name string) (*channel, error) {
	ct := in.channels()
	ch, ok := ct.byName[name]
	if !ok || ch.closed {
		return nil, NewError("can not find channel named %q", name)
	}
	return ch, nil
}

// CloseAllChannels closes every open channel (embedder shutdown).
func (in *Interp) CloseAllChannels() {
	if in.chans == nil {
		return
	}
	for _, ch := range in.chans.byName {
		if !ch.closed {
			if ch.w != nil {
				_ = ch.w.Flush()
			}
			_ = ch.f.Close()
			ch.closed = true
		}
	}
}

func registerIOCommands(in *Interp) {
	in.RegisterCommand("open", cmdOpen)
	in.RegisterCommand("close", cmdClose)
	in.RegisterCommand("gets", cmdGets)
	in.RegisterCommand("read", cmdRead)
	in.RegisterCommand("eof", cmdEOF)
	in.RegisterCommand("flush", cmdFlush)
	in.RegisterCommand("file", cmdFile)
	in.RegisterCommand("exec", cmdExec)
	in.RegisterCommand("case", cmdCase)
	in.RegisterCommand("glob", cmdGlob)
	in.RegisterCommand("pwd", cmdPwd)
	in.RegisterCommand("cd", cmdCd)
}

// cmdGlob implements filename globbing: glob ?-nocomplain? pattern ...
func cmdGlob(in *Interp, argv []string) (string, error) {
	args := argv[1:]
	noComplain := false
	if len(args) > 0 && args[0] == "-nocomplain" {
		noComplain = true
		args = args[1:]
	}
	if len(args) == 0 {
		return "", arityError("glob", "?-nocomplain? pattern ?pattern ...?")
	}
	var out []string
	for _, pat := range args {
		matches, err := filepath.Glob(pat)
		if err != nil {
			return "", NewError("bad glob pattern %q: %v", pat, err)
		}
		out = append(out, matches...)
	}
	if len(out) == 0 && !noComplain {
		return "", NewError("no files matched glob pattern(s)")
	}
	sort.Strings(out)
	return FormatList(out), nil
}

func cmdPwd(in *Interp, argv []string) (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", NewError("pwd: %v", err)
	}
	return dir, nil
}

func cmdCd(in *Interp, argv []string) (string, error) {
	if len(argv) != 2 {
		return "", arityError("cd", "dirName")
	}
	if err := os.Chdir(argv[1]); err != nil {
		return "", NewError("couldn't change directory to %q: %v", argv[1], err)
	}
	return "", nil
}

// cmdOpen implements "open fileName ?access?" with the classic access
// modes r, r+, w, w+, a, a+.
func cmdOpen(in *Interp, argv []string) (string, error) {
	if len(argv) != 2 && len(argv) != 3 {
		return "", arityError("open", "fileName ?access?")
	}
	access := "r"
	if len(argv) == 3 {
		access = argv[2]
	}
	var flags int
	switch access {
	case "r":
		flags = os.O_RDONLY
	case "r+":
		flags = os.O_RDWR
	case "w":
		flags = os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	case "w+":
		flags = os.O_RDWR | os.O_CREATE | os.O_TRUNC
	case "a":
		flags = os.O_WRONLY | os.O_CREATE | os.O_APPEND
	case "a+":
		flags = os.O_RDWR | os.O_CREATE | os.O_APPEND
	default:
		return "", NewError("illegal access mode %q", access)
	}
	f, err := os.OpenFile(argv[1], flags, 0o644)
	if err != nil {
		return "", NewError("couldn't open %q: %v", argv[1], err)
	}
	ct := in.channels()
	ct.nextID++
	ch := &channel{name: "file" + strconv.Itoa(ct.nextID+2), f: f}
	if flags == os.O_RDONLY || access == "r+" || access == "w+" || access == "a+" {
		ch.r = bufio.NewReader(f)
	}
	if flags != os.O_RDONLY {
		ch.w = bufio.NewWriter(f)
	}
	ct.byName[ch.name] = ch
	return ch.name, nil
}

func cmdClose(in *Interp, argv []string) (string, error) {
	if len(argv) != 2 {
		return "", arityError("close", "fileId")
	}
	ch, err := in.lookupChannel(argv[1])
	if err != nil {
		return "", err
	}
	if ch.w != nil {
		_ = ch.w.Flush()
	}
	ch.closed = true
	delete(in.channels().byName, ch.name)
	if err := ch.f.Close(); err != nil {
		return "", NewError("close %q: %v", ch.name, err)
	}
	return "", nil
}

// cmdGets implements "gets fileId ?varName?": with a variable it
// returns the line length (-1 at EOF); without, the line itself.
func cmdGets(in *Interp, argv []string) (string, error) {
	if len(argv) != 2 && len(argv) != 3 {
		return "", arityError("gets", "fileId ?varName?")
	}
	ch, err := in.lookupChannel(argv[1])
	if err != nil {
		return "", err
	}
	if ch.r == nil {
		return "", NewError("channel %q not opened for reading", argv[1])
	}
	line, err := ch.r.ReadString('\n')
	if err != nil && line == "" {
		ch.atEOF = true
		if len(argv) == 3 {
			if err := in.SetVar(argv[2], ""); err != nil {
				return "", err
			}
			return "-1", nil
		}
		return "", nil
	}
	line = strings.TrimRight(line, "\n")
	if len(argv) == 3 {
		if err := in.SetVar(argv[2], line); err != nil {
			return "", err
		}
		return strconv.Itoa(len(line)), nil
	}
	return line, nil
}

// cmdRead implements "read fileId" (whole rest) and "read fileId n".
func cmdRead(in *Interp, argv []string) (string, error) {
	if len(argv) != 2 && len(argv) != 3 {
		return "", arityError("read", "fileId ?numBytes?")
	}
	ch, err := in.lookupChannel(argv[1])
	if err != nil {
		return "", err
	}
	if ch.r == nil {
		return "", NewError("channel %q not opened for reading", argv[1])
	}
	if len(argv) == 3 {
		n, err := strconv.Atoi(argv[2])
		if err != nil || n < 0 {
			return "", NewError("bad byte count %q", argv[2])
		}
		buf := make([]byte, n)
		m, _ := fullRead(ch.r, buf)
		if m < n {
			ch.atEOF = true
		}
		return string(buf[:m]), nil
	}
	var b strings.Builder
	tmp := make([]byte, 8192)
	for {
		n, err := ch.r.Read(tmp)
		b.Write(tmp[:n])
		if err != nil {
			break
		}
	}
	ch.atEOF = true
	return b.String(), nil
}

func fullRead(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func cmdEOF(in *Interp, argv []string) (string, error) {
	if len(argv) != 2 {
		return "", arityError("eof", "fileId")
	}
	ch, err := in.lookupChannel(argv[1])
	if err != nil {
		return "", err
	}
	if ch.atEOF {
		return "1", nil
	}
	// Peek to detect EOF without consuming.
	if ch.r != nil {
		if _, err := ch.r.Peek(1); err != nil {
			ch.atEOF = true
			return "1", nil
		}
	}
	return "0", nil
}

func cmdFlush(in *Interp, argv []string) (string, error) {
	if len(argv) != 2 {
		return "", arityError("flush", "fileId")
	}
	if argv[1] == "stdout" || argv[1] == "stderr" {
		return "", nil
	}
	ch, err := in.lookupChannel(argv[1])
	if err != nil {
		return "", err
	}
	if ch.w != nil {
		if err := ch.w.Flush(); err != nil {
			return "", NewError("flush %q: %v", argv[1], err)
		}
	}
	return "", nil
}

// cmdFile implements the classic file command subset: exists, isfile,
// isdirectory, size, dirname, tail, rootname, extension, readable,
// writable.
func cmdFile(in *Interp, argv []string) (string, error) {
	if len(argv) < 3 {
		return "", arityError("file", "option name ?arg ...?")
	}
	op, name := argv[1], argv[2]
	stat := func() (os.FileInfo, error) { return os.Stat(name) }
	switch op {
	case "exists":
		if _, err := stat(); err == nil {
			return "1", nil
		}
		return "0", nil
	case "isfile":
		if fi, err := stat(); err == nil && fi.Mode().IsRegular() {
			return "1", nil
		}
		return "0", nil
	case "isdirectory":
		if fi, err := stat(); err == nil && fi.IsDir() {
			return "1", nil
		}
		return "0", nil
	case "size":
		fi, err := stat()
		if err != nil {
			return "", NewError("couldn't stat %q: %v", name, err)
		}
		return strconv.FormatInt(fi.Size(), 10), nil
	case "dirname":
		if i := strings.LastIndexByte(name, '/'); i > 0 {
			return name[:i], nil
		} else if i == 0 {
			return "/", nil
		}
		return ".", nil
	case "tail":
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			return name[i+1:], nil
		}
		return name, nil
	case "rootname":
		if i := strings.LastIndexByte(name, '.'); i > strings.LastIndexByte(name, '/') {
			return name[:i], nil
		}
		return name, nil
	case "extension":
		if i := strings.LastIndexByte(name, '.'); i > strings.LastIndexByte(name, '/') {
			return name[i:], nil
		}
		return "", nil
	case "readable":
		if f, err := os.Open(name); err == nil {
			f.Close()
			return "1", nil
		}
		return "0", nil
	case "writable":
		if f, err := os.OpenFile(name, os.O_WRONLY, 0); err == nil {
			f.Close()
			return "1", nil
		}
		return "0", nil
	}
	return "", NewError("bad file option %q", op)
}

// cmdExec runs a subprocess and returns its standard output with the
// trailing newline stripped, as Tcl's exec does. Pipelines and
// redirections are not supported.
func cmdExec(in *Interp, argv []string) (string, error) {
	if len(argv) < 2 {
		return "", arityError("exec", "command ?arg ...?")
	}
	cmd := exec.Command(argv[1], argv[2:]...)
	out, err := cmd.Output()
	res := strings.TrimRight(string(out), "\n")
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			msg := strings.TrimSpace(string(ee.Stderr))
			if msg == "" {
				msg = fmt.Sprintf("command %q exited with status %d", argv[1], ee.ExitCode())
			}
			return "", NewError("%s", msg)
		}
		return "", NewError("couldn't execute %q: %v", argv[1], err)
	}
	return res, nil
}

// cmdCase implements the Tcl 6 case command (the predecessor of
// switch): case string ?in? {pattern body pattern body ...} or inline
// pairs. Patterns are glob patterns; "default" matches anything.
func cmdCase(in *Interp, argv []string) (string, error) {
	if len(argv) < 3 {
		return "", arityError("case", "string ?in? patList body ?patList body ...?")
	}
	subject := argv[1]
	rest := argv[2:]
	if rest[0] == "in" {
		rest = rest[1:]
	}
	var pairs []string
	if len(rest) == 1 {
		list, err := ParseList(rest[0])
		if err != nil {
			return "", err
		}
		pairs = list
	} else {
		pairs = rest
	}
	if len(pairs)%2 != 0 {
		return "", NewError("extra case pattern with no body")
	}
	for i := 0; i+1 < len(pairs); i += 2 {
		pats, err := ParseList(pairs[i])
		if err != nil {
			return "", err
		}
		for _, p := range pats {
			if p == "default" || GlobMatch(p, subject) {
				return in.Eval(pairs[i+1])
			}
		}
	}
	return "", nil
}

// OpenChannelNames lists open channels, sorted (tests and diagnostics).
func (in *Interp) OpenChannelNames() []string {
	if in.chans == nil {
		return nil
	}
	var names []string
	for n, ch := range in.chans.byName {
		if !ch.closed {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}
