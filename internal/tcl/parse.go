// Package tcl implements an embeddable Tcl interpreter in the spirit of
// Tcl 6/7 as used by Wafe (Neumann & Nusser, USENIX 1993).
//
// The interpreter is string-only: every value that crosses a command
// boundary is a string, which is exactly the property Wafe relies on to
// feed values through the Xt resource converters. The package provides
// the classic command set (control flow, variables incl. associative
// arrays, lists, strings, expr) plus the embedding API used by the Wafe
// core: RegisterCommand, Eval, SetVar/GetVar and list helpers.
package tcl

import (
	"fmt"
	"strings"
)

// A parser walks a script one command at a time. The parser's output
// (the command/word/token lists) is wrapped by Script (script.go) so
// that a source string compiles once and evaluates many times, in the
// spirit of the Tcl 7→8 transition; substitution still happens at
// evaluation time, keeping values strings throughout.
type parser struct {
	src string
	pos int
}

// word is one parsed word of a command before substitution. Words are
// represented as a token list so that substitution can be performed at
// evaluation time.
type word struct {
	tokens []token
	// expand is reserved for {*} style expansion (not part of Tcl 6 but
	// useful for internal callers); it is never produced by the parser.
	expand bool
	// pos is the byte offset of the word's first character in the source
	// the parser was created with (the opening brace or quote for braced
	// and quoted words).
	pos int
	// form records how the word was written: '{' for braced, '"' for
	// quoted, 0 for bare. Braced words suppress substitution, which the
	// static checker uses to tell literal scripts from dynamic ones.
	form byte
}

// ParseError is a parse failure with the byte offset of the offending
// construct. The parser returns it from every failure site so that
// compiled scripts (and the wafecheck linter) can report line/column
// positions; Error() carries just the classic message text.
type ParseError struct {
	Msg string
	Off int // byte offset into the source handed to the parser
}

func (e *ParseError) Error() string { return e.Msg }

func (p *parser) errAt(off int, format string, args ...any) error {
	return &ParseError{Msg: fmt.Sprintf(format, args...), Off: off}
}

// LineCol converts a byte offset within src to a 1-based line and
// column pair. Offsets past the end of src report the position just
// after the last character.
func LineCol(src string, off int) (line, col int) {
	if off > len(src) {
		off = len(src)
	}
	if off < 0 {
		off = 0
	}
	line, col = 1, 1
	for i := 0; i < off; i++ {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

type tokenKind int

const (
	tokText    tokenKind = iota // literal text
	tokVar                      // $name or ${name} or $name(index)
	tokCommand                  // [script]
)

type token struct {
	kind tokenKind
	text string // literal text, variable name, or nested script
	// pos is the byte offset of the token's first character ('$' for
	// variables, '[' for command substitutions) in the parser's source.
	pos int
	// index holds the (unsubstituted) array index tokens when kind==tokVar
	// and the variable reference had the form $name(index).
	index  []token
	hasIdx bool
	// script is the compiled form of text when kind==tokCommand and the
	// token came from a compiled Script; nil when the token was parsed
	// standalone (Subst, expr fallback), in which case evaluation goes
	// through the interning Eval.
	script *Script
}

// command is one parsed command: a sequence of words.
type parsedCommand struct {
	words []word
}

func newParser(src string) *parser { return &parser{src: src} }

func (p *parser) atEnd() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte { return p.src[p.pos] }

// skipCommandSeparators consumes whitespace, newlines, semicolons and
// comments between commands.
func (p *parser) skipCommandSeparators() {
	for !p.atEnd() {
		c := p.src[p.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';':
			p.pos++
		case c == '\\' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n':
			p.pos += 2
		case c == '#':
			// Comment: to end of line; a backslash-newline continues it.
			for !p.atEnd() {
				if p.src[p.pos] == '\\' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n' {
					p.pos += 2
					continue
				}
				if p.src[p.pos] == '\n' {
					break
				}
				p.pos++
			}
		default:
			return
		}
	}
}

// skipWordSeparators consumes spaces and tabs (and escaped newlines)
// between the words of a single command. It reports whether the command
// has ended (newline, semicolon or end of input).
func (p *parser) skipWordSeparators() (commandEnded bool) {
	for !p.atEnd() {
		c := p.src[p.pos]
		switch {
		case c == ' ' || c == '\t':
			p.pos++
		case c == '\\' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n':
			// Backslash-newline acts as a word separator.
			p.pos += 2
		case c == '\n' || c == '\r' || c == ';':
			return true
		default:
			return false
		}
	}
	return true
}

// nextCommand parses the next command from the script. It returns nil
// when the script is exhausted.
func (p *parser) nextCommand() (*parsedCommand, error) {
	p.skipCommandSeparators()
	if p.atEnd() {
		return nil, nil
	}
	cmd := &parsedCommand{}
	for {
		if ended := p.skipWordSeparators(); ended {
			// Consume the terminator itself (if any).
			if !p.atEnd() && (p.peek() == '\n' || p.peek() == ';' || p.peek() == '\r') {
				p.pos++
			}
			break
		}
		w, err := p.parseWord()
		if err != nil {
			return nil, err
		}
		cmd.words = append(cmd.words, w)
	}
	if len(cmd.words) == 0 {
		return p.nextCommand()
	}
	return cmd, nil
}

func (p *parser) parseWord() (word, error) {
	start := p.pos
	var w word
	var err error
	var form byte
	switch p.peek() {
	case '{':
		form = '{'
		w, err = p.parseBracedWord()
	case '"':
		form = '"'
		w, err = p.parseQuotedWord()
	default:
		w, err = p.parseBareWord()
	}
	if err != nil {
		return word{}, err
	}
	w.pos = start
	w.form = form
	return w, nil
}

// parseBracedWord reads {...} with brace counting; the content is
// literal except that backslash-newline inside braces is preserved
// verbatim per Tcl semantics (substitution happens later if the word is
// used as a script).
func (p *parser) parseBracedWord() (word, error) {
	open := p.pos
	start := p.pos + 1
	depth := 0
	i := p.pos
	for i < len(p.src) {
		switch p.src[i] {
		case '\\':
			i++ // skip escaped char inside braces (it stays literal)
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				w := word{tokens: []token{{kind: tokText, text: p.src[start:i], pos: start}}}
				p.pos = i + 1
				if !p.atEnd() {
					c := p.peek()
					if c != ' ' && c != '\t' && c != '\n' && c != '\r' && c != ';' && !(c == '\\' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n') {
						return word{}, p.errAt(p.pos, "extra characters after close-brace")
					}
				}
				return w, nil
			}
		}
		i++
	}
	return word{}, p.errAt(open, "missing close-brace")
}

func (p *parser) parseQuotedWord() (word, error) {
	open := p.pos
	p.pos++ // consume opening quote
	var toks []token
	var lit strings.Builder
	litStart := p.pos
	flush := func() {
		if lit.Len() > 0 {
			toks = append(toks, token{kind: tokText, text: lit.String(), pos: litStart})
			lit.Reset()
		}
	}
	for !p.atEnd() {
		c := p.peek()
		switch c {
		case '"':
			p.pos++
			flush()
			if !p.atEnd() {
				c := p.peek()
				if c != ' ' && c != '\t' && c != '\n' && c != '\r' && c != ';' {
					return word{}, p.errAt(p.pos, "extra characters after close-quote")
				}
			}
			return word{tokens: toks}, nil
		case '\\':
			if lit.Len() == 0 {
				litStart = p.pos
			}
			s, err := p.parseBackslash()
			if err != nil {
				return word{}, err
			}
			lit.WriteString(s)
		case '$':
			flush()
			t, err := p.parseVarToken()
			if err != nil {
				return word{}, err
			}
			toks = append(toks, t)
			litStart = p.pos
		case '[':
			flush()
			t, err := p.parseCommandToken()
			if err != nil {
				return word{}, err
			}
			toks = append(toks, t)
			litStart = p.pos
		default:
			if lit.Len() == 0 {
				litStart = p.pos
			}
			lit.WriteByte(c)
			p.pos++
		}
	}
	return word{}, p.errAt(open, "missing closing quote")
}

func (p *parser) parseBareWord() (word, error) {
	var toks []token
	var lit strings.Builder
	litStart := p.pos
	flush := func() {
		if lit.Len() > 0 {
			toks = append(toks, token{kind: tokText, text: lit.String(), pos: litStart})
			lit.Reset()
		}
	}
	for !p.atEnd() {
		c := p.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';':
			flush()
			return word{tokens: toks}, nil
		case c == '\\':
			if p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n' {
				flush()
				return word{tokens: toks}, nil
			}
			if lit.Len() == 0 {
				litStart = p.pos
			}
			s, err := p.parseBackslash()
			if err != nil {
				return word{}, err
			}
			lit.WriteString(s)
		case c == '$':
			flush()
			t, err := p.parseVarToken()
			if err != nil {
				return word{}, err
			}
			toks = append(toks, t)
			litStart = p.pos
		case c == '[':
			flush()
			t, err := p.parseCommandToken()
			if err != nil {
				return word{}, err
			}
			toks = append(toks, t)
			litStart = p.pos
		case c == '{':
			// An open brace inside a bare word is literal in Tcl.
			if lit.Len() == 0 {
				litStart = p.pos
			}
			lit.WriteByte(c)
			p.pos++
		default:
			if lit.Len() == 0 {
				litStart = p.pos
			}
			lit.WriteByte(c)
			p.pos++
		}
	}
	flush()
	return word{tokens: toks}, nil
}

// parseBackslash interprets a backslash escape starting at p.pos
// (pointing at the backslash) and returns the replacement text.
func (p *parser) parseBackslash() (string, error) {
	p.pos++ // consume backslash
	if p.atEnd() {
		return "\\", nil
	}
	c := p.peek()
	p.pos++
	switch c {
	case 'a':
		return "\a", nil
	case 'b':
		return "\b", nil
	case 'f':
		return "\f", nil
	case 'n':
		return "\n", nil
	case 'r':
		return "\r", nil
	case 't':
		return "\t", nil
	case 'v':
		return "\v", nil
	case '\n':
		// Backslash-newline plus following whitespace collapses to one space.
		for !p.atEnd() && (p.peek() == ' ' || p.peek() == '\t') {
			p.pos++
		}
		return " ", nil
	case 'x':
		var n, digits int
		for !p.atEnd() && digits < 2 {
			d := hexVal(p.peek())
			if d < 0 {
				break
			}
			n = n*16 + d
			digits++
			p.pos++
		}
		if digits == 0 {
			return "x", nil
		}
		return string(rune(n)), nil
	case 'u':
		var n, digits int
		for !p.atEnd() && digits < 4 {
			d := hexVal(p.peek())
			if d < 0 {
				break
			}
			n = n*16 + d
			digits++
			p.pos++
		}
		if digits == 0 {
			return "u", nil
		}
		return string(rune(n)), nil
	case '0', '1', '2', '3', '4', '5', '6', '7':
		n := int(c - '0')
		digits := 1
		for !p.atEnd() && digits < 3 && p.peek() >= '0' && p.peek() <= '7' {
			n = n*8 + int(p.peek()-'0')
			digits++
			p.pos++
		}
		return string(rune(n)), nil
	default:
		return string(c), nil
	}
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

func isVarNameChar(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// parseVarToken parses $name, ${name} and $name(index).
func (p *parser) parseVarToken() (token, error) {
	dollar := p.pos
	p.pos++ // consume $
	if p.atEnd() {
		return token{kind: tokText, text: "$", pos: dollar}, nil
	}
	if p.peek() == '{' {
		p.pos++
		start := p.pos
		for !p.atEnd() && p.peek() != '}' {
			p.pos++
		}
		if p.atEnd() {
			return token{}, p.errAt(dollar, "missing close-brace for variable name")
		}
		name := p.src[start:p.pos]
		p.pos++
		return token{kind: tokVar, text: name, pos: dollar}, nil
	}
	start := p.pos
	for !p.atEnd() && isVarNameChar(p.peek()) {
		p.pos++
	}
	if p.pos == start {
		// A lone dollar sign is literal.
		return token{kind: tokText, text: "$", pos: dollar}, nil
	}
	name := p.src[start:p.pos]
	t := token{kind: tokVar, text: name, pos: dollar}
	if !p.atEnd() && p.peek() == '(' {
		p.pos++
		idxStart := p.pos
		depth := 1
		var idx []token
		var lit strings.Builder
		litStart := p.pos
		flush := func() {
			if lit.Len() > 0 {
				idx = append(idx, token{kind: tokText, text: lit.String(), pos: litStart})
				lit.Reset()
			}
		}
		for !p.atEnd() {
			c := p.peek()
			switch c {
			case '(':
				depth++
				lit.WriteByte(c)
				p.pos++
			case ')':
				depth--
				if depth == 0 {
					p.pos++
					flush()
					t.index = idx
					t.hasIdx = true
					return t, nil
				}
				lit.WriteByte(c)
				p.pos++
			case '$':
				flush()
				sub, err := p.parseVarToken()
				if err != nil {
					return token{}, err
				}
				idx = append(idx, sub)
				litStart = p.pos
			case '[':
				flush()
				sub, err := p.parseCommandToken()
				if err != nil {
					return token{}, err
				}
				idx = append(idx, sub)
				litStart = p.pos
			case '\\':
				if lit.Len() == 0 {
					litStart = p.pos
				}
				s, err := p.parseBackslash()
				if err != nil {
					return token{}, err
				}
				lit.WriteString(s)
			default:
				if lit.Len() == 0 {
					litStart = p.pos
				}
				lit.WriteByte(c)
				p.pos++
			}
		}
		return token{}, p.errAt(idxStart-1, "missing )")
	}
	return t, nil
}

// parseCommandToken parses a [script] substitution; the script is kept
// unevaluated until substitution time.
func (p *parser) parseCommandToken() (token, error) {
	open := p.pos
	p.pos++ // consume [
	start := p.pos
	depth := 1
	for !p.atEnd() {
		switch p.peek() {
		case '\\':
			p.pos++ // skip next char
			if !p.atEnd() {
				p.pos++
			}
			continue
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 {
				script := p.src[start:p.pos]
				p.pos++
				return token{kind: tokCommand, text: script, pos: open}, nil
			}
		case '{':
			// Braces inside bracketed scripts must balance so that
			// "[gV input string])" style text nests correctly.
		}
		p.pos++
	}
	return token{}, p.errAt(open, "missing close-bracket")
}
