package tcl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"wafe/internal/obs"
)

// Code is a Tcl completion code. Values match Tcl's catch numbering.
type Code int

const (
	CodeOK       Code = 0
	CodeError    Code = 1
	CodeReturn   Code = 2
	CodeBreak    Code = 3
	CodeContinue Code = 4
	// CodeExit signals that the script called exit; embedders terminate
	// their event loop (rather than the process) when they see it.
	CodeExit Code = 5
)

// IsExit reports whether err is a Tcl exit request and returns the exit
// status if so. An empty value means a plain "exit" (status 0); any
// other value must be a whole decimal integer — a malformed value
// reports status 1 rather than masquerading as success.
func IsExit(err error) (int, bool) {
	te, ok := err.(*Error)
	if !ok || te.Code != CodeExit {
		return 0, false
	}
	s := strings.TrimSpace(te.Value)
	if s == "" {
		return 0, true
	}
	n, convErr := strconv.Atoi(s)
	if convErr != nil {
		return 1, true
	}
	return n, true
}

// Error is the error type produced by interpreter evaluation. It carries
// the Tcl completion code so that flow-control commands (break, continue,
// return) propagate through Go call chains, exactly as Tcl completion
// codes propagate through the C call chain in the original.
type Error struct {
	Code  Code
	Value string // error message (CodeError) or return value (CodeReturn)
}

func (e *Error) Error() string { return e.Value }

// NewError returns a plain Tcl error with the given message.
func NewError(format string, args ...any) *Error {
	return &Error{Code: CodeError, Value: fmt.Sprintf(format, args...)}
}

var (
	errBreak    = &Error{Code: CodeBreak, Value: "invoked \"break\" outside of a loop"}
	errContinue = &Error{Code: CodeContinue, Value: "invoked \"continue\" outside of a loop"}
)

// CommandFunc is the Go signature of a Tcl command. argv[0] is the
// command name; the remaining elements are fully substituted argument
// strings. Returning a non-nil error aborts evaluation unless a caller
// (catch, loops) intercepts the completion code.
type CommandFunc func(in *Interp, argv []string) (string, error)

// Proc is a user-defined procedure created by the proc command.
type Proc struct {
	Name string
	Args []ProcArg
	Body string

	// compiled is the Body compiled once at registration (or lazily on
	// the first call, for procs built directly by embedders). It is
	// derived purely from Body; redefining a proc installs a fresh Proc
	// with a fresh compiled body, so no invalidation is needed.
	compiled *Script
}

// ProcArg is one formal parameter of a proc, with an optional default.
type ProcArg struct {
	Name       string
	Default    string
	HasDefault bool
}

// variable holds a scalar or associative-array value. A variable with a
// non-nil link is an alias created by upvar/global.
type variable struct {
	scalar  string
	arr     map[string]string
	isArray bool
	link    *variable
}

func (v *variable) resolve() *variable {
	for v.link != nil {
		v = v.link
	}
	return v
}

// frame is one procedure call frame.
type frame struct {
	vars map[string]*variable
	// proc is the procedure executing in this frame, nil for the global frame.
	proc *Proc
}

// Interp is a Tcl interpreter instance. It is not safe for concurrent
// use; like Xt itself, Wafe is single threaded and funnels all work
// through one event loop.
type Interp struct {
	commands map[string]CommandFunc
	procs    map[string]*Proc
	frames   []*frame

	// metas holds per-command metadata (arity bounds, options) set via
	// SetCommandMeta; read by the wafecheck linter and, for entries
	// with a Usage string, by central arity enforcement.
	metas map[string]CommandMeta

	// Unknown, when non-nil, is invoked for undefined command names,
	// mirroring Tcl's unknown mechanism.
	Unknown CommandFunc

	// Stdout receives output of puts/echo. Defaults to an internal
	// buffer accessible via Output; the Wafe frontend points it at the
	// real stdout or the backend pipe.
	Stdout func(line string)

	output strings.Builder

	// maxNesting guards against runaway recursion.
	nesting    int
	maxNesting int

	// chans holds open file channels (the open/gets/close commands).
	chans *channelTable

	// errorUnwinding marks that errorInfo is being accumulated for the
	// currently-propagating error.
	errorUnwinding bool

	// scriptCache interns compiled scripts by source string, so that
	// repeatedly evaluated callbacks and bodies compile once. A nil
	// cache disables interning (SetScriptCacheSize(0)).
	scriptCache *lruCache
	// exprCache interns compiled expression ASTs by source string.
	exprCache *lruCache

	// obs, when non-nil, collects dispatch counts, eval latency and
	// cache hit rates. Nil (the default) keeps every hot path at a
	// single pointer comparison.
	obs *obs.TclMetrics

	// trace, when non-nil, records spans for top-level evals and proc
	// calls (same nil-pointer discipline as obs).
	trace *obs.Trace

	// prof is the active Tcl profiler; nil outside a profiling window.
	// The remaining fields are its activation bookkeeping: per-command
	// and per-proc child-time accumulators, the live proc stack for
	// folded output, and the per-Script newline index cache
	// (profile.go).
	prof          *obs.Profiler
	profCmdChild  []int64
	profProcChild []int64
	profProcStack []string
	profLines     map[*Script][]int
}

// SetObs attaches (or, with nil, detaches) the observability metrics.
func (in *Interp) SetObs(m *obs.TclMetrics) { in.obs = m }

// New creates an interpreter with the standard command set registered.
func New() *Interp {
	in := &Interp{
		commands:    make(map[string]CommandFunc),
		procs:       make(map[string]*Proc),
		frames:      []*frame{{vars: make(map[string]*variable)}},
		maxNesting:  1000,
		scriptCache: newLRUCache(defaultScriptCacheSize),
		exprCache:   newLRUCache(defaultExprCacheSize),
	}
	in.Stdout = func(line string) {
		in.output.WriteString(line)
		in.output.WriteByte('\n')
	}
	registerCoreCommands(in)
	registerStringCommands(in)
	registerListCommands(in)
	registerIOCommands(in)
	registerBuiltinMetas(in)
	return in
}

// Output returns and clears text accumulated by puts/echo when Stdout
// has not been redirected.
func (in *Interp) Output() string {
	s := in.output.String()
	in.output.Reset()
	return s
}

// RegisterCommand binds name to fn, replacing any previous binding.
func (in *Interp) RegisterCommand(name string, fn CommandFunc) {
	in.commands[name] = fn
}

// UnregisterCommand removes a command binding and its metadata.
func (in *Interp) UnregisterCommand(name string) {
	delete(in.commands, name)
	delete(in.procs, name)
	delete(in.metas, name)
}

// HasCommand reports whether name is a registered command or proc.
func (in *Interp) HasCommand(name string) bool {
	_, ok := in.commands[name]
	return ok
}

// Command returns the registered implementation of a command, allowing
// embedders to wrap or chain it.
func (in *Interp) Command(name string) (CommandFunc, bool) {
	fn, ok := in.commands[name]
	return fn, ok
}

// CommandNames returns all registered command names, sorted.
func (in *Interp) CommandNames() []string {
	names := make([]string, 0, len(in.commands))
	for n := range in.commands {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (in *Interp) currentFrame() *frame { return in.frames[len(in.frames)-1] }

func (in *Interp) globalFrame() *frame { return in.frames[0] }

// Level returns the current call-frame depth (0 = global).
func (in *Interp) Level() int { return len(in.frames) - 1 }

// splitArrayRef splits "name(index)" into (name, index, true); a plain
// name returns ok=false.
func splitArrayRef(name string) (base, idx string, ok bool) {
	open := strings.IndexByte(name, '(')
	if open >= 0 && strings.HasSuffix(name, ")") {
		return name[:open], name[open+1 : len(name)-1], true
	}
	return name, "", false
}

// GetVar returns the value of a variable in the current frame. The name
// may be of the form name(index) for array elements.
func (in *Interp) GetVar(name string) (string, error) {
	return in.getVarInFrame(in.currentFrame(), name)
}

func (in *Interp) getVarInFrame(f *frame, name string) (string, error) {
	base, idx, isArr := splitArrayRef(name)
	v, ok := f.vars[base]
	if !ok {
		return "", NewError("can't read %q: no such variable", name)
	}
	v = v.resolve()
	if isArr {
		if !v.isArray {
			return "", NewError("can't read %q: variable isn't array", name)
		}
		val, ok := v.arr[idx]
		if !ok {
			return "", NewError("can't read %q: no such element in array", name)
		}
		return val, nil
	}
	if v.isArray {
		return "", NewError("can't read %q: variable is array", name)
	}
	return v.scalar, nil
}

// SetVar sets a variable (or array element, for name(index)) in the
// current frame.
func (in *Interp) SetVar(name, value string) error {
	return in.setVarInFrame(in.currentFrame(), name, value)
}

// SetGlobalVar sets a variable in the global frame regardless of the
// current call depth.
func (in *Interp) SetGlobalVar(name, value string) error {
	return in.setVarInFrame(in.globalFrame(), name, value)
}

// GetGlobalVar reads a variable from the global frame.
func (in *Interp) GetGlobalVar(name string) (string, error) {
	return in.getVarInFrame(in.globalFrame(), name)
}

func (in *Interp) setVarInFrame(f *frame, name, value string) error {
	base, idx, isArr := splitArrayRef(name)
	v, ok := f.vars[base]
	if !ok {
		v = &variable{}
		f.vars[base] = v
	}
	v = v.resolve()
	if isArr {
		if !v.isArray {
			if v.scalar != "" {
				return NewError("can't set %q: variable isn't array", name)
			}
			v.isArray = true
			v.arr = make(map[string]string)
		}
		v.arr[idx] = value
		return nil
	}
	if v.isArray {
		return NewError("can't set %q: variable is array", name)
	}
	v.scalar = value
	return nil
}

// UnsetVar removes a variable or array element from the current frame.
func (in *Interp) UnsetVar(name string) error {
	f := in.currentFrame()
	base, idx, isArr := splitArrayRef(name)
	v, ok := f.vars[base]
	if !ok {
		return NewError("can't unset %q: no such variable", name)
	}
	rv := v.resolve()
	if isArr {
		if !rv.isArray {
			return NewError("can't unset %q: variable isn't array", name)
		}
		if _, ok := rv.arr[idx]; !ok {
			return NewError("can't unset %q: no such element in array", name)
		}
		delete(rv.arr, idx)
		return nil
	}
	delete(f.vars, base)
	return nil
}

// VarExists reports whether a variable (or array element) exists.
func (in *Interp) VarExists(name string) bool {
	f := in.currentFrame()
	base, idx, isArr := splitArrayRef(name)
	v, ok := f.vars[base]
	if !ok {
		return false
	}
	v = v.resolve()
	if isArr {
		if !v.isArray {
			return false
		}
		_, ok := v.arr[idx]
		return ok
	}
	return true
}

// arrayVar returns the resolved variable for name if it is an array.
func (in *Interp) arrayVar(name string) (*variable, bool) {
	v, ok := in.currentFrame().vars[name]
	if !ok {
		return nil, false
	}
	v = v.resolve()
	if !v.isArray {
		return nil, false
	}
	return v, true
}

// linkVar makes localName in the current frame an alias for name in the
// target frame (upvar/global).
func (in *Interp) linkVar(target *frame, name, localName string) error {
	base, _, isArr := splitArrayRef(name)
	if isArr {
		return NewError("can't upvar to array element %q", name)
	}
	tv, ok := target.vars[base]
	if !ok {
		tv = &variable{}
		target.vars[base] = tv
	}
	in.currentFrame().vars[localName] = &variable{link: tv}
	return nil
}

// Eval evaluates a script and returns the result of its last command.
// The script is compiled once and interned, so evaluating the same
// source again (callback fires, loop bodies) skips the parser.
func (in *Interp) Eval(script string) (string, error) {
	return in.EvalScript(in.compileCached(script))
}

// EvalWords invokes a command given pre-substituted words, bypassing the
// parser. Used by the Wafe layer for callbacks built programmatically.
func (in *Interp) EvalWords(argv []string) (string, error) {
	if len(argv) == 0 {
		return "", nil
	}
	return in.invoke(argv)
}

func (in *Interp) invoke(argv []string) (string, error) {
	name := argv[0]
	if m := in.obs; m != nil {
		m.Dispatch.Inc(name)
	}
	if fn, ok := in.commands[name]; ok {
		return fn(in, argv)
	}
	if in.Unknown != nil {
		return in.Unknown(in, argv)
	}
	return "", NewError("invalid command name %q", name)
}

// substWords performs $, [] and backslash substitution on parsed words.
func (in *Interp) substWords(words []word) ([]string, error) {
	argv := make([]string, 0, len(words))
	for _, w := range words {
		s, err := in.substWord(w)
		if err != nil {
			return nil, err
		}
		argv = append(argv, s)
	}
	return argv, nil
}

func (in *Interp) substWord(w word) (string, error) {
	if len(w.tokens) == 1 && w.tokens[0].kind == tokText {
		return w.tokens[0].text, nil
	}
	var b strings.Builder
	for _, t := range w.tokens {
		s, err := in.substToken(t)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	return b.String(), nil
}

func (in *Interp) substToken(t token) (string, error) {
	switch t.kind {
	case tokText:
		return t.text, nil
	case tokVar:
		name := t.text
		if t.hasIdx {
			var idx strings.Builder
			for _, it := range t.index {
				s, err := in.substToken(it)
				if err != nil {
					return "", err
				}
				idx.WriteString(s)
			}
			name = name + "(" + idx.String() + ")"
		}
		return in.GetVar(name)
	case tokCommand:
		if t.script != nil {
			return in.EvalScript(t.script)
		}
		return in.Eval(t.text)
	}
	return "", NewError("internal: bad token kind")
}

// Subst performs Tcl substitution on a string without treating it as a
// command (the subst command).
func (in *Interp) Subst(s string) (string, error) {
	p := newParser(s)
	var b strings.Builder
	for !p.atEnd() {
		c := p.peek()
		switch c {
		case '\\':
			r, err := p.parseBackslash()
			if err != nil {
				return "", &Error{Code: CodeError, Value: err.Error()}
			}
			b.WriteString(r)
		case '$':
			t, err := p.parseVarToken()
			if err != nil {
				return "", &Error{Code: CodeError, Value: err.Error()}
			}
			v, err := in.substToken(t)
			if err != nil {
				return "", err
			}
			b.WriteString(v)
		case '[':
			t, err := p.parseCommandToken()
			if err != nil {
				return "", &Error{Code: CodeError, Value: err.Error()}
			}
			v, err := in.Eval(t.text)
			if err != nil {
				return "", err
			}
			b.WriteString(v)
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return b.String(), nil
}

// callProc pushes a frame, binds arguments and evaluates the proc body.
// recordErrorInfo appends a stack-trace line to the errorInfo global,
// as classic Tcl does while an error unwinds.
func (in *Interp) recordErrorInfo(err error, context string) {
	te, ok := err.(*Error)
	if !ok || te.Code != CodeError {
		return
	}
	cur, getErr := in.GetGlobalVar("errorInfo")
	if getErr != nil || !in.errorUnwinding {
		cur = te.Value
		in.errorUnwinding = true
	}
	_ = in.SetGlobalVar("errorInfo", cur+"\n    "+context)
}

// ErrorInfo returns the traceback accumulated for the most recent
// error (the errorInfo global).
func (in *Interp) ErrorInfo() string {
	v, err := in.GetGlobalVar("errorInfo")
	if err != nil {
		return ""
	}
	return v
}

func (in *Interp) callProc(p *Proc, argv []string) (string, error) {
	if t := in.trace; t != nil {
		sp := t.StartSpan("proc", p.Name)
		defer sp.End()
	}
	if in.prof != nil {
		done := in.profEnterProc(p.Name)
		defer done()
	}
	f := &frame{vars: make(map[string]*variable), proc: p}
	actual := argv[1:]
	nFormal := len(p.Args)
	varArgs := nFormal > 0 && p.Args[nFormal-1].Name == "args"
	for i, formal := range p.Args {
		if varArgs && i == nFormal-1 {
			var rest []string
			if i < len(actual) {
				rest = actual[i:]
			}
			f.vars["args"] = &variable{scalar: FormatList(rest)}
			break
		}
		v := &variable{}
		switch {
		case i < len(actual):
			v.scalar = actual[i]
		case formal.HasDefault:
			v.scalar = formal.Default
		default:
			return "", NewError("no value given for parameter %q to %q", formal.Name, p.Name)
		}
		f.vars[formal.Name] = v
	}
	if !varArgs && len(actual) > nFormal {
		return "", NewError("called %q with too many arguments", p.Name)
	}
	in.frames = append(in.frames, f)
	defer func() { in.frames = in.frames[:len(in.frames)-1] }()
	if p.compiled == nil {
		p.compiled = compileScript(p.Body)
	}
	res, err := in.EvalScript(p.compiled)
	if err != nil {
		var te *Error
		if asTclError(err, &te) {
			switch te.Code {
			case CodeReturn:
				return te.Value, nil
			case CodeBreak, CodeContinue:
				return "", NewError("invoked %q outside of a loop",
					map[Code]string{CodeBreak: "break", CodeContinue: "continue"}[te.Code])
			}
		}
		in.recordErrorInfo(err, fmt.Sprintf("(procedure %q invoked as %q)", p.Name, strings.Join(argv, " ")))
		return "", err
	}
	return res, nil
}

func asTclError(err error, out **Error) bool {
	te, ok := err.(*Error)
	if ok {
		*out = te
	}
	return ok
}
